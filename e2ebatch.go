// Package e2ebatch is a reproduction of "Batching with End-to-End
// Performance Estimation" (Borisov, Amit, Tsafrir — HotOS 2025): lightweight
// queue-state counters that estimate application-perceived end-to-end
// latency and throughput via Little's law, and batching policies (Nagle-
// style on/off toggling, AIMD batch limits) driven by those estimates.
//
// This root package is the public API surface; it re-exports the core
// building blocks implemented under internal/:
//
//   - QueueState / Snapshot / GetAvgs — the paper's Algorithm 1 (TRACK) and
//     Algorithm 2 (GETAVGS): per-queue counters whose deltas yield average
//     occupancy, throughput, and queuing delay.
//   - WireState and the 36-byte codec — the per-exchange metadata two TCP
//     peers share (§3.2).
//   - Estimator / EstimateE2E — the three-queue end-to-end latency
//     combination of §3.2 (Figure 3).
//   - HintTracker / create-complete API — the §3.3 interface cooperative
//     applications use to close the semantic gap.
//   - Toggler / AIMD / objectives — the §5 dynamic batching policies.
//
// The substrates the evaluation runs on (deterministic TCP emulation,
// mini-Redis, load generator, experiment harness) live in internal/ and are
// exercised through cmd/e2efig and the examples.
package e2ebatch

import (
	"e2ebatch/internal/core"
	"e2ebatch/internal/hints"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/qstate"
)

// Time is a timestamp in nanoseconds since an arbitrary epoch (virtual or
// wall-clock).
type Time = qstate.Time

// QueueState is the paper's 4-tuple queue state (time, size, total,
// integral); mutate it through Track (Algorithm 1).
type QueueState = qstate.State

// Snapshot is the shareable 3-tuple (time, total, integral).
type Snapshot = qstate.Snapshot

// Avgs holds Little's-law averages over an interval: occupancy Q,
// throughput λ, and queuing delay Q/λ (Algorithm 2).
type Avgs = qstate.Avgs

// GetAvgs computes the averages between two successive snapshots.
func GetAvgs(prev, now Snapshot) Avgs { return qstate.GetAvgs(prev, now) }

// Wire-format metadata exchange (§3.2): 36 bytes per exchange.
type (
	// WireQueue is one queue's 3-tuple in 32-bit wire units.
	WireQueue = qstate.WireQueue
	// WireState is the full three-queue exchange payload.
	WireState = qstate.WireState
)

// WireSize is the encoded size of a WireState: 36 bytes, as stated in §3.2.
const WireSize = qstate.WireSize

// EncodeWire serializes a WireState; DecodeWire parses one from a stream
// prefix; DecodeWireExact parses a framed payload, rejecting trailing bytes
// (prefer it whenever the payload length is known — e2elint/wiresize steers
// callers here); WireAvgs computes wrap-aware averages between two
// exchanges; ToWireQueue converts a full-precision snapshot to wire units.
var (
	EncodeWire      = qstate.EncodeWire
	DecodeWire      = qstate.DecodeWire
	DecodeWireExact = qstate.DecodeWireExact
	WireAvgs        = qstate.WireAvgs
	ToWireQueue     = qstate.ToWire
)

// End-to-end estimation (§3.2).
type (
	// Queues bundles one endpoint's three monitored queue snapshots.
	Queues = core.Queues
	// Delays holds the three per-queue Little's-law averages.
	Delays = core.Delays
	// Estimate is an end-to-end latency/throughput estimate.
	Estimate = core.Estimate
	// Sample is one estimator observation (local queues + peer state).
	Sample = core.Sample
	// Estimator turns samples into per-interval estimates.
	Estimator = core.Estimator
)

// DelaysBetween, WireDelays, EstimateE2E and Aggregate expose the §3.2
// latency combination pipeline.
var (
	DelaysBetween = core.DelaysBetween
	WireDelays    = core.WireDelays
	EstimateE2E   = core.EstimateE2E
	Aggregate     = core.Aggregate
)

// Application hints (§3.3).
type (
	// HintClock supplies timestamps to a HintTracker.
	HintClock = hints.Clock
	// HintTracker is the userspace queue state behind create/complete.
	HintTracker = hints.Tracker
	// HintEstimator derives app-perceived performance from a tracker.
	HintEstimator = hints.Estimator
)

// NewHintTracker and NewHintEstimator construct the §3.3 hint pipeline.
var (
	NewHintTracker   = hints.NewTracker
	NewHintEstimator = hints.NewEstimator
)

// Batching policies (§5).
type (
	// Objective scores (latency, throughput) observations.
	Objective = policy.Objective
	// PreferLatency optimizes latency alone.
	PreferLatency = policy.PreferLatency
	// PreferThroughput optimizes throughput alone.
	PreferThroughput = policy.PreferThroughput
	// ThroughputUnderSLO is the paper's example policy.
	ThroughputUnderSLO = policy.ThroughputUnderSLO
	// Mode is a batching mode (BatchOn / BatchOff).
	Mode = policy.Mode
	// Toggler is the ε-greedy on/off controller.
	Toggler = policy.Toggler
	// TogglerConfig parameterizes the toggler.
	TogglerConfig = policy.TogglerConfig
	// AIMD is the additive-increase/multiplicative-decrease batch-limit
	// controller.
	AIMD = policy.AIMD
	// UCBToggler is the UCB1 bandit alternative to the ε-greedy Toggler.
	UCBToggler = policy.UCBToggler
)

// Batching modes.
const (
	BatchOff = policy.BatchOff
	BatchOn  = policy.BatchOn
)

// NewToggler, DefaultTogglerConfig and NewAIMD construct the policies.
var (
	NewToggler           = policy.NewToggler
	DefaultTogglerConfig = policy.DefaultTogglerConfig
	NewAIMD              = policy.NewAIMD
	NewUCBToggler        = policy.NewUCBToggler
)
