// Command fidelity runs the model-fidelity harness: it replays every
// workload-zoo member through the simulator and scores the measured
// estimator, the analytic tandem model, and a naive byte baseline against
// sim ground truth, printing a deterministic FINDINGS-style report with
// numbered-hypothesis verdicts.
//
// Usage:
//
//	go run ./cmd/fidelity [-dur 150ms] [-seed 1] [-breakdown]
//
// The same seed and duration always produce byte-identical output; the
// default configuration is pinned by a golden test.
package main

import (
	"flag"
	"os"
	"time"

	"e2ebatch/internal/figures"
)

func main() {
	dur := flag.Duration("dur", 150*time.Millisecond, "virtual duration of each workload run")
	seed := flag.Int64("seed", 1, "base seed (each workload derives its own)")
	breakdown := flag.Bool("breakdown", false, "also print the analytic per-stage breakdown")
	flag.Parse()

	out := figures.Fidelity(figures.DefaultCalib(), *dur, *seed)
	figures.WriteFidelity(os.Stdout, out)
	if *breakdown {
		figures.WriteFidelityBreakdown(os.Stdout, out)
	}
}
