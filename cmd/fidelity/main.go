// Command fidelity runs the model-fidelity harness: it replays every
// workload-zoo member through the simulator and scores the measured
// estimator, the analytic tandem model, and a naive byte baseline against
// sim ground truth, printing a deterministic FINDINGS-style report with
// numbered-hypothesis verdicts.
//
// Usage:
//
//	go run ./cmd/fidelity [-dur 150ms] [-seed 1] [-breakdown] [-tails]
//
// With -tails the tail-fidelity harness runs instead: the same zoo replay
// scored at p50/p90/p99/p999 against the composed histogram estimator, the
// closed-form Gamma tail, and the naive byte-quantile baseline (hypotheses
// H6–H8). The same seed and duration always produce byte-identical output;
// the default configurations are pinned by golden tests.
package main

import (
	"flag"
	"os"
	"time"

	"e2ebatch/internal/figures"
)

func main() {
	dur := flag.Duration("dur", 150*time.Millisecond, "virtual duration of each workload run")
	seed := flag.Int64("seed", 1, "base seed (each workload derives its own)")
	breakdown := flag.Bool("breakdown", false, "also print the analytic per-stage breakdown")
	tails := flag.Bool("tails", false, "run the tail-fidelity harness (quantiles instead of means)")
	flag.Parse()

	if *tails {
		figures.WriteTailFidelity(os.Stdout, figures.TailFidelity(figures.DefaultCalib(), *dur, *seed))
		return
	}
	out := figures.Fidelity(figures.DefaultCalib(), *dur, *seed)
	figures.WriteFidelity(os.Stdout, out)
	if *breakdown {
		figures.WriteFidelityBreakdown(os.Stdout, out)
	}
}
