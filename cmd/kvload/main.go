// Command kvload drives a kvserver (or a real Redis) over real TCP while
// maintaining the paper's userspace create/complete counters, printing live
// Little's-law estimates, and — optionally — dynamically toggling
// TCP_NODELAY with the ε-greedy policy those estimates feed.
//
// Usage:
//
//	kvload -addr 127.0.0.1:6380 -rate 20000 -dur 10s
//	kvload -addr 127.0.0.1:6380 -rate 20000 -dur 10s -toggle
//	kvload ... -toggle -obs 127.0.0.1:9091   # live control-loop telemetry
//
// With -obs, every engine tick lands in /metrics (tick, degraded and
// mode-flip counters, exploration and safe-mode accounting, estimate and
// request latency summaries) and the last 1024 decision records are
// queryable as JSONL at /debug/decisions?n=K while the run is in flight.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"e2ebatch/internal/obs"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/realtcp"
	"e2ebatch/internal/resp"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:6380", "server address")
		rate    = flag.Float64("rate", 10000, "offered load, requests/second")
		dur     = flag.Duration("dur", 5*time.Second, "run duration")
		valSize = flag.Int("value", 16384, "SET value size in bytes")
		keySize = flag.Int("key", 16, "key size in bytes")
		toggle  = flag.Bool("toggle", false, "dynamically toggle TCP_NODELAY from the estimates")
		tick    = flag.Duration("tick", 10*time.Millisecond, "estimate/toggle tick")
		slo     = flag.Duration("slo", 500*time.Microsecond, "latency SLO for the toggling objective")
		seed    = flag.Int64("seed", 1, "toggler exploration RNG seed; 0 draws one from the wall clock")
		obsAddr = flag.String("obs", "", "serve /metrics, /debug/decisions, /debug/vars and /debug/pprof on this address for the run (empty: disabled)")
	)
	flag.Parse()

	c, err := realtcp.Dial(*addr, 4096)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvload:", err)
		os.Exit(1)
	}
	defer c.Close()

	key := make([]byte, *keySize)
	for i := range key {
		key[i] = 'k'
	}
	val := make([]byte, *valSize)
	for i := range val {
		val[i] = 'v'
	}
	opts := realtcp.LoadOptions{
		Rate:     *rate,
		Duration: *dur,
		Request:  resp.AppendCommand(nil, []byte("SET"), key, val),
		Tick:     *tick,
	}
	if *toggle {
		// Repeated runs explore identically by default; -seed 0 opts into a
		// wall-clock seed for operators who want varied exploration.
		s := *seed
		if s == 0 {
			s = time.Now().UnixNano()
		}
		opts.Toggler = policy.NewToggler(policy.ThroughputUnderSLO{SLO: *slo},
			policy.DefaultTogglerConfig(), policy.BatchOff,
			rand.New(rand.NewSource(s)))
	}

	if *obsAddr != "" {
		reg := obs.NewRegistry()
		ring := obs.NewRing(1024)
		ob := obs.NewEngineObserver(obs.NewEngineMetrics(reg), ring)
		ob.Name = "kvload"
		if opts.Toggler != nil {
			ob.Stats = opts.Toggler.Stats
		}
		opts.Observer = ob
		c.ObserveLatencies(reg.Latencies("e2e_request_latency_seconds",
			"Client-observed request latency (send to response).").Record)
		debug := obs.NewDebugServer(reg, ring)
		a, err := debug.Start(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvload: obs:", err)
			os.Exit(1)
		}
		defer debug.Close()
		fmt.Printf("obs listening on %s\n", a)
	}

	rep, err := realtcp.RunLoad(c, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvload:", err)
		os.Exit(1)
	}
	fmt.Printf("sent %d requests; measured mean=%v p50=%v p99=%v max=%v (%d estimate ticks)\n",
		rep.Sent, rep.Mean.Round(time.Microsecond), rep.P50.Round(time.Microsecond),
		rep.P99.Round(time.Microsecond), rep.Max.Round(time.Microsecond), rep.Estimates)
	if *toggle {
		fmt.Printf("toggler: %d decisions, %d switches, %d explorations, final %v\n",
			rep.Toggler.Decisions, rep.Toggler.Switches, rep.Toggler.Explorations, rep.FinalMode)
	}
}
