// Command kvload drives a kvserver (or a real Redis) over real TCP while
// maintaining the paper's userspace create/complete counters, printing live
// Little's-law estimates, and — optionally — dynamically toggling
// TCP_NODELAY with the ε-greedy policy those estimates feed.
//
// Usage:
//
//	kvload -addr 127.0.0.1:6380 -rate 20000 -dur 10s
//	kvload -addr 127.0.0.1:6380 -rate 20000 -dur 10s -toggle
//	kvload ... -toggle -obs 127.0.0.1:9091   # live control-loop telemetry
//
// High-fan-in fleet mode holds tens of thousands of concurrent connections
// from one process — every connection's control tick, send pacing and
// reconnect backoff scheduled on shard timer wheels, no goroutine or
// runtime timer per connection beyond the read loop the netpoller parks:
//
//	kvload -addr 127.0.0.1:6380 -conns 50000 -active 5000 -dur 30s -value 64
//
// Even-indexed connections run the controlled ε-greedy NODELAY policy off
// their own estimates; odd-indexed connections keep classic Nagle batching
// as the baseline. The report compares the two groups' p50/p99/p999. With
// -obs, per-shard fleet counters and wheel health are live at /metrics.
//
// With -obs in single-connection mode, every engine tick lands in /metrics
// (tick, degraded and mode-flip counters, exploration and safe-mode
// accounting, estimate and request latency summaries) and the last 1024
// decision records are queryable as JSONL at /debug/decisions?n=K while the
// run is in flight.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"time"

	"e2ebatch/internal/obs"
	"e2ebatch/internal/obs/span"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/realtcp"
	"e2ebatch/internal/resp"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:6380", "server address")
		rate    = flag.Float64("rate", 10000, "offered load, requests/second (per active connection in fleet mode)")
		dur     = flag.Duration("dur", 5*time.Second, "run duration")
		valSize = flag.Int("value", 16384, "SET value size in bytes")
		keySize = flag.Int("key", 16, "key size in bytes")
		toggle  = flag.Bool("toggle", false, "dynamically toggle TCP_NODELAY from the estimates")
		tick    = flag.Duration("tick", 10*time.Millisecond, "estimate/toggle tick")
		slo     = flag.Duration("slo", 500*time.Microsecond, "latency SLO for the toggling objective")
		seed    = flag.Int64("seed", 1, "toggler exploration RNG seed; 0 draws one from the wall clock")
		obsAddr = flag.String("obs", "", "serve /metrics, /debug/decisions, /debug/vars and /debug/pprof on this address for the run (empty: disabled)")
		spanN   = flag.Uint64("spansample", 64, "with -obs, trace 1-in-N requests as spans at /debug/spans and /debug/trace, audited against the live estimate (0: disabled; 1: every request)")

		conns     = flag.Int("conns", 0, "fleet mode: hold this many concurrent connections (0: single-connection mode)")
		active    = flag.Int("active", 0, "fleet mode: connections sending at -rate (0: conns/10); the rest heartbeat every -idle-every")
		idleEvery = flag.Duration("idle-every", 5*time.Second, "fleet mode: idle connections' heartbeat period")
		shards    = flag.Int("shards", 0, "fleet mode: shard count (0: GOMAXPROCS)")
		ctick     = flag.Duration("ctick", 250*time.Millisecond, "fleet mode: per-connection control tick")
		wheelTick = flag.Duration("wheeltick", time.Millisecond, "fleet mode: shard timer-wheel granularity")
		inflight  = flag.Int("maxinflight", 32, "fleet mode: per-connection pipeline bound")
		readbuf   = flag.Int("readbuf", 4<<10, "fleet mode: per-connection read buffer bytes")
		srcips    = flag.Int("srcips", 0, "fleet mode: rotate this many 127.0.0.x dial source IPs (0: auto for big loopback fleets, <0: off)")
		workers   = flag.Int("dialworkers", 128, "fleet mode: concurrent dialers during ramp")
	)
	flag.Parse()

	key := make([]byte, *keySize)
	for i := range key {
		key[i] = 'k'
	}
	val := make([]byte, *valSize)
	for i := range val {
		val[i] = 'v'
	}
	req := resp.AppendCommand(nil, []byte("SET"), key, val)

	if *conns > 0 {
		runFleet(fleetFlags{
			addr: *addr, conns: *conns, active: *active, rate: *rate,
			idleEvery: *idleEvery, dur: *dur, req: req,
			shards: *shards, ctick: *ctick, wheelTick: *wheelTick,
			slo: *slo, seed: *seed, inflight: *inflight, readbuf: *readbuf,
			srcips: *srcips, workers: *workers, obsAddr: *obsAddr,
			spanN: *spanN,
		})
		return
	}

	c, err := realtcp.Dial(*addr, 4096)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvload:", err)
		os.Exit(1)
	}
	defer c.Close()

	opts := realtcp.LoadOptions{
		Rate:     *rate,
		Duration: *dur,
		Request:  req,
		Tick:     *tick,
	}
	if *toggle {
		// Repeated runs explore identically by default; -seed 0 opts into a
		// wall-clock seed for operators who want varied exploration.
		s := *seed
		if s == 0 {
			s = time.Now().UnixNano()
		}
		opts.Toggler = policy.NewToggler(policy.ThroughputUnderSLO{SLO: *slo},
			policy.DefaultTogglerConfig(), policy.BatchOff,
			rand.New(rand.NewSource(s)))
	}

	if *obsAddr != "" {
		reg := obs.NewRegistry()
		ring := obs.NewRing(1024)
		ob := obs.NewEngineObserver(obs.NewEngineMetrics(reg), ring)
		ob.Name = "kvload"
		if opts.Toggler != nil {
			ob.Stats = opts.Toggler.Stats
		}
		opts.Observer = ob
		c.ObserveLatencies(reg.Latencies("e2e_request_latency_seconds",
			"Client-observed request latency (send to response).").Record)
		debug := obs.NewDebugServer(reg, ring)
		if *spanN > 0 {
			// Span tracing + online estimator audit: sampled completions
			// become spans stamped with the estimate current at their tick
			// (ob.Spans feeds the stamp), the auditor scores measured vs
			// predicted, and the engine consumes the verdict via opts.Audit.
			tr := span.New(span.Config{
				Seed:        uint64(*seed),
				SampleEvery: *spanN,
				Ring:        span.NewRing(1, 1024),
				Audit:       span.NewAuditor(span.AuditConfig{ExpectTail: false}),
			})
			ob.Spans = tr
			opts.Audit = tr.Auditor()
			debug.SetSpans(tr.Ring())
			var sp span.Span // read loop is one goroutine; reused scratch
			c.ObserveCompletions(func(reqID uint64, sentNs, ackNs int64) {
				if !tr.Sampled(reqID) {
					return
				}
				tr.Begin(&sp, 0, 0, reqID, sentNs)
				tr.Finish(&sp, ackNs)
			})
		}
		a, err := debug.Start(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvload: obs:", err)
			os.Exit(1)
		}
		defer debug.Close()
		fmt.Printf("obs listening on %s\n", a)
	}

	rep, err := realtcp.RunLoad(c, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvload:", err)
		os.Exit(1)
	}
	fmt.Printf("sent %d requests; measured mean=%v p50=%v p99=%v max=%v (%d estimate ticks)\n",
		rep.Sent, rep.Mean.Round(time.Microsecond), rep.P50.Round(time.Microsecond),
		rep.P99.Round(time.Microsecond), rep.Max.Round(time.Microsecond), rep.Estimates)
	if *toggle {
		fmt.Printf("toggler: %d decisions, %d switches, %d explorations, final %v\n",
			rep.Toggler.Decisions, rep.Toggler.Switches, rep.Toggler.Explorations, rep.FinalMode)
	}
}

type fleetFlags struct {
	addr              string
	conns, active     int
	rate              float64
	idleEvery, dur    time.Duration
	req               []byte
	shards            int
	ctick, wheelTick  time.Duration
	slo               time.Duration
	seed              int64
	inflight, readbuf int
	srcips, workers   int
	obsAddr           string
	spanN             uint64
}

func runFleet(ff fleetFlags) {
	fds, _ := realtcp.RaiseNOFILE(uint64(2*ff.conns + 4096))
	if fds < uint64(ff.conns)+1024 {
		fmt.Fprintf(os.Stderr, "kvload: open-file limit %d is tight for %d connections; continuing\n", fds, ff.conns)
	}
	// Fleet spans are lifecycle-only: connections carry no estimate stamp
	// (each runs its own endpoint, ticked on shard wheels), so sampled
	// completions export as rtt slices without audit fields. The sampling
	// key folds the connection index into the per-connection FIFO reqID so
	// 1-in-N holds fleet-wide, not per connection.
	var tr *span.Tracer
	if ff.obsAddr != "" && ff.spanN > 0 {
		tr = span.New(span.Config{
			Seed:        uint64(ff.seed),
			SampleEvery: ff.spanN,
			Ring:        span.NewRing(8, 512),
		})
	}
	f, err := realtcp.NewFleet(realtcp.FleetOptions{
		Addr:         ff.addr,
		Conns:        ff.conns,
		Active:       ff.active,
		Rate:         ff.rate,
		IdleEvery:    ff.idleEvery,
		Duration:     ff.dur,
		Request:      ff.req,
		IdleRequest:  resp.Command("PING"),
		Shards:       ff.shards,
		WheelTick:    ff.wheelTick,
		Tick:         ff.ctick,
		SLO:          ff.slo,
		Seed:         ff.seed,
		MaxInflight:  ff.inflight,
		ReadBufBytes: ff.readbuf,
		SourceIPs:    ff.srcips,
		DialWorkers:  ff.workers,
		OnSpan:       fleetSpanHook(tr),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvload:", err)
		os.Exit(1)
	}

	if ff.obsAddr != "" {
		reg := obs.NewRegistry()
		for i := 0; i < f.Shards(); i++ {
			i := i
			l := obs.Label{Key: "shard", Value: strconv.Itoa(i)}
			reg.GaugeFunc("e2e_fleet_sent", "Requests sent per shard.", func() float64 {
				return float64(f.ShardLive(i).Sent)
			}, l)
			reg.GaugeFunc("e2e_fleet_completed", "Responses received per shard.", func() float64 {
				return float64(f.ShardLive(i).Completed)
			}, l)
			reg.GaugeFunc("e2e_fleet_skipped", "Paced sends skipped on a full pipeline, per shard.", func() float64 {
				return float64(f.ShardLive(i).Skipped)
			}, l)
			reg.GaugeFunc("e2e_fleet_dead_conns", "Currently-dead connections per shard.", func() float64 {
				return float64(f.ShardLive(i).DeadConns)
			}, l)
			reg.GaugeFunc("e2e_fleet_wheel_armed", "Armed wheel timers per shard.", func() float64 {
				return float64(f.ShardLive(i).Wheel.Armed)
			}, l)
			reg.GaugeFunc("e2e_fleet_wheel_max_behind", "Worst tick backlog seen per shard.", func() float64 {
				return float64(f.ShardLive(i).Wheel.MaxBehind)
			}, l)
			reg.GaugeFunc("e2e_fleet_wheel_behind", "Current tick backlog per shard.", func() float64 {
				return float64(f.ShardLive(i).Wheel.Behind)
			}, l)
			reg.GaugeFunc("e2e_fleet_wheel_fired", "Wheel timers fired per shard.", func() float64 {
				return float64(f.ShardLive(i).Wheel.Fired)
			}, l)
			reg.GaugeFunc("e2e_fleet_wheel_services", "Run-queue services per shard.", func() float64 {
				return float64(f.ShardLive(i).Wheel.Services)
			}, l)
		}
		reg.GaugeFunc("e2e_fleet_sent_sum", "Requests sent, all shards.", func() float64 {
			var t uint64
			for i := 0; i < f.Shards(); i++ {
				t += f.ShardLive(i).Sent
			}
			return float64(t)
		})
		debug := obs.NewDebugServer(reg, obs.NewRing(16))
		if tr != nil {
			debug.SetSpans(tr.Ring())
		}
		a, err := debug.Start(ff.obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvload: obs:", err)
			os.Exit(1)
		}
		defer debug.Close()
		fmt.Printf("obs listening on %s\n", a)
	}

	fmt.Printf("fleet: %d conns (%d active @ %.0f req/s, idle heartbeat %v), %d shards, ctick=%v, nofile=%d\n",
		ff.conns, fleetActive(ff), ff.rate, ff.idleEvery, f.Shards(), ff.ctick, fds)
	rep, err := f.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvload:", err)
		os.Exit(1)
	}

	us := func(d time.Duration) string { return d.Round(time.Microsecond).String() }
	fmt.Printf("\n%-11s %7s %10s %10s %10s %10s\n", "group", "conns", "count", "p50", "p99", "p999")
	fmt.Printf("%-11s %7d %10d %10s %10s %10s\n", "controlled",
		rep.Controlled.Conns, rep.Controlled.Count, us(rep.Controlled.P50), us(rep.Controlled.P99), us(rep.Controlled.P999))
	fmt.Printf("%-11s %7d %10d %10s %10s %10s\n", "nagle",
		rep.Nagle.Conns, rep.Nagle.Count, us(rep.Nagle.P50), us(rep.Nagle.P99), us(rep.Nagle.P999))
	fmt.Printf("\nsent=%d completed=%d skipped=%d dialErrors=%d reconnects=%d dead=%d elapsed=%v\n",
		rep.Sent, rep.Completed, rep.Skipped, rep.DialErrors, rep.Reconnects, rep.DeadConns,
		rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("control: ticks=%d degraded=%d validEstimates=%d batchOnFrac=%.2f\n",
		rep.Controlled.ControlTicks+rep.Nagle.ControlTicks,
		rep.Controlled.DegradedTicks+rep.Nagle.DegradedTicks,
		rep.Controlled.ValidEstimates+rep.Nagle.ValidEstimates,
		rep.Controlled.FinalBatchOnFrac)
	var fired, services uint64
	for _, st := range rep.Shards {
		fired += st.Fired
		services += st.Services
	}
	fmt.Printf("shards: %d, wheelFired=%d services=%d maxBehindTicks=%d finalRunQueue=%d\n",
		len(rep.Shards), fired, services, rep.MaxBehindTicks, rep.FinalRunQueue)
}

// fleetSpanHook adapts a tracer to the fleet's completion feed, or nil
// when tracing is off. It runs on many read-loop goroutines at once, so
// each call uses its own stack-scratch span (the tracer never retains the
// pointer, so it does not escape).
func fleetSpanHook(tr *span.Tracer) func(conn, shard int, reqID uint64, sentNs, ackNs int64) {
	if tr == nil {
		return nil
	}
	return func(conn, shard int, reqID uint64, sentNs, ackNs int64) {
		if !tr.Sampled(uint64(conn)<<32 ^ reqID) {
			return
		}
		var sp span.Span
		tr.Begin(&sp, uint32(shard), uint32(conn), reqID, sentNs)
		tr.Finish(&sp, ackNs)
	}
}

func fleetActive(ff fleetFlags) int {
	if ff.active > 0 {
		return ff.active
	}
	a := ff.conns / 10
	if a < 1 {
		a = 1
	}
	return a
}
