// Command e2efig regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	e2efig -fig all                 # everything (EXPERIMENTS.md content)
//	e2efig -fig 4a -dur 400ms       # one figure, longer runs
//	e2efig -fig 4a -parallel 1      # force serial execution of the sweep
//	e2efig -fig 4a -trace out.log   # also dump the raw ethtool-style log
//	e2efig -analyze out.log         # offline analysis of a dumped log
//	e2efig -spans out.jsonl         # span-traced run + estimator audit
//
// Sweeps fan their runs across -parallel worker goroutines (default:
// GOMAXPROCS). Each run draws from its own seeded RNG, so results are
// byte-identical regardless of the worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"e2ebatch/internal/faults"
	"e2ebatch/internal/figures"
	"e2ebatch/internal/obs"
	"e2ebatch/internal/obs/span"
	"e2ebatch/internal/tcpsim"
	"e2ebatch/internal/trace"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "which figure to regenerate: 1, 2, 4a, 4b, toggle, hints, aimd, tick, exchange, multiconn, timeline, tail, gro, cscan, bandits, loss, faults, rep, all")
		faultPlan  = flag.String("faults", "metadrop", "fault plan for -fig faults: "+strings.Join(faults.Names(), ", "))
		dur        = flag.Duration("dur", 300*time.Millisecond, "virtual duration of each run")
		seed       = flag.Int64("seed", 7, "simulation seed")
		rateList   = flag.String("rates", "", "comma-separated offered loads in RPS (default: figure-specific grid)")
		traceOut   = flag.String("trace", "", "dump a raw counter log for one 35 kRPS batching-off run to this file")
		spansOut   = flag.String("spans", "", "dump sampled request spans (JSONL) for one 35 kRPS tail-targeting dynamic run to this file, with the online estimator audit attached, and exit")
		spanEvery  = flag.Uint64("spansample", 8, "with -spans: trace 1-in-N completed requests (1: every request)")
		analyze    = flag.String("analyze", "", "offline-analyze a counter log dumped with -trace and exit")
		metricsOut = flag.String("metricsout", "", "with -analyze: also write a Prometheus text snapshot (fault activations, sample counts) to this file")
		batch      = flag.Int("syscall-batch", 4, "requests per send(2) in the hints experiment")
		par        = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for sweep runs (results are identical for any value)")
	)
	flag.Parse()

	if *par < 1 {
		fmt.Fprintf(os.Stderr, "e2efig: -parallel must be >= 1 (got %d)\n", *par)
		os.Exit(2)
	}
	figures.SetParallelism(*par)

	if *analyze != "" {
		if err := analyzeLog(*analyze, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "e2efig:", err)
			os.Exit(1)
		}
		return
	}

	cal := figures.DefaultCalib()
	rates := figures.DefaultFig4Rates()
	if *rateList != "" {
		rates = nil
		for _, f := range strings.Split(*rateList, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "e2efig: bad rate %q\n", f)
				os.Exit(2)
			}
			rates = append(rates, v)
		}
	}

	if *spansOut != "" {
		if err := dumpSpans(cal, *spansOut, *dur, *seed, *spanEvery); err != nil {
			fmt.Fprintln(os.Stderr, "e2efig:", err)
			os.Exit(1)
		}
		return
	}

	if *traceOut != "" {
		if err := dumpTrace(cal, *traceOut, *dur, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "e2efig:", err)
			os.Exit(1)
		}
		fmt.Printf("raw counter log written to %s\n", *traceOut)
	}

	run := func(name string) {
		switch name {
		case "1":
			figures.WriteFig1(os.Stdout, figures.Fig1())
		case "2":
			figures.WriteFig2(os.Stdout, figures.Fig2(cal, *dur, *seed))
		case "4a":
			figures.WriteFig4(os.Stdout, figures.Fig4a(cal, rates, *dur, *seed))
		case "tail":
			figures.WriteTail(os.Stdout, figures.Fig4a(cal, rates, *dur, *seed))
		case "4b":
			figures.WriteFig4(os.Stdout, figures.Fig4b(cal, rates, *dur, *seed))
		case "toggle":
			tr := rates
			if *rateList == "" {
				tr = []float64{10000, 30000, 45000, 60000}
			}
			figures.WriteToggle(os.Stdout, figures.Toggle(cal, tr, *dur, *seed))
		case "hints":
			hr := rates
			if *rateList == "" {
				hr = []float64{10000, 30000}
			}
			figures.WriteHints(os.Stdout, figures.Hints(cal, hr, *dur, *seed, *batch))
		case "aimd":
			ar := rates
			if *rateList == "" {
				ar = []float64{10000, 60000}
			}
			figures.WriteAIMD(os.Stdout, figures.AIMD(cal, ar, *dur, *seed))
		case "tick":
			ivs := []time.Duration{200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
			figures.WriteTickAblation(os.Stdout, figures.TickAblation(cal, 50000, ivs, *dur, *seed))
		case "timeline":
			figures.WriteTimeline(os.Stdout, figures.Timeline(cal, 50000, *dur, *seed))
		case "rep":
			figures.WriteReplicated(os.Stdout, figures.ReplicatedFig4a(cal, rates, *dur, []int64{*seed, *seed + 12, *seed + 94}))
		case "loss":
			figures.WriteLoss(os.Stdout, figures.LossRobustness(cal, 20000, []float64{0, 0.001, 0.01, 0.05}, *dur, *seed))
		case "faults":
			figures.WriteFaultSweep(os.Stdout, figures.FaultSweep(cal, 20000, []float64{0, 0.01, 0.05}, *faultPlan, *dur, *seed))
		case "bandits":
			figures.WritePolicyCompare(os.Stdout, figures.PolicyCompare(cal, []float64{10000, 45000, 60000}, *dur, *seed))
		case "cscan":
			figures.WriteCScan(os.Stdout, figures.CScan(cal, []float64{1, 1.25, 1.5, 1.75, 2, 2.5}, *dur, *seed))
		case "gro":
			figures.WriteGROAblation(os.Stdout, figures.GROAblation(cal, []float64{25000, 40000, 55000, 70000}, *dur, *seed))
		case "multiconn":
			figures.WriteMultiConn(os.Stdout, figures.MultiConn(cal, 4, 50000, *dur, *seed))
		case "exchange":
			ivs := []time.Duration{0, time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond}
			figures.WriteExchangeAblation(os.Stdout, figures.ExchangeAblation(cal, 35000, ivs, *dur, *seed))
		default:
			fmt.Fprintf(os.Stderr, "e2efig: unknown figure %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	if *fig == "all" {
		for _, name := range []string{"1", "2", "4a", "4b", "toggle", "hints", "aimd", "tick", "exchange", "multiconn", "timeline", "tail", "gro", "cscan", "bandits", "loss", "faults", "rep"} {
			run(name)
		}
		return
	}
	run(*fig)
}

// dumpSpans runs one tail-targeting dynamic run with the span tracer and
// estimator audit attached — the simulated deployment of the observability
// plane. Sampled completions become spans stamped with the estimate current
// at their decision tick; the auditor scores measured vs predicted and the
// engine consumes the verdict. Virtual time makes the dump reproducible
// byte for byte at a fixed seed.
func dumpSpans(cal figures.Calib, path string, dur time.Duration, seed int64, every uint64) error {
	tr := span.New(span.Config{
		Seed:        uint64(seed),
		SampleEvery: every,
		Ring:        span.NewRing(1, 4096),
		Audit:       span.NewAuditor(span.AuditConfig{ExpectTail: true}),
	})
	ob := obs.NewEngineObserver(obs.NewEngineMetrics(obs.NewRegistry()), nil)
	ob.Spans = tr
	dyn := figures.DefaultDynamicSpec(500 * time.Microsecond)
	dyn.TailQuantile = 0.99
	dyn.Audit = tr.Auditor()
	var sp span.Span // the sim runs requests on one goroutine: reused scratch
	out := figures.Run(figures.RunSpec{
		Calib:    cal,
		Seed:     seed,
		Rate:     35000,
		Duration: dur,
		Dynamic:  dyn,
		Observer: ob,
		OnComplete: func(reqID uint64, scheduledNs, completedNs int64) {
			if !tr.Sampled(reqID) {
				return
			}
			tr.Begin(&sp, 0, 0, reqID, scheduledNs)
			tr.Finish(&sp, completedNs)
		},
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.Ring().WriteJSONL(f, tr.Ring().Cap()); err != nil {
		return err
	}
	st := tr.Auditor().AuditStats()
	fmt.Printf("spans written to %s (%d in ring, sample 1-in-%d)\n", path, tr.Ring().Len(), every)
	fmt.Printf("audit: %d audited, %d tail-audited, p99 coverage %.3f, residual EWMA %v, drift ticks %d\n",
		st.Audited, st.TailAudited, st.Coverage, st.ResidualEWMA.Round(time.Microsecond), out.AuditDriftTicks)
	return nil
}

// dumpTrace produces a raw counter log the way the paper's prototype
// exports ethtool counters, for offline analysis with -analyze.
func dumpTrace(cal figures.Calib, path string, dur time.Duration, seed int64) error {
	out := figures.Run(figures.RunSpec{
		Calib:    cal,
		Seed:     seed,
		Rate:     35000,
		Duration: dur,
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = out.Log.WriteTo(f)
	return err
}

func analyzeLog(path, metricsOut string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := trace.ReadLog(f)
	if err != nil {
		return err
	}
	fmt.Printf("log: %d samples spanning %v\n", len(log.Records), spanOf(log))
	for u := 0; u < tcpsim.NumUnits; u++ {
		est := log.Overall(tcpsim.Unit(u))
		if !est.Valid {
			fmt.Printf("%-8s: no valid estimate\n", tcpsim.Unit(u))
			continue
		}
		fmt.Printf("%-8s: latency %v  throughput %.0f/s\n",
			tcpsim.Unit(u), est.Latency.Round(time.Microsecond), est.Throughput)
	}
	if metricsOut != "" {
		// Bridge the log's out-of-band events (fault activations above
		// all) into a metric snapshot — post-hoc, so the golden-pinned
		// simulation output cannot have been perturbed by telemetry.
		reg := obs.NewRegistry()
		obs.CountTraceEvents(reg, log)
		out, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := reg.WritePrometheus(out); err != nil {
			return err
		}
		fmt.Printf("metric snapshot written to %s\n", metricsOut)
	}
	return nil
}

func spanOf(l *trace.Log) time.Duration {
	if len(l.Records) < 2 {
		return 0
	}
	return l.Records[len(l.Records)-1].At.Sub(l.Records[0].At)
}
