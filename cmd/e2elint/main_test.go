package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCleanTree is the acceptance gate: the seven analyzers over the whole
// module exit 0. Satellite fixes (DecodeWireExact in the quickstart, the
// seeded kvload RNG) keep it that way.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree lint re-typechecks every package; skipped under -short (the race gate)")
	}
	if code := run([]string{"./..."}, devNull(t), os.Stderr); code != 0 {
		t.Fatalf("e2elint ./... exited %d, want 0", code)
	}
}

// TestSeededViolation proves the driver actually fails the build on a
// violation: the detrand golden package is riddled with them.
func TestSeededViolation(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "detrand")
	if code := run([]string{dir}, devNull(t), devNull(t)); code != 1 {
		t.Fatalf("e2elint %s exited %d, want 1", dir, code)
	}
}

func TestListFlag(t *testing.T) {
	if code := run([]string{"-list"}, devNull(t), os.Stderr); code != 0 {
		t.Fatalf("e2elint -list exited %d, want 0", code)
	}
}

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}
