package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"e2ebatch/internal/lint"
)

// TestCleanTree is the acceptance gate: the pure go/types analyzers over the
// whole module exit 0. Satellite fixes (DecodeWireExact in the quickstart,
// the seeded kvload RNG) keep it that way.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree lint re-typechecks every package; skipped under -short (the race gate)")
	}
	if code := run([]string{"./..."}, devNull(t), os.Stderr); code != 0 {
		t.Fatalf("e2elint ./... exited %d, want 0", code)
	}
}

// TestEscapesCleanTree is the other acceptance gate: the compiler-backed
// escape-analysis pass over every //e2e:hotpath function in the module
// exits 0 — no hot-path local reaches the heap.
func TestEscapesCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree load + go build -gcflags=-m; skipped under -short (the race gate)")
	}
	if code := run([]string{"-escapes", "./..."}, devNull(t), os.Stderr); code != 0 {
		t.Fatalf("e2elint -escapes ./... exited %d, want 0", code)
	}
}

// TestEscapesSeededViolation proves -escapes fails the build when a hot
// function's locals escape: the escapes golden package leaks on purpose.
// The testdata's //lint:ignore e2elint/escapes directive is also live here,
// so the Justified leak must not be among the findings.
func TestEscapesSeededViolation(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "escapes")
	out := captureFile(t)
	if code := run([]string{"-escapes", dir}, out, devNull(t)); code != 1 {
		t.Fatalf("e2elint -escapes %s exited %d, want 1", dir, code)
	}
	got := readBack(t, out)
	if !strings.Contains(got, "moved to heap: x") || !strings.Contains(got, "escapes to heap") {
		t.Errorf("findings missing compiler escape diagnostics:\n%s", got)
	}
	if strings.Contains(got, "moved to heap: w") {
		t.Errorf("//lint:ignore e2elint/escapes failed to suppress the Justified finding:\n%s", got)
	}
}

// TestHotpathSeededViolation does the same for the AST half of the gate,
// including its ignore hatch (the Justified fmt.Sprintf carries one).
func TestHotpathSeededViolation(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "hotpath")
	out := captureFile(t)
	if code := run([]string{dir}, out, devNull(t)); code != 1 {
		t.Fatalf("e2elint %s exited %d, want 1", dir, code)
	}
	got := readBack(t, out)
	if !strings.Contains(got, "e2elint/hotpath") {
		t.Errorf("findings missing hotpath diagnostics:\n%s", got)
	}
	if strings.Contains(got, "suppressed") {
		t.Errorf("//lint:ignore e2elint/hotpath failed to suppress the Justified finding:\n%s", got)
	}
}

// TestSeededViolation proves the driver actually fails the build on a
// violation: the detrand golden package is riddled with them.
func TestSeededViolation(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "detrand")
	if code := run([]string{dir}, devNull(t), devNull(t)); code != 1 {
		t.Fatalf("e2elint %s exited %d, want 1", dir, code)
	}
}

// TestListFlag pins the -list contract: exit 0 and one line per registered
// analyzer, so the usage text can never drift from the suite.
func TestListFlag(t *testing.T) {
	out := captureFile(t)
	if code := run([]string{"-list"}, out, os.Stderr); code != 0 {
		t.Fatalf("e2elint -list exited %d, want 0", code)
	}
	got := readBack(t, out)
	for _, a := range lint.Analyzers() {
		if !strings.Contains(got, "e2elint/"+a.Name+":") {
			t.Errorf("-list output is missing analyzer %q:\n%s", a.Name, got)
		}
	}
	if n := strings.Count(strings.TrimSpace(got), "\n") + 1; n != len(lint.Analyzers()) {
		t.Errorf("-list printed %d lines, want %d", n, len(lint.Analyzers()))
	}
}

func TestBadFlag(t *testing.T) {
	if code := run([]string{"-nonsense"}, devNull(t), devNull(t)); code != 2 {
		t.Fatalf("e2elint -nonsense exited %d, want 2", code)
	}
}

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// captureFile returns a temp file standing in for stdout so tests can assert
// on the driver's output.
func captureFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "e2elint-out-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func readBack(t *testing.T, f *os.File) string {
	t.Helper()
	b, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
