// Command e2elint runs e2ebatch's project-specific static analysis suite —
// the seven analyzers in internal/lint that enforce the concurrency and
// determinism invariants the estimator's correctness depends on (see
// DESIGN.md "Enforced invariants").
//
// Usage:
//
//	e2elint [-list] [packages or directories]
//
// Arguments default to ./... and may be go package patterns or plain
// directories (directories are analyzed as loose packages, which is how the
// analyzer testdata exercises seeded violations). Findings print as
// file:line:col: e2elint/<analyzer>: message; the exit status is 1 when any
// finding survives, 2 on a usage or load error, 0 on a clean tree.
//
// A finding can be suppressed with a justified escape hatch on or above the
// offending line:
//
//	//lint:ignore e2elint/<analyzer> <reason>
//
// The driver verifies the reason string is present; a bare directive is
// itself reported.
package main

import (
	"flag"
	"fmt"
	"os"

	"e2ebatch/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	flags := flag.NewFlagSet("e2elint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list the analyzers and exit")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "e2elint/%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader("")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var pkgs []*lint.Package
	var globs []string
	for _, pat := range patterns {
		if st, err := os.Stat(pat); err == nil && st.IsDir() {
			pkg, err := loader.LoadDir(pat)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			pkgs = append(pkgs, pkg)
			continue
		}
		globs = append(globs, pat)
	}
	if len(globs) > 0 {
		loaded, err := loader.Load(globs...)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		pkgs = append(pkgs, loaded...)
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, d := range lint.Check(pkg, analyzers) {
			findings++
			fmt.Fprintln(stdout, d)
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "e2elint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
