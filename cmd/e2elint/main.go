// Command e2elint runs e2ebatch's project-specific static analysis suite —
// the twelve analyzers in internal/lint that enforce the concurrency,
// determinism, shard-scheduling and hot-path allocation invariants the
// estimator's correctness and overhead budget depend on (see DESIGN.md
// "Enforced invariants" and "Hot-path allocation discipline").
//
// Usage:
//
//	e2elint [-list] [-escapes] [packages or directories]
//
// Arguments default to ./... and may be go package patterns or plain
// directories (directories are analyzed as loose packages, which is how the
// analyzer testdata exercises seeded violations). Findings print as
// file:line:col: e2elint/<analyzer>: message; the exit status is 1 when any
// finding survives, 2 on a usage or load error, 0 on a clean tree.
//
// The default run executes every pure go/types analyzer. -escapes instead
// runs only the compiler-backed escapes gate, which rebuilds the packages
// containing //e2e:hotpath functions with -gcflags=-m and fails when escape
// analysis moves a hot function's locals to the heap; it is split out
// because it shells out to the gc compiler (make tier1 runs both).
//
// A finding can be suppressed with a justified escape hatch on or above the
// offending line:
//
//	//lint:ignore e2elint/<analyzer> <reason>
//
// The driver verifies the reason string is present; a bare directive is
// itself reported.
package main

import (
	"flag"
	"fmt"
	"os"

	"e2ebatch/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	flags := flag.NewFlagSet("e2elint", flag.ContinueOnError)
	flags.SetOutput(stderr)
	list := flags.Bool("list", false, "list the analyzers and exit")
	escapes := flags.Bool("escapes", false,
		"run only the compiler-backed escapes gate (go build -gcflags=-m) over //e2e:hotpath functions")
	if err := flags.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "e2elint/%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	// The escapes analyzer shells out to the compiler, so it runs under its
	// own flag; everything else is a pure in-process go/types pass.
	selected := analyzers[:0:0]
	for _, a := range analyzers {
		if (a.Name == "escapes") == *escapes {
			selected = append(selected, a)
		}
	}
	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader("")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var pkgs []*lint.Package
	var globs []string
	for _, pat := range patterns {
		if st, err := os.Stat(pat); err == nil && st.IsDir() {
			pkg, err := loader.LoadDir(pat)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			pkgs = append(pkgs, pkg)
			continue
		}
		globs = append(globs, pat)
	}
	if len(globs) > 0 {
		loaded, err := loader.Load(globs...)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		pkgs = append(pkgs, loaded...)
	}

	// One CheckPackages call over the whole set: the module-level analyzers
	// (hotpath, escapes) need every package at once so cross-package callee
	// edges resolve.
	findings := 0
	for _, d := range lint.CheckPackages(pkgs, selected) {
		findings++
		fmt.Fprintln(stdout, d)
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "e2elint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
