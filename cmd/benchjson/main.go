// Command benchjson tees a `go test -bench` transcript from stdin to
// stdout while extracting the benchmark result lines, then writes them as
// a JSON array to -out. `make bench` uses it to archive BENCH_<date>.json
// without hiding the live run output:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -out BENCH_2026-08-06.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"e2ebatch/internal/benchfmt"
)

func main() {
	out := flag.String("out", "", "write the JSON results here (empty: stdout, transcript suppressed)")
	flag.Parse()

	var results []benchfmt.Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := benchfmt.ParseLine(line); ok {
			results = append(results, r)
		}
		if *out != "" {
			fmt.Println(line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := benchfmt.WriteJSON(w, results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("wrote %d benchmark results to %s\n", len(results), *out)
	}
}
