// Command benchjson manages the BENCH_<date>.json perf archives.
//
// Archive mode (default) tees a `go test -bench` transcript from stdin to
// stdout while extracting the benchmark result lines, then writes them as
// a JSON array to -out. `make bench` uses it to archive BENCH_<date>.json
// without hiding the live run output:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -out BENCH_2026-08-06.json
//
// Compare mode gates perf regressions between two archives — `make
// bench-diff` runs it over the two newest. It exits 1 when any benchmark's
// ns/op, B/op or allocs/op grew by more than -maxregress percent, or when a
// benchmark whose baseline was 0 B/op and 0 allocs/op starts allocating at
// all (the //e2e:hotpath zero-alloc pins, DESIGN.md §13):
//
//	benchjson -compare BENCH_old.json BENCH_new.json -maxregress 15
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"e2ebatch/internal/benchfmt"
)

func main() {
	out := flag.String("out", "", "write the JSON results here (empty: stdout, transcript suppressed)")
	compare := flag.Bool("compare", false, "compare two archives: benchjson -compare old.json new.json")
	maxRegress := flag.Float64("maxregress", 15, "compare mode: max tolerated ns/op growth in percent")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args(), *maxRegress))
	}
	runArchive(*out)
}

// runCompare loads two archives and renders the gate verdict. Flags placed
// after the positional file names (the natural `-compare old new
// -maxregress 15` order) are parsed here, since the flag package stops at
// the first positional argument.
func runCompare(args []string, maxRegress float64) int {
	var files []string
	for i := 0; i < len(args); i++ {
		if args[i] == "-maxregress" || args[i] == "--maxregress" {
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "benchjson: -maxregress needs a value")
				return 2
			}
			v, err := strconv.ParseFloat(args[i+1], 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: bad -maxregress %q\n", args[i+1])
				return 2
			}
			maxRegress = v
			i++
			continue
		}
		files = append(files, args[i])
	}
	if len(files) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson -compare old.json new.json [-maxregress pct]")
		return 2
	}
	old, err := loadArchive(files[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	neu, err := loadArchive(files[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	fmt.Printf("comparing %s -> %s (gate: +%.0f%% ns/op)\n", files[0], files[1], maxRegress)
	if !benchfmt.WriteCompare(os.Stdout, benchfmt.Compare(old, neu, maxRegress)) {
		return 1
	}
	return 0
}

func loadArchive(path string) ([]benchfmt.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []benchfmt.Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return results, nil
}

func runArchive(out string) {
	var results []benchfmt.Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := benchfmt.ParseLine(line); ok {
			results = append(results, r)
		}
		if out != "" {
			fmt.Println(line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := benchfmt.WriteJSON(w, results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if out != "" {
		fmt.Printf("wrote %d benchmark results to %s\n", len(results), out)
	}
}
