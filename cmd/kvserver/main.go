// Command kvserver runs the mini-Redis substrate over real TCP sockets.
// It speaks enough RESP2 for standard Redis clients (SET/GET/DEL/INCR/...).
//
// Usage:
//
//	kvserver -addr :6380            # TCP_NODELAY like real Redis
//	kvserver -addr :6380 -nagle     # leave Nagle batching enabled
//	kvserver -addr :6380 -obs :9090 # expose /metrics, /debug/* on :9090
//	kvserver -addr :6380 -shards 8  # per-shard conn/request accounting
//
// With -obs, `curl :9090/metrics` serves the full engine metric schema in
// Prometheus text format plus the server-side request latency summary and
// the per-shard connection and request families (connections hash to
// shards by peer address; the *_sum rollups aggregate the padded atomic
// cells lock-free at scrape time), and /debug/pprof is live.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"time"

	"e2ebatch/internal/kv"
	"e2ebatch/internal/obs"
	"e2ebatch/internal/obs/span"
	"e2ebatch/internal/realtcp"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:6380", "listen address")
		nagle   = flag.Bool("nagle", false, "keep Nagle's algorithm enabled on accepted connections")
		obsAddr = flag.String("obs", "", "serve /metrics, /debug/decisions, /debug/vars and /debug/pprof on this address (empty: disabled)")
		shards  = flag.Int("shards", runtime.GOMAXPROCS(0), "shard count for per-shard connection/request accounting")
		connbuf = flag.Int("connbuf", 64<<10, "per-connection buffer size in bytes (high fan-in wants this small)")
		nofile  = flag.Uint64("nofile", 1<<20, "raise the open-file soft limit toward this before serving")
		spanN   = flag.Uint64("spansample", 64, "with -obs, trace 1-in-N served requests as spans at /debug/spans and /debug/trace (0: disabled; 1: every request)")
	)
	flag.Parse()

	if *shards < 1 {
		*shards = 1
	}
	fds, _ := realtcp.RaiseNOFILE(*nofile)

	store := kv.NewStore(func() time.Duration { return time.Duration(time.Now().UnixNano()) })
	srv := realtcp.NewServer(kv.NewEngine(store))
	srv.Nagle = *nagle
	srv.ShardCount = *shards
	srv.BufBytes = *connbuf

	var debug *obs.DebugServer
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		// Register the full engine schema up front so scrapes always
		// show every family — flat until a control loop drives them
		// (the engine runs client-side; a pure server exports zeros).
		obs.NewEngineMetrics(reg)
		lat := reg.Latencies("e2e_request_latency_seconds",
			"Server-side command execution latency.")
		conns := reg.ShardedGauge("e2e_server_conns",
			"Open connections per accept shard.", *shards)
		reqs := reg.ShardedCounter("e2e_server_requests_total",
			"Requests served per accept shard.", *shards)
		reg.GaugeFunc("e2e_server_conns_sum",
			"Open connections, all shards.", func() float64 {
				return float64(conns.Value())
			})
		reg.GaugeFunc("e2e_server_requests_sum",
			"Requests served, all shards.", func() float64 {
				return float64(reqs.Value())
			})
		srv.OnConnShard = func(shard, delta int) { conns.Add(shard, int64(delta)) }
		// Server-side spans: each sampled request's execution window on the
		// process timebase (parse-to-reply, like the latency summary). The
		// request id is a process-wide atomic counter; the hook runs on many
		// handler goroutines, so each call uses its own stack-scratch span.
		var tr *span.Tracer
		var reqSeq atomic.Uint64
		start := time.Now()
		if *spanN > 0 {
			tr = span.New(span.Config{
				SampleEvery: *spanN,
				Ring:        span.NewRing(*shards, 512),
			})
		}
		srv.OnRequestShard = func(shard int, d time.Duration) {
			reqs.Inc(shard)
			lat.Record(d)
			if tr == nil {
				return
			}
			id := reqSeq.Add(1) - 1
			if !tr.Sampled(id) {
				return
			}
			end := time.Since(start).Nanoseconds()
			var sp span.Span
			tr.Begin(&sp, uint32(shard), 0, id, end-d.Nanoseconds())
			tr.Finish(&sp, end)
		}
		debug = obs.NewDebugServer(reg, obs.NewRing(1024))
		if tr != nil {
			debug.SetSpans(tr.Ring())
		}
		a, err := debug.Start(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvserver: obs:", err)
			os.Exit(1)
		}
		fmt.Printf("obs listening on %s\n", a)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
	fmt.Printf("kvserver listening on %s (nagle=%v, shards=%d, connbuf=%d, nofile=%d)\n",
		l.Addr(), *nagle, *shards, *connbuf, fds)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Println("kvserver: shutting down")
		if debug != nil {
			debug.Close()
		}
		srv.Close()
	}()

	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
}
