// Command kvserver runs the mini-Redis substrate over real TCP sockets.
// It speaks enough RESP2 for standard Redis clients (SET/GET/DEL/INCR/...).
//
// Usage:
//
//	kvserver -addr :6380            # TCP_NODELAY like real Redis
//	kvserver -addr :6380 -nagle     # leave Nagle batching enabled
//	kvserver -addr :6380 -obs :9090 # expose /metrics, /debug/* on :9090
//
// With -obs, `curl :9090/metrics` serves the full engine metric schema in
// Prometheus text format plus the server-side request latency summary, and
// /debug/pprof is live.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"e2ebatch/internal/kv"
	"e2ebatch/internal/obs"
	"e2ebatch/internal/realtcp"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:6380", "listen address")
		nagle   = flag.Bool("nagle", false, "keep Nagle's algorithm enabled on accepted connections")
		obsAddr = flag.String("obs", "", "serve /metrics, /debug/decisions, /debug/vars and /debug/pprof on this address (empty: disabled)")
	)
	flag.Parse()

	store := kv.NewStore(func() time.Duration { return time.Duration(time.Now().UnixNano()) })
	srv := realtcp.NewServer(kv.NewEngine(store))
	srv.Nagle = *nagle

	var debug *obs.DebugServer
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		// Register the full engine schema up front so scrapes always
		// show every family — flat until a control loop drives them
		// (the engine runs client-side; a pure server exports zeros).
		obs.NewEngineMetrics(reg)
		lat := reg.Latencies("e2e_request_latency_seconds",
			"Server-side command execution latency.")
		srv.OnRequest = lat.Record
		debug = obs.NewDebugServer(reg, obs.NewRing(1024))
		a, err := debug.Start(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvserver: obs:", err)
			os.Exit(1)
		}
		fmt.Printf("obs listening on %s\n", a)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
	fmt.Printf("kvserver listening on %s (nagle=%v)\n", l.Addr(), *nagle)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Println("kvserver: shutting down")
		if debug != nil {
			debug.Close()
		}
		srv.Close()
	}()

	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
}
