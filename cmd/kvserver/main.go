// Command kvserver runs the mini-Redis substrate over real TCP sockets.
// It speaks enough RESP2 for standard Redis clients (SET/GET/DEL/INCR/...).
//
// Usage:
//
//	kvserver -addr :6380            # TCP_NODELAY like real Redis
//	kvserver -addr :6380 -nagle     # leave Nagle batching enabled
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"e2ebatch/internal/kv"
	"e2ebatch/internal/realtcp"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:6380", "listen address")
		nagle = flag.Bool("nagle", false, "keep Nagle's algorithm enabled on accepted connections")
	)
	flag.Parse()

	store := kv.NewStore(func() time.Duration { return time.Duration(time.Now().UnixNano()) })
	srv := realtcp.NewServer(kv.NewEngine(store))
	srv.Nagle = *nagle

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
	fmt.Printf("kvserver listening on %s (nagle=%v)\n", l.Addr(), *nagle)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Println("kvserver: shutting down")
		srv.Close()
	}()

	if err := srv.Serve(l); err != nil {
		fmt.Fprintln(os.Stderr, "kvserver:", err)
		os.Exit(1)
	}
}
