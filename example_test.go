package e2ebatch_test

import (
	"fmt"
	"math/rand"
	"time"

	"e2ebatch"
)

// ExampleGetAvgs reproduces the paper's §3.1 illustration: a queue holding
// one item for 10 µs and then four items for 20 µs has an average occupancy
// of (1×10 + 4×20) / 30 = 3 items.
func ExampleGetAvgs() {
	us := func(n int64) e2ebatch.Time { return e2ebatch.Time(n * 1000) }
	var q e2ebatch.QueueState
	q.Init(0)
	start := q.Snapshot(us(0))
	q.Track(us(0), 1)  // one item from t=0
	q.Track(us(10), 3) // four items from t=10µs
	q.Track(us(30), -4)
	end := q.Snapshot(us(30))

	a := e2ebatch.GetAvgs(start, end)
	fmt.Printf("Q = %.0f items\n", a.Q)
	fmt.Printf("latency = %v\n", a.Latency)
	// Output:
	// Q = 3 items
	// latency = 22.5µs
}

// ExampleEstimateE2E evaluates the §3.2 formula
// L ≈ L_unacked − L_ackdelay^remote + L_unread + L_unread^remote.
func ExampleEstimateE2E() {
	mk := func(lat time.Duration) e2ebatch.Avgs {
		return e2ebatch.Avgs{Latency: lat, Throughput: 10000, Valid: true, Departures: 1}
	}
	local := e2ebatch.Delays{
		Unacked: mk(100 * time.Microsecond),
		Unread:  mk(20 * time.Microsecond),
	}
	remote := e2ebatch.Delays{
		Unread:   mk(30 * time.Microsecond),
		AckDelay: mk(10 * time.Microsecond),
	}
	est := e2ebatch.EstimateE2E(local, remote)
	fmt.Printf("L = %v (valid: %v)\n", est.LocalView, est.Valid)
	// Output:
	// L = 140µs (valid: true)
}

// ExampleHintTracker shows the §3.3 create/complete API: the tracker's
// single logical queue yields exact application-perceived performance.
func ExampleHintTracker() {
	var now e2ebatch.Time
	tr := e2ebatch.NewHintTracker(func() e2ebatch.Time { return now })
	est := e2ebatch.NewHintEstimator(tr)
	est.Sample() // prime

	for i := 0; i < 100; i++ {
		tr.Create(1)
		now += e2ebatch.Time(250 * time.Microsecond) // response arrives
		tr.Complete(1)
		now += e2ebatch.Time(750 * time.Microsecond) // think time
	}
	a := est.Sample()
	fmt.Printf("latency = %v, throughput = %.0f req/s\n", a.Latency, a.Throughput)
	// Output:
	// latency = 250µs, throughput = 1000 req/s
}

// ExampleToggler drives the ε-greedy policy with estimates where batching
// meets a 500 µs SLO and not batching does not; it converges to batch-on.
func ExampleToggler() {
	tog := e2ebatch.NewToggler(
		e2ebatch.ThroughputUnderSLO{SLO: 500 * time.Microsecond},
		e2ebatch.DefaultTogglerConfig(),
		e2ebatch.BatchOff,
		rand.New(rand.NewSource(1)),
	)
	for i := 0; i < 200; i++ {
		if tog.Mode() == e2ebatch.BatchOn {
			tog.Observe(200*time.Microsecond, 50000, true)
		} else {
			tog.Observe(900*time.Microsecond, 40000, true)
		}
	}
	fmt.Println(tog.Mode())
	// Output:
	// batch-on
}

// ExampleEncodeWire shows the 36-byte metadata exchange of §3.2.
func ExampleEncodeWire() {
	var q e2ebatch.QueueState
	q.Init(0)
	q.Track(0, 2)
	q.Track(e2ebatch.Time(5*time.Millisecond), -2)
	ws := e2ebatch.WireState{Unacked: e2ebatch.ToWireQueue(q.Snapshot(e2ebatch.Time(10 * time.Millisecond)))}

	buf := make([]byte, e2ebatch.WireSize)
	n, _ := e2ebatch.EncodeWire(buf, ws)
	back, _ := e2ebatch.DecodeWire(buf)
	fmt.Printf("%d bytes; unacked total = %d items\n", n, back.Unacked.Total)
	// Output:
	// 36 bytes; unacked total = 2 items
}

// ExampleAIMD shows the §5 batch-limit controller: additive growth while
// the signal says "grow", multiplicative decay otherwise.
func ExampleAIMD() {
	a := e2ebatch.NewAIMD(1448, 65536, 8192, 0.5)
	for i := 0; i < 4; i++ {
		a.Observe(true) // SLO violated: batch more
	}
	fmt.Println("after growth:", a.Limit())
	a.Observe(false) // healthy: back off
	fmt.Println("after decay:", a.Limit())
	// Output:
	// after growth: 34216
	// after decay: 17108
}
