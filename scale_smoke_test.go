package e2ebatch_test

// Scale smoke for the shared-nothing shard engine (`make scale-smoke`,
// tier-1 via `make test`): hold a 2000-connection fleet from this process
// against an in-process kvserver, every connection's control tick, pacing
// and reconnect scheduling multiplexed onto shard timer wheels, then
// require the run to be *clean* — no dial failures, no lost run-queue
// work, per-shard rollups consistent with the final report, both policy
// groups measured, and the goroutine count back at baseline afterwards
// (the per-connection-goroutine regression guard at fleet scale).

import (
	"net"
	"runtime"
	"testing"
	"time"

	"e2ebatch/internal/kv"
	"e2ebatch/internal/realtcp"
	"e2ebatch/internal/resp"
)

func TestScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("holds thousands of sockets; skipped in short mode")
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	store := kv.NewStore(func() time.Duration { return time.Duration(time.Now().UnixNano()) })
	srv := realtcp.NewServer(kv.NewEngine(store))
	srv.BufBytes = 8 << 10 // 2000 server-side conns want small buffers
	go srv.Serve(l)
	defer srv.Close()

	runtime.GC()
	base := runtime.NumGoroutine()

	const conns = 2000
	f, err := realtcp.NewFleet(realtcp.FleetOptions{
		Addr:      l.Addr().String(),
		Conns:     conns,
		Active:    100,
		Rate:      50,
		IdleEvery: 500 * time.Millisecond,
		Duration:  2 * time.Second,
		Request:   resp.AppendCommand(nil, []byte("SET"), []byte("scale"), []byte("v")),
		WheelTick: 5 * time.Millisecond,
		Tick:      100 * time.Millisecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}

	if rep.DialErrors != 0 {
		t.Errorf("dial errors = %d, want 0", rep.DialErrors)
	}
	if rep.Controlled.Conns+rep.Nagle.Conns != conns {
		t.Errorf("accounted conns = %d, want %d", rep.Controlled.Conns+rep.Nagle.Conns, conns)
	}
	if rep.FinalRunQueue != 0 {
		t.Errorf("final run queue = %d, want 0 (queued work lost at stop)", rep.FinalRunQueue)
	}
	if rep.Sent == 0 || rep.Completed == 0 {
		t.Errorf("sent=%d completed=%d, fleet moved no traffic", rep.Sent, rep.Completed)
	}
	if rep.Controlled.Count == 0 || rep.Nagle.Count == 0 {
		t.Errorf("latency counts %d/%d: a policy group measured nothing",
			rep.Controlled.Count, rep.Nagle.Count)
	}
	// Every live connection must have run its control loop: 2 s of 100 ms
	// ticks is ~20 per connection; require at least one apiece on average.
	ticks := rep.Controlled.ControlTicks + rep.Nagle.ControlTicks
	if ticks < conns {
		t.Errorf("control ticks = %d across %d conns: wheels did not reach the fleet", ticks, conns)
	}

	// The live per-shard rollups and the report must agree after teardown —
	// the same lock-free-sum consistency the obs sharded counters promise.
	var liveSent, liveCompleted, fired uint64
	for i := 0; i < f.Shards(); i++ {
		s := f.ShardLive(i)
		liveSent += s.Sent
		liveCompleted += s.Completed
		fired += s.Wheel.Fired
	}
	if liveSent != rep.Sent || liveCompleted != rep.Completed {
		t.Errorf("live rollup sent/completed = %d/%d, report = %d/%d",
			liveSent, liveCompleted, rep.Sent, rep.Completed)
	}
	if fired == 0 {
		t.Error("no wheel timers fired")
	}

	// Post-teardown, the process must shed every fleet goroutine (client
	// read loops) and the server its per-conn handlers.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: base %d, now %d after fleet teardown", base, runtime.NumGoroutine())
}
