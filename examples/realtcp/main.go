// Realtcp runs the userspace-only slice of the paper on real kernel TCP
// over loopback: a mini-Redis server, a pipelined client maintaining
// create/complete counters, live Little's-law estimates, and dynamic
// TCP_NODELAY toggling — no kernel patches required.
//
// Run with: go run ./examples/realtcp
//
// Pass -obs 127.0.0.1:9090 to watch the control loop live while it runs:
// `curl 127.0.0.1:9090/metrics` for the engine counters and latency
// summaries, `curl '127.0.0.1:9090/debug/decisions?n=20'` for the last
// decision records as JSONL.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"time"

	"e2ebatch/internal/engine"
	"e2ebatch/internal/kv"
	"e2ebatch/internal/obs"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/realtcp"
	"e2ebatch/internal/resp"
)

func main() {
	obsAddr := flag.String("obs", "", "serve /metrics and /debug endpoints on this address during the run")
	flag.Parse()
	// ---- server ----
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "listen:", err)
		os.Exit(1)
	}
	store := kv.NewStore(func() time.Duration { return time.Duration(time.Now().UnixNano()) })
	srv := realtcp.NewServer(kv.NewEngine(store))
	go srv.Serve(l)
	defer srv.Close()
	fmt.Println("mini-redis on", l.Addr())

	// ---- client with userspace counters ----
	c, err := realtcp.Dial(l.Addr().String(), 1024)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dial:", err)
		os.Exit(1)
	}
	defer c.Close()

	// The shared control engine over the client's hint counters: each
	// manual Tick runs the same estimate→decision→TCP_NODELAY loop the
	// simulated experiments use, here paced by the batch cadence instead
	// of a periodic clock.
	tog := policy.NewToggler(policy.ThroughputUnderSLO{SLO: 2 * time.Millisecond},
		policy.DefaultTogglerConfig(), policy.BatchOff, rand.New(rand.NewSource(1)))
	cfg := engine.Config{Controller: tog, Initial: tog.Mode()}
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		ring := obs.NewRing(1024)
		ob := obs.NewEngineObserver(obs.NewEngineMetrics(reg), ring)
		ob.Name = "example-realtcp"
		ob.Stats = tog.Stats
		cfg.Observer = ob
		c.ObserveLatencies(reg.Latencies("e2e_request_latency_seconds",
			"Client-observed request latency.").Record)
		debug := obs.NewDebugServer(reg, ring)
		a, err := debug.Start(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obs:", err)
			os.Exit(1)
		}
		defer debug.Close()
		fmt.Println("obs on", a)
	}
	ep := engine.New(cfg, c.EnginePort())

	val := make([]byte, 4096)
	wire := resp.AppendCommand(nil, []byte("SET"), []byte("bench-key-000000"), val)

	const (
		total    = 20000
		perTick  = 500
		tickGoal = 10 * time.Millisecond
	)
	fmt.Printf("issuing %d 4 KiB SETs, toggling TCP_NODELAY from live estimates...\n", total)
	for sent := 0; sent < total; sent += perTick {
		tickStart := time.Now()
		for i := 0; i < perTick; i++ {
			if err := c.Send(wire); err != nil {
				fmt.Fprintln(os.Stderr, "send:", err)
				os.Exit(1)
			}
		}
		for c.Outstanding() > 0 {
			time.Sleep(100 * time.Microsecond)
		}
		r := ep.Tick(c.Elapsed())
		if r.Estimate.Valid && sent%(perTick*8) == 0 {
			fmt.Printf("  est latency=%-10v tput=%8.0f/s mode=%v\n",
				r.Estimate.Latency.Round(time.Microsecond), r.Estimate.Throughput, r.Mode)
		}
		if d := tickGoal - time.Since(tickStart); d > 0 {
			time.Sleep(d)
		}
	}

	lats := c.Latencies()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, v := range lats {
		sum += v
	}
	st := tog.Stats()
	fmt.Printf("\nmeasured: n=%d mean=%v p99=%v\n",
		len(lats), (sum / time.Duration(len(lats))).Round(time.Microsecond),
		lats[len(lats)*99/100].Round(time.Microsecond))
	fmt.Printf("toggler:  %d decisions, %d switches, %d explorations, final %v\n",
		st.Decisions, st.Switches, st.Explorations, tog.Mode())
}
