// Dynamictoggle runs the paper's headline what-if as a closed loop: the
// mini-Redis SET workload on the simulated testbed, with the estimate-driven
// ε-greedy policy toggling Nagle batching live, compared against both static
// modes across a load ramp.
//
// Run with: go run ./examples/dynamictoggle
package main

import (
	"fmt"
	"os"
	"time"

	"e2ebatch/internal/figures"
)

func main() {
	cal := figures.DefaultCalib()
	rates := []float64{10000, 25000, 40000, 55000, 70000}
	dur := 400 * time.Millisecond

	fmt.Println("Simulated Redis, 16 KiB SET workload; SLO", cal.SLO)
	fmt.Println("Dynamic = ε-greedy toggling driven by live Little's-law estimates")
	fmt.Println()
	out := figures.Toggle(cal, rates, dur, 7)
	figures.WriteToggle(os.Stdout, out)

	fmt.Println()
	fmt.Println("Reading the table: at low load both modes meet the SLO, so the")
	fmt.Println("throughput-under-SLO objective is indifferent. Beyond the cutoff,")
	fmt.Println("static-off collapses into the multi-millisecond regime while the")
	fmt.Println("toggler tracks batch-on, paying only an ε-greedy exploration tax —")
	fmt.Println("the dynamic policy the paper argues the estimates enable (§4, §5).")
}
