// Quickstart: the paper's counters and estimator on a synthetic workload,
// using only the public e2ebatch API.
//
// It walks through the full pipeline: TRACK a queue (Algorithm 1), derive
// Little's-law averages (Algorithm 2), share 36-byte wire states, and
// combine both sides' queues into an end-to-end latency estimate (§3.2).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"time"

	"e2ebatch"
)

func main() {
	// ---- Algorithm 1: track a queue ----
	// A queue of in-flight requests: each arrives, stays a while, leaves.
	var q e2ebatch.QueueState
	q.Init(0)
	start := q.Snapshot(0)

	now := e2ebatch.Time(0)
	at := func(d time.Duration) e2ebatch.Time { return now + e2ebatch.Time(d) }
	// 1000 requests, one every 100µs, each resident for 60µs — Track must
	// be called in time order, exactly as a kernel hook would be.
	for i := 0; i < 1000; i++ {
		q.Track(at(0), 1)
		q.Track(at(60*time.Microsecond), -1)
		now = at(100 * time.Microsecond)
	}
	end := q.Snapshot(now)

	// ---- Algorithm 2: averages over the interval ----
	a := e2ebatch.GetAvgs(start, end)
	fmt.Printf("queue:   avg occupancy %.2f, throughput %.0f/s, delay %v\n",
		a.Q, a.Throughput, a.Latency.Round(time.Microsecond))

	// ---- Wire exchange: 36 bytes per peer, wrap-safe 32-bit counters ----
	ws := e2ebatch.WireState{Unacked: e2ebatch.ToWireQueue(end)}
	buf := make([]byte, e2ebatch.WireSize)
	if _, err := e2ebatch.EncodeWire(buf, ws); err != nil {
		panic(err)
	}
	back, err := e2ebatch.DecodeWireExact(buf)
	if err != nil {
		panic(err)
	}
	fmt.Printf("wire:    %d bytes round-tripped; unacked total=%d\n", len(buf), back.Unacked.Total)

	// ---- End-to-end combination (§3.2) ----
	// Pretend the queue above was the local "unacked" queue and the peer
	// reported an unread queue holding each message 40µs plus a 15µs
	// ack-delay queue: L ≈ L_unacked − L_ackdelay^remote + L_unread^remote.
	local := e2ebatch.Delays{Unacked: a}
	remote := e2ebatch.Delays{
		Unread:   mkDelay(40*time.Microsecond, a.Throughput),
		AckDelay: mkDelay(15*time.Microsecond, a.Throughput),
	}
	est := e2ebatch.EstimateE2E(local, remote)
	fmt.Printf("e2e:     latency %v (valid=%v), throughput %.0f/s\n",
		est.Latency.Round(time.Microsecond), est.Valid, est.Throughput)

	// ---- Cooperative-application hints (§3.3) ----
	clock := e2ebatch.Time(0)
	tr := e2ebatch.NewHintTracker(func() e2ebatch.Time { return clock })
	he := e2ebatch.NewHintEstimator(tr)
	he.Sample() // prime
	for i := 0; i < 100; i++ {
		tr.Create(1)
		clock += e2ebatch.Time(300 * time.Microsecond) // response after 300µs
		tr.Complete(1)
		clock += e2ebatch.Time(700 * time.Microsecond)
	}
	ha := he.Sample()
	fmt.Printf("hints:   app-perceived latency %v, throughput %.0f/s\n",
		ha.Latency.Round(time.Microsecond), ha.Throughput)

	// ---- A toggling policy consuming the estimates (§5) ----
	tog := e2ebatch.NewToggler(
		e2ebatch.ThroughputUnderSLO{SLO: 500 * time.Microsecond},
		e2ebatch.DefaultTogglerConfig(),
		e2ebatch.BatchOff,
		rand.New(rand.NewSource(1)),
	)
	// Feed it estimates where batching meets the SLO and not batching
	// doesn't; it converges to batch-on.
	for i := 0; i < 100; i++ {
		if tog.Mode() == e2ebatch.BatchOn {
			tog.Observe(200*time.Microsecond, 50000, true)
		} else {
			tog.Observe(900*time.Microsecond, 40000, true)
		}
	}
	fmt.Printf("policy:  converged to %v after 100 ticks\n", tog.Mode())
}

func mkDelay(lat time.Duration, tput float64) e2ebatch.Avgs {
	return e2ebatch.Avgs{Latency: lat, Throughput: tput, Valid: true, Departures: 1}
}
