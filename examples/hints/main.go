// Hints demonstrates the semantic gap (§3.3): on a heterogeneous 95:5
// SET:GET workload with a client that batches several requests per send(2),
// the kernel-observable message units (bytes, packets, send calls) all
// misestimate application-perceived latency, while the two-function
// create/complete hint API stays within a percent of ground truth.
//
// Run with: go run ./examples/hints
package main

import (
	"fmt"
	"os"
	"time"

	"e2ebatch/internal/figures"
)

func main() {
	cal := figures.DefaultCalib()
	rates := []float64{10000, 30000}
	dur := 300 * time.Millisecond

	fmt.Println("Workload: 95% SET (16 KiB values) / 5% GET (16 KiB responses)")
	fmt.Println()

	fmt.Println("-- cooperative syscalls: one request per send(2) --")
	figures.WriteHints(os.Stdout, figures.Hints(cal, rates, dur, 7, 1))
	fmt.Println()

	fmt.Println("-- syscall batching: four requests per send(2) --")
	figures.WriteHints(os.Stdout, figures.Hints(cal, rates, dur, 7, 4))
	fmt.Println()

	fmt.Println("Bytes/packets track stack residency only (and weight large GET")
	fmt.Println("responses disproportionately); send-units break once the client")
	fmt.Println("batches syscalls. The create/complete hints measure the single")
	fmt.Println("logical queue the application actually cares about, so Little's")
	fmt.Println("law applied to them is exact (§3.3, top of Figure 3).")
}
