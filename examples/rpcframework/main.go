// Rpcframework shows the paper's §3.3 endgame: a request-response RPC
// runtime (think gRPC/Thrift) with the create/complete hint API built into
// the library, so every application using it gets accurate end-to-end
// performance estimation — and estimate-driven batching — for free.
//
// Run with: go run ./examples/rpcframework
//
// Pass -obs 127.0.0.1:9090 to export the control loop's telemetry: the
// simulated run completes, then the process stays up serving /metrics,
// /debug/decisions and /debug/pprof until interrupted. Attaching the
// observer changes nothing in the run's output — the decision stream is a
// read-only export seam.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"e2ebatch/internal/engine"
	"e2ebatch/internal/netem"
	"e2ebatch/internal/obs"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/rpclib"
	"e2ebatch/internal/sim"
	"e2ebatch/internal/tcpsim"
)

func main() {
	obsAddr := flag.String("obs", "", "serve /metrics and /debug endpoints on this address after the run")
	flag.Parse()

	s := sim.New(42)
	cliHost := tcpsim.NewStack(s, "client")
	srvHost := tcpsim.NewStack(s, "server")
	link := netem.NewLink(s, "wire", netem.Config{BitsPerSec: 100_000_000_000, Propagation: 2 * time.Microsecond})
	cfg := tcpsim.DefaultConfig()
	cfg.Nagle = false
	cc, sc := tcpsim.Connect(cliHost, srvHost, link, cfg)

	// A tiny "service": reverse the payload. The handler cost emulates
	// real work.
	srv := rpclib.NewServer(sc, func(_ uint64, payload []byte) ([]byte, error) {
		out := make([]byte, len(payload))
		for i, b := range payload {
			out[len(payload)-1-i] = b
		}
		return out, nil
	})
	srv.PerCall = 12 * time.Microsecond

	cli := rpclib.NewClient(s, cc)
	cli.PerCall = 2 * time.Microsecond

	// The batching policy consumes the runtime's own estimates: one
	// StartControl call attaches the shared engine loop (the same
	// estimate→decision→apply tick the simulated and real-TCP harnesses
	// run) to this client.
	tog := policy.NewToggler(policy.ThroughputUnderSLO{SLO: 300 * time.Microsecond},
		policy.DefaultTogglerConfig(), policy.BatchOff, s.Rand())
	var (
		reg  *obs.Registry
		ring *obs.Ring
		ob   engine.Observer
	)
	if *obsAddr != "" {
		reg = obs.NewRegistry()
		ring = obs.NewRing(1024)
		eob := obs.NewEngineObserver(obs.NewEngineMetrics(reg), ring)
		eob.Name = "example-rpc"
		eob.Stats = tog.Stats
		ob = eob
	}
	cli.StartControlObserved(tog, time.Millisecond, 64<<10, ob)

	// Open-loop call stream: ramp the rate up mid-run.
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 8192)
	var issue func()
	rate := 20000.0
	s.At(sim.Time(150*time.Millisecond), func() { rate = 65000 })
	issue = func() {
		cli.Call(payload, nil)
		gap := time.Duration(rng.ExpFloat64() * float64(time.Second) / rate)
		if s.Now() < sim.Time(400*time.Millisecond) {
			s.After(gap, issue)
		}
	}
	s.After(time.Millisecond, issue)

	// Report every 50ms of virtual time.
	fmt.Println("RPC service with library-level hints; load ramps 20k -> 65k calls/s at t=150ms")
	fmt.Printf("%8s %12s %12s %10s\n", "t", "est latency", "calls/s", "mode")
	done := uint64(0)
	sim.NewTicker(s, 50*time.Millisecond, func(now sim.Time) {
		complete := cli.Completed()
		rate := float64(complete-done) / 0.05
		done = complete
		a := cli.Estimate()
		fmt.Printf("%8v %12v %12.0f %10v\n",
			now.Duration(), a.Latency.Round(time.Microsecond), rate, tog.Mode())
	})
	s.RunUntil(sim.Time(450 * time.Millisecond))

	fmt.Printf("\ntotal: %d calls completed, %d failed; toggler switched %d times\n",
		cli.Completed(), cli.Failed(), tog.Stats().Switches)
	fmt.Println("(this service meets its SLO without batching even at the high rate,")
	fmt.Println(" so the policy correctly stays in batch-off — estimates preventing a")
	fmt.Println(" pointless mode flip is as much the point as triggering a needed one)")

	if reg != nil {
		debug := obs.NewDebugServer(reg, ring)
		a, err := debug.Start(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "obs:", err)
			os.Exit(1)
		}
		fmt.Printf("\nobs serving the run's telemetry on %s — ctrl-C to exit\n", a)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		debug.Close()
	}
}
