package e2ebatch_test

// End-to-end smoke test for the span tracing plane: build the real
// kvserver binary, run it with -obs and -spansample 1 (trace every
// request), drive a few requests through a real TCP client, then require
// /debug/spans to serve parseable JSONL spans covering them and
// /debug/trace to serve a loadable Chrome trace_event document. This is
// what `make trace-smoke` (and tier-1 via `make test`) runs.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"e2ebatch/internal/obs/span"
	"e2ebatch/internal/realtcp"
	"e2ebatch/internal/resp"
)

func TestTraceSmokeKvserver(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes and sockets; skipped in short mode")
	}

	bin := filepath.Join(t.TempDir(), "kvserver")
	build := exec.Command("go", "build", "-o", bin, "./cmd/kvserver")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building kvserver: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-obs", "127.0.0.1:0", "-spansample", "1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting kvserver: %v", err)
	}
	defer cmd.Process.Kill()

	var obsAddr, srvAddr string
	sc := bufio.NewScanner(stdout)
	for obsAddr == "" || srvAddr == "" {
		if !sc.Scan() {
			break
		}
		if f := strings.Fields(sc.Text()); len(f) >= 4 && f[0] == "obs" {
			obsAddr = f[3]
		} else if len(f) >= 4 && f[0] == "kvserver" {
			srvAddr = f[3]
		}
	}
	if obsAddr == "" || srvAddr == "" {
		t.Fatalf("kvserver never announced its listeners (obs=%q srv=%q)", obsAddr, srvAddr)
	}
	go io.Copy(io.Discard, stdout)

	// A handful of real requests; -spansample 1 means every one of them
	// must surface as a span.
	const reqs = 5
	c, err := realtcp.Dial(srvAddr, 16)
	if err != nil {
		t.Fatalf("dialing kvserver: %v", err)
	}
	var buf []byte
	for i := 0; i < reqs; i++ {
		buf = resp.AppendCommand(buf[:0], []byte("SET"),
			[]byte(fmt.Sprintf("trace%d", i)), []byte("ok"))
		if err := c.Send(buf); err != nil {
			t.Fatalf("sending SET %d: %v", i, err)
		}
	}
	for i := 0; c.Outstanding() > 0; i++ {
		if i > 2000 {
			t.Fatal("SETs never completed")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", obsAddr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, err %v", path, resp.StatusCode, err)
		}
		return body
	}

	// /debug/spans: JSONL, one well-formed span per line, covering the
	// requests just served.
	var spans []span.Span
	lines := bufio.NewScanner(bytes.NewReader(get("/debug/spans?n=64")))
	for lines.Scan() {
		var sp span.Span
		if err := json.Unmarshal(lines.Bytes(), &sp); err != nil {
			t.Fatalf("/debug/spans line %q: %v", lines.Text(), err)
		}
		if sp.AckNs < sp.EnqueueNs {
			t.Errorf("span %d finished before it began: %+v", sp.ReqID, sp)
		}
		spans = append(spans, sp)
	}
	if len(spans) < reqs {
		t.Fatalf("/debug/spans returned %d spans, want at least the %d requests served", len(spans), reqs)
	}

	// /debug/trace: one valid Chrome trace_event document over the same
	// spans.
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(get("/debug/trace?n=64"), &doc); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < reqs {
		t.Fatalf("/debug/trace holds %d events, want at least %d", len(doc.TraceEvents), reqs)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur < 0 {
			t.Errorf("trace event %+v: want complete (X) events with non-negative durations", ev)
		}
	}

	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("signaling: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("kvserver exited uncleanly on SIGINT: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("kvserver did not exit within 10s of SIGINT")
	}
}
