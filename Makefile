GO ?= go
GOFMT ?= gofmt

.PHONY: tier1 vet lint build test race clean

# tier1 is the CI gate. Target graph (each arrow is a declared prerequisite,
# so the graph is fail-fast even under `make -j`: nothing downstream of a
# failed build runs, and a serial `make tier1` stops at the first failing
# stage):
#
#   tier1 ─┬─ vet
#          ├─ lint ─→ build   (e2elint resolves imports via build artifacts)
#          ├─ build
#          ├─ test ─→ build
#          └─ race ─→ build
#
# race runs the short-mode suite only: full sweeps are skipped under -short
# so the ~10x race overhead stays affordable; the determinism, invariant,
# fuzz-seed and stress tests all still run.
tier1: vet lint build test race

vet:
	$(GO) vet ./...

# lint enforces gofmt plus the project's own invariants: the six e2elint
# analyzers described in DESIGN.md §8 "Enforced invariants". Suppressions
# require a justified `//lint:ignore e2elint/<name> reason` directive.
lint: build
	@drift=$$($(GOFMT) -l .); if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi
	$(GO) run ./cmd/e2elint ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race: build
	$(GO) test -short -race ./...

clean:
	$(GO) clean ./...
