GO ?= go

.PHONY: tier1 vet build test race clean

# tier1 is the CI gate: vet, build, the full suite, and the race detector
# over the short-mode suite (full sweeps are skipped under -short so the
# ~10x race overhead stays affordable; the determinism, invariant, fuzz-seed
# and stress tests all still run).
tier1: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -short -race ./...

clean:
	$(GO) clean ./...
