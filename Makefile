GO ?= go
GOFMT ?= gofmt

.PHONY: tier1 vet lint escapes allocgate build test race obs-smoke trace-smoke scale-smoke cover bench bench-diff fidelity-smoke tail-fidelity-smoke clean

# tier1 is the CI gate. Target graph (each arrow is a declared prerequisite,
# so the graph is fail-fast even under `make -j`: nothing downstream of a
# failed build runs, and a serial `make tier1` stops at the first failing
# stage):
#
#   tier1 ─┬─ vet
#          ├─ lint ─→ build   (e2elint resolves imports via build artifacts)
#          ├─ escapes ─→ build (compiler escape analysis over hot paths)
#          ├─ allocgate ─→ build (AllocsPerRun pins for //e2e:hotpath)
#          ├─ build
#          ├─ test ─→ build
#          ├─ race ─→ build
#          ├─ fidelity-smoke ─→ build
#          ├─ tail-fidelity-smoke ─→ build
#          ├─ trace-smoke ─→ build (span plane against a real kvserver)
#          ├─ scale-smoke ─→ build (2k-connection shard-engine fleet)
#          └─ bench-diff ─→ build
#   cover ──→ build           (slow; run on demand, not part of the gate)
#
# race runs the short-mode suite only: full sweeps are skipped under -short
# so the ~10x race overhead stays affordable; the determinism, invariant,
# fuzz-seed and stress tests all still run. fidelity-smoke and bench-diff
# are both short-run-safe: the smoke replays the zoo at a reduced duration,
# and bench-diff degrades to a no-op note until two archives exist.
tier1: vet lint escapes allocgate build test race obs-smoke trace-smoke scale-smoke fidelity-smoke tail-fidelity-smoke bench-diff

vet:
	$(GO) vet ./...

# lint enforces gofmt plus the project's own invariants: the twelve e2elint
# analyzers described in DESIGN.md §8 "Enforced invariants" (the escapes
# analyzer runs under its own target below — it needs the compiler).
# Suppressions require a justified `//lint:ignore e2elint/<name> reason`
# directive.
lint: build
	@drift=$$($(GOFMT) -l .); if [ -n "$$drift" ]; then \
		echo "gofmt drift in:"; echo "$$drift"; exit 1; fi
	$(GO) run ./cmd/e2elint ./...

# escapes is the compiler-backed half of the hot-path allocation discipline
# (DESIGN.md §13): rebuild the packages containing //e2e:hotpath functions
# with -gcflags=-m and fail if any hot function's locals move to the heap.
escapes: build
	$(GO) run ./cmd/e2elint -escapes ./...

# allocgate is the runtime half: testing.AllocsPerRun pins every
# //e2e:hotpath function at 0 allocs/op. The gates are build-tagged !race
# (the race runtime allocates shadow state), so they run here and in plain
# `make test`, not under race.
allocgate: build
	$(GO) test -run AllocGate -count=1 ./internal/...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race: build
	$(GO) test -short -race ./...

# obs-smoke exercises the telemetry plane end to end against the real
# kvserver binary: spawn with -obs, drive a request over real TCP, scrape
# /metrics and the /debug endpoints, then SIGINT and require exit 0. The
# same test runs inside `make test`; this target reruns it verbosely and
# uncached for a fast standalone check.
obs-smoke: build
	$(GO) test -count=1 -run TestObsSmokeKvserver -v .

# trace-smoke exercises the span tracing plane end to end against the real
# kvserver binary: spawn with -obs -spansample 1, drive requests over real
# TCP, require /debug/spans to serve well-formed JSONL spans covering them
# and /debug/trace a loadable Chrome trace_event document, then SIGINT and
# require exit 0. The same test runs inside `make test`; this target reruns
# it verbosely and uncached.
trace-smoke: build
	$(GO) test -count=1 -run TestTraceSmokeKvserver -v .

# scale-smoke exercises the shared-nothing shard engine at fleet scale: a
# 2000-connection kvload-shaped fleet against an in-process kvserver, every
# connection's control tick and pacing on shard timer wheels, asserting a
# clean run — zero dial errors, zero lost run-queue work, per-shard rollups
# consistent with the report, and the goroutine count back at baseline
# (the per-connection-goroutine regression guard). The same test runs
# inside `make test`; this target reruns it verbosely and uncached.
scale-smoke: build
	$(GO) test -count=1 -run TestScaleSmoke -v .

# cover runs the full suite with statement coverage, prints the per-package
# summary, and enforces floors on the packages whose edge cases the paper's
# correctness rests on: the wrap-aware counter math (qstate), the estimate
# combination (core), the fault-injection subsystem (faults), and the shared
# control loop (engine), plus the decision policies (policy, floored when
# tail-SLO objectives landed), the PR-8 telemetry plane (obs) and its span
# tracing/audit plane (obs/span), the benchmark artifact parser (benchfmt),
# the model-fidelity corpus: the workload zoo (loadgen) and the closed-form
# rival (analytic), and the invariant analyzer suite itself (lint). Floors
# sit a few points under measured coverage at introduction (qstate 98.9%,
# core 92.9%, faults 95.5%, engine 96.1%, obs 89.6%, obs/span 93.4%,
# benchfmt 92.6%, loadgen 96.1%, analytic 96.4%, lint 90.0%, policy 98.7%;
# core re-floored at 90 with the tail-composition coverage) so incidental
# drift passes but a feature landing untested does not.
cover: build
	@$(GO) test -coverprofile=cover.out ./... > cover.txt || { cat cover.txt; rm -f cover.txt cover.out; exit 1; }
	@cat cover.txt
	@$(GO) tool cover -func=cover.out | tail -1
	@awk 'BEGIN { floor["e2ebatch/internal/qstate"]=95; \
		floor["e2ebatch/internal/core"]=90; \
		floor["e2ebatch/internal/policy"]=90; \
		floor["e2ebatch/internal/faults"]=90; \
		floor["e2ebatch/internal/engine"]=92; \
		floor["e2ebatch/internal/obs"]=84; \
		floor["e2ebatch/internal/obs/span"]=88; \
		floor["e2ebatch/internal/lint"]=85; \
		floor["e2ebatch/internal/benchfmt"]=88; \
		floor["e2ebatch/internal/loadgen"]=92; \
		floor["e2ebatch/internal/analytic"]=92 } \
		/^ok/ && /coverage:/ { \
			v=""; for (i=1;i<=NF;i++) if ($$i=="coverage:") { v=$$(i+1); sub("%","",v) } \
			if (($$2 in floor) && v+0 < floor[$$2]) { \
				printf "coverage floor violated: %s at %s%% (floor %d%%)\n", $$2, v, floor[$$2]; bad=1 } \
			delete floor[$$2] } \
		END { for (p in floor) { printf "coverage floor unchecked: %s missing from test output\n", p; bad=1 } \
			exit bad }' cover.txt

# bench regenerates every paper table via the root benchmark harness with
# allocation accounting and archives the result lines as BENCH_<date>.json
# (name, ns/op, B/op, allocs/op plus the custom figure metrics), so the
# perf trajectory is tracked across PRs instead of living in scrollback.
# The live transcript still streams to the terminal; if the test run dies
# early, benchjson sees no result lines and fails the target. A second run
# on the same day suffixes a letter (BENCH_<date>b.json, ...) instead of
# overwriting the committed archive; the suffix sorts after the plain date,
# so bench-diff's two-newest selection stays correct.
bench: build
	@out=BENCH_$$(date +%Y-%m-%d).json; \
	if [ -e "$$out" ]; then \
		for s in b c d e f g h i j k l m n o p q r s t u v w x y z; do \
			cand=BENCH_$$(date +%Y-%m-%d)$$s.json; \
			if [ ! -e "$$cand" ]; then out=$$cand; break; fi; \
		done; \
		if [ -e "$$out" ]; then echo "bench: all archive names for today taken"; exit 1; fi; \
	fi; \
	$(GO) test -run '^$$' -bench . -benchmem . | $(GO) run ./cmd/benchjson -out "$$out"

# bench-diff gates ns/op regressions between the two newest BENCH_<date>.json
# archives (>15% growth on any benchmark fails). With fewer than two archives
# there is nothing to compare — the target notes that and passes, so tier1
# stays green on a fresh checkout with only the committed baseline.
bench-diff: build
	@set -- $$(ls -1 BENCH_*.json 2>/dev/null | sort | tail -2); \
	if [ $$# -lt 2 ]; then \
		echo "bench-diff: $$# BENCH_*.json archive(s) present, need 2; nothing to compare"; \
	else \
		$(GO) run ./cmd/benchjson -compare "$$1" "$$2" -maxregress 15; \
	fi

# fidelity-smoke replays the whole workload zoo through the model-fidelity
# harness at a reduced duration — a fast end-to-end check that cmd/fidelity
# builds, runs, and scores every workload with all three predictors. The
# full 150 ms report is pinned byte-for-byte by TestFidelityGolden.
fidelity-smoke: build
	$(GO) run ./cmd/fidelity -dur 25ms -seed 2

# tail-fidelity-smoke is the quantile analogue: the same zoo replay scored at
# p50/p90/p99/p999 with v2 (histogram-carrying) metadata exchanges. The full
# 150 ms report is pinned byte-for-byte by TestTailFidelityGolden.
tail-fidelity-smoke: build
	$(GO) run ./cmd/fidelity -tails -dur 25ms -seed 2

clean:
	$(GO) clean ./...
	rm -f cover.out cover.txt
