package faults

import (
	"strings"
	"testing"
	"time"

	"e2ebatch/internal/netem"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
	"e2ebatch/internal/tcpsim"
)

func TestValidateRejectsBadEvents(t *testing.T) {
	ms := time.Millisecond
	cases := []struct {
		name string
		plan Plan
		want string // substring of the error; "" means valid
	}{
		{"empty", Plan{}, ""},
		{"loss ok", Plan{Events: []Event{{Kind: LossBurst, Start: ms, Dur: ms, Prob: 0.5}}}, ""},
		{"loss prob one", Plan{Events: []Event{{Kind: LossBurst, Start: ms, Dur: ms, Prob: 1}}}, "outside [0, 1)"},
		{"meta drop prob one ok", Plan{Events: []Event{{Kind: MetaDrop, Start: ms, Dur: ms, Prob: 1}}}, ""},
		{"meta drop prob high", Plan{Events: []Event{{Kind: MetaDrop, Start: ms, Dur: ms, Prob: 1.5}}}, "outside [0, 1]"},
		{"negative start", Plan{Events: []Event{{Kind: PeerStall, Start: -ms, Dur: ms}}}, "negative start"},
		{"zero dur", Plan{Events: []Event{{Kind: PeerStall, Start: ms}}}, "non-positive duration"},
		{"reset needs no dur", Plan{Events: []Event{{Kind: Reset, Start: ms}}}, ""},
		{"bad kind", Plan{Events: []Event{{Kind: numKinds, Start: ms, Dur: ms}}}, "unknown kind"},
		{"jitter needs delay", Plan{Events: []Event{{Kind: JitterRamp, Start: ms, Dur: ms}}}, "non-positive delay"},
		{"dup needs delay", Plan{Events: []Event{{Kind: MetaDup, Start: ms, Dur: ms, Prob: 0.5}}}, "non-positive delay"},
		{"same-kind overlap", Plan{Events: []Event{
			{Kind: PeerStall, Start: ms, Dur: 4 * ms},
			{Kind: PeerStall, Start: 3 * ms, Dur: 4 * ms},
		}}, "overlapping"},
		{"same-kind back-to-back ok", Plan{Events: []Event{
			{Kind: PeerStall, Start: ms, Dur: 2 * ms},
			{Kind: PeerStall, Start: 3 * ms, Dur: 2 * ms},
		}}, ""},
		{"cross-kind overlap ok", Plan{Events: []Event{
			{Kind: LossBurst, Start: ms, Dur: 4 * ms, Prob: 0.1},
			{Kind: MetaDrop, Start: ms, Dur: 4 * ms, Prob: 1},
		}}, ""},
		{"two resets ok", Plan{Events: []Event{
			{Kind: Reset, Start: ms},
			{Kind: Reset, Start: ms},
		}}, ""},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestStandardPlansValidateAndNeedRTO(t *testing.T) {
	for _, name := range Names() {
		p, err := Standard(name, 100*time.Millisecond)
		if err != nil {
			t.Fatalf("Standard(%q): %v", name, err)
		}
		if name == "none" {
			if p != nil {
				t.Fatalf("Standard(none) = %+v, want nil", p)
			}
			continue
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Standard(%q) invalid: %v", name, err)
		}
		wantRTO := name == "loss" || name == "combo"
		if p.NeedsRTO() != wantRTO {
			t.Fatalf("Standard(%q).NeedsRTO() = %v, want %v", name, p.NeedsRTO(), wantRTO)
		}
	}
	if _, err := Standard("bogus", time.Second); err == nil {
		t.Fatal("unknown plan name accepted")
	}
}

func TestLossWindowAppliesAndRestores(t *testing.T) {
	s := sim.New(1)
	link := netem.NewLink(s, "l", netem.Config{LossProb: 0.01})
	plan := &Plan{Name: "t", Events: []Event{
		{Kind: LossBurst, Start: 10 * time.Millisecond, Dur: 5 * time.Millisecond, Prob: 0.5},
	}}
	inj := MustApply(s, plan, Targets{Link: link})
	s.RunUntil(sim.Time(12 * time.Millisecond))
	if got := link.AtoB.LossProb(); got != 0.5 {
		t.Fatalf("mid-window LossProb = %v, want 0.5", got)
	}
	if got := link.BtoA.LossProb(); got != 0.5 {
		t.Fatalf("loss burst missed the reverse direction: %v", got)
	}
	s.Run()
	if got := link.AtoB.LossProb(); got != 0.01 {
		t.Fatalf("post-window LossProb = %v, want baseline 0.01 restored", got)
	}
	if inj.Activations(LossBurst) != 1 {
		t.Fatalf("Activations(LossBurst) = %d", inj.Activations(LossBurst))
	}
}

func TestJitterRampStepsUpAndRestores(t *testing.T) {
	s := sim.New(1)
	link := netem.NewLink(s, "l", netem.Config{})
	peak := 800 * time.Microsecond
	plan := &Plan{Name: "t", Events: []Event{
		{Kind: JitterRamp, Start: time.Millisecond, Dur: 8 * time.Millisecond, Delay: peak},
	}}
	MustApply(s, plan, Targets{Link: link})
	var seen []time.Duration
	last := time.Duration(-1)
	sim.NewTicker(s, 500*time.Microsecond, func(sim.Time) {
		if j := link.AtoB.Jitter(); j != last {
			seen = append(seen, j)
			last = j
		}
	})
	s.RunUntil(sim.Time(8800 * time.Microsecond)) // just before window end
	if got := link.AtoB.Jitter(); got != peak {
		t.Fatalf("end-of-ramp jitter = %v, want peak %v", got, peak)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("ramp went down mid-window: %v", seen)
		}
	}
	if len(seen) < jitterRampSteps {
		t.Fatalf("saw %d distinct jitter values, want >= %d steps", len(seen), jitterRampSteps)
	}
	s.RunUntil(sim.Time(10 * time.Millisecond))
	if got := link.AtoB.Jitter(); got != 0 {
		t.Fatalf("post-window jitter = %v, want baseline 0 restored", got)
	}
}

func TestMetaWindowsDriveStateFault(t *testing.T) {
	s := sim.New(3)
	link := netem.NewLink(s, "l", netem.Config{})
	plan := &Plan{Name: "t", Events: []Event{
		{Kind: MetaDrop, Start: time.Millisecond, Dur: time.Millisecond, Prob: 1},
		{Kind: MetaDelay, Start: 3 * time.Millisecond, Dur: time.Millisecond, Delay: 250 * time.Microsecond},
		{Kind: MetaDup, Start: 5 * time.Millisecond, Dur: time.Millisecond, Prob: 1, Delay: 100 * time.Microsecond},
	}}
	cc, _ := tcpsim.Connect(tcpsim.NewStack(s, "a"), tcpsim.NewStack(s, "b"), link, tcpsim.DefaultConfig())
	inj := MustApply(s, plan, Targets{Link: link, Client: cc})
	probe := func() StateProbe {
		act := inj.stateFault(qstate.WireState{})
		return StateProbe{Drop: act.Drop, Delay: act.Delay, Dup: act.Duplicate, DupDelay: act.DupDelay}
	}
	want := []struct {
		at   time.Duration
		want StateProbe
	}{
		{500 * time.Microsecond, StateProbe{}},
		{1500 * time.Microsecond, StateProbe{Drop: true}},
		{2500 * time.Microsecond, StateProbe{}},
		{3500 * time.Microsecond, StateProbe{Delay: 250 * time.Microsecond}},
		{4500 * time.Microsecond, StateProbe{}},
		{5500 * time.Microsecond, StateProbe{Dup: true, DupDelay: 100 * time.Microsecond}},
		{6500 * time.Microsecond, StateProbe{}},
	}
	for _, w := range want {
		s.RunUntil(sim.Time(w.at))
		if got := probe(); got != w.want {
			t.Fatalf("at %v: stateFault = %+v, want %+v", w.at, got, w.want)
		}
	}
}

// StateProbe flattens a StateFaultAction for comparison.
type StateProbe struct {
	Drop     bool
	Delay    time.Duration
	Dup      bool
	DupDelay time.Duration
}

type fakeStaller struct{ calls []bool }

func (f *fakeStaller) Stall(v bool) { f.calls = append(f.calls, v) }

func TestStallResetAndEventLog(t *testing.T) {
	s := sim.New(1)
	st := &fakeStaller{}
	resets := 0
	var events []string
	plan := &Plan{Name: "t", Events: []Event{
		{Kind: PeerStall, Start: time.Millisecond, Dur: 2 * time.Millisecond},
		{Kind: Reset, Start: 2 * time.Millisecond},
	}}
	MustApply(s, plan, Targets{
		Staller: st,
		OnReset: func() { resets++ },
		OnFault: func(kind, detail string) { events = append(events, kind+" "+detail) },
	})
	s.Run()
	if len(st.calls) != 2 || st.calls[0] != true || st.calls[1] != false {
		t.Fatalf("staller calls = %v, want [true false]", st.calls)
	}
	if resets != 1 {
		t.Fatalf("resets = %d, want 1", resets)
	}
	wantEvents := []string{"peer-stall on dur=2ms", "reset fired", "peer-stall off"}
	if len(events) != len(wantEvents) {
		t.Fatalf("events = %v, want %v", events, wantEvents)
	}
	for i := range events {
		if events[i] != wantEvents[i] {
			t.Fatalf("event %d = %q, want %q", i, events[i], wantEvents[i])
		}
	}
}

// TestSkippedWithoutTargets: a plan needing a missing target skips those
// events (reporting them) rather than panicking mid-run.
func TestSkippedWithoutTargets(t *testing.T) {
	s := sim.New(1)
	var skipped []string
	plan := &Plan{Name: "t", Events: []Event{
		{Kind: LossBurst, Start: time.Millisecond, Dur: time.Millisecond, Prob: 0.1},
		{Kind: MetaDrop, Start: time.Millisecond, Dur: time.Millisecond, Prob: 1},
		{Kind: PeerStall, Start: time.Millisecond, Dur: time.Millisecond},
	}}
	inj := MustApply(s, plan, Targets{
		OnFault: func(kind, detail string) {
			if kind == "skipped" {
				skipped = append(skipped, detail)
			}
		},
	})
	s.Run()
	if len(skipped) != 3 {
		t.Fatalf("skipped = %v, want all three events skipped", skipped)
	}
	for k := Kind(0); k < numKinds; k++ {
		if inj.Activations(k) != 0 {
			t.Fatalf("%v activated without a target", k)
		}
	}
}

// TestApplyRejectsInvalidPlan: Apply validates up front — no events are
// scheduled from a bad plan.
func TestApplyRejectsInvalidPlan(t *testing.T) {
	s := sim.New(1)
	bad := &Plan{Events: []Event{{Kind: LossBurst, Start: time.Millisecond, Dur: time.Millisecond, Prob: 2}}}
	if _, err := Apply(s, bad, Targets{}); err == nil {
		t.Fatal("invalid plan accepted")
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events scheduled from a rejected plan", s.Pending())
	}
}
