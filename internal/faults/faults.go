// Package faults injects composable, deterministic failures into a
// simulated run of the batching stack: loss bursts and jitter ramps on the
// netem link, drop/delay/duplication of the 36-byte metadata exchanges the
// estimator depends on (§3.2), peer reader stalls, and connection resets.
//
// A Plan is declarative — a named list of timed fault windows — so the same
// plan replays byte-identically under the same seed, and the chaos soak
// tests can pin exact outputs. Apply schedules everything on the simulated
// clock; nothing in this package reads wall time or global randomness.
//
// Each fault targets a specific paper mechanism:
//
//   - LossBurst / JitterRamp stress the transport under the exchange
//     piggybacking of §5 Metadata Exchange: lost segments carry lost
//     exchanges, and the estimator's view of the peer ages.
//   - MetaDrop / MetaDelay / MetaDup attack the exchange channel alone —
//     the wire stays healthy but the peer's counters go missing, arrive
//     late (out of order), or replay with stale values, exercising the
//     wrap-aware delta rejection in qstate.WireAvgs and the estimator's
//     MaxRemoteAge staleness fallback.
//   - PeerStall freezes the server application's socket draining, growing
//     the unread queue the §3.2 formula's remote terms measure.
//   - Reset models a connection teardown/re-establishment: counters
//     restart, so the estimator must be re-primed (Estimator.Reset).
package faults

import (
	"fmt"
	"time"

	"e2ebatch/internal/netem"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
	"e2ebatch/internal/tcpsim"
)

// Kind identifies one fault mechanism.
type Kind int

const (
	// LossBurst raises the link's packet-loss probability to Prob for the
	// window, then restores the pre-window value.
	LossBurst Kind = iota
	// JitterRamp ramps the link's jitter bound linearly from its baseline
	// to Delay over the window, then restores the baseline.
	JitterRamp
	// MetaDrop discards each arriving metadata exchange with probability
	// Prob during the window.
	MetaDrop
	// MetaDelay defers applying each arriving exchange by Delay during
	// the window, so old state can land after newer state.
	MetaDelay
	// MetaDup replays each arriving exchange a second time Delay later
	// with probability Prob — stale counters under a fresh timestamp.
	MetaDup
	// PeerStall stops the server application from draining its socket for
	// the window; unread piles up until the advertised window closes.
	PeerStall
	// Reset fires a connection-reset notification at Start (Dur unused):
	// the run's reset hook must resynchronize anything keyed to the
	// connection's counters, e.g. re-prime the estimator.
	Reset

	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case LossBurst:
		return "loss-burst"
	case JitterRamp:
		return "jitter-ramp"
	case MetaDrop:
		return "meta-drop"
	case MetaDelay:
		return "meta-delay"
	case MetaDup:
		return "meta-dup"
	case PeerStall:
		return "peer-stall"
	case Reset:
		return "reset"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one timed fault window. Start is the offset from Apply; Dur the
// window length (ignored for Reset, which is instantaneous). Prob and Delay
// parameterize the kinds that need them; unused fields stay zero.
type Event struct {
	Kind  Kind
	Start time.Duration
	Dur   time.Duration
	Prob  float64
	Delay time.Duration
}

// End returns the event's deactivation offset.
func (e Event) End() time.Duration {
	if e.Kind == Reset {
		return e.Start
	}
	return e.Start + e.Dur
}

// Plan is a named, declarative fault schedule.
type Plan struct {
	Name   string
	Events []Event
}

// Validate checks the plan's internal consistency and returns the first
// problem found. Beyond per-event range checks it rejects overlapping
// windows of the same kind: the injector restores pre-window baselines at
// deactivation, and overlapping same-kind windows would make "baseline"
// ambiguous (crossing windows of different kinds compose fine).
func (p *Plan) Validate() error {
	for i, ev := range p.Events {
		if ev.Kind < 0 || ev.Kind >= numKinds {
			return fmt.Errorf("faults: event %d: unknown kind %d", i, int(ev.Kind))
		}
		if ev.Start < 0 {
			return fmt.Errorf("faults: event %d (%v): negative start %v", i, ev.Kind, ev.Start)
		}
		if ev.Kind != Reset && ev.Dur <= 0 {
			return fmt.Errorf("faults: event %d (%v): non-positive duration %v", i, ev.Kind, ev.Dur)
		}
		switch ev.Kind {
		case LossBurst:
			if ev.Prob < 0 || ev.Prob >= 1 {
				return fmt.Errorf("faults: event %d (%v): prob %v outside [0, 1)", i, ev.Kind, ev.Prob)
			}
		case MetaDrop, MetaDup:
			if ev.Prob < 0 || ev.Prob > 1 {
				return fmt.Errorf("faults: event %d (%v): prob %v outside [0, 1]", i, ev.Kind, ev.Prob)
			}
		}
		switch ev.Kind {
		case JitterRamp, MetaDelay, MetaDup:
			if ev.Delay <= 0 {
				return fmt.Errorf("faults: event %d (%v): non-positive delay %v", i, ev.Kind, ev.Delay)
			}
		}
		for j, other := range p.Events[:i] {
			if other.Kind != ev.Kind || ev.Kind == Reset {
				continue
			}
			if ev.Start < other.End() && other.Start < ev.End() {
				return fmt.Errorf("faults: events %d and %d: overlapping %v windows", j, i, ev.Kind)
			}
		}
	}
	return nil
}

// NeedsRTO reports whether the plan requires retransmission recovery on the
// connection: any loss window does — tcpsim treats a sequence hole without
// an RTO as a model bug.
func (p *Plan) NeedsRTO() bool {
	if p == nil {
		return false
	}
	for _, ev := range p.Events {
		if ev.Kind == LossBurst {
			return true
		}
	}
	return false
}

// Staller is the peer application whose socket draining PeerStall freezes.
// kv.SimServer implements it; the indirection keeps this package free of an
// application-layer dependency.
type Staller interface {
	Stall(bool)
}

// Targets wires a plan to one run's components. Nil fields disable the
// faults needing them (Apply reports which events were skipped via OnFault
// with kind "skipped").
type Targets struct {
	// Link carries LossBurst and JitterRamp.
	Link *netem.Link
	// Client receives the metadata faults: it is the endpoint whose
	// PeerWireState feeds the policy-driving estimator.
	Client *tcpsim.Conn
	// Staller receives PeerStall.
	Staller Staller
	// OnReset fires at each Reset event — re-prime estimators here.
	OnReset func()
	// OnFault, if set, observes every fault transition: kind is the
	// Kind's String (or "skipped"), detail a human-readable parameter
	// summary. Runs feed this into the trace log for offline correlation.
	OnFault func(kind, detail string)
}

// Injector is the runtime of an applied plan. All state transitions run on
// the simulator's event loop at their scheduled virtual times.
type Injector struct {
	sim *sim.Sim
	t   Targets

	baseLoss   float64
	baseJitter time.Duration

	// Active metadata-fault parameters; zero means the window is closed.
	// Validate's no-same-kind-overlap rule means a scalar per kind
	// suffices.
	dropProb float64
	delayBy  time.Duration
	dupProb  float64
	dupDelay time.Duration

	activations [numKinds]int
}

// Activations returns how many windows of kind k have activated so far.
func (inj *Injector) Activations(k Kind) int {
	if k < 0 || k >= numKinds {
		return 0
	}
	return inj.activations[k]
}

// jitterRampSteps is how many discrete increments approximate a ramp.
const jitterRampSteps = 8

// Apply validates the plan and schedules every event on s, returning the
// injector. A nil or empty plan is a no-op (returns an inert injector).
// Apply must be called before s runs past the earliest event start.
func Apply(s *sim.Sim, p *Plan, t Targets) (*Injector, error) {
	inj := &Injector{sim: s, t: t}
	if p == nil || len(p.Events) == 0 {
		return inj, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	needsConn := false
	for _, ev := range p.Events {
		ev := ev
		switch ev.Kind {
		case LossBurst, JitterRamp:
			if t.Link == nil {
				inj.skip(ev)
				continue
			}
		case MetaDrop, MetaDelay, MetaDup:
			if t.Client == nil {
				inj.skip(ev)
				continue
			}
			needsConn = true
		case PeerStall:
			if t.Staller == nil {
				inj.skip(ev)
				continue
			}
		}
		inj.schedule(ev)
	}
	if needsConn {
		t.Client.SetStateFault(inj.stateFault)
	}
	return inj, nil
}

// MustApply is Apply for static plans known valid, e.g. the Standard set.
func MustApply(s *sim.Sim, p *Plan, t Targets) *Injector {
	inj, err := Apply(s, p, t)
	if err != nil {
		panic(err)
	}
	return inj
}

func (inj *Injector) skip(ev Event) {
	inj.emit("skipped", fmt.Sprintf("%v at %v: no target", ev.Kind, ev.Start))
}

func (inj *Injector) emit(kind, detail string) {
	if inj.t.OnFault != nil {
		inj.t.OnFault(kind, detail)
	}
}

func (inj *Injector) schedule(ev Event) {
	inj.sim.After(ev.Start, func() { inj.activate(ev) })
	if ev.Kind != Reset {
		inj.sim.After(ev.End(), func() { inj.deactivate(ev) })
	}
}

func (inj *Injector) activate(ev Event) {
	inj.activations[ev.Kind]++
	switch ev.Kind {
	case LossBurst:
		inj.baseLoss = inj.t.Link.AtoB.LossProb()
		inj.t.Link.SetLossProb(ev.Prob)
		inj.emit(ev.Kind.String(), fmt.Sprintf("on prob=%v dur=%v", ev.Prob, ev.Dur))
	case JitterRamp:
		inj.baseJitter = inj.t.Link.AtoB.Jitter()
		inj.rampJitter(ev, 1)
		inj.emit(ev.Kind.String(), fmt.Sprintf("on peak=%v dur=%v", ev.Delay, ev.Dur))
	case MetaDrop:
		inj.dropProb = ev.Prob
		inj.emit(ev.Kind.String(), fmt.Sprintf("on prob=%v dur=%v", ev.Prob, ev.Dur))
	case MetaDelay:
		inj.delayBy = ev.Delay
		inj.emit(ev.Kind.String(), fmt.Sprintf("on delay=%v dur=%v", ev.Delay, ev.Dur))
	case MetaDup:
		inj.dupProb, inj.dupDelay = ev.Prob, ev.Delay
		inj.emit(ev.Kind.String(), fmt.Sprintf("on prob=%v delay=%v dur=%v", ev.Prob, ev.Delay, ev.Dur))
	case PeerStall:
		inj.t.Staller.Stall(true)
		inj.emit(ev.Kind.String(), fmt.Sprintf("on dur=%v", ev.Dur))
	case Reset:
		if inj.t.OnReset != nil {
			inj.t.OnReset()
		}
		inj.emit(ev.Kind.String(), "fired")
	}
}

// rampJitter applies ramp step i of jitterRampSteps and schedules the next;
// the final step holds until deactivation restores the baseline.
func (inj *Injector) rampJitter(ev Event, step int) {
	inj.t.Link.SetJitter(inj.baseJitter + time.Duration(int64(ev.Delay)*int64(step)/jitterRampSteps))
	if step >= jitterRampSteps {
		return
	}
	inj.sim.After(ev.Dur/jitterRampSteps, func() { inj.rampJitter(ev, step+1) })
}

func (inj *Injector) deactivate(ev Event) {
	switch ev.Kind {
	case LossBurst:
		inj.t.Link.SetLossProb(inj.baseLoss)
	case JitterRamp:
		inj.t.Link.SetJitter(inj.baseJitter)
	case MetaDrop:
		inj.dropProb = 0
	case MetaDelay:
		inj.delayBy = 0
	case MetaDup:
		inj.dupProb, inj.dupDelay = 0, 0
	case PeerStall:
		inj.t.Staller.Stall(false)
	}
	inj.emit(ev.Kind.String(), "off")
}

// stateFault is the single metadata-fault arbiter installed on the client
// connection; active windows compose, with drop taking precedence (a packet
// that was dropped cannot also arrive late or twice).
func (inj *Injector) stateFault(qstate.WireState) tcpsim.StateFaultAction {
	var act tcpsim.StateFaultAction
	if inj.dropProb > 0 && inj.sim.Rand().Float64() < inj.dropProb {
		act.Drop = true
		return act
	}
	if inj.delayBy > 0 {
		act.Delay = inj.delayBy
	}
	if inj.dupProb > 0 && inj.sim.Rand().Float64() < inj.dupProb {
		act.Duplicate = true
		act.DupDelay = inj.dupDelay
	}
	return act
}
