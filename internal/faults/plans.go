package faults

import (
	"fmt"
	"time"
)

// Standard returns a named canonical plan scaled to a run of length runDur:
// every window sits inside the post-warmup region (warmup is runDur/5, per
// the experiment runner) so the faults hit a settled system. "none" returns
// nil — a convenience for sweep code that treats the healthy baseline as
// just another plan name. Unknown names return an error listing the options.
//
// The canonical plans (offsets as fractions of runDur):
//
//	loss      one LossBurst at 5% for the middle 40%
//	jitter    one JitterRamp to 200 µs over the middle 40%
//	metadrop  MetaDrop p=0.9 for the middle 40% — exchanges mostly vanish
//	metadelay MetaDelay of 2 ms for the middle 40% — exchanges arrive late
//	metadup   MetaDup p=0.5, replay 1 ms later, middle 40%
//	stall     PeerStall for 15% starting at 40%
//	reset     one Reset at the midpoint
//	combo     loss 5% + MetaDrop p=0.9 overlapping mid-run, then a stall —
//	          the acceptance scenario: estimator must degrade, policy must
//	          hold its safe default
func Standard(name string, runDur time.Duration) (*Plan, error) {
	frac := func(num, den int64) time.Duration {
		return time.Duration(int64(runDur) * num / den)
	}
	switch name {
	case "none":
		return nil, nil
	case "loss":
		return &Plan{Name: name, Events: []Event{
			{Kind: LossBurst, Start: frac(3, 10), Dur: frac(4, 10), Prob: 0.05},
		}}, nil
	case "jitter":
		return &Plan{Name: name, Events: []Event{
			{Kind: JitterRamp, Start: frac(3, 10), Dur: frac(4, 10), Delay: 200 * time.Microsecond},
		}}, nil
	case "metadrop":
		return &Plan{Name: name, Events: []Event{
			{Kind: MetaDrop, Start: frac(3, 10), Dur: frac(4, 10), Prob: 0.9},
		}}, nil
	case "metadelay":
		return &Plan{Name: name, Events: []Event{
			{Kind: MetaDelay, Start: frac(3, 10), Dur: frac(4, 10), Delay: 2 * time.Millisecond},
		}}, nil
	case "metadup":
		return &Plan{Name: name, Events: []Event{
			{Kind: MetaDup, Start: frac(3, 10), Dur: frac(4, 10), Prob: 0.5, Delay: time.Millisecond},
		}}, nil
	case "stall":
		return &Plan{Name: name, Events: []Event{
			{Kind: PeerStall, Start: frac(4, 10), Dur: frac(15, 100)},
		}}, nil
	case "reset":
		return &Plan{Name: name, Events: []Event{
			{Kind: Reset, Start: frac(1, 2)},
		}}, nil
	case "combo":
		return &Plan{Name: name, Events: []Event{
			{Kind: LossBurst, Start: frac(3, 10), Dur: frac(4, 10), Prob: 0.05},
			{Kind: MetaDrop, Start: frac(3, 10), Dur: frac(4, 10), Prob: 0.9},
			{Kind: PeerStall, Start: frac(75, 100), Dur: frac(1, 10)},
		}}, nil
	default:
		return nil, fmt.Errorf("faults: unknown plan %q (have %v)", name, Names())
	}
}

// Names lists the Standard plan names, baseline first.
func Names() []string {
	return []string{"none", "loss", "jitter", "metadrop", "metadelay", "metadup", "stall", "reset", "combo"}
}
