package kv

import (
	"testing"
	"time"

	"e2ebatch/internal/netem"
	"e2ebatch/internal/resp"
	"e2ebatch/internal/sim"
	"e2ebatch/internal/tcpsim"
)

// simRig wires a client conn to a SimServer over a fast link.
type simRig struct {
	s      *sim.Sim
	client *tcpsim.Conn
	server *SimServer
	parser resp.Parser
}

func newSimRig(t *testing.T, cfg tcpsim.Config, scfg SimServerConfig) *simRig {
	t.Helper()
	s := sim.New(1)
	cs := tcpsim.NewStack(s, "client")
	ss := tcpsim.NewStack(s, "server")
	link := netem.NewLink(s, "lnk", netem.Config{BitsPerSec: 100_000_000_000, Propagation: 2 * time.Microsecond})
	cc, sc := tcpsim.Connect(cs, ss, link, cfg)
	store := NewStore(func() time.Duration { return s.Now().Duration() })
	srv := NewSimServer(NewEngine(store), sc, scfg)
	return &simRig{s: s, client: cc, server: srv}
}

// replies drains and parses everything readable at the client.
func (r *simRig) replies(t *testing.T) []resp.Value {
	t.Helper()
	if data := r.client.Read(0); len(data) > 0 {
		r.parser.Feed(data)
	}
	var out []resp.Value
	for {
		v, ok, err := r.parser.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func TestSimServerPing(t *testing.T) {
	cfg := tcpsim.DefaultConfig()
	cfg.Nagle = false
	r := newSimRig(t, cfg, DefaultSimServerConfig())
	r.client.Send(resp.Command("PING"))
	r.s.RunUntil(sim.Time(time.Millisecond))
	got := r.replies(t)
	if len(got) != 1 || got[0].String() != "+PONG" {
		t.Fatalf("replies = %v", got)
	}
}

func TestSimServerSetGetRoundTrip(t *testing.T) {
	cfg := tcpsim.DefaultConfig()
	cfg.Nagle = false
	r := newSimRig(t, cfg, DefaultSimServerConfig())
	val := make([]byte, 16384)
	for i := range val {
		val[i] = byte(i)
	}
	r.client.Send(resp.AppendCommand(nil, []byte("SET"), []byte("key0000000000000"), val))
	r.client.Send(resp.Command("GET", "key0000000000000"))
	r.s.RunUntil(sim.Time(10 * time.Millisecond))
	got := r.replies(t)
	if len(got) != 2 {
		t.Fatalf("replies = %d, want 2", len(got))
	}
	if got[0].String() != "+OK" {
		t.Fatalf("SET reply = %v", got[0])
	}
	if len(got[1].Str) != 16384 || got[1].Str[100] != val[100] {
		t.Fatalf("GET reply = %v", got[1])
	}
	st := r.server.Stats()
	if st.Requests != 2 {
		t.Fatalf("server requests = %d", st.Requests)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Fatalf("byte counters zero: %+v", st)
	}
}

func TestSimServerPipelinedBatch(t *testing.T) {
	// Many pipelined commands sent at once must be served in order and
	// show up as a batched read on the server (the adaptive-batching
	// behaviour of the paper's Figure 1 "top").
	cfg := tcpsim.DefaultConfig()
	cfg.Nagle = false
	r := newSimRig(t, cfg, DefaultSimServerConfig())
	var wire []byte
	const n = 20
	for i := 0; i < n; i++ {
		wire = resp.AppendCommand(wire, []byte("INCR"), []byte("ctr"))
	}
	r.client.Send(wire)
	r.s.RunUntil(sim.Time(10 * time.Millisecond))
	got := r.replies(t)
	if len(got) != n {
		t.Fatalf("replies = %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v.Int != int64(i+1) {
			t.Fatalf("reply %d = %v, want %d (ordering broken)", i, v, i+1)
		}
	}
	st := r.server.Stats()
	if st.MaxBatch < 2 {
		t.Fatalf("max batch = %d, expected batched reads", st.MaxBatch)
	}
	if st.ReadBatches >= st.Requests {
		t.Fatalf("batches=%d requests=%d: no amortization", st.ReadBatches, st.Requests)
	}
}

func TestSimServerSplitCommandAcrossSegments(t *testing.T) {
	// A command larger than one TSO flush arrives in pieces; the server
	// must buffer the partial parse and answer exactly once.
	cfg := tcpsim.DefaultConfig()
	cfg.Nagle = false
	cfg.TSOMaxBytes = 2 * cfg.MSS
	r := newSimRig(t, cfg, DefaultSimServerConfig())
	val := make([]byte, 30000)
	r.client.Send(resp.AppendCommand(nil, []byte("SET"), []byte("k"), val))
	r.s.RunUntil(sim.Time(50 * time.Millisecond))
	got := r.replies(t)
	if len(got) != 1 || got[0].String() != "+OK" {
		t.Fatalf("replies = %v", got)
	}
}

func TestSimServerProtocolErrorStopsServing(t *testing.T) {
	cfg := tcpsim.DefaultConfig()
	cfg.Nagle = false
	r := newSimRig(t, cfg, DefaultSimServerConfig())
	r.client.Send([]byte("$garbage\r\n"))
	r.s.RunUntil(sim.Time(5 * time.Millisecond))
	got := r.replies(t)
	if len(got) != 1 || !got[0].IsError() {
		t.Fatalf("replies = %v, want protocol error", got)
	}
	// Further commands are ignored (connection "closed").
	r.client.Send(resp.Command("PING"))
	r.s.RunUntil(sim.Time(10 * time.Millisecond))
	if extra := r.replies(t); len(extra) != 0 {
		t.Fatalf("server still answering after protocol error: %v", extra)
	}
}

func TestSimServerChargesAppCPU(t *testing.T) {
	cfg := tcpsim.DefaultConfig()
	cfg.Nagle = false
	scfg := DefaultSimServerConfig()
	r := newSimRig(t, cfg, scfg)
	for i := 0; i < 10; i++ {
		r.client.Send(resp.Command("PING"))
		r.s.RunFor(time.Millisecond)
	}
	busy := r.server.conn.Stack().AppCPU.BusyTime()
	// 10 wakeups × (β + α + write cost) at minimum.
	min := 10 * (scfg.ReadCosts.PerBatch + scfg.ReadCosts.PerItem)
	if busy < min {
		t.Fatalf("app CPU busy = %v, want >= %v", busy, min)
	}
}
