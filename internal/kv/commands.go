package kv

import (
	"strconv"
	"strings"
	"time"

	"e2ebatch/internal/resp"
)

// Engine executes RESP commands against a store. It is transport-agnostic:
// the simulated server (SimServer) and the real-socket server (cmd/kvserver)
// both drive it.
type Engine struct {
	store *Store

	commands uint64
	errors   uint64
}

// NewEngine returns an engine over st.
func NewEngine(st *Store) *Engine {
	if st == nil {
		panic("kv: nil store")
	}
	return &Engine{store: st}
}

// Store returns the underlying store.
func (e *Engine) Store() *Store { return e.store }

// Commands returns how many commands were executed, and how many returned
// errors.
func (e *Engine) Commands() (total, errors uint64) { return e.commands, e.errors }

// Execute runs one client command (an array of bulk strings) and returns
// the reply. Malformed input yields RESP errors, never panics.
func (e *Engine) Execute(v resp.Value) resp.Value {
	e.commands++
	reply := e.execute(v)
	if reply.IsError() {
		e.errors++
	}
	return reply
}

func (e *Engine) execute(v resp.Value) resp.Value {
	if v.Type != resp.Array || v.Null || len(v.Array) == 0 {
		return resp.Err("ERR protocol: expected command array")
	}
	args := make([][]byte, len(v.Array))
	for i, a := range v.Array {
		if a.Type != resp.BulkString || a.Null {
			return resp.Err("ERR protocol: command arguments must be bulk strings")
		}
		args[i] = a.Str
	}
	name := strings.ToUpper(string(args[0]))
	args = args[1:]

	switch name {
	case "PING":
		if len(args) == 1 {
			return resp.Bulk(args[0])
		}
		if len(args) > 1 {
			return arity("ping")
		}
		return resp.Pong()

	case "ECHO":
		if len(args) != 1 {
			return arity("echo")
		}
		return resp.Bulk(args[0])

	case "SET":
		if len(args) < 2 {
			return arity("set")
		}
		var ttl time.Duration
		for i := 2; i < len(args); i++ {
			switch strings.ToUpper(string(args[i])) {
			case "EX", "PX":
				unit := time.Second
				if strings.EqualFold(string(args[i]), "PX") {
					unit = time.Millisecond
				}
				if i+1 >= len(args) {
					return resp.Err("ERR syntax error")
				}
				n, err := strconv.ParseInt(string(args[i+1]), 10, 64)
				if err != nil || n <= 0 {
					return resp.Err("ERR invalid expire time in 'set' command")
				}
				ttl = time.Duration(n) * unit
				i++
			default:
				return resp.Err("ERR syntax error")
			}
		}
		e.store.Set(string(args[0]), append([]byte(nil), args[1]...), ttl)
		return resp.OK()

	case "GET":
		if len(args) != 1 {
			return arity("get")
		}
		if !stringKind(e.store, args[0]) {
			return wrongType()
		}
		val, ok := e.store.Get(string(args[0]))
		if !ok {
			return resp.NullBulk()
		}
		return resp.Bulk(val)

	case "SETNX":
		if len(args) != 2 {
			return arity("setnx")
		}
		if e.store.Kind(string(args[0])) != KindNone {
			return resp.Int(0)
		}
		e.store.Set(string(args[0]), append([]byte(nil), args[1]...), 0)
		return resp.Int(1)

	case "GETSET":
		if len(args) != 2 {
			return arity("getset")
		}
		if !stringKind(e.store, args[0]) {
			return wrongType()
		}
		old, ok := e.store.Get(string(args[0]))
		e.store.Set(string(args[0]), append([]byte(nil), args[1]...), 0)
		if !ok {
			return resp.NullBulk()
		}
		return resp.Bulk(old)

	case "GETDEL":
		if len(args) != 1 {
			return arity("getdel")
		}
		if !stringKind(e.store, args[0]) {
			return wrongType()
		}
		val, ok := e.store.Get(string(args[0]))
		if !ok {
			return resp.NullBulk()
		}
		e.store.Del(string(args[0]))
		return resp.Bulk(val)

	case "PERSIST":
		if len(args) != 1 {
			return arity("persist")
		}
		if e.store.Persist(string(args[0])) {
			return resp.Int(1)
		}
		return resp.Int(0)

	case "TYPE":
		if len(args) != 1 {
			return arity("type")
		}
		return resp.Value{Type: resp.SimpleString, Str: []byte(e.store.Kind(string(args[0])).String())}

	case "HSET":
		if len(args) < 3 || len(args)%2 != 1 {
			return arity("hset")
		}
		if k := e.store.Kind(string(args[0])); k != KindNone && k != KindHash {
			return wrongType()
		}
		var added int64
		for i := 1; i < len(args); i += 2 {
			if e.store.HSet(string(args[0]), string(args[i]), append([]byte(nil), args[i+1]...)) {
				added++
			}
		}
		return resp.Int(added)

	case "HGET":
		if len(args) != 2 {
			return arity("hget")
		}
		if k := e.store.Kind(string(args[0])); k != KindNone && k != KindHash {
			return wrongType()
		}
		v, ok := e.store.HGet(string(args[0]), string(args[1]))
		if !ok {
			return resp.NullBulk()
		}
		return resp.Bulk(v)

	case "HDEL":
		if len(args) < 2 {
			return arity("hdel")
		}
		if k := e.store.Kind(string(args[0])); k != KindNone && k != KindHash {
			return wrongType()
		}
		return resp.Int(e.store.HDel(string(args[0]), keysOf(args[1:])...))

	case "HLEN":
		if len(args) != 1 {
			return arity("hlen")
		}
		if k := e.store.Kind(string(args[0])); k != KindNone && k != KindHash {
			return wrongType()
		}
		return resp.Int(e.store.HLen(string(args[0])))

	case "HGETALL":
		if len(args) != 1 {
			return arity("hgetall")
		}
		if k := e.store.Kind(string(args[0])); k != KindNone && k != KindHash {
			return wrongType()
		}
		pairs := e.store.HGetAll(string(args[0]))
		out := make([]resp.Value, 0, 2*len(pairs))
		for _, p := range pairs {
			out = append(out, resp.Bulk(p[0]), resp.Bulk(p[1]))
		}
		return resp.Value{Type: resp.Array, Array: out}

	case "LPUSH", "RPUSH":
		if len(args) < 2 {
			return arity(strings.ToLower(name))
		}
		if k := e.store.Kind(string(args[0])); k != KindNone && k != KindList {
			return wrongType()
		}
		vals := make([][]byte, len(args)-1)
		for i, a := range args[1:] {
			vals[i] = append([]byte(nil), a...)
		}
		if name == "LPUSH" {
			return resp.Int(e.store.LPush(string(args[0]), vals...))
		}
		return resp.Int(e.store.RPush(string(args[0]), vals...))

	case "LPOP", "RPOP":
		if len(args) != 1 {
			return arity(strings.ToLower(name))
		}
		if k := e.store.Kind(string(args[0])); k != KindNone && k != KindList {
			return wrongType()
		}
		var v []byte
		var ok bool
		if name == "LPOP" {
			v, ok = e.store.LPop(string(args[0]))
		} else {
			v, ok = e.store.RPop(string(args[0]))
		}
		if !ok {
			return resp.NullBulk()
		}
		return resp.Bulk(v)

	case "LLEN":
		if len(args) != 1 {
			return arity("llen")
		}
		if k := e.store.Kind(string(args[0])); k != KindNone && k != KindList {
			return wrongType()
		}
		return resp.Int(e.store.LLen(string(args[0])))

	case "LRANGE":
		if len(args) != 3 {
			return arity("lrange")
		}
		if k := e.store.Kind(string(args[0])); k != KindNone && k != KindList {
			return wrongType()
		}
		start, err1 := strconv.ParseInt(string(args[1]), 10, 64)
		stop, err2 := strconv.ParseInt(string(args[2]), 10, 64)
		if err1 != nil || err2 != nil {
			return resp.Err("ERR value is not an integer or out of range")
		}
		vals := e.store.LRange(string(args[0]), start, stop)
		out := make([]resp.Value, len(vals))
		for i, v := range vals {
			out[i] = resp.Bulk(v)
		}
		return resp.Value{Type: resp.Array, Array: out}

	case "KEYS":
		if len(args) != 1 {
			return arity("keys")
		}
		keys := e.store.Keys(string(args[0]))
		out := make([]resp.Value, len(keys))
		for i, k := range keys {
			out[i] = resp.Bulk([]byte(k))
		}
		return resp.Value{Type: resp.Array, Array: out}

	case "MSET":
		if len(args) == 0 || len(args)%2 != 0 {
			return arity("mset")
		}
		for i := 0; i < len(args); i += 2 {
			e.store.Set(string(args[i]), append([]byte(nil), args[i+1]...), 0)
		}
		return resp.OK()

	case "MGET":
		if len(args) == 0 {
			return arity("mget")
		}
		out := make([]resp.Value, len(args))
		for i, k := range args {
			if val, ok := e.store.Get(string(k)); ok {
				out[i] = resp.Bulk(val)
			} else {
				out[i] = resp.NullBulk()
			}
		}
		return resp.Value{Type: resp.Array, Array: out}

	case "DEL":
		if len(args) == 0 {
			return arity("del")
		}
		return resp.Int(e.store.Del(keysOf(args)...))

	case "EXISTS":
		if len(args) == 0 {
			return arity("exists")
		}
		return resp.Int(e.store.Exists(keysOf(args)...))

	case "INCR", "DECR", "INCRBY", "DECRBY":
		if len(args) >= 1 && !stringKind(e.store, args[0]) {
			return wrongType()
		}
		delta := int64(1)
		switch name {
		case "INCR":
			if len(args) != 1 {
				return arity("incr")
			}
		case "DECR":
			if len(args) != 1 {
				return arity("decr")
			}
			delta = -1
		default:
			if len(args) != 2 {
				return arity(strings.ToLower(name))
			}
			n, err := strconv.ParseInt(string(args[1]), 10, 64)
			if err != nil {
				return resp.Err("ERR value is not an integer or out of range")
			}
			delta = n
			if name == "DECRBY" {
				delta = -n
			}
		}
		nv, ok := e.store.IncrBy(string(args[0]), delta)
		if !ok {
			return resp.Err("ERR value is not an integer or out of range")
		}
		return resp.Int(nv)

	case "APPEND":
		if len(args) != 2 {
			return arity("append")
		}
		if !stringKind(e.store, args[0]) {
			return wrongType()
		}
		return resp.Int(e.store.Append(string(args[0]), args[1]))

	case "STRLEN":
		if len(args) != 1 {
			return arity("strlen")
		}
		if !stringKind(e.store, args[0]) {
			return wrongType()
		}
		return resp.Int(e.store.Strlen(string(args[0])))

	case "EXPIRE", "PEXPIRE":
		if len(args) != 2 {
			return arity(strings.ToLower(name))
		}
		n, err := strconv.ParseInt(string(args[1]), 10, 64)
		if err != nil {
			return resp.Err("ERR value is not an integer or out of range")
		}
		unit := time.Second
		if name == "PEXPIRE" {
			unit = time.Millisecond
		}
		if e.store.Expire(string(args[0]), time.Duration(n)*unit) {
			return resp.Int(1)
		}
		return resp.Int(0)

	case "TTL", "PTTL":
		if len(args) != 1 {
			return arity(strings.ToLower(name))
		}
		ttl, ok := e.store.TTL(string(args[0]))
		if !ok {
			return resp.Int(-2)
		}
		if ttl < 0 {
			return resp.Int(-1)
		}
		if name == "TTL" {
			return resp.Int(int64((ttl + time.Second - 1) / time.Second))
		}
		return resp.Int(int64(ttl / time.Millisecond))

	case "DBSIZE":
		if len(args) != 0 {
			return arity("dbsize")
		}
		return resp.Int(e.store.DBSize())

	case "FLUSHALL":
		e.store.FlushAll()
		return resp.OK()

	case "COMMAND", "CONFIG", "CLIENT", "INFO":
		// Accepted no-ops so standard clients can handshake.
		return resp.OK()

	default:
		return resp.Err("ERR unknown command '%s'", strings.ToLower(name))
	}
}

func arity(cmd string) resp.Value {
	return resp.Err("ERR wrong number of arguments for '%s' command", cmd)
}

func wrongType() resp.Value {
	return resp.Err("WRONGTYPE Operation against a key holding the wrong kind of value")
}

// stringKind reports whether key is absent or holds a string.
func stringKind(s *Store, key []byte) bool {
	k := s.Kind(string(key))
	return k == KindNone || k == KindString
}

func keysOf(args [][]byte) []string {
	keys := make([]string, len(args))
	for i, a := range args {
		keys[i] = string(a)
	}
	return keys
}
