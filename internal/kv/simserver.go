package kv

import (
	"time"

	"e2ebatch/internal/cpumodel"
	"e2ebatch/internal/resp"
	"e2ebatch/internal/tcpsim"
)

// SimServerConfig prices the server application's work in the paper's α/β
// terms (§2): ReadCosts.PerBatch is the per-wakeup cost β (epoll return +
// read syscall), ReadCosts.PerItem the per-request cost α, and PerByteNS
// the parse/copy cost. WriteCosts prices response construction and the send
// syscall.
type SimServerConfig struct {
	ReadCosts  cpumodel.Costs
	WriteCosts cpumodel.Costs
}

// DefaultSimServerConfig returns a profile in the ballpark of a Redis server
// handling 16 KiB SETs on the paper's hardware.
func DefaultSimServerConfig() SimServerConfig {
	return SimServerConfig{
		ReadCosts:  cpumodel.Costs{PerBatch: 4 * time.Microsecond, PerItem: 2 * time.Microsecond, PerByteNS: 0.3},
		WriteCosts: cpumodel.Costs{PerItem: 1 * time.Microsecond, PerByteNS: 0.1},
	}
}

// SimServerStats counts server activity; MaxBatch and the Batches/Requests
// ratio expose the adaptive batching behaviour (requests per wakeup) that
// drives the Figure-1 dynamics.
type SimServerStats struct {
	Requests    uint64
	ReadBatches uint64
	MaxBatch    int
	BytesIn     uint64
	BytesOut    uint64
}

// SimServer is the event-driven mini-Redis serving one simulated
// connection: the application-thread half of the paper's server machine.
type SimServer struct {
	engine *Engine
	conn   *tcpsim.Conn
	cfg    SimServerConfig

	parser  resp.Parser
	pending []resp.Value
	busy    bool
	stalled bool

	stats SimServerStats
}

// NewSimServer attaches a server to conn, executing against engine.
func NewSimServer(engine *Engine, conn *tcpsim.Conn, cfg SimServerConfig) *SimServer {
	s := &SimServer{engine: engine, conn: conn, cfg: cfg}
	conn.OnReadable(s.wake)
	return s
}

// Stats returns a copy of the server counters.
func (s *SimServer) Stats() SimServerStats { return s.stats }

// Engine returns the command engine.
func (s *SimServer) Engine() *Engine { return s.engine }

// Stall freezes (true) or resumes (false) the server application's socket
// draining — the reader-stall fault: a stalled peer lets *unread* pile up
// until the advertised window closes, which is exactly the backpressure
// scenario the paper's unread-queue term measures. Resuming immediately
// drains whatever accumulated.
func (s *SimServer) Stall(v bool) {
	s.stalled = v
	if !v && s.conn.Readable() > 0 {
		s.wake()
	}
}

// wake is the epoll-readable event: start a read cycle unless one is
// already running (in which case the running cycle will re-check) or the
// application is stalled (Stall(false) will re-check).
func (s *SimServer) wake() {
	if s.busy || s.stalled {
		return
	}
	s.busy = true
	s.readCycle()
}

// readCycle charges the per-wakeup cost, drains the socket, parses the
// newly arrived commands, and processes them one by one.
func (s *SimServer) readCycle() {
	s.conn.Stack().AppCPU.Exec(s.cfg.ReadCosts.PerBatch, func() {
		data := s.conn.Read(0)
		if len(data) == 0 && len(s.pending) == 0 {
			s.finishCycle()
			return
		}
		s.stats.BytesIn += uint64(len(data))
		s.parser.Feed(data)
		batch := 0
		for {
			v, ok, err := s.parser.Next()
			if err != nil {
				// Corrupt stream: answer with an error and stop
				// reading — the mini-Redis equivalent of closing.
				s.send(resp.AppendValue(nil, resp.Err("ERR protocol error: %v", err)))
				s.conn.OnReadable(nil)
				s.busy = false
				return
			}
			if !ok {
				break
			}
			s.pending = append(s.pending, v)
			batch++
		}
		s.stats.ReadBatches++
		if batch > s.stats.MaxBatch {
			s.stats.MaxBatch = batch
		}
		s.processNext()
	})
}

// processNext handles one pending command, charging α plus byte costs, then
// recurses; when the queue drains it re-checks the socket.
func (s *SimServer) processNext() {
	if len(s.pending) == 0 {
		s.finishCycle()
		return
	}
	cmd := s.pending[0]
	s.pending = s.pending[1:]
	cost := s.cfg.ReadCosts.PerItem + time.Duration(float64(wireSize(cmd))*s.cfg.ReadCosts.PerByteNS)
	s.conn.Stack().AppCPU.Exec(cost, func() {
		reply := s.engine.Execute(cmd)
		s.stats.Requests++
		wire := resp.AppendValue(nil, reply)
		s.conn.Stack().AppCPU.Exec(s.cfg.WriteCosts.Item(len(wire)), func() {
			s.send(wire)
			s.processNext()
		})
	})
}

func (s *SimServer) send(wire []byte) {
	s.stats.BytesOut += uint64(len(wire))
	s.conn.Send(wire)
}

// finishCycle ends the current cycle and immediately starts another if data
// arrived while we were busy (level-triggered behaviour built from the
// edge-triggered OnReadable).
func (s *SimServer) finishCycle() {
	s.busy = false
	if s.conn.Readable() > 0 {
		s.wake()
	}
}

// wireSize approximates the wire size of a parsed command for cost
// accounting (header bytes are negligible next to 16 KiB values).
func wireSize(v resp.Value) int {
	n := 16
	for _, e := range v.Array {
		n += len(e.Str) + 16
	}
	n += len(v.Str)
	return n
}
