// Package kv is the mini-Redis substrate: an in-memory key-value store
// speaking RESP2, with the command surface the paper's evaluation workloads
// need (SET/GET with 16 B keys and 16 KiB values, §4) plus enough of the
// usual command set to be a usable server. It runs both inside the
// simulator (event-driven, SimServer) and over real sockets (cmd/kvserver).
package kv

import (
	"sort"
	"strconv"
	"time"
)

// Clock supplies the current time since an arbitrary epoch; virtual inside
// the simulator, wall-clock outside. It drives TTL expiry.
type Clock func() time.Duration

// Store is an in-memory string keyspace with per-key TTLs. It is not safe
// for concurrent use; the real-socket server serializes access (as Redis
// itself does with its single-threaded command loop).
type Store struct {
	clock Clock
	m     map[string]entry

	expired uint64
}

// Kind is a value's Redis type.
type Kind uint8

// Value kinds.
const (
	KindNone Kind = iota
	KindString
	KindHash
	KindList
)

// String names the kind the way Redis's TYPE command does.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindHash:
		return "hash"
	case KindList:
		return "list"
	}
	return "none"
}

type entry struct {
	kind     Kind
	val      []byte
	hash     map[string][]byte
	list     [][]byte
	expireAt time.Duration // 0 = no expiry
}

// NewStore returns an empty store. A nil clock panics.
func NewStore(clock Clock) *Store {
	if clock == nil {
		panic("kv: nil clock")
	}
	return &Store{clock: clock, m: make(map[string]entry)}
}

// live fetches the entry if present and unexpired, lazily reaping it
// otherwise (Redis-style lazy expiry).
func (s *Store) live(key string) (entry, bool) {
	e, ok := s.m[key]
	if !ok {
		return entry{}, false
	}
	if e.expireAt != 0 && s.clock() >= e.expireAt {
		delete(s.m, key)
		s.expired++
		return entry{}, false
	}
	return e, true
}

// Kind reports the live value's type (KindNone when missing).
func (s *Store) Kind(key string) Kind {
	e, ok := s.live(key)
	if !ok {
		return KindNone
	}
	return e.kind
}

// Set stores a string value under key with optional ttl (0 = no expiry),
// overwriting any previous value of any kind (as Redis SET does).
func (s *Store) Set(key string, value []byte, ttl time.Duration) {
	e := entry{kind: KindString, val: value}
	if ttl > 0 {
		e.expireAt = s.clock() + ttl
	}
	s.m[key] = e
}

// Get returns the string value and whether the key exists as a string.
// Callers that must distinguish "missing" from "wrong type" check Kind
// first, as the command engine does.
func (s *Store) Get(key string) ([]byte, bool) {
	e, ok := s.live(key)
	if !ok || e.kind != KindString {
		return nil, false
	}
	return e.val, true
}

// Del removes keys, returning how many existed.
func (s *Store) Del(keys ...string) int64 {
	var n int64
	for _, k := range keys {
		if _, ok := s.live(k); ok {
			delete(s.m, k)
			n++
		}
	}
	return n
}

// Exists counts how many of the given keys exist (with multiplicity, like
// Redis).
func (s *Store) Exists(keys ...string) int64 {
	var n int64
	for _, k := range keys {
		if _, ok := s.live(k); ok {
			n++
		}
	}
	return n
}

// IncrBy adds delta to the integer stored at key (0 if missing), returning
// the new value; ok is false if the current value is not an integer.
func (s *Store) IncrBy(key string, delta int64) (int64, bool) {
	var cur int64
	if e, ok := s.live(key); ok {
		v, err := strconv.ParseInt(string(e.val), 10, 64)
		if err != nil {
			return 0, false
		}
		cur = v
	}
	cur += delta
	// Preserve any existing TTL, as Redis does.
	e := s.m[key]
	e.kind = KindString
	e.val = strconv.AppendInt(nil, cur, 10)
	s.m[key] = e
	return cur, true
}

// Append appends data to the value at key (creating it), returning the new
// length.
func (s *Store) Append(key string, data []byte) int64 {
	e, _ := s.live(key)
	e.kind = KindString
	e.val = append(e.val, data...)
	s.m[key] = e
	return int64(len(e.val))
}

// Strlen returns the value length (0 for a missing key).
func (s *Store) Strlen(key string) int64 {
	e, _ := s.live(key)
	return int64(len(e.val))
}

// Expire sets a ttl on an existing key; it reports whether the key existed.
func (s *Store) Expire(key string, ttl time.Duration) bool {
	e, ok := s.live(key)
	if !ok {
		return false
	}
	if ttl <= 0 {
		delete(s.m, key)
		return true
	}
	e.expireAt = s.clock() + ttl
	s.m[key] = e
	return true
}

// TTL returns the remaining lifetime: (-2, false) if missing, (-1, true)
// if persistent, otherwise (ttl, true).
func (s *Store) TTL(key string) (time.Duration, bool) {
	e, ok := s.live(key)
	if !ok {
		return -2, false
	}
	if e.expireAt == 0 {
		return -1, true
	}
	return e.expireAt - s.clock(), true
}

// Persist removes the TTL from key, reporting whether a TTL was removed.
func (s *Store) Persist(key string) bool {
	e, ok := s.live(key)
	if !ok || e.expireAt == 0 {
		return false
	}
	e.expireAt = 0
	s.m[key] = e
	return true
}

// Keys returns the live keys matching a Redis-style glob pattern ('*' and
// '?' wildcards), sorted for determinism.
func (s *Store) Keys(pattern string) []string {
	var out []string
	for k := range s.m {
		if _, ok := s.live(k); !ok {
			continue
		}
		if globMatch(pattern, k) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// globMatch implements the '*'/'?' subset of Redis glob matching.
func globMatch(pattern, s string) bool {
	// Iterative wildcard matcher with single-star backtracking.
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '*':
			star, mark = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}

// ---- hashes ----
// The hash and list methods assume the key's kind has been validated by
// the caller (the command engine returns WRONGTYPE first); operating on a
// mismatched kind panics, as it indicates a missing guard.

func (s *Store) hashEntry(key string, create bool) (entry, bool) {
	e, ok := s.live(key)
	if !ok {
		if !create {
			return entry{}, false
		}
		e = entry{kind: KindHash, hash: make(map[string][]byte)}
		s.m[key] = e
		return e, true
	}
	if e.kind != KindHash {
		panic("kv: hash operation on non-hash key (engine guard missing)")
	}
	return e, true
}

// HSet sets field in the hash at key, reporting whether the field is new.
func (s *Store) HSet(key, field string, value []byte) bool {
	e, _ := s.hashEntry(key, true)
	_, existed := e.hash[field]
	e.hash[field] = value
	return !existed
}

// HGet fetches a hash field.
func (s *Store) HGet(key, field string) ([]byte, bool) {
	e, ok := s.hashEntry(key, false)
	if !ok {
		return nil, false
	}
	v, ok := e.hash[field]
	return v, ok
}

// HDel removes fields, returning how many existed; an emptied hash is
// removed, like Redis.
func (s *Store) HDel(key string, fields ...string) int64 {
	e, ok := s.hashEntry(key, false)
	if !ok {
		return 0
	}
	var n int64
	for _, f := range fields {
		if _, exists := e.hash[f]; exists {
			delete(e.hash, f)
			n++
		}
	}
	if len(e.hash) == 0 {
		delete(s.m, key)
	}
	return n
}

// HLen returns the number of fields.
func (s *Store) HLen(key string) int64 {
	e, ok := s.hashEntry(key, false)
	if !ok {
		return 0
	}
	return int64(len(e.hash))
}

// HGetAll returns field/value pairs sorted by field for determinism.
func (s *Store) HGetAll(key string) [][2][]byte {
	e, ok := s.hashEntry(key, false)
	if !ok {
		return nil
	}
	fields := make([]string, 0, len(e.hash))
	for f := range e.hash {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	out := make([][2][]byte, len(fields))
	for i, f := range fields {
		out[i] = [2][]byte{[]byte(f), e.hash[f]}
	}
	return out
}

// ---- lists ----

func (s *Store) listEntry(key string, create bool) (*entry, bool) {
	e, ok := s.live(key)
	if !ok {
		if !create {
			return nil, false
		}
		e = entry{kind: KindList}
		s.m[key] = e
	} else if e.kind != KindList {
		panic("kv: list operation on non-list key (engine guard missing)")
	}
	// Mutate through a copy written back by the callers below.
	return &e, true
}

// LPush prepends values (leftmost argument ends up at the head last, like
// Redis), returning the new length.
func (s *Store) LPush(key string, values ...[]byte) int64 {
	e, _ := s.listEntry(key, true)
	for _, v := range values {
		e.list = append([][]byte{v}, e.list...)
	}
	s.m[key] = *e
	return int64(len(e.list))
}

// RPush appends values, returning the new length.
func (s *Store) RPush(key string, values ...[]byte) int64 {
	e, _ := s.listEntry(key, true)
	e.list = append(e.list, values...)
	s.m[key] = *e
	return int64(len(e.list))
}

// LPop removes and returns the head; RPop the tail. Emptied lists vanish.
func (s *Store) LPop(key string) ([]byte, bool) { return s.pop(key, true) }

// RPop removes and returns the tail element.
func (s *Store) RPop(key string) ([]byte, bool) { return s.pop(key, false) }

func (s *Store) pop(key string, head bool) ([]byte, bool) {
	e, ok := s.listEntry(key, false)
	if !ok || len(e.list) == 0 {
		return nil, false
	}
	var v []byte
	if head {
		v = e.list[0]
		e.list = e.list[1:]
	} else {
		v = e.list[len(e.list)-1]
		e.list = e.list[:len(e.list)-1]
	}
	if len(e.list) == 0 {
		delete(s.m, key)
	} else {
		s.m[key] = *e
	}
	return v, true
}

// LLen returns the list length.
func (s *Store) LLen(key string) int64 {
	e, ok := s.listEntry(key, false)
	if !ok {
		return 0
	}
	return int64(len(e.list))
}

// LRange returns elements start..stop inclusive with Redis's negative-index
// semantics.
func (s *Store) LRange(key string, start, stop int64) [][]byte {
	e, ok := s.listEntry(key, false)
	if !ok {
		return nil
	}
	n := int64(len(e.list))
	if start < 0 {
		start += n
	}
	if stop < 0 {
		stop += n
	}
	if start < 0 {
		start = 0
	}
	if stop >= n {
		stop = n - 1
	}
	if start > stop || start >= n {
		return nil
	}
	out := make([][]byte, 0, stop-start+1)
	for i := start; i <= stop; i++ {
		out = append(out, e.list[i])
	}
	return out
}

// DBSize returns the number of live keys, reaping expired ones it touches.
func (s *Store) DBSize() int64 {
	var n int64
	for k := range s.m {
		if _, ok := s.live(k); ok {
			n++
		}
	}
	return n
}

// FlushAll removes every key.
func (s *Store) FlushAll() {
	s.m = make(map[string]entry)
}

// Expired returns how many keys lazy expiry has reaped.
func (s *Store) Expired() uint64 { return s.expired }
