package kv

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"e2ebatch/internal/resp"
)

// manual clock for store tests
type tclock struct{ now time.Duration }

func (c *tclock) fn() Clock { return func() time.Duration { return c.now } }

func newTestStore() (*Store, *tclock) {
	c := &tclock{}
	return NewStore(c.fn()), c
}

func TestStoreSetGet(t *testing.T) {
	s, _ := newTestStore()
	s.Set("k", []byte("v"), 0)
	got, ok := s.Get("k")
	if !ok || string(got) != "v" {
		t.Fatalf("Get = %q,%v", got, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key found")
	}
}

func TestStoreTTLExpiry(t *testing.T) {
	s, c := newTestStore()
	s.Set("k", []byte("v"), time.Second)
	if _, ok := s.Get("k"); !ok {
		t.Fatal("key missing before expiry")
	}
	ttl, ok := s.TTL("k")
	if !ok || ttl != time.Second {
		t.Fatalf("TTL = %v,%v", ttl, ok)
	}
	c.now += 2 * time.Second
	if _, ok := s.Get("k"); ok {
		t.Fatal("key alive after expiry")
	}
	if s.Expired() != 1 {
		t.Fatalf("expired = %d", s.Expired())
	}
	if ttl, _ := s.TTL("k"); ttl != -2 {
		t.Fatalf("TTL after expiry = %v, want -2", ttl)
	}
}

func TestStorePersistentTTL(t *testing.T) {
	s, _ := newTestStore()
	s.Set("k", []byte("v"), 0)
	ttl, ok := s.TTL("k")
	if !ok || ttl != -1 {
		t.Fatalf("TTL = %v,%v want -1,true", ttl, ok)
	}
}

func TestStoreDelExists(t *testing.T) {
	s, _ := newTestStore()
	s.Set("a", nil, 0)
	s.Set("b", nil, 0)
	if n := s.Exists("a", "b", "c", "a"); n != 3 {
		t.Fatalf("Exists = %d, want 3 (with multiplicity)", n)
	}
	if n := s.Del("a", "c"); n != 1 {
		t.Fatalf("Del = %d, want 1", n)
	}
	if n := s.DBSize(); n != 1 {
		t.Fatalf("DBSize = %d", n)
	}
}

func TestStoreIncrBy(t *testing.T) {
	s, _ := newTestStore()
	if v, ok := s.IncrBy("n", 5); !ok || v != 5 {
		t.Fatalf("IncrBy = %d,%v", v, ok)
	}
	if v, ok := s.IncrBy("n", -2); !ok || v != 3 {
		t.Fatalf("IncrBy = %d,%v", v, ok)
	}
	s.Set("s", []byte("notanumber"), 0)
	if _, ok := s.IncrBy("s", 1); ok {
		t.Fatal("IncrBy on non-integer succeeded")
	}
}

func TestStoreAppendStrlen(t *testing.T) {
	s, _ := newTestStore()
	if n := s.Append("k", []byte("foo")); n != 3 {
		t.Fatalf("Append = %d", n)
	}
	if n := s.Append("k", []byte("bar")); n != 6 {
		t.Fatalf("Append = %d", n)
	}
	if n := s.Strlen("k"); n != 6 {
		t.Fatalf("Strlen = %d", n)
	}
}

func TestStoreExpireAndFlush(t *testing.T) {
	s, c := newTestStore()
	s.Set("k", []byte("v"), 0)
	if !s.Expire("k", time.Minute) {
		t.Fatal("Expire on existing key failed")
	}
	if s.Expire("missing", time.Minute) {
		t.Fatal("Expire on missing key succeeded")
	}
	c.now += 2 * time.Minute
	if _, ok := s.Get("k"); ok {
		t.Fatal("key alive after Expire elapsed")
	}
	s.Set("x", nil, 0)
	s.FlushAll()
	if s.DBSize() != 0 {
		t.Fatal("FlushAll left keys")
	}
}

func TestStoreExpireNonPositiveDeletes(t *testing.T) {
	s, _ := newTestStore()
	s.Set("k", []byte("v"), 0)
	s.Expire("k", 0)
	if _, ok := s.Get("k"); ok {
		t.Fatal("Expire(0) did not delete")
	}
}

// exec runs a command line through a fresh engine.
func exec(t *testing.T, e *Engine, args ...string) resp.Value {
	t.Helper()
	var p resp.Parser
	p.Feed(resp.Command(args...))
	v, ok, err := p.Next()
	if !ok || err != nil {
		t.Fatalf("bad test command: %v %v", ok, err)
	}
	return e.Execute(v)
}

func newTestEngine() (*Engine, *tclock) {
	s, c := newTestStore()
	return NewEngine(s), c
}

func TestEnginePingEcho(t *testing.T) {
	e, _ := newTestEngine()
	if got := exec(t, e, "PING"); got.String() != "+PONG" {
		t.Fatalf("PING = %v", got)
	}
	if got := exec(t, e, "ping", "hello"); string(got.Str) != "hello" {
		t.Fatalf("PING msg = %v", got)
	}
	if got := exec(t, e, "ECHO", "x"); string(got.Str) != "x" {
		t.Fatalf("ECHO = %v", got)
	}
}

func TestEngineSetGetDel(t *testing.T) {
	e, _ := newTestEngine()
	if got := exec(t, e, "SET", "k", "v"); got.String() != "+OK" {
		t.Fatalf("SET = %v", got)
	}
	if got := exec(t, e, "GET", "k"); string(got.Str) != "v" {
		t.Fatalf("GET = %v", got)
	}
	if got := exec(t, e, "GET", "nope"); !got.Null {
		t.Fatalf("GET missing = %v", got)
	}
	if got := exec(t, e, "DEL", "k", "nope"); got.Int != 1 {
		t.Fatalf("DEL = %v", got)
	}
}

func TestEngineSetWithExpiry(t *testing.T) {
	e, c := newTestEngine()
	exec(t, e, "SET", "k", "v", "PX", "500")
	c.now += 400 * time.Millisecond
	if got := exec(t, e, "GET", "k"); got.Null {
		t.Fatal("key expired early")
	}
	c.now += 200 * time.Millisecond
	if got := exec(t, e, "GET", "k"); !got.Null {
		t.Fatal("key alive past PX")
	}
	if got := exec(t, e, "SET", "k", "v", "EX", "nope"); !got.IsError() {
		t.Fatalf("bad EX accepted: %v", got)
	}
	if got := exec(t, e, "SET", "k", "v", "BOGUS"); !got.IsError() {
		t.Fatalf("bad option accepted: %v", got)
	}
}

func TestEngineCounters(t *testing.T) {
	e, _ := newTestEngine()
	if got := exec(t, e, "INCR", "n"); got.Int != 1 {
		t.Fatalf("INCR = %v", got)
	}
	if got := exec(t, e, "INCRBY", "n", "10"); got.Int != 11 {
		t.Fatalf("INCRBY = %v", got)
	}
	if got := exec(t, e, "DECR", "n"); got.Int != 10 {
		t.Fatalf("DECR = %v", got)
	}
	if got := exec(t, e, "DECRBY", "n", "4"); got.Int != 6 {
		t.Fatalf("DECRBY = %v", got)
	}
	if got := exec(t, e, "INCRBY", "n", "xy"); !got.IsError() {
		t.Fatalf("INCRBY bad delta = %v", got)
	}
}

func TestEngineMSetMGet(t *testing.T) {
	e, _ := newTestEngine()
	if got := exec(t, e, "MSET", "a", "1", "b", "2"); got.String() != "+OK" {
		t.Fatalf("MSET = %v", got)
	}
	got := exec(t, e, "MGET", "a", "nope", "b")
	if len(got.Array) != 3 {
		t.Fatalf("MGET = %v", got)
	}
	if string(got.Array[0].Str) != "1" || !got.Array[1].Null || string(got.Array[2].Str) != "2" {
		t.Fatalf("MGET values = %v", got)
	}
	if got := exec(t, e, "MSET", "a"); !got.IsError() {
		t.Fatal("odd MSET accepted")
	}
}

func TestEngineTTLCommands(t *testing.T) {
	e, _ := newTestEngine()
	exec(t, e, "SET", "k", "v")
	if got := exec(t, e, "EXPIRE", "k", "10"); got.Int != 1 {
		t.Fatalf("EXPIRE = %v", got)
	}
	if got := exec(t, e, "TTL", "k"); got.Int != 10 {
		t.Fatalf("TTL = %v", got)
	}
	if got := exec(t, e, "PTTL", "k"); got.Int != 10000 {
		t.Fatalf("PTTL = %v", got)
	}
	if got := exec(t, e, "TTL", "missing"); got.Int != -2 {
		t.Fatalf("TTL missing = %v", got)
	}
	if got := exec(t, e, "EXPIRE", "missing", "10"); got.Int != 0 {
		t.Fatalf("EXPIRE missing = %v", got)
	}
}

func TestEngineStringOps(t *testing.T) {
	e, _ := newTestEngine()
	if got := exec(t, e, "APPEND", "k", "abc"); got.Int != 3 {
		t.Fatalf("APPEND = %v", got)
	}
	if got := exec(t, e, "STRLEN", "k"); got.Int != 3 {
		t.Fatalf("STRLEN = %v", got)
	}
}

func TestEngineAdminCommands(t *testing.T) {
	e, _ := newTestEngine()
	exec(t, e, "SET", "k", "v")
	if got := exec(t, e, "DBSIZE"); got.Int != 1 {
		t.Fatalf("DBSIZE = %v", got)
	}
	if got := exec(t, e, "FLUSHALL"); got.String() != "+OK" {
		t.Fatalf("FLUSHALL = %v", got)
	}
	if got := exec(t, e, "DBSIZE"); got.Int != 0 {
		t.Fatalf("DBSIZE = %v", got)
	}
	for _, c := range []string{"COMMAND", "CONFIG", "CLIENT", "INFO"} {
		if got := exec(t, e, c); got.IsError() {
			t.Fatalf("%s = %v", c, got)
		}
	}
}

func TestEngineErrors(t *testing.T) {
	e, _ := newTestEngine()
	if got := exec(t, e, "NOSUCHCMD"); !got.IsError() || !strings.Contains(string(got.Str), "unknown command") {
		t.Fatalf("unknown = %v", got)
	}
	for _, args := range [][]string{
		{"GET"}, {"SET", "k"}, {"ECHO"}, {"DEL"}, {"EXISTS"},
		{"INCR"}, {"STRLEN"}, {"EXPIRE", "k"}, {"TTL"}, {"MGET"},
		{"DBSIZE", "x"},
	} {
		if got := exec(t, e, args...); !got.IsError() {
			t.Errorf("%v accepted: %v", args, got)
		}
	}
	total, errs := e.Commands()
	if total == 0 || errs == 0 {
		t.Fatalf("counters: total=%d errs=%d", total, errs)
	}
}

func TestEngineRejectsNonArrayInput(t *testing.T) {
	e, _ := newTestEngine()
	if got := e.Execute(resp.Int(5)); !got.IsError() {
		t.Fatalf("non-array accepted: %v", got)
	}
	if got := e.Execute(resp.Value{Type: resp.Array}); !got.IsError() {
		t.Fatalf("empty array accepted: %v", got)
	}
	bad := resp.Value{Type: resp.Array, Array: []resp.Value{resp.Int(1)}}
	if got := e.Execute(bad); !got.IsError() {
		t.Fatalf("non-bulk args accepted: %v", got)
	}
}

func TestEngineLargeValueRoundTrip(t *testing.T) {
	e, _ := newTestEngine()
	val := bytes.Repeat([]byte("v"), 16384)
	var p resp.Parser
	p.Feed(resp.AppendCommand(nil, []byte("SET"), []byte("bigkey0000000000"), val))
	cmd, _, _ := p.Next()
	if got := e.Execute(cmd); got.String() != "+OK" {
		t.Fatalf("big SET = %v", got)
	}
	if got := exec(t, e, "GET", "bigkey0000000000"); len(got.Str) != 16384 {
		t.Fatalf("big GET = %d bytes", len(got.Str))
	}
}

func TestEngineSetNXGetSetGetDel(t *testing.T) {
	e, _ := newTestEngine()
	if got := exec(t, e, "SETNX", "k", "v1"); got.Int != 1 {
		t.Fatalf("SETNX fresh = %v", got)
	}
	if got := exec(t, e, "SETNX", "k", "v2"); got.Int != 0 {
		t.Fatalf("SETNX existing = %v", got)
	}
	if got := exec(t, e, "GET", "k"); string(got.Str) != "v1" {
		t.Fatalf("SETNX overwrote: %v", got)
	}
	if got := exec(t, e, "GETSET", "k", "v3"); string(got.Str) != "v1" {
		t.Fatalf("GETSET old = %v", got)
	}
	if got := exec(t, e, "GETSET", "fresh", "x"); !got.Null {
		t.Fatalf("GETSET missing = %v", got)
	}
	if got := exec(t, e, "GETDEL", "k"); string(got.Str) != "v3" {
		t.Fatalf("GETDEL = %v", got)
	}
	if got := exec(t, e, "GET", "k"); !got.Null {
		t.Fatalf("GETDEL left key: %v", got)
	}
	if got := exec(t, e, "GETDEL", "nope"); !got.Null {
		t.Fatalf("GETDEL missing = %v", got)
	}
}

func TestEnginePersistAndType(t *testing.T) {
	e, c := newTestEngine()
	exec(t, e, "SET", "k", "v", "EX", "10")
	if got := exec(t, e, "PERSIST", "k"); got.Int != 1 {
		t.Fatalf("PERSIST = %v", got)
	}
	c.now += time.Hour
	if got := exec(t, e, "GET", "k"); got.Null {
		t.Fatal("PERSIST did not remove TTL")
	}
	if got := exec(t, e, "PERSIST", "k"); got.Int != 0 {
		t.Fatalf("PERSIST without TTL = %v", got)
	}
	if got := exec(t, e, "TYPE", "k"); string(got.Str) != "string" {
		t.Fatalf("TYPE = %v", got)
	}
	if got := exec(t, e, "TYPE", "nope"); string(got.Str) != "none" {
		t.Fatalf("TYPE missing = %v", got)
	}
}

func TestEngineKeysGlob(t *testing.T) {
	e, _ := newTestEngine()
	for _, k := range []string{"user:1", "user:2", "session:9", "u"} {
		exec(t, e, "SET", k, "v")
	}
	got := exec(t, e, "KEYS", "user:*")
	if len(got.Array) != 2 || string(got.Array[0].Str) != "user:1" || string(got.Array[1].Str) != "user:2" {
		t.Fatalf("KEYS user:* = %v", got)
	}
	if got := exec(t, e, "KEYS", "*"); len(got.Array) != 4 {
		t.Fatalf("KEYS * = %v", got)
	}
	if got := exec(t, e, "KEYS", "u?er:1"); len(got.Array) != 1 {
		t.Fatalf("KEYS u?er:1 = %v", got)
	}
	if got := exec(t, e, "KEYS", "nomatch*z"); len(got.Array) != 0 {
		t.Fatalf("KEYS nomatch = %v", got)
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"*", "", true},
		{"*", "abc", true},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "abd", false},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"*b*", "abc", true},
		{"", "", true},
		{"", "x", false},
		{"**", "anything", true},
		{"a*b*c", "aXXbYYc", true},
		{"a*b*c", "aXXcYYb", false},
	}
	for _, c := range cases {
		if got := globMatch(c.pat, c.s); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestHashCommands(t *testing.T) {
	e, _ := newTestEngine()
	if got := exec(t, e, "HSET", "h", "f1", "v1", "f2", "v2"); got.Int != 2 {
		t.Fatalf("HSET = %v", got)
	}
	if got := exec(t, e, "HSET", "h", "f1", "v1b"); got.Int != 0 {
		t.Fatalf("HSET existing = %v", got)
	}
	if got := exec(t, e, "HGET", "h", "f1"); string(got.Str) != "v1b" {
		t.Fatalf("HGET = %v", got)
	}
	if got := exec(t, e, "HGET", "h", "nope"); !got.Null {
		t.Fatalf("HGET missing field = %v", got)
	}
	if got := exec(t, e, "HGET", "nokey", "f"); !got.Null {
		t.Fatalf("HGET missing key = %v", got)
	}
	if got := exec(t, e, "HLEN", "h"); got.Int != 2 {
		t.Fatalf("HLEN = %v", got)
	}
	if got := exec(t, e, "TYPE", "h"); string(got.Str) != "hash" {
		t.Fatalf("TYPE = %v", got)
	}
	all := exec(t, e, "HGETALL", "h")
	if len(all.Array) != 4 || string(all.Array[0].Str) != "f1" || string(all.Array[2].Str) != "f2" {
		t.Fatalf("HGETALL = %v", all)
	}
	if got := exec(t, e, "HDEL", "h", "f1", "ghost"); got.Int != 1 {
		t.Fatalf("HDEL = %v", got)
	}
	exec(t, e, "HDEL", "h", "f2")
	if got := exec(t, e, "EXISTS", "h"); got.Int != 0 {
		t.Fatal("emptied hash not removed")
	}
	if got := exec(t, e, "HSET", "h", "odd"); !got.IsError() {
		t.Fatalf("odd HSET accepted: %v", got)
	}
}

func TestListCommands(t *testing.T) {
	e, _ := newTestEngine()
	if got := exec(t, e, "RPUSH", "l", "b", "c"); got.Int != 2 {
		t.Fatalf("RPUSH = %v", got)
	}
	if got := exec(t, e, "LPUSH", "l", "a"); got.Int != 3 {
		t.Fatalf("LPUSH = %v", got)
	}
	if got := exec(t, e, "LLEN", "l"); got.Int != 3 {
		t.Fatalf("LLEN = %v", got)
	}
	r := exec(t, e, "LRANGE", "l", "0", "-1")
	if len(r.Array) != 3 || string(r.Array[0].Str) != "a" || string(r.Array[2].Str) != "c" {
		t.Fatalf("LRANGE = %v", r)
	}
	r = exec(t, e, "LRANGE", "l", "-2", "1")
	if len(r.Array) != 1 || string(r.Array[0].Str) != "b" {
		t.Fatalf("LRANGE -2..1 = %v", r)
	}
	if got := exec(t, e, "LPOP", "l"); string(got.Str) != "a" {
		t.Fatalf("LPOP = %v", got)
	}
	if got := exec(t, e, "RPOP", "l"); string(got.Str) != "c" {
		t.Fatalf("RPOP = %v", got)
	}
	exec(t, e, "LPOP", "l")
	if got := exec(t, e, "LPOP", "l"); !got.Null {
		t.Fatalf("LPOP empty = %v", got)
	}
	if got := exec(t, e, "EXISTS", "l"); got.Int != 0 {
		t.Fatal("emptied list not removed")
	}
	if got := exec(t, e, "LRANGE", "l", "x", "1"); !got.IsError() {
		t.Fatalf("bad LRANGE index accepted: %v", got)
	}
}

func TestWrongTypeGuards(t *testing.T) {
	e, _ := newTestEngine()
	exec(t, e, "HSET", "h", "f", "v")
	exec(t, e, "RPUSH", "l", "x")
	exec(t, e, "SET", "s", "v")
	for _, args := range [][]string{
		{"GET", "h"}, {"INCR", "h"}, {"APPEND", "h", "x"}, {"STRLEN", "l"},
		{"GETSET", "l", "v"}, {"GETDEL", "h"},
		{"HGET", "s", "f"}, {"HSET", "l", "f", "v"}, {"HLEN", "s"}, {"HGETALL", "l"}, {"HDEL", "s", "f"},
		{"LPUSH", "h", "v"}, {"RPUSH", "s", "v"}, {"LPOP", "h"}, {"LLEN", "h"}, {"LRANGE", "s", "0", "1"},
	} {
		got := exec(t, e, args...)
		if !got.IsError() || !strings.HasPrefix(string(got.Str), "WRONGTYPE") {
			t.Errorf("%v = %v, want WRONGTYPE", args, got)
		}
	}
	// SETNX on an existing non-string returns 0 without error (Redis
	// semantics).
	if got := exec(t, e, "SETNX", "h", "v"); got.Int != 0 || got.IsError() {
		t.Fatalf("SETNX on hash = %v", got)
	}
	// SET overwrites any kind.
	exec(t, e, "SET", "h", "now-a-string")
	if got := exec(t, e, "TYPE", "h"); string(got.Str) != "string" {
		t.Fatalf("SET did not overwrite hash: %v", got)
	}
}

func TestHashSurvivesKindAwareHelpers(t *testing.T) {
	s, _ := newTestStore()
	s.HSet("h", "f", []byte("v"))
	if s.Kind("h") != KindHash {
		t.Fatalf("Kind = %v", s.Kind("h"))
	}
	if _, ok := s.Get("h"); ok {
		t.Fatal("string Get returned a hash")
	}
	if n := s.Del("h"); n != 1 {
		t.Fatal("Del should remove hashes")
	}
}
