package figures

import (
	"fmt"
	"io"
	"time"
)

// CScanRow is one client-cost multiplier of the c-sweep.
type CScanRow struct {
	Scale      float64
	LatOff     time.Duration
	LatOn      time.Duration
	NagleHelps bool
}

// CScanOut sweeps the client cost multiplier at the fixed Figure-2 load —
// Figure 1's c-axis reproduced in the full system: as the client gets
// slower, the same server-side batching decision flips from helpful to
// harmful somewhere along the sweep.
type CScanOut struct {
	Rate float64
	Rows []CScanRow
	// FlipScale is the first swept multiplier at which batching stops
	// helping (0 if it always helps).
	FlipScale float64
}

// CScan runs the sweep.
func CScan(cal Calib, scales []float64, dur time.Duration, seed int64) *CScanOut {
	out := &CScanOut{Rate: cal.Fig2Rate}
	var specs []RunSpec
	for _, scale := range scales {
		for _, on := range []bool{false, true} {
			specs = append(specs, RunSpec{
				Calib:       cal,
				Seed:        seed,
				Rate:        cal.Fig2Rate,
				Duration:    dur,
				BatchOn:     on,
				ClientScale: scale,
			})
		}
	}
	outs := runAll(specs)
	for si, scale := range scales {
		row := CScanRow{
			Scale:  scale,
			LatOff: outs[2*si].Res.Latency.Mean(),
			LatOn:  outs[2*si+1].Res.Latency.Mean(),
		}
		row.NagleHelps = row.LatOn < row.LatOff
		if !row.NagleHelps && out.FlipScale == 0 {
			out.FlipScale = scale
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// WriteCScan renders the sweep.
func WriteCScan(w io.Writer, c *CScanOut) {
	fmt.Fprintf(w, "Client-cost sweep — Figure 1's c-axis in the full system (%.0f kRPS)\n", c.Rate/1000)
	fmt.Fprintf(w, "%8s | %12s %12s | %s\n", "c scale", "lat (off)", "lat (on)", "batching")
	for _, r := range c.Rows {
		verdict := "hurts"
		if r.NagleHelps {
			verdict = "helps"
		}
		fmt.Fprintf(w, "%8.2f | %12v %12v | %s\n",
			r.Scale, r.LatOff.Round(time.Microsecond), r.LatOn.Round(time.Microsecond), verdict)
	}
	if c.FlipScale > 0 {
		fmt.Fprintf(w, "outcome flips at client-cost scale %.2f\n", c.FlipScale)
	}
}
