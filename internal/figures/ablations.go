package figures

import (
	"fmt"
	"io"
	"time"
)

// TickRow is one toggling-granularity setting (§5 "Toggling Granularity"):
// finer ticks react faster, coarser ticks resist noise.
type TickRow struct {
	Interval time.Duration
	Dynamic  time.Duration
	OnShare  float64
	Switches uint64
}

// TickAblationOut sweeps the decision-tick period at a fixed high load
// where batching clearly wins.
type TickAblationOut struct {
	Rate     float64
	StaticOn time.Duration
	Rows     []TickRow
}

// TickAblation runs the toggling-granularity sweep.
func TickAblation(cal Calib, rate float64, intervals []time.Duration, dur time.Duration, seed int64) *TickAblationOut {
	out := &TickAblationOut{Rate: rate}
	specs := []RunSpec{{Calib: cal, Seed: seed, Rate: rate, Duration: dur, BatchOn: true}}
	for _, iv := range intervals {
		d := DefaultDynamicSpec(cal.SLO)
		d.Interval = iv
		specs = append(specs, RunSpec{Calib: cal, Seed: seed, Rate: rate, Duration: dur, Dynamic: d})
	}
	outs := runAll(specs)
	out.StaticOn = outs[0].Res.Latency.Mean()
	for i, iv := range intervals {
		rr := outs[i+1]
		out.Rows = append(out.Rows, TickRow{
			Interval: iv,
			Dynamic:  rr.Res.Latency.Mean(),
			OnShare:  rr.OnShare,
			Switches: rr.TogglerStats.Switches,
		})
	}
	return out
}

// WriteTickAblation renders the granularity table.
func WriteTickAblation(w io.Writer, t *TickAblationOut) {
	fmt.Fprintf(w, "Toggling granularity ablation — %.0f kRPS, static batch-on = %v\n",
		t.Rate/1000, t.StaticOn.Round(time.Microsecond))
	fmt.Fprintf(w, "%10s | %10s %9s %9s\n", "tick", "dynamic", "on-share", "switches")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%10v | %10v %8.0f%% %9d\n",
			r.Interval, r.Dynamic.Round(time.Microsecond), 100*r.OnShare, r.Switches)
	}
}

// ExchangeRow is one metadata-exchange frequency setting (§5 "Metadata
// Exchange"): the paper argues the exchange can be made arbitrarily
// infrequent because "Little's law estimates remain accurate regardless".
type ExchangeRow struct {
	Interval  time.Duration // 0 = state on every segment
	Exchanges uint64        // states actually carried
	Measured  time.Duration
	OnlineAvg time.Duration
	Count     int
}

// ExchangeAblationOut sweeps the exchange rate limit at a fixed load.
type ExchangeAblationOut struct {
	Rate float64
	Rows []ExchangeRow
}

// ExchangeAblation runs the exchange-frequency sweep with a passive online
// estimator sampling every 5 ms.
func ExchangeAblation(cal Calib, rate float64, intervals []time.Duration, dur time.Duration, seed int64) *ExchangeAblationOut {
	out := &ExchangeAblationOut{Rate: rate}
	var specs []RunSpec
	for _, iv := range intervals {
		specs = append(specs, RunSpec{
			Calib:               cal,
			Seed:                seed,
			Rate:                rate,
			Duration:            dur,
			BatchOn:             true,
			ExchangeInterval:    iv,
			OnlineEstimateEvery: 5 * time.Millisecond,
		})
	}
	for i, r := range runAll(specs) {
		out.Rows = append(out.Rows, ExchangeRow{
			Interval:  intervals[i],
			Exchanges: r.ClientConn.StatesExchanged + r.ServerConn.StatesExchanged,
			Measured:  r.Res.Latency.Mean(),
			OnlineAvg: r.OnlineAvg,
			Count:     r.OnlineCount,
		})
	}
	return out
}

// WriteExchangeAblation renders the exchange-frequency table.
func WriteExchangeAblation(w io.Writer, e *ExchangeAblationOut) {
	fmt.Fprintf(w, "Metadata-exchange frequency ablation — %.0f kRPS, batch-on\n", e.Rate/1000)
	fmt.Fprintf(w, "%12s | %10s | %10s %12s %7s\n", "interval", "exchanges", "measured", "online est", "ticks")
	for _, r := range e.Rows {
		iv := "every-seg"
		if r.Interval > 0 {
			iv = r.Interval.String()
		}
		fmt.Fprintf(w, "%12s | %10d | %10v %12v %7d\n",
			iv, r.Exchanges, r.Measured.Round(time.Microsecond),
			r.OnlineAvg.Round(time.Microsecond), r.Count)
	}
}

// GRORow is one offered load of the receive-side-batching ablation.
type GRORow struct {
	Rate float64
	// Measured latency in the four cells: sender batching {off,on} ×
	// GRO {off,on}.
	OffNoGRO, OffGRO, OnNoGRO, OnGRO time.Duration
}

// GROAblationOut contrasts receiver-side batching (GRO/NAPI, needs no
// sender cooperation) with sender-side corking — two points in the paper's
// design space of "batching in multiple layers of the stack" (§1).
type GROAblationOut struct {
	Rows []GRORow
}

// GROAblation runs the four-cell comparison at each rate.
func GROAblation(cal Calib, rates []float64, dur time.Duration, seed int64) *GROAblationOut {
	out := &GROAblationOut{}
	var specs []RunSpec
	for _, rate := range rates {
		for _, on := range []bool{false, true} {
			for _, gro := range []bool{false, true} {
				specs = append(specs, RunSpec{Calib: cal, Seed: seed, Rate: rate, Duration: dur, BatchOn: on, GRO: gro})
			}
		}
	}
	outs := runAll(specs)
	for ri, rate := range rates {
		cells := outs[4*ri : 4*ri+4]
		out.Rows = append(out.Rows, GRORow{
			Rate:     rate,
			OffNoGRO: cells[0].Res.Latency.Mean(),
			OffGRO:   cells[1].Res.Latency.Mean(),
			OnNoGRO:  cells[2].Res.Latency.Mean(),
			OnGRO:    cells[3].Res.Latency.Mean(),
		})
	}
	return out
}

// WriteGROAblation renders the four-cell table.
func WriteGROAblation(w io.Writer, g *GROAblationOut) {
	fmt.Fprintln(w, "Receive-side (GRO) vs sender-side batching — mean latency")
	fmt.Fprintf(w, "%8s | %12s %12s | %12s %12s\n", "kRPS", "off", "off+GRO", "on", "on+GRO")
	for _, r := range g.Rows {
		fmt.Fprintf(w, "%8.1f | %12v %12v | %12v %12v\n",
			r.Rate/1000, r.OffNoGRO.Round(time.Microsecond), r.OffGRO.Round(time.Microsecond),
			r.OnNoGRO.Round(time.Microsecond), r.OnGRO.Round(time.Microsecond))
	}
}

// LossRow is one loss-probability setting of the robustness sweep.
type LossRow struct {
	Loss        float64
	Measured    time.Duration
	EstBytes    time.Duration
	Retransmits uint64
	Dropped     uint64
}

// LossOut probes the estimator under packet loss with go-back-N recovery:
// the paper's queueing argument holds for admitted packets, and recovery
// delay is genuine residency in the unacked queue — so measured and
// estimated latency should inflate together rather than diverge.
type LossOut struct {
	Rate float64
	Rows []LossRow
}

// LossRobustness runs the sweep at a moderate load.
func LossRobustness(cal Calib, rate float64, losses []float64, dur time.Duration, seed int64) *LossOut {
	out := &LossOut{Rate: rate}
	var specs []RunSpec
	for _, loss := range losses {
		specs = append(specs, RunSpec{Calib: cal, Seed: seed, Rate: rate, Duration: dur, LossProb: loss})
	}
	for i, r := range runAll(specs) {
		row := LossRow{
			Loss:        losses[i],
			Measured:    r.Res.Latency.Mean(),
			Retransmits: r.ClientConn.Retransmits + r.ServerConn.Retransmits,
			Dropped:     r.Res.Dropped,
		}
		if r.Est[0].Valid {
			row.EstBytes = r.Est[0].Latency
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// WriteLoss renders the loss sweep.
func WriteLoss(w io.Writer, l *LossOut) {
	fmt.Fprintf(w, "Loss robustness — %.0f kRPS with go-back-N recovery\n", l.Rate/1000)
	fmt.Fprintf(w, "%8s | %12s %12s | %11s %8s\n", "loss", "measured", "est (bytes)", "retransmits", "dropped")
	for _, r := range l.Rows {
		fmt.Fprintf(w, "%7.1f%% | %12v %12v | %11d %8d\n",
			100*r.Loss, r.Measured.Round(time.Microsecond), r.EstBytes.Round(time.Microsecond),
			r.Retransmits, r.Dropped)
	}
}
