package figures

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"e2ebatch/internal/faults"
	"e2ebatch/internal/policy"
)

// TestTailFidelityGolden pins the full tail report byte-for-byte at the
// cmd/fidelity -tails defaults (seed 1, 150 ms). Stored as readable text in
// testdata like the mean report: a drift names the workload, the quantile
// and the hypothesis that moved. Run with E2E_GOLDEN_PRINT=1 to rewrite.
func TestTailFidelityGolden(t *testing.T) {
	skipIfShort(t)
	path := filepath.Join("testdata", "tailfidelity_golden.txt")

	var buf bytes.Buffer
	WriteTailFidelity(&buf, TailFidelity(DefaultCalib(), 150*time.Millisecond, 1))

	if os.Getenv("E2E_GOLDEN_PRINT") != "" {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("tail fidelity report drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestTailFidelityDeterministic renders the tail harness twice from scratch
// and requires byte-identical reports.
func TestTailFidelityDeterministic(t *testing.T) {
	skipIfShort(t)
	render := func() []byte {
		var buf bytes.Buffer
		WriteTailFidelity(&buf, TailFidelity(DefaultCalib(), 40*time.Millisecond, 9))
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("two TailFidelity runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestTailFidelityShape asserts the acceptance criteria's structure: every
// workload gets positive, ordered ground-truth quantiles; the composed
// estimator scores every workload with ordered quantiles; the naive baseline
// always scores; and H6–H8 are present with data-backed verdicts. It also
// re-checks H6's substance directly — the estimator's p99 error must not
// exceed the naive baseline's on any workload — so the acceptance bar holds
// even at this shorter duration, not just at the golden's.
func TestTailFidelityShape(t *testing.T) {
	skipIfShort(t)
	out := TailFidelity(DefaultCalib(), 40*time.Millisecond, 3)
	if len(out.Points) < 6 {
		t.Fatalf("zoo too small: %d workloads", len(out.Points))
	}
	for _, pt := range out.Points {
		name := pt.Workload.Name
		if pt.Completed == 0 {
			t.Fatalf("%s: no completed requests", name)
		}
		for qi := 0; qi < 4; qi++ {
			if pt.Truth[qi] <= 0 {
				t.Fatalf("%s: truth quantile %d is %v", name, qi, pt.Truth[qi])
			}
			if qi > 0 && pt.Truth[qi] < pt.Truth[qi-1] {
				t.Fatalf("%s: truth quantiles unordered: %v", name, pt.Truth)
			}
		}
		if !pt.Scored[PredEstimator] {
			t.Errorf("%s: composed estimator abstained", name)
			continue
		}
		e := pt.Pred[PredEstimator]
		if !(e[0] <= e[1] && e[1] <= e[2] && e[2] <= e[3]) {
			t.Errorf("%s: estimator quantiles unordered: %v", name, e)
		}
		if !pt.Scored[PredNaive] {
			t.Errorf("%s: naive baseline abstained", name)
		}
		if pt.Err[PredEstimator][2] > pt.Err[PredNaive][2] {
			t.Errorf("%s: naive p99 error %.1f%% beats estimator %.1f%%",
				name, 100*pt.Err[PredNaive][2], 100*pt.Err[PredEstimator][2])
		}
	}
	if len(out.Hypotheses) != 3 {
		t.Fatalf("want H6–H8, got %d hypotheses", len(out.Hypotheses))
	}
	for i, want := range []string{"H6", "H7", "H8"} {
		h := out.Hypotheses[i]
		if h.ID != want {
			t.Errorf("hypothesis %d = %s, want %s", i, h.ID, want)
		}
		if h.Verdict != "CONFIRMED" && h.Verdict != "REFUTED" {
			t.Errorf("%s: verdict %q", h.ID, h.Verdict)
		}
		if h.Claim == "" || h.Evidence == "" {
			t.Errorf("%s: empty claim or evidence", h.ID)
		}
	}
}

// tailSLOSpec is the shared dynamic setup for the tail-SLO chaos scenarios:
// a p99-targeting toggler with deterministic (ε=0) exploration, started in
// batch-on so a retreat to the safe mode (BatchOff) is an observable switch.
func tailSLOSpec(cal Calib, v1Peer bool) *DynamicSpec {
	d := DefaultDynamicSpec(cal.SLO)
	d.Objective = policy.QuantileUnderSLO{Quantile: 0.99, SLO: cal.SLO}
	d.Toggler.Epsilon = 0
	d.Initial = policy.BatchOn
	d.TailQuantile = 0.99
	d.TailsV1Peer = v1Peer
	return d
}

// TestTailSLOAgainstV1PeerRetreats is the degraded-mode contract for tail
// policies: a p99-targeting controller talking to a v1 peer (counters flow,
// histograms never do) sees a valid mean but an abstaining tail on every
// post-priming tick, and must retreat to its safe mode exactly as if the
// peer's metadata were missing — and hold it, deterministically.
func TestTailSLOAgainstV1PeerRetreats(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	spec := RunSpec{
		Calib:    cal,
		Seed:     11,
		Rate:     30000,
		Duration: 100 * time.Millisecond,
		Dynamic:  tailSLOSpec(cal, true),
	}
	a := Run(spec)
	if a.TotalTicks == 0 {
		t.Fatal("no decision ticks ran")
	}
	if a.TailAbstainedTicks == 0 {
		t.Fatal("no tick recorded a tail abstention against a v1 peer")
	}
	if a.TailAbstainedTicks > a.DegradedTicks {
		t.Fatalf("abstained ticks %d exceed degraded ticks %d — abstention must route degraded",
			a.TailAbstainedTicks, a.DegradedTicks)
	}
	if a.TogglerStats.SafeFallbacks == 0 {
		t.Fatalf("tail-blind policy never fell back to safe mode (stats %+v)", a.TogglerStats)
	}
	if a.FinalMode != policy.BatchOff {
		t.Fatalf("final mode = %v, want the safe default BatchOff held", a.FinalMode)
	}
	b := Run(spec)
	if a.TailAbstainedTicks != b.TailAbstainedTicks || a.TogglerStats != b.TogglerStats {
		t.Fatalf("v1-peer retreat not deterministic: %+v vs %+v", a.TogglerStats, b.TogglerStats)
	}

	// Control: identical run with a v2 peer — the tail composes, abstention
	// stays the exception, and the policy is not pinned in safe mode by
	// abstention alone.
	spec.Dynamic = tailSLOSpec(cal, false)
	c := Run(spec)
	if c.TailAbstainedTicks >= c.TotalTicks/2 {
		t.Fatalf("v2 peer still abstained on %d/%d ticks", c.TailAbstainedTicks, c.TotalTicks)
	}
}

// TestTailSLOUnderMetaDropRetreats reuses the fault plane: a p99-targeting
// policy whose metadata exchange is dropped mid-run (so mean AND tail go
// dark together) must take the same safe-mode retreat, stay sane, and
// reproduce byte-for-byte under its seed.
func TestTailSLOUnderMetaDropRetreats(t *testing.T) {
	skipIfShort(t)
	dur := 120 * time.Millisecond
	plan := &faults.Plan{Name: "tail-metadrop", Events: []faults.Event{
		{Kind: faults.MetaDrop, Start: dur / 4, Dur: 2 * dur, Prob: 1},
	}}
	cal := DefaultCalib()
	spec := RunSpec{
		Calib:    cal,
		Seed:     17,
		Rate:     30000,
		Duration: dur,
		Dynamic:  tailSLOSpec(cal, false),
		Faults:   plan,
	}
	a := Run(spec)
	checkChaosSane(t, "tail-metadrop", a)
	if a.DegradedTicks == 0 {
		t.Fatal("metadata drops never degraded a tail-targeting tick")
	}
	if a.TogglerStats.SafeFallbacks == 0 {
		t.Fatalf("tail policy never fell back under metadata drops (stats %+v)", a.TogglerStats)
	}
	if a.FinalMode != policy.BatchOff {
		t.Fatalf("final mode = %v, want BatchOff held while the exchange is dark", a.FinalMode)
	}
	b := Run(spec)
	if a.TogglerStats != b.TogglerStats || a.DegradedTicks != b.DegradedTicks {
		t.Fatalf("metadrop retreat not deterministic: %+v vs %+v", a.TogglerStats, b.TogglerStats)
	}
}
