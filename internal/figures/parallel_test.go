package figures

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// goldenDur keeps the determinism tests cheap enough for the short-mode
// -race gate while still covering several decision ticks per run.
func goldenDur() time.Duration {
	if testing.Short() {
		return 20 * time.Millisecond
	}
	return 60 * time.Millisecond
}

// goldenSpecs is a small mixed sweep: both static modes across three rates
// plus one dynamic-toggling run, enough to exercise every controller path
// through the worker pool.
func goldenSpecs() []RunSpec {
	cal := DefaultCalib()
	dur := goldenDur()
	var specs []RunSpec
	for _, rate := range []float64{10000, 35000, 60000} {
		for _, on := range []bool{false, true} {
			specs = append(specs, RunSpec{Calib: cal, Seed: 7, Rate: rate, Duration: dur, BatchOn: on})
		}
	}
	specs = append(specs, RunSpec{Calib: cal, Seed: 11, Rate: 50000, Duration: dur, Dynamic: DefaultDynamicSpec(cal.SLO)})
	return specs
}

// TestRunManyGoldenDeterminism is the tentpole guarantee: fanning a sweep
// across workers yields results deeply identical to running it serially,
// run by run, because every run owns its RNG and simulator.
func TestRunManyGoldenDeterminism(t *testing.T) {
	specs := goldenSpecs()
	serial := RunMany(specs, 1)
	parallel := RunMany(specs, 4)
	if len(serial) != len(specs) || len(parallel) != len(specs) {
		t.Fatalf("got %d serial / %d parallel results for %d specs", len(serial), len(parallel), len(specs))
	}
	for i := range specs {
		if serial[i] == nil || parallel[i] == nil {
			t.Fatalf("run %d: nil result (serial=%v parallel=%v)", i, serial[i] == nil, parallel[i] == nil)
		}
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("run %d: parallel result differs from serial\nserial:   %+v\nparallel: %+v",
				i, serial[i].Res, parallel[i].Res)
		}
	}
}

// TestRunManyMoreWorkersThanSpecs clamps the pool and still fills every slot.
func TestRunManyMoreWorkersThanSpecs(t *testing.T) {
	specs := goldenSpecs()[:2]
	outs := RunMany(specs, 64)
	want := RunMany(specs, 1)
	for i := range specs {
		if !reflect.DeepEqual(outs[i], want[i]) {
			t.Errorf("run %d differs with clamped worker pool", i)
		}
	}
}

// TestFig4aParallelBytesIdentical renders a small Figure 4a sweep serially
// and with four workers and requires byte-identical output — the end-to-end
// form of the determinism guarantee that cmd/e2efig relies on.
func TestFig4aParallelBytesIdentical(t *testing.T) {
	cal := DefaultCalib()
	rates := []float64{20000, 45000}
	render := func(workers int) []byte {
		prev := SetParallelism(workers)
		defer SetParallelism(prev)
		var buf bytes.Buffer
		WriteFig4(&buf, Fig4a(cal, rates, goldenDur(), 7))
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("rendered figure differs between serial and parallel runs\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestSetParallelism checks the knob's swap/default semantics.
func TestSetParallelism(t *testing.T) {
	prev := SetParallelism(3)
	defer SetParallelism(prev)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", got)
	}
	if old := SetParallelism(0); old != 3 {
		t.Fatalf("SetParallelism returned %d, want previous value 3", old)
	}
	if got := Parallelism(); got < 1 {
		t.Fatalf("Parallelism() = %d with default setting, want >= 1", got)
	}
}
