package figures

import (
	"bytes"
	"testing"
	"time"
)

// TestExchangeFrequencyInvariance asserts §5's claim that reducing the
// metadata-exchange frequency does not hurt estimate accuracy: the online
// estimate stays put while the exchange count drops by orders of magnitude.
func TestExchangeFrequencyInvariance(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	ivs := []time.Duration{0, time.Millisecond, 50 * time.Millisecond}
	out := ExchangeAblation(cal, 35000, ivs, 300*time.Millisecond, 7)
	if len(out.Rows) != 3 {
		t.Fatalf("rows = %d", len(out.Rows))
	}
	base := out.Rows[0]
	if base.Count == 0 || base.OnlineAvg == 0 {
		t.Fatalf("baseline produced no online estimates: %+v", base)
	}
	for _, r := range out.Rows[1:] {
		if r.Exchanges >= base.Exchanges/10 {
			t.Errorf("interval %v: %d exchanges vs baseline %d — rate limit ineffective", r.Interval, r.Exchanges, base.Exchanges)
		}
		if e := relErr(r.OnlineAvg, base.OnlineAvg); e > 0.10 {
			t.Errorf("interval %v: online estimate %v vs baseline %v (%.0f%% drift)", r.Interval, r.OnlineAvg, base.OnlineAvg, 100*e)
		}
	}
	var buf bytes.Buffer
	WriteExchangeAblation(&buf, out)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

// TestTickGranularityTradeoff asserts §5's reaction-speed observation:
// finer decision ticks track the winning mode at a load where the losing
// mode collapses, while very coarse ticks react too slowly within the run.
func TestTickGranularityTradeoff(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	ivs := []time.Duration{200 * time.Microsecond, 20 * time.Millisecond}
	out := TickAblation(cal, 50000, ivs, 500*time.Millisecond, 7)
	fine, coarse := out.Rows[0], out.Rows[1]
	if fine.Dynamic > 2*out.StaticOn {
		t.Errorf("fine tick: dynamic %v vs static-on %v", fine.Dynamic, out.StaticOn)
	}
	if fine.OnShare < 0.6 {
		t.Errorf("fine tick: on-share %.0f%%, want majority", 100*fine.OnShare)
	}
	if coarse.OnShare >= fine.OnShare {
		t.Errorf("coarse tick reacted as fast as fine: %.0f%% vs %.0f%%", 100*coarse.OnShare, 100*fine.OnShare)
	}
	if coarse.Dynamic <= fine.Dynamic {
		t.Errorf("coarse tick latency %v should exceed fine %v at this load", coarse.Dynamic, fine.Dynamic)
	}
	var buf bytes.Buffer
	WriteTickAblation(&buf, out)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

// TestTimelineConvergence asserts the convergence dynamics: the dynamic run
// starts in the collapsing mode, and by the final quarter of the run its
// windows sit within 2x of static batch-on.
func TestTimelineConvergence(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	out := Timeline(cal, 50000, 400*time.Millisecond, 7)
	if len(out.Dynamic) < 10 {
		t.Fatalf("windows = %d", len(out.Dynamic))
	}
	// Early: the dynamic trace must show the collapse (it started off).
	early := out.Dynamic[1].Mean()
	if early < 4*out.StaticOn {
		t.Fatalf("early window %v does not show the initial collapse (static-on %v)", early, out.StaticOn)
	}
	// Late: converged. Take the median of the last quarter to tolerate
	// exploration bumps.
	tail := out.Dynamic[3*len(out.Dynamic)/4:]
	within := 0
	for _, w := range tail {
		if w.Count > 0 && w.Mean() <= 2*out.StaticOn {
			within++
		}
	}
	if within*3 < len(tail)*2 {
		t.Fatalf("only %d/%d tail windows within 2x of static-on", within, len(tail))
	}
}

// TestGROAblation asserts the receive-side-batching finding: in our
// calibration (per-delivery cost dominating the server softirq), adaptive
// GRO alone rescues the no-sender-batching mode from its collapse, without
// Nagle's low-load hold penalty. See EXPERIMENTS.md for the calibration
// caveat this implies.
func TestGROAblation(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	out := GROAblation(cal, []float64{40000, 55000}, 300*time.Millisecond, 7)
	for _, r := range out.Rows {
		if r.OffGRO*5 > r.OffNoGRO {
			t.Errorf("rate %v: GRO should rescue batching-off (%v vs %v)", r.Rate, r.OffGRO, r.OffNoGRO)
		}
		if r.OffGRO > cal.SLO {
			t.Errorf("rate %v: off+GRO %v violates SLO", r.Rate, r.OffGRO)
		}
		// GRO composes harmlessly with sender batching.
		if r.OnGRO > r.OnNoGRO*3/2 {
			t.Errorf("rate %v: GRO hurt the batch-on mode (%v vs %v)", r.Rate, r.OnGRO, r.OnNoGRO)
		}
	}
	var buf bytes.Buffer
	WriteGROAblation(&buf, out)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

// TestCScanFlip asserts the c-axis behaviour in the full system: batching
// helps the fast client, hurts once the client is slow enough, and the
// flip is monotone-ish along the sweep.
func TestCScanFlip(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	// Sweep only up to 2x: beyond that the slow client itself saturates
	// under batching-off and batching flips back to helpful (it cuts the
	// client's per-wakeup work) — richer than Figure 1, verified by the
	// CLI's wider sweep.
	out := CScan(cal, []float64{1, 1.5, 2}, 300*time.Millisecond, 11)
	if !out.Rows[0].NagleHelps {
		t.Errorf("scale 1: batching should help (off=%v on=%v)", out.Rows[0].LatOff, out.Rows[0].LatOn)
	}
	last := out.Rows[len(out.Rows)-1]
	if last.NagleHelps {
		t.Errorf("scale %.1f: batching should hurt (off=%v on=%v)", last.Scale, last.LatOff, last.LatOn)
	}
	if out.FlipScale <= 1 || out.FlipScale > 2 {
		t.Errorf("flip scale = %v, want within (1, 2]", out.FlipScale)
	}
	var buf bytes.Buffer
	WriteCScan(&buf, out)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

// TestPolicyComparison: both bandit controllers must handle the mid-load
// point where batching clearly wins; the comparison also documents a real
// finding — textbook UCB1 assumes stationary bounded rewards, and the
// catastrophic scores observed during overload excursions make it re-probe
// the losing mode far more than decaying ε-greedy does.
func TestPolicyComparison(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	out := PolicyCompare(cal, []float64{45000}, 500*time.Millisecond, 7)
	r := out.Rows[0]
	if r.EpsGreedy > cal.SLO {
		t.Errorf("ε-greedy %v violates SLO at 45k", r.EpsGreedy)
	}
	if r.UCB > cal.SLO {
		t.Errorf("UCB1 %v violates SLO at 45k", r.UCB)
	}
	if r.EpsOnShare < 0.6 || r.UCBOnShare < 0.6 {
		t.Errorf("residency: eps %.0f%% ucb %.0f%%", 100*r.EpsOnShare, 100*r.UCBOnShare)
	}
	var buf bytes.Buffer
	WritePolicyCompare(&buf, out)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

// TestLossRobustness: under packet loss with recovery, measured and
// estimated latency inflate together — the estimator degrades gracefully
// rather than diverging.
func TestLossRobustness(t *testing.T) {
	cal := DefaultCalib()
	out := LossRobustness(cal, 20000, []float64{0, 0.01}, 300*time.Millisecond, 7)
	clean, lossy := out.Rows[0], out.Rows[1]
	if lossy.Retransmits == 0 {
		t.Fatal("no retransmissions at 1% loss")
	}
	if lossy.Measured < 5*clean.Measured {
		t.Fatalf("1%% loss measured %v vs clean %v: recovery delay missing", lossy.Measured, clean.Measured)
	}
	if lossy.EstBytes < 5*clean.EstBytes {
		t.Fatalf("1%% loss estimate %v vs clean %v: estimator blind to recovery", lossy.EstBytes, clean.EstBytes)
	}
	// Same order of magnitude: the estimate must track the blowup.
	if e := relErr(lossy.EstBytes, lossy.Measured); e > 0.6 {
		t.Fatalf("lossy estimate %v vs measured %v (%.0f%%)", lossy.EstBytes, lossy.Measured, 100*e)
	}
	var buf bytes.Buffer
	WriteLoss(&buf, out)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

// TestReplicatedFig4a: across independent seeds, the low-load and high-load
// outcomes must be statistically separable in the expected directions.
func TestReplicatedFig4a(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	out := ReplicatedFig4a(cal, []float64{5000, 60000}, 200*time.Millisecond, []int64{3, 19, 101})
	low, high := out.Points[0], out.Points[1]
	if low.On.Mean <= low.Off.Mean {
		t.Errorf("5k: batching should hurt on average (off=%v on=%v)", low.Off.Mean, low.On.Mean)
	}
	if !out.Separable(0) {
		t.Errorf("5k: modes not separable (off %v±%v on %v±%v)", low.Off.Mean, low.Off.Stderr, low.On.Mean, low.On.Stderr)
	}
	if high.On.Mean*3 >= high.Off.Mean {
		t.Errorf("60k: batching should win >3x on average")
	}
	if !out.Separable(1) {
		t.Errorf("60k: modes not separable")
	}
	var buf bytes.Buffer
	WriteReplicated(&buf, out)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}
