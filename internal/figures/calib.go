// Package figures regenerates every table and figure of the paper's
// evaluation on the simulated testbed: the Figure 1 outcome matrix, the
// Figure 2 bare-metal/VM flip, the Figure 4a/4b load sweeps with measured
// vs estimated latency and cutoff detection, plus the §5 extensions
// (estimate-driven dynamic toggling, hint-based estimation, AIMD batch
// limits).
//
// Absolute values are calibrated, not measured — the constants below stand
// in for two Xeon servers with 100 Gbps NICs (see DESIGN.md §2). The shape
// claims (who wins, where the crossover falls, how accurate the estimates
// are) are what the tests assert.
package figures

import (
	"time"

	"e2ebatch/internal/cpumodel"
	"e2ebatch/internal/kv"
	"e2ebatch/internal/loadgen"
	"e2ebatch/internal/netem"
	"e2ebatch/internal/tcpsim"
)

// Calib bundles every cost and protocol constant of the simulated testbed.
type Calib struct {
	// Link models one direction of the back-to-back 100 Gbps wire.
	Link netem.Config
	// TCP is the base connection config; Nagle/cork are overridden per
	// run mode.
	TCP tcpsim.Config
	// CorkOnBytes is the sender hold threshold in batch-on mode. Classic
	// byte-granularity Nagle barely affects 16 KiB messages, so batch-on
	// uses a TSO-sized cork — "hold while ACKs are owed, up to 64 KiB" —
	// as the representative sender-batching policy (DESIGN.md §2).
	CorkOnBytes int

	// Server host costs: the receive softirq path is the calibrated
	// bottleneck (per-delivery cost covers IRQ, driver, GRO, netfilter).
	ServerTx, ServerRx cpumodel.Costs
	// Client host costs.
	ClientTx, ClientRx cpumodel.Costs

	// Server is the mini-Redis application cost profile.
	Server kv.SimServerConfig
	// Load is the client cost profile (rate and duration set per run).
	Load loadgen.Config

	// VMScale multiplies client-side costs for the Figure 2 "inside a
	// VM" configuration; Fig2Rate is the fixed offered load of that
	// experiment. (The paper used 20 kRPS; our calibrated cutoff sits
	// near 32 kRPS, so the fixed rate is placed just above it at 34 kRPS
	// to reproduce the same relative operating point — see DESIGN.md.)
	VMScale  float64
	Fig2Rate float64

	// SLO is the tolerable-latency threshold (500 µs in §4).
	SLO time.Duration

	// Workload shape: 16 B keys, 16 KiB values (§4).
	KeySize, ValSize int
}

// DefaultCalib returns the calibration used throughout EXPERIMENTS.md.
func DefaultCalib() Calib {
	tcp := tcpsim.DefaultConfig()
	tcp.DelAckTimeout = 500 * time.Microsecond

	load := loadgen.Config{
		Arrival:     loadgen.Poisson,
		SendCosts:   cpumodel.Costs{PerItem: 2 * time.Microsecond, PerByteNS: 0.2},
		ReadCosts:   cpumodel.Costs{PerBatch: 2 * time.Microsecond},
		PerResponse: 3 * time.Microsecond,
	}

	return Calib{
		Link:        netem.Config{BitsPerSec: 100_000_000_000, Propagation: 2 * time.Microsecond},
		TCP:         tcp,
		CorkOnBytes: tcp.TSOMaxBytes,

		ServerRx: cpumodel.Costs{PerBatch: 7 * time.Microsecond, PerItem: 500 * time.Nanosecond, PerByteNS: 0.2},
		ServerTx: cpumodel.Costs{PerBatch: 1 * time.Microsecond, PerItem: 200 * time.Nanosecond, PerByteNS: 0.05},
		ClientTx: cpumodel.Costs{PerBatch: 2 * time.Microsecond, PerItem: 300 * time.Nanosecond, PerByteNS: 0.2},
		ClientRx: cpumodel.Costs{PerBatch: 2 * time.Microsecond, PerItem: 200 * time.Nanosecond, PerByteNS: 0.1},

		Server: kv.SimServerConfig{
			ReadCosts:  cpumodel.Costs{PerBatch: 4 * time.Microsecond, PerItem: 2 * time.Microsecond, PerByteNS: 0.3},
			WriteCosts: cpumodel.Costs{PerItem: 1 * time.Microsecond, PerByteNS: 0.1},
		},
		Load: load,

		VMScale:  1.75,
		Fig2Rate: 34000,
		SLO:      500 * time.Microsecond,
		KeySize:  16,
		ValSize:  16 << 10,
	}
}
