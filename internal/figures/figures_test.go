package figures

import (
	"bytes"
	"testing"
	"time"

	"e2ebatch/internal/tcpsim"
)

const testDur = 300 * time.Millisecond

// skipIfShort gates the full-sweep tests out of short mode, where the suite
// runs under -race and each virtual run costs ~10x wall clock. The fast
// determinism, invariant and stress tests still run and keep the race
// detector pointed at the concurrent paths.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full sweep skipped in -short mode")
	}
}

// TestFig1Matrix asserts the paper's Figure 1 outcome matrix.
func TestFig1Matrix(t *testing.T) {
	rows := Fig1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[float64]string{1: "both-better", 3: "mixed", 5: "both-worse"}
	for _, r := range rows {
		if r.Verdict != want[r.C] {
			t.Errorf("c=%v: verdict %q, want %q", r.C, r.Verdict, want[r.C])
		}
	}
	var buf bytes.Buffer
	WriteFig1(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

// TestFig2Flip asserts the bare-metal/VM outcome flip at the fixed load:
// same server-side behaviour, opposite best batching mode.
func TestFig2Flip(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	f := Fig2(cal, testDur, 11)
	if !f.Bare.NagleHelps {
		t.Errorf("bare metal: Nagle should help (off=%v on=%v)", f.Bare.LatOff, f.Bare.LatOn)
	}
	if f.VM.NagleHelps {
		t.Errorf("VM client: Nagle should hurt (off=%v on=%v)", f.VM.LatOff, f.VM.LatOn)
	}
	// Figure 2a: the VM client burns noticeably more CPU.
	if f.VM.ClientCPU < 1.3*f.Bare.ClientCPU {
		t.Errorf("VM client CPU %.2f vs bare %.2f: expected a clear increase", f.VM.ClientCPU, f.Bare.ClientCPU)
	}
	// Figure 2b: the server sees the same workload either way.
	ratio := f.VM.ServerCPU / f.Bare.ServerCPU
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("server CPU changed with client config: %.2f vs %.2f", f.VM.ServerCPU, f.Bare.ServerCPU)
	}
	var buf bytes.Buffer
	WriteFig2(&buf, f)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

// fig4aCoarse runs a reduced Figure 4a sweep shared by the shape tests;
// fig4aCached memoizes it across tests in this package.
func fig4aCoarse(t *testing.T) *Fig4Out {
	t.Helper()
	cal := DefaultCalib()
	rates := []float64{5000, 20000, 35000, 50000, 70000, 85000}
	return Fig4a(cal, rates, testDur, 7)
}

var fig4aMemo *Fig4Out

func fig4aCached(t *testing.T) *Fig4Out {
	t.Helper()
	if fig4aMemo == nil {
		fig4aMemo = fig4aCoarse(t)
	}
	return fig4aMemo
}

// TestFig4aShape asserts the headline claims of Figure 4a on a coarse grid:
// batching hurts at low load, wins beyond a cutoff, extends the SLO range,
// and the estimates locate the same cutoff.
func TestFig4aShape(t *testing.T) {
	skipIfShort(t)
	f := fig4aCached(t)

	low := f.Points[0] // 5 kRPS
	if low.On.Measured <= low.Off.Measured {
		t.Errorf("at 5k: batching should hurt (off=%v on=%v)", low.Off.Measured, low.On.Measured)
	}
	high := f.Points[4] // 70 kRPS
	if high.On.Measured*3 >= high.Off.Measured {
		t.Errorf("at 70k: batching should win by >3x (off=%v on=%v)", high.Off.Measured, high.On.Measured)
	}

	if f.MeasuredCutoff == 0 || f.EstimatedCutoff == 0 {
		t.Fatalf("cutoffs missing: measured=%v estimated=%v", f.MeasuredCutoff, f.EstimatedCutoff)
	}
	if !f.CutoffsCoincide(15000) {
		t.Errorf("cutoffs diverge: measured=%v estimated=%v", f.MeasuredCutoff, f.EstimatedCutoff)
	}

	if f.OffSLOMax > 40000 {
		t.Errorf("off-mode SLO range extends to %v, want <= 40k", f.OffSLOMax)
	}
	if f.OnSLOMax < 70000 {
		t.Errorf("on-mode SLO range only %v, want >= 70k", f.OnSLOMax)
	}
	if f.Extension < 1.5 {
		t.Errorf("SLO extension %.2fx, want >= 1.5x (paper: 1.93x)", f.Extension)
	}
	if f.LatencyGain < 1.2 {
		t.Errorf("latency gain at boundary %.2fx, want >= 1.2x (paper: 2.80x)", f.LatencyGain)
	}

	// Estimates must be valid at every swept point and track the
	// measured value tightly once queueing dominates.
	for _, p := range f.Points {
		for _, c := range []Fig4Cell{p.Off, p.On} {
			if !c.Est[tcpsim.UnitBytes].Valid {
				t.Fatalf("invalid byte estimate at %v", p.Rate)
			}
		}
	}
	sat := f.Points[5].Off // 85 kRPS, deep saturation
	if e := relErr(sat.Est[tcpsim.UnitBytes].Latency, sat.Measured); e > 0.30 {
		t.Errorf("saturated estimate error %.0f%%, want <= 30%%", 100*e)
	}

	var buf bytes.Buffer
	WriteFig4(&buf, f)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

// TestFig4bRuns asserts the 95:5 mix sweep produces valid estimates, a
// cutoff, and per-kind splits.
func TestFig4bRuns(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	f := Fig4b(cal, []float64{5000, 35000, 50000}, testDur, 7)
	if f.MeasuredCutoff == 0 {
		t.Fatal("no measured cutoff on the mixed sweep")
	}
	for _, p := range f.Points {
		if p.Off.SetMeasured == 0 || p.Off.GetMeasured == 0 {
			t.Fatalf("per-kind latencies missing at %v", p.Rate)
		}
		if !p.Off.Est[tcpsim.UnitBytes].Valid || !p.On.Est[tcpsim.UnitBytes].Valid {
			t.Fatalf("invalid estimate at %v", p.Rate)
		}
	}
	// GETs (tiny requests, 16 KiB responses) must be cheaper than SETs
	// without batching at low load.
	if low := f.Points[0]; low.Off.GetMeasured >= low.Off.SetMeasured {
		t.Errorf("at 5k off: GET %v should beat SET %v", low.Off.GetMeasured, low.Off.SetMeasured)
	}
}

// TestToggleConvergesToBestStatic asserts the dynamic toggler lands near
// whichever static mode wins at each load — the paper's core "what if"
// turned into a closed loop.
func TestToggleConvergesToBestStatic(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	out := Toggle(cal, []float64{10000, 50000}, 500*time.Millisecond, 7)
	lowP, highP := out.Points[0], out.Points[1]

	// The paper's success criterion is its own policy statement:
	// "maximize throughput as long as latency remains below a specified
	// threshold" (§2). At 10k both static modes meet the SLO, so the
	// toggler may sit anywhere; at 50k only batch-on does, so the
	// toggler must live there and keep the run under the SLO despite
	// exploration excursions through the unstable mode.
	if lowP.Dynamic > out.SLO {
		t.Errorf("at 10k dynamic %v violates the %v SLO", lowP.Dynamic, out.SLO)
	}
	best := lowP.Off
	if lowP.On < best {
		best = lowP.On
	}
	if lowP.Dynamic > 5*best/2 {
		t.Errorf("at 10k dynamic %v vs best static %v", lowP.Dynamic, best)
	}
	if highP.Off <= out.SLO {
		t.Errorf("at 50k static-off %v unexpectedly meets the SLO", highP.Off)
	}
	if highP.Dynamic > out.SLO {
		t.Errorf("at 50k dynamic %v violates the %v SLO (static-on achieves %v)", highP.Dynamic, out.SLO, highP.On)
	}
	if highP.OnShare < 0.6 {
		t.Errorf("at 50k batch-on residency = %.0f%%, want > 60%%", 100*highP.OnShare)
	}
	if highP.Dynamic*5 > highP.Off {
		t.Errorf("at 50k dynamic %v should be >=5x below static-off %v", highP.Dynamic, highP.Off)
	}
	var buf bytes.Buffer
	WriteToggle(&buf, out)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

// TestHintsBeatKernelUnits asserts §3.3's point: with a syscall-batching
// client on the heterogeneous workload, every kernel-side unit drifts while
// the create/complete hints stay within a few percent of measured.
func TestHintsBeatKernelUnits(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	out := Hints(cal, []float64{10000, 30000}, testDur, 7, 4)
	if len(out.Rows) != 4 {
		t.Fatalf("rows = %d", len(out.Rows))
	}
	for _, r := range out.Rows {
		if hintErr := relErr(r.Hints, r.Measured); hintErr > 0.05 {
			t.Errorf("rate %v on=%v: hint error %.0f%%, want <= 5%%", r.Rate, r.BatchOn, 100*hintErr)
		}
		for u := 0; u < tcpsim.NumUnits; u++ {
			if kernErr := relErr(r.ByUnit[u], r.Measured); kernErr < 0.15 {
				t.Errorf("rate %v on=%v unit %v: kernel-unit error %.0f%% unexpectedly low — semantic gap should show", r.Rate, r.BatchOn, tcpsim.Unit(u), 100*kernErr)
			}
		}
	}
	var buf bytes.Buffer
	WriteHints(&buf, out)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

// TestAIMDAdaptsCork asserts the §5 AIMD controller decays to NODELAY at
// low load and grows the cork enough to stay near the batch-on latency at
// high load.
func TestAIMDAdaptsCork(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	out := AIMD(cal, []float64{10000, 60000}, 500*time.Millisecond, 7)
	low, high := out.Rows[0], out.Rows[1]

	if low.FinalCork > 1448 {
		t.Errorf("at 10k final cork = %d, want floor (1448)", low.FinalCork)
	}
	if low.AIMDMean > low.Off+low.Off/4 {
		t.Errorf("at 10k AIMD %v should track static-off %v", low.AIMDMean, low.Off)
	}
	if high.FinalCork <= 1448 {
		t.Errorf("at 60k final cork = %d, want grown above the floor", high.FinalCork)
	}
	if high.AIMDMean*5 > high.Off {
		t.Errorf("at 60k AIMD %v should be >=5x below static-off %v", high.AIMDMean, high.Off)
	}
	if high.AIMDMean > 3*high.On {
		t.Errorf("at 60k AIMD %v vs static-on %v", high.AIMDMean, high.On)
	}
	var buf bytes.Buffer
	WriteAIMD(&buf, out)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

// TestRunDeterminism: identical specs produce identical results.
func TestRunDeterminism(t *testing.T) {
	spec := RunSpec{Calib: DefaultCalib(), Seed: 3, Rate: 30000, Duration: 100 * time.Millisecond, BatchOn: true}
	a, b := Run(spec), Run(spec)
	if a.Res.Latency.Mean() != b.Res.Latency.Mean() || a.Res.Completed != b.Res.Completed {
		t.Fatalf("nondeterministic runs: %v/%d vs %v/%d",
			a.Res.Latency.Mean(), a.Res.Completed, b.Res.Latency.Mean(), b.Res.Completed)
	}
	if a.Est[0] != b.Est[0] {
		t.Fatalf("nondeterministic estimates")
	}
}

// TestDynamicRunProducesOnlineEstimates verifies the online exchange path
// feeds the toggler.
func TestDynamicRunProducesOnlineEstimates(t *testing.T) {
	out := Run(RunSpec{
		Calib:    DefaultCalib(),
		Seed:     5,
		Rate:     30000,
		Duration: 200 * time.Millisecond,
		Dynamic:  DefaultDynamicSpec(DefaultCalib().SLO),
	})
	if out.OnlineEstimates < 50 {
		t.Fatalf("online estimates = %d, want >= 50 (one per tick)", out.OnlineEstimates)
	}
	if out.TogglerStats.Decisions == 0 {
		t.Fatal("toggler never decided")
	}
}

// TestTailLatencyExtension checks the p99 view: tails sit above means, and
// a p99 crossover exists in the same region as the mean crossover.
func TestTailLatencyExtension(t *testing.T) {
	skipIfShort(t)
	f := fig4aCached(t)
	for _, p := range f.Points {
		if p.Off.P99 < p.Off.Measured || p.On.P99 < p.On.Measured {
			t.Fatalf("rate %v: p99 below mean", p.Rate)
		}
	}
	p99c := f.P99Cutoff()
	if p99c == 0 {
		t.Fatal("no p99 cutoff found")
	}
	if d := p99c - f.MeasuredCutoff; d < -15000 || d > 15000 {
		t.Errorf("p99 cutoff %v vs mean cutoff %v", p99c, f.MeasuredCutoff)
	}
	var buf bytes.Buffer
	WriteTail(&buf, f)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}
