package figures

import (
	"fmt"
	"io"
	"time"

	"e2ebatch/internal/faults"
	"e2ebatch/internal/policy"
)

// FaultRow is one loss-rate setting of the fault sweep.
type FaultRow struct {
	Loss float64
	// Measured is the loadgen's ground-truth mean latency; EstBytes the
	// offline steady-state estimate — their gap is the estimator error the
	// sweep tracks as conditions worsen.
	Measured time.Duration
	EstBytes time.Duration
	// DegradedShare is the fraction of decision ticks the online
	// estimator ran without usable peer metadata.
	DegradedShare float64
	SafeFallbacks uint64
	Retransmits   uint64
	FinalMode     policy.Mode
	FaultEvents   int
}

// FaultSweepOut is the fault-injection robustness sweep: the same dynamic
// toggling run under increasing packet loss with a named fault plan layered
// on top. The claim under test is graceful degradation — as loss and
// metadata faults mount, the estimator must flag degraded ticks and the
// policy retreat to its safe default, rather than feed garbage estimates
// into mode decisions.
type FaultSweepOut struct {
	Rate float64
	Plan string
	Rows []FaultRow
}

// FaultSweep runs the sweep at one offered load. plan names a
// faults.Standard plan ("none" for the loss-only baseline).
func FaultSweep(cal Calib, rate float64, losses []float64, plan string, dur time.Duration, seed int64) *FaultSweepOut {
	out := &FaultSweepOut{Rate: rate, Plan: plan}
	var specs []RunSpec
	for _, loss := range losses {
		p, err := faults.Standard(plan, dur)
		if err != nil {
			panic(err)
		}
		specs = append(specs, RunSpec{
			Calib:    cal,
			Seed:     seed,
			Rate:     rate,
			Duration: dur,
			LossProb: loss,
			Dynamic:  DefaultDynamicSpec(cal.SLO),
			Faults:   p,
		})
	}
	for i, r := range runAll(specs) {
		row := FaultRow{
			Loss:          losses[i],
			Measured:      r.Res.Latency.Mean(),
			SafeFallbacks: r.TogglerStats.SafeFallbacks,
			Retransmits:   r.ClientConn.Retransmits + r.ServerConn.Retransmits,
			FinalMode:     r.FinalMode,
			FaultEvents:   len(r.Log.Events),
		}
		if r.Est[0].Valid {
			row.EstBytes = r.Est[0].Latency
		}
		if r.TotalTicks > 0 {
			row.DegradedShare = float64(r.DegradedTicks) / float64(r.TotalTicks)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// WriteFaultSweep renders the sweep.
func WriteFaultSweep(w io.Writer, f *FaultSweepOut) {
	fmt.Fprintf(w, "Fault injection — %.0f kRPS, plan %q, dynamic toggling\n", f.Rate/1000, f.Plan)
	fmt.Fprintf(w, "%8s | %12s %12s | %9s %9s | %11s %10s\n",
		"loss", "measured", "est (bytes)", "degraded", "fallbacks", "retransmits", "final mode")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%7.1f%% | %12v %12v | %8.1f%% %9d | %11d %10v\n",
			100*r.Loss, r.Measured.Round(time.Microsecond), r.EstBytes.Round(time.Microsecond),
			100*r.DegradedShare, r.SafeFallbacks, r.Retransmits, r.FinalMode)
	}
}
