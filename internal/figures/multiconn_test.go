package figures

import (
	"bytes"
	"testing"
	"time"

	"e2ebatch/internal/core"
)

// TestMultiConnAggregation asserts §3.2's multi-connection remark: each
// connection's estimate is individually valid, the throughput-weighted
// aggregate tracks the pooled measured latency under load, and one
// aggregate-driven decision applied to all connections rescues the SLO.
func TestMultiConnAggregation(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	out := MultiConn(cal, 4, 50000, 300*time.Millisecond, 7)
	if len(out.PerConn) != 4 {
		t.Fatalf("per-conn estimates = %d", len(out.PerConn))
	}
	for i, e := range out.PerConn {
		if !e.Valid {
			t.Fatalf("conn %d estimate invalid", i)
		}
	}
	if !out.Aggregate.Valid {
		t.Fatal("aggregate invalid")
	}
	// Deep in overload, queueing dominates and the aggregate must track
	// the measured mean closely.
	if e := relErr(out.Aggregate.Latency, out.Measured); e > 0.25 {
		t.Errorf("aggregate %v vs measured %v (%.0f%% error)", out.Aggregate.Latency, out.Measured, 100*e)
	}
	// Aggregate-driven toggling across all four connections must rescue
	// the workload from the multi-ms collapse.
	if out.DynamicMeasured > cal.SLO {
		t.Errorf("dynamic mean %v violates SLO %v", out.DynamicMeasured, cal.SLO)
	}
	if out.OnShare < 0.6 {
		t.Errorf("batch-on residency %.0f%%, want majority", 100*out.OnShare)
	}
	if out.DynamicMeasured*10 > out.Measured {
		t.Errorf("dynamic %v should be >=10x below static-off %v", out.DynamicMeasured, out.Measured)
	}

	// The per-connection estimates should be mutually consistent (same
	// workload share): max/min within 2x.
	min, max := out.PerConn[0].Latency, out.PerConn[0].Latency
	for _, e := range out.PerConn[1:] {
		if e.Latency < min {
			min = e.Latency
		}
		if e.Latency > max {
			max = e.Latency
		}
	}
	if max > 2*min {
		t.Errorf("per-conn estimates diverge: min %v max %v", min, max)
	}

	var buf bytes.Buffer
	WriteMultiConn(&buf, out)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

// TestAggregateThroughputSumsConnections checks the aggregate's throughput
// is the sum of per-connection throughputs.
func TestAggregateThroughputSumsConnections(t *testing.T) {
	cal := DefaultCalib()
	out := MultiConn(cal, 2, 20000, 200*time.Millisecond, 3)
	var sum float64
	for _, e := range out.PerConn {
		sum += e.Throughput
	}
	agg := core.Aggregate(out.PerConn)
	if agg.Throughput != sum {
		t.Fatalf("aggregate throughput %v != sum %v", agg.Throughput, sum)
	}
}
