package figures

import (
	"fmt"
	"io"
	"math"
	"time"

	"e2ebatch/internal/analytic"
	"e2ebatch/internal/core"
	"e2ebatch/internal/loadgen"
	"e2ebatch/internal/tcpsim"
)

// The model-fidelity harness (ROADMAP item 4): replay every workload-zoo
// member through the simulator, where exact virtual timestamps make the
// measured post-warmup mean latency airtight ground truth, and score three
// rival predictors against it side by side:
//
//   - the measured estimator — the paper's §3.2 queue-counter estimate,
//     evaluated offline over the steady-state window (byte units);
//   - the analytic rival — the closed-form tandem M/G/1 model in
//     internal/analytic, fed only workload statistics and calibration
//     constants, never measurements;
//   - the naive byte baseline — bytes over bandwidth plus propagation.
//
// Each predictor gets a per-workload relative error and a workload-level
// E2E mean error (the <10% success-metric discipline of the inference-sim
// exemplar), and the report closes with numbered-hypothesis verdicts
// computed from the data. Every later estimator change is expected to keep
// H1 standing or consciously renegotiate it.

// Predictor indexes the scored models.
type Predictor int

const (
	PredEstimator Predictor = iota
	PredAnalytic
	PredNaive
	NumPredictors
)

// String names the predictor.
func (p Predictor) String() string {
	switch p {
	case PredEstimator:
		return "estimator"
	case PredAnalytic:
		return "analytic"
	case PredNaive:
		return "naive"
	}
	return "unknown"
}

// FidelityPoint is one workload's ground truth and predictions.
type FidelityPoint struct {
	Workload loadgen.ZooWorkload
	// RateEff is the shape-adjusted mean offered rate.
	RateEff float64
	// Truth is the sim ground truth: post-warmup mean latency; TruthP99
	// the matching tail. Completed counts post-warmup samples.
	Truth     time.Duration
	TruthP99  time.Duration
	Completed uint64

	// Est is the measured estimator's steady-state byte-unit estimate.
	Est core.Estimate
	// An is the analytic tandem prediction (with breakdown); Naive the
	// byte-count strawman.
	An    analytic.E2EOut
	Naive time.Duration

	// Pred and Scored hold each predictor's latency and whether it
	// produced one (an invalid estimate or unstable closed form abstains).
	Pred   [NumPredictors]time.Duration
	Scored [NumPredictors]bool
	// Err is |Pred−Truth|/Truth per predictor, meaningful when Scored.
	Err [NumPredictors]float64
}

// Hypothesis is one numbered claim with its data-driven verdict.
type Hypothesis struct {
	ID, Claim, Verdict, Evidence string
}

// FidelityOut is the full harness result.
type FidelityOut struct {
	Seed int64
	Dur  time.Duration

	Points []FidelityPoint
	// MeanErr is each predictor's workload-level E2E mean error over the
	// workloads it scored (ScoredN of them).
	MeanErr [NumPredictors]float64
	ScoredN [NumPredictors]int

	Hypotheses []Hypothesis
}

// Fidelity replays the workload zoo and scores the predictors. Each
// workload runs under its own derived seed; runs fan out across the sweep
// worker pool like every other figure.
func Fidelity(cal Calib, dur time.Duration, seed int64) *FidelityOut {
	zoo := loadgen.Zoo(cal.KeySize, cal.ValSize)
	specs := make([]RunSpec, len(zoo))
	for i, w := range zoo {
		wseed := seed + int64(i)*101
		specs[i] = RunSpec{
			Calib:        cal,
			Seed:         wseed,
			Rate:         w.Rate,
			RateFn:       w.RateShape,
			Duration:     dur,
			BatchOn:      w.BatchOn,
			Workload:     w.NewMaker(wseed),
			PreloadKeys:  w.PreloadKeys,
			SyscallBatch: w.SyscallBatch,
			WithHints:    w.WithHints,
		}
	}
	outs := runAll(specs)

	res := &FidelityOut{Seed: seed, Dur: dur}
	for i, w := range zoo {
		res.Points = append(res.Points, scorePoint(cal, w, dur, specs[i].Seed, outs[i]))
	}
	for p := Predictor(0); p < NumPredictors; p++ {
		var sum float64
		for _, pt := range res.Points {
			if pt.Scored[p] {
				sum += pt.Err[p]
				res.ScoredN[p]++
			}
		}
		if res.ScoredN[p] > 0 {
			res.MeanErr[p] = sum / float64(res.ScoredN[p])
		}
	}
	res.Hypotheses = judge(res)
	return res
}

// scorePoint derives one workload's predictions and errors.
func scorePoint(cal Calib, w loadgen.ZooWorkload, dur time.Duration, wseed int64, out *RunOut) FidelityPoint {
	pt := FidelityPoint{
		Workload:  w,
		RateEff:   w.Rate * loadgen.MeanShape(w.RateShape, dur),
		Truth:     out.Res.Latency.Mean(),
		TruthP99:  out.Res.Latency.Quantile(0.99),
		Completed: out.Res.Latency.Count(),
	}

	// Predictor 1: the measured estimator (offline steady-state, byte
	// units — the paper's prototype methodology).
	pt.Est = out.Est[tcpsim.UnitBytes]
	if pt.Est.Valid {
		pt.Pred[PredEstimator] = pt.Est.Latency
		pt.Scored[PredEstimator] = true
	}

	// Predictors 2 and 3 see only the workload profile and calibration.
	n := int(pt.RateEff * dur.Seconds())
	if n < 256 {
		n = 256
	}
	if n > 8192 {
		n = 8192
	}
	req, resp := w.Sizes(wseed, n)
	pt.An = analytic.E2EDelay(e2eParams(cal, w, pt.RateEff, req, resp))
	if pt.An.Stable {
		pt.Pred[PredAnalytic] = pt.An.Latency
		pt.Scored[PredAnalytic] = true
	}

	mReq, _ := analytic.Moments(toFloat(req))
	mResp, _ := analytic.Moments(toFloat(resp))
	pt.Naive = analytic.NaiveByteDelay(mReq, mResp, float64(cal.Link.BitsPerSec), 2*cal.Link.Propagation)
	pt.Pred[PredNaive] = pt.Naive
	pt.Scored[PredNaive] = true

	for p := Predictor(0); p < NumPredictors; p++ {
		if pt.Scored[p] && pt.Truth > 0 {
			pt.Err[p] = math.Abs(float64(pt.Pred[p])-float64(pt.Truth)) / float64(pt.Truth)
		}
	}
	return pt
}

// e2eParams maps the calibration tables and a workload's size profile onto
// the tandem-queue model: per-request service-time samples for each stage
// the request path crosses, reduced to moments. The decomposition mirrors
// the simulated machines: one app CPU and one softirq CPU per host (each a
// single server handling both directions' work), one wire queue per
// direction, propagation as pure delay.
func e2eParams(cal Calib, w loadgen.ZooWorkload, rate float64, req, resp []int) analytic.E2EParams {
	mss := cal.TCP.MSS
	hdr := cal.TCP.HeaderBytes
	segs := func(b int) int { return (b + mss - 1) / mss }
	byteNS := 0.0
	if cal.Link.BitsPerSec > 0 {
		byteNS = 8e9 / float64(cal.Link.BitsPerSec)
	}

	sendFixed := float64(cal.Load.SendCosts.PerBatch + cal.Load.SendCosts.PerItem)
	if w.SyscallBatch > 1 {
		// Userspace pipelining amortizes the per-send(2) cost.
		sendFixed = float64(cal.Load.SendCosts.PerBatch)/float64(w.SyscallBatch) + float64(cal.Load.SendCosts.PerItem)
	}
	readFixed := float64(cal.Load.ReadCosts.PerBatch + cal.Load.PerResponse)

	n := len(req)
	clientApp := make([]float64, n)
	clientSoft := make([]float64, n)
	uplink := make([]float64, n)
	serverSoft := make([]float64, n)
	serverApp := make([]float64, n)
	downlink := make([]float64, n)
	for i := 0; i < n; i++ {
		rq, rs := req[i], resp[i]
		rqSegs, rsSegs := segs(rq), segs(rs)
		clientApp[i] = sendFixed + float64(rq)*cal.Load.SendCosts.PerByteNS +
			readFixed + float64(rs)*cal.Load.PerRespByteNS
		clientSoft[i] = float64(cal.ClientTx.Batch(rqSegs, rq) + cal.ClientRx.Batch(rsSegs, rs))
		uplink[i] = float64(rq+rqSegs*hdr) * byteNS
		serverSoft[i] = float64(cal.ServerRx.Batch(rqSegs, rq) + cal.ServerTx.Batch(rsSegs, rs))
		serverApp[i] = float64(cal.Server.ReadCosts.Batch(1, rq) + cal.Server.WriteCosts.Item(rs))
		downlink[i] = float64(rs+rsSegs*hdr) * byteNS
	}

	return analytic.E2EParams{
		RatePerSec: rate,
		Fixed:      2 * cal.Link.Propagation,
		Stages: []analytic.Stage{
			analytic.StageFromSamples("client-app", clientApp),
			analytic.StageFromSamples("client-soft", clientSoft),
			analytic.StageFromSamples("uplink", uplink),
			analytic.StageFromSamples("server-soft", serverSoft),
			analytic.StageFromSamples("server-app", serverApp),
			analytic.StageFromSamples("downlink", downlink),
		},
	}
}

func toFloat(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// modulated reports whether the workload's arrival process is shaped.
func modulated(w loadgen.ZooWorkload) bool { return w.RateShape != nil }

// judge computes the numbered-hypothesis verdicts from the scored points.
// Verdicts are pure functions of the data: re-running the harness after an
// estimator change re-litigates every one.
func judge(res *FidelityOut) []Hypothesis {
	pts := res.Points
	byName := func(name string) *FidelityPoint {
		for i := range pts {
			if pts[i].Workload.Name == name {
				return &pts[i]
			}
		}
		return nil
	}
	verdict := func(ok bool) string {
		if ok {
			return "CONFIRMED"
		}
		return "REFUTED"
	}
	var hs []Hypothesis

	// H1 — the paper's bet, held to the exemplar's success metric.
	h1 := res.ScoredN[PredEstimator] == len(pts) && res.MeanErr[PredEstimator] < 0.10
	hs = append(hs, Hypothesis{
		ID:      "H1",
		Claim:   "measured estimator tracks sim ground truth within 10% workload-level mean E2E error across the zoo",
		Verdict: verdict(h1),
		Evidence: fmt.Sprintf("mean error %.1f%% over %d/%d workloads scored",
			100*res.MeanErr[PredEstimator], res.ScoredN[PredEstimator], len(pts)),
	})

	// H2 — the estimator must dominate the strawman everywhere, else the
	// queue counters add nothing over byte counting.
	h2, worst := true, ""
	for i := range pts {
		if !pts[i].Scored[PredEstimator] || pts[i].Err[PredEstimator] > pts[i].Err[PredNaive] {
			h2 = false
			worst = pts[i].Workload.Name
		}
	}
	ev := "estimator error <= naive error on every workload"
	if !h2 {
		ev = fmt.Sprintf("naive baseline beats the estimator on %q", worst)
	}
	hs = append(hs, Hypothesis{
		ID:      "H2",
		Claim:   "the estimator beats the naive byte baseline on every workload",
		Verdict: verdict(h2), Evidence: ev,
	})

	// H3 — where the closed form's Poisson assumption holds, it should be
	// a usable roofline (within 25%).
	var sum float64
	cnt, scored := 0, true
	for i := range pts {
		if modulated(pts[i].Workload) {
			continue
		}
		cnt++
		if !pts[i].Scored[PredAnalytic] {
			scored = false
			continue
		}
		sum += pts[i].Err[PredAnalytic]
	}
	h3 := scored && cnt > 0 && sum/float64(cnt) < 0.25
	hs = append(hs, Hypothesis{
		ID:      "H3",
		Claim:   "the analytic tandem model stays within 25% mean error on Poisson-arrival workloads",
		Verdict: verdict(h3),
		Evidence: fmt.Sprintf("mean error %.1f%% over %d unmodulated workloads",
			100*sum/float64(max(cnt, 1)), cnt),
	})

	// H4 — arrival modulation should hurt the a-priori model more than the
	// measuring estimator (which sees the queues the bursts fill).
	h4 := true
	var h4ev string
	for _, name := range []string{"bursty", "diurnal"} {
		if pt := byName(name); pt != nil {
			ok := pt.Scored[PredEstimator] &&
				(!pt.Scored[PredAnalytic] || pt.Err[PredAnalytic] > pt.Err[PredEstimator])
			h4 = h4 && ok
			h4ev += fmt.Sprintf("%s: estimator %.1f%% vs analytic %s; ", name,
				100*pt.Err[PredEstimator], fmtErrOrAbstain(pt, PredAnalytic))
		}
	}
	hs = append(hs, Hypothesis{
		ID:      "H4",
		Claim:   "modulated arrivals degrade the analytic model more than the measured estimator",
		Verdict: verdict(h4), Evidence: h4ev,
	})

	// H5 — sender corking is invisible to the closed form (it models no
	// hold timers) but not to the estimator, which measures the queues the
	// cork inflates.
	base, corked := byName("set-16k"), byName("set-16k-corked")
	h5 := false
	ev = "workloads missing"
	if base != nil && corked != nil {
		h5 = corked.Scored[PredEstimator] &&
			(!corked.Scored[PredAnalytic] || corked.Err[PredAnalytic] > base.Err[PredAnalytic]) &&
			(!corked.Scored[PredAnalytic] || corked.Err[PredEstimator] < corked.Err[PredAnalytic])
		ev = fmt.Sprintf("corked: estimator %.1f%% vs analytic %s (uncorked analytic %s)",
			100*corked.Err[PredEstimator], fmtErrOrAbstain(corked, PredAnalytic),
			fmtErrOrAbstain(base, PredAnalytic))
	}
	hs = append(hs, Hypothesis{
		ID:      "H5",
		Claim:   "static sender corking is the closed form's blind spot but not the estimator's",
		Verdict: verdict(h5), Evidence: ev,
	})
	return hs
}

func fmtErrOrAbstain(pt *FidelityPoint, p Predictor) string {
	if !pt.Scored[p] {
		return "abstained"
	}
	return fmt.Sprintf("%.1f%%", 100*pt.Err[p])
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WriteFidelity renders the FINDINGS-style report. The output is fully
// deterministic — fixed iteration order, no maps, no wall clock — and is
// golden-tested byte-for-byte.
func WriteFidelity(w io.Writer, f *FidelityOut) {
	fmt.Fprintf(w, "MODEL FIDELITY — predictors vs tcpsim ground truth (seed %d, %v runs, warmup %v)\n",
		f.Seed, f.Dur, f.Dur/5)
	fmt.Fprintf(w, "%-16s %9s %10s | %10s %7s | %10s %7s %5s | %10s %7s\n",
		"workload", "rate", "truth",
		"estimator", "err", "analytic", "err", "rho", "naive", "err")
	for i := range f.Points {
		pt := &f.Points[i]
		fmt.Fprintf(w, "%-16s %8.1fk %10v | %10s %7s | %10s %7s %5.2f | %10v %7s\n",
			pt.Workload.Name, pt.RateEff/1000, pt.Truth.Round(time.Microsecond),
			fmtPred(pt, PredEstimator), fmtErrCol(pt, PredEstimator),
			fmtPred(pt, PredAnalytic), fmtErrCol(pt, PredAnalytic), pt.An.MaxRho,
			pt.Naive.Round(time.Microsecond), fmtErrCol(pt, PredNaive))
	}
	fmt.Fprintf(w, "workload-level E2E mean error:")
	for p := Predictor(0); p < NumPredictors; p++ {
		fmt.Fprintf(w, "  %s %.1f%% (%d/%d)", p, 100*f.MeanErr[p], f.ScoredN[p], len(f.Points))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "hypotheses:")
	for _, h := range f.Hypotheses {
		fmt.Fprintf(w, "  %s %s: %s\n     claim: %s\n     evidence: %s\n",
			h.ID, verdictMark(h.Verdict), h.Verdict, h.Claim, h.Evidence)
	}
}

func fmtPred(pt *FidelityPoint, p Predictor) string {
	if !pt.Scored[p] {
		return "-"
	}
	return pt.Pred[p].Round(time.Microsecond).String()
}

func fmtErrCol(pt *FidelityPoint, p Predictor) string {
	if !pt.Scored[p] {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*pt.Err[p])
}

func verdictMark(v string) string {
	if v == "CONFIRMED" {
		return "[+]"
	}
	return "[-]"
}

// WriteFidelityBreakdown renders the analytic model's per-stage view for
// each workload — where the closed form thinks the time goes, next to where
// it actually went.
func WriteFidelityBreakdown(w io.Writer, f *FidelityOut) {
	fmt.Fprintln(w, "analytic stage breakdown (service+wait per stage, mean):")
	for i := range f.Points {
		pt := &f.Points[i]
		fmt.Fprintf(w, "%-16s truth %10v | model", pt.Workload.Name, pt.Truth.Round(time.Microsecond))
		if !pt.An.Stable {
			fmt.Fprintf(w, " unstable (max rho %.2f)\n", pt.An.MaxRho)
			continue
		}
		fmt.Fprintf(w, " %10v |", pt.An.Latency.Round(time.Microsecond))
		for _, st := range pt.An.Stages {
			fmt.Fprintf(w, " %s %v", st.Name, (st.Service + st.Wait).Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
}
