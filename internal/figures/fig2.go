package figures

import (
	"fmt"
	"io"
	"time"
)

// Fig2Config is one client configuration (bare metal or VM) at the fixed
// Figure-2 load.
type Fig2Config struct {
	Name       string
	Scale      float64 // client cost multiplier (1 = bare metal)
	ClientCPU  float64 // client app+softirq utilization (batching off)
	ServerCPU  float64 // server app+softirq utilization (batching off)
	LatOff     time.Duration
	LatOn      time.Duration
	NagleHelps bool
}

// Fig2Out reproduces the paper's Figure 2: a fixed offered load served for
// a bare-metal and a VM-hosted client; the VM's higher client-side costs
// flip the Nagle on/off outcome while the server's CPU usage stays put.
type Fig2Out struct {
	Rate     float64
	Duration time.Duration
	Bare, VM Fig2Config
}

// Fig2 runs the four cells (bare/VM × on/off).
func Fig2(cal Calib, dur time.Duration, seed int64) *Fig2Out {
	out := &Fig2Out{Rate: cal.Fig2Rate, Duration: dur}
	configs := []*Fig2Config{
		{Name: "bare-metal", Scale: 1},
		{Name: "vm", Scale: cal.VMScale},
	}
	var specs []RunSpec
	for _, cfgp := range configs {
		for _, on := range []bool{false, true} {
			specs = append(specs, RunSpec{
				Calib:       cal,
				Seed:        seed,
				Rate:        cal.Fig2Rate,
				Duration:    dur,
				BatchOn:     on,
				ClientScale: cfgp.Scale,
			})
		}
	}
	outs := runAll(specs)
	for ci, cfgp := range configs {
		off, on := outs[2*ci], outs[2*ci+1]
		cfgp.LatOff = off.Res.Latency.Mean()
		cfgp.ClientCPU = off.ClientAppUtil + off.ClientSoftUtil
		cfgp.ServerCPU = off.ServerAppUtil + off.ServerSoftUtil
		cfgp.LatOn = on.Res.Latency.Mean()
		cfgp.NagleHelps = cfgp.LatOn < cfgp.LatOff
		if cfgp.Scale == 1 {
			out.Bare = *cfgp
		} else {
			out.VM = *cfgp
		}
	}
	return out
}

// WriteFig2 renders the Figure 2 table.
func WriteFig2(w io.Writer, f *Fig2Out) {
	fmt.Fprintf(w, "Figure 2 — fixed %.0f kRPS SET load, bare-metal vs VM client\n", f.Rate/1000)
	fmt.Fprintf(w, "%-11s | %9s %9s | %11s %11s | %s\n",
		"client", "cliCPU", "srvCPU", "lat (off)", "lat (on)", "nagle")
	for _, c := range []Fig2Config{f.Bare, f.VM} {
		verdict := "hurts"
		if c.NagleHelps {
			verdict = "helps"
		}
		fmt.Fprintf(w, "%-11s | %8.2fc %8.2fc | %11v %11v | %s\n",
			c.Name, c.ClientCPU, c.ServerCPU,
			c.LatOff.Round(time.Microsecond), c.LatOn.Round(time.Microsecond), verdict)
	}
}
