package figures

import (
	"fmt"
	"io"
	"time"

	"e2ebatch/internal/loadgen"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/tcpsim"
)

// TogglePoint compares estimate-driven dynamic toggling against both static
// modes at one offered load.
type TogglePoint struct {
	Rate             float64
	Off, On, Dynamic time.Duration
	FinalMode        policy.Mode
	// OnShare is the fraction of decision ticks spent in batch-on.
	OnShare      float64
	Switches     uint64
	Explorations uint64
}

// ToggleOut is the dynamic-toggling experiment: the paper's "had they been
// used to dynamically toggle Nagle batching" (§4) made real.
type ToggleOut struct {
	SLO    time.Duration
	Points []TogglePoint
}

// Toggle sweeps offered load with the ε-greedy toggler active and both
// static baselines for reference.
func Toggle(cal Calib, rates []float64, dur time.Duration, seed int64) *ToggleOut {
	out := &ToggleOut{SLO: cal.SLO}
	var specs []RunSpec
	for _, rate := range rates {
		specs = append(specs,
			RunSpec{Calib: cal, Seed: seed, Rate: rate, Duration: dur},
			RunSpec{Calib: cal, Seed: seed, Rate: rate, Duration: dur, BatchOn: true},
			RunSpec{Calib: cal, Seed: seed, Rate: rate, Duration: dur, Dynamic: DefaultDynamicSpec(cal.SLO)},
		)
	}
	outs := runAll(specs)
	for ri, rate := range rates {
		off, on, dyn := outs[3*ri], outs[3*ri+1], outs[3*ri+2]
		p := TogglePoint{
			Rate:         rate,
			Off:          off.Res.Latency.Mean(),
			On:           on.Res.Latency.Mean(),
			Dynamic:      dyn.Res.Latency.Mean(),
			FinalMode:    dyn.FinalMode,
			OnShare:      dyn.OnShare,
			Switches:     dyn.TogglerStats.Switches,
			Explorations: dyn.TogglerStats.Explorations,
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// WriteToggle renders the dynamic-toggling table.
func WriteToggle(w io.Writer, t *ToggleOut) {
	fmt.Fprintf(w, "Dynamic toggling — estimate-driven ε-greedy vs static modes (SLO %v)\n", t.SLO)
	fmt.Fprintf(w, "%8s | %10s %10s %10s | %7s %8s\n", "kRPS", "off", "on", "dynamic", "on-share", "switches")
	for _, p := range t.Points {
		fmt.Fprintf(w, "%8.1f | %10v %10v %10v | %6.0f%% %8d\n",
			p.Rate/1000, p.Off.Round(time.Microsecond), p.On.Round(time.Microsecond),
			p.Dynamic.Round(time.Microsecond), 100*p.OnShare, p.Switches)
	}
}

// HintsRow compares the unit modes' estimation error on one run.
type HintsRow struct {
	Rate     float64
	BatchOn  bool
	Measured time.Duration
	ByUnit   [tcpsim.NumUnits]time.Duration
	Hints    time.Duration
}

// relErr returns |est-meas|/meas.
func relErr(est, meas time.Duration) float64 {
	if meas == 0 {
		return 0
	}
	d := est - meas
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(meas)
}

// HintsOut is the semantic-gap experiment (§3.3): on the heterogeneous
// Figure 4b workload — with the client batching k requests per send(2) to
// widen the gap — byte- and send-unit estimates drift from the measured
// request latency while the create/complete hints remain exact.
type HintsOut struct {
	SyscallBatch int
	Rows         []HintsRow
}

// Hints runs the mixed workload with hints attached at the given rates.
func Hints(cal Calib, rates []float64, dur time.Duration, seed int64, syscallBatch int) *HintsOut {
	out := &HintsOut{SyscallBatch: syscallBatch}
	var specs []RunSpec
	type key struct {
		rate float64
		on   bool
	}
	var keys []key
	for _, rate := range rates {
		for _, on := range []bool{false, true} {
			spec := RunSpec{
				Calib:       cal,
				Seed:        seed,
				Rate:        rate,
				Duration:    dur,
				BatchOn:     on,
				Workload:    loadgen.MixedWorkload(cal.KeySize, cal.ValSize, 950),
				PreloadKeys: true,
				WithHints:   true,
			}
			spec.SyscallBatch = syscallBatch
			specs = append(specs, spec)
			keys = append(keys, key{rate, on})
		}
	}
	for i, r := range runAll(specs) {
		row := HintsRow{Rate: keys[i].rate, BatchOn: keys[i].on, Measured: r.Res.Latency.Mean()}
		for u := 0; u < tcpsim.NumUnits; u++ {
			if r.Est[u].Valid {
				row.ByUnit[u] = r.Est[u].Latency
			}
		}
		if r.HintAvgs.Valid {
			row.Hints = r.HintAvgs.Latency
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// WriteHints renders the unit-comparison table.
func WriteHints(w io.Writer, h *HintsOut) {
	fmt.Fprintf(w, "Semantic gap — estimate vs measured on 95:5 SET:GET (client batches %d requests per send)\n", h.SyscallBatch)
	fmt.Fprintf(w, "%8s %-5s | %10s | %10s %6s | %10s %6s | %10s %6s | %10s %6s\n",
		"kRPS", "mode", "measured", "bytes", "err", "packets", "err", "sends", "err", "hints", "err")
	for _, r := range h.Rows {
		mode := "off"
		if r.BatchOn {
			mode = "on"
		}
		fmt.Fprintf(w, "%8.1f %-5s | %10v | %10v %5.0f%% | %10v %5.0f%% | %10v %5.0f%% | %10v %5.0f%%\n",
			r.Rate/1000, mode, r.Measured.Round(time.Microsecond),
			r.ByUnit[0].Round(time.Microsecond), 100*relErr(r.ByUnit[0], r.Measured),
			r.ByUnit[1].Round(time.Microsecond), 100*relErr(r.ByUnit[1], r.Measured),
			r.ByUnit[2].Round(time.Microsecond), 100*relErr(r.ByUnit[2], r.Measured),
			r.Hints.Round(time.Microsecond), 100*relErr(r.Hints, r.Measured))
	}
}

// AIMDRow compares AIMD cork control against the static modes at one rate.
type AIMDRow struct {
	Rate              float64
	Off, On, AIMDMean time.Duration
	FinalCork         int
}

// AIMDOut is the §5 "Better Batching Heuristics" experiment: AIMD gradually
// adapts the cork threshold instead of toggling on/off.
type AIMDOut struct {
	SLO  time.Duration
	Rows []AIMDRow
}

// AIMD runs the AIMD-controlled variant at the given rates.
func AIMD(cal Calib, rates []float64, dur time.Duration, seed int64) *AIMDOut {
	out := &AIMDOut{SLO: cal.SLO}
	var specs []RunSpec
	for _, rate := range rates {
		specs = append(specs,
			RunSpec{Calib: cal, Seed: seed, Rate: rate, Duration: dur},
			RunSpec{Calib: cal, Seed: seed, Rate: rate, Duration: dur, BatchOn: true},
			RunSpec{Calib: cal, Seed: seed, Rate: rate, Duration: dur, AIMD: DefaultAIMDSpec(cal.SLO)},
		)
	}
	outs := runAll(specs)
	for ri, rate := range rates {
		off, on, ad := outs[3*ri], outs[3*ri+1], outs[3*ri+2]
		out.Rows = append(out.Rows, AIMDRow{
			Rate:      rate,
			Off:       off.Res.Latency.Mean(),
			On:        on.Res.Latency.Mean(),
			AIMDMean:  ad.Res.Latency.Mean(),
			FinalCork: ad.FinalCork,
		})
	}
	return out
}

// WriteAIMD renders the AIMD table.
func WriteAIMD(w io.Writer, a *AIMDOut) {
	fmt.Fprintf(w, "AIMD batch-limit control vs static modes (SLO %v)\n", a.SLO)
	fmt.Fprintf(w, "%8s | %10s %10s %10s | %10s\n", "kRPS", "off", "on", "aimd", "final cork")
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%8.1f | %10v %10v %10v | %10d\n",
			r.Rate/1000, r.Off.Round(time.Microsecond), r.On.Round(time.Microsecond),
			r.AIMDMean.Round(time.Microsecond), r.FinalCork)
	}
}

// PolicyCompareRow contrasts the two bandit controllers at one load.
type PolicyCompareRow struct {
	Rate                   float64
	EpsGreedy, UCB         time.Duration
	EpsSwitches, UCBSwitch uint64
	EpsOnShare, UCBOnShare float64
}

// PolicyCompareOut pits ε-greedy (the paper's "light method" suggestion)
// against UCB1 (the multi-armed-bandit literature it cites) in the full
// system.
type PolicyCompareOut struct {
	SLO  time.Duration
	Rows []PolicyCompareRow
}

// PolicyCompare runs both controllers at each rate.
func PolicyCompare(cal Calib, rates []float64, dur time.Duration, seed int64) *PolicyCompareOut {
	out := &PolicyCompareOut{SLO: cal.SLO}
	var specs []RunSpec
	for _, rate := range rates {
		for _, ucb := range []bool{false, true} {
			d := DefaultDynamicSpec(cal.SLO)
			d.UseUCB = ucb
			specs = append(specs, RunSpec{Calib: cal, Seed: seed, Rate: rate, Duration: dur, Dynamic: d})
		}
	}
	outs := runAll(specs)
	for ri, rate := range rates {
		eps, ucb := outs[2*ri], outs[2*ri+1]
		out.Rows = append(out.Rows, PolicyCompareRow{
			Rate:        rate,
			EpsGreedy:   eps.Res.Latency.Mean(),
			EpsSwitches: eps.TogglerStats.Switches,
			EpsOnShare:  eps.OnShare,
			UCB:         ucb.Res.Latency.Mean(),
			UCBSwitch:   ucb.TogglerStats.Switches,
			UCBOnShare:  ucb.OnShare,
		})
	}
	return out
}

// WritePolicyCompare renders the comparison.
func WritePolicyCompare(w io.Writer, p *PolicyCompareOut) {
	fmt.Fprintf(w, "Bandit comparison — ε-greedy vs UCB1 dynamic toggling (SLO %v)\n", p.SLO)
	fmt.Fprintf(w, "%8s | %10s %8s %9s | %10s %8s %9s\n",
		"kRPS", "ε-greedy", "switches", "on-share", "ucb1", "switches", "on-share")
	for _, r := range p.Rows {
		fmt.Fprintf(w, "%8.1f | %10v %8d %8.0f%% | %10v %8d %8.0f%%\n",
			r.Rate/1000, r.EpsGreedy.Round(time.Microsecond), r.EpsSwitches, 100*r.EpsOnShare,
			r.UCB.Round(time.Microsecond), r.UCBSwitch, 100*r.UCBOnShare)
	}
}
