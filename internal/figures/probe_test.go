package figures

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// TestCalibrationProbe prints the raw sweep so the calibration constants
// can be tuned; enable with E2E_PROBE=1.
func TestCalibrationProbe(t *testing.T) {
	if os.Getenv("E2E_PROBE") == "" {
		t.Skip("set E2E_PROBE=1 to run the calibration probe")
	}
	cal := DefaultCalib()
	for _, rate := range []float64{5000, 10000, 15000, 20000, 25000, 30000, 35000, 40000, 45000, 50000, 60000, 70000, 80000, 90000} {
		for _, on := range []bool{false, true} {
			out := Run(RunSpec{
				Calib:    cal,
				Seed:     7,
				Rate:     rate,
				Duration: 300 * time.Millisecond,
				BatchOn:  on,
			})
			fmt.Printf("rate=%6.0f batch=%-5v meas=%8v estB=%8v (valid=%v) ach=%7.0f sUtil(app=%.2f soft=%.2f) cUtil(app=%.2f soft=%.2f) batches=%d reqs=%d maxB=%d flushes(c)=%d drop=%d\n",
				rate, on, out.Res.Latency.Mean().Round(time.Microsecond),
				out.Est[0].Latency.Round(time.Microsecond), out.Est[0].Valid,
				out.Res.AchievedRate,
				out.ServerAppUtil, out.ServerSoftUtil, out.ClientAppUtil, out.ClientSoftUtil,
				out.ServerStats.ReadBatches, out.ServerStats.Requests, out.ServerStats.MaxBatch,
				out.ClientConn.Flushes, out.Res.Dropped)
		}
	}
}

// TestExtensionsProbe prints toggle/AIMD/4b-kind diagnostics; enable with
// E2E_PROBE=1.
func TestExtensionsProbe(t *testing.T) {
	if os.Getenv("E2E_PROBE") == "" {
		t.Skip("set E2E_PROBE=1 to run")
	}
	cal := DefaultCalib()
	tg := Toggle(cal, []float64{10000, 45000, 60000}, 600*time.Millisecond, 7)
	WriteToggle(os.Stdout, tg)
	am := AIMD(cal, []float64{10000, 60000}, 600*time.Millisecond, 7)
	WriteAIMD(os.Stdout, am)
	fb := Fig4b(cal, []float64{5000, 15000}, 400*time.Millisecond, 7)
	for _, p := range fb.Points {
		fmt.Printf("4b rate=%v off(set=%v get=%v) on(set=%v get=%v)\n", p.Rate,
			p.Off.SetMeasured.Round(time.Microsecond), p.Off.GetMeasured.Round(time.Microsecond),
			p.On.SetMeasured.Round(time.Microsecond), p.On.GetMeasured.Round(time.Microsecond))
	}
}

// TestAblationsProbe prints the §5 ablation tables; enable with E2E_PROBE=1.
func TestAblationsProbe(t *testing.T) {
	if os.Getenv("E2E_PROBE") == "" {
		t.Skip("set E2E_PROBE=1 to run")
	}
	cal := DefaultCalib()
	ivs := []time.Duration{200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
	WriteTickAblation(os.Stdout, TickAblation(cal, 50000, ivs, 500*time.Millisecond, 7))
	exch := []time.Duration{0, time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond}
	WriteExchangeAblation(os.Stdout, ExchangeAblation(cal, 35000, exch, 500*time.Millisecond, 7))
}

// TestMultiConnProbe prints the multi-connection table; enable with
// E2E_PROBE=1.
func TestMultiConnProbe(t *testing.T) {
	if os.Getenv("E2E_PROBE") == "" {
		t.Skip("set E2E_PROBE=1")
	}
	cal := DefaultCalib()
	WriteMultiConn(os.Stdout, MultiConn(cal, 4, 20000, 300*time.Millisecond, 7))
	WriteMultiConn(os.Stdout, MultiConn(cal, 4, 50000, 300*time.Millisecond, 7))
}

// TestTimelineProbe prints the convergence trace; enable with E2E_PROBE=1.
func TestTimelineProbe(t *testing.T) {
	if os.Getenv("E2E_PROBE") == "" {
		t.Skip("set E2E_PROBE=1")
	}
	WriteTimeline(os.Stdout, Timeline(DefaultCalib(), 50000, 400*time.Millisecond, 7))
}

// TestGROProbe prints the GRO ablation; enable with E2E_PROBE=1.
func TestGROProbe(t *testing.T) {
	if os.Getenv("E2E_PROBE") == "" {
		t.Skip("set E2E_PROBE=1")
	}
	WriteGROAblation(os.Stdout, GROAblation(DefaultCalib(), []float64{25000, 40000, 55000, 70000}, 300*time.Millisecond, 7))
}

// TestPolicyCompareProbe prints the bandit comparison; enable with
// E2E_PROBE=1.
func TestPolicyCompareProbe(t *testing.T) {
	if os.Getenv("E2E_PROBE") == "" {
		t.Skip("set E2E_PROBE=1")
	}
	WritePolicyCompare(os.Stdout, PolicyCompare(DefaultCalib(), []float64{10000, 45000, 60000}, 500*time.Millisecond, 7))
}

// TestLossProbe prints the loss-robustness table; enable with E2E_PROBE=1.
func TestLossProbe(t *testing.T) {
	if os.Getenv("E2E_PROBE") == "" {
		t.Skip("set E2E_PROBE=1")
	}
	WriteLoss(os.Stdout, LossRobustness(DefaultCalib(), 20000, []float64{0, 0.001, 0.01, 0.05}, 400*time.Millisecond, 7))
}
