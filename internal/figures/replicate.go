package figures

import (
	"fmt"
	"io"
	"math"
	"time"

	"e2ebatch/internal/metrics"
)

// RepCell aggregates one (rate, mode) cell across independent replications.
type RepCell struct {
	Mean   time.Duration
	Stderr time.Duration
}

func repCell(samples []time.Duration) RepCell {
	var w metrics.Welford
	for _, s := range samples {
		w.Add(float64(s))
	}
	c := RepCell{Mean: time.Duration(w.Mean())}
	if w.Count() > 1 {
		c.Stderr = time.Duration(w.Stddev() / math.Sqrt(float64(w.Count())))
	}
	return c
}

// RepPoint is one offered load with replicated statistics.
type RepPoint struct {
	Rate    float64
	Off, On RepCell
}

// RepOut is the replicated Figure 4a: each cell is the mean ± standard
// error over independent seeds, the experimental rigor a camera-ready
// version of the workshop paper would need.
type RepOut struct {
	Seeds  []int64
	SLO    time.Duration
	Points []RepPoint
}

// ReplicatedFig4a runs the sweep once per seed and aggregates.
func ReplicatedFig4a(cal Calib, rates []float64, dur time.Duration, seeds []int64) *RepOut {
	if len(seeds) == 0 {
		panic("figures: need at least one seed")
	}
	out := &RepOut{Seeds: seeds, SLO: cal.SLO}
	var specs []RunSpec
	for _, rate := range rates {
		for _, seed := range seeds {
			for _, mode := range []bool{false, true} {
				specs = append(specs, RunSpec{Calib: cal, Seed: seed, Rate: rate, Duration: dur, BatchOn: mode})
			}
		}
	}
	outs := runAll(specs)
	i := 0
	for _, rate := range rates {
		p := RepPoint{Rate: rate}
		var off, on []time.Duration
		for range seeds {
			off = append(off, outs[i].Res.Latency.Mean())
			on = append(on, outs[i+1].Res.Latency.Mean())
			i += 2
		}
		p.Off, p.On = repCell(off), repCell(on)
		out.Points = append(out.Points, p)
	}
	return out
}

// Separable reports whether the two modes' means at point i differ by more
// than twice the combined standard error — a crude significance check.
func (r *RepOut) Separable(i int) bool {
	p := r.Points[i]
	gap := float64(p.Off.Mean - p.On.Mean)
	if gap < 0 {
		gap = -gap
	}
	return gap > 2*float64(p.Off.Stderr+p.On.Stderr)
}

// WriteReplicated renders the aggregated sweep.
func WriteReplicated(w io.Writer, r *RepOut) {
	fmt.Fprintf(w, "Figure 4a with %d replications (mean ± stderr)\n", len(r.Seeds))
	fmt.Fprintf(w, "%8s | %11s ±%9s | %11s ±%9s | separable\n", "kRPS", "off", "", "on", "")
	for i, p := range r.Points {
		fmt.Fprintf(w, "%8.1f | %11v ±%9v | %11v ±%9v | %v\n",
			p.Rate/1000,
			p.Off.Mean.Round(time.Microsecond), p.Off.Stderr.Round(time.Microsecond),
			p.On.Mean.Round(time.Microsecond), p.On.Stderr.Round(time.Microsecond),
			r.Separable(i))
	}
}
