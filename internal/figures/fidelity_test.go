package figures

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"e2ebatch/internal/loadgen"
)

// TestFidelityGolden pins the full fidelity report byte-for-byte at the
// cmd/fidelity defaults (seed 1, 150 ms). Unlike the sha256 figure goldens
// the report itself is stored in testdata, so a drift shows up as a
// readable diff: which workload's truth moved, which predictor's error,
// which hypothesis flipped. Run with E2E_GOLDEN_PRINT=1 to rewrite the
// golden from the current output instead of asserting.
func TestFidelityGolden(t *testing.T) {
	skipIfShort(t)
	path := filepath.Join("testdata", "fidelity_golden.txt")

	var buf bytes.Buffer
	WriteFidelity(&buf, Fidelity(DefaultCalib(), 150*time.Millisecond, 1))

	if os.Getenv("E2E_GOLDEN_PRINT") != "" {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("fidelity report drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestFidelityReportDeterministic renders the harness twice from scratch
// and requires byte-identical reports — the in-process replay property the
// golden alone cannot show (it would miss nondeterminism that happens to
// be stable across processes but not across invocations, e.g. map order
// feeding a sweep).
func TestFidelityReportDeterministic(t *testing.T) {
	skipIfShort(t)
	render := func() []byte {
		var buf bytes.Buffer
		out := Fidelity(DefaultCalib(), 40*time.Millisecond, 9)
		WriteFidelity(&buf, out)
		WriteFidelityBreakdown(&buf, out)
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("two Fidelity runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestZooReplayByteIdentical replays every zoo workload twice under the
// same seed and requires the tcpsim stream digests — running FNV-1a over
// every byte the client sent and read, and the same on the server — to
// match exactly, along with the ground-truth latency distribution. This is
// the replayability contract the zoo documents: a workload is a pure
// function of (seed, index), so a rerun is not just statistically similar
// but the same bytes at the same virtual times.
func TestZooReplayByteIdentical(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	for i, w := range loadgen.Zoo(cal.KeySize, cal.ValSize) {
		w := w
		seed := int64(100 + i)
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			run := func() *RunOut {
				return Run(RunSpec{
					Calib:        cal,
					Seed:         seed,
					Rate:         w.Rate,
					RateFn:       w.RateShape,
					Duration:     30 * time.Millisecond,
					BatchOn:      w.BatchOn,
					Workload:     w.NewMaker(seed),
					PreloadKeys:  w.PreloadKeys,
					SyscallBatch: w.SyscallBatch,
					WithHints:    w.WithHints,
				})
			}
			a, b := run(), run()
			if a.ClientConn.SentDigest != b.ClientConn.SentDigest ||
				a.ClientConn.ReadDigest != b.ClientConn.ReadDigest {
				t.Fatalf("client stream digests diverged: %x/%x vs %x/%x",
					a.ClientConn.SentDigest, a.ClientConn.ReadDigest,
					b.ClientConn.SentDigest, b.ClientConn.ReadDigest)
			}
			if a.ServerConn.SentDigest != b.ServerConn.SentDigest ||
				a.ServerConn.ReadDigest != b.ServerConn.ReadDigest {
				t.Fatalf("server stream digests diverged")
			}
			if a.ClientConn.Sends == 0 || a.ClientConn.BytesSent == 0 {
				t.Fatalf("no traffic flowed for %s", w.Name)
			}
			if got, want := a.Res.Latency.Count(), b.Res.Latency.Count(); got != want {
				t.Fatalf("completed count diverged: %d vs %d", got, want)
			}
			if a.Res.Latency.Mean() != b.Res.Latency.Mean() ||
				a.Res.Latency.Quantile(0.999) != b.Res.Latency.Quantile(0.999) {
				t.Fatalf("ground-truth latency diverged: %v vs %v",
					a.Res.Latency.Mean(), b.Res.Latency.Mean())
			}
			// Different seeds must actually change the stream for the
			// randomized members — guards against a maker ignoring its
			// seed. (Fixed-size makers legitimately replay the same bytes
			// at any seed; only the arrival times differ.)
			if w.Name == "heavy-tail" {
				c := Run(RunSpec{
					Calib: cal, Seed: seed + 1, Rate: w.Rate, Duration: 30 * time.Millisecond,
					Workload: w.NewMaker(seed + 1),
				})
				if c.ClientConn.SentDigest == a.ClientConn.SentDigest {
					t.Fatalf("heavy-tail stream identical across different seeds")
				}
			}
		})
	}
}

// TestFidelityScoresAllPredictors asserts the harness's acceptance shape:
// at least 6 workloads, every one scored by at least the estimator and the
// naive baseline, and every predictor producing a workload-level mean.
func TestFidelityScoresAllPredictors(t *testing.T) {
	skipIfShort(t)
	out := Fidelity(DefaultCalib(), 40*time.Millisecond, 3)
	if len(out.Points) < 6 {
		t.Fatalf("zoo too small: %d workloads", len(out.Points))
	}
	for _, pt := range out.Points {
		if pt.Truth <= 0 || pt.Completed == 0 {
			t.Fatalf("%s: no ground truth (truth=%v completed=%d)", pt.Workload.Name, pt.Truth, pt.Completed)
		}
		if !pt.Scored[PredEstimator] {
			t.Errorf("%s: estimator abstained", pt.Workload.Name)
		}
		if !pt.Scored[PredNaive] {
			t.Errorf("%s: naive baseline abstained", pt.Workload.Name)
		}
	}
	for p := Predictor(0); p < NumPredictors; p++ {
		if out.ScoredN[p] == 0 {
			t.Errorf("predictor %s scored nothing", p)
		}
	}
	if len(out.Hypotheses) < 5 {
		t.Fatalf("want >=5 hypotheses, got %d", len(out.Hypotheses))
	}
	for _, h := range out.Hypotheses {
		if h.Verdict != "CONFIRMED" && h.Verdict != "REFUTED" {
			t.Errorf("%s: verdict %q", h.ID, h.Verdict)
		}
		if h.Claim == "" || h.Evidence == "" {
			t.Errorf("%s: empty claim or evidence", h.ID)
		}
	}
}
