package figures

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"e2ebatch/internal/faults"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/tcpsim"
)

// checkChaosSane rejects the garbage classes a fault must never smuggle
// into a run's outputs: NaN/Inf or negative estimates, negative measured
// latencies, and tick counters that disagree with each other. It does not
// demand accuracy — degraded runs are allowed to be wrong, just not toxic.
func checkChaosSane(t *testing.T, name string, out *RunOut) {
	t.Helper()
	if out.Res.Latency.Mean() < 0 {
		t.Fatalf("%s: negative measured latency %v", name, out.Res.Latency.Mean())
	}
	for u := 0; u < tcpsim.NumUnits; u++ {
		e := out.Est[u]
		if math.IsNaN(e.Throughput) || math.IsInf(e.Throughput, 0) {
			t.Fatalf("%s: non-finite estimate throughput %+v", name, e)
		}
		if e.Latency < 0 || e.Throughput < 0 {
			t.Fatalf("%s: negative estimate %+v", name, e)
		}
	}
	ov := out.Log.Overall(tcpsim.UnitBytes)
	if ov.Latency < 0 || ov.Throughput < 0 {
		t.Fatalf("%s: negative offline overall %+v", name, ov)
	}
	if out.DegradedTicks < 0 || out.DegradedTicks > out.TotalTicks {
		t.Fatalf("%s: degraded ticks %d out of %d total", name, out.DegradedTicks, out.TotalTicks)
	}
	if out.TogglerStats.Degraded != uint64(out.DegradedTicks) {
		t.Fatalf("%s: toggler saw %d degraded ticks, runner counted %d",
			name, out.TogglerStats.Degraded, out.DegradedTicks)
	}
	// Bounded estimator error: under every fault the steady-state estimate,
	// when it claims validity, must stay within two orders of magnitude of
	// the measurement. This is a garbage bound, not an accuracy bound — the
	// paper's accuracy claims are pinned by the fault-free figure tests.
	if e, m := out.Est[tcpsim.UnitBytes], out.Res.Latency.Mean(); e.Valid && m > 10*time.Microsecond {
		if e.Latency > 100*m || e.Latency < m/100 {
			t.Fatalf("%s: estimate %v unmoored from measured %v", name, e.Latency, m)
		}
	}
}

// TestChaosSoakMatrix is the deterministic chaos soak: every standard fault
// plan crossed with load levels, each cell run twice with the same seed and
// required to be deeply identical — fault injection must not perturb the
// simulation's byte-identical-rerun contract — and to produce sane outputs
// (no panics, no NaN, no negative averages). Short mode (the -race gate)
// trims the matrix to the interesting plans at one rate.
func TestChaosSoakMatrix(t *testing.T) {
	plans := faults.Names()
	rates := []float64{20000, 55000}
	dur := 120 * time.Millisecond
	if testing.Short() {
		plans = []string{"loss", "metadrop", "stall", "combo"}
		rates = []float64{30000}
		dur = 50 * time.Millisecond
	}
	cal := DefaultCalib()
	for _, plan := range plans {
		for _, rate := range rates {
			name := fmt.Sprintf("%s/%.0fk", plan, rate/1000)
			t.Run(name, func(t *testing.T) {
				p, err := faults.Standard(plan, dur)
				if err != nil {
					t.Fatal(err)
				}
				spec := RunSpec{
					Calib:    cal,
					Seed:     13,
					Rate:     rate,
					Duration: dur,
					Dynamic:  DefaultDynamicSpec(cal.SLO),
					Faults:   p,
				}
				a := Run(spec)
				checkChaosSane(t, name, a)
				if a.TotalTicks == 0 {
					t.Fatal("no decision ticks ran")
				}
				b := Run(spec)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("rerun diverged under plan %q:\nfirst:  %+v\nsecond: %+v", plan, a.Res, b.Res)
				}
			})
		}
	}
}

// TestDegradedFallbackUnderLossAndMetaDrop pins the issue's acceptance
// behaviour: under a 5% loss burst combined with a heavy metadata-drop
// window, the estimator reports degraded mode (instead of NaN or garbage),
// the policy retreats to and holds its safe default, and the whole run is
// deterministic — the same seed reproduces it byte for byte, -race clean.
func TestDegradedFallbackUnderLossAndMetaDrop(t *testing.T) {
	dur := 200 * time.Millisecond
	if testing.Short() {
		dur = 120 * time.Millisecond
	}
	// Both windows run past the end of the run (including its drain tail):
	// the pin is what the policy does while degradation persists, not how
	// it recovers after.
	plan := &faults.Plan{Name: "loss+metadrop", Events: []faults.Event{
		{Kind: faults.LossBurst, Start: dur / 5, Dur: 2 * dur, Prob: 0.05},
		{Kind: faults.MetaDrop, Start: dur / 5, Dur: 2 * dur, Prob: 1},
	}}
	cal := DefaultCalib()
	spec := RunSpec{
		Calib:    cal,
		Seed:     7,
		Rate:     30000,
		Duration: dur,
		Dynamic:  DefaultDynamicSpec(cal.SLO),
		Faults:   plan,
	}
	a := Run(spec)
	checkChaosSane(t, "loss+metadrop", a)
	if a.DegradedTicks == 0 {
		t.Fatal("estimator never reported degraded mode under metadata drops")
	}
	if a.TogglerStats.SafeFallbacks == 0 {
		t.Fatalf("policy never fell back to its safe default (stats %+v)", a.TogglerStats)
	}
	if a.FinalMode != policy.BatchOff {
		t.Fatalf("final mode = %v, want the safe default BatchOff held", a.FinalMode)
	}
	// The fault windows must be on the record for offline correlation —
	// one activation per window (neither closes within the run).
	if len(a.Log.Events) != 2 {
		t.Fatalf("trace recorded %d fault events, want activations for both windows: %+v",
			len(a.Log.Events), a.Log.Events)
	}
	b := Run(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("acceptance run is not deterministic across reruns")
	}
}
