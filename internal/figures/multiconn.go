package figures

import (
	"fmt"
	"io"
	"time"

	"e2ebatch/internal/core"
	eng "e2ebatch/internal/engine"
	"e2ebatch/internal/kv"
	"e2ebatch/internal/loadgen"
	"e2ebatch/internal/netem"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
	"e2ebatch/internal/tcpsim"
)

// MultiConnOut is the multi-connection experiment of §3.2's closing remark:
// per-connection estimates are aggregated (throughput-weighted) when one
// batching decision covers several connections, and the toggling policy is
// driven by the aggregate.
type MultiConnOut struct {
	Conns    int
	Rate     float64 // total offered load
	Measured time.Duration
	// PerConn holds each connection's own steady estimate; Aggregate is
	// their throughput-weighted combination.
	PerConn   []core.Estimate
	Aggregate core.Estimate
	// Dynamic results when toggling from the aggregate.
	DynamicMeasured time.Duration
	OnShare         float64
}

// MultiConn runs n client connections (each with its own load generator at
// rate/n) against one server over one link, first statically (batch off) to
// validate aggregation, then with aggregate-driven dynamic toggling across
// all connections at once.
func MultiConn(cal Calib, n int, rate float64, dur time.Duration, seed int64) *MultiConnOut {
	if n <= 0 {
		panic("figures: MultiConn needs n > 0")
	}
	out := &MultiConnOut{Conns: n, Rate: rate}

	// ---- pass 1: static batch-off, validate aggregation ----
	res, ests, _, _ := runMulti(cal, n, rate, dur, seed, nil)
	out.Measured = res
	out.PerConn = ests
	out.Aggregate = core.Aggregate(ests)

	// ---- pass 2: aggregate-driven dynamic toggling ----
	d := DefaultDynamicSpec(cal.SLO)
	dyn, _, onShare, _ := runMulti(cal, n, rate, dur, seed, d)
	out.DynamicMeasured = dyn
	out.OnShare = onShare
	return out
}

// runMulti wires n connections and returns the pooled measured mean, the
// per-connection steady estimates, and (for dynamic runs) the batch-on
// residency.
func runMulti(cal Calib, n int, rate float64, dur time.Duration, seed int64, dyn *DynamicSpec) (time.Duration, []core.Estimate, float64, uint64) {
	s := sim.New(seed + 1)
	cs := tcpsim.NewStack(s, "client")
	cs.TxCosts, cs.RxCosts = cal.ClientTx, cal.ClientRx
	ss := tcpsim.NewStack(s, "server")
	ss.TxCosts, ss.RxCosts = cal.ServerTx, cal.ServerRx
	link := netem.NewLink(s, "wire", cal.Link)

	tcpCfg := cal.TCP
	tcpCfg.Nagle = false
	if dyn != nil {
		tcpCfg.Nagle = dyn.Initial == policy.BatchOn
		tcpCfg.CorkBytes = cal.CorkOnBytes
	}

	store := kv.NewStore(func() time.Duration { return s.Now().Duration() })
	engine := kv.NewEngine(store)

	type connSet struct {
		cc  *tcpsim.Conn
		sc  *tcpsim.Conn
		gen *loadgen.Generator
	}
	conns := make([]*connSet, n)
	ports := make([]eng.Port, n)
	lcfg := cal.Load
	lcfg.Rate = rate / float64(n)
	lcfg.Duration = dur
	lcfg.Warmup = dur / 5
	for i := range conns {
		cc, sc := tcpsim.Connect(cs, ss, link, tcpCfg)
		kv.NewSimServer(engine, sc, cal.Server)
		gen := loadgen.New(s, cc, lcfg, loadgen.SetWorkload(cal.KeySize, cal.ValSize))
		conns[i] = &connSet{cc: cc, sc: sc, gen: gen}
		ports[i] = tcpsim.NewEnginePort(cc, sc, tcpsim.UnitBytes)
	}

	// Steady-state per-connection estimation: a passive engine endpoint
	// per connection, primed after warmup, closing sample at the end.
	warmAt := s.Now().Add(lcfg.Warmup)
	probes := make([]*eng.Endpoint, n)
	for i := range probes {
		probes[i] = eng.New(eng.Config{}, ports[i])
	}
	s.At(warmAt, func() {
		for _, p := range probes {
			p.Tick(qstate.Time(s.Now()))
		}
	})

	// Dynamic toggling driven by the AGGREGATE of per-connection
	// estimates, applied to every connection — the policy scope §3.2
	// describes. One multi-port engine endpoint is exactly that shape:
	// per-port estimators, a throughput-weighted aggregate decision, and
	// the full mode application (including the cork threshold on
	// re-batch) on every connection.
	var tog *policy.Toggler
	var dynEp *eng.Endpoint
	if dyn != nil {
		tog = policy.NewToggler(dyn.Objective, dyn.Toggler, dyn.Initial, s.Rand())
		dynEp = eng.New(eng.Config{
			Controller:   tog,
			Initial:      dyn.Initial,
			CorkOnBytes:  cal.CorkOnBytes,
			MaxRemoteAge: dyn.MaxRemoteAge,
		}, ports...)
		dynEp.Start(eng.SimClock{Sim: s}, dyn.Interval)
	}

	var end sim.Time
	for _, c := range conns {
		if e := c.gen.Start(); e > end {
			end = e
		}
	}
	s.RunUntil(end)
	for _, c := range conns {
		c.gen.FlushSends()
	}
	deadline := s.Now().Add(50 * time.Millisecond)
	for s.Now() < deadline {
		pending := 0
		for _, c := range conns {
			pending += c.gen.Outstanding()
		}
		if pending == 0 || !s.Step() {
			break
		}
	}

	ests := make([]core.Estimate, n)
	var pooled time.Duration
	var count uint64
	for i, c := range conns {
		ests[i] = probes[i].Tick(qstate.Time(s.Now())).Estimate
		r := c.gen.Finalize()
		pooled += r.Latency.Sum()
		count += r.Latency.Count()
	}
	var mean time.Duration
	if count > 0 {
		mean = pooled / time.Duration(count)
	}
	onShare := 0.0
	var switches uint64
	if tog != nil {
		st := dynEp.Stats()
		if st.TotalTicks > 0 {
			onShare = float64(st.OnTicks) / float64(st.TotalTicks)
		}
		switches = tog.Stats().Switches
	}
	return mean, ests, onShare, switches
}

// WriteMultiConn renders the multi-connection table.
func WriteMultiConn(w io.Writer, m *MultiConnOut) {
	fmt.Fprintf(w, "Multi-connection aggregation — %d connections, %.0f kRPS total\n", m.Conns, m.Rate/1000)
	for i, e := range m.PerConn {
		fmt.Fprintf(w, "  conn %d: est latency %v, throughput %.0f B/s (valid=%v)\n",
			i, e.Latency.Round(time.Microsecond), e.Throughput, e.Valid)
	}
	fmt.Fprintf(w, "aggregate estimate: %v; measured mean: %v\n",
		m.Aggregate.Latency.Round(time.Microsecond), m.Measured.Round(time.Microsecond))
	fmt.Fprintf(w, "aggregate-driven toggling: measured %v, batch-on residency %.0f%%\n",
		m.DynamicMeasured.Round(time.Microsecond), 100*m.OnShare)
}
