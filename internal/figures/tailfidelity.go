package figures

import (
	"fmt"
	"io"
	"math"
	"time"

	"e2ebatch/internal/analytic"
	"e2ebatch/internal/core"
	"e2ebatch/internal/loadgen"
)

// The tail-fidelity harness extends the model-fidelity discipline from means
// to quantiles: replay the same workload zoo, take the exact post-warmup
// per-request latency distribution as ground truth at the four canonical
// quantiles (p50/p90/p99/p999), and score three rival tail predictors:
//
//   - the composed estimator — per-queue delay histograms captured from the
//     v2 exchange plane, convolved under the Kleinrock independence
//     approximation (core.ComposeTail);
//   - the analytic rival — the Gamma two-moment closed form over the tandem
//     M/G/1 stage sojourns (analytic.E2ETail), fed no measurements;
//   - the naive byte baseline — the empirical quantile of per-request
//     serialization time plus propagation (analytic.NaiveByteTail).
//
// Hypotheses H6–H8 extend the numbered-claim ledger of fidelity.go; the
// rendered report is golden-pinned like the mean report.

// tailQuantileNames labels core.TailQuantiles in report order.
var tailQuantileNames = [4]string{"p50", "p90", "p99", "p999"}

// TailPoint is one workload's tail ground truth and predictions.
type TailPoint struct {
	Workload loadgen.ZooWorkload
	// RateEff is the shape-adjusted mean offered rate.
	RateEff float64
	// Truth holds the exact post-warmup latency quantiles at
	// core.TailQuantiles; Completed counts the samples behind them.
	Truth     [4]time.Duration
	Completed uint64

	// Est is the composed tail estimate (RunOut.TailEst); An the analytic
	// closed form; Naive the byte strawman per quantile.
	Est   core.TailEstimate
	An    analytic.TailOut
	Naive [4]time.Duration

	// Pred, Scored and Err mirror FidelityPoint, with a per-quantile error
	// vector instead of a scalar.
	Pred   [NumPredictors][4]time.Duration
	Scored [NumPredictors]bool
	Err    [NumPredictors][4]float64
}

// TailFidelityOut is the full tail-harness result.
type TailFidelityOut struct {
	Seed int64
	Dur  time.Duration

	Points []TailPoint
	// MeanErrP99 is each predictor's mean p99 error over the workloads it
	// scored (ScoredN of them); MeanErrAll averages over all four quantiles.
	MeanErrP99 [NumPredictors]float64
	MeanErrAll [NumPredictors]float64
	ScoredN    [NumPredictors]int

	Hypotheses []Hypothesis
}

// TailFidelity replays the workload zoo with tail capture enabled and scores
// the tail predictors. Seeds derive exactly as in Fidelity, and tail capture
// is passive, so each run's traffic is byte-identical to the mean harness's.
func TailFidelity(cal Calib, dur time.Duration, seed int64) *TailFidelityOut {
	zoo := loadgen.Zoo(cal.KeySize, cal.ValSize)
	specs := make([]RunSpec, len(zoo))
	for i, w := range zoo {
		wseed := seed + int64(i)*101
		specs[i] = RunSpec{
			Calib:        cal,
			Seed:         wseed,
			Rate:         w.Rate,
			RateFn:       w.RateShape,
			Duration:     dur,
			BatchOn:      w.BatchOn,
			Workload:     w.NewMaker(wseed),
			PreloadKeys:  w.PreloadKeys,
			SyscallBatch: w.SyscallBatch,
			WithHints:    w.WithHints,
			TailCapture:  true,
		}
	}
	outs := runAll(specs)

	res := &TailFidelityOut{Seed: seed, Dur: dur}
	for i, w := range zoo {
		res.Points = append(res.Points, scoreTailPoint(cal, w, dur, specs[i].Seed, outs[i]))
	}
	for p := Predictor(0); p < NumPredictors; p++ {
		var sum99, sumAll float64
		for _, pt := range res.Points {
			if !pt.Scored[p] {
				continue
			}
			res.ScoredN[p]++
			sum99 += pt.Err[p][2]
			for qi := 0; qi < 4; qi++ {
				sumAll += pt.Err[p][qi]
			}
		}
		if res.ScoredN[p] > 0 {
			res.MeanErrP99[p] = sum99 / float64(res.ScoredN[p])
			res.MeanErrAll[p] = sumAll / float64(4*res.ScoredN[p])
		}
	}
	res.Hypotheses = judgeTails(res)
	return res
}

// scoreTailPoint derives one workload's tail predictions and errors.
func scoreTailPoint(cal Calib, w loadgen.ZooWorkload, dur time.Duration, wseed int64, out *RunOut) TailPoint {
	pt := TailPoint{
		Workload:  w,
		RateEff:   w.Rate * loadgen.MeanShape(w.RateShape, dur),
		Completed: out.Res.Latency.Count(),
	}
	for qi, q := range core.TailQuantiles {
		pt.Truth[qi] = out.Res.Latency.Quantile(q)
	}

	// Predictor 1: the composed estimator from the captured histograms.
	pt.Est = out.TailEst
	if pt.Est.Valid {
		pt.Pred[PredEstimator] = [4]time.Duration{pt.Est.P50, pt.Est.P90, pt.Est.P99, pt.Est.P999}
		pt.Scored[PredEstimator] = true
	}

	// Predictors 2 and 3 see only the workload profile and calibration,
	// sampled exactly as the mean harness samples them.
	n := int(pt.RateEff * dur.Seconds())
	if n < 256 {
		n = 256
	}
	if n > 8192 {
		n = 8192
	}
	req, resp := w.Sizes(wseed, n)
	pt.An = analytic.E2ETail(e2eParams(cal, w, pt.RateEff, req, resp))
	if pt.An.Stable {
		pt.Pred[PredAnalytic] = [4]time.Duration{pt.An.P50, pt.An.P90, pt.An.P99, pt.An.P999}
		pt.Scored[PredAnalytic] = true
	}

	reqF, respF := toFloat(req), toFloat(resp)
	for qi, q := range core.TailQuantiles {
		pt.Naive[qi] = analytic.NaiveByteTail(reqF, respF, float64(cal.Link.BitsPerSec), 2*cal.Link.Propagation, q)
	}
	pt.Pred[PredNaive] = pt.Naive
	pt.Scored[PredNaive] = true

	for p := Predictor(0); p < NumPredictors; p++ {
		if !pt.Scored[p] {
			continue
		}
		for qi := 0; qi < 4; qi++ {
			if pt.Truth[qi] > 0 {
				pt.Err[p][qi] = math.Abs(float64(pt.Pred[p][qi])-float64(pt.Truth[qi])) / float64(pt.Truth[qi])
			}
		}
	}
	return pt
}

// judgeTails computes the tail hypotheses' verdicts. H6 is the acceptance
// bar: the composed estimator must beat the naive baseline at p99 on every
// single workload, else the histogram exchange buys nothing over counting
// bytes.
func judgeTails(res *TailFidelityOut) []Hypothesis {
	pts := res.Points
	verdict := func(ok bool) string {
		if ok {
			return "CONFIRMED"
		}
		return "REFUTED"
	}
	var hs []Hypothesis

	// H6 — per-workload p99 dominance over the strawman.
	h6, worst := true, ""
	for i := range pts {
		if !pts[i].Scored[PredEstimator] || pts[i].Err[PredEstimator][2] > pts[i].Err[PredNaive][2] {
			h6 = false
			worst = pts[i].Workload.Name
		}
	}
	ev := "estimator p99 error <= naive p99 error on every workload"
	if !h6 {
		ev = fmt.Sprintf("naive baseline beats the estimator at p99 on %q", worst)
	}
	hs = append(hs, Hypothesis{
		ID:      "H6",
		Claim:   "the composed tail estimator beats the naive byte baseline at p99 on every workload",
		Verdict: verdict(h6), Evidence: ev,
	})

	// H7 — absolute accuracy. The bar is looser than the mean's 10%: each
	// stage contributes a 12.5% bucket-quantization floor, and the
	// histograms weight residence per byte while the truth weights it per
	// request, which skews the low quantiles of large-request workloads.
	h7 := res.ScoredN[PredEstimator] == len(pts) && res.MeanErrP99[PredEstimator] < 0.35
	hs = append(hs, Hypothesis{
		ID:      "H7",
		Claim:   "the composed estimator stays within 35% workload-level mean p99 error across the zoo",
		Verdict: verdict(h7),
		Evidence: fmt.Sprintf("mean p99 error %.1f%% over %d/%d workloads scored",
			100*res.MeanErrP99[PredEstimator], res.ScoredN[PredEstimator], len(pts)),
	})

	// H8 — the tail analogue of H4: bursts fill the queues the estimator
	// measures but violate the closed form's Poisson assumption.
	h8 := true
	var h8ev string
	for i := range pts {
		pt := &pts[i]
		if !modulated(pt.Workload) {
			continue
		}
		ok := pt.Scored[PredEstimator] &&
			(!pt.Scored[PredAnalytic] || pt.Err[PredAnalytic][2] > pt.Err[PredEstimator][2])
		h8 = h8 && ok
		an := "abstained"
		if pt.Scored[PredAnalytic] {
			an = fmt.Sprintf("%.1f%%", 100*pt.Err[PredAnalytic][2])
		}
		h8ev += fmt.Sprintf("%s: estimator %.1f%% vs analytic %s; ",
			pt.Workload.Name, 100*pt.Err[PredEstimator][2], an)
	}
	hs = append(hs, Hypothesis{
		ID:      "H8",
		Claim:   "modulated arrivals degrade the analytic tail model more than the composed estimator at p99",
		Verdict: verdict(h8), Evidence: h8ev,
	})
	return hs
}

// WriteTailFidelity renders the tail report: one block of four rows per
// workload (truth plus each predictor's quantiles and per-quantile errors).
// Fully deterministic, golden-tested byte-for-byte.
func WriteTailFidelity(w io.Writer, f *TailFidelityOut) {
	fmt.Fprintf(w, "TAIL FIDELITY — composed quantiles vs tcpsim ground truth (seed %d, %v runs, warmup %v)\n",
		f.Seed, f.Dur, f.Dur/5)
	fmt.Fprintf(w, "%-16s %-10s %10s %10s %10s %10s | %6s %6s %6s %6s\n",
		"workload", "predictor", tailQuantileNames[0], tailQuantileNames[1],
		tailQuantileNames[2], tailQuantileNames[3], "e50", "e90", "e99", "e999")
	for i := range f.Points {
		pt := &f.Points[i]
		fmt.Fprintf(w, "%-16s %-10s %10v %10v %10v %10v |\n",
			pt.Workload.Name, "truth",
			pt.Truth[0].Round(time.Microsecond), pt.Truth[1].Round(time.Microsecond),
			pt.Truth[2].Round(time.Microsecond), pt.Truth[3].Round(time.Microsecond))
		for p := Predictor(0); p < NumPredictors; p++ {
			if !pt.Scored[p] {
				fmt.Fprintf(w, "%-16s %-10s %10s %10s %10s %10s |\n", "", p, "-", "-", "-", "-")
				continue
			}
			fmt.Fprintf(w, "%-16s %-10s %10v %10v %10v %10v | %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
				"", p,
				pt.Pred[p][0].Round(time.Microsecond), pt.Pred[p][1].Round(time.Microsecond),
				pt.Pred[p][2].Round(time.Microsecond), pt.Pred[p][3].Round(time.Microsecond),
				100*pt.Err[p][0], 100*pt.Err[p][1], 100*pt.Err[p][2], 100*pt.Err[p][3])
		}
	}
	fmt.Fprintf(w, "p99 mean error:")
	for p := Predictor(0); p < NumPredictors; p++ {
		fmt.Fprintf(w, "  %s %.1f%% (%d/%d)", p, 100*f.MeanErrP99[p], f.ScoredN[p], len(f.Points))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "all-quantile mean error:")
	for p := Predictor(0); p < NumPredictors; p++ {
		fmt.Fprintf(w, "  %s %.1f%%", p, 100*f.MeanErrAll[p])
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "hypotheses:")
	for _, h := range f.Hypotheses {
		fmt.Fprintf(w, "  %s %s: %s\n     claim: %s\n     evidence: %s\n",
			h.ID, verdictMark(h.Verdict), h.Verdict, h.Claim, h.Evidence)
	}
}
