package figures

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// The figure sweeps are embarrassingly parallel: every Run builds its own
// simulator, stacks, store and load generator from the spec, and the spec
// itself (calibration tables, workload closures) is immutable once built.
// RunMany exploits that by fanning the specs across a worker pool while
// keeping the output order-stable — result i is always spec i's — so a
// parallel sweep is byte-identical to a serial one. Determinism comes from
// per-run seeding (each run's RNG is derived from its own spec.Seed, never
// shared across runs), not from execution order.

// parallelism is the worker count the sweep helpers use, defaulting to
// GOMAXPROCS. It is read atomically so tests and cmd/e2efig's -parallel
// flag can adjust it without racing concurrent sweeps.
var parallelism atomic.Int32

// SetParallelism sets how many runs the sweep functions execute
// concurrently. n <= 0 restores the default (GOMAXPROCS); n == 1 forces
// serial execution. It returns the previous setting.
func SetParallelism(n int) int {
	return int(parallelism.Swap(int32(n)))
}

// Parallelism returns the current worker count for sweeps.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// RunMany executes every spec and returns the outputs in spec order,
// fanning the runs across up to workers goroutines (workers <= 0 means
// GOMAXPROCS). The results are identical to calling Run serially: runs
// share no mutable state, so only the wall-clock time depends on workers.
func RunMany(specs []RunSpec, workers int) []*RunOut {
	out := make([]*RunOut, len(specs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i := range specs {
			out[i] = Run(specs[i])
		}
		return out
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	// A panicking run (a simulator invariant violation) must not crash the
	// process from a bare goroutine: capture the first one and re-raise it
	// on the caller's goroutine, where tests and main can handle it.
	var panicked atomic.Value
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) || panicked.Load() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, fmt.Sprintf("figures: run %d panicked: %v", i, r))
						}
					}()
					out[i] = Run(specs[i])
				}()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
	return out
}

// runAll is the sweep-internal shorthand: RunMany at the configured
// parallelism.
func runAll(specs []RunSpec) []*RunOut {
	return RunMany(specs, Parallelism())
}
