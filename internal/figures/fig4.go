package figures

import (
	"fmt"
	"io"
	"math"
	"time"

	"e2ebatch/internal/core"
	"e2ebatch/internal/loadgen"
	"e2ebatch/internal/tcpsim"
)

// Fig4Point is one offered-load point of the Figure 4 sweep, in both
// batching modes.
type Fig4Point struct {
	Rate    float64
	Off, On Fig4Cell
}

// Fig4Cell is one (rate, mode) measurement.
type Fig4Cell struct {
	Measured time.Duration
	// P99 is the measured 99th-percentile latency — the tail metric the
	// paper defers to future studies (§2), reported here as an
	// extension.
	P99      time.Duration
	Achieved float64
	// SetMeasured and GetMeasured split latency by request kind: on the
	// Figure 4b mix, GETs' 16 KiB responses fill segments immediately and
	// largely escape Nagle holds, which is what skews the byte-weighted
	// estimate (§4).
	SetMeasured, GetMeasured time.Duration
	// Est holds the offline byte/packet/send-unit estimates from the
	// collected counters (the paper's prototype methodology).
	Est [tcpsim.NumUnits]core.Estimate
}

// Fig4Out is a full Figure 4 sweep plus its derived headline numbers.
type Fig4Out struct {
	Name   string
	SLO    time.Duration
	Points []Fig4Point

	// MeasuredCutoff and EstimatedCutoff are the lowest swept rates at
	// which batching wins by measurement and by byte-unit estimate
	// (the paper's vertical cutoff lines); 0 when none.
	MeasuredCutoff  float64
	EstimatedCutoff float64

	// OffSLOMax and OnSLOMax are the highest swept rates still meeting
	// the SLO in each mode; Extension is their ratio (paper: 1.93×).
	OffSLOMax, OnSLOMax float64
	Extension           float64

	// BoundaryRate is the interpolated offered load at which the
	// batching-off curve crosses the SLO (the paper's 37.5 kRPS), and
	// LatencyGain is SLO / on-mode-latency interpolated at that rate —
	// the paper's "2.80× at 37.5 kRPS" comparison.
	BoundaryRate float64
	LatencyGain  float64
}

// DefaultFig4Rates is the sweep grid.
func DefaultFig4Rates() []float64 {
	rates := make([]float64, 0, 18)
	for r := 5000.0; r <= 90000; r += 5000 {
		rates = append(rates, r)
	}
	return rates
}

// Fig4a runs the homogeneous 16 KiB SET sweep of Figure 4a.
func Fig4a(cal Calib, rates []float64, dur time.Duration, seed int64) *Fig4Out {
	return fig4(cal, rates, dur, seed, "Figure 4a (100% SET)", nil, false)
}

// Fig4b runs the 95:5 SET:GET mix of Figure 4b, whose 16 KiB GET responses
// break the byte-based approximation.
func Fig4b(cal Calib, rates []float64, dur time.Duration, seed int64) *Fig4Out {
	wl := loadgen.MixedWorkload(cal.KeySize, cal.ValSize, 950)
	return fig4(cal, rates, dur, seed, "Figure 4b (95% SET / 5% GET)", wl, true)
}

func fig4(cal Calib, rates []float64, dur time.Duration, seed int64, name string, wl loadgen.RequestMaker, preload bool) *Fig4Out {
	out := &Fig4Out{Name: name, SLO: cal.SLO}
	var specs []RunSpec
	for _, rate := range rates {
		for _, on := range []bool{false, true} {
			specs = append(specs, RunSpec{
				Calib:       cal,
				Seed:        seed,
				Rate:        rate,
				Duration:    dur,
				BatchOn:     on,
				Workload:    wl,
				PreloadKeys: preload,
			})
		}
	}
	outs := runAll(specs)
	for ri, rate := range rates {
		p := Fig4Point{Rate: rate}
		for mi, on := range []bool{false, true} {
			r := outs[2*ri+mi]
			cell := Fig4Cell{
				Measured: r.Res.Latency.Mean(),
				P99:      r.Res.Latency.Quantile(0.99),
				Achieved: r.Res.AchievedRate,
				Est:      r.Est,
			}
			if h := r.Res.ByKind[loadgen.KindSet]; h != nil {
				cell.SetMeasured = h.Mean()
			}
			if h := r.Res.ByKind[loadgen.KindGet]; h != nil {
				cell.GetMeasured = h.Mean()
			}
			if on {
				p.On = cell
			} else {
				p.Off = cell
			}
		}
		out.Points = append(out.Points, p)
	}
	out.derive()
	return out
}

// derive computes the cutoff lines and headline ratios from the sweep.
func (f *Fig4Out) derive() {
	for _, p := range f.Points {
		if f.MeasuredCutoff == 0 && p.On.Measured < p.Off.Measured {
			f.MeasuredCutoff = p.Rate
		}
		be := p.On.Est[tcpsim.UnitBytes]
		bo := p.Off.Est[tcpsim.UnitBytes]
		if f.EstimatedCutoff == 0 && be.Valid && bo.Valid && be.Latency < bo.Latency {
			f.EstimatedCutoff = p.Rate
		}
		if p.Off.Measured <= f.SLO && p.Rate > f.OffSLOMax {
			f.OffSLOMax = p.Rate
		}
		if p.On.Measured <= f.SLO && p.Rate > f.OnSLOMax {
			f.OnSLOMax = p.Rate
		}
	}
	if f.OffSLOMax > 0 {
		f.Extension = f.OnSLOMax / f.OffSLOMax
	}

	// Interpolate the exact rate where the off curve crosses the SLO,
	// then the on curve's latency at that rate.
	for i := 1; i < len(f.Points); i++ {
		lo, hi := f.Points[i-1], f.Points[i]
		if lo.Off.Measured > f.SLO || hi.Off.Measured <= f.SLO {
			continue
		}
		frac := float64(f.SLO-lo.Off.Measured) / float64(hi.Off.Measured-lo.Off.Measured)
		f.BoundaryRate = lo.Rate + frac*(hi.Rate-lo.Rate)
		onAt := float64(lo.On.Measured) + frac*float64(hi.On.Measured-lo.On.Measured)
		if onAt > 0 {
			f.LatencyGain = float64(f.SLO) / onAt
		}
		break
	}
}

// CutoffsCoincide reports whether the measured and estimated cutoff lines
// fall within one sweep step of each other — the paper's accuracy criterion
// for Figure 4a (and its failure criterion for 4b).
func (f *Fig4Out) CutoffsCoincide(step float64) bool {
	if f.MeasuredCutoff == 0 || f.EstimatedCutoff == 0 {
		return false
	}
	return math.Abs(f.MeasuredCutoff-f.EstimatedCutoff) <= step
}

// WriteFig4 renders the sweep table and headline numbers.
func WriteFig4(w io.Writer, f *Fig4Out) {
	fmt.Fprintf(w, "%s — mean latency vs offered load (SLO %v)\n", f.Name, f.SLO)
	fmt.Fprintf(w, "%8s | %12s %12s | %12s %12s | winner\n",
		"kRPS", "meas off", "est(B) off", "meas on", "est(B) on")
	for _, p := range f.Points {
		winner := "off"
		if p.On.Measured < p.Off.Measured {
			winner = "on"
		}
		fmt.Fprintf(w, "%8.1f | %12v %12v | %12v %12v | %s\n",
			p.Rate/1000,
			p.Off.Measured.Round(time.Microsecond), fmtEst(p.Off.Est[tcpsim.UnitBytes]),
			p.On.Measured.Round(time.Microsecond), fmtEst(p.On.Est[tcpsim.UnitBytes]),
			winner)
	}
	fmt.Fprintf(w, "measured cutoff: %.1f kRPS, estimated cutoff: %.1f kRPS\n",
		f.MeasuredCutoff/1000, f.EstimatedCutoff/1000)
	fmt.Fprintf(w, "SLO range: off <= %.1f kRPS, on <= %.1f kRPS (extension %.2fx; paper: 1.93x)\n",
		f.OffSLOMax/1000, f.OnSLOMax/1000, f.Extension)
	fmt.Fprintf(w, "at the off-mode SLO boundary (%.1f kRPS): batching latency %.2fx lower (paper: 2.80x at 37.5 kRPS)\n",
		f.BoundaryRate/1000, f.LatencyGain)
}

func fmtEst(e core.Estimate) string {
	if !e.Valid {
		return "-"
	}
	return e.Latency.Round(time.Microsecond).String()
}

// WriteTail renders the tail-latency view of a sweep — the extension the
// paper defers ("we focus on average performance in this work and defer
// metrics like tail latency to future studies", §2). The qualitative
// question: does the batching crossover move when judged by p99 instead of
// the mean?
func WriteTail(w io.Writer, f *Fig4Out) {
	fmt.Fprintf(w, "%s — p99 latency vs offered load (tail-latency extension)\n", f.Name)
	fmt.Fprintf(w, "%8s | %12s %12s | %12s %12s | p99 winner\n",
		"kRPS", "mean off", "p99 off", "mean on", "p99 on")
	var p99Cutoff float64
	for _, p := range f.Points {
		winner := "off"
		if p.On.P99 < p.Off.P99 {
			winner = "on"
			if p99Cutoff == 0 {
				p99Cutoff = p.Rate
			}
		}
		fmt.Fprintf(w, "%8.1f | %12v %12v | %12v %12v | %s\n",
			p.Rate/1000,
			p.Off.Measured.Round(time.Microsecond), p.Off.P99.Round(time.Microsecond),
			p.On.Measured.Round(time.Microsecond), p.On.P99.Round(time.Microsecond),
			winner)
	}
	fmt.Fprintf(w, "p99 cutoff: %.1f kRPS (mean cutoff: %.1f kRPS)\n",
		p99Cutoff/1000, f.MeasuredCutoff/1000)
}

// P99Cutoff returns the lowest swept rate where batching wins on p99.
func (f *Fig4Out) P99Cutoff() float64 {
	for _, p := range f.Points {
		if p.On.P99 < p.Off.P99 {
			return p.Rate
		}
	}
	return 0
}
