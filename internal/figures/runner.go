package figures

import (
	"time"

	"e2ebatch/internal/core"
	"e2ebatch/internal/engine"
	"e2ebatch/internal/faults"
	"e2ebatch/internal/hints"
	"e2ebatch/internal/kv"
	"e2ebatch/internal/loadgen"
	"e2ebatch/internal/netem"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
	"e2ebatch/internal/tcpsim"
	"e2ebatch/internal/trace"
)

// DynamicSpec enables estimate-driven on/off toggling during the run
// (the policy the paper argues for, §4-§5).
type DynamicSpec struct {
	Interval  time.Duration // decision tick (≈ a kernel tick, §5)
	Objective policy.Objective
	Toggler   policy.TogglerConfig
	Unit      tcpsim.Unit
	Initial   policy.Mode
	// UseUCB selects the UCB1 bandit controller instead of ε-greedy.
	UseUCB bool
	// MaxRemoteAge bounds the age of the peer's metadata before the
	// estimator degrades to the local-only view (core.Estimator). Zero
	// disables the staleness check.
	MaxRemoteAge time.Duration
	// TailQuantile, when nonzero, drives the controller with the composed
	// tail estimate's quantile instead of the mean (engine.Config) — the
	// "p99 ≤ D_max" policy. It also upgrades the metadata exchange to v2
	// frames so the tails exist to compose.
	TailQuantile float64
	// TailsV1Peer, with TailQuantile set, keeps the exchange at v1 (bare
	// counters, no histograms): the chaos scenario where the policy demands
	// a tail the wire never delivers, so every tick abstains and the
	// controller must retreat to its safe mode.
	TailsV1Peer bool
	// Audit, when non-nil, attaches an online estimator audit to the
	// dynamic endpoint (engine.Config.Audit): drifting audits route ticks
	// degraded. Like RunSpec.Observer it is an engine-defined interface,
	// so this package stays free of the observability plane and a nil
	// audit leaves runs byte-identical.
	Audit engine.AuditSource
}

// DefaultDynamicSpec returns the toggling setup used by the experiments: a
// 1 ms tick with the paper's throughput-under-SLO objective. The 5 ms
// staleness bound tolerates a few missed exchange opportunities at the tick
// rate before the estimator declares the peer's view stale.
func DefaultDynamicSpec(slo time.Duration) *DynamicSpec {
	return &DynamicSpec{
		Interval:     time.Millisecond,
		Objective:    policy.ThroughputUnderSLO{SLO: slo},
		Toggler:      policy.DefaultTogglerConfig(),
		Unit:         tcpsim.UnitBytes,
		Initial:      policy.BatchOff,
		MaxRemoteAge: 5 * time.Millisecond,
	}
}

// AIMDSpec enables AIMD control of the sender cork threshold (§5 "Better
// Batching Heuristics").
type AIMDSpec struct {
	Interval       time.Duration
	Min, Max, Step int
	Backoff        float64
	SLO            time.Duration
}

// DefaultAIMDSpec returns the AIMD setup used by the experiments.
func DefaultAIMDSpec(slo time.Duration) *AIMDSpec {
	return &AIMDSpec{
		Interval: time.Millisecond,
		Min:      1448,
		Max:      64 << 10,
		Step:     8 << 10,
		Backoff:  0.9,
		SLO:      slo,
	}
}

// RunSpec describes one experiment run.
type RunSpec struct {
	Calib Calib
	Seed  int64

	Rate     float64
	Duration time.Duration
	// RateFn modulates the offered rate over virtual time (the workload
	// zoo's bursty/diurnal arrival processes); nil keeps Rate constant.
	RateFn func(elapsed time.Duration) float64

	// BatchOn selects static batching mode (ignored when Dynamic or
	// AIMD is set).
	BatchOn bool
	Dynamic *DynamicSpec
	AIMD    *AIMDSpec

	// Workload overrides the default SET workload.
	Workload loadgen.RequestMaker
	// PreloadKeys populates the store so GETs hit (Figure 4b).
	PreloadKeys bool

	// ClientScale multiplies client-side costs (Figure 2's VM client).
	ClientScale float64

	// TraceInterval is the ethtool-style sampling period (default 1 ms).
	TraceInterval time.Duration
	// WithHints attaches a create/complete tracker (§3.3).
	WithHints bool
	// SyscallBatch > 1 makes the client batch requests per send(2).
	SyscallBatch int

	// GRO enables receive-side coalescing on both hosts.
	GRO bool
	// LossProb injects packet loss on the link (with RTO recovery).
	LossProb float64
	// WindowEvery enables the latency-over-time series in the result.
	WindowEvery time.Duration
	// ExchangeInterval overrides the metadata-exchange rate limit
	// (zero keeps the calibration default: state on every segment).
	ExchangeInterval time.Duration
	// OnlineEstimateEvery, when positive, samples the online (wire-
	// exchange-fed) estimator at this period without driving any
	// policy, accumulating OnlineAvg/OnlineCount — used by the §5
	// exchange-frequency ablation.
	OnlineEstimateEvery time.Duration

	// TailCapture enables v2 (histogram-carrying) exchanges and captures
	// the cumulative per-queue delay histograms of both endpoints at warmup
	// and at the end of the run, composing them offline into RunOut.TailEst
	// — the tail analogue of the steady-state mean estimate in Est.
	TailCapture bool

	// Faults schedules a fault-injection plan against the run (package
	// faults). Loss windows force an RTO, exactly as LossProb does.
	Faults *faults.Plan

	// Observer, when non-nil, receives every dynamic-endpoint tick with
	// the raw samples attached (engine.Config.Observer) — the telemetry
	// seam. Nil keeps golden runs allocation- and byte-identical.
	Observer engine.Observer
	// OnComplete, when non-nil, observes every completed request
	// (loadgen.Config.OnComplete): the per-request seam span tracing and
	// the sim-vs-span digest tests consume. Timestamps are virtual-time
	// nanoseconds; reqID is the FIFO completion index.
	OnComplete func(reqID uint64, scheduledNs, completedNs int64)
}

// RunOut collects everything a figure needs from one run.
type RunOut struct {
	Res *loadgen.Result
	Log *trace.Log

	// Est holds the steady-state offline estimate per unit mode.
	Est [tcpsim.NumUnits]core.Estimate
	// TailEst is the composed end-to-end tail estimate over the same
	// steady-state window, byte units (valid only for TailCapture runs).
	TailEst core.TailEstimate
	// HintAvgs is the hint-tracker estimate (valid when WithHints).
	HintAvgs qstate.Avgs

	ClientAppUtil, ClientSoftUtil float64
	ServerAppUtil, ServerSoftUtil float64

	ServerStats            kv.SimServerStats
	ClientConn, ServerConn tcpsim.Stats
	TogglerStats           policy.TogglerStats
	FinalMode              policy.Mode
	// OnShare is the fraction of decision ticks spent in batch-on mode
	// (Dynamic runs).
	OnShare         float64
	FinalCork       int
	OnlineEstimates int // valid per-tick online estimates (Dynamic)

	// OnlineAvg is the mean of valid per-tick online latency estimates
	// and OnlineCount their number (OnlineEstimateEvery runs).
	OnlineAvg   time.Duration
	OnlineCount int

	// DegradedTicks counts Dynamic decision ticks whose estimate ran
	// without usable peer metadata; TotalTicks is all decision ticks.
	DegradedTicks int
	TotalTicks    int
	// TailAbstainedTicks counts the DegradedTicks subset where a
	// tail-targeting policy met a valid mean but no composed tail.
	TailAbstainedTicks int
	// AuditDriftTicks counts the DegradedTicks subset caused by a drifting
	// estimator audit (DynamicSpec.Audit).
	AuditDriftTicks int
}

// Run executes one experiment run and returns its outputs.
func Run(spec RunSpec) *RunOut {
	cal := spec.Calib
	s := sim.New(spec.Seed + 1)

	cs := tcpsim.NewStack(s, "client")
	cs.TxCosts, cs.RxCosts = cal.ClientTx, cal.ClientRx
	ss := tcpsim.NewStack(s, "server")
	ss.TxCosts, ss.RxCosts = cal.ServerTx, cal.ServerRx

	scale := spec.ClientScale
	if scale <= 0 {
		scale = 1
	}
	if scale != 1 {
		cs.TxCosts = cs.TxCosts.Scale(scale)
		cs.RxCosts = cs.RxCosts.Scale(scale)
	}

	linkCfg := cal.Link
	if spec.LossProb > 0 {
		linkCfg.LossProb = spec.LossProb
	}
	link := netem.NewLink(s, "wire", linkCfg)
	tcpCfg := cal.TCP
	if (spec.LossProb > 0 || spec.Faults.NeedsRTO()) && tcpCfg.RTO == 0 {
		tcpCfg.RTO = 5 * time.Millisecond
	}
	tcpCfg.Nagle = spec.BatchOn && spec.Dynamic == nil && spec.AIMD == nil
	if tcpCfg.Nagle {
		tcpCfg.CorkBytes = cal.CorkOnBytes
	}
	if spec.AIMD != nil {
		tcpCfg.Nagle = true
		tcpCfg.CorkBytes = spec.AIMD.Min
	}
	if spec.Dynamic != nil {
		tcpCfg.Nagle = spec.Dynamic.Initial == policy.BatchOn
		tcpCfg.CorkBytes = cal.CorkOnBytes
	}
	if spec.ExchangeInterval > 0 {
		tcpCfg.ExchangeInterval = spec.ExchangeInterval
	}
	if spec.TailCapture || (spec.Dynamic != nil && spec.Dynamic.TailQuantile > 0 && !spec.Dynamic.TailsV1Peer) {
		tcpCfg.ExchangeTails = true
	}
	tcpCfg.GRO = spec.GRO
	cc, sc := tcpsim.Connect(cs, ss, link, tcpCfg)

	store := kv.NewStore(func() time.Duration { return s.Now().Duration() })
	if spec.PreloadKeys {
		val := make([]byte, cal.ValSize)
		for _, k := range loadgen.Keys(cal.KeySize, 16) {
			store.Set(string(k), val, 0)
		}
	}
	srv := kv.NewSimServer(kv.NewEngine(store), sc, cal.Server)

	lcfg := cal.Load
	lcfg.Rate = spec.Rate
	lcfg.RateFn = spec.RateFn
	lcfg.Duration = spec.Duration
	lcfg.Warmup = spec.Duration / 5
	lcfg.Drain = 50 * time.Millisecond
	lcfg.SyscallBatch = spec.SyscallBatch
	lcfg.WindowEvery = spec.WindowEvery
	lcfg.OnComplete = spec.OnComplete
	if scale != 1 {
		lcfg.SendCosts = lcfg.SendCosts.Scale(scale)
		lcfg.ReadCosts = lcfg.ReadCosts.Scale(scale)
		lcfg.PerResponse = time.Duration(float64(lcfg.PerResponse) * scale)
		lcfg.PerRespByteNS *= scale
	}
	wl := spec.Workload
	if wl == nil {
		wl = loadgen.SetWorkload(cal.KeySize, cal.ValSize)
	}
	gen := loadgen.New(s, cc, lcfg, wl)

	out := &RunOut{}

	if spec.WithHints {
		gen.Hints = hints.NewTracker(func() qstate.Time { return qstate.Time(s.Now()) })
	}

	ti := spec.TraceInterval
	if ti <= 0 {
		ti = time.Millisecond
	}
	col := trace.NewCollector(s, cc, sc, ti)

	// All three control variants below are the shared engine loop over the
	// same connection pair; this function only translates the spec into an
	// engine.Config and maps the accounting back out.
	clock := engine.SimClock{Sim: s}
	var endpoints []*engine.Endpoint

	// Estimate-driven dynamic toggling: one engine tick applies the chosen
	// mode to both endpoints, exactly what a kernel running the paper's
	// policy on each side would do.
	var tog engine.Controller
	var dynEp *engine.Endpoint
	if spec.Dynamic != nil {
		d := spec.Dynamic
		if d.UseUCB {
			tog = policy.NewUCBToggler(d.Objective, d.Initial)
		} else {
			tog = policy.NewToggler(d.Objective, d.Toggler, d.Initial, s.Rand())
		}
		dynEp = engine.New(engine.Config{
			Controller:   tog,
			Initial:      d.Initial,
			CorkOnBytes:  cal.CorkOnBytes,
			MaxRemoteAge: d.MaxRemoteAge,
			TailQuantile: d.TailQuantile,
			Observer:     spec.Observer,
			Audit:        d.Audit,
		}, tcpsim.NewEnginePort(cc, sc, d.Unit))
		dynEp.Start(clock, d.Interval)
		endpoints = append(endpoints, dynEp)
	}

	if spec.OnlineEstimateEvery > 0 {
		// A passive endpoint: estimates accumulate, no policy drives.
		var sum time.Duration
		warm := spec.Duration / 5
		onEp := engine.New(engine.Config{
			OnTick: func(now qstate.Time, r engine.TickResult) {
				if r.Estimate.Valid && time.Duration(now) >= warm {
					sum += r.Estimate.Latency
					out.OnlineCount++
					out.OnlineAvg = sum / time.Duration(out.OnlineCount)
				}
			},
		}, tcpsim.NewEnginePort(cc, sc, tcpsim.UnitBytes))
		onEp.Start(clock, spec.OnlineEstimateEvery)
	}

	var aimd *policy.AIMD
	if spec.AIMD != nil {
		a := spec.AIMD
		aimd = policy.NewAIMD(a.Min, a.Max, a.Step, a.Backoff)
		aimdEp := engine.New(engine.Config{
			AIMD: &engine.AIMDPolicy{Ctl: aimd, SLO: a.SLO},
		}, tcpsim.NewEnginePort(cc, sc, tcpsim.UnitBytes))
		aimdEp.Start(clock, a.Interval)
		endpoints = append(endpoints, aimdEp)
	}

	// Tail capture: snapshot both endpoints' cumulative delay histograms at
	// warmup; the end-of-run pair is read after the generator returns. The
	// composition happens offline (steadyTail), mirroring steadyEstimate.
	var tailFirst [2]qstate.WireTails
	var tailCaptured bool
	if spec.TailCapture {
		s.At(sim.Time(lcfg.Warmup), func() {
			tailFirst[0] = cc.LocalTails(tcpsim.UnitBytes)
			tailFirst[1] = sc.LocalTails(tcpsim.UnitBytes)
			tailCaptured = true
		})
	}

	if spec.Faults != nil {
		// Plans are validated up front; a bad plan is a spec bug, like an
		// out-of-range netem config.
		faults.MustApply(s, spec.Faults, faults.Targets{
			Link:    link,
			Client:  cc,
			Staller: srv,
			// A reset invalidates the counter history on both sides of
			// the exchange: re-prime the estimators rather than let them
			// difference across the discontinuity.
			OnReset: func() {
				for _, ep := range endpoints {
					ep.Reset()
				}
			},
			OnFault: func(kind, detail string) { col.Log().AddEvent(s.Now(), kind, detail) },
		})
	}

	out.Res = gen.Run()
	col.Stop()
	out.Log = col.Log()
	for u := 0; u < tcpsim.NumUnits; u++ {
		out.Est[u] = steadyEstimate(out.Log, tcpsim.Unit(u), spec.Duration/5)
	}
	if tailCaptured {
		lastC := cc.LocalTails(tcpsim.UnitBytes)
		lastS := sc.LocalTails(tcpsim.UnitBytes)
		out.TailEst = steadyTail(out.Log, spec.Duration/5, &tailFirst[0], &lastC, &tailFirst[1], &lastS)
	}
	if gen.Hints != nil {
		out.HintAvgs = hintOverall(gen.Hints)
	}

	elapsed := s.Now().Duration()
	out.ClientAppUtil = float64(cs.AppCPU.BusyTime()) / float64(elapsed)
	out.ClientSoftUtil = float64(cs.SoftirqCPU.BusyTime()) / float64(elapsed)
	out.ServerAppUtil = float64(ss.AppCPU.BusyTime()) / float64(elapsed)
	out.ServerSoftUtil = float64(ss.SoftirqCPU.BusyTime()) / float64(elapsed)

	out.ServerStats = srv.Stats()
	out.ClientConn = cc.Stats()
	out.ServerConn = sc.Stats()
	if tog != nil {
		st := dynEp.Stats()
		out.TotalTicks = st.TotalTicks
		out.DegradedTicks = st.DegradedTicks
		out.TailAbstainedTicks = st.TailAbstainedTicks
		out.AuditDriftTicks = st.AuditDriftTicks
		out.OnlineEstimates = st.ValidEstimates
		out.TogglerStats = tog.Stats()
		out.FinalMode = tog.Mode()
		if st.TotalTicks > 0 {
			out.OnShare = float64(st.OnTicks) / float64(st.TotalTicks)
		}
	}
	if aimd != nil {
		out.FinalCork = aimd.Limit()
	}
	return out
}

// steadyEstimate analyzes the log from after warmup to the end as one
// interval, mirroring the paper's offline steady-state analysis.
func steadyEstimate(l *trace.Log, unit tcpsim.Unit, warmup time.Duration) core.Estimate {
	recs := l.Records
	if len(recs) < 2 {
		return core.Estimate{}
	}
	i := 0
	for i < len(recs)-1 && recs[i].At.Duration() < warmup {
		i++
	}
	first, last := recs[i], recs[len(recs)-1]
	var local, remote core.Delays
	local = core.DelaysBetween(first.Client[unit], last.Client[unit])
	remote = core.DelaysBetween(first.Server[unit], last.Server[unit])
	return core.EstimateE2E(local, remote)
}

// steadyTail composes the offline end-to-end tail estimate over the
// post-warmup window: per-queue interval distributions come from the
// cumulative histograms captured at warmup and at the end, and the
// ack-delay mean shifts from the same trace window steadyEstimate uses.
func steadyTail(l *trace.Log, warmup time.Duration, firstC, lastC, firstS, lastS *qstate.WireTails) core.TailEstimate {
	lt, lok := core.TailDistsBetween(firstC, lastC)
	rt, rok := core.TailDistsBetween(firstS, lastS)
	if !lok || !rok {
		return core.TailEstimate{}
	}
	recs := l.Records
	if len(recs) < 2 {
		return core.TailEstimate{}
	}
	i := 0
	for i < len(recs)-1 && recs[i].At.Duration() < warmup {
		i++
	}
	first, last := recs[i], recs[len(recs)-1]
	local := core.DelaysBetween(first.Client[tcpsim.UnitBytes], last.Client[tcpsim.UnitBytes])
	remote := core.DelaysBetween(first.Server[tcpsim.UnitBytes], last.Server[tcpsim.UnitBytes])
	return core.ComposeTail(&lt, &rt, local, remote)
}

// hintOverall reads the tracker's full-run averages.
func hintOverall(tr *hints.Tracker) qstate.Avgs {
	snap := tr.Snapshot()
	return qstate.GetAvgs(qstate.Snapshot{}, snap)
}
