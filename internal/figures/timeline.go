package figures

import (
	"fmt"
	"io"
	"strings"
	"time"

	"e2ebatch/internal/loadgen"
)

// TimelineOut is the convergence trace: per-window mean latency of a
// dynamic-toggling run started in the wrong mode at a load where that mode
// collapses, next to the two static baselines — showing the estimator-driven
// policy digging the system out in a few ticks.
type TimelineOut struct {
	Rate     float64
	Window   time.Duration
	Off, On  []loadgen.Window
	Dynamic  []loadgen.Window
	StaticOn time.Duration
}

// Timeline runs the three traces at the given rate.
func Timeline(cal Calib, rate float64, dur time.Duration, seed int64) *TimelineOut {
	window := 20 * time.Millisecond
	out := &TimelineOut{Rate: rate, Window: window}
	base := RunSpec{
		Calib:       cal,
		Seed:        seed,
		Rate:        rate,
		Duration:    dur,
		WindowEvery: window,
	}
	off, on, dyn := base, base, base
	on.BatchOn = true
	dyn.Dynamic = DefaultDynamicSpec(cal.SLO)
	outs := runAll([]RunSpec{off, on, dyn})
	out.Off = outs[0].Res.Windows
	out.On = outs[1].Res.Windows
	out.StaticOn = outs[1].Res.Latency.Mean()
	out.Dynamic = outs[2].Res.Windows
	return out
}

// WriteTimeline renders the convergence trace with a crude log-scale bar.
func WriteTimeline(w io.Writer, t *TimelineOut) {
	fmt.Fprintf(w, "Convergence timeline — %.0f kRPS, %v windows (dynamic starts batch-off)\n",
		t.Rate/1000, t.Window)
	fmt.Fprintf(w, "%8s | %10s %10s %10s | dynamic trend\n", "t", "off", "on", "dynamic")
	n := len(t.Dynamic)
	if len(t.Off) < n {
		n = len(t.Off)
	}
	if len(t.On) < n {
		n = len(t.On)
	}
	for i := 0; i < n; i++ {
		d := t.Dynamic[i].Mean()
		bar := latencyBar(d)
		fmt.Fprintf(w, "%8v | %10v %10v %10v | %s\n",
			t.Dynamic[i].Start, t.Off[i].Mean().Round(time.Microsecond),
			t.On[i].Mean().Round(time.Microsecond), d.Round(time.Microsecond), bar)
	}
}

// latencyBar renders a log-scaled bar: one '#' per factor of ~2 above 50µs.
func latencyBar(d time.Duration) string {
	if d <= 0 {
		return ""
	}
	n := 0
	for v := d; v > 50*time.Microsecond && n < 24; v /= 2 {
		n++
	}
	return strings.Repeat("#", n)
}
