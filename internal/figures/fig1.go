package figures

import (
	"fmt"
	"io"

	"e2ebatch/internal/analytic"
)

// Fig1Row is one panel of the paper's Figure 1: the batching outcome for a
// particular client processing cost c.
type Fig1Row struct {
	C       float64
	Batch   analytic.Outcome
	NoBatch analytic.Outcome
	// Verdict summarizes the panel: "both-better", "both-worse", or
	// "mixed" (throughput better, latency worse).
	Verdict string
}

// Fig1 reproduces Figure 1 with the paper's α=2, β=4, n=3 for the given c
// values (the paper shows c = 1, 3, 5).
func Fig1(cs ...float64) []Fig1Row {
	if len(cs) == 0 {
		cs = []float64{1, 3, 5}
	}
	rows := make([]Fig1Row, len(cs))
	for i, c := range cs {
		cmp := analytic.Compare(analytic.PaperParams(c))
		verdict := "mixed"
		switch {
		case cmp.LatencyImproved && cmp.ThroughputImproved:
			verdict = "both-better"
		case !cmp.LatencyImproved && !cmp.ThroughputImproved:
			verdict = "both-worse"
		}
		rows[i] = Fig1Row{C: c, Batch: cmp.Batch, NoBatch: cmp.NoBatch, Verdict: verdict}
	}
	return rows
}

// WriteFig1 renders the Figure 1 table.
func WriteFig1(w io.Writer, rows []Fig1Row) {
	fmt.Fprintln(w, "Figure 1 — batching outcome vs client cost c (α=2, β=4, n=3)")
	fmt.Fprintf(w, "%4s | %13s %13s | %13s %13s | %s\n",
		"c", "batch avgLat", "batch tput", "plain avgLat", "plain tput", "batching is")
	for _, r := range rows {
		fmt.Fprintf(w, "%4.0f | %13.2f %13.3f | %13.2f %13.3f | %s\n",
			r.C, r.Batch.AvgLatency, r.Batch.Throughput,
			r.NoBatch.AvgLatency, r.NoBatch.Throughput, r.Verdict)
	}
}
