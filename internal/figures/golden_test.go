package figures

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"testing"
	"time"
)

// TestGoldenParity pins the rendered sweep outputs byte-for-byte at fixed
// seeds. The hashes were recorded from the hand-wired per-backend control
// loops immediately before the estimate→policy tick moved into
// internal/engine; the engine rebase (and any future refactor of the tick)
// must reproduce them exactly — same estimates, same toggler decisions,
// same degraded-tick routing, same rendered tables. Run with
// E2E_GOLDEN_PRINT=1 to print the current hashes instead of asserting.
func TestGoldenParity(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	const dur = 150 * time.Millisecond

	cases := []struct {
		name   string
		want   string
		render func(w *bytes.Buffer)
	}{
		{
			name: "fig1",
			want: "e2e8116550f3b4d715b65879d091f652715327da43a80f357ab57259a843de6d",
			render: func(w *bytes.Buffer) {
				WriteFig1(w, Fig1())
			},
		},
		{
			name: "fig2",
			want: "d1b16d877c7732a4560c3c18befe2cb002835684384fdbe1083180b263da8f83",
			render: func(w *bytes.Buffer) {
				WriteFig2(w, Fig2(cal, dur, 11))
			},
		},
		{
			name: "fig4a",
			want: "a0126b6ede64a04172a97c7e5b64163112bd4dd445e61479ed97a57b9d3fb683",
			render: func(w *bytes.Buffer) {
				WriteFig4(w, Fig4a(cal, []float64{5000, 50000, 85000}, dur, 7))
			},
		},
		{
			name: "toggle",
			want: "5e6fb1b731a97e03ab19a5194f50550e76e52f71e95204389e6182bd51c89392",
			render: func(w *bytes.Buffer) {
				WriteToggle(w, Toggle(cal, []float64{50000}, 200*time.Millisecond, 7))
			},
		},
		{
			name: "aimd",
			want: "eb2c2e994bb45024896202b0c30f40a0bfa972cb4b2c5845100208ed893ca0c0",
			render: func(w *bytes.Buffer) {
				WriteAIMD(w, AIMD(cal, []float64{60000}, 200*time.Millisecond, 7))
			},
		},
		{
			name: "exchange",
			want: "4f85d80e2615026bfdf3ecbe3fdb9a2f24d3f0fab25e1a0ea3e7fc24d225caca",
			render: func(w *bytes.Buffer) {
				WriteExchangeAblation(w, ExchangeAblation(cal, 30000, []time.Duration{0, 5 * time.Millisecond}, dur, 7))
			},
		},
		{
			name: "faults",
			want: "6910b15879572825730c66210653385ca0f7000782b8af5e73a6f22929f71052",
			render: func(w *bytes.Buffer) {
				WriteFaultSweep(w, FaultSweep(cal, 30000, []float64{0, 0.02}, "combo", dur, 7))
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			tc.render(&buf)
			sum := sha256.Sum256(buf.Bytes())
			got := hex.EncodeToString(sum[:])
			if os.Getenv("E2E_GOLDEN_PRINT") != "" {
				t.Logf("golden %s: %s", tc.name, got)
				return
			}
			if got != tc.want {
				t.Errorf("%s output drifted from the pre-refactor loop:\nhash %s, want %s\noutput:\n%s",
					tc.name, got, tc.want, buf.String())
			}
		})
	}
}
