package figures

import (
	"testing"
	"time"
)

// TestOnlineEstimatorSurvivesStaleExchanges: when the peer's metadata
// exchange all but stops (interval far beyond the run), the online
// estimator must degrade gracefully to its local view instead of going
// silent or producing garbage.
func TestOnlineEstimatorSurvivesStaleExchanges(t *testing.T) {
	out := Run(RunSpec{
		Calib:               DefaultCalib(),
		Seed:                5,
		Rate:                30000,
		Duration:            200 * time.Millisecond,
		BatchOn:             false,
		ExchangeInterval:    time.Hour, // only the very first exchange happens
		OnlineEstimateEvery: 5 * time.Millisecond,
	})
	if out.OnlineCount < 20 {
		t.Fatalf("online estimates = %d, want steady stream from the local view", out.OnlineCount)
	}
	// Local-view-only estimates miss the remote unread term but must
	// stay in the right regime (tens of µs to a few hundred µs at 30k).
	if out.OnlineAvg < 20*time.Microsecond || out.OnlineAvg > time.Millisecond {
		t.Fatalf("stale-exchange online estimate %v implausible", out.OnlineAvg)
	}
	// The offline (both-sided) analysis is unaffected by exchange rate.
	if !out.Est[0].Valid {
		t.Fatal("offline estimate invalid")
	}
}

// TestHeadlineClaimsAcrossSeeds: the Figure 4a ordering claims must hold
// for seeds other than the one the tables use.
func TestHeadlineClaimsAcrossSeeds(t *testing.T) {
	skipIfShort(t)
	cal := DefaultCalib()
	for _, seed := range []int64{19, 101} {
		low := Run(RunSpec{Calib: cal, Seed: seed, Rate: 5000, Duration: 200 * time.Millisecond, BatchOn: false})
		lowOn := Run(RunSpec{Calib: cal, Seed: seed, Rate: 5000, Duration: 200 * time.Millisecond, BatchOn: true})
		if lowOn.Res.Latency.Mean() <= low.Res.Latency.Mean() {
			t.Errorf("seed %d: batching should hurt at 5k (off=%v on=%v)",
				seed, low.Res.Latency.Mean(), lowOn.Res.Latency.Mean())
		}
		high := Run(RunSpec{Calib: cal, Seed: seed, Rate: 60000, Duration: 200 * time.Millisecond, BatchOn: false})
		highOn := Run(RunSpec{Calib: cal, Seed: seed, Rate: 60000, Duration: 200 * time.Millisecond, BatchOn: true})
		if highOn.Res.Latency.Mean()*3 >= high.Res.Latency.Mean() {
			t.Errorf("seed %d: batching should win >3x at 60k (off=%v on=%v)",
				seed, high.Res.Latency.Mean(), highOn.Res.Latency.Mean())
		}
		// Estimate ordering must match measured ordering at both ends.
		if (lowOn.Est[0].Latency < low.Est[0].Latency) != (lowOn.Res.Latency.Mean() < low.Res.Latency.Mean()) {
			t.Errorf("seed %d: estimate ordering wrong at 5k", seed)
		}
		if (highOn.Est[0].Latency < high.Est[0].Latency) != (highOn.Res.Latency.Mean() < high.Res.Latency.Mean()) {
			t.Errorf("seed %d: estimate ordering wrong at 60k", seed)
		}
	}
}

// TestLinkJitterDoesNotBreakEstimation: with jitter on the wire the whole
// pipeline must keep functioning and the estimate must stay in regime.
func TestLinkJitterDoesNotBreakEstimation(t *testing.T) {
	cal := DefaultCalib()
	cal.Link.Jitter = 5 * time.Microsecond
	out := Run(RunSpec{Calib: cal, Seed: 5, Rate: 20000, Duration: 200 * time.Millisecond})
	if out.Res.Dropped != 0 {
		t.Fatalf("dropped %d with jitter", out.Res.Dropped)
	}
	if !out.Est[0].Valid {
		t.Fatal("estimate invalid under jitter")
	}
	if e := out.Est[0].Latency; e <= 0 || e > time.Millisecond {
		t.Fatalf("estimate %v implausible under jitter", e)
	}
}
