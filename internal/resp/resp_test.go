package resp

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeSimpleTypes(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{OK(), "+OK\r\n"},
		{Pong(), "+PONG\r\n"},
		{Err("ERR boom"), "-ERR boom\r\n"},
		{Int(42), ":42\r\n"},
		{Int(-7), ":-7\r\n"},
		{Bulk([]byte("hello")), "$5\r\nhello\r\n"},
		{Bulk(nil), "$0\r\n\r\n"},
		{NullBulk(), "$-1\r\n"},
		{Value{Type: Array, Null: true}, "*-1\r\n"},
		{Value{Type: Array, Array: []Value{Int(1), Bulk([]byte("x"))}}, "*2\r\n:1\r\n$1\r\nx\r\n"},
	}
	for _, c := range cases {
		if got := string(AppendValue(nil, c.v)); got != c.want {
			t.Errorf("encode %v = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCommandEncoding(t *testing.T) {
	got := string(Command("SET", "k", "v"))
	want := "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"
	if got != want {
		t.Fatalf("Command = %q, want %q", got, want)
	}
}

func TestParseWholeValues(t *testing.T) {
	var p Parser
	p.Feed([]byte("+OK\r\n:123\r\n$3\r\nfoo\r\n*2\r\n+a\r\n+b\r\n$-1\r\n"))
	want := []Value{
		OK(),
		Int(123),
		Bulk([]byte("foo")),
		{Type: Array, Array: []Value{
			{Type: SimpleString, Str: []byte("a")},
			{Type: SimpleString, Str: []byte("b")},
		}},
		NullBulk(),
	}
	for i, w := range want {
		v, ok, err := p.Next()
		if err != nil || !ok {
			t.Fatalf("value %d: ok=%v err=%v", i, ok, err)
		}
		if v.String() != w.String() {
			t.Fatalf("value %d = %v, want %v", i, v, w)
		}
	}
	if _, ok, _ := p.Next(); ok {
		t.Fatal("extra value")
	}
	if p.Buffered() != 0 {
		t.Fatalf("buffered = %d", p.Buffered())
	}
}

func TestParseIncrementalByteAtATime(t *testing.T) {
	wire := AppendCommand(nil, []byte("SET"), []byte("key"), bytes.Repeat([]byte("v"), 100))
	var p Parser
	var got []Value
	for _, b := range wire {
		p.Feed([]byte{b})
		for {
			v, ok, err := p.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, v)
		}
	}
	if len(got) != 1 {
		t.Fatalf("values = %d, want 1", len(got))
	}
	if len(got[0].Array) != 3 || string(got[0].Array[0].Str) != "SET" {
		t.Fatalf("parsed %v", got[0])
	}
}

func TestParseSplitAcrossFeeds(t *testing.T) {
	wire := []byte("$10\r\n0123456789\r\n")
	for cut := 1; cut < len(wire); cut++ {
		var p Parser
		p.Feed(wire[:cut])
		if _, ok, err := p.Next(); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		} else if ok && cut < len(wire) {
			t.Fatalf("cut %d: complete too early", cut)
		}
		p.Feed(wire[cut:])
		v, ok, err := p.Next()
		if err != nil || !ok {
			t.Fatalf("cut %d: ok=%v err=%v", cut, ok, err)
		}
		if string(v.Str) != "0123456789" {
			t.Fatalf("cut %d: got %q", cut, v.Str)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, wire := range []string{
		":notanum\r\n",
		"$abc\r\n",
		"$-2\r\n",
		"*-2\r\n",
		"$3\r\nfooXY", // bad terminator
	} {
		var p Parser
		p.Feed([]byte(wire))
		_, ok, err := p.Next()
		if err == nil {
			t.Errorf("wire %q: ok=%v, want error", wire, ok)
		}
	}
}

func TestParseHugeDeclaredLengthRejected(t *testing.T) {
	var p Parser
	p.Feed([]byte("$999999999999\r\n"))
	if _, _, err := p.Next(); err == nil {
		t.Fatal("huge bulk length accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var gen func(depth int) Value
	gen = func(depth int) Value {
		switch k := rng.Intn(6); {
		case k == 0:
			return Value{Type: SimpleString, Str: []byte(strings.Repeat("s", rng.Intn(20)))}
		case k == 1:
			return Err("E%d", rng.Intn(100))
		case k == 2:
			return Int(rng.Int63() - rng.Int63())
		case k == 3:
			b := make([]byte, rng.Intn(1000))
			rng.Read(b)
			return Bulk(b)
		case k == 4:
			return NullBulk()
		default:
			if depth >= 3 {
				return Int(1)
			}
			n := rng.Intn(5)
			arr := make([]Value, n)
			for i := range arr {
				arr[i] = gen(depth + 1)
			}
			return Value{Type: Array, Array: arr}
		}
	}
	for trial := 0; trial < 300; trial++ {
		want := gen(0)
		wire := AppendValue(nil, want)
		var p Parser
		p.Feed(wire)
		got, ok, err := p.Next()
		if err != nil || !ok {
			t.Fatalf("trial %d: ok=%v err=%v wire=%q", trial, ok, err, wire)
		}
		if !valueEqual(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
		if p.Buffered() != 0 {
			t.Fatalf("trial %d: leftover %d bytes", trial, p.Buffered())
		}
	}
}

func valueEqual(a, b Value) bool {
	if a.Type != b.Type || a.Null != b.Null || a.Int != b.Int || !bytes.Equal(a.Str, b.Str) {
		return false
	}
	if len(a.Array) != len(b.Array) {
		return false
	}
	for i := range a.Array {
		if !valueEqual(a.Array[i], b.Array[i]) {
			return false
		}
	}
	return true
}

func TestPipelinedCommandsParseIndividually(t *testing.T) {
	var wire []byte
	for i := 0; i < 50; i++ {
		wire = AppendCommand(wire, []byte("PING"))
	}
	var p Parser
	p.Feed(wire)
	n := 0
	for {
		_, ok, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 50 {
		t.Fatalf("parsed %d commands, want 50", n)
	}
}

func TestParserCompaction(t *testing.T) {
	// Long-running parsers must not grow without bound.
	var p Parser
	wire := Command("PING")
	for i := 0; i < 10000; i++ {
		p.Feed(wire)
		if _, ok, err := p.Next(); !ok || err != nil {
			t.Fatalf("iter %d: ok=%v err=%v", i, ok, err)
		}
	}
	if cap(p.buf) > 4096 {
		t.Fatalf("parser buffer grew to %d bytes", cap(p.buf))
	}
}

func TestTakeLineProperty(t *testing.T) {
	check := func(pre []byte) bool {
		// Lines never contain CR or LF in valid RESP; sanitize.
		for i := range pre {
			if pre[i] == '\r' || pre[i] == '\n' {
				pre[i] = 'x'
			}
		}
		wire := append(append([]byte{}, pre...), '\r', '\n')
		line, n := takeLine(wire)
		return n == len(wire) && bytes.Equal(line, pre)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestValueStringDiagnostics(t *testing.T) {
	if s := Bulk(bytes.Repeat([]byte("a"), 100)).String(); !strings.Contains(s, "100 bytes") {
		t.Fatalf("big bulk string rendering = %q", s)
	}
	if NullBulk().String() != "$<null>" {
		t.Fatalf("null bulk = %q", NullBulk().String())
	}
}

func BenchmarkParseSetCommand(b *testing.B) {
	wire := AppendCommand(nil, []byte("SET"), bytes.Repeat([]byte("k"), 16), bytes.Repeat([]byte("v"), 16384))
	var p Parser
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Feed(wire)
		if _, ok, err := p.Next(); !ok || err != nil {
			b.Fatal("parse failed")
		}
	}
}

func TestInlineCommands(t *testing.T) {
	var p Parser
	p.Feed([]byte("PING\r\nSET  key \tvalue\r\n"))
	v, ok, err := p.Next()
	if err != nil || !ok {
		t.Fatalf("inline PING: %v %v", ok, err)
	}
	if v.Type != Array || len(v.Array) != 1 || string(v.Array[0].Str) != "PING" {
		t.Fatalf("inline PING = %v", v)
	}
	v, ok, err = p.Next()
	if err != nil || !ok {
		t.Fatalf("inline SET: %v %v", ok, err)
	}
	if len(v.Array) != 3 || string(v.Array[1].Str) != "key" || string(v.Array[2].Str) != "value" {
		t.Fatalf("inline SET = %v", v)
	}
}

func TestInlineIncomplete(t *testing.T) {
	var p Parser
	p.Feed([]byte("PIN"))
	if _, ok, err := p.Next(); ok || err != nil {
		t.Fatalf("partial inline: ok=%v err=%v", ok, err)
	}
	p.Feed([]byte("G\r\n"))
	v, ok, err := p.Next()
	if err != nil || !ok || string(v.Array[0].Str) != "PING" {
		t.Fatalf("completed inline = %v (%v, %v)", v, ok, err)
	}
}

func TestInlineEmptyLineRejected(t *testing.T) {
	var p Parser
	p.Feed([]byte(" \t\r\n"))
	if _, _, err := p.Next(); err == nil {
		t.Fatal("blank inline line accepted")
	}
}

func TestInlineOversizedRejected(t *testing.T) {
	var p Parser
	p.Feed(bytes.Repeat([]byte("x"), maxInlineLength+10))
	if _, _, err := p.Next(); err == nil {
		t.Fatal("unterminated oversized inline accepted")
	}
}

func TestInlineDrivesEngineCompatibleShape(t *testing.T) {
	// An inline command must produce the same Value shape as the framed
	// equivalent, so command engines treat both identically.
	var a, b Parser
	a.Feed([]byte("SET k v\r\n"))
	b.Feed(Command("SET", "k", "v"))
	va, _, _ := a.Next()
	vb, _, _ := b.Next()
	if !valueEqual(va, vb) {
		t.Fatalf("inline %v != framed %v", va, vb)
	}
}
