package resp

import (
	"bytes"
	"testing"
)

// FuzzParser feeds arbitrary bytes: the parser must never panic, and when
// it yields a value, re-encoding and re-parsing that value must be stable.
func FuzzParser(f *testing.F) {
	f.Add([]byte("+OK\r\n"))
	f.Add([]byte(":123\r\n"))
	f.Add([]byte("$3\r\nfoo\r\n"))
	f.Add([]byte("*2\r\n+a\r\n+b\r\n"))
	f.Add([]byte("$-1\r\n"))
	f.Add([]byte("PING\r\n"))
	f.Add([]byte("*1000000\r\n"))
	f.Add(Command("SET", "k", "v"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Parser
		p.Feed(data)
		for i := 0; i < 100; i++ {
			v, ok, err := p.Next()
			if err != nil || !ok {
				return
			}
			// Round-trip stability for parsed values.
			wire := AppendValue(nil, v)
			var q Parser
			q.Feed(wire)
			v2, ok2, err2 := q.Next()
			if err2 != nil || !ok2 {
				t.Fatalf("re-parse of encoded value failed: %v %v (wire %q)", ok2, err2, wire)
			}
			if !fuzzValueEqual(v, v2) {
				t.Fatalf("round trip changed value: %v -> %v", v, v2)
			}
		}
	})
}

// FuzzParserChunked: byte-at-a-time feeding must agree with whole-buffer
// feeding.
func FuzzParserChunked(f *testing.F) {
	f.Add([]byte("*2\r\n$1\r\na\r\n:5\r\n"))
	f.Add([]byte("GET key\r\n+OK\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return
		}
		var whole Parser
		whole.Feed(data)
		var wholeVals []Value
		for {
			v, ok, err := whole.Next()
			if err != nil || !ok {
				break
			}
			wholeVals = append(wholeVals, v)
		}
		var chunked Parser
		var chunkVals []Value
	outer:
		for _, b := range data {
			chunked.Feed([]byte{b})
			for {
				v, ok, err := chunked.Next()
				if err != nil {
					break outer
				}
				if !ok {
					break
				}
				chunkVals = append(chunkVals, v)
			}
		}
		if len(chunkVals) < len(wholeVals) {
			// Chunked parsing may stop earlier only on error paths;
			// compare the common prefix.
			wholeVals = wholeVals[:len(chunkVals)]
		}
		for i := range wholeVals {
			if !fuzzValueEqual(wholeVals[i], chunkVals[i]) {
				t.Fatalf("value %d differs between whole and chunked parse", i)
			}
		}
	})
}

func fuzzValueEqual(a, b Value) bool {
	if a.Type != b.Type || a.Null != b.Null || a.Int != b.Int || !bytes.Equal(a.Str, b.Str) {
		return false
	}
	if len(a.Array) != len(b.Array) {
		return false
	}
	for i := range a.Array {
		if !fuzzValueEqual(a.Array[i], b.Array[i]) {
			return false
		}
	}
	return true
}
