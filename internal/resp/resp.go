// Package resp implements the RESP2 wire protocol spoken by Redis — the
// request/response framing for the mini-Redis substrate used in the paper's
// evaluation workloads (§4). The parser is incremental and
// transport-agnostic: feed it arbitrary byte chunks (as delivered by the
// simulated or real TCP stream) and pop complete values.
package resp

import (
	"errors"
	"fmt"
	"strconv"
)

// Type tags a RESP value with its wire marker byte.
type Type byte

// RESP2 value types.
const (
	SimpleString Type = '+'
	ErrorString  Type = '-'
	Integer      Type = ':'
	BulkString   Type = '$'
	Array        Type = '*'
)

// Value is one RESP value. For BulkString and Array, Null marks the RESP
// null ($-1 / *-1).
type Value struct {
	Type  Type
	Str   []byte  // SimpleString, ErrorString, BulkString payload
	Int   int64   // Integer payload
	Array []Value // Array elements
	Null  bool
}

// Convenience constructors.

// OK is the "+OK" reply.
func OK() Value { return Value{Type: SimpleString, Str: []byte("OK")} }

// Pong is the "+PONG" reply.
func Pong() Value { return Value{Type: SimpleString, Str: []byte("PONG")} }

// Err builds an error reply.
func Err(format string, args ...any) Value {
	return Value{Type: ErrorString, Str: []byte(fmt.Sprintf(format, args...))}
}

// Int builds an integer reply.
func Int(n int64) Value { return Value{Type: Integer, Int: n} }

// Bulk builds a bulk-string reply.
func Bulk(b []byte) Value { return Value{Type: BulkString, Str: b} }

// NullBulk is the null bulk string ($-1), Redis's "no such key".
func NullBulk() Value { return Value{Type: BulkString, Null: true} }

// IsError reports whether v is an error reply.
func (v Value) IsError() bool { return v.Type == ErrorString }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Type {
	case SimpleString:
		return "+" + string(v.Str)
	case ErrorString:
		return "-" + string(v.Str)
	case Integer:
		return ":" + strconv.FormatInt(v.Int, 10)
	case BulkString:
		if v.Null {
			return "$<null>"
		}
		if len(v.Str) > 32 {
			return fmt.Sprintf("$<%d bytes>", len(v.Str))
		}
		return "$" + string(v.Str)
	case Array:
		if v.Null {
			return "*<null>"
		}
		return fmt.Sprintf("*<%d elems>", len(v.Array))
	}
	return "?"
}

var crlf = []byte("\r\n")

// AppendValue appends the wire encoding of v to buf.
func AppendValue(buf []byte, v Value) []byte {
	switch v.Type {
	case SimpleString, ErrorString:
		buf = append(buf, byte(v.Type))
		buf = append(buf, v.Str...)
		return append(buf, crlf...)
	case Integer:
		buf = append(buf, byte(v.Type))
		buf = strconv.AppendInt(buf, v.Int, 10)
		return append(buf, crlf...)
	case BulkString:
		if v.Null {
			return append(buf, "$-1\r\n"...)
		}
		buf = append(buf, '$')
		buf = strconv.AppendInt(buf, int64(len(v.Str)), 10)
		buf = append(buf, crlf...)
		buf = append(buf, v.Str...)
		return append(buf, crlf...)
	case Array:
		if v.Null {
			return append(buf, "*-1\r\n"...)
		}
		buf = append(buf, '*')
		buf = strconv.AppendInt(buf, int64(len(v.Array)), 10)
		buf = append(buf, crlf...)
		for _, e := range v.Array {
			buf = AppendValue(buf, e)
		}
		return buf
	}
	panic(fmt.Sprintf("resp: unknown type %q", byte(v.Type)))
}

// AppendCommand appends a client command — an array of bulk strings — to
// buf. This is how Redis clients encode "SET key value".
func AppendCommand(buf []byte, args ...[]byte) []byte {
	buf = append(buf, '*')
	buf = strconv.AppendInt(buf, int64(len(args)), 10)
	buf = append(buf, crlf...)
	for _, a := range args {
		buf = AppendValue(buf, Bulk(a))
	}
	return buf
}

// Command is shorthand for AppendCommand with string arguments.
func Command(args ...string) []byte {
	bs := make([][]byte, len(args))
	for i, a := range args {
		bs[i] = []byte(a)
	}
	return AppendCommand(nil, bs...)
}

// ErrProtocol is wrapped by all parse errors.
var ErrProtocol = errors.New("resp: protocol error")

// maxLength bounds declared bulk/array lengths to keep a malformed or
// malicious peer from forcing huge allocations.
const maxLength = 512 << 20

// Parser incrementally decodes RESP values from a byte stream. The zero
// value is ready to use.
type Parser struct {
	buf []byte
	off int
}

// Feed appends stream bytes to the parse buffer.
func (p *Parser) Feed(data []byte) {
	// Compact lazily once consumed bytes dominate.
	if p.off > 0 && p.off >= len(p.buf)/2 {
		p.buf = append(p.buf[:0], p.buf[p.off:]...)
		p.off = 0
	}
	p.buf = append(p.buf, data...)
}

// Buffered returns the number of unconsumed bytes.
func (p *Parser) Buffered() int { return len(p.buf) - p.off }

// Next returns the next complete value. ok is false when more bytes are
// needed. A non-nil error means the stream is corrupt; the parser is then
// unusable for further input.
func (p *Parser) Next() (v Value, ok bool, err error) {
	v, n, err := parseValue(p.buf[p.off:])
	if err != nil || n == 0 {
		return Value{}, false, err
	}
	p.off += n
	return v, true, nil
}

// parseValue attempts to decode one value from b, returning the bytes
// consumed (0 when incomplete).
func parseValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, nil
	}
	t := Type(b[0])
	switch t {
	case SimpleString, ErrorString, Integer:
		line, n := takeLine(b[1:])
		if n == 0 {
			return Value{}, 0, nil
		}
		v := Value{Type: t}
		if t == Integer {
			i, err := strconv.ParseInt(string(line), 10, 64)
			if err != nil {
				return Value{}, 0, fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
			}
			v.Int = i
		} else {
			v.Str = append([]byte(nil), line...)
		}
		return v, 1 + n, nil
	case BulkString:
		line, n := takeLine(b[1:])
		if n == 0 {
			return Value{}, 0, nil
		}
		length, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil || length < -1 || length > maxLength {
			return Value{}, 0, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, line)
		}
		if length == -1 {
			return Value{Type: t, Null: true}, 1 + n, nil
		}
		head := 1 + n
		need := head + int(length) + 2
		if len(b) < need {
			return Value{}, 0, nil
		}
		if b[need-2] != '\r' || b[need-1] != '\n' {
			return Value{}, 0, fmt.Errorf("%w: bulk not CRLF-terminated", ErrProtocol)
		}
		return Value{Type: t, Str: append([]byte(nil), b[head:head+int(length)]...)}, need, nil
	case Array:
		line, n := takeLine(b[1:])
		if n == 0 {
			return Value{}, 0, nil
		}
		count, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil || count < -1 || count > maxLength {
			return Value{}, 0, fmt.Errorf("%w: bad array length %q", ErrProtocol, line)
		}
		if count == -1 {
			return Value{Type: t, Null: true}, 1 + n, nil
		}
		off := 1 + n
		elems := make([]Value, 0, count)
		for i := int64(0); i < count; i++ {
			e, n, err := parseValue(b[off:])
			if err != nil {
				return Value{}, 0, err
			}
			if n == 0 {
				return Value{}, 0, nil
			}
			elems = append(elems, e)
			off += n
		}
		return Value{Type: t, Array: elems}, off, nil
	}
	// Inline command (the Redis telnet convenience): a bare line split on
	// whitespace becomes an array of bulk strings, e.g. "PING\r\n".
	return parseInline(b)
}

// maxInlineLength bounds unframed inline lines, as Redis does (64 KiB).
const maxInlineLength = 64 << 10

func parseInline(b []byte) (Value, int, error) {
	line, n := takeLine(b)
	if n == 0 {
		if len(b) > maxInlineLength {
			return Value{}, 0, fmt.Errorf("%w: unterminated inline command", ErrProtocol)
		}
		return Value{}, 0, nil
	}
	fields := splitInline(line)
	if len(fields) == 0 {
		// Empty line: consumed, no value; the caller's loop retries on
		// the remaining buffer via zero-value-with-consumed semantics,
		// which parseValue cannot express — so treat as protocol noise.
		return Value{}, 0, fmt.Errorf("%w: empty inline command", ErrProtocol)
	}
	arr := make([]Value, len(fields))
	for i, f := range fields {
		arr[i] = Bulk(append([]byte(nil), f...))
	}
	return Value{Type: Array, Array: arr}, n, nil
}

func splitInline(line []byte) [][]byte {
	var out [][]byte
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if i > start {
			out = append(out, line[start:i])
		}
	}
	return out
}

// takeLine returns the bytes before the next CRLF and the total bytes
// consumed including the CRLF (0 when no full line is buffered).
func takeLine(b []byte) ([]byte, int) {
	for i := 0; i+1 < len(b); i++ {
		if b[i] == '\r' && b[i+1] == '\n' {
			return b[:i], i + 2
		}
	}
	return nil, 0
}
