package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func debugGet(t *testing.T, h http.Handler, path string) (int, string, http.Header) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw.Code, rw.Body.String(), rw.Result().Header
}

func TestDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("e2e_engine_ticks_total", "Ticks.").Add(9)
	reg.Latencies("e2e_request_latency_seconds", "Latency.").Record(time.Millisecond)
	ring := NewRing(8)
	ring.Push(&DecisionRecord{At: 1, Mode: "batch-on"})
	ring.Push(&DecisionRecord{At: 2, Mode: "batch-off"})
	ring.Push(&DecisionRecord{At: 3, Mode: "batch-off"})
	h := NewDebugServer(reg, ring).Handler()

	code, body, hdr := debugGet(t, h, "/metrics")
	if code != 200 || !strings.Contains(body, "e2e_engine_ticks_total 9") {
		t.Fatalf("/metrics = %d\n%s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ct)
	}

	code, body, _ = debugGet(t, h, "/debug/decisions?n=2")
	if code != 200 {
		t.Fatalf("/debug/decisions = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], `"at_ns":2`) || !strings.Contains(lines[1], `"at_ns":3`) {
		t.Fatalf("/debug/decisions?n=2 = %q, want the last 2 records oldest-first", body)
	}
	if code, _, _ = debugGet(t, h, "/debug/decisions?n=bogus"); code != 400 {
		t.Errorf("bad n should 400, got %d", code)
	}

	code, body, _ = debugGet(t, h, "/debug/vars")
	if code != 200 || !strings.Contains(body, `"e2e_engine_ticks_total": 9`) {
		t.Fatalf("/debug/vars = %d\n%s", code, body)
	}

	code, body, _ = debugGet(t, h, "/debug/pprof/cmdline")
	if code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d %q", code, body)
	}
}

func TestDebugServerStartServeClose(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "Up.").Inc()
	srv := NewDebugServer(reg, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr().String() != addr.String() {
		t.Errorf("Addr() = %v, Start returned %v", srv.Addr(), addr)
	}
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "up_total 1") {
		t.Fatalf("served metrics = %q", b)
	}
	if _, err := srv.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start should fail")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr.String() + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}
}
