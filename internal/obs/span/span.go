// Package span is the request-scoped tracing and online estimator-audit
// plane: a deterministic, sampling-based record of individual request
// lifecycles (enqueue → cork window → wire send → peer ack) plus the live
// comparison of each sampled request's measured delay against the
// end-to-end estimate that was current when its batching decision fired.
//
// The package closes the loop the offline fidelity harness opened: where
// cmd/fidelity replays the workload zoo after the fact, the Tracer watches
// production requests as they complete and the Auditor continuously scores
// the estimator against them — residual EWMA, p99-coverage, drift — feeding
// engine.AuditStats back into the control loop so a policy can retreat when
// its own estimate stops matching reality (PAPERS.md: "Scalable Tail
// Latency Estimation" argues tail estimates are only trustworthy under
// continuous validation).
//
// Determinism: the golden-pinned packages (sim, tcpsim, figures) never
// import this package — the obsdeterminism analyzer enforces it. Spans
// reach simulated runs only through the plain-function seams those packages
// already expose (loadgen.Config.OnComplete, engine.Observer), so a traced
// run and an untraced run execute byte-identical event sequences.
//
// Both the unsampled path (one splitmix64 and a compare) and the sampled
// path (ring push + audit) are //e2e:hotpath and allocgate-pinned at
// 0 allocs/op.
package span

import (
	"sync"
	"sync/atomic"
)

// Span is one sampled request's lifecycle record. Timestamps are
// nanoseconds on the emitting endpoint's clock: virtual time under the
// simulator, Client.Elapsed-style monotonic offsets on real sockets — the
// same timebase the endpoint's DecisionRecords use, so spans and decisions
// line up.
type Span struct {
	// Seq is the span's position in its ring shard's stream (stamped by
	// Ring.Push; 0-based, monotone per shard).
	Seq uint64 `json:"seq"`
	// ReqID identifies the request within its connection: the completion
	// index, which equals the issue index on the FIFO pipelines all
	// transports use.
	ReqID uint64 `json:"req_id"`
	// Shard and Conn locate the request: the owning shard (0 outside
	// fleet mode) and the connection index within the fleet.
	Shard uint32 `json:"shard"`
	Conn  uint32 `json:"conn"`

	// EnqueueNs is when the request entered the send path; SendNs, when
	// nonzero, is when its bytes hit the wire (the cork/batch window is
	// [EnqueueNs, SendNs)); AckNs is when the response completed. A span
	// with SendNs == 0 observed only the end-to-end interval.
	EnqueueNs int64 `json:"enqueue_ns"`
	SendNs    int64 `json:"send_ns,omitempty"`
	AckNs     int64 `json:"ack_ns"`

	// The estimate that was current when the span finished: the mean
	// end-to-end latency and the composed tail's p99, stamped from the
	// Tracer's NoteEstimate mirror. EstValid/TailValid gate them exactly
	// like core.Estimate.Valid/Tail.Valid gate the originals.
	EstNs     int64 `json:"est_ns,omitempty"`
	EstP99Ns  int64 `json:"est_p99_ns,omitempty"`
	EstValid  bool  `json:"est_valid"`
	TailValid bool  `json:"tail_valid"`

	// Aborted marks a span finished on an error path (connection failure,
	// drain cutoff); aborted spans are recorded but never audited.
	Aborted bool `json:"aborted,omitempty"`
}

// MeasuredNs returns the span's measured end-to-end delay.
//
//e2e:hotpath
func (s *Span) MeasuredNs() int64 { return s.AckNs - s.EnqueueNs }

// spanSlot is one value slot: a span stored by copy under a per-slot mutex,
// the same discipline as obs.Ring — a writer copies in, a reader copies
// out, nobody holds more than one slot's lock at a time.
type spanSlot struct {
	mu sync.Mutex
	sp Span
	ok bool
}

// ringShard is one shard's sub-ring: an atomic sequence claim (padded to a
// cache line so concurrent shards never false-share) over a fixed slot
// array.
type ringShard struct {
	next  atomic.Uint64
	_     [56]byte
	slots []spanSlot
}

// Ring is a sharded fixed-capacity ring of spans. Pushes claim a slot with
// the owning shard's atomic counter and store by value, so publishing a
// span allocates nothing and concurrent writers (fleet read loops on
// different shards) contend only within a shard — the per-shard-cell layout
// of obs.ShardedCounter applied to the value-slot ring of obs.Ring.
// Multi-writer pushes within one shard are safe: a laggard that was lapped
// can never overwrite a newer record.
type Ring struct {
	shards []ringShard
}

// NewRing returns a ring of `shards` sub-rings (<= 0: 1) holding the last
// `perShard` spans each (<= 0: 1024).
func NewRing(shards, perShard int) *Ring {
	if shards <= 0 {
		shards = 1
	}
	if perShard <= 0 {
		perShard = 1024
	}
	r := &Ring{shards: make([]ringShard, shards)}
	for i := range r.shards {
		r.shards[i].slots = make([]spanSlot, perShard)
	}
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return len(r.shards) }

// Cap returns the ring's total capacity.
func (r *Ring) Cap() int { return len(r.shards) * len(r.shards[0].slots) }

// Len returns how many spans have ever been pushed, across all shards.
func (r *Ring) Len() uint64 {
	var t uint64
	for i := range r.shards {
		t += r.shards[i].next.Load()
	}
	return t
}

// Push publishes a copy of *sp into the shard selected by sp.Shard,
// stamping sp.Seq with the per-shard sequence. The caller keeps ownership
// of sp and may reuse it immediately (the scratch-span pattern).
//
//e2e:hotpath
func (r *Ring) Push(sp *Span) {
	sh := &r.shards[int(sp.Shard)%len(r.shards)]
	seq := sh.next.Add(1) - 1
	sp.Seq = seq
	sl := &sh.slots[seq%uint64(len(sh.slots))]
	sl.mu.Lock()
	// A slower concurrent pusher may reach a slot after the writer that
	// lapped it; never let a stale span overwrite a newer one.
	if !sl.ok || sl.sp.Seq < seq {
		sl.sp = *sp
		sl.ok = true
	}
	sl.mu.Unlock()
}

// ShardLast returns up to n of shard i's most recent spans, oldest first,
// copied out by value. Spans overwritten mid-read are skipped (their slot
// then holds a newer span, filtered by sequence).
func (r *Ring) ShardLast(i, n int) []Span {
	if i < 0 || i >= len(r.shards) {
		return nil
	}
	sh := &r.shards[i]
	head := sh.next.Load()
	if n <= 0 || head == 0 {
		return nil
	}
	if uint64(n) > head {
		n = int(head)
	}
	if n > len(sh.slots) {
		n = len(sh.slots)
	}
	out := make([]Span, 0, n)
	for seq := head - uint64(n); seq < head; seq++ {
		sl := &sh.slots[seq%uint64(len(sh.slots))]
		sl.mu.Lock()
		sp, ok := sl.sp, sl.ok
		sl.mu.Unlock()
		if ok && sp.Seq == seq {
			out = append(out, sp)
		}
	}
	return out
}

// Last returns up to n of the most recent spans per shard, concatenated in
// shard order (oldest first within a shard) — the stable export order the
// JSONL and Chrome-trace writers use.
func (r *Ring) Last(n int) []Span {
	var out []Span
	for i := range r.shards {
		out = append(out, r.ShardLast(i, n)...)
	}
	return out
}
