package span

import (
	"encoding/json"
	"io"
)

// WriteJSONL writes up to n spans per shard as JSON Lines, shard order,
// oldest first within a shard — the /debug/spans format.
func (r *Ring) WriteJSONL(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	for _, sp := range r.Last(n) {
		if err := enc.Encode(&sp); err != nil {
			return err
		}
	}
	return nil
}

// traceEvent is one Chrome trace_event entry ("X" complete events;
// timestamps and durations in microseconds, fractional for sub-µs spans).
type traceEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	Ts   float64    `json:"ts"`
	Dur  float64    `json:"dur"`
	Pid  int        `json:"pid"`
	Tid  uint32     `json:"tid"`
	Args *traceArgs `json:"args,omitempty"`
}

type traceArgs struct {
	ReqID    uint64  `json:"req_id"`
	Conn     uint32  `json:"conn"`
	EstUs    float64 `json:"est_us,omitempty"`
	EstP99Us float64 `json:"est_p99_us,omitempty"`
	Aborted  bool    `json:"aborted,omitempty"`
}

const usPerNs = 1e-3

// WriteChromeTrace writes up to n spans per shard in Chrome trace_event
// JSON (load in chrome://tracing or Perfetto). Shards render as threads. A
// span that observed its wire send splits into a "cork" slice (enqueue →
// send: the batch/cork window) and a "wire" slice (send → ack); one that
// only observed completion renders as a single "rtt" slice.
func (r *Ring) WriteChromeTrace(w io.Writer, n int) error {
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	first := true
	emit := func(ev *traceEvent) error {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		// Encoder appends a newline after each value; inside a JSON array
		// that is harmless whitespace.
		return enc.Encode(ev)
	}
	for _, sp := range r.Last(n) {
		args := &traceArgs{ReqID: sp.ReqID, Conn: sp.Conn, Aborted: sp.Aborted}
		if sp.EstValid {
			args.EstUs = float64(sp.EstNs) * usPerNs
		}
		if sp.TailValid {
			args.EstP99Us = float64(sp.EstP99Ns) * usPerNs
		}
		ev := traceEvent{Cat: "span", Ph: "X", Pid: 1, Tid: sp.Shard, Args: args}
		if sp.SendNs > 0 {
			ev.Name = "cork"
			ev.Ts = float64(sp.EnqueueNs) * usPerNs
			ev.Dur = float64(sp.SendNs-sp.EnqueueNs) * usPerNs
			if err := emit(&ev); err != nil {
				return err
			}
			wire := ev
			wire.Name = "wire"
			wire.Ts = float64(sp.SendNs) * usPerNs
			wire.Dur = float64(sp.AckNs-sp.SendNs) * usPerNs
			if err := emit(&wire); err != nil {
				return err
			}
			continue
		}
		ev.Name = "rtt"
		ev.Ts = float64(sp.EnqueueNs) * usPerNs
		ev.Dur = float64(sp.AckNs-sp.EnqueueNs) * usPerNs
		if err := emit(&ev); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}")
	return err
}
