//go:build !race

// Allocation gates for the span plane's //e2e:hotpath functions: Sampled
// runs on every request (the unsampled path IS this call), and
// Begin/Finish/Observe/Push ride on completion paths at wire rate, so none
// of them may feed the GC. Excluded under -race because the race runtime's
// shadow allocations would be charged to the tracked code (same exclusion
// as internal/obs/allocgate_test.go).

package span

import (
	"testing"

	"e2ebatch/internal/engine"
)

func TestAllocGateSampledUnsampledPath(t *testing.T) {
	tr := New(Config{Seed: 9, SampleEvery: 64})
	var id uint64
	if n := testing.AllocsPerRun(500, func() {
		_ = tr.Sampled(id)
		id++
	}); n != 0 {
		t.Errorf("Sampled allocates %v per op, want 0 (//e2e:hotpath)", n)
	}
}

func TestAllocGateSampledSpanLifecycle(t *testing.T) {
	tr := New(Config{
		Seed: 9, SampleEvery: 1,
		Ring:  NewRing(2, 64),
		Audit: NewAuditor(AuditConfig{ExpectTail: true}),
	})
	tr.NoteEstimate(100_000, 400_000, true, true)
	var sp Span
	var id uint64
	if n := testing.AllocsPerRun(500, func() {
		tr.Begin(&sp, uint32(id&1), 0, id, int64(id)*1_000)
		tr.MarkSend(&sp, int64(id)*1_000+200)
		tr.Finish(&sp, int64(id)*1_000+900)
		id++
	}); n != 0 {
		t.Errorf("Begin+MarkSend+Finish (ring+audit) allocates %v per op, want 0 (//e2e:hotpath)", n)
	}
}

func TestAllocGateAbortPath(t *testing.T) {
	tr := New(Config{Seed: 9, SampleEvery: 1, Ring: NewRing(1, 64)})
	var sp Span
	var id uint64
	if n := testing.AllocsPerRun(500, func() {
		tr.Begin(&sp, 0, 0, id, int64(id))
		tr.Abort(&sp, int64(id)+500)
		id++
	}); n != 0 {
		t.Errorf("Begin+Abort allocates %v per op, want 0 (//e2e:hotpath)", n)
	}
}

func TestAllocGateNoteEstimate(t *testing.T) {
	tr := New(Config{Seed: 9, SampleEvery: 1})
	var tick int64
	if n := testing.AllocsPerRun(500, func() {
		tr.NoteEstimate(100_000+tick, 400_000+tick, true, tick%4 != 0)
		tick++
	}); n != 0 {
		t.Errorf("NoteEstimate allocates %v per op, want 0 (//e2e:hotpath)", n)
	}
}

func TestAllocGateAuditStats(t *testing.T) {
	a := NewAuditor(AuditConfig{})
	sp := Span{AckNs: 200_000, EstNs: 150_000, EstP99Ns: 600_000, EstValid: true, TailValid: true}
	a.Observe(&sp)
	var st engine.AuditStats
	if n := testing.AllocsPerRun(500, func() {
		st = a.AuditStats()
	}); n != 0 {
		t.Errorf("AuditStats allocates %v per op, want 0 (runs inside engine.Tick)", n)
	}
	_ = st
}

func TestAllocGateRingPushSpan(t *testing.T) {
	r := NewRing(1, 64)
	var sp Span
	var id uint64
	if n := testing.AllocsPerRun(500, func() {
		sp = Span{ReqID: id, EnqueueNs: int64(id), AckNs: int64(id) + 100}
		r.Push(&sp)
		id++
	}); n != 0 {
		t.Errorf("Ring.Push allocates %v per op, want 0 (//e2e:hotpath)", n)
	}
}
