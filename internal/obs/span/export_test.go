package span

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func exportRing() *Ring {
	r := NewRing(2, 8)
	// Shard 0: a full lifecycle span with a wire-send mark and an estimate.
	full := Span{
		ReqID: 7, Shard: 0, Conn: 3,
		EnqueueNs: 1_000, SendNs: 1_500, AckNs: 4_000,
		EstNs: 2_800, EstP99Ns: 9_000, EstValid: true, TailValid: true,
	}
	r.Push(&full)
	// Shard 1: completion-only (no SendNs), aborted, no stamp.
	rtt := Span{ReqID: 8, Shard: 1, EnqueueNs: 2_000, AckNs: 6_000, Aborted: true}
	r.Push(&rtt)
	return r
}

// TestWriteJSONL: one valid JSON object per line, spans round-trip through
// the export losslessly, shard order.
func TestWriteJSONL(t *testing.T) {
	r := exportRing()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, 8); err != nil {
		t.Fatal(err)
	}
	var got []Span
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var sp Span
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		got = append(got, sp)
	}
	if len(got) != 2 {
		t.Fatalf("exported %d lines, want 2", len(got))
	}
	if got[0].ReqID != 7 || got[0].SendNs != 1500 || !got[0].TailValid || got[0].EstP99Ns != 9000 {
		t.Errorf("full span mangled in export: %+v", got[0])
	}
	if got[1].ReqID != 8 || !got[1].Aborted || got[1].SendNs != 0 || got[1].EstValid {
		t.Errorf("rtt span mangled in export: %+v", got[1])
	}
}

// TestWriteChromeTrace: the export is one valid JSON document; a span with a
// send mark splits into adjacent cork+wire slices whose durations sum to the
// measured interval, a completion-only span renders as a single rtt slice,
// and shards map to thread IDs.
func TestWriteChromeTrace(t *testing.T) {
	r := exportRing()
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, 8); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  uint32  `json:"tid"`
			Args struct {
				ReqID    uint64  `json:"req_id"`
				EstP99Us float64 `json:"est_p99_us"`
				Aborted  bool    `json:"aborted"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) != 3 {
		t.Fatalf("unit=%q events=%d, want ms / 3 (cork+wire+rtt)", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	cork, wire, rtt := doc.TraceEvents[0], doc.TraceEvents[1], doc.TraceEvents[2]
	if cork.Name != "cork" || wire.Name != "wire" || rtt.Name != "rtt" {
		t.Fatalf("event names %q %q %q", cork.Name, wire.Name, rtt.Name)
	}
	if cork.Ts != 1.0 || cork.Dur != 0.5 { // 1000ns → 1µs; 500ns cork window
		t.Errorf("cork slice ts=%v dur=%v, want 1.0/0.5 µs", cork.Ts, cork.Dur)
	}
	if wire.Ts != cork.Ts+cork.Dur || cork.Dur+wire.Dur != 3.0 {
		t.Errorf("cork+wire not adjacent and summing to 3µs: %+v %+v", cork, wire)
	}
	if cork.Args.EstP99Us != 9.0 || cork.Args.ReqID != 7 {
		t.Errorf("cork args %+v", cork.Args)
	}
	if rtt.Tid != 1 || !rtt.Args.Aborted || rtt.Dur != 4.0 {
		t.Errorf("rtt slice %+v", rtt)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has phase %q, want complete (X)", ev.Name, ev.Ph)
		}
	}
}
