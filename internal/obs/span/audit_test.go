package span

import (
	"math/rand"
	"testing"
	"time"
)

// TestResidualEWMAMatchesOracle: the auditor's integer EWMA and coverage
// counters, fed a sequential stream of spans, must equal an exact oracle
// recomputation of the same arithmetic — the property the AuditConfig doc
// promises. The oracle mirrors Observe precisely: the coverage check uses
// the EWMA *after* folding the current span's residual.
func TestResidualEWMAMatchesOracle(t *testing.T) {
	const shift = 3
	a := NewAuditor(AuditConfig{EWMAShift: shift, Shards: 1})
	rng := rand.New(rand.NewSource(99))

	var ew int64
	var wantCovered, wantTail uint64
	for i := 0; i < 5000; i++ {
		est := int64(50_000 + rng.Intn(200_000))
		p99 := est * 3
		m := est + int64(rng.Intn(300_000)) - 50_000
		sp := Span{EnqueueNs: 0, AckNs: m, EstNs: est, EstP99Ns: p99, EstValid: true, TailValid: true}
		a.Observe(&sp)

		resid := m - est
		ew += (resid - ew) >> shift
		wantTail++
		if m <= p99+ew {
			wantCovered++
		}
	}

	st := a.AuditStats()
	if got := int64(st.ResidualEWMA); got != ew {
		t.Errorf("residual EWMA %d != oracle %d", got, ew)
	}
	if st.TailAudited != wantTail || st.Covered != wantCovered {
		t.Errorf("coverage counters (tail=%d covered=%d) != oracle (tail=%d covered=%d)",
			st.TailAudited, st.Covered, wantTail, wantCovered)
	}
	if st.Audited != 5000 {
		t.Errorf("audited %d, want 5000", st.Audited)
	}
}

// TestBlindTailTrip: with ExpectTail armed, MinSamples mean-only spans and
// zero tail stamps must flip Drifting; without ExpectTail the same stream
// stays quiet.
func TestBlindTailTrip(t *testing.T) {
	for _, expect := range []bool{true, false} {
		a := NewAuditor(AuditConfig{ExpectTail: expect, MinSamples: 16})
		for i := 0; i < 16; i++ {
			sp := Span{AckNs: 100_000, EstNs: 90_000, EstValid: true}
			a.Observe(&sp)
		}
		st := a.AuditStats()
		if st.BlindTail != 16 || st.TailAudited != 0 {
			t.Fatalf("expect=%v: blind=%d tail=%d, want 16/0", expect, st.BlindTail, st.TailAudited)
		}
		if st.Drifting != expect {
			t.Errorf("expect=%v: Drifting=%v — blind-tail trip must fire iff ExpectTail", expect, st.Drifting)
		}
	}
}

// TestCoverageFloorTrip: enough tail-audited spans with coverage under the
// floor trips drift; the same misses below MinSamples stay quiet.
func TestCoverageFloorTrip(t *testing.T) {
	mk := func(n int) *Auditor {
		a := NewAuditor(AuditConfig{CoverageFloor: 0.9, MinSamples: 32, EWMAShift: 10})
		for i := 0; i < n; i++ {
			// Every span misses its p99 by far more than the EWMA can absorb.
			sp := Span{AckNs: 1_000_000, EstNs: 100_000, EstP99Ns: 200_000, EstValid: true, TailValid: true}
			a.Observe(&sp)
		}
		return a
	}
	if st := mk(8).AuditStats(); st.Drifting {
		t.Errorf("drift tripped on %d samples, below MinSamples", st.TailAudited)
	}
	if st := mk(64).AuditStats(); !st.Drifting {
		t.Errorf("drift quiet at coverage %.3f over %d samples", st.Coverage, st.TailAudited)
	}
}

// TestAuditStatsCrossShard: counters land in the cell Span.Shard selects and
// AuditStats sums every cell.
func TestAuditStatsCrossShard(t *testing.T) {
	a := NewAuditor(AuditConfig{Shards: 4})
	for sh := uint32(0); sh < 8; sh++ { // exercises the mod-4 routing too
		sp := Span{Shard: sh, AckNs: 100_000, EstNs: 90_000, EstP99Ns: 400_000, EstValid: true, TailValid: true}
		a.Observe(&sp)
	}
	st := a.AuditStats()
	if st.Audited != 8 || st.TailAudited != 8 || st.Covered != 8 {
		t.Errorf("cross-shard rollup %+v, want 8 audited/tail/covered", st)
	}
	perShard := make([]uint64, 4)
	for i := range a.cells {
		perShard[i] = a.cells[i].audited.Load()
	}
	for i, n := range perShard {
		if n != 2 {
			t.Errorf("shard %d holds %d audited, want 2", i, n)
		}
	}
}

// TestMeasuredHistMerge: every observed delay lands in the merged measured
// histogram regardless of shard, and the merge preserves total count.
func TestMeasuredHistMerge(t *testing.T) {
	a := NewAuditor(AuditConfig{Shards: 3})
	delays := []time.Duration{
		10 * time.Microsecond, 100 * time.Microsecond, 1 * time.Millisecond,
		250 * time.Microsecond, 2 * time.Millisecond, 40 * time.Microsecond,
	}
	for i, d := range delays {
		sp := Span{Shard: uint32(i), AckNs: d.Nanoseconds()}
		a.Observe(&sp) // EstValid false: histogram only
	}
	h := a.MeasuredHist()
	if h.Count() != uint64(len(delays)) {
		t.Errorf("merged histogram count %d, want %d", h.Count(), len(delays))
	}
	if st := a.AuditStats(); st.Audited != 0 {
		t.Errorf("stamp-less spans were audited: %+v", st)
	}
	// Each per-shard histogram's fraction-below sits at or beyond the merge's
	// extremes — the merge is a count-weighted average of its inputs.
	d := 200 * time.Microsecond
	lo, hi := 1.0, 0.0
	for i := range a.hists {
		f := a.hists[i].h.FractionBelow(d)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if f := h.FractionBelow(d); f < lo-1e-12 || f > hi+1e-12 {
		t.Errorf("merged FractionBelow %.4f outside input range [%.4f, %.4f]", f, lo, hi)
	}
}
