package span

import (
	"sync"
	"testing"
)

// TestRingSequentialOrder: pushes land oldest-first in ShardLast, with
// per-shard sequences stamped in order and wrapping overwriting the oldest.
func TestRingSequentialOrder(t *testing.T) {
	r := NewRing(1, 4)
	for i := 0; i < 6; i++ {
		sp := Span{ReqID: uint64(i)}
		r.Push(&sp)
		if sp.Seq != uint64(i) {
			t.Fatalf("push %d stamped seq %d", i, sp.Seq)
		}
	}
	got := r.ShardLast(0, 10)
	if len(got) != 4 {
		t.Fatalf("ShardLast returned %d spans, want 4", len(got))
	}
	for i, sp := range got {
		if want := uint64(i + 2); sp.Seq != want || sp.ReqID != want {
			t.Errorf("slot %d: seq=%d reqID=%d, want %d", i, sp.Seq, sp.ReqID, want)
		}
	}
	if r.Len() != 6 {
		t.Errorf("Len=%d, want 6", r.Len())
	}
}

// TestRingShardRouting: Span.Shard selects the sub-ring, modulo the count.
func TestRingShardRouting(t *testing.T) {
	r := NewRing(4, 8)
	for i := 0; i < 16; i++ {
		sp := Span{ReqID: uint64(i), Shard: uint32(i)}
		r.Push(&sp)
	}
	for sh := 0; sh < 4; sh++ {
		got := r.ShardLast(sh, 8)
		if len(got) != 4 {
			t.Fatalf("shard %d holds %d spans, want 4", sh, len(got))
		}
		for _, sp := range got {
			if int(sp.Shard)%4 != sh {
				t.Errorf("span with Shard=%d landed in shard %d", sp.Shard, sh)
			}
		}
	}
	if n := len(r.Last(8)); n != 16 {
		t.Errorf("Last concatenated %d spans, want 16", n)
	}
}

// TestRingLaggardNeverOverwritesNewer: many writers hammer one small shard
// so slow pushers routinely get lapped. The laggard guard must hold — every
// exported span's Seq maps to its own slot, so a stale writer never clobbers
// a newer record. Run under -race this also proves the locking discipline.
func TestRingLaggardNeverOverwritesNewer(t *testing.T) {
	const (
		writers = 8
		each    = 2000
		slots   = 16
	)
	r := NewRing(1, slots)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sp := Span{ReqID: uint64(w)<<32 | uint64(i), Conn: uint32(w)}
				r.Push(&sp)
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != writers*each {
		t.Fatalf("Len=%d, want %d", r.Len(), writers*each)
	}
	got := r.ShardLast(0, slots)
	var prev uint64
	for i, sp := range got {
		if i > 0 && sp.Seq <= prev {
			t.Errorf("export order broken: seq %d after %d", sp.Seq, prev)
		}
		prev = sp.Seq
		if sp.Seq < writers*each-slots {
			t.Errorf("slot holds lapped span seq %d (head %d, cap %d): a laggard overwrote a newer record",
				sp.Seq, writers*each, slots)
		}
	}
}
