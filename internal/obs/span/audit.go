package span

import (
	"sync"
	"sync/atomic"
	"time"

	"e2ebatch/internal/engine"
	"e2ebatch/internal/qstate"
)

// AuditConfig parameterizes an Auditor.
type AuditConfig struct {
	// CoverageFloor is the minimum acceptable p99 coverage (fraction of
	// tail-audited spans whose measured delay fell at or under the
	// residual-adjusted predicted p99 — see Observe). Coverage below the
	// floor — with at least MinSamples tail-audited spans — trips the
	// drift signal. Default 0.9: an adjusted p99 should cover ~99% of
	// requests, so dropping under 90% means the tail estimate broke beyond
	// its calibrated offset, far past the histogram's 12.5% bucket
	// resolution. Values outside (0, 1] take the default.
	CoverageFloor float64
	// MinSamples is how many audited spans a drift verdict needs before it
	// can trip — below it the auditor stays quiet rather than alarming on
	// noise (default 32).
	MinSamples uint64
	// ExpectTail arms the blind-tail trip: when set (tail-targeting
	// endpoints), an audit that has scored MinSamples spans against valid
	// means without ever seeing a valid tail stamp is drifting — the
	// policy's p99 never existed, the chaos case a v1 peer produces.
	ExpectTail bool
	// EWMAShift sets the residual EWMA's smoothing constant α = 1/2^shift
	// (default 3, α = 1/8). The update is pure integer arithmetic —
	// ewma += (residual − ewma) >> shift — so an oracle recomputation over
	// the same sample sequence reproduces it exactly.
	EWMAShift uint
	// Shards sizes the padded per-shard counter cells (default 8); use the
	// fleet's shard count so concurrent read loops never false-share.
	Shards int
}

// auditCell is one shard's audit counters, padded to a cache line so
// concurrent shards' updates never false-share (the obs.ShardedCounter
// cell layout).
type auditCell struct {
	audited     atomic.Uint64
	tailAudited atomic.Uint64
	covered     atomic.Uint64
	blindTail   atomic.Uint64
	_           [32]byte
}

// auditHist is one shard's measured-delay histogram under its own mutex
// (DelayHist is not atomic; the lock is per-shard so fleet read loops on
// different shards never contend).
type auditHist struct {
	mu sync.Mutex
	h  qstate.DelayHist
}

// Auditor scores finished spans against their estimate stamps and
// summarizes the comparison as engine.AuditStats: per-endpoint residual
// EWMA, p99 coverage, and the drift verdict the engine's degraded-path
// routing consumes. Observe and AuditStats are both //e2e:hotpath — one
// runs on completion paths, the other inside engine.Tick — and neither
// allocates.
type Auditor struct {
	floor      float64
	minSamples uint64
	expectTail bool
	shift      uint

	cells []auditCell
	hists []auditHist
	ewma  atomic.Int64
}

// NewAuditor builds an auditor from cfg (zero-value fields take defaults).
func NewAuditor(cfg AuditConfig) *Auditor {
	if cfg.CoverageFloor <= 0 || cfg.CoverageFloor > 1 {
		cfg.CoverageFloor = 0.9
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 32
	}
	if cfg.EWMAShift == 0 {
		cfg.EWMAShift = 3
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	return &Auditor{
		floor:      cfg.CoverageFloor,
		minSamples: cfg.MinSamples,
		expectTail: cfg.ExpectTail,
		shift:      cfg.EWMAShift,
		cells:      make([]auditCell, cfg.Shards),
		hists:      make([]auditHist, cfg.Shards),
	}
}

// Observe scores one finished span: the measured delay always lands in the
// shard's histogram; spans with a valid mean stamp update the residual
// EWMA, and those with a valid tail stamp score the p99 coverage.
// Tracer.Finish calls this; aborted spans never reach it.
//
// Coverage scores the measured delay against the residual-adjusted p99 —
// EstP99Ns plus the EWMA as updated by this span's own residual. The
// estimator's composed path is the counter-visible pipeline; the measured
// span additionally carries client-side time the counters never see, a
// structural offset the mean residual learns within a few samples. Scoring
// the adjusted p99 makes coverage a drift detector (the tail breaking
// beyond the calibrated offset) rather than a re-measurement of the known
// model bias the fidelity harness already quantifies.
//
//e2e:hotpath
func (a *Auditor) Observe(sp *Span) {
	i := int(sp.Shard) % len(a.cells)
	m := sp.MeasuredNs()
	hs := &a.hists[i]
	hs.mu.Lock()
	hs.h.Record(time.Duration(m))
	hs.mu.Unlock()
	if !sp.EstValid {
		return
	}
	c := &a.cells[i]
	c.audited.Add(1)
	resid := m - sp.EstNs
	var ew int64
	for {
		old := a.ewma.Load()
		nw := old + (resid-old)>>a.shift
		if a.ewma.CompareAndSwap(old, nw) {
			ew = nw
			break
		}
	}
	if sp.TailValid {
		c.tailAudited.Add(1)
		if m <= sp.EstP99Ns+ew {
			c.covered.Add(1)
		}
	} else {
		c.blindTail.Add(1)
	}
}

// AuditStats implements engine.AuditSource: roll the padded cells up
// lock-free and derive coverage and the drift verdict. Runs inside
// engine.Tick.
//
//e2e:hotpath
func (a *Auditor) AuditStats() engine.AuditStats {
	var s engine.AuditStats
	for i := range a.cells {
		c := &a.cells[i]
		s.Audited += c.audited.Load()
		s.TailAudited += c.tailAudited.Load()
		s.Covered += c.covered.Load()
		s.BlindTail += c.blindTail.Load()
	}
	s.Coverage = 1
	if s.TailAudited > 0 {
		s.Coverage = float64(s.Covered) / float64(s.TailAudited)
	}
	s.ResidualEWMA = time.Duration(a.ewma.Load())
	s.Drifting = (s.TailAudited >= a.minSamples && s.Coverage < a.floor) ||
		(a.expectTail && s.TailAudited == 0 && s.BlindTail >= a.minSamples)
	return s
}

// MeasuredHist merges the per-shard measured-delay histograms into one
// distribution — the denominator for FractionBelow-style coverage reads
// and the property tests' oracle.
func (a *Auditor) MeasuredHist() qstate.DelayHist {
	var out qstate.DelayHist
	for i := range a.hists {
		a.hists[i].mu.Lock()
		h := a.hists[i].h
		a.hists[i].mu.Unlock()
		out.Merge(&h)
	}
	return out
}
