package span_test

// End-to-end audit-plane tests on the simulated testbed: the span tracer
// and auditor attached to real figure runs, scoring the live composed-tail
// estimate against per-request ground truth. These live in span_test (not
// figures) because figures is an obsdeterminism golden package: it may not
// import the observability plane, but the plane's tests may drive it.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"e2ebatch/internal/engine"
	"e2ebatch/internal/figures"
	"e2ebatch/internal/loadgen"
	"e2ebatch/internal/obs/span"
	"e2ebatch/internal/qstate"
)

// stampObserver is the minimal engine.Observer that feeds the tracer's
// estimate stamp — what obs.EngineObserver does in production, restated
// here so this test does not need the obs package.
type stampObserver struct{ tr *span.Tracer }

func (o stampObserver) ObserveTick(now qstate.Time, r engine.TickResult) {
	o.tr.NoteEstimate(int64(r.Estimate.Latency), int64(r.Estimate.Tail.P99),
		r.Estimate.Valid, r.Estimate.Tail.Valid)
}

// auditRun executes one dynamic tail-targeting run of the named zoo
// workload with the full audit plane attached and returns the tracer and
// the run output.
func auditRun(t *testing.T, workload string, dur time.Duration, seed int64, v1Peer bool) (*span.Tracer, *figures.RunOut) {
	t.Helper()
	w, ok := loadgen.ZooByName(16, 16<<10, workload)
	if !ok {
		t.Fatalf("zoo workload %q missing", workload)
	}
	tr := span.New(span.Config{
		Seed:        uint64(seed),
		SampleEvery: 4,
		Ring:        span.NewRing(1, 8192),
		Audit:       span.NewAuditor(span.AuditConfig{ExpectTail: true}),
	})
	dyn := figures.DefaultDynamicSpec(500 * time.Microsecond)
	dyn.TailQuantile = 0.99
	dyn.TailsV1Peer = v1Peer
	dyn.Audit = tr.Auditor()
	var sp span.Span
	spec := figures.RunSpec{
		Calib:    figures.DefaultCalib(),
		Seed:     seed,
		Rate:     w.Rate,
		Duration: dur,
		Dynamic:  dyn,
		Workload: w.NewMaker(seed),
		Observer: stampObserver{tr},
		OnComplete: func(reqID uint64, scheduledNs, completedNs int64) {
			if !tr.Sampled(reqID) {
				return
			}
			tr.Begin(&sp, 0, 0, reqID, scheduledNs)
			tr.Finish(&sp, completedNs)
		},
	}
	spec.RateFn = w.RateShape
	spec.PreloadKeys = w.PreloadKeys
	return tr, figures.Run(spec)
}

// TestAuditCoveragePaperSet pins the audit plane's headline number: on the
// zoo's paper-set workload the composed p99 estimate covers at least 90%
// of sampled requests' measured delays.
func TestAuditCoveragePaperSet(t *testing.T) {
	tr, out := auditRun(t, "set-16k", 300*time.Millisecond, 7, false)
	st := tr.Auditor().AuditStats()
	t.Logf("audited=%d tailAudited=%d coverage=%.3f residual=%v driftTicks=%d",
		st.Audited, st.TailAudited, st.Coverage, st.ResidualEWMA, out.AuditDriftTicks)
	if st.TailAudited < 100 {
		t.Fatalf("too few tail-audited spans (%d) for a meaningful coverage read", st.TailAudited)
	}
	if st.Coverage < 0.9 {
		t.Errorf("p99 coverage %.3f < 0.9 on the paper-set workload", st.Coverage)
	}
}

// TestAuditDriftTripsOnV1Peer: the chaos case. A tail-targeting policy
// against a v1 peer never composes a tail, so every audited span arrives
// with a valid mean stamp and no tail stamp — the blind-tail clause must
// trip drift deterministically, and the engine must count the degraded
// ticks it caused.
func TestAuditDriftTripsOnV1Peer(t *testing.T) {
	run := func() (engine.AuditStats, int) {
		tr, out := auditRun(t, "set-16k", 200*time.Millisecond, 7, true)
		return tr.Auditor().AuditStats(), out.AuditDriftTicks
	}
	st, driftTicks := run()
	if st.TailAudited != 0 {
		t.Fatalf("v1 peer produced %d tail-audited spans, want 0", st.TailAudited)
	}
	if st.BlindTail < 32 {
		t.Fatalf("only %d blind-tail spans; run too short to trip MinSamples", st.BlindTail)
	}
	if !st.Drifting {
		t.Error("audit not drifting despite a tail-targeting policy with no tail ever composed")
	}
	if driftTicks == 0 {
		t.Error("engine counted no audit-drift ticks")
	}
	st2, driftTicks2 := run()
	if st != st2 || driftTicks != driftTicks2 {
		t.Errorf("drift accounting not deterministic:\n  run1 %+v driftTicks=%d\n  run2 %+v driftTicks=%d",
			st, driftTicks, st2, driftTicks2)
	}
}

// TestSimSpanDigestByteExact: a span-traced sim run reports, for every
// sampled request, exactly the timestamps the simulator's ground truth
// recorded — through the tracer, the ring, and the JSONL export and back.
// Run A records every completion raw; run B (same seed) routes sampled
// completions through the full span pipeline. The parsed-back spans must
// match run A's virtual-time nanoseconds bit for bit, and the sampled set
// must be precisely the set Sampled() selects.
func TestSimSpanDigestByteExact(t *testing.T) {
	const (
		seed   = 11
		every  = 8
		dur    = 150 * time.Millisecond
		ringSz = 8192
	)
	spec := func() figures.RunSpec {
		return figures.RunSpec{
			Calib:    figures.DefaultCalib(),
			Seed:     seed,
			Rate:     30000,
			Duration: dur,
		}
	}

	// Run A: ground truth, every completion.
	type comp struct{ sched, done int64 }
	truth := map[uint64]comp{}
	specA := spec()
	specA.OnComplete = func(reqID uint64, scheduledNs, completedNs int64) {
		truth[reqID] = comp{scheduledNs, completedNs}
	}
	figures.Run(specA)

	// Run B: the span pipeline.
	tr := span.New(span.Config{
		Seed:        seed,
		SampleEvery: every,
		Ring:        span.NewRing(1, ringSz),
	})
	var sp span.Span
	specB := spec()
	specB.OnComplete = func(reqID uint64, scheduledNs, completedNs int64) {
		if !tr.Sampled(reqID) {
			return
		}
		tr.Begin(&sp, 0, 0, reqID, scheduledNs)
		tr.Finish(&sp, completedNs)
	}
	figures.Run(specB)

	if tr.Ring().Len() > uint64(ringSz) {
		t.Fatalf("ring wrapped (%d spans > cap %d); grow the ring so the digest covers every sample", tr.Ring().Len(), ringSz)
	}

	var buf bytes.Buffer
	if err := tr.Ring().WriteJSONL(&buf, ringSz); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var got span.Span
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		want, ok := truth[got.ReqID]
		if !ok {
			t.Fatalf("span for req %d has no ground-truth completion", got.ReqID)
		}
		if got.EnqueueNs != want.sched || got.AckNs != want.done {
			t.Errorf("req %d: span [%d, %d] != ground truth [%d, %d]",
				got.ReqID, got.EnqueueNs, got.AckNs, want.sched, want.done)
		}
		seen[got.ReqID] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no spans exported")
	}
	for id := range truth {
		if tr.Sampled(id) != seen[id] {
			t.Errorf("req %d: Sampled()=%v but exported=%v", id, tr.Sampled(id), seen[id])
		}
	}
}
