package span

import "sync/atomic"

// Config parameterizes a Tracer.
type Config struct {
	// Seed keys the sampling hash. Two tracers with the same seed and
	// SampleEvery select the same request IDs — deterministic replay.
	Seed uint64
	// SampleEvery is the sampling rate: a request is sampled when
	// splitmix64(Seed + id) % SampleEvery == 0, so roughly 1-in-N of them,
	// chosen by a fixed hash rather than a stateful counter — the
	// selection is a pure function of (seed, id), independent of arrival
	// order and thread interleaving. Values <= 1 sample everything.
	SampleEvery uint64
	// Ring receives finished spans (nil: spans are audited but not kept).
	Ring *Ring
	// Audit, when non-nil, scores every finished (non-aborted) span
	// against the current estimate stamp.
	Audit *Auditor
}

// Tracer decides which requests are sampled, stamps spans with the current
// estimate, and routes finished spans to the ring and the auditor. All
// methods are //e2e:hotpath and allocation-free; the caller owns the *Span
// scratch (typically a stack variable), so tracing a request costs a hash
// on the unsampled path and two ring/audit writes on the sampled one.
//
// The estimate stamp (NoteEstimate) is written from the endpoint's tick
// goroutine and read from whatever goroutine finishes spans; the fields are
// individually atomic, so a finish racing a tick may combine two adjacent
// ticks' mean and tail — both are "current" to within one tick, which is
// the stamp's stated resolution.
type Tracer struct {
	seed  uint64
	every uint64
	ring  *Ring
	audit *Auditor

	estMean  atomic.Int64
	estP99   atomic.Int64
	estFlags atomic.Uint32 // bit 0: mean valid, bit 1: tail valid

	// p99Seeded tracks whether estP99 holds a value yet; only NoteEstimate
	// (single-writer, tick goroutine) touches it, so it needs no atomicity.
	p99Seeded bool
}

// New builds a tracer from cfg.
func New(cfg Config) *Tracer {
	return &Tracer{seed: cfg.Seed, every: cfg.SampleEvery, ring: cfg.Ring, audit: cfg.Audit}
}

// Ring returns the configured ring (nil when spans are not retained).
func (t *Tracer) Ring() *Ring { return t.ring }

// Auditor returns the configured auditor, or nil.
func (t *Tracer) Auditor() *Auditor { return t.audit }

// splitmix64 is the same per-index derivation the fleet and the workload
// zoo use for reproducible streams (Steele et al.'s SplitMix64 finalizer).
//
//e2e:hotpath
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sampled reports whether request id is in the sample — the unsampled hot
// path is exactly this call.
//
//e2e:hotpath
func (t *Tracer) Sampled(id uint64) bool {
	if t.every <= 1 {
		return true
	}
	return splitmix64(t.seed+id)%t.every == 0
}

// tailEWMAShift is the smoothing constant (α = 1/8) for the p99 stamp.
// One decision tick's interval histograms hold only rate×tick samples —
// ~30 at the paper's 30 kRPS and 1 ms tick — far too few for a stable
// p99, so the stamp carries a tick-EWMA of the composed p99 rather than
// the raw per-interval value. The mean stamp stays raw: with the same
// sample count a mean is already stable, and the auditor smooths its
// residual separately.
const tailEWMAShift = 3

// NoteEstimate updates the estimate stamp subsequent Begins copy: the mean
// end-to-end latency and the composed tail's p99, in nanoseconds, with
// their validity bits. Call it once per engine tick (obs.EngineObserver
// does, from its ObserveTick); it is single-writer from that goroutine.
//
//e2e:hotpath
func (t *Tracer) NoteEstimate(meanNs, p99Ns int64, meanValid, tailValid bool) {
	t.estMean.Store(meanNs)
	if tailValid {
		if !t.p99Seeded {
			// First valid tail seeds the EWMA rather than averaging
			// against a meaningless zero; abstaining ticks in between
			// leave the smoothed value in place.
			t.estP99.Store(p99Ns)
			t.p99Seeded = true
		} else {
			old := t.estP99.Load()
			t.estP99.Store(old + (p99Ns-old)>>tailEWMAShift)
		}
	}
	var flags uint32
	if meanValid {
		flags |= 1
	}
	if tailValid {
		flags |= 2
	}
	t.estFlags.Store(flags)
}

// Begin initializes *sp for a sampled request and stamps the current
// estimate onto it. sp is caller-owned scratch (a stack variable in the
// completion callback); Begin never retains it.
//
//e2e:hotpath
func (t *Tracer) Begin(sp *Span, shard, conn uint32, reqID uint64, enqueueNs int64) {
	*sp = Span{ReqID: reqID, Shard: shard, Conn: conn, EnqueueNs: enqueueNs}
	flags := t.estFlags.Load()
	if flags&1 != 0 {
		sp.EstNs = t.estMean.Load()
		sp.EstValid = true
	}
	if flags&2 != 0 {
		sp.EstP99Ns = t.estP99.Load()
		sp.TailValid = true
	}
}

// MarkSend records when the span's bytes left the cork window for the wire.
// Optional: transports that only observe completion leave SendNs zero and
// the span covers the end-to-end interval undivided.
//
//e2e:hotpath
func (t *Tracer) MarkSend(sp *Span, sendNs int64) {
	sp.SendNs = sendNs
}

// Finish completes the span at ackNs, audits it against its estimate
// stamp, and publishes it to the ring. Every Begin must reach exactly one
// Finish or Abort (the spanfinish analyzer enforces the pairing on every
// exit path).
//
//e2e:hotpath
func (t *Tracer) Finish(sp *Span, ackNs int64) {
	sp.AckNs = ackNs
	if t.audit != nil {
		t.audit.Observe(sp)
	}
	if t.ring != nil {
		t.ring.Push(sp)
	}
}

// Abort closes the span on an error path at atNs: the span is published
// (marked Aborted) so traces show the failure, but never audited — a
// request cut off by a connection failure says nothing about the
// estimator.
//
//e2e:hotpath
func (t *Tracer) Abort(sp *Span, atNs int64) {
	sp.Aborted = true
	sp.AckNs = atNs
	if t.ring != nil {
		t.ring.Push(sp)
	}
}
