package span

import (
	"testing"
)

// TestSampledDeterministicRate: the sample is a pure function of
// (seed, id) — stable across calls — and lands near 1-in-N.
func TestSampledDeterministicRate(t *testing.T) {
	tr := New(Config{Seed: 42, SampleEvery: 16})
	const n = 1 << 16
	hits := 0
	for id := uint64(0); id < n; id++ {
		s := tr.Sampled(id)
		if s != tr.Sampled(id) {
			t.Fatalf("Sampled(%d) not stable", id)
		}
		if s {
			hits++
		}
	}
	want := n / 16
	if hits < want*8/10 || hits > want*12/10 {
		t.Errorf("sampled %d of %d, want ≈%d (1-in-16)", hits, n, want)
	}
	every := New(Config{Seed: 42, SampleEvery: 1})
	always := New(Config{Seed: 42})
	for id := uint64(0); id < 64; id++ {
		if !every.Sampled(id) || !always.Sampled(id) {
			t.Fatalf("SampleEvery <= 1 must sample everything")
		}
	}
}

// TestSampledSeedIndependence: different seeds select different sets (the
// fleet's per-run decorrelation).
func TestSampledSeedIndependence(t *testing.T) {
	a := New(Config{Seed: 1, SampleEvery: 8})
	b := New(Config{Seed: 2, SampleEvery: 8})
	same := 0
	const n = 4096
	for id := uint64(0); id < n; id++ {
		if a.Sampled(id) == b.Sampled(id) {
			same++
		}
	}
	if same == n {
		t.Error("two seeds selected identical samples over 4096 ids")
	}
}

// TestEstimateStampAndSmoothing: Begin copies the stamp NoteEstimate wrote;
// the p99 stamp seeds on the first valid tail and then follows the integer
// EWMA exactly, surviving abstaining ticks in between.
func TestEstimateStampAndSmoothing(t *testing.T) {
	tr := New(Config{Seed: 1, SampleEvery: 1})

	var sp Span
	tr.Begin(&sp, 0, 0, 0, 100)
	if sp.EstValid || sp.TailValid {
		t.Fatal("stamp valid before any NoteEstimate")
	}

	tr.NoteEstimate(1000, 5000, true, true) // seeds p99
	tr.Begin(&sp, 0, 0, 1, 100)
	if !sp.EstValid || sp.EstNs != 1000 {
		t.Fatalf("mean stamp = (%v, %d), want (true, 1000)", sp.EstValid, sp.EstNs)
	}
	if !sp.TailValid || sp.EstP99Ns != 5000 {
		t.Fatalf("p99 stamp = (%v, %d), want seeded (true, 5000)", sp.TailValid, sp.EstP99Ns)
	}

	tr.NoteEstimate(1200, 0, true, false) // abstain: p99 EWMA holds
	tr.Begin(&sp, 0, 0, 2, 100)
	if sp.TailValid {
		t.Fatal("tail stamp valid on an abstained tick")
	}
	if sp.EstNs != 1200 {
		t.Fatalf("mean stamp %d, want raw 1200", sp.EstNs)
	}

	tr.NoteEstimate(1100, 9000, true, true)
	want := int64(5000) + (9000-5000)>>tailEWMAShift // not re-seeded
	tr.Begin(&sp, 0, 0, 3, 100)
	if sp.EstP99Ns != want {
		t.Fatalf("p99 stamp %d after abstain gap, want EWMA %d", sp.EstP99Ns, want)
	}
}

// TestFinishAndAbortRouting: Finish audits and publishes; Abort publishes
// marked but never audits.
func TestFinishAndAbortRouting(t *testing.T) {
	tr := New(Config{
		Seed: 1, SampleEvery: 1,
		Ring:  NewRing(1, 8),
		Audit: NewAuditor(AuditConfig{}),
	})
	tr.NoteEstimate(1000, 5000, true, true)

	var sp Span
	tr.Begin(&sp, 0, 0, 0, 100)
	tr.MarkSend(&sp, 150)
	tr.Finish(&sp, 300)
	if sp.SendNs != 150 || sp.AckNs != 300 {
		t.Fatalf("span timestamps %+v", sp)
	}

	tr.Begin(&sp, 0, 0, 1, 400)
	tr.Abort(&sp, 450)
	if !sp.Aborted {
		t.Fatal("Abort did not mark the span")
	}

	st := tr.Auditor().AuditStats()
	if st.Audited != 1 {
		t.Errorf("audited %d spans, want 1 (aborted spans are never audited)", st.Audited)
	}
	got := tr.Ring().ShardLast(0, 8)
	if len(got) != 2 {
		t.Fatalf("ring holds %d spans, want 2", len(got))
	}
	if got[0].Aborted || !got[1].Aborted {
		t.Errorf("ring order/abort marks wrong: %+v", got)
	}
}
