//go:build !race

// Allocation gates for the telemetry plane's //e2e:hotpath functions
// (DESIGN.md §13): Ring.Push and EngineObserver.ObserveTick ride on the
// engine tick, so observing a tick — counters, gauges, histogram, decision
// record — must not feed the GC. Excluded under -race because the race
// runtime's shadow allocations would be charged to the tracked code.

package obs

import (
	"testing"
	"time"

	"e2ebatch/internal/core"
	"e2ebatch/internal/engine"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/qstate"
)

func TestAllocGateRingPush(t *testing.T) {
	r := NewRing(64)
	rec := DecisionRecord{Endpoint: "gate", Mode: "batch-on", Valid: true}
	if n := testing.AllocsPerRun(200, func() { r.Push(&rec) }); n != 0 {
		t.Errorf("Ring.Push allocates %v per op, want 0 (//e2e:hotpath)", n)
	}
}

func TestAllocGateObserveTick(t *testing.T) {
	reg := NewRegistry()
	m := NewEngineMetrics(reg, Label{"endpoint", "gate"})
	o := NewEngineObserver(m, NewRing(64))
	o.Name = "gate"
	var stats policy.TogglerStats
	o.Stats = func() policy.TogglerStats {
		stats.Decisions++
		return stats
	}

	// The tick result reuses fixed backing arrays across iterations, exactly
	// like the engine's scratch buffers (TickResult's view contract).
	perPort := make([]core.Estimate, 1)
	samples := make([]core.Sample, 1)
	now := qstate.Time(0)
	observe := func() {
		now += qstate.Time(time.Millisecond)
		samples[0] = core.Sample{At: now, RemoteOK: true, RemoteAt: now - qstate.Time(time.Microsecond)}
		perPort[0] = core.Estimate{
			Latency: time.Millisecond, LocalView: time.Millisecond, LocalViewValid: true,
			Throughput: 1000, Valid: true,
			Tail: core.TailEstimate{
				P50: time.Millisecond, P90: time.Millisecond,
				P99: 2 * time.Millisecond, P999: 3 * time.Millisecond, Valid: true,
			},
		}
		o.ObserveTick(now, engine.TickResult{
			Estimate: perPort[0],
			PerPort:  perPort,
			Mode:     policy.BatchOn,
			Applied:  true,
			Samples:  samples,
		})
	}
	observe() // warm the mode-flip tracking before measuring
	if n := testing.AllocsPerRun(200, observe); n != 0 {
		t.Errorf("EngineObserver.ObserveTick allocates %v per op, want 0 (//e2e:hotpath)", n)
	}
}
