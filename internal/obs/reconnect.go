package obs

import (
	"e2ebatch/internal/realtcp"
)

// InstrumentReconnector exports a realtcp.Reconnector's redial telemetry
// on reg as scrape-time gauges: attempts (every backoff redial, failed or
// not) and resets (successful reconnections). The counters stay owned by
// the reconnector — no double bookkeeping, no extra work on the redial
// path.
func InstrumentReconnector(reg *Registry, r *realtcp.Reconnector, labels ...Label) {
	reg.GaugeFunc("e2e_reconnect_attempts_total",
		"Redial attempts made by the self-healing client wrapper.",
		func() float64 { return float64(r.Attempts()) }, labels...)
	reg.GaugeFunc("e2e_reconnect_resets_total",
		"Successful reconnections (fresh counters, re-primed estimator).",
		func() float64 { return float64(r.Resets()) }, labels...)
}
