package obs

import (
	"e2ebatch/internal/trace"
)

// CountTraceEvents bridges a trace log's out-of-band events — fault
// activations above all — into reg as e2e_fault_activations_total{kind},
// plus the log's sample count. The bridge is strictly post-hoc: the
// simulation writes its log with no knowledge of the registry (the
// obsdeterminism analyzer enforces that), and this function folds the
// finished log in afterwards, so golden-pinned figure output cannot be
// perturbed by telemetry. cmd/e2efig -metricsout is the caller.
func CountTraceEvents(reg *Registry, log *trace.Log) {
	reg.Counter("e2e_trace_samples_total", "Counter samples in the bridged trace log.").
		Add(uint64(len(log.Records)))
	for _, e := range log.Events {
		reg.Counter("e2e_fault_activations_total",
			"Fault-plan activations recorded in the trace log, by kind.",
			Label{"kind", e.Kind}).Inc()
	}
}
