package obs

import (
	"fmt"
	"strconv"
	"sync/atomic"
)

// Sharded metrics: one cache-line-padded atomic cell per shard, written
// contention-free by that shard's goroutine and rolled up lock-free at
// scrape time — the padded-atomics idiom of core.SharedEstimator applied
// to the telemetry plane. A shard's Inc touches only its own cache line,
// so 50k connections ticking across N shards never serialize on a shared
// counter word; the total is computed by summing the cells at read time,
// which costs the scraper N loads instead of charging every increment a
// contended RMW.

// shardCell is one counter slot, padded to a cache line so neighboring
// shards' hot stores never false-share.
type shardCell struct {
	v atomic.Uint64
	_ [56]byte
}

// ShardedCounter is a monotonically increasing counter split into
// per-shard cells. Each shard must only write its own index (the shard
// goroutine is the single writer); any goroutine may read.
type ShardedCounter struct {
	cells []shardCell
}

// NewShardedCounter returns a counter with n cells (n ≥ 1).
func NewShardedCounter(n int) *ShardedCounter {
	if n < 1 {
		n = 1
	}
	return &ShardedCounter{cells: make([]shardCell, n)}
}

// Shards returns the cell count.
func (c *ShardedCounter) Shards() int { return len(c.cells) }

// Inc adds one to shard's cell.
//
//e2e:hotpath
func (c *ShardedCounter) Inc(shard int) { c.cells[shard].v.Add(1) }

// Add adds n to shard's cell.
//
//e2e:hotpath
func (c *ShardedCounter) Add(shard int, n uint64) { c.cells[shard].v.Add(n) }

// ShardValue returns one cell's count.
func (c *ShardedCounter) ShardValue(shard int) uint64 { return c.cells[shard].v.Load() }

// Value sums every cell lock-free. Cells are read one atomic load at a
// time, so a concurrent burst may be partially visible — the standard
// statistical-counter contract; the value never goes backwards for any
// single-writer cell discipline.
func (c *ShardedCounter) Value() uint64 {
	var t uint64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// shardGaugeCell is one gauge slot, padded like shardCell.
type shardGaugeCell struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedGauge is an instantaneous signed value split into per-shard
// cells, for quantities that rise and fall (live connections per shard).
// Same single-writer-per-cell discipline as ShardedCounter.
type ShardedGauge struct {
	cells []shardGaugeCell
}

// NewShardedGauge returns a gauge with n cells (n ≥ 1).
func NewShardedGauge(n int) *ShardedGauge {
	if n < 1 {
		n = 1
	}
	return &ShardedGauge{cells: make([]shardGaugeCell, n)}
}

// Shards returns the cell count.
func (g *ShardedGauge) Shards() int { return len(g.cells) }

// Add adds delta (may be negative) to shard's cell.
//
//e2e:hotpath
func (g *ShardedGauge) Add(shard int, delta int64) { g.cells[shard].v.Add(delta) }

// Set replaces shard's cell.
//
//e2e:hotpath
func (g *ShardedGauge) Set(shard int, v int64) { g.cells[shard].v.Store(v) }

// ShardValue returns one cell's value.
func (g *ShardedGauge) ShardValue(shard int) int64 { return g.cells[shard].v.Load() }

// Value sums every cell lock-free (see ShardedCounter.Value).
func (g *ShardedGauge) Value() int64 {
	var t int64
	for i := range g.cells {
		t += g.cells[i].v.Load()
	}
	return t
}

// shardedCounterCell / shardedGaugeCell render one shard's cell as a child
// of the family (labels shard="i"); every child shares the same backing
// metric.
type shardedCounterChild struct {
	c     *ShardedCounter
	shard int
}

type shardedGaugeChild struct {
	g     *ShardedGauge
	shard int
}

// withShard appends the shard label to a constant label set.
func withShard(labels []Label, i int) []Label {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, Label{"shard", strconv.Itoa(i)})
}

// ShardedCounter registers a counter family with one child per shard
// (label shard="i") and returns the sharded counter behind them.
// Re-registering the same name returns the existing counter; a shard-count
// mismatch panics (a wiring bug, like a type mismatch). Callers wanting a
// rolled-up total series alongside the per-shard children register a
// GaugeFunc over Value.
func (r *Registry) ShardedCounter(name, help string, shards int, labels ...Label) *ShardedCounter {
	c := NewShardedCounter(shards)
	first := r.register(name, help, "counter", withShard(labels, 0),
		func() metric { return shardedCounterChild{c, 0} }).(shardedCounterChild)
	if first.c != c {
		if first.c.Shards() != shards {
			panic(fmt.Sprintf("obs: sharded counter %q re-registered with %d shards (was %d)",
				name, shards, first.c.Shards()))
		}
		return first.c
	}
	for i := 1; i < c.Shards(); i++ {
		r.register(name, help, "counter", withShard(labels, i),
			func() metric { return shardedCounterChild{c, i} })
	}
	return c
}

// ShardedGauge is the gauge analogue of ShardedCounter.
func (r *Registry) ShardedGauge(name, help string, shards int, labels ...Label) *ShardedGauge {
	g := NewShardedGauge(shards)
	first := r.register(name, help, "gauge", withShard(labels, 0),
		func() metric { return shardedGaugeChild{g, 0} }).(shardedGaugeChild)
	if first.g != g {
		if first.g.Shards() != shards {
			panic(fmt.Sprintf("obs: sharded gauge %q re-registered with %d shards (was %d)",
				name, shards, first.g.Shards()))
		}
		return first.g
	}
	for i := 1; i < g.Shards(); i++ {
		r.register(name, help, "gauge", withShard(labels, i),
			func() metric { return shardedGaugeChild{g, i} })
	}
	return g
}
