package obs_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"e2ebatch/internal/core"
	"e2ebatch/internal/engine"
	"e2ebatch/internal/obs"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/trace"
)

// obsPort scripts a single-queue connection with optional peer metadata —
// the same shape the engine tests use, here to drive a full observer.
type obsPort struct {
	st       qstate.State
	remote   bool
	remoteAt qstate.Time
	self     bool
	fail     bool
}

func newObsPort() *obsPort {
	p := &obsPort{}
	p.st.Init(0)
	return p
}

func (p *obsPort) busy(t, dt qstate.Time) {
	p.st.Track(t, 1)
	p.st.Track(t+dt, -1)
}

func (p *obsPort) Snapshot(now qstate.Time) core.Sample {
	s := core.Sample{Local: core.Queues{Unacked: p.st.Snapshot(now)}, At: now}
	if p.remote {
		s.RemoteOK = true
		s.RemoteAt = p.remoteAt
	}
	return s
}

func (p *obsPort) Apply(engine.Decision) error {
	if p.fail {
		return errFail
	}
	return nil
}

func (p *obsPort) SelfContained() bool { return p.self }

var errFail = errorString("apply failed")

type errorString string

func (e errorString) Error() string { return string(e) }

const ms = qstate.Time(time.Millisecond)

// TestObserverMatchesEndpointAccounting pins the observer's counters to the
// endpoint's own Stats over a run that exercises valid, degraded and
// mode-flip ticks — the decision stream and the accounting must agree
// exactly.
func TestObserverMatchesEndpointAccounting(t *testing.T) {
	p := newObsPort()
	p.self = true
	tog := policy.NewToggler(policy.ThroughputUnderSLO{SLO: time.Millisecond},
		policy.DefaultTogglerConfig(), policy.BatchOff, rand.New(rand.NewSource(3)))

	reg := obs.NewRegistry()
	ring := obs.NewRing(128)
	em := obs.NewEngineMetrics(reg)
	ob := obs.NewEngineObserver(em, ring)
	ob.Name = "test"
	ob.Stats = tog.Stats

	ep := engine.New(engine.Config{
		Controller: tog,
		Initial:    policy.BatchOff,
		Observer:   ob,
	}, p)

	const ticks = 50
	for i := 0; i < ticks; i++ {
		now := qstate.Time(i) * 2 * ms
		p.busy(now+ms/4, ms/2)
		ep.Tick(now + ms)
	}

	st := ep.Stats()
	if em.Ticks.Value() != uint64(st.TotalTicks) {
		t.Errorf("ticks counter = %d, endpoint says %d", em.Ticks.Value(), st.TotalTicks)
	}
	if em.OnTicks.Value() != uint64(st.OnTicks) {
		t.Errorf("on-ticks counter = %d, endpoint says %d", em.OnTicks.Value(), st.OnTicks)
	}
	if em.DegradedTicks.Value() != uint64(st.DegradedTicks) {
		t.Errorf("degraded counter = %d, endpoint says %d", em.DegradedTicks.Value(), st.DegradedTicks)
	}
	if em.ValidEstimates.Value() != uint64(st.ValidEstimates) {
		t.Errorf("valid counter = %d, endpoint says %d", em.ValidEstimates.Value(), st.ValidEstimates)
	}
	ts := tog.Stats()
	if em.Explorations.Value() != ts.Explorations {
		t.Errorf("explorations counter = %d, toggler says %d", em.Explorations.Value(), ts.Explorations)
	}
	if em.Switches.Value() != ts.Switches {
		t.Errorf("switches counter = %d, toggler says %d", em.Switches.Value(), ts.Switches)
	}
	if em.ModeFlips.Value() != ts.Switches {
		t.Errorf("mode flips = %d, toggler switched %d times", em.ModeFlips.Value(), ts.Switches)
	}
	if em.Records.Value() != uint64(ticks) || ring.Len() != uint64(ticks) {
		t.Errorf("records = %d / ring %d, want %d", em.Records.Value(), ring.Len(), ticks)
	}

	// The decision stream must replay the accounting: per-record flags
	// re-aggregate to the same totals.
	recs := ring.Last(ticks)
	if len(recs) != 128 && len(recs) != ticks {
		t.Fatalf("ring returned %d records", len(recs))
	}
	var valid, degraded, on, explored int
	for i, r := range recs {
		if r.Endpoint != "test" || !r.Applied || r.Ports != 1 {
			t.Fatalf("record %d = %+v, want applied single-port from endpoint test", i, r)
		}
		if r.Valid {
			valid++
		}
		if r.Degraded {
			degraded++
		}
		if r.Mode == policy.BatchOn.String() {
			on++
		}
		if r.Explored {
			explored++
		}
		if r.Snapshot.Unacked.Time != r.At {
			t.Fatalf("record %d snapshot tuple not taken at tick time: %+v", i, r)
		}
	}
	if valid != st.ValidEstimates || degraded != st.DegradedTicks || on != st.OnTicks {
		t.Errorf("records re-aggregate to valid=%d degraded=%d on=%d, stats say %d/%d/%d",
			valid, degraded, on, st.ValidEstimates, st.DegradedTicks, st.OnTicks)
	}
	if uint64(explored) != ts.Explorations {
		t.Errorf("records show %d explorations, toggler says %d", explored, ts.Explorations)
	}
}

// TestObserverDegradedAndSafeMode drives the estimator into staleness so
// the toggler retreats, and checks staleness age, stale-tick and
// safe-mode-entry metrics.
func TestObserverDegradedAndSafeMode(t *testing.T) {
	p := newObsPort()
	p.remote = true
	cfg := policy.DefaultTogglerConfig()
	cfg.Epsilon = 0 // no exploration noise in this test
	tog := policy.NewToggler(policy.ThroughputUnderSLO{SLO: time.Millisecond},
		cfg, policy.BatchOn, rand.New(rand.NewSource(1)))

	reg := obs.NewRegistry()
	ring := obs.NewRing(64)
	em := obs.NewEngineMetrics(reg)
	ob := obs.NewEngineObserver(em, ring)
	ob.Stats = tog.Stats

	ep := engine.New(engine.Config{
		Controller:   tog,
		Initial:      policy.BatchOn,
		MaxRemoteAge: 3 * time.Millisecond,
		Observer:     ob,
	}, p)

	// Fresh metadata first: staleness gauge tracks now-RemoteAt.
	p.remoteAt = 0
	p.busy(ms/4, ms/2)
	ep.Tick(ms)
	p.busy(ms+ms/4, ms/2)
	ep.Tick(2 * ms)
	if got, want := em.StalenessAge.Value(), (2 * time.Millisecond).Seconds(); got != want {
		t.Fatalf("staleness gauge = %v, want %v", got, want)
	}

	// Let the metadata age out: ticks degrade as remote-stale and, after
	// DegradedAfter in a row, the toggler retreats to safe mode.
	for i := 3; i <= 12; i++ {
		now := qstate.Time(i) * ms
		p.busy(now-ms/2, ms/4)
		ep.Tick(now)
	}
	if em.RemoteStale.Value() == 0 {
		t.Error("no remote-stale ticks counted after metadata aged out")
	}
	if em.DegradedTicks.Value() == 0 {
		t.Error("no degraded ticks counted")
	}
	ts := tog.Stats()
	if ts.SafeFallbacks == 0 {
		t.Fatal("test never forced a safe-mode retreat; adjust the drive")
	}
	if em.SafeModeEnters.Value() != ts.SafeFallbacks {
		t.Errorf("safe-mode entries = %d, toggler says %d", em.SafeModeEnters.Value(), ts.SafeFallbacks)
	}
	recs := ring.Last(4)
	if len(recs) == 0 || !recs[len(recs)-1].RemoteStale || recs[len(recs)-1].Mode != policy.BatchOff.String() {
		t.Errorf("last records should show remote-stale safe mode, got %+v", recs[len(recs)-1])
	}
}

// tailObsPort scripts the mean counters at meanLat and (when tails is set)
// cumulative delay histograms at tailLat, the same drive the engine's tail
// tests use — here to check the observer surfaces the composed tail.
type tailObsPort struct {
	meanLat time.Duration
	tailLat time.Duration
	tails   bool

	n     uint32
	lhist qstate.DelayHist
	rhist qstate.DelayHist
}

func (p *tailObsPort) Snapshot(now qstate.Time) core.Sample {
	p.n += 10
	n := p.n
	s := core.Sample{At: now, RemoteOK: true, RemoteAt: now}
	s.Local.Unacked = qstate.Snapshot{Time: now, Total: int64(n), Integral: int64(n) * int64(p.meanLat)}
	s.Local.Unread = qstate.Snapshot{Time: now}
	s.Local.AckDelay = qstate.Snapshot{Time: now}
	us := uint32(uint64(now) / 1000)
	s.Remote.Unacked = qstate.WireQueue{TimeUS: us, Total: n, IntegralUS: uint32(uint64(n) * uint64(p.meanLat) / 1000)}
	s.Remote.Unread = qstate.WireQueue{TimeUS: us}
	s.Remote.AckDelay = qstate.WireQueue{TimeUS: us}
	if p.tails {
		p.lhist.RecordN(p.tailLat, 10)
		p.rhist.RecordN(p.tailLat, 10)
		s.LocalTailsOK, s.RemoteTailsOK = true, true
		s.LocalTails.Unacked = p.lhist
		s.RemoteTails.Unacked = p.rhist
	}
	return s
}

func (p *tailObsPort) Apply(engine.Decision) error { return nil }
func (p *tailObsPort) SelfContained() bool         { return false }

// TestObserverTailMetrics drives a tail-targeting endpoint through the
// observer: with a v2 peer the valid-tail counter and p99/p999 gauges track
// the composed tail and records carry it; with a v1 peer every post-priming
// tick surfaces as a tail abstention, in counter and record alike.
func TestObserverTailMetrics(t *testing.T) {
	tail := 2 * time.Millisecond
	run := func(tails bool) (*obs.EngineMetrics, *obs.Ring, *engine.Endpoint) {
		p := &tailObsPort{meanLat: 200 * time.Microsecond, tailLat: tail, tails: tails}
		reg := obs.NewRegistry()
		ring := obs.NewRing(32)
		em := obs.NewEngineMetrics(reg)
		ob := obs.NewEngineObserver(em, ring)
		ep := engine.New(engine.Config{
			Controller:   constController(policy.BatchOn),
			Initial:      policy.BatchOn,
			TailQuantile: 0.99,
			Observer:     ob,
		}, p)
		ep.Tick(0)
		for i := 1; i <= 4; i++ {
			ep.Tick(qstate.Time(i) * 100 * ms)
		}
		return em, ring, ep
	}

	em, ring, ep := run(true)
	if em.ValidTails.Value() != 4 {
		t.Errorf("valid tails = %d, want 4 (every post-priming tick)", em.ValidTails.Value())
	}
	if em.TailAbstains.Value() != 0 {
		t.Errorf("v2 peer recorded %d abstentions", em.TailAbstains.Value())
	}
	// Bucket quantization: the point mass composes within 12.5% of tail.
	lo, hi := (tail * 7 / 8).Seconds(), (tail * 9 / 8).Seconds()
	if g := em.TailP99.Value(); g < lo || g > hi {
		t.Errorf("tail p99 gauge = %v, want ≈ %v", g, tail.Seconds())
	}
	if g := em.TailP999.Value(); g < lo || g > hi {
		t.Errorf("tail p999 gauge = %v, want ≈ %v", g, tail.Seconds())
	}
	recs := ring.Last(1)
	if len(recs) != 1 || !recs[0].TailValid || recs[0].TailAbstained {
		t.Fatalf("record = %+v, want a valid non-abstained tail", recs)
	}
	if ns := recs[0].TailP99Ns; ns < int64(tail*7/8) || ns > int64(tail*9/8) {
		t.Errorf("record tail p99 = %dns, want ≈ %v", ns, tail)
	}
	if ep.Stats().TailAbstainedTicks != 0 {
		t.Errorf("endpoint counted %d abstentions on a v2 peer", ep.Stats().TailAbstainedTicks)
	}

	em, ring, ep = run(false)
	st := ep.Stats()
	if st.TailAbstainedTicks == 0 {
		t.Fatal("v1 peer never abstained; the drive is wrong")
	}
	if em.TailAbstains.Value() != uint64(st.TailAbstainedTicks) {
		t.Errorf("abstain counter = %d, endpoint says %d", em.TailAbstains.Value(), st.TailAbstainedTicks)
	}
	if em.DegradedTicks.Value() != uint64(st.DegradedTicks) {
		t.Errorf("degraded counter = %d, endpoint says %d", em.DegradedTicks.Value(), st.DegradedTicks)
	}
	if em.ValidTails.Value() != 0 || em.TailP99.Value() != 0 {
		t.Errorf("v1 peer produced a valid tail (%d) or moved the gauge (%v)",
			em.ValidTails.Value(), em.TailP99.Value())
	}
	recs = ring.Last(1)
	if len(recs) != 1 || recs[0].TailValid || !recs[0].TailAbstained || !recs[0].Degraded {
		t.Fatalf("record = %+v, want a degraded tail abstention", recs)
	}
}

// TestObserverApplyErrors counts per-port apply failures.
func TestObserverApplyErrors(t *testing.T) {
	p := newObsPort()
	p.self = true
	p.fail = true
	reg := obs.NewRegistry()
	em := obs.NewEngineMetrics(reg)
	ep := engine.New(engine.Config{
		Controller: constController(policy.BatchOn),
		Initial:    policy.BatchOn,
		Observer:   obs.NewEngineObserver(em, nil),
	}, p)
	for i := 1; i <= 4; i++ {
		ep.Tick(qstate.Time(i) * ms)
	}
	if em.ApplyErrors.Value() != 4 {
		t.Fatalf("apply errors = %d, want 4 (one per tick; the initial New apply is pre-observer)", em.ApplyErrors.Value())
	}
}

// constController always picks one mode.
type constController policy.Mode

func (c constController) Observe(time.Duration, float64, bool) policy.Mode { return policy.Mode(c) }
func (c constController) ObserveDegraded() policy.Mode                     { return policy.Mode(c) }
func (c constController) Mode() policy.Mode                                { return policy.Mode(c) }
func (c constController) Stats() policy.TogglerStats                       { return policy.TogglerStats{} }

func TestCountTraceEvents(t *testing.T) {
	reg := obs.NewRegistry()
	var log trace.Log
	log.AddEvent(0, "loss-burst", "p=0.5")
	log.AddEvent(1, "loss-burst", "end")
	log.AddEvent(2, "reset", "")
	obs.CountTraceEvents(reg, &log)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`e2e_fault_activations_total{kind="loss-burst"} 2`,
		`e2e_fault_activations_total{kind="reset"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
