package obs

import (
	"time"

	"e2ebatch/internal/engine"
	"e2ebatch/internal/obs/span"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/qstate"
)

// EngineMetrics is the full set of control-loop metric families. Creating
// it registers every family (at zero) so a scrape always shows the complete
// schema — a kvserver with no client attached still exports the engine
// counters, just flat.
type EngineMetrics struct {
	Ticks          *Counter
	OnTicks        *Counter
	DegradedTicks  *Counter
	TailAbstains   *Counter
	ModeFlips      *Counter
	ApplyErrors    *Counter
	ValidEstimates *Counter
	ValidTails     *Counter
	RemoteStale    *Counter
	Explorations   *Counter
	Switches       *Counter
	SafeModeEnters *Counter
	Records        *Counter
	AuditDrifts    *Counter
	StalenessAge   *Gauge
	Throughput     *Gauge
	TailP99        *Gauge
	TailP999       *Gauge
	AuditSpans     *Gauge
	AuditCoverage  *Gauge
	AuditResidual  *Gauge
	EstimateLat    *Latencies
}

// NewEngineMetrics registers the control-loop families on reg with the
// given constant labels (typically Label{"endpoint", name}).
func NewEngineMetrics(reg *Registry, labels ...Label) *EngineMetrics {
	return &EngineMetrics{
		Ticks:          reg.Counter("e2e_engine_ticks_total", "Engine decision ticks run.", labels...),
		OnTicks:        reg.Counter("e2e_engine_on_ticks_total", "Ticks whose decision was batch-on.", labels...),
		DegradedTicks:  reg.Counter("e2e_engine_degraded_ticks_total", "Ticks routed down the degraded path.", labels...),
		TailAbstains:   reg.Counter("e2e_engine_tail_abstained_ticks_total", "Degraded ticks where a tail-targeting policy met a valid mean but no composed tail.", labels...),
		ModeFlips:      reg.Counter("e2e_engine_mode_flips_total", "Applied decisions that changed the batching mode.", labels...),
		ApplyErrors:    reg.Counter("e2e_engine_apply_errors_total", "Per-port mode applications that failed (e.g. SetNoDelay errors).", labels...),
		ValidEstimates: reg.Counter("e2e_engine_valid_estimates_total", "Ticks whose end-to-end estimate was valid.", labels...),
		ValidTails:     reg.Counter("e2e_engine_valid_tails_total", "Ticks whose composed tail estimate was valid.", labels...),
		RemoteStale:    reg.Counter("e2e_estimator_remote_stale_ticks_total", "Ticks degraded because peer metadata aged past MaxRemoteAge.", labels...),
		Explorations:   reg.Counter("e2e_policy_explorations_total", "Toggler decisions that explored rather than exploited.", labels...),
		Switches:       reg.Counter("e2e_policy_switches_total", "Toggler mode switches.", labels...),
		SafeModeEnters: reg.Counter("e2e_policy_safe_mode_entries_total", "Degraded runs that forced a retreat to the safe mode.", labels...),
		Records:        reg.Counter("e2e_decision_records_total", "Decision records published to the ring.", labels...),
		AuditDrifts:    reg.Counter("e2e_audit_drift_ticks_total", "Ticks the online estimator audit tripped and routed degraded.", labels...),
		StalenessAge:   reg.Gauge("e2e_estimator_staleness_seconds", "Age of the freshest peer metadata at the last tick.", labels...),
		Throughput:     reg.Gauge("e2e_estimate_throughput_rps", "Throughput component of the last valid estimate.", labels...),
		TailP99:        reg.Gauge("e2e_estimate_tail_p99_seconds", "p99 of the last valid composed tail estimate.", labels...),
		TailP999:       reg.Gauge("e2e_estimate_tail_p999_seconds", "p999 of the last valid composed tail estimate.", labels...),
		AuditSpans:     reg.Gauge("e2e_audit_spans", "Sampled spans scored against a live estimate so far.", labels...),
		AuditCoverage:  reg.Gauge("e2e_audit_p99_coverage", "Fraction of tail-audited spans at or under the predicted p99.", labels...),
		AuditResidual:  reg.Gauge("e2e_audit_residual_ewma_seconds", "EWMA of measured-minus-estimated delay over audited spans.", labels...),
		EstimateLat:    reg.Latencies("e2e_estimate_latency_seconds", "End-to-end latency estimates, per tick.", labels...),
	}
}

// EngineObserver adapts one engine.Endpoint's tick stream to the telemetry
// plane: counters and gauges into a Registry, decision records into a Ring.
// Attach exactly one observer per endpoint (mode-flip detection and the
// toggler-stat deltas assume one decision stream); a Ring may be shared by
// several observers.
//
// ObserveTick runs on the endpoint's tick goroutine. The mutable fields
// below are therefore single-writer; everything exported is atomic.
type EngineObserver struct {
	// Name labels the decision records when several endpoints share a
	// ring.
	Name string
	// Stats, when non-nil, is polled once per tick for exploration,
	// switch and safe-mode-entry deltas (pass the controller's Stats
	// method). Without it those three counters stay flat and records
	// cannot distinguish explore from exploit.
	Stats func() policy.TogglerStats
	// Spans, when non-nil, receives each tick's estimate as the span
	// tracer's stamp (span.Tracer.NoteEstimate): spans finished between
	// this tick and the next audit against these values. This is how the
	// audit plane learns what the estimator currently believes without the
	// engine importing obs.
	Spans *span.Tracer

	m    *EngineMetrics
	ring *Ring

	prev     policy.TogglerStats
	lastMode policy.Mode
	haveMode bool

	// rec is the scratch decision record, refilled every tick and copied
	// into the ring by value — the tick path allocates nothing.
	rec DecisionRecord
}

// NewEngineObserver builds an observer feeding m and, when ring is
// non-nil, publishing one decision record per tick.
func NewEngineObserver(m *EngineMetrics, ring *Ring) *EngineObserver {
	return &EngineObserver{m: m, ring: ring}
}

// ObserveTick implements engine.Observer. It runs on the engine's tick
// (//e2e:hotpath): counters and gauges are atomic, the latency histogram is
// a fixed array, and the decision record is built in a reused scratch
// struct, so observing a tick performs zero heap allocations. r's slices
// are views into engine scratch, consumed before return and never retained.
//
//e2e:hotpath
func (o *EngineObserver) ObserveTick(now qstate.Time, r engine.TickResult) {
	m := o.m
	m.Ticks.Inc()
	if r.Degraded {
		m.DegradedTicks.Inc()
	}
	if r.Estimate.Valid {
		m.ValidEstimates.Inc()
		m.EstimateLat.Record(r.Estimate.Latency)
		m.Throughput.Set(r.Estimate.Throughput)
	}
	if r.Estimate.Tail.Valid {
		m.ValidTails.Inc()
		m.TailP99.Set(r.Estimate.Tail.P99.Seconds())
		m.TailP999.Set(r.Estimate.Tail.P999.Seconds())
	}
	if r.TailAbstained {
		m.TailAbstains.Inc()
	}
	if o.Spans != nil {
		o.Spans.NoteEstimate(int64(r.Estimate.Latency), int64(r.Estimate.Tail.P99),
			r.Estimate.Valid, r.Estimate.Tail.Valid)
	}
	if r.AuditChecked {
		m.AuditSpans.Set(float64(r.Audit.Audited))
		m.AuditCoverage.Set(r.Audit.Coverage)
		m.AuditResidual.Set(r.Audit.ResidualEWMA.Seconds())
		if r.AuditDrift {
			m.AuditDrifts.Inc()
		}
	}
	if r.Estimate.RemoteStale {
		m.RemoteStale.Inc()
	}
	if r.ApplyErrors > 0 {
		m.ApplyErrors.Add(uint64(r.ApplyErrors))
	}
	if r.Applied {
		if r.Mode == policy.BatchOn {
			m.OnTicks.Inc()
		}
		if o.haveMode && r.Mode != o.lastMode {
			m.ModeFlips.Inc()
		}
		o.lastMode, o.haveMode = r.Mode, true
	}

	// Staleness: age of the freshest peer metadata across ports. Ports
	// without an exchange (hints-based, self-contained) contribute
	// nothing; the gauge then keeps its last value, 0 before any
	// exchange.
	remoteOK := false
	var remoteAt qstate.Time
	for _, s := range r.Samples {
		if s.RemoteOK && (!remoteOK || s.RemoteAt > remoteAt) {
			remoteOK, remoteAt = true, s.RemoteAt
		}
	}
	if remoteOK {
		m.StalenessAge.Set(time.Duration(now - remoteAt).Seconds())
	}

	explored := false
	if o.Stats != nil {
		st := o.Stats()
		m.Explorations.Add(st.Explorations - o.prev.Explorations)
		m.Switches.Add(st.Switches - o.prev.Switches)
		m.SafeModeEnters.Add(st.SafeFallbacks - o.prev.SafeFallbacks)
		explored = st.Explorations > o.prev.Explorations
		o.prev = st
	}

	if o.ring == nil {
		return
	}
	o.rec = DecisionRecord{
		At:               int64(now),
		Endpoint:         o.Name,
		Ports:            len(r.PerPort),
		LocalViewNs:      int64(r.Estimate.LocalView),
		LocalViewValid:   r.Estimate.LocalViewValid,
		RemoteViewNs:     int64(r.Estimate.RemoteView),
		RemoteViewValid:  r.Estimate.RemoteViewValid,
		LatencyNs:        int64(r.Estimate.Latency),
		ThroughputPerSec: r.Estimate.Throughput,
		Valid:            r.Estimate.Valid,
		Degraded:         r.Degraded,
		RemoteStale:      r.Estimate.RemoteStale,
		TailP99Ns:        int64(r.Estimate.Tail.P99),
		TailP999Ns:       int64(r.Estimate.Tail.P999),
		TailValid:        r.Estimate.Tail.Valid,
		TailAbstained:    r.TailAbstained,
		AuditChecked:     r.AuditChecked,
		AuditSpans:       r.Audit.Audited,
		AuditCoverage:    r.Audit.Coverage,
		AuditResidualNs:  int64(r.Audit.ResidualEWMA),
		AuditDrift:       r.AuditDrift,
		Explored:         explored,
		Mode:             r.Mode.String(),
		Applied:          r.Applied,
		ApplyErrors:      r.ApplyErrors,
	}
	if len(r.Samples) > 0 {
		o.rec.Snapshot = snapQueues(r.Samples[0].Local)
		o.rec.RemoteOK = r.Samples[0].RemoteOK
		o.rec.RemoteAtNs = int64(r.Samples[0].RemoteAt)
	}
	o.ring.Push(&o.rec)
	m.Records.Inc()
}
