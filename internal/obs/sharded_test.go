package obs

import (
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func TestShardedCounterSingleWriterCellsSum(t *testing.T) {
	c := NewShardedCounter(4)
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc(s)
			}
			c.Add(s, uint64(s))
		}(s)
	}
	wg.Wait()
	if got := c.Value(); got != 4*1000+0+1+2+3 {
		t.Fatalf("Value = %d, want %d", got, 4*1000+6)
	}
	for s := 0; s < 4; s++ {
		if got := c.ShardValue(s); got != 1000+uint64(s) {
			t.Fatalf("ShardValue(%d) = %d", s, got)
		}
	}
}

func TestShardedGaugeAddAndSet(t *testing.T) {
	g := NewShardedGauge(2)
	g.Add(0, 5)
	g.Add(0, -2)
	g.Set(1, 7)
	if g.ShardValue(0) != 3 || g.ShardValue(1) != 7 || g.Value() != 10 {
		t.Fatalf("gauge cells = %d,%d sum %d", g.ShardValue(0), g.ShardValue(1), g.Value())
	}
}

func TestShardedCellsArePadded(t *testing.T) {
	// The whole point of the cells is that adjacent shards' hot words sit
	// on distinct cache lines.
	if s := unsafe.Sizeof(shardCell{}); s < 64 {
		t.Fatalf("shardCell is %d bytes, want >= 64 (cache-line padded)", s)
	}
	if s := unsafe.Sizeof(shardGaugeCell{}); s < 64 {
		t.Fatalf("shardGaugeCell is %d bytes, want >= 64", s)
	}
}

func TestRegistryShardedRendering(t *testing.T) {
	r := NewRegistry()
	c := r.ShardedCounter("e2e_shard_ticks_total", "Ticks per shard.", 3)
	g := r.ShardedGauge("e2e_shard_conns", "Connections per shard.", 2, Label{"role", "fleet"})
	r.GaugeFunc("e2e_shard_ticks_sum", "Rolled-up tick total.", func() float64 {
		return float64(c.Value())
	})
	c.Inc(0)
	c.Add(2, 41)
	g.Add(0, 9)
	g.Add(1, -1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`e2e_shard_ticks_total{shard="0"} 1`,
		`e2e_shard_ticks_total{shard="1"} 0`,
		`e2e_shard_ticks_total{shard="2"} 41`,
		`e2e_shard_conns{role="fleet",shard="0"} 9`,
		`e2e_shard_conns{role="fleet",shard="1"} -1`,
		`e2e_shard_ticks_sum 42`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("rendering missing %q in:\n%s", want, out)
		}
	}

	b.Reset()
	if err := r.WriteVars(&b); err != nil {
		t.Fatal(err)
	}
	vars := b.String()
	for _, want := range []string{
		`"e2e_shard_ticks_total{shard=\"2\"}": 41`,
		`"e2e_shard_conns{role=\"fleet\",shard=\"1\"}": -1`,
	} {
		if !strings.Contains(vars, want) {
			t.Errorf("vars missing %q in:\n%s", want, vars)
		}
	}
}

func TestRegistryShardedReregistration(t *testing.T) {
	r := NewRegistry()
	a := r.ShardedCounter("x_total", "x", 2)
	b := r.ShardedCounter("x_total", "x", 2)
	if a != b {
		t.Fatal("re-registration returned a distinct counter")
	}
	a.Inc(1)
	if b.ShardValue(1) != 1 {
		t.Fatal("re-registered handle does not share cells")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("shard-count mismatch did not panic")
			}
		}()
		r.ShardedCounter("x_total", "x", 3)
	}()
	ga := r.ShardedGauge("y", "y", 2)
	if gb := r.ShardedGauge("y", "y", 2); gb != ga {
		t.Fatal("gauge re-registration returned a distinct gauge")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("gauge shard-count mismatch did not panic")
			}
		}()
		r.ShardedGauge("y", "y", 5)
	}()
}
