package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRingLastSemantics(t *testing.T) {
	r := NewRing(4)
	if got := r.Last(10); got != nil {
		t.Fatalf("empty ring Last = %v, want nil", got)
	}
	for i := 0; i < 6; i++ {
		r.Push(&DecisionRecord{At: int64(i)})
	}
	if r.Len() != 6 {
		t.Fatalf("Len = %d, want 6", r.Len())
	}
	// Capacity 4, 6 pushed: only records 2..5 survive, oldest first.
	got := r.Last(10)
	if len(got) != 4 {
		t.Fatalf("Last(10) returned %d records, want 4", len(got))
	}
	for i, rec := range got {
		wantSeq := uint64(2 + i)
		if rec.Seq != wantSeq || rec.At != int64(wantSeq) {
			t.Errorf("record %d: seq=%d at=%d, want seq=at=%d", i, rec.Seq, rec.At, wantSeq)
		}
	}
	if got := r.Last(2); len(got) != 2 || got[0].Seq != 4 || got[1].Seq != 5 {
		t.Fatalf("Last(2) = %+v, want seqs 4,5", got)
	}
	if got := r.Last(0); got != nil {
		t.Fatalf("Last(0) = %v, want nil", got)
	}
}

func TestRingJSONL(t *testing.T) {
	r := NewRing(8)
	r.Push(&DecisionRecord{At: 100, Mode: "batch-on", Valid: true})
	r.Push(&DecisionRecord{At: 200, Mode: "batch-off", Degraded: true})
	var b strings.Builder
	if err := r.WriteJSONL(&b, 10); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var lines []DecisionRecord
	for sc.Scan() {
		var rec DecisionRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, rec)
	}
	if len(lines) != 2 || lines[0].At != 100 || lines[1].At != 200 || !lines[1].Degraded {
		t.Fatalf("JSONL round-trip = %+v", lines)
	}
}

// TestRingConcurrentReaders exercises the lock-free-read contract: readers
// racing writers must never see torn or out-of-order views, only whole
// records with ascending sequences.
func TestRingConcurrentReaders(t *testing.T) {
	r := NewRing(64)
	const total = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			r.Push(&DecisionRecord{At: int64(i)})
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				recs := r.Last(32)
				var prev uint64
				for j, rec := range recs {
					if rec.At != int64(rec.Seq) {
						t.Errorf("torn record: seq=%d at=%d", rec.Seq, rec.At)
						return
					}
					if j > 0 && rec.Seq <= prev {
						t.Errorf("out-of-order read: %d after %d", rec.Seq, prev)
						return
					}
					prev = rec.Seq
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != total {
		t.Fatalf("Len = %d, want %d", r.Len(), total)
	}
}
