package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"

	"e2ebatch/internal/core"
	"e2ebatch/internal/qstate"
)

// SnapTuple is one queue's (time, total, integral) 3-tuple as carried in a
// decision record — the same tuple Algorithm 1 exports and the metadata
// exchange ships.
type SnapTuple struct {
	Time     int64 `json:"time_ns"`
	Total    int64 `json:"total"`
	Integral int64 `json:"integral"`
}

func tuple(s qstate.Snapshot) SnapTuple {
	return SnapTuple{Time: int64(s.Time), Total: s.Total, Integral: s.Integral}
}

// SnapQueues is one endpoint's three monitored queues in a record.
type SnapQueues struct {
	Unacked  SnapTuple `json:"unacked"`
	Unread   SnapTuple `json:"unread"`
	AckDelay SnapTuple `json:"ackdelay"`
}

func snapQueues(q core.Queues) SnapQueues {
	return SnapQueues{Unacked: tuple(q.Unacked), Unread: tuple(q.Unread), AckDelay: tuple(q.AckDelay)}
}

// DecisionRecord is one engine tick as the telemetry plane saw it: which
// snapshot produced which estimate, how the estimate decomposed into local
// and remote views, whether the tick was degraded, whether the policy
// explored, what mode came out, and whether applying it succeeded. The ring
// stores records by value, so a pushed record is a frozen copy regardless
// of what the pusher does with its scratch afterwards.
type DecisionRecord struct {
	// Seq is the record's position in the endpoint's decision stream
	// (0-based, monotone).
	Seq uint64 `json:"seq"`
	// At is the tick timestamp on the endpoint's clock, in nanoseconds
	// (virtual time under the sim, Client.Elapsed on real sockets).
	At int64 `json:"at_ns"`
	// Endpoint names the emitting endpoint when several share a ring.
	Endpoint string `json:"endpoint,omitempty"`
	// Ports is the endpoint's port count (estimates aggregate over them).
	Ports int `json:"ports"`

	// Snapshot is port 0's local queue tuples at the tick; RemoteOK and
	// RemoteAt describe the peer metadata that accompanied it.
	Snapshot   SnapQueues `json:"snapshot"`
	RemoteOK   bool       `json:"remote_ok"`
	RemoteAtNs int64      `json:"remote_at_ns,omitempty"`

	// The estimate's components: the two §3.2 evaluations and the
	// combined result.
	LocalViewNs      int64   `json:"local_view_ns"`
	LocalViewValid   bool    `json:"local_view_valid"`
	RemoteViewNs     int64   `json:"remote_view_ns"`
	RemoteViewValid  bool    `json:"remote_view_valid"`
	LatencyNs        int64   `json:"latency_ns"`
	ThroughputPerSec float64 `json:"throughput_rps"`
	Valid            bool    `json:"valid"`
	Degraded         bool    `json:"degraded"`
	RemoteStale      bool    `json:"remote_stale"`

	// The composed tail estimate (v2 exchanges): quantiles are meaningful
	// only when TailValid is set; TailAbstained marks ticks a
	// tail-targeting policy routed degraded because the tail was missing
	// despite a valid mean (v1 peer, reordered deltas, idle interval).
	TailP99Ns     int64 `json:"tail_p99_ns,omitempty"`
	TailP999Ns    int64 `json:"tail_p999_ns,omitempty"`
	TailValid     bool  `json:"tail_valid"`
	TailAbstained bool  `json:"tail_abstained,omitempty"`

	// The online estimator audit (engine.Config.Audit): how many sampled
	// spans have been scored, the live p99 coverage and residual EWMA, and
	// whether the audit tripped on this tick. All zero when no auditor is
	// attached (AuditChecked false).
	AuditChecked    bool    `json:"audit_checked,omitempty"`
	AuditSpans      uint64  `json:"audit_spans,omitempty"`
	AuditCoverage   float64 `json:"audit_coverage,omitempty"`
	AuditResidualNs int64   `json:"audit_residual_ns,omitempty"`
	AuditDrift      bool    `json:"audit_drift,omitempty"`

	// The decision: explore-vs-exploit, the chosen mode, and the apply
	// outcome.
	Explored    bool   `json:"explored"`
	Mode        string `json:"mode"`
	Applied     bool   `json:"applied"`
	ApplyErrors int    `json:"apply_errors"`
}

// ringSlot is one record slot. Records are stored by value under a per-slot
// mutex: a writer copies the record in, a reader copies it out, and neither
// ever holds more than one slot's lock at a time.
type ringSlot struct {
	mu  sync.Mutex
	rec DecisionRecord
	ok  bool // a record has been stored here
}

// Ring is a fixed-capacity ring buffer of decision records. Slots are
// claimed with an atomic counter and records are stored by value into
// per-slot mutexes, so publishing a record allocates nothing — the push
// side sits on the engine tick (//e2e:hotpath) and must not feed the GC.
// Readers lock one slot at a time for the copy-out, so a reader can stall a
// writer only on that single slot, never the ring. Writes from multiple
// endpoints are safe; per-endpoint record order is preserved because each
// endpoint ticks on one goroutine.
type Ring struct {
	slots []ringSlot
	next  atomic.Uint64 // sequence of the next record to be written
}

// NewRing returns a ring holding the last n records (n <= 0 defaults to
// 1024).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1024
	}
	return &Ring{slots: make([]ringSlot, n)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns how many records have ever been pushed.
func (r *Ring) Len() uint64 { return r.next.Load() }

// Push publishes a copy of *rec, stamping rec.Seq. The caller keeps
// ownership of rec and may reuse it for the next record (the scratch-record
// pattern EngineObserver uses).
//
//e2e:hotpath
func (r *Ring) Push(rec *DecisionRecord) {
	seq := r.next.Add(1) - 1
	rec.Seq = seq
	sl := &r.slots[seq%uint64(len(r.slots))]
	sl.mu.Lock()
	// A slower concurrent pusher may reach a slot after the writer that
	// lapped it; never let a stale record overwrite a newer one.
	if !sl.ok || sl.rec.Seq < seq {
		sl.rec = *rec
		sl.ok = true
	}
	sl.mu.Unlock()
}

// Last returns up to n of the most recent records, oldest first, copied out
// by value. Records overwritten mid-read are simply skipped (their slot
// then holds a newer record, which is filtered by sequence).
func (r *Ring) Last(n int) []DecisionRecord {
	head := r.next.Load()
	if n <= 0 || head == 0 {
		return nil
	}
	if uint64(n) > head {
		n = int(head)
	}
	if n > len(r.slots) {
		n = len(r.slots)
	}
	out := make([]DecisionRecord, 0, n)
	for seq := head - uint64(n); seq < head; seq++ {
		sl := &r.slots[seq%uint64(len(r.slots))]
		sl.mu.Lock()
		rec, ok := sl.rec, sl.ok
		sl.mu.Unlock()
		if ok && rec.Seq == seq {
			out = append(out, rec)
		}
	}
	return out
}

// WriteJSONL writes the last n records as JSON Lines, oldest first.
func (r *Ring) WriteJSONL(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	for _, rec := range r.Last(n) {
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return nil
}
