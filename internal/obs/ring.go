package obs

import (
	"encoding/json"
	"io"
	"sync/atomic"

	"e2ebatch/internal/core"
	"e2ebatch/internal/qstate"
)

// SnapTuple is one queue's (time, total, integral) 3-tuple as carried in a
// decision record — the same tuple Algorithm 1 exports and the metadata
// exchange ships.
type SnapTuple struct {
	Time     int64 `json:"time_ns"`
	Total    int64 `json:"total"`
	Integral int64 `json:"integral"`
}

func tuple(s qstate.Snapshot) SnapTuple {
	return SnapTuple{Time: int64(s.Time), Total: s.Total, Integral: s.Integral}
}

// SnapQueues is one endpoint's three monitored queues in a record.
type SnapQueues struct {
	Unacked  SnapTuple `json:"unacked"`
	Unread   SnapTuple `json:"unread"`
	AckDelay SnapTuple `json:"ackdelay"`
}

func snapQueues(q core.Queues) SnapQueues {
	return SnapQueues{Unacked: tuple(q.Unacked), Unread: tuple(q.Unread), AckDelay: tuple(q.AckDelay)}
}

// DecisionRecord is one engine tick as the telemetry plane saw it: which
// snapshot produced which estimate, how the estimate decomposed into local
// and remote views, whether the tick was degraded, whether the policy
// explored, what mode came out, and whether applying it succeeded. Records
// are immutable once published.
type DecisionRecord struct {
	// Seq is the record's position in the endpoint's decision stream
	// (0-based, monotone).
	Seq uint64 `json:"seq"`
	// At is the tick timestamp on the endpoint's clock, in nanoseconds
	// (virtual time under the sim, Client.Elapsed on real sockets).
	At int64 `json:"at_ns"`
	// Endpoint names the emitting endpoint when several share a ring.
	Endpoint string `json:"endpoint,omitempty"`
	// Ports is the endpoint's port count (estimates aggregate over them).
	Ports int `json:"ports"`

	// Snapshot is port 0's local queue tuples at the tick; RemoteOK and
	// RemoteAt describe the peer metadata that accompanied it.
	Snapshot   SnapQueues `json:"snapshot"`
	RemoteOK   bool       `json:"remote_ok"`
	RemoteAtNs int64      `json:"remote_at_ns,omitempty"`

	// The estimate's components: the two §3.2 evaluations and the
	// combined result.
	LocalViewNs      int64   `json:"local_view_ns"`
	LocalViewValid   bool    `json:"local_view_valid"`
	RemoteViewNs     int64   `json:"remote_view_ns"`
	RemoteViewValid  bool    `json:"remote_view_valid"`
	LatencyNs        int64   `json:"latency_ns"`
	ThroughputPerSec float64 `json:"throughput_rps"`
	Valid            bool    `json:"valid"`
	Degraded         bool    `json:"degraded"`
	RemoteStale      bool    `json:"remote_stale"`

	// The decision: explore-vs-exploit, the chosen mode, and the apply
	// outcome.
	Explored    bool   `json:"explored"`
	Mode        string `json:"mode"`
	Applied     bool   `json:"applied"`
	ApplyErrors int    `json:"apply_errors"`
}

// Ring is a fixed-capacity ring buffer of decision records with lock-free
// reads: writers publish immutable records through atomic pointers, readers
// copy pointers out with atomic loads. No reader can block a tick and no
// tick can tear a read. Writes from multiple endpoints are safe (slots are
// claimed with an atomic counter); per-endpoint record order is preserved
// because each endpoint ticks on one goroutine.
type Ring struct {
	slots []atomic.Pointer[DecisionRecord]
	next  atomic.Uint64 // sequence of the next record to be written
}

// NewRing returns a ring holding the last n records (n <= 0 defaults to
// 1024).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1024
	}
	return &Ring{slots: make([]atomic.Pointer[DecisionRecord], n)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns how many records have ever been pushed.
func (r *Ring) Len() uint64 { return r.next.Load() }

// Push publishes rec, stamping its Seq. The caller must not mutate rec
// afterwards.
func (r *Ring) Push(rec *DecisionRecord) {
	seq := r.next.Add(1) - 1
	rec.Seq = seq
	r.slots[seq%uint64(len(r.slots))].Store(rec)
}

// Last returns up to n of the most recent records, oldest first. It never
// blocks writers; records overwritten mid-read are simply skipped (their
// slot then holds a newer record, which is filtered by sequence).
func (r *Ring) Last(n int) []*DecisionRecord {
	head := r.next.Load()
	if n <= 0 || head == 0 {
		return nil
	}
	if uint64(n) > head {
		n = int(head)
	}
	if n > len(r.slots) {
		n = len(r.slots)
	}
	out := make([]*DecisionRecord, 0, n)
	for seq := head - uint64(n); seq < head; seq++ {
		rec := r.slots[seq%uint64(len(r.slots))].Load()
		if rec != nil && rec.Seq == seq {
			out = append(out, rec)
		}
	}
	return out
}

// WriteJSONL writes the last n records as JSON Lines, oldest first.
func (r *Ring) WriteJSONL(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	for _, rec := range r.Last(n) {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
