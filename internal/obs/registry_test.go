package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("e2e_test_ticks_total", "Ticks.")
	c.Add(3)
	g := reg.Gauge("e2e_test_staleness_seconds", "Age.")
	g.Set(0.25)
	reg.GaugeFunc("e2e_test_resets", "Resets.", func() float64 { return 7 })
	lf := reg.Counter("e2e_test_faults_total", "Faults.", Label{"kind", "loss"})
	lf.Inc()
	reg.Counter("e2e_test_faults_total", "Faults.", Label{"kind", "stall"}).Add(2)
	l := reg.Latencies("e2e_test_latency_seconds", "Latency.")
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP e2e_test_ticks_total Ticks.\n# TYPE e2e_test_ticks_total counter\ne2e_test_ticks_total 3\n",
		"# TYPE e2e_test_staleness_seconds gauge\ne2e_test_staleness_seconds 0.25\n",
		"e2e_test_resets 7\n",
		`e2e_test_faults_total{kind="loss"} 1`,
		`e2e_test_faults_total{kind="stall"} 2`,
		"# TYPE e2e_test_latency_seconds summary\n",
		`e2e_test_latency_seconds{quantile="0.5"} `,
		`e2e_test_latency_seconds{quantile="0.99"} `,
		"e2e_test_latency_seconds_count 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// Every non-comment line must be "name{labels} value" with a parseable
	// value — the shape Prometheus's text parser accepts.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, " ") != 1 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestRegistryReuseAndTypeClash(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "X.")
	b := reg.Counter("x_total", "X.")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	l1 := reg.Counter("y_total", "Y.", Label{"k", "1"})
	l2 := reg.Counter("y_total", "Y.", Label{"k", "2"})
	if l1 == l2 {
		t.Fatal("distinct labels must return distinct children")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as gauge must panic")
		}
	}()
	reg.Gauge("x_total", "X.")
}

func TestVarsIsValidJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "A.").Add(5)
	reg.Gauge("b", "B.").Set(1.5)
	reg.Latencies("c_seconds", "C.").Record(time.Millisecond)
	var b strings.Builder
	if err := reg.WriteVars(&b); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("vars output is not JSON: %v\n%s", err, b.String())
	}
	if m["a_total"] != float64(5) {
		t.Errorf("a_total = %v, want 5", m["a_total"])
	}
	if m["c_seconds_count"] != float64(1) {
		t.Errorf("c_seconds_count = %v, want 1", m["c_seconds_count"])
	}
}

func TestConcurrentMetricUse(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("races_total", "R.")
	g := reg.Gauge("g", "G.")
	l := reg.Latencies("l_seconds", "L.")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(float64(i))
				l.Record(time.Duration(i))
				// Concurrent registration of the same family must be
				// safe too.
				reg.Counter("races_total", "R.")
			}
		}(w)
	}
	var scr sync.WaitGroup
	scr.Add(1)
	go func() {
		defer scr.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			reg.WritePrometheus(&b)
			reg.WriteVars(&b)
		}
	}()
	wg.Wait()
	scr.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	h := l.Snapshot()
	if got := h.Count(); got != 8000 {
		t.Fatalf("latency count = %d, want 8000", got)
	}
}
