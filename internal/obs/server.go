package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"e2ebatch/internal/obs/span"
)

// queryN parses the ?n= record-count parameter, writing a 400 and
// returning ok=false on a malformed value.
func queryN(w http.ResponseWriter, r *http.Request, def int) (int, bool) {
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return 0, false
		}
		return v, true
	}
	return def, true
}

// DebugServer serves the telemetry plane over HTTP behind one flag:
//
//	/metrics           Prometheus text exposition of the registry
//	/debug/decisions   last K decision records as JSONL (?n=K, default 64)
//	/debug/spans       last K spans per ring shard as JSONL (?n=K, default 256)
//	/debug/trace       the same spans in Chrome trace_event JSON (?n=K)
//	/debug/vars        flat JSON view of the registry
//	/debug/pprof/...   net/http/pprof profiles
//
// Construct with NewDebugServer, then Start(addr). The zero ring is
// allowed (decisions endpoint serves nothing); attach a span ring with
// SetSpans before Start or the span endpoints serve empty documents.
type DebugServer struct {
	reg   *Registry
	ring  *Ring
	spans *span.Ring
	srv   *http.Server
	ln    net.Listener
}

// NewDebugServer builds a server over reg and ring (ring may be nil).
func NewDebugServer(reg *Registry, ring *Ring) *DebugServer {
	return &DebugServer{reg: reg, ring: ring}
}

// SetSpans attaches the span ring the /debug/spans and /debug/trace
// endpoints export. Call before Start.
func (d *DebugServer) SetSpans(r *span.Ring) { d.spans = r }

// Handler returns the debug mux (exported for in-process tests).
func (d *DebugServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		d.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		d.reg.WriteVars(w)
	})
	mux.HandleFunc("/debug/decisions", func(w http.ResponseWriter, r *http.Request) {
		n, ok := queryN(w, r, 64)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		if d.ring != nil {
			d.ring.WriteJSONL(w, n)
		}
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		n, ok := queryN(w, r, 256)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		if d.spans != nil {
			d.spans.WriteJSONL(w, n)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		n, ok := queryN(w, r, 256)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if d.spans == nil {
			w.Write([]byte(`{"traceEvents":[]}`))
			return
		}
		d.spans.WriteChromeTrace(w, n)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (e.g. "127.0.0.1:9090"; ":0" picks a port) and
// serves in a background goroutine until Close. It returns the bound
// address so callers can print it.
func (d *DebugServer) Start(addr string) (net.Addr, error) {
	if d.srv != nil {
		return nil, fmt.Errorf("obs: debug server already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d.ln = ln
	d.srv = &http.Server{Handler: d.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go d.srv.Serve(ln)
	return ln.Addr(), nil
}

// Addr returns the bound address, or nil before Start.
func (d *DebugServer) Addr() net.Addr {
	if d.ln == nil {
		return nil
	}
	return d.ln.Addr()
}

// Close stops the server. It is safe to call before Start (no-op).
func (d *DebugServer) Close() error {
	if d.srv == nil {
		return nil
	}
	return d.srv.Close()
}
