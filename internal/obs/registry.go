// Package obs is the runtime telemetry plane: a typed metric registry
// exported in Prometheus text exposition format, a lock-free-read ring of
// per-tick engine decision records, and a debug HTTP server mounting
// /metrics, /debug/decisions, /debug/vars and net/http/pprof.
//
// The paper's thesis is that batching decisions must be driven by measured
// end-to-end estimates; this package applies the same standard to the
// reproduction itself. Production estimators in this space treat the
// estimate pipeline as an observable object (PAPERS.md: Lancet's latency
// histograms, Zhao et al.'s continuous flow-level estimate streams), and
// closed-loop controllers are exactly where silent drift goes unnoticed
// (Lübben & Fidler). Everything here is stdlib-only.
//
// Determinism contract: nothing in the simulation's golden paths may touch
// this package. The engine exports telemetry through the engine.Observer
// seam only, a nil observer costs nothing, and the obsdeterminism analyzer
// (DESIGN.md §8) mechanically forbids internal/sim, internal/tcpsim and
// internal/figures from reaching in.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"e2ebatch/internal/metrics"
)

// A Label is one constant name/value pair attached to a metric instance.
// Metrics sharing a family name but differing in labels are distinct
// children of one family, exactly as in Prometheus.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Latencies wraps metrics.Histogram with a mutex so concurrent recorders
// (request handlers, the tick goroutine) can share it, and exports as a
// Prometheus summary: quantiles in seconds plus _sum and _count.
type Latencies struct {
	mu sync.Mutex
	h  metrics.Histogram
}

// Record adds one sample.
func (l *Latencies) Record(d time.Duration) {
	l.mu.Lock()
	l.h.Record(d)
	l.mu.Unlock()
}

// Snapshot returns a copy of the underlying histogram.
func (l *Latencies) Snapshot() metrics.Histogram {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h
}

// summaryQuantiles are the quantiles every Latencies family exports.
var summaryQuantiles = []float64{0.5, 0.9, 0.99, 1}

// metric is anything a family can hold.
type metric interface{}

// child is one labeled instance inside a family.
type child struct {
	labels string // rendered {k="v",...} or ""
	m      metric
}

// family is one exported metric family: a name, help, type and children.
type family struct {
	name, help, typ string
	children        []*child
}

// Registry holds metric families in registration order and renders them in
// Prometheus text exposition format (version 0.0.4). Registration takes a
// lock; reads of the registered metrics themselves are atomic and lock-free
// (Counter/Gauge) or histogram-mutexed (Latencies).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register resolves (or creates) the family and returns the child for the
// label set, creating it with mk when absent. A name reused with a
// different metric type panics — that is a wiring bug, not a runtime
// condition.
func (r *Registry) register(name, help, typ string, labels []Label, mk func() metric) metric {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	for _, c := range f.children {
		if c.labels == ls {
			return c.m
		}
	}
	c := &child{labels: ls, m: mk()}
	f.children = append(f.children, c)
	return c.m
}

// Counter registers (or returns the existing) counter name with the given
// constant labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, "counter", labels, func() metric { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, "gauge", labels, func() metric { return &Gauge{} }).(*Gauge)
}

// gaugeFunc samples a callback at scrape time.
type gaugeFunc struct {
	fn func() float64
}

// GaugeFunc registers a gauge whose value is computed by fn at every
// scrape — for bridging counters owned elsewhere (e.g. reconnect totals)
// without double bookkeeping. fn must be safe to call from the scrape
// goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, "gauge", labels, func() metric { return gaugeFunc{fn} })
}

// Latencies registers (or returns the existing) latency summary.
func (r *Registry) Latencies(name, help string, labels ...Label) *Latencies {
	return r.register(name, help, "summary", labels, func() metric { return &Latencies{} }).(*Latencies)
}

// snapshotFamilies copies the family list under the lock so rendering can
// proceed without holding it (GaugeFunc callbacks may take their own
// locks).
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		cp := &family{name: f.name, help: f.help, typ: f.typ}
		cp.children = append(cp.children, f.children...)
		out = append(out, cp)
	}
	return out
}

// WritePrometheus renders every family in text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		for _, c := range f.children {
			if err := writeChild(w, f, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, f *family, c *child) error {
	switch m := c.m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, c.labels, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, c.labels, formatFloat(m.Value()))
		return err
	case gaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, c.labels, formatFloat(m.fn()))
		return err
	case shardedCounterChild:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, c.labels, m.c.ShardValue(m.shard))
		return err
	case shardedGaugeChild:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, c.labels, m.g.ShardValue(m.shard))
		return err
	case *Latencies:
		h := m.Snapshot()
		for _, q := range summaryQuantiles {
			ql := addLabel(c.labels, Label{"quantile", trimFloat(q)})
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				f.name, ql, formatFloat(h.Quantile(q).Seconds())); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, c.labels,
			formatFloat(h.Sum().Seconds())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, c.labels, h.Count())
		return err
	}
	return fmt.Errorf("obs: unknown metric kind %T", c.m)
}

// WriteVars renders the registry as one flat JSON object keyed by
// "name{labels}" — the /debug/vars view. Summaries expand to their
// quantile, sum and count series like the Prometheus rendering.
func (r *Registry) WriteVars(w io.Writer) error {
	type kv struct {
		k string
		v string
	}
	var pairs []kv
	for _, f := range r.snapshotFamilies() {
		for _, c := range f.children {
			switch m := c.m.(type) {
			case *Counter:
				pairs = append(pairs, kv{f.name + c.labels, strconv.FormatUint(m.Value(), 10)})
			case *Gauge:
				pairs = append(pairs, kv{f.name + c.labels, jsonFloat(m.Value())})
			case gaugeFunc:
				pairs = append(pairs, kv{f.name + c.labels, jsonFloat(m.fn())})
			case shardedCounterChild:
				pairs = append(pairs, kv{f.name + c.labels, strconv.FormatUint(m.c.ShardValue(m.shard), 10)})
			case shardedGaugeChild:
				pairs = append(pairs, kv{f.name + c.labels, strconv.FormatInt(m.g.ShardValue(m.shard), 10)})
			case *Latencies:
				h := m.Snapshot()
				for _, q := range summaryQuantiles {
					pairs = append(pairs, kv{
						f.name + addLabel(c.labels, Label{"quantile", trimFloat(q)}),
						jsonFloat(h.Quantile(q).Seconds())})
				}
				pairs = append(pairs, kv{f.name + "_sum" + c.labels, jsonFloat(h.Sum().Seconds())})
				pairs = append(pairs, kv{f.name + "_count" + c.labels, strconv.FormatUint(h.Count(), 10)})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, p := range pairs {
		sep := ",\n "
		if i == 0 {
			sep = "\n "
		}
		if _, err := fmt.Fprintf(w, "%s%s: %s", sep, strconv.Quote(p.k), p.v); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

// renderLabels renders a label set as {k="v",...} with keys sorted, or ""
// for none.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", l.Key, strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// addLabel splices one more label into an already-rendered label set.
func addLabel(rendered string, l Label) string {
	extra := fmt.Sprintf("%s=%s", l.Key, strconv.Quote(l.Value))
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float for the exposition format.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonFloat renders a float for the vars JSON (JSON has no NaN/Inf).
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// trimFloat renders a quantile label value ("0.5", "0.99", "1").
func trimFloat(q float64) string {
	return strconv.FormatFloat(q, 'g', -1, 64)
}
