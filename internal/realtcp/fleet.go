package realtcp

// The fleet runner: the 50k-connection proof for the shared-nothing shard
// engine (ROADMAP item 1). One process holds Conns concurrent connections
// to a kvserver, every one of them running the paper's control loop — and
// not one of them owning a goroutine or a timer. Each connection hashes to
// a shard; its estimate/decision tick, its send pacing, and its reconnect
// backoff are all Timers on that shard's wheel, so the steady-state cost
// per connection is a wheel slot plus the parked read-loop goroutine the
// Go netpoller already multiplexes for free. Connections split into a
// controlled half (ε-greedy NODELAY toggling driven by their own hint
// estimates) and a Nagle baseline half, and per-request latencies record
// into per-connection DelayHists that merge into the controlled-vs-Nagle
// p50/p99/p999 comparison at report time.

import (
	"errors"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"e2ebatch/internal/engine"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/shard"
)

// FleetOptions configures a fleet run. Only Addr, Conns, Duration and
// Request are required.
type FleetOptions struct {
	// Addr is the server address.
	Addr string
	// Conns is the fleet size. Even indices run the controlled policy,
	// odd indices the Nagle baseline, so the two groups interleave across
	// shards and dial order.
	Conns int
	// Active is how many connections send at Rate (default Conns/10,
	// minimum 1); the rest are idle-mostly, sending one heartbeat every
	// IdleEvery. This is the paper's fleet shape: most connections idle,
	// a hot subset saturating, every one of them still estimated.
	Active int
	// Rate is each active connection's request rate (default 50/s).
	Rate float64
	// IdleEvery is the idle connections' heartbeat period (default 5s).
	IdleEvery time.Duration
	// Duration is the send window.
	Duration time.Duration
	// Request is the wire request active connections send; IdleRequest
	// (default Request) is the heartbeat.
	Request     []byte
	IdleRequest []byte
	// Shards is the shard count (default GOMAXPROCS); WheelTick the wheel
	// granularity (default 1ms); Tick each connection's control tick
	// (default 250ms — coarse, because the whole point is running the
	// loop on 50k connections within a budgeted control-plane cost).
	Shards    int
	WheelTick time.Duration
	Tick      time.Duration
	// SLO is the controlled group's toggling objective (default 500µs).
	SLO time.Duration
	// Seed derives every controlled connection's exploration RNG via
	// splitmix64(Seed, index), so runs are reproducible (default 1).
	Seed int64
	// MaxInflight bounds each connection's pipeline depth (default 32);
	// a paced send finding the pipe full is skipped and counted, keeping
	// the shard loop from ever blocking on a slow connection.
	MaxInflight int
	// DialTimeout (default 5s), DialWorkers (default 128) shape the ramp.
	DialTimeout time.Duration
	DialWorkers int
	// ReadBufBytes sizes each connection's read buffer (default 4 KiB —
	// 64 KiB × 50k would be 3 GB of buffers).
	ReadBufBytes int
	// SourceIPs > 0 rotates dial source addresses 127.0.0.{2..2+n-1} to
	// stretch past single-address ephemeral-port limits; 0 auto-enables
	// 64 of them for loopback targets beyond 16k connections; negative
	// disables.
	SourceIPs int
	// ReconnectMax bounds redial attempts per connection (default 4);
	// backoff starts at ReconnectBase (default 100ms) and doubles on the
	// connection's shard wheel.
	ReconnectMax  int
	ReconnectBase time.Duration
	// DrainTimeout bounds the post-window wait for outstanding responses
	// (default 5s).
	DrainTimeout time.Duration
	// OnSpan, when non-nil, receives every completion on every connection:
	// the connection index, its shard, the per-incarnation FIFO request id,
	// and the send/ack nanosecond stamps on that connection's monotonic
	// timebase (see Client.ObserveCompletions). It runs on read-loop
	// goroutines — many concurrently — and must not block; kvload samples
	// and fans these into the span ring. reqID restarts at 0 when a
	// connection reconnects.
	OnSpan func(conn, shard int, reqID uint64, sentNs, ackNs int64)
}

// TailSummary is one group's merged latency distribution.
type TailSummary struct {
	Conns            int
	Count            uint64
	P50, P99, P999   time.Duration
	DegradedTicks    uint64
	ValidEstimates   uint64
	ControlTicks     uint64
	ModeErrors       uint64
	FinalBatchOnFrac float64 // controlled group: fraction ending batch-on
}

// FleetReport is a completed run's accounting.
type FleetReport struct {
	Conns      int
	DialErrors int
	Elapsed    time.Duration

	Controlled TailSummary
	Nagle      TailSummary

	Sent, Completed, Skipped uint64
	Reconnects, DeadConns    uint64

	// Shards snapshots each shard's wheel/loop counters at teardown;
	// MaxBehindTicks is their worst tick backlog (0 = every shard kept up).
	Shards         []shard.Stats
	MaxBehindTicks int64
	// FinalRunQueue sums run-queue depth after stop — nonzero means work
	// was lost, which the scale smoke asserts never happens.
	FinalRunQueue int
}

// paddedCell is a cache-line-padded counter cell (one per shard per
// counter) — the same idiom as obs.ShardedCounter, local so the data path
// does not couple to the telemetry plane.
type paddedCell struct {
	v atomic.Uint64
	_ [56]byte
}

type fleetCounters struct {
	sent, completed, skipped, reconnects, dead []paddedCell
}

func newFleetCounters(shards int) fleetCounters {
	return fleetCounters{
		sent:       make([]paddedCell, shards),
		completed:  make([]paddedCell, shards),
		skipped:    make([]paddedCell, shards),
		reconnects: make([]paddedCell, shards),
		dead:       make([]paddedCell, shards),
	}
}

func sumCells(cs []paddedCell) uint64 {
	var t uint64
	for i := range cs {
		t += cs[i].v.Load()
	}
	return t
}

// FleetShardLive is one shard's live counters, readable during the run —
// what kvload's GaugeFuncs roll up into /metrics at scrape time.
type FleetShardLive struct {
	Sent, Completed, Skipped uint64
	Reconnects, DeadConns    uint64
	Wheel                    shard.Stats
}

// Fleet is a configured high-fan-in run. Build with NewFleet, execute with
// Run; the live accessors are safe concurrently with Run.
type Fleet struct {
	opts  FleetOptions
	g     *shard.Group
	conns []*fleetConn
	ctrs  fleetCounters

	dialErrs atomic.Int64
}

// fleetConn is one connection's shard-owned control block. After setup,
// every field is owned by the connection's shard goroutine, except hist
// and completed-counting (written by the client's read loop, read after
// Close) and the atomic fleet counters.
type fleetConn struct {
	f          *Fleet
	idx        int
	sh         *shard.Shard
	controlled bool
	active     bool
	req        []byte
	sendEvery  time.Duration

	c   *Client
	ep  *engine.Endpoint
	tog *policy.Toggler

	tickT  shard.Timer
	sendT  shard.Timer
	reconT shard.Timer

	dead     bool
	attempts int
	backoff  time.Duration

	// prior accumulates engine stats across reconnect-driven endpoint
	// swaps so the report sees the connection's whole history.
	prior engine.Stats

	hist qstate.DelayHist // written only by the connection's read loop
}

// NewFleet validates options and fills defaults; dialing happens in Run.
func NewFleet(opts FleetOptions) (*Fleet, error) {
	if opts.Addr == "" || opts.Conns <= 0 || opts.Duration <= 0 || len(opts.Request) == 0 {
		return nil, errors.New("realtcp: fleet needs an address, a connection count, a duration, and a request")
	}
	if opts.Active <= 0 {
		opts.Active = opts.Conns / 10
		if opts.Active < 1 {
			opts.Active = 1
		}
	}
	if opts.Active > opts.Conns {
		opts.Active = opts.Conns
	}
	if opts.Rate <= 0 {
		opts.Rate = 50
	}
	if opts.IdleEvery <= 0 {
		opts.IdleEvery = 5 * time.Second
	}
	if len(opts.IdleRequest) == 0 {
		opts.IdleRequest = opts.Request
	}
	if opts.WheelTick <= 0 {
		opts.WheelTick = time.Millisecond
	}
	if opts.Tick <= 0 {
		opts.Tick = 250 * time.Millisecond
	}
	if opts.Tick < opts.WheelTick {
		opts.Tick = opts.WheelTick
	}
	if opts.SLO <= 0 {
		opts.SLO = 500 * time.Microsecond
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 32
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.DialWorkers <= 0 {
		opts.DialWorkers = 128
	}
	if opts.ReadBufBytes <= 0 {
		opts.ReadBufBytes = 4 << 10
	}
	if opts.SourceIPs == 0 && opts.Conns > 16000 && len(opts.Addr) >= 4 && opts.Addr[:4] == "127." {
		opts.SourceIPs = 64
	}
	if opts.ReconnectMax <= 0 {
		opts.ReconnectMax = 4
	}
	if opts.ReconnectBase <= 0 {
		opts.ReconnectBase = 100 * time.Millisecond
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 5 * time.Second
	}
	g := shard.NewGroup(shard.Config{Shards: opts.Shards, Tick: opts.WheelTick})
	return &Fleet{
		opts:  opts,
		g:     g,
		conns: make([]*fleetConn, opts.Conns),
		ctrs:  newFleetCounters(g.Len()),
	}, nil
}

// Shards returns the shard count.
func (f *Fleet) Shards() int { return f.g.Len() }

// ShardLive returns shard i's live counters (safe during Run: all cells
// are atomic).
func (f *Fleet) ShardLive(i int) FleetShardLive {
	return FleetShardLive{
		Sent:       f.ctrs.sent[i].v.Load(),
		Completed:  f.ctrs.completed[i].v.Load(),
		Skipped:    f.ctrs.skipped[i].v.Load(),
		Reconnects: f.ctrs.reconnects[i].v.Load(),
		DeadConns:  f.ctrs.dead[i].v.Load(),
		Wheel:      f.g.Shard(i).Stats(),
	}
}

// splitmix64 derives per-connection seeds from the run seed — the same
// per-index stream derivation the workload zoo uses, so connection k
// explores identically run to run regardless of dial order.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// srcAddrFor returns the rotated dial source address for connection idx,
// or "" for the default.
func (f *Fleet) srcAddrFor(idx int) string {
	if f.opts.SourceIPs <= 0 {
		return ""
	}
	return "127.0.0." + strconv.Itoa(2+idx%f.opts.SourceIPs) + ":0"
}

// dial connects fleetConn idx and builds its endpoint; runs on a dial
// worker. The returned conn still needs its shard setup Submitted.
func (f *Fleet) dial(idx int) *fleetConn {
	o := f.opts
	fc := &fleetConn{
		f:          f,
		idx:        idx,
		sh:         f.g.Of(shard.HashUint64(uint64(idx))),
		controlled: idx%2 == 0,
		active:     idx < o.Active,
		backoff:    o.ReconnectBase,
	}
	if fc.active {
		fc.req = o.Request
		fc.sendEvery = time.Duration(float64(time.Second) / o.Rate)
	} else {
		fc.req = o.IdleRequest
		fc.sendEvery = o.IdleEvery
	}
	c, err := DialWith(o.Addr, DialOptions{
		MaxInflight:       o.MaxInflight,
		DialTimeout:       o.DialTimeout,
		ReadBufBytes:      o.ReadBufBytes,
		DiscardLatencyLog: true,
		LocalAddr:         f.srcAddrFor(idx),
	})
	if err != nil {
		f.dialErrs.Add(1)
		fc.dead = true
		f.ctrs.dead[fc.sh.ID()].v.Add(1)
		return fc
	}
	fc.adoptClient(c)
	return fc
}

// adoptClient points the control block at a (re)dialed client: latency
// observer, endpoint, initial mode. Called from a dial worker before the
// shard setup, or on the shard goroutine at reconnect.
func (fc *fleetConn) adoptClient(c *Client) {
	fc.c = c
	c.ObserveLatencies(fc.onLatency)
	if fc.f.opts.OnSpan != nil {
		c.ObserveCompletions(fc.onCompletion)
	}
	cfg := engine.Config{ModeErrorLimit: 3}
	if fc.controlled {
		rng := rand.New(rand.NewSource(int64(splitmix64(uint64(fc.f.opts.Seed) + uint64(fc.idx)))))
		fc.tog = policy.NewToggler(policy.ThroughputUnderSLO{SLO: fc.f.opts.SLO},
			policy.DefaultTogglerConfig(), policy.BatchOff, rng)
		cfg.Controller = fc.tog
		cfg.Initial = policy.BatchOff
	}
	fc.ep = engine.New(cfg, c.EnginePort())
	if !fc.controlled {
		// The baseline group holds classic Nagle batching; its passive
		// endpoint still estimates every tick but applies nothing.
		c.SetNoDelay(false)
	}
}

// onLatency runs on the connection's read-loop goroutine: one histogram
// write (single writer per hist) and one atomic cell add.
func (fc *fleetConn) onLatency(d time.Duration) {
	fc.hist.Record(d)
	fc.f.ctrs.completed[fc.sh.ID()].v.Add(1)
}

// onCompletion forwards one completion to the fleet's span hook; runs on
// the connection's read-loop goroutine.
func (fc *fleetConn) onCompletion(reqID uint64, sentNs, ackNs int64) {
	fc.f.opts.OnSpan(fc.idx, fc.sh.ID(), reqID, sentNs, ackNs)
}

// setup arms the connection's wheel timers; runs on the shard goroutine.
// Phases derive from the connection index so 50k schedules spread across
// wheel slots instead of thundering on one boundary.
func (fc *fleetConn) setup() {
	if fc.dead {
		return
	}
	o := fc.f.opts
	phase := time.Duration(fc.idx) * 7 * o.WheelTick
	fc.tickT.Fn = fc.onTick
	fc.sh.Wheel().ArmPeriodic(&fc.tickT, o.Tick+phase%o.Tick, o.Tick)
	fc.sendT.Fn = fc.onSend
	fc.sh.Wheel().ArmPeriodic(&fc.sendT, fc.sendEvery+phase%fc.sendEvery, fc.sendEvery)
	fc.reconT.Fn = fc.onReconnectDue
}

// onTick is the shard-callable engine tick: liveness probe, then the
// estimate→policy loop, straight on the shard goroutine.
func (fc *fleetConn) onTick(now qstate.Time) {
	select {
	case <-fc.c.Done():
		fc.onDead()
		return
	default:
	}
	fc.ep.Tick(fc.c.Elapsed())
}

// onSend paces one request. A full pipeline skips rather than blocks: the
// shard loop must never wait on one connection's socket.
func (fc *fleetConn) onSend(now qstate.Time) {
	if int(fc.c.Outstanding()) >= fc.f.opts.MaxInflight-1 {
		fc.f.ctrs.skipped[fc.sh.ID()].v.Add(1)
		return
	}
	if err := fc.c.Send(fc.req); err != nil {
		fc.onDead()
		return
	}
	fc.f.ctrs.sent[fc.sh.ID()].v.Add(1)
}

// onDead moves a failed connection onto the reconnect path: unschedule its
// tick/send timers, roll its endpoint stats into the accumulator, and arm
// the backoff timer on the wheel (no goroutine sleeps anywhere).
func (fc *fleetConn) onDead() {
	fc.sh.Wheel().Cancel(&fc.tickT)
	fc.sh.Wheel().Cancel(&fc.sendT)
	fc.dead = true
	fc.prior = addEngineStats(fc.prior, fc.ep.Stats())
	f := fc.f
	f.ctrs.dead[fc.sh.ID()].v.Add(1)
	if fc.attempts >= f.opts.ReconnectMax {
		return
	}
	fc.attempts++
	fc.sh.Wheel().Arm(&fc.reconT, fc.backoff)
	fc.backoff *= 2
}

// onReconnectDue fires on the wheel when the backoff expires; the dial
// itself is blocking I/O, so it hops to a short-lived goroutine and hands
// the result back through the shard's run queue.
func (fc *fleetConn) onReconnectDue(now qstate.Time) {
	go fc.redial()
}

// redial closes the dead client (waiting out its read loop), dials anew,
// and Submits adoption back onto the shard. Runs on its own goroutine; the
// only fleetConn fields it touches are the ones the shard handed over by
// scheduling it (the dead connection's client).
func (fc *fleetConn) redial() {
	fc.c.Close()
	o := fc.f.opts
	c, err := DialWith(o.Addr, DialOptions{
		MaxInflight:       o.MaxInflight,
		DialTimeout:       o.DialTimeout,
		ReadBufBytes:      o.ReadBufBytes,
		DiscardLatencyLog: true,
		LocalAddr:         fc.f.srcAddrFor(fc.idx),
	})
	ok := fc.sh.Submit(func() {
		if err != nil {
			// Re-arm the next backoff, or give up past ReconnectMax.
			if fc.attempts < o.ReconnectMax {
				fc.attempts++
				fc.sh.Wheel().Arm(&fc.reconT, fc.backoff)
				fc.backoff *= 2
			}
			return
		}
		fc.adoptClient(c)
		fc.dead = false
		fc.f.ctrs.dead[fc.sh.ID()].v.Add(^uint64(0)) // -1: back alive
		fc.f.ctrs.reconnects[fc.sh.ID()].v.Add(1)
		fc.setup()
	})
	if !ok && err == nil {
		c.Close() // fleet stopped while we were dialing
	}
}

func addEngineStats(a, b engine.Stats) engine.Stats {
	a.TotalTicks += b.TotalTicks
	a.OnTicks += b.OnTicks
	a.DegradedTicks += b.DegradedTicks
	a.TailAbstainedTicks += b.TailAbstainedTicks
	a.AuditDriftTicks += b.AuditDriftTicks
	a.ValidEstimates += b.ValidEstimates
	a.ModeErrors += b.ModeErrors
	return a
}

// Run executes the fleet: ramp, hold, drain, teardown, report. It blocks
// for roughly Duration plus ramp and drain.
func (f *Fleet) Run() (*FleetReport, error) {
	o := f.opts
	start := time.Now()
	f.g.Start()

	// Ramp: dial workers fill f.conns and Submit each connection's timer
	// setup to its shard. Submit blocks when a shard's queue fills — that
	// backpressure paces the ramp instead of flooding the loops.
	var wg sync.WaitGroup
	next := make(chan int, o.DialWorkers)
	for w := 0; w < o.DialWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				fc := f.dial(idx)
				f.conns[idx] = fc
				if !fc.dead {
					fc.sh.Submit(fc.setup)
				}
			}
		}()
	}
	for i := 0; i < o.Conns; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	if int(f.dialErrs.Load()) == o.Conns {
		f.g.Stop()
		return nil, errors.New("realtcp: fleet failed to establish any connection")
	}

	// Hold the send window.
	time.Sleep(o.Duration)

	// Quiesce: stop the shard loops (no further sends or ticks), then
	// wait for in-flight responses to land on the read loops.
	f.g.Stop()
	drainDeadline := time.Now().Add(o.DrainTimeout)
	for time.Now().Before(drainDeadline) {
		pending := int64(0)
		for _, fc := range f.conns {
			if fc != nil && fc.c != nil && !fc.dead {
				pending += fc.c.Outstanding()
			}
		}
		if pending == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Teardown: close every client (waits out its read loop, so the
	// histograms are safe to merge afterwards), in parallel.
	closeq := make(chan *Client, o.DialWorkers)
	var cwg sync.WaitGroup
	for w := 0; w < o.DialWorkers; w++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for c := range closeq {
				c.Close()
			}
		}()
	}
	for _, fc := range f.conns {
		if fc != nil && fc.c != nil {
			closeq <- fc.c
		}
	}
	close(closeq)
	cwg.Wait()

	return f.report(time.Since(start)), nil
}

// report aggregates after teardown: shard loops stopped and read loops
// exited, so every fleetConn is safe to read directly.
func (f *Fleet) report(elapsed time.Duration) *FleetReport {
	rep := &FleetReport{
		Conns:      f.opts.Conns,
		DialErrors: int(f.dialErrs.Load()),
		Elapsed:    elapsed,
		Sent:       sumCells(f.ctrs.sent),
		Completed:  sumCells(f.ctrs.completed),
		Skipped:    sumCells(f.ctrs.skipped),
		Reconnects: sumCells(f.ctrs.reconnects),
		DeadConns:  sumCells(f.ctrs.dead),
		Shards:     f.g.Stats(),
	}
	for _, st := range rep.Shards {
		if st.MaxBehind > rep.MaxBehindTicks {
			rep.MaxBehindTicks = st.MaxBehind
		}
		rep.FinalRunQueue += st.RunQueue
	}
	var ctrlHist, nagleHist qstate.DelayHist
	batchOn := 0
	for _, fc := range f.conns {
		if fc == nil || fc.c == nil {
			continue
		}
		sum := &rep.Nagle
		if fc.controlled {
			sum = &rep.Controlled
		}
		sum.Conns++
		st := addEngineStats(fc.prior, fc.ep.Stats())
		sum.ControlTicks += uint64(st.TotalTicks)
		sum.DegradedTicks += uint64(st.DegradedTicks)
		sum.ValidEstimates += uint64(st.ValidEstimates)
		sum.ModeErrors += uint64(st.ModeErrors)
		if fc.controlled {
			ctrlHist.Merge(&fc.hist)
			if fc.tog.Mode() == policy.BatchOn {
				batchOn++
			}
		} else {
			nagleHist.Merge(&fc.hist)
		}
	}
	fill := func(sum *TailSummary, h *qstate.DelayHist) {
		sum.Count = h.Count()
		sum.P50 = h.Quantile(0.50)
		sum.P99 = h.Quantile(0.99)
		sum.P999 = h.Quantile(0.999)
	}
	fill(&rep.Controlled, &ctrlHist)
	fill(&rep.Nagle, &nagleHist)
	if rep.Controlled.Conns > 0 {
		rep.Controlled.FinalBatchOnFrac = float64(batchOn) / float64(rep.Controlled.Conns)
	}
	return rep
}
