package realtcp

import (
	"errors"
	"sort"
	"time"

	"e2ebatch/internal/policy"
)

// LoadOptions configures an open-loop load run over a Client.
type LoadOptions struct {
	// Rate is the offered load in requests/second; Duration the issue
	// window.
	Rate     float64
	Duration time.Duration
	// Request is the wire bytes sent per request.
	Request []byte
	// Toggler, when non-nil, is fed the client's hint estimates every
	// Tick and drives TCP_NODELAY (batch-off = NODELAY set).
	Toggler *policy.Toggler
	// Tick is the estimate/decision period (default 10 ms).
	Tick time.Duration
	// DrainTimeout bounds the wait for outstanding responses (default
	// 5 s).
	DrainTimeout time.Duration
}

// LoadReport summarizes a run.
type LoadReport struct {
	Sent      int
	Mean      time.Duration
	P50, P99  time.Duration
	Max       time.Duration
	FinalMode policy.Mode
	Toggler   policy.TogglerStats
	// Estimates counts valid per-tick hint estimates observed.
	Estimates int
}

// RunLoad paces requests at the configured rate, optionally toggling
// TCP_NODELAY from the client's own Little's-law estimates, then drains and
// reports. This is the userspace-only deployment of the paper's proposal on
// stock kernels.
func RunLoad(c *Client, opts LoadOptions) (*LoadReport, error) {
	if opts.Rate <= 0 || opts.Duration <= 0 || len(opts.Request) == 0 {
		return nil, errors.New("realtcp: RunLoad needs a positive rate, duration, and a request")
	}
	tick := opts.Tick
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	drainTO := opts.DrainTimeout
	if drainTO <= 0 {
		drainTO = 5 * time.Second
	}

	rep := &LoadReport{}
	stop := make(chan struct{})
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				a := c.Estimate()
				if a.Valid {
					rep.Estimates++
				}
				if opts.Toggler != nil {
					m := opts.Toggler.Observe(a.Latency, a.Throughput, a.Valid)
					_ = c.SetNoDelay(m == policy.BatchOff)
				}
			}
		}
	}()

	interval := time.Duration(float64(time.Second) / opts.Rate)
	deadline := time.Now().Add(opts.Duration)
	next := time.Now()
	for time.Now().Before(deadline) {
		if err := c.Send(opts.Request); err != nil {
			close(stop)
			<-tickerDone
			return nil, err
		}
		rep.Sent++
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}

	drainDeadline := time.Now().Add(drainTO)
	for c.Outstanding() > 0 && time.Now().Before(drainDeadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-tickerDone

	lats := c.Latencies()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		rep.Mean = sum / time.Duration(len(lats))
		rep.P50 = lats[len(lats)/2]
		rep.P99 = lats[len(lats)*99/100]
		rep.Max = lats[len(lats)-1]
	}
	if opts.Toggler != nil {
		rep.Toggler = opts.Toggler.Stats()
		rep.FinalMode = opts.Toggler.Mode()
	}
	return rep, nil
}
