package realtcp

import (
	"errors"
	"sort"
	"time"

	"e2ebatch/internal/engine"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/shard"
)

// LoadOptions configures an open-loop load run over a Client.
type LoadOptions struct {
	// Rate is the offered load in requests/second; Duration the issue
	// window.
	Rate     float64
	Duration time.Duration
	// Request is the wire bytes sent per request.
	Request []byte
	// Toggler, when non-nil, is driven from the client's hint estimates
	// every Tick and controls TCP_NODELAY (batch-off = NODELAY set).
	// After ModeErrorLimit consecutive ticks whose SetNoDelay failed, the
	// run is treated as degraded and the toggler retreats to its safe
	// mode per its own DegradedAfter policy.
	Toggler *policy.Toggler
	// Tick is the estimate/decision period (default 10 ms).
	Tick time.Duration
	// DrainTimeout bounds the wait for outstanding responses (default
	// 5 s).
	DrainTimeout time.Duration
	// ModeErrorLimit is how many consecutive failing mode applications
	// are tolerated before degrading (default 3; negative disables).
	ModeErrorLimit int
	// Observer, when non-nil, receives every engine tick for telemetry
	// (internal/obs wires an EngineObserver here). It runs on the tick
	// goroutine and must not block.
	Observer engine.Observer
	// Audit, when non-nil, is polled every tick for estimator-audit stats
	// (kvload wires a span.Auditor here); a drifting audit routes the tick
	// degraded exactly like repeated mode failures do.
	Audit engine.AuditSource
}

// LoadReport summarizes a run.
type LoadReport struct {
	Sent      int
	Mean      time.Duration
	P50, P99  time.Duration
	Max       time.Duration
	FinalMode policy.Mode
	Toggler   policy.TogglerStats
	// Estimates counts valid per-tick hint estimates observed.
	Estimates int
	// TotalTicks counts decision ticks; DegradedTicks the subset routed
	// down the degraded path after repeated mode failures.
	TotalTicks    int
	DegradedTicks int
	// NoDelayErrors counts individual SetNoDelay failures — a failure is
	// an outcome, not a silent no-op.
	NoDelayErrors int
}

// RunLoad paces requests at the configured rate, driving the shared control
// engine (estimate → toggling decision → TCP_NODELAY) from the client's own
// Little's-law counters, then drains and reports. This is the
// userspace-only deployment of the paper's proposal on stock kernels,
// running the same engine loop as the simulated experiments.
func RunLoad(c *Client, opts LoadOptions) (*LoadReport, error) {
	if opts.Rate <= 0 || opts.Duration <= 0 || len(opts.Request) == 0 {
		return nil, errors.New("realtcp: RunLoad needs a positive rate, duration, and a request")
	}
	tick := opts.Tick
	if tick <= 0 {
		tick = 10 * time.Millisecond
	}
	drainTO := opts.DrainTimeout
	if drainTO <= 0 {
		drainTO = 5 * time.Second
	}
	errLimit := opts.ModeErrorLimit
	if errLimit == 0 {
		errLimit = 3
	} else if errLimit < 0 {
		errLimit = 0
	}

	rep := &LoadReport{}
	cfg := engine.Config{ModeErrorLimit: errLimit, Observer: opts.Observer, Audit: opts.Audit}
	if opts.Toggler != nil {
		cfg.Controller = opts.Toggler
		cfg.Initial = opts.Toggler.Mode()
	}
	ep := engine.New(cfg, c.EnginePort())
	// Ticks run on a single-shard wheel group rather than a per-connection
	// ticker goroutine: the same scheduling substrate the 50k-connection
	// fleet uses, sized down to one client. The wheel granularity tracks
	// the tick period (capped at 1 ms) so short test ticks stay precise.
	wheelTick := time.Millisecond
	if tick < wheelTick {
		wheelTick = tick
	}
	g := shard.NewGroup(shard.Config{Shards: 1, Tick: wheelTick, Now: c.Elapsed})
	g.Shard(0).Submit(func() {
		ep.Start(shard.Clock{S: g.Shard(0)}, tick)
	})
	g.Start()
	finish := func() {
		// Stop the shard loop first (happens-before for everything the
		// ticks wrote), then unschedule the endpoint's wheel timer.
		g.Stop()
		ep.Stop()
		st := ep.Stats()
		rep.Estimates = st.ValidEstimates
		rep.TotalTicks = st.TotalTicks
		rep.DegradedTicks = st.DegradedTicks
		rep.NoDelayErrors = st.ModeErrors
	}

	interval := time.Duration(float64(time.Second) / opts.Rate)
	deadline := time.Now().Add(opts.Duration)
	next := time.Now()
	for time.Now().Before(deadline) {
		if err := c.Send(opts.Request); err != nil {
			finish()
			return nil, err
		}
		rep.Sent++
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}

	drainDeadline := time.Now().Add(drainTO)
	for c.Outstanding() > 0 && time.Now().Before(drainDeadline) {
		time.Sleep(time.Millisecond)
	}
	finish()

	lats := c.Latencies()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		rep.Mean = sum / time.Duration(len(lats))
		rep.P50 = lats[len(lats)/2]
		rep.P99 = lats[len(lats)*99/100]
		rep.Max = lats[len(lats)-1]
	}
	if opts.Toggler != nil {
		rep.Toggler = opts.Toggler.Stats()
		rep.FinalMode = opts.Toggler.Mode()
	}
	return rep, nil
}
