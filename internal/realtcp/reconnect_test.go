package realtcp

import (
	"testing"
	"time"

	"e2ebatch/internal/resp"
)

// TestReconnectorSurvivesConnectionDrop: after the server abruptly closes
// every connection, the wrapper redials, the retried command succeeds, and
// the counters resync — the fresh client's Little's-law state starts clean
// instead of differencing across the reset discontinuity.
func TestReconnectorSurvivesConnectionDrop(t *testing.T) {
	addr, srv := startServer(t)
	r, err := DialReconnect(addr, ReconnectConfig{
		MaxInflight: 64,
		DialTimeout: 2 * time.Second,
		ReadTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("DialReconnect: %v", err)
	}
	t.Cleanup(func() { r.Close() })

	set := resp.Command("SET", "k", "v")
	if err := r.Do(set); err != nil {
		t.Fatal(err)
	}
	before := r.Client()

	srv.DropConnections()
	// Wait for the client's read loop to observe the close; Do would also
	// discover it, but only via a write error, which loopback may delay.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := r.Do(set); err == nil && r.Resets() == 1 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("no recovery after drop: resets=%d err=%v", r.Resets(), err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if r.Client() == before {
		t.Fatal("reconnect kept the dead client")
	}
	// Counter resync: the replacement client starts with zero outstanding
	// requests and a freshly primed estimator — no leftovers from requests
	// lost in the reset.
	if out := r.Client().Outstanding(); out != 0 {
		t.Fatalf("fresh client has %d outstanding requests", out)
	}
	for i := 0; i < 20; i++ {
		if err := r.Do(resp.Command("GET", "k")); err != nil {
			t.Fatal(err)
		}
	}
	a := r.Estimate()
	if !a.Valid || a.Latency < 0 || a.Throughput < 0 {
		t.Fatalf("post-reset estimate not sane: %+v", a)
	}
	if r.Resets() != 1 {
		t.Fatalf("resets = %d, want exactly 1", r.Resets())
	}
}

// TestReconnectorGivesUpWithoutServer: when the server is gone for good the
// backoff loop is bounded — Do fails instead of hanging.
func TestReconnectorGivesUpWithoutServer(t *testing.T) {
	addr, srv := startServer(t)
	r, err := DialReconnect(addr, ReconnectConfig{
		MaxInflight: 8,
		DialTimeout: 100 * time.Millisecond,
		ReadTimeout: 100 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatalf("DialReconnect: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	srv.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := r.Do(resp.Command("PING")); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Do kept succeeding against a closed server")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r.Resets() != 0 {
		t.Fatalf("resets = %d against a dead server", r.Resets())
	}
}

// TestReconnectorClosedRefusesWork: Close is terminal — no redials after.
func TestReconnectorClosedRefusesWork(t *testing.T) {
	addr, _ := startServer(t)
	r, err := DialReconnect(addr, ReconnectConfig{MaxInflight: 8})
	if err != nil {
		t.Fatalf("DialReconnect: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := r.Do(resp.Command("PING")); err == nil {
		t.Fatal("Do succeeded on a closed reconnector")
	}
}
