package realtcp

import (
	"sync"
	"time"

	"e2ebatch/internal/core"
	"e2ebatch/internal/engine"
	"e2ebatch/internal/qstate"
)

// Elapsed returns the client's monotonic clock reading — the time base its
// hint counters are tracked on, and therefore the `now` an engine tick over
// this client must carry.
func (c *Client) Elapsed() qstate.Time { return qstate.Time(time.Since(c.start)) }

// EnginePort adapts the client to the shared control engine: samples come
// from the userspace create/complete counters (§3.3) and decisions map to
// TCP_NODELAY — the userspace-only deployment on stock kernels.
func (c *Client) EnginePort() engine.Port { return enginePort{c} }

type enginePort struct{ c *Client }

// Snapshot captures the hint tracker's single end-to-end queue as the
// sample's unacked queue; applying Little's law to it yields the
// application-perceived latency and throughput directly.
func (p enginePort) Snapshot(now qstate.Time) core.Sample {
	return core.Sample{
		Local: core.Queues{Unacked: p.c.tracker.Snapshot()},
		At:    now,
	}
}

// Apply maps the batching decision to TCP_NODELAY. There is no portable
// cork-threshold knob on stock kernels, so Decision.CorkBytes is ignored.
func (p enginePort) Apply(d engine.Decision) error {
	return p.c.SetNoDelay(!d.Batch)
}

// SelfContained reports true: the create/complete counters span the whole
// round trip, so a sample needs no peer metadata to be trustworthy.
func (p enginePort) SelfContained() bool { return true }

// WallClock schedules engine ticks from a wall-clock ticker goroutine — the
// real-time counterpart of engine.SimClock. Now supplies the tick
// timestamps (typically Client.Elapsed).
type WallClock struct {
	Now func() qstate.Time
}

// Tick fires fn every period on a dedicated goroutine until Stop.
func (w WallClock) Tick(period time.Duration, fn func(now qstate.Time)) engine.Ticker {
	t := &wallTicker{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(t.done)
		tk := time.NewTicker(period)
		defer tk.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tk.C:
				fn(w.Now())
			}
		}
	}()
	return t
}

type wallTicker struct {
	stop, done chan struct{}
	once       sync.Once
}

// Stop cancels the ticker and waits for the tick goroutine to exit, so
// everything the ticks wrote happens-before Stop's return.
func (t *wallTicker) Stop() {
	t.once.Do(func() { close(t.stop) })
	<-t.done
}
