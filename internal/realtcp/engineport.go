package realtcp

import (
	"time"

	"e2ebatch/internal/core"
	"e2ebatch/internal/engine"
	"e2ebatch/internal/qstate"
)

// Elapsed returns the client's monotonic clock reading — the time base its
// hint counters are tracked on, and therefore the `now` an engine tick over
// this client must carry.
func (c *Client) Elapsed() qstate.Time { return qstate.Time(time.Since(c.start)) }

// EnginePort adapts the client to the shared control engine: samples come
// from the userspace create/complete counters (§3.3) and decisions map to
// TCP_NODELAY — the userspace-only deployment on stock kernels.
func (c *Client) EnginePort() engine.Port { return enginePort{c} }

type enginePort struct{ c *Client }

// Snapshot captures the hint tracker's single end-to-end queue as the
// sample's unacked queue; applying Little's law to it yields the
// application-perceived latency and throughput directly.
func (p enginePort) Snapshot(now qstate.Time) core.Sample {
	return core.Sample{
		Local: core.Queues{Unacked: p.c.tracker.Snapshot()},
		At:    now,
	}
}

// Apply maps the batching decision to TCP_NODELAY. There is no portable
// cork-threshold knob on stock kernels, so Decision.CorkBytes is ignored.
func (p enginePort) Apply(d engine.Decision) error {
	return p.c.SetNoDelay(!d.Batch)
}

// SelfContained reports true: the create/complete counters span the whole
// round trip, so a sample needs no peer metadata to be trustworthy.
func (p enginePort) SelfContained() bool { return true }

// Engine ticks for real-TCP clients are scheduled on shard timer wheels
// (shard.Clock), not per-connection ticker goroutines: the old WallClock
// here spawned one goroutine plus one runtime timer per Endpoint.Start —
// and leaked both until Stop — which topples long before the 50k-connection
// target. RunLoad drives a single-shard group internally; the fleet runner
// (fleet.go) hashes connections across a full group. The pertickerconn
// analyzer (DESIGN.md §8) keeps per-connection timer state from creeping
// back into this package.
