// Package realtcp is the real-socket counterpart of the simulation: the
// mini-Redis engine served over kernel TCP, and a client that maintains the
// paper's userspace counters (create/complete hints, §3.3), derives live
// end-to-end estimates from them, and dynamically toggles TCP_NODELAY via
// the ε-greedy policy — the portion of the paper's proposal that can run on
// stock kernels with no patches ("userspace emulation with counters and
// NODELAY toggling only").
package realtcp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"e2ebatch/internal/hints"
	"e2ebatch/internal/kv"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/resp"
	"e2ebatch/internal/shard"
)

// Server serves the mini-Redis engine over real TCP connections. Command
// execution is serialized on one mutex, mirroring Redis's single-threaded
// command loop.
type Server struct {
	mu     sync.Mutex
	engine *kv.Engine

	wg        sync.WaitGroup
	listener  net.Listener // guarded by connMu: Serve publishes, Close reads
	closed    chan struct{}
	closeOnce sync.Once

	connMu sync.Mutex // guards conns and listener
	conns  map[net.Conn]struct{}

	// Nagle controls whether accepted connections keep Nagle enabled
	// (false sets TCP_NODELAY, Redis's default behaviour).
	Nagle bool

	// OnRequest, when non-nil, receives every command's server-side
	// execution latency (parse-to-reply, excluding socket I/O) — the
	// telemetry histogram feed. Set before Serve; it is called from
	// connection-handler goroutines and must be safe for concurrent use.
	OnRequest func(time.Duration)

	// ShardCount, when positive, assigns every accepted connection a shard
	// id by FNV hash of its remote address (shard.HashString mod
	// ShardCount) and feeds the sharded hooks below — the accept-path half
	// of the shared-nothing obs rollup. Zero disables sharded accounting
	// (every hook sees shard 0 if set anyway).
	ShardCount int
	// OnConnShard, when non-nil, is called with (+1) when a connection is
	// accepted and (-1) when its handler exits — per-shard live-connection
	// gauges. Called from accept/handler goroutines; the obs.ShardedGauge
	// single-writer-per-cell rule does not apply here, but obs cells are
	// atomic so concurrent mixed-shard calls are safe.
	OnConnShard func(shard int, delta int)
	// OnRequestShard, when non-nil, receives every command's execution
	// latency attributed to the connection's shard. Independent of
	// OnRequest; both fire when both are set.
	OnRequestShard func(shard int, d time.Duration)

	// BufBytes sizes the per-connection read/write buffers (default
	// 64 KiB). High-fan-in servers size this down: 50k connections at the
	// default would pin ~9 GB of buffers alone.
	BufBytes int
}

// NewServer returns a server around engine.
func NewServer(engine *kv.Engine) *Server {
	return &Server{engine: engine, closed: make(chan struct{}), conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on l until Close. It returns the first
// non-temporary accept error, or nil after Close.
func (s *Server) Serve(l net.Listener) error {
	s.connMu.Lock()
	s.listener = l
	s.connMu.Unlock()
	select {
	case <-s.closed:
		// Close ran before the listener was published; it is our job to
		// release it.
		l.Close()
		return nil
	default:
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return err
			}
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			if err := tc.SetNoDelay(!s.Nagle); err != nil {
				conn.Close()
				continue
			}
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		sid := s.shardOf(conn)
		if s.OnConnShard != nil {
			s.OnConnShard(sid, +1)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
				if s.OnConnShard != nil {
					s.OnConnShard(sid, -1)
				}
			}()
			s.handle(conn, sid)
		}()
	}
}

// shardOf maps a connection to its shard id by remote-address hash.
func (s *Server) shardOf(conn net.Conn) int {
	if s.ShardCount <= 0 {
		return 0
	}
	return int(shard.HashString(conn.RemoteAddr().String()) % uint64(s.ShardCount))
}

// DropConnections abruptly closes every active connection while continuing
// to accept new ones — the connection-reset fault for loopback tests.
func (s *Server) DropConnections() {
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
}

// Close stops accepting, closes active connections, and waits for their
// handlers to finish. It is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	s.connMu.Lock()
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
}

func (s *Server) handle(conn net.Conn, sid int) {
	defer conn.Close()
	bufBytes := s.BufBytes
	if bufBytes <= 0 {
		bufBytes = 64 << 10
	}
	br := bufio.NewReaderSize(conn, bufBytes)
	bw := bufio.NewWriterSize(conn, bufBytes)
	var parser resp.Parser
	buf := make([]byte, bufBytes)
	for {
		// Serve everything already parsed before blocking on the
		// socket again, so pipelined commands share flushes.
		served := false
		for {
			cmd, ok, err := parser.Next()
			if err != nil {
				s.mu.Lock()
				reply := resp.Err("ERR protocol error: %v", err)
				s.mu.Unlock()
				bw.Write(resp.AppendValue(nil, reply))
				bw.Flush()
				return
			}
			if !ok {
				break
			}
			var begin time.Time
			timed := s.OnRequest != nil || s.OnRequestShard != nil
			if timed {
				begin = time.Now()
			}
			s.mu.Lock()
			reply := s.engine.Execute(cmd)
			s.mu.Unlock()
			if timed {
				d := time.Since(begin)
				if s.OnRequest != nil {
					s.OnRequest(d)
				}
				if s.OnRequestShard != nil {
					s.OnRequestShard(sid, d)
				}
			}
			if _, err := bw.Write(resp.AppendValue(nil, reply)); err != nil {
				return
			}
			served = true
		}
		if served {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		n, err := br.Read(buf)
		if n > 0 {
			parser.Feed(buf[:n])
		}
		if err != nil {
			return
		}
	}
}

// Client is a pipelined RESP client over a real TCP connection with the
// paper's userspace instrumentation: a hints.Tracker fed by create/complete
// around every request, from which live Little's-law estimates are drawn.
type Client struct {
	conn        *net.TCPConn
	tracker     *hints.Tracker
	est         *hints.Estimator
	start       time.Time
	readTimeout time.Duration
	readBuf     int
	dropLats    bool

	mu      sync.Mutex
	writeMu sync.Mutex
	sendBuf []byte

	inflight chan time.Time
	done     chan struct{}
	readErr  error

	latMu  sync.Mutex
	lats   []time.Duration
	latFn  func(time.Duration)
	compFn func(reqID uint64, sentNs, ackNs int64)

	nodelay bool
}

// DialOptions tune a client's failure behaviour. The zero value matches the
// historical Dial: unbounded blocking on both connect and read.
type DialOptions struct {
	// MaxInflight bounds pipelining depth (<= 0: 1024).
	MaxInflight int
	// DialTimeout bounds the connect; zero blocks indefinitely.
	DialTimeout time.Duration
	// ReadTimeout bounds each read in the response loop; a read that
	// exceeds it fails the client (the reconnect layer then redials).
	// Zero blocks indefinitely — correct only against a server that
	// cannot hang.
	ReadTimeout time.Duration
	// ReadBufBytes sizes the read-loop buffer (default 64 KiB). Fleet
	// clients size this down: per-connection buffers dominate memory at
	// 50k connections.
	ReadBufBytes int
	// DiscardLatencyLog disables the per-request latency accumulation that
	// Latencies() drains, leaving only the ObserveLatencies live feed —
	// fleet connections record into fixed-size histograms instead of
	// unbounded slices.
	DiscardLatencyLog bool
	// LocalAddr, when non-empty, is the local address to dial from (e.g.
	// "127.0.0.5:0"). High-fan-in loopback fleets rotate source IPs here
	// to stretch past the ~28k ephemeral ports of a single 4-tuple prefix.
	LocalAddr string
}

// Dial connects to a mini-Redis server and starts the response reader.
// maxInflight bounds pipelining depth.
func Dial(addr string, maxInflight int) (*Client, error) {
	return DialWith(addr, DialOptions{MaxInflight: maxInflight})
}

// DialWith is Dial with explicit failure-handling options.
func DialWith(addr string, opts DialOptions) (*Client, error) {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 1024
	}
	d := net.Dialer{Timeout: opts.DialTimeout}
	if opts.LocalAddr != "" {
		la, err := net.ResolveTCPAddr("tcp", opts.LocalAddr)
		if err != nil {
			return nil, err
		}
		d.LocalAddr = la
	}
	nc, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	tc, ok := nc.(*net.TCPConn)
	if !ok {
		nc.Close()
		return nil, errors.New("realtcp: not a TCP connection")
	}
	c := &Client{
		conn:        tc,
		start:       time.Now(),
		readTimeout: opts.ReadTimeout,
		readBuf:     opts.ReadBufBytes,
		dropLats:    opts.DiscardLatencyLog,
		inflight:    make(chan time.Time, opts.MaxInflight),
		done:        make(chan struct{}),
		nodelay:     true, // Go's net package default
	}
	c.tracker = hints.NewTracker(func() qstate.Time { return qstate.Time(time.Since(c.start)) })
	c.est = hints.NewEstimator(c.tracker)
	c.est.Sample() // prime
	go c.readLoop()
	return c, nil
}

// SetNoDelay toggles TCP_NODELAY — the dynamic batching knob.
func (c *Client) SetNoDelay(v bool) error {
	if err := c.conn.SetNoDelay(v); err != nil {
		return err
	}
	c.mu.Lock()
	c.nodelay = v
	c.mu.Unlock()
	return nil
}

// NoDelay reports the last mode set.
func (c *Client) NoDelay() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodelay
}

// Tracker exposes the userspace queue state (e.g. to print counters).
func (c *Client) Tracker() *hints.Tracker { return c.tracker }

// Estimate returns the Little's-law averages since the previous call — the
// per-tick observation a toggling policy consumes.
func (c *Client) Estimate() qstate.Avgs { return c.est.Sample() }

// Send issues one request asynchronously; its completion is recorded when
// the matching response arrives (FIFO order, as RESP guarantees).
func (c *Client) Send(cmd []byte) error {
	select {
	case <-c.done:
		return c.err()
	case c.inflight <- time.Now():
	}
	c.tracker.Create(1)
	c.writeMu.Lock()
	_, err := c.conn.Write(cmd)
	c.writeMu.Unlock()
	if err != nil {
		return err
	}
	return nil
}

// Do issues one request and waits until all currently outstanding responses
// (including this one) have arrived. It is a convenience for
// request-by-request usage; load generation uses Send. The wait is a
// yielding poll on the caller's goroutine — no timer state per call.
func (c *Client) Do(cmd []byte) error {
	if err := c.Send(cmd); err != nil {
		return err
	}
	for c.tracker.Outstanding() > 0 {
		select {
		case <-c.done:
			return c.err()
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	return nil
}

// Outstanding returns requests awaiting responses.
func (c *Client) Outstanding() int64 { return c.tracker.Outstanding() }

// Done returns a channel closed when the client's read loop has exited —
// failure or Close. Fleet timers poll it non-blockingly to detect dead
// connections without owning a goroutine per connection.
func (c *Client) Done() <-chan struct{} { return c.done }

// ObserveLatencies installs fn to receive every per-request latency as it
// completes, alongside the drain-style Latencies accumulation — the live
// feed a telemetry histogram wants. fn runs on the read-loop goroutine and
// must not block; pass nil to detach.
func (c *Client) ObserveLatencies(fn func(time.Duration)) {
	c.latMu.Lock()
	c.latFn = fn
	c.latMu.Unlock()
}

// ObserveCompletions installs fn to receive each completion's FIFO index
// and its send/ack timestamps, both in nanoseconds on the client's
// monotonic timebase (elapsed since Dial) — the span-tracing feed. reqID
// counts completions on this connection from 0; RESP's FIFO ordering makes
// it equal the issue index. fn runs on the read-loop goroutine and must
// not block; pass nil to detach. Reconnecting builds a new Client, so
// reqID restarts at 0 per connection incarnation.
func (c *Client) ObserveCompletions(fn func(reqID uint64, sentNs, ackNs int64)) {
	c.latMu.Lock()
	c.compFn = fn
	c.latMu.Unlock()
}

// Latencies drains and returns the per-request latencies recorded so far.
func (c *Client) Latencies() []time.Duration {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	out := c.lats
	c.lats = nil
	return out
}

// Close shuts the connection down and stops the reader.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}

func (c *Client) err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return c.readErr
	}
	return io.ErrClosedPipe
}

func (c *Client) readLoop() {
	defer close(c.done)
	var parser resp.Parser
	bufBytes := c.readBuf
	if bufBytes <= 0 {
		bufBytes = 64 << 10
	}
	buf := make([]byte, bufBytes)
	var completions uint64 // FIFO completion index, read-loop-local
	for {
		if c.readTimeout > 0 {
			if err := c.conn.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
				c.fail(err)
				return
			}
		}
		n, err := c.conn.Read(buf)
		if n > 0 {
			parser.Feed(buf[:n])
			for {
				v, ok, perr := parser.Next()
				if perr != nil {
					c.fail(fmt.Errorf("realtcp: corrupt response stream: %w", perr))
					return
				}
				if !ok {
					break
				}
				_ = v
				select {
				case sentAt := <-c.inflight:
					c.tracker.Complete(1)
					lat := time.Since(sentAt)
					c.latMu.Lock()
					if !c.dropLats {
						c.lats = append(c.lats, lat)
					}
					fn := c.latFn
					cfn := c.compFn
					c.latMu.Unlock()
					if fn != nil {
						fn(lat)
					}
					if cfn != nil {
						// One clock read: ack = send + measured latency,
						// so a span's duration is exactly the latency the
						// histograms record.
						sentNs := sentAt.Sub(c.start).Nanoseconds()
						cfn(completions, sentNs, sentNs+lat.Nanoseconds())
					}
					completions++
				default:
					c.fail(errors.New("realtcp: response without pending request"))
					return
				}
			}
		}
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && c.tracker.Outstanding() == 0 {
				// An idle deadline expiry is not a fault: no response is
				// owed. Only a timeout with requests outstanding means
				// the server stopped answering.
				continue
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				c.fail(err)
			}
			return
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	c.mu.Unlock()
}
