package realtcp

import (
	"runtime"
	"testing"
	"time"

	"e2ebatch/internal/resp"
)

// fleetTestOptions builds a small-but-real fleet config against addr: a
// dozen connections, both groups populated, ticks fast enough that even a
// sub-second window produces control-loop activity.
func fleetTestOptions(addr string, conns int) FleetOptions {
	return FleetOptions{
		Addr:        addr,
		Conns:       conns,
		Active:      conns / 2,
		Rate:        200,
		IdleEvery:   100 * time.Millisecond,
		Duration:    600 * time.Millisecond,
		Request:     resp.AppendCommand(nil, []byte("SET"), []byte("fleet"), []byte("v")),
		IdleRequest: resp.Command("PING"),
		Shards:      2,
		WheelTick:   time.Millisecond,
		Tick:        20 * time.Millisecond,
		SLO:         5 * time.Millisecond,
		Seed:        7,
		DialWorkers: 4,
	}
}

func TestFleetSmallRunBothGroups(t *testing.T) {
	addr, _ := startServer(t)
	f, err := NewFleet(fleetTestOptions(addr, 12))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DialErrors != 0 {
		t.Fatalf("dial errors = %d", rep.DialErrors)
	}
	if rep.Controlled.Conns != 6 || rep.Nagle.Conns != 6 {
		t.Fatalf("group split = %d/%d, want 6/6", rep.Controlled.Conns, rep.Nagle.Conns)
	}
	if rep.Sent == 0 || rep.Completed == 0 {
		t.Fatalf("sent=%d completed=%d, fleet moved no traffic", rep.Sent, rep.Completed)
	}
	if rep.Controlled.Count == 0 || rep.Nagle.Count == 0 {
		t.Fatalf("latency counts = %d/%d, a group recorded nothing",
			rep.Controlled.Count, rep.Nagle.Count)
	}
	if rep.Controlled.ControlTicks == 0 || rep.Nagle.ControlTicks == 0 {
		t.Fatalf("control ticks = %d/%d, a group never ticked",
			rep.Controlled.ControlTicks, rep.Nagle.ControlTicks)
	}
	if rep.Controlled.P50 <= 0 || rep.Controlled.P999 < rep.Controlled.P50 {
		t.Fatalf("controlled quantiles implausible: p50=%v p999=%v",
			rep.Controlled.P50, rep.Controlled.P999)
	}
	if rep.FinalRunQueue != 0 {
		t.Fatalf("final run queue = %d, work lost at stop", rep.FinalRunQueue)
	}
	if len(rep.Shards) != 2 {
		t.Fatalf("shard stats = %d entries, want 2", len(rep.Shards))
	}
	var fired uint64
	for _, st := range rep.Shards {
		fired += st.Fired
	}
	if fired == 0 {
		t.Fatal("no wheel timers fired across the fleet")
	}
}

func TestFleetLiveCountersDuringRun(t *testing.T) {
	addr, _ := startServer(t)
	f, err := NewFleet(fleetTestOptions(addr, 8))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *FleetReport, 1)
	go func() {
		rep, err := f.Run()
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	// Poll the live per-shard counters mid-run: they must be readable
	// concurrently and eventually show traffic.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		var sent uint64
		for i := 0; i < f.Shards(); i++ {
			sent += f.ShardLive(i).Sent
		}
		if sent > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep := <-done
	if rep == nil {
		t.Fatal("run failed")
	}
	var live uint64
	for i := 0; i < f.Shards(); i++ {
		live += f.ShardLive(i).Sent
	}
	if live != rep.Sent {
		t.Fatalf("live sent %d != report sent %d after teardown", live, rep.Sent)
	}
}

// TestNoGoroutineLeakAcrossFleetAndLoad is the regression test for the
// engine-port ticker leak: the old realtcp WallClock spawned a goroutine
// plus a runtime ticker per Endpoint.Start and leaked them until Stop.
// Every tick now lives on shard wheels, so a full fleet run plus a RunLoad
// must return the process to its baseline goroutine count.
func TestNoGoroutineLeakAcrossFleetAndLoad(t *testing.T) {
	addr, _ := startServer(t)

	// Warm up: one throwaway client so lazily-started runtime helpers
	// don't count against the baseline.
	c := dialOrFail(t, addr)
	if err := c.Do(resp.Command("PING")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	runtime.GC()
	base := runtime.NumGoroutine()

	f, err := NewFleet(fleetTestOptions(addr, 6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}

	cl, err := Dial(addr, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLoad(cl, LoadOptions{
		Rate:     500,
		Duration: 150 * time.Millisecond,
		Request:  resp.Command("PING"),
		Toggler:  policyTestToggler(),
		Tick:     5 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	// Server-side conn handlers unwind asynchronously after client close;
	// give the count a bounded window to settle.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines: base %d, now %d; leaked stacks:\n%s",
		base, runtime.NumGoroutine(), buf[:n])
}
