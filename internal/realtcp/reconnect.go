package realtcp

import (
	"fmt"
	"sync"
	"time"

	"e2ebatch/internal/qstate"
)

// ReconnectConfig parameterizes the self-healing client wrapper.
type ReconnectConfig struct {
	// MaxInflight, DialTimeout and ReadTimeout pass through to DialWith
	// for every (re)connection.
	MaxInflight int
	DialTimeout time.Duration
	ReadTimeout time.Duration
	// BackoffBase is the delay before the first redial attempt; each
	// further attempt doubles it, capped at BackoffMax. Zeroes default to
	// 10 ms and 1 s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxAttempts bounds consecutive failed redials before giving up
	// (<= 0: 8).
	MaxAttempts int
}

func (c *ReconnectConfig) fill() {
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = c.BackoffBase
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
}

// Reconnector wraps a Client with connection-reset recovery: when the
// underlying connection dies it redials with bounded exponential backoff
// and starts a fresh Client. A fresh Client means fresh userspace counters
// and a re-primed estimator — the counter resync a reset demands, since
// Little's-law integrals must not be differenced across the discontinuity
// (requests in flight at the reset are gone; their completions will never
// arrive).
type Reconnector struct {
	addr string
	cfg  ReconnectConfig

	mu       sync.Mutex
	client   *Client
	resets   uint64
	attempts uint64
	closed   bool
}

// DialReconnect connects once (so startup failures surface immediately)
// and returns the self-healing wrapper.
func DialReconnect(addr string, cfg ReconnectConfig) (*Reconnector, error) {
	cfg.fill()
	r := &Reconnector{addr: addr, cfg: cfg}
	c, err := r.dial()
	if err != nil {
		return nil, err
	}
	r.client = c
	return r, nil
}

func (r *Reconnector) dial() (*Client, error) {
	return DialWith(r.addr, DialOptions{
		MaxInflight: r.cfg.MaxInflight,
		DialTimeout: r.cfg.DialTimeout,
		ReadTimeout: r.cfg.ReadTimeout,
	})
}

// Resets returns how many reconnections have succeeded.
func (r *Reconnector) Resets() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resets
}

// Attempts returns how many redials have been tried, successful or not —
// with Resets, the backoff telemetry pair (attempts - resets = failures).
// The initial DialReconnect connect is not counted.
func (r *Reconnector) Attempts() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attempts
}

// Client returns the current underlying client (for instrumentation; it may
// be replaced by any concurrent Do).
func (r *Reconnector) Client() *Client {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.client
}

// Estimate samples the current connection's Little's-law averages. After a
// reconnect the averages restart from the fresh connection's counters.
func (r *Reconnector) Estimate() qstate.Avgs {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.client.Estimate()
}

// Do issues one request, reconnecting and retrying it once on a dead
// connection. Other requests lost with the old connection are not replayed,
// and the retried command re-executes if the original reached the server
// before the reset — the usual at-least-once caveat of retry-on-reconnect;
// fine for the idempotent GET/SET workloads here.
func (r *Reconnector) Do(cmd []byte) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return fmt.Errorf("realtcp: reconnector closed")
	}
	c := r.client
	r.mu.Unlock()
	if err := c.Do(cmd); err == nil {
		return nil
	}
	if err := r.reconnect(c); err != nil {
		return err
	}
	r.mu.Lock()
	c = r.client
	r.mu.Unlock()
	return c.Do(cmd)
}

// reconnect replaces dead (the client the caller observed failing) with a
// fresh connection, unless a concurrent caller already did.
func (r *Reconnector) reconnect(dead *Client) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("realtcp: reconnector closed")
	}
	if r.client != dead {
		return nil // someone else already replaced it
	}
	dead.Close()
	backoff := r.cfg.BackoffBase
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > r.cfg.BackoffMax {
				backoff = r.cfg.BackoffMax
			}
		}
		r.attempts++
		c, err := r.dial()
		if err != nil {
			lastErr = err
			continue
		}
		r.client = c
		r.resets++
		return nil
	}
	return fmt.Errorf("realtcp: reconnect failed after %d attempts: %w", r.cfg.MaxAttempts, lastErr)
}

// Close shuts down the current connection and stops future reconnects.
func (r *Reconnector) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	return r.client.Close()
}
