package realtcp

import "syscall"

// RaiseNOFILE lifts the process's open-file soft limit toward target —
// 50k-connection fleets need 50k descriptors before the dialer gets
// anywhere near the port range. It raises the hard limit too when the
// process may (root), otherwise clamps to the existing hard limit, and
// returns the soft limit actually in force. Best-effort: callers treat the
// returned limit, not the error, as the capacity signal.
func RaiseNOFILE(target uint64) (uint64, error) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 0, err
	}
	if lim.Cur >= target {
		return lim.Cur, nil
	}
	want := lim
	want.Cur = target
	if want.Max < target {
		want.Max = target
	}
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &want); err == nil {
		return want.Cur, nil
	}
	// Hard-limit raise refused (not privileged): settle for the ceiling.
	want = lim
	want.Cur = lim.Max
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &want); err != nil {
		return lim.Cur, err
	}
	return want.Cur, nil
}
