package realtcp

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"e2ebatch/internal/kv"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/resp"
)

// policyTestToggler builds a toggler with a loopback-appropriate SLO.
func policyTestToggler() *policy.Toggler {
	return policy.NewToggler(policy.ThroughputUnderSLO{SLO: 5 * time.Millisecond},
		policy.DefaultTogglerConfig(), policy.BatchOff, rand.New(rand.NewSource(1)))
}

// startServer launches a loopback server, returning its address and a
// cleanup func. Tests skip when the sandbox forbids loopback listening.
func startServer(t *testing.T) (string, *Server) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	store := kv.NewStore(func() time.Duration { return time.Duration(time.Now().UnixNano()) })
	srv := NewServer(kv.NewEngine(store))
	go srv.Serve(l)
	t.Cleanup(srv.Close)
	return l.Addr().String(), srv
}

func dialOrFail(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 256)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPingPong(t *testing.T) {
	addr, _ := startServer(t)
	c := dialOrFail(t, addr)
	if err := c.Do(resp.Command("PING")); err != nil {
		t.Fatal(err)
	}
	lats := c.Latencies()
	if len(lats) != 1 {
		t.Fatalf("latencies = %d, want 1", len(lats))
	}
	if lats[0] <= 0 || lats[0] > time.Second {
		t.Fatalf("latency = %v, implausible", lats[0])
	}
}

func TestSetGetThroughRealSockets(t *testing.T) {
	addr, _ := startServer(t)
	c := dialOrFail(t, addr)
	val := make([]byte, 16384)
	if err := c.Do(resp.AppendCommand(nil, []byte("SET"), []byte("k"), val)); err != nil {
		t.Fatal(err)
	}
	if err := c.Do(resp.Command("GET", "k")); err != nil {
		t.Fatal(err)
	}
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", c.Outstanding())
	}
}

func TestPipelinedLoadAndHintEstimate(t *testing.T) {
	addr, _ := startServer(t)
	c := dialOrFail(t, addr)
	const n = 500
	wire := resp.Command("PING")
	for i := 0; i < n; i++ {
		if err := c.Send(wire); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Outstanding() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d after drain", got)
	}
	a := c.Estimate()
	if !a.Valid {
		t.Fatal("hint estimate invalid after load")
	}
	if a.Departures != n {
		t.Fatalf("departures = %d, want %d", a.Departures, n)
	}
	lats := c.Latencies()
	if len(lats) != n {
		t.Fatalf("latencies = %d, want %d", len(lats), n)
	}
	// The hint latency must be in the same ballpark as the directly
	// measured mean (both are userspace request→response times).
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	mean := sum / time.Duration(n)
	if a.Latency < mean/4 || a.Latency > mean*4 {
		t.Fatalf("hint latency %v vs measured mean %v", a.Latency, mean)
	}
}

func TestNoDelayTogglingOnLiveConnection(t *testing.T) {
	addr, _ := startServer(t)
	c := dialOrFail(t, addr)
	wire := resp.Command("PING")
	for _, mode := range []bool{false, true, false, true} {
		if err := c.SetNoDelay(mode); err != nil {
			t.Fatalf("SetNoDelay(%v): %v", mode, err)
		}
		if c.NoDelay() != mode {
			t.Fatalf("NoDelay() = %v, want %v", c.NoDelay(), mode)
		}
		for i := 0; i < 20; i++ {
			if err := c.Send(wire); err != nil {
				t.Fatal(err)
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for c.Outstanding() > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if c.Outstanding() != 0 {
			t.Fatalf("mode %v: requests stuck", mode)
		}
	}
}

func TestServerNagleModeConfigurable(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	store := kv.NewStore(func() time.Duration { return time.Duration(time.Now().UnixNano()) })
	srv := NewServer(kv.NewEngine(store))
	srv.Nagle = true
	go srv.Serve(l)
	defer srv.Close()
	c := dialOrFail(t, l.Addr().String())
	if err := c.Do(resp.Command("PING")); err != nil {
		t.Fatal(err)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	addr, _ := startServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Skipf("dial unavailable: %v", err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("$garbage\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, _ := nc.Read(buf)
	if n == 0 || buf[0] != '-' {
		t.Fatalf("expected error reply, got %q", buf[:n])
	}
	// The server must then close the connection.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("connection still open after protocol error")
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, _ := startServer(t)
	const clients = 4
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(id int) {
			c, err := Dial(addr, 64)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 50; j++ {
				if err := c.Do(resp.Command("INCR", "ctr")); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Verify the counter through a fresh client: 4×50 increments.
	c := dialOrFail(t, addr)
	if err := c.Do(resp.Command("INCR", "ctr")); err != nil {
		t.Fatal(err)
	}
	// The reply value isn't surfaced by Client; existence of 201st INCR
	// without protocol error is the assertion here.
}

func TestRunLoadBasic(t *testing.T) {
	addr, _ := startServer(t)
	c := dialOrFail(t, addr)
	rep, err := RunLoad(c, LoadOptions{
		Rate:     2000,
		Duration: 500 * time.Millisecond,
		Request:  resp.Command("PING"),
		Tick:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent < 500 {
		t.Fatalf("sent = %d, want ~1000", rep.Sent)
	}
	if rep.Mean <= 0 || rep.P99 < rep.P50 || rep.Max < rep.P99 {
		t.Fatalf("latency summary inconsistent: %+v", rep)
	}
	if rep.Estimates == 0 {
		t.Fatal("no estimates observed")
	}
}

func TestRunLoadWithToggler(t *testing.T) {
	addr, _ := startServer(t)
	c := dialOrFail(t, addr)
	tog := policyTestToggler()
	rep, err := RunLoad(c, LoadOptions{
		Rate:     2000,
		Duration: 400 * time.Millisecond,
		Request:  resp.Command("PING"),
		Toggler:  tog,
		Tick:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Toggler.Decisions == 0 {
		t.Fatal("toggler never consulted")
	}
}

func TestRunLoadValidation(t *testing.T) {
	addr, _ := startServer(t)
	c := dialOrFail(t, addr)
	for _, opts := range []LoadOptions{
		{Rate: 0, Duration: time.Second, Request: []byte("x")},
		{Rate: 100, Duration: 0, Request: []byte("x")},
		{Rate: 100, Duration: time.Second},
	} {
		if _, err := RunLoad(c, opts); err == nil {
			t.Errorf("opts %+v accepted", opts)
		}
	}
}
