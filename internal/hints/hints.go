// Package hints implements the paper's application-cooperation interface
// (§3.3): a minimalist create(n)/complete(n) API over a userspace-maintained
// queue-state structure.
//
// A cooperative client calls Create when it issues requests and Complete
// when it receives the matching responses. The single logical queue tracked
// this way is "requests outstanding end to end", so Little's law applied to
// it yields exactly the application-perceived latency and throughput — no
// kernel queue monitoring needed, and the server needs not share anything
// (top of the paper's Figure 3).
//
// In the paper the structure would be handed to send(2) via ancillary data;
// here the Wire method produces the same 3-tuple the kernel would forward.
package hints

import (
	"e2ebatch/internal/qstate"
)

// Clock supplies the current time in nanoseconds; virtual inside the
// simulator, wall-clock in the real-socket harness.
type Clock func() qstate.Time

// Tracker is the userspace queue state behind the create/complete API.
// It is safe for concurrent use: the counters live in a qstate.Tracker,
// which also absorbs the timestamp inversions concurrent clock reads can
// produce.
type Tracker struct {
	clock Clock
	st    *qstate.Tracker
}

// NewTracker returns a tracker using the given clock. It panics on a nil
// clock — silently reading zero times would corrupt every estimate.
func NewTracker(clock Clock) *Tracker {
	if clock == nil {
		panic("hints: nil clock")
	}
	return &Tracker{clock: clock, st: qstate.NewTracker(clock())}
}

// Create records that n requests were just issued.
func (t *Tracker) Create(n int) {
	if n <= 0 {
		return
	}
	t.st.Track(t.clock(), int64(n))
}

// Complete records that n requests just completed (their responses were
// received and consumed). Completing more requests than are outstanding
// panics — it means the application's bookkeeping is broken and every
// estimate derived from this tracker would be garbage.
func (t *Tracker) Complete(n int) {
	if n <= 0 {
		return
	}
	t.st.Track(t.clock(), -int64(n))
}

// Outstanding returns the number of requests issued but not completed.
func (t *Tracker) Outstanding() int64 {
	return t.st.Size()
}

// Snapshot captures the 3-tuple at the current clock time.
func (t *Tracker) Snapshot() qstate.Snapshot {
	return t.st.Snapshot(t.clock())
}

// Wire returns the snapshot in the 12-byte wire form a kernel would attach
// to metadata exchanges on the application's behalf.
func (t *Tracker) Wire() qstate.WireQueue {
	return qstate.ToWire(t.Snapshot())
}

// Estimator derives per-interval application-perceived performance from a
// Tracker: latency is true request→response time, throughput is completed
// requests per second. The zero value is unusable; construct with
// NewEstimator.
type Estimator struct {
	t      *Tracker
	prev   qstate.Snapshot
	primed bool
}

// NewEstimator returns an estimator over tr.
func NewEstimator(tr *Tracker) *Estimator {
	if tr == nil {
		panic("hints: nil tracker")
	}
	return &Estimator{t: tr}
}

// Sample snapshots the tracker and returns averages over the interval since
// the previous Sample (invalid on the priming call and on idle intervals).
func (e *Estimator) Sample() qstate.Avgs {
	now := e.t.Snapshot()
	if !e.primed {
		e.prev = now
		e.primed = true
		return qstate.Avgs{}
	}
	a := qstate.GetAvgs(e.prev, now)
	e.prev = now
	return a
}

// Reset discards priming state.
func (e *Estimator) Reset() { e.primed = false }
