package hints

import (
	"sync"
	"testing"
	"time"

	"e2ebatch/internal/qstate"
)

// fakeClock is a manually advanced clock.
type fakeClock struct{ now qstate.Time }

func (f *fakeClock) fn() Clock { return func() qstate.Time { return f.now } }

func (f *fakeClock) advance(d time.Duration) { f.now += qstate.Time(d) }

func TestCreateCompleteLatency(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracker(clk.fn())
	est := NewEstimator(tr)
	est.Sample() // prime

	// Ten requests, each outstanding exactly 200µs, issued sequentially.
	for i := 0; i < 10; i++ {
		tr.Create(1)
		clk.advance(200 * time.Microsecond)
		tr.Complete(1)
		clk.advance(800 * time.Microsecond)
	}
	a := est.Sample()
	if !a.Valid {
		t.Fatal("sample invalid")
	}
	if a.Latency != 200*time.Microsecond {
		t.Fatalf("latency = %v, want 200µs", a.Latency)
	}
	// 10 requests in 10ms = 1000 RPS.
	if a.Throughput < 999 || a.Throughput > 1001 {
		t.Fatalf("throughput = %v, want ~1000", a.Throughput)
	}
}

func TestBatchedCreateComplete(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracker(clk.fn())
	est := NewEstimator(tr)
	est.Sample()
	tr.Create(5)
	clk.advance(time.Millisecond)
	tr.Complete(5)
	clk.advance(time.Millisecond)
	a := est.Sample()
	if a.Latency != time.Millisecond {
		t.Fatalf("latency = %v, want 1ms", a.Latency)
	}
	if a.Departures != 5 {
		t.Fatalf("departures = %d, want 5", a.Departures)
	}
}

func TestOutstanding(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracker(clk.fn())
	tr.Create(3)
	tr.Complete(1)
	if got := tr.Outstanding(); got != 2 {
		t.Fatalf("outstanding = %d, want 2", got)
	}
}

func TestNonPositiveCountsIgnored(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracker(clk.fn())
	tr.Create(0)
	tr.Create(-5)
	tr.Complete(0)
	tr.Complete(-2)
	if tr.Outstanding() != 0 {
		t.Fatal("non-positive counts changed state")
	}
}

func TestOverCompletePanics(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracker(clk.fn())
	tr.Create(1)
	defer func() {
		if recover() == nil {
			t.Fatal("completing more than outstanding did not panic")
		}
	}()
	tr.Complete(2)
}

func TestNilClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil clock did not panic")
		}
	}()
	NewTracker(nil)
}

func TestNilTrackerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil tracker did not panic")
		}
	}()
	NewEstimator(nil)
}

func TestWireForm(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracker(clk.fn())
	tr.Create(2)
	clk.advance(10 * time.Microsecond)
	tr.Complete(2)
	clk.advance(90 * time.Microsecond)
	w := tr.Wire()
	if w.Total != 2 {
		t.Fatalf("wire total = %d, want 2", w.Total)
	}
	if w.TimeUS != 100 {
		t.Fatalf("wire time = %dµs, want 100", w.TimeUS)
	}
	if w.IntegralUS != 20 {
		t.Fatalf("wire integral = %d, want 20 item·µs", w.IntegralUS)
	}
}

func TestEstimatorIdleInterval(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracker(clk.fn())
	est := NewEstimator(tr)
	est.Sample()
	clk.advance(time.Second)
	if a := est.Sample(); a.Valid {
		t.Fatal("idle interval reported valid")
	}
}

func TestEstimatorReset(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracker(clk.fn())
	est := NewEstimator(tr)
	est.Sample()
	tr.Create(1)
	clk.advance(time.Millisecond)
	tr.Complete(1)
	est.Reset()
	if a := est.Sample(); a.Valid {
		t.Fatal("first sample after reset should prime")
	}
}

func TestConcurrentUse(t *testing.T) {
	// The tracker must be race-free under concurrent create/complete; the
	// fake clock is guarded by the tracker's own mutex ordering here, so
	// use a monotonic-ish atomic-free real clock instead.
	start := time.Now()
	tr := NewTracker(func() qstate.Time { return qstate.Time(time.Since(start)) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Create(1)
				tr.Complete(1)
			}
		}()
	}
	wg.Wait()
	if tr.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after balanced ops", tr.Outstanding())
	}
	if got := tr.Snapshot().Total; got != 8000 {
		t.Fatalf("total = %d, want 8000", got)
	}
}
