package analytic

import (
	"math"
	"testing"
	"time"
)

func TestMoments(t *testing.T) {
	m1, m2 := Moments([]float64{1, 2, 3})
	if m1 != 2 || m2 != (1.0+4+9)/3 {
		t.Fatalf("moments = %v, %v", m1, m2)
	}
	m1, m2 = Moments(nil)
	if m1 != 0 || m2 != 0 {
		t.Fatalf("empty moments = %v, %v", m1, m2)
	}
}

func TestStageFromSamples(t *testing.T) {
	st := StageFromSamples("x", []float64{1000, 3000})
	if st.Name != "x" || st.Mean != 2000*time.Nanosecond {
		t.Fatalf("stage = %+v", st)
	}
	if st.M2 != (1e6+9e6)/2 {
		t.Fatalf("M2 = %v", st.M2)
	}
}

// TestMG1WaitQReducesToMM1 cross-checks P-K against the closed M/M/1 form:
// exponential service with mean 1/µ has E[S²] = 2/µ², so Wq = ρ/(µ−λ).
func TestMG1WaitQReducesToMM1(t *testing.T) {
	const lambda, mu = 40000.0, 100000.0 // per second
	meanNS := 1e9 / mu
	m2 := 2 * meanNS * meanNS
	got := float64(MG1WaitQ(lambda, meanNS, m2))
	rho := lambda / mu
	want := rho / (mu - lambda) * 1e9
	if math.Abs(got-want) > want*0.01 {
		t.Fatalf("MM1 Wq = %v ns, want %v ns", got, want)
	}
}

// TestMG1WaitQDeterministicService checks the M/D/1 special case: constant
// service halves the M/M/1 queueing delay.
func TestMG1WaitQDeterministicService(t *testing.T) {
	const lambda, mu = 40000.0, 100000.0
	meanNS := 1e9 / mu
	det := float64(MG1WaitQ(lambda, meanNS, meanNS*meanNS))
	exp := float64(MG1WaitQ(lambda, meanNS, 2*meanNS*meanNS))
	if math.Abs(det*2-exp) > exp*0.01 {
		t.Fatalf("M/D/1 Wq %v should be half of M/M/1 %v", det, exp)
	}
}

func TestMG1WaitQPanicsWhenUnstable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic at rho >= 1")
		}
	}()
	MG1WaitQ(100000, 1e9/100000, 1)
}

func TestE2EDelaySumsStages(t *testing.T) {
	out := E2EDelay(E2EParams{
		RatePerSec: 10000,
		Fixed:      4 * time.Microsecond,
		Stages: []Stage{
			{Name: "a", Mean: 10 * time.Microsecond, M2: 1e8}, // deterministic 10µs
			{Name: "b", Mean: 20 * time.Microsecond, M2: 4e8},
		},
	})
	if !out.Stable {
		t.Fatalf("unstable: %+v", out)
	}
	if out.MaxRho < 0.19 || out.MaxRho > 0.21 {
		t.Fatalf("MaxRho = %v, want 0.2", out.MaxRho)
	}
	var sum time.Duration = 4 * time.Microsecond
	for _, st := range out.Stages {
		if st.Wait <= 0 {
			t.Fatalf("stage %s has no queueing delay at rho %v", st.Name, st.Rho)
		}
		sum += st.Service + st.Wait
	}
	if out.Latency != sum {
		t.Fatalf("latency %v != stage sum %v", out.Latency, sum)
	}
}

func TestE2EDelayUnstableWithholdsPrediction(t *testing.T) {
	out := E2EDelay(E2EParams{
		RatePerSec: 200000,
		Stages: []Stage{
			{Name: "ok", Mean: time.Microsecond, M2: 1e6},
			{Name: "hot", Mean: 10 * time.Microsecond, M2: 1e8}, // rho = 2
		},
	})
	if out.Stable || out.Latency != 0 {
		t.Fatalf("want unstable zero prediction, got %+v", out)
	}
	if out.MaxRho < 1.99 || out.MaxRho > 2.01 {
		t.Fatalf("MaxRho = %v, want 2", out.MaxRho)
	}
	if len(out.Stages) != 2 {
		t.Fatalf("breakdown lost: %+v", out.Stages)
	}
}

func TestNaiveByteDelay(t *testing.T) {
	// 1 Gbps: 8 ns per byte. 1000+1000 bytes → 16 µs + RTT.
	got := NaiveByteDelay(1000, 1000, 1e9, 4*time.Microsecond)
	if got != 20*time.Microsecond {
		t.Fatalf("naive = %v, want 20µs", got)
	}
	if NaiveByteDelay(1000, 1000, 0, time.Microsecond) != time.Microsecond {
		t.Fatal("zero bandwidth should leave only the RTT term")
	}
}
