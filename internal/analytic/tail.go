package analytic

import (
	"math"
	"sort"
	"time"
)

// Closed-form tail rival. The mean model (e2e.go) predicts E[L] from P-K
// sojourn means; the tail model extends it with a two-moment Gamma
// approximation: each stage's sojourn is approximated as exponential with
// its P-K mean (the M/M/1 sojourn is exactly exponential; M/G/1 sojourns
// are approximately so for moderate service variability), so the end-to-end
// sum of independent stage sojourns has mean m = ΣTᵢ and variance v = ΣTᵢ².
// Matching a Gamma(k, θ) to those two moments (k = m²/v, θ = v/m) and
// inverting it with the Wilson–Hilferty cube-root normal approximation gives
// closed-form quantiles:
//
//	x_q ≈ k·θ·(1 − 1/(9k) + z_q·√(1/(9k)))³
//
// with z_q the standard normal quantile. The fixed (propagation) delay
// shifts every quantile by a constant. Like the mean model, the tail rival
// sees only workload statistics and calibration constants — its error vs
// exact sim ground truth measures what a cheap a-priori formula buys at the
// tail, which is exactly what hypotheses H6–H8 score.

// zQuantiles pairs the harness's canonical quantiles with standard normal
// quantiles (hardcoded: the harness never needs an inverse-normal beyond
// these four points).
var zQuantiles = [4]struct {
	Q float64
	Z float64
}{
	{0.50, 0},
	{0.90, 1.2815515655446004},
	{0.99, 2.3263478740408408},
	{0.999, 3.090232306167813},
}

// TailOut is the closed-form tail prediction.
type TailOut struct {
	P50, P90, P99, P999 time.Duration
	// Stable mirrors E2EOut.Stable: false when any stage saturates and the
	// closed form abstains.
	Stable bool
	// Mean and Std are the matched two-moment summary the quantiles were
	// derived from (diagnostics for reports).
	Mean time.Duration
	Std  time.Duration
}

// Quantile maps q onto the nearest canonical field, mirroring
// core.TailEstimate.Quantile so harness code can score both uniformly.
func (t TailOut) Quantile(q float64) time.Duration {
	switch {
	case q <= 0.50:
		return t.P50
	case q <= 0.90:
		return t.P90
	case q <= 0.99:
		return t.P99
	default:
		return t.P999
	}
}

// gammaQuantile inverts Gamma(k, θ) at z via Wilson–Hilferty.
func gammaQuantile(k, theta, z float64) float64 {
	if k <= 0 || theta <= 0 {
		return 0
	}
	c := 1 / (9 * k)
	t := 1 - c + z*math.Sqrt(c)
	if t < 0 {
		t = 0
	}
	return k * theta * t * t * t
}

// E2ETail evaluates the closed-form tail model for the same tandem
// parameters the mean model consumes.
func E2ETail(p E2EParams) TailOut {
	mean := E2EDelay(p)
	if !mean.Stable {
		return TailOut{}
	}
	var m, v float64 // mean and variance of the variable part, ns / ns²
	for _, sd := range mean.Stages {
		t := float64(sd.Service + sd.Wait)
		m += t
		v += t * t // exponential stage: Var = mean²
	}
	out := TailOut{Stable: true}
	out.Mean = time.Duration(m) + p.Fixed
	out.Std = time.Duration(math.Sqrt(v))
	if m <= 0 || v <= 0 {
		// Degenerate tandem: every quantile is the fixed delay.
		out.P50, out.P90, out.P99, out.P999 = p.Fixed, p.Fixed, p.Fixed, p.Fixed
		return out
	}
	k := m * m / v
	theta := v / m
	qs := [4]time.Duration{}
	for i, zq := range zQuantiles {
		qs[i] = p.Fixed + time.Duration(gammaQuantile(k, theta, zq.Z))
	}
	out.P50, out.P90, out.P99, out.P999 = qs[0], qs[1], qs[2], qs[3]
	return out
}

// NaiveByteTail is the tail strawman matching NaiveByteDelay: the empirical
// q-quantile of per-request serialization time ((reqᵢ+respᵢ)·8/bw) plus the
// round-trip propagation — request size spread is the only tail the naive
// model can see; queueing, the actual driver of batching tails, is invisible
// to it. reqBytes and respBytes pair up per request (shorter slice padded
// with zeros).
func NaiveByteTail(reqBytes, respBytes []float64, bitsPerSec float64, rtt time.Duration, q float64) time.Duration {
	n := len(reqBytes)
	if len(respBytes) > n {
		n = len(respBytes)
	}
	if n == 0 || bitsPerSec <= 0 {
		return rtt
	}
	ser := make([]float64, n)
	for i := range ser {
		var b float64
		if i < len(reqBytes) {
			b += reqBytes[i]
		}
		if i < len(respBytes) {
			b += respBytes[i]
		}
		ser[i] = b * 8 * 1e9 / bitsPerSec
	}
	sort.Float64s(ser)
	if math.IsNaN(q) || q <= 0 {
		return rtt + time.Duration(ser[0])
	}
	if q >= 1 {
		return rtt + time.Duration(ser[n-1])
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return rtt + time.Duration(ser[rank-1])
}
