package analytic

import (
	"math"
	"testing"

	"time"

	"e2ebatch/internal/cpumodel"
	"e2ebatch/internal/sim"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestFigure1PanelA: c=1, batching improves both latency and throughput.
func TestFigure1PanelA(t *testing.T) {
	cmp := Compare(PaperParams(1))
	if !cmp.LatencyImproved || !cmp.ThroughputImproved {
		t.Fatalf("c=1: latencyImproved=%v tputImproved=%v, want both true (batch avg=%v nobatch avg=%v)",
			cmp.LatencyImproved, cmp.ThroughputImproved, cmp.Batch.AvgLatency, cmp.NoBatch.AvgLatency)
	}
	if !approx(cmp.Batch.AvgLatency, 12) {
		t.Fatalf("batch avg latency = %v, want 12", cmp.Batch.AvgLatency)
	}
	if !approx(cmp.NoBatch.AvgLatency, 13) {
		t.Fatalf("no-batch avg latency = %v, want 13", cmp.NoBatch.AvgLatency)
	}
	if !approx(cmp.Batch.Makespan, 13) || !approx(cmp.NoBatch.Makespan, 19) {
		t.Fatalf("makespans = %v/%v, want 13/19", cmp.Batch.Makespan, cmp.NoBatch.Makespan)
	}
}

// TestFigure1PanelB: c=5, batching degrades both.
func TestFigure1PanelB(t *testing.T) {
	cmp := Compare(PaperParams(5))
	if cmp.LatencyImproved || cmp.ThroughputImproved {
		t.Fatalf("c=5: latencyImproved=%v tputImproved=%v, want both false", cmp.LatencyImproved, cmp.ThroughputImproved)
	}
	if !approx(cmp.Batch.AvgLatency, 20) || !approx(cmp.NoBatch.AvgLatency, 17) {
		t.Fatalf("avg latencies = %v/%v, want 20/17", cmp.Batch.AvgLatency, cmp.NoBatch.AvgLatency)
	}
}

// TestFigure1PanelC: c=3, mixed — throughput improves, latency degrades.
func TestFigure1PanelC(t *testing.T) {
	cmp := Compare(PaperParams(3))
	if cmp.LatencyImproved || !cmp.ThroughputImproved {
		t.Fatalf("c=3: latencyImproved=%v tputImproved=%v, want false/true", cmp.LatencyImproved, cmp.ThroughputImproved)
	}
	if !approx(cmp.Batch.AvgLatency, 16) || !approx(cmp.NoBatch.AvgLatency, 15) {
		t.Fatalf("avg latencies = %v/%v, want 16/15", cmp.Batch.AvgLatency, cmp.NoBatch.AvgLatency)
	}
	if !approx(cmp.Batch.Makespan, 19) || !approx(cmp.NoBatch.Makespan, 21) {
		t.Fatalf("makespans = %v/%v, want 19/21", cmp.Batch.Makespan, cmp.NoBatch.Makespan)
	}
}

func TestServerSidePerspectiveIdentical(t *testing.T) {
	// The paper's point: "the activity from the server's perspective
	// remains identical" across c. Server completion times depend only
	// on α, β, n — check by comparing pure server makespans.
	for _, c := range []float64{1, 3, 5} {
		p := PaperParams(c)
		// server-only = client cost 0
		p0 := p
		p0.C = 0
		b := Batch(p0)
		if !approx(b.Makespan, 10) { // 3·2+4
			t.Fatalf("c=%v: batch server makespan = %v, want 10", c, b.Makespan)
		}
		nb := NoBatch(p0)
		if !approx(nb.Makespan, 18) { // 3·6
			t.Fatalf("c=%v: no-batch server makespan = %v, want 18", c, nb.Makespan)
		}
	}
}

func TestBatchKEndpoints(t *testing.T) {
	p := PaperParams(3)
	if got, want := BatchK(p, 1), NoBatch(p); !approx(got.AvgLatency, want.AvgLatency) {
		t.Fatalf("BatchK(1) = %v, NoBatch = %v", got.AvgLatency, want.AvgLatency)
	}
	if got, want := BatchK(p, p.N), Batch(p); !approx(got.AvgLatency, want.AvgLatency) {
		t.Fatalf("BatchK(n) = %v, Batch = %v", got.AvgLatency, want.AvgLatency)
	}
	if got, want := BatchK(p, 100), Batch(p); !approx(got.AvgLatency, want.AvgLatency) {
		t.Fatalf("BatchK(>n) = %v, Batch = %v", got.AvgLatency, want.AvgLatency)
	}
}

func TestBatchKIntermediate(t *testing.T) {
	p := Params{N: 4, Alpha: 2, Beta: 4, C: 1}
	got := BatchK(p, 2)
	// Batch 1 (2 reqs) done at 8: client at 9, 10. Batch 2 done at 16:
	// client at 17, 18. Avg = (9+10+17+18)/4 = 13.5, makespan 18.
	if !approx(got.AvgLatency, 13.5) || !approx(got.Makespan, 18) {
		t.Fatalf("BatchK(2) = avg %v makespan %v, want 13.5/18", got.AvgLatency, got.Makespan)
	}
}

func TestValidation(t *testing.T) {
	if err := (Params{N: 0, Alpha: 1}).Validate(); err == nil {
		t.Fatal("N=0 accepted")
	}
	if err := (Params{N: 1, Alpha: -1}).Validate(); err == nil {
		t.Fatal("negative alpha accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BatchK(0) did not panic")
		}
	}()
	BatchK(PaperParams(1), 0)
}

// TestCrossCheckAgainstDES rebuilds the Figure-1 timeline on the simulator's
// CPU model and confirms the closed form matches event-driven execution.
func TestCrossCheckAgainstDES(t *testing.T) {
	for _, c := range []float64{1, 3, 5} {
		p := PaperParams(c)
		for _, batched := range []bool{true, false} {
			s := sim.New(1)
			server := cpumodel.New(s, "server")
			client := cpumodel.New(s, "client")
			var finish []float64
			record := func() { finish = append(finish, float64(s.Now())) }
			unit := func(x float64) int { return int(x) } // 1ns per model unit
			if batched {
				server.Exec(time.Duration(unit(float64(p.N)*p.Alpha+p.Beta)), func() {
					for i := 0; i < p.N; i++ {
						client.Exec(time.Duration(unit(p.C)), record)
					}
				})
			} else {
				for i := 0; i < p.N; i++ {
					server.Exec(time.Duration(unit(p.Alpha+p.Beta)), func() {
						client.Exec(time.Duration(unit(p.C)), record)
					})
				}
			}
			s.Run()
			want := NoBatch(p)
			if batched {
				want = Batch(p)
			}
			if len(finish) != p.N {
				t.Fatalf("c=%v batched=%v: %d completions", c, batched, len(finish))
			}
			for i := range finish {
				if !approx(finish[i], want.Latencies[i]) {
					t.Fatalf("c=%v batched=%v: DES latency[%d]=%v, closed form %v",
						c, batched, i, finish[i], want.Latencies[i])
				}
			}
		}
	}
}
