// Package analytic implements the closed-form batching model of the paper's
// Figure 1: n client requests are queued at the server at time 0; serving
// one request costs α (per-request) + β (per-batch, amortizable); each
// response costs the client c to process. Batching processes all n together
// (total n·α + β, responses emitted at batch completion); not batching
// processes them individually (each α + β, responses emitted as completed).
//
// Depending on c, batching improves both average latency and throughput,
// degrades both, or trades one for the other — the paper's demonstration
// that the same server-side decision has opposite end-to-end effects the
// server cannot observe.
package analytic

import "fmt"

// Params are the Figure-1 model parameters, in abstract time units
// (the paper uses α=2, β=4, n=3, c ∈ {1, 3, 5}).
type Params struct {
	N     int     // requests queued at time 0
	Alpha float64 // per-request server cost α
	Beta  float64 // per-batch server cost β
	C     float64 // per-response client cost c
}

// PaperParams returns Figure 1's α=2, β=4, n=3 with the given c.
func PaperParams(c float64) Params {
	return Params{N: 3, Alpha: 2, Beta: 4, C: c}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("analytic: N must be positive, got %d", p.N)
	}
	if p.Alpha < 0 || p.Beta < 0 || p.C < 0 {
		return fmt.Errorf("analytic: costs must be non-negative: %+v", p)
	}
	return nil
}

// Outcome is the end-to-end result of one policy.
type Outcome struct {
	// Latencies[i] is when the client finishes processing response i
	// (all requests were issued at time 0, so this is request i's
	// end-to-end latency).
	Latencies []float64
	// AvgLatency is the mean of Latencies.
	AvgLatency float64
	// Makespan is when the last response finishes at the client.
	Makespan float64
	// Throughput is N / Makespan.
	Throughput float64
}

func outcome(lat []float64) Outcome {
	var sum, max float64
	for _, l := range lat {
		sum += l
		if l > max {
			max = l
		}
	}
	o := Outcome{Latencies: lat, Makespan: max}
	if n := len(lat); n > 0 {
		o.AvgLatency = sum / float64(n)
		if max > 0 {
			o.Throughput = float64(n) / max
		}
	}
	return o
}

// NoBatch serves each request individually: request i (0-based) leaves the
// server at (i+1)·(α+β); the client processes responses FIFO, one at a
// time, each costing c.
func NoBatch(p Params) Outcome {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	lat := make([]float64, p.N)
	clientFree := 0.0
	for i := 0; i < p.N; i++ {
		served := float64(i+1) * (p.Alpha + p.Beta)
		start := served
		if clientFree > start {
			start = clientFree
		}
		clientFree = start + p.C
		lat[i] = clientFree
	}
	return outcome(lat)
}

// Batch serves all n requests as one batch costing n·α + β, emitting every
// response at batch completion; the client then processes them serially.
func Batch(p Params) Outcome {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	served := float64(p.N)*p.Alpha + p.Beta
	lat := make([]float64, p.N)
	clientFree := served
	for i := 0; i < p.N; i++ {
		clientFree += p.C
		lat[i] = clientFree
	}
	return outcome(lat)
}

// BatchK generalizes Batch to batches of size k (the batch-limit knob an
// AIMD controller would adjust, §5): requests are served in ⌈n/k⌉ batches,
// each batch's responses emitted at its completion.
func BatchK(p Params, k int) Outcome {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if k < 1 {
		panic("analytic: batch size must be >= 1")
	}
	lat := make([]float64, 0, p.N)
	serverFree := 0.0
	clientFree := 0.0
	for done := 0; done < p.N; {
		b := k
		if p.N-done < b {
			b = p.N - done
		}
		serverFree += float64(b)*p.Alpha + p.Beta
		if clientFree < serverFree {
			clientFree = serverFree
		}
		for i := 0; i < b; i++ {
			clientFree += p.C
			lat = append(lat, clientFree)
		}
		done += b
	}
	return outcome(lat)
}

// Comparison captures which metrics batching improves.
type Comparison struct {
	Batch, NoBatch                      Outcome
	LatencyImproved, ThroughputImproved bool
}

// Compare runs both policies and reports the outcome — the three panels of
// Figure 1 are Compare at c = 1, 3, 5.
func Compare(p Params) Comparison {
	b, nb := Batch(p), NoBatch(p)
	return Comparison{
		Batch:              b,
		NoBatch:            nb,
		LatencyImproved:    b.AvgLatency < nb.AvgLatency,
		ThroughputImproved: b.Throughput > nb.Throughput,
	}
}
