package analytic

import (
	"fmt"
	"time"
)

// Closed-form end-to-end delay model — the "roofline" rival the model-
// fidelity harness scores against the paper's measured estimator. The
// request path is modeled as a tandem of single-server queues (client app,
// client softirq, uplink wire, server softirq, server app, downlink wire —
// the harness decides the decomposition), each treated as an independent
// M/G/1 under the Kleinrock independence approximation: sojourn time from
// Pollaczek–Khinchine with the stage's first two service-time moments, plus
// a fixed pure-delay term (propagation) that involves no queueing.
//
// The model sees only workload statistics (arrival rate, size moments) and
// calibration constants — never the simulator's measurements — so its error
// against sim ground truth quantifies what a cheap a-priori formula can and
// cannot capture, exactly the comparison the harness exists to make.

// Stage is one server of the tandem: a name for reports plus the first two
// raw moments of its per-request service time.
type Stage struct {
	Name string
	// Mean is E[S]; M2 is E[S²] in ns² (raw second moment, not variance).
	Mean time.Duration
	M2   float64
}

// StageFromSamples computes a stage's service moments from per-request
// service times in nanoseconds.
func StageFromSamples(name string, ns []float64) Stage {
	m1, m2 := Moments(ns)
	return Stage{Name: name, Mean: time.Duration(m1), M2: m2}
}

// Moments returns the first and second raw moments of xs.
func Moments(xs []float64) (m1, m2 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		m1 += x
		m2 += x * x
	}
	n := float64(len(xs))
	return m1 / n, m2 / n
}

// MG1WaitQ returns the Pollaczek–Khinchine mean queueing delay (excluding
// service) of an M/G/1 queue from raw service moments in nanoseconds:
// Wq = λ·E[S²] / (2(1−ρ)). It panics when the queue is unstable, matching
// the other closed-form helpers.
func MG1WaitQ(arrivalPerSec, meanServiceNS, service2NS2 float64) time.Duration {
	rho := arrivalPerSec * meanServiceNS / 1e9
	if rho >= 1 {
		panic(fmt.Sprintf("analytic: unstable M/G/1 (rho=%.3f)", rho))
	}
	return time.Duration(arrivalPerSec / 1e9 * service2NS2 / (2 * (1 - rho)))
}

// E2EParams parameterizes the tandem model.
type E2EParams struct {
	// RatePerSec is the mean arrival rate λ offered to every stage.
	RatePerSec float64
	// Stages is the tandem, in path order.
	Stages []Stage
	// Fixed is pure delay with no queueing — propagation both ways.
	Fixed time.Duration
}

// StageDelay is one stage's predicted sojourn.
type StageDelay struct {
	Name    string
	Rho     float64
	Service time.Duration // E[S]
	Wait    time.Duration // P-K queueing delay
}

// E2EOut is the model's prediction with its per-stage breakdown.
type E2EOut struct {
	// Latency is the predicted mean end-to-end latency: Fixed plus every
	// stage's service and queueing delay. Meaningful only when Stable.
	Latency time.Duration
	// Stable is false when any stage's utilization reaches 1 — the
	// closed form diverges and the prediction is withheld.
	Stable bool
	// MaxRho is the largest stage utilization (the model's bottleneck).
	MaxRho float64
	Stages []StageDelay
}

// E2EDelay evaluates the tandem model.
func E2EDelay(p E2EParams) E2EOut {
	out := E2EOut{Stable: true, Latency: p.Fixed}
	for _, st := range p.Stages {
		mean := float64(st.Mean)
		rho := p.RatePerSec * mean / 1e9
		if rho > out.MaxRho {
			out.MaxRho = rho
		}
		sd := StageDelay{Name: st.Name, Rho: rho, Service: st.Mean}
		if rho >= 1 {
			out.Stable = false
			out.Stages = append(out.Stages, sd)
			continue
		}
		sd.Wait = MG1WaitQ(p.RatePerSec, mean, st.M2)
		out.Stages = append(out.Stages, sd)
		out.Latency += sd.Service + sd.Wait
	}
	if !out.Stable {
		out.Latency = 0
	}
	return out
}

// NaiveByteDelay is the strawman predictor the harness scores alongside the
// real models: request and response bytes serialized at the link rate plus
// the round-trip propagation — no queueing, no CPU, the "latency is bytes
// over bandwidth" intuition the paper argues a server cannot safely act on.
func NaiveByteDelay(reqBytes, respBytes, bitsPerSec float64, rtt time.Duration) time.Duration {
	d := rtt
	if bitsPerSec > 0 {
		d += time.Duration((reqBytes + respBytes) * 8 * 1e9 / bitsPerSec)
	}
	return d
}
