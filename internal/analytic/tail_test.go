package analytic

import (
	"math"
	"testing"
	"time"
)

// TestE2ETailSingleExponentialStage: one M/M/1-like stage's sojourn is
// exactly exponential, where the Gamma matching is exact (k=1) and
// Wilson–Hilferty is known to be accurate: p99 must land within 5% of the
// exact −ln(0.01)·mean, p50 within 10% of ln 2·mean.
func TestE2ETailSingleExponentialStage(t *testing.T) {
	mean := 200 * time.Microsecond
	p := E2EParams{
		RatePerSec: 1, // negligible load: sojourn ≈ service
		Stages:     []Stage{{Name: "one", Mean: mean, M2: 2 * float64(mean) * float64(mean)}},
	}
	out := E2ETail(p)
	if !out.Stable {
		t.Fatal("stable tandem abstained")
	}
	sojourn := float64(E2EDelay(p).Latency)
	exactP99 := sojourn * math.Log(100)
	if rel := (float64(out.P99) - exactP99) / exactP99; math.Abs(rel) > 0.05 {
		t.Fatalf("p99 = %v, exact %v (%.1f%% off)", out.P99, time.Duration(exactP99), 100*rel)
	}
	exactP50 := sojourn * math.Ln2
	if rel := (float64(out.P50) - exactP50) / exactP50; math.Abs(rel) > 0.10 {
		t.Fatalf("p50 = %v, exact %v (%.1f%% off)", out.P50, time.Duration(exactP50), 100*rel)
	}
}

// TestE2ETailErlangStages: four equal stages sum to an Erlang-4; the
// two-moment Gamma match is then exact (k=4) and the W–H p99 must be within
// 5% of the exact Erlang-4 0.99-quantile (≈ 10.045 × stage mean).
func TestE2ETailErlangStages(t *testing.T) {
	stage := Stage{Name: "s", Mean: 100 * time.Microsecond, M2: 2 * float64(100*time.Microsecond) * float64(100*time.Microsecond)}
	p := E2EParams{RatePerSec: 1, Stages: []Stage{stage, stage, stage, stage}}
	out := E2ETail(p)
	perStage := float64(E2EDelay(p).Latency) / 4
	exact := 10.045 * perStage
	if rel := (float64(out.P99) - exact) / exact; math.Abs(rel) > 0.05 {
		t.Fatalf("Erlang-4 p99 = %v, exact %v (%.1f%% off)", out.P99, time.Duration(exact), 100*rel)
	}
}

// TestE2ETailShape: quantiles are monotone, shifted by Fixed, above the
// median sits near-but-below the mean-plus-spread region, and the Quantile
// accessor maps canonically.
func TestE2ETailShape(t *testing.T) {
	p := E2EParams{
		RatePerSec: 20000,
		Fixed:      150 * time.Microsecond,
		Stages: []Stage{
			{Name: "app", Mean: 10 * time.Microsecond, M2: 3e8},
			{Name: "wire", Mean: 25 * time.Microsecond, M2: 9e8},
		},
	}
	out := E2ETail(p)
	if !out.Stable {
		t.Fatal("abstained")
	}
	if !(out.P50 < out.P90 && out.P90 < out.P99 && out.P99 < out.P999) {
		t.Fatalf("quantiles not strictly ordered: %+v", out)
	}
	if out.P50 < p.Fixed {
		t.Fatalf("p50 %v below fixed delay %v", out.P50, p.Fixed)
	}
	if out.Quantile(0.5) != out.P50 || out.Quantile(0.9) != out.P90 ||
		out.Quantile(0.99) != out.P99 || out.Quantile(0.9999) != out.P999 {
		t.Fatal("Quantile accessor mismapped")
	}
	if out.Mean <= p.Fixed || out.Std <= 0 {
		t.Fatalf("diagnostics not populated: %+v", out)
	}
}

// TestE2ETailUnstableAbstains: a saturated stage zeroes the prediction,
// mirroring E2EDelay.
func TestE2ETailUnstableAbstains(t *testing.T) {
	p := E2EParams{
		RatePerSec: 1e6,
		Stages:     []Stage{{Name: "sat", Mean: 10 * time.Microsecond, M2: 2e8}},
	}
	if out := E2ETail(p); out.Stable || out.P99 != 0 {
		t.Fatalf("unstable tandem predicted %+v", out)
	}
}

// TestE2ETailDegenerateFixedOnly: no stages means every quantile is the
// fixed propagation delay.
func TestE2ETailDegenerateFixedOnly(t *testing.T) {
	p := E2EParams{RatePerSec: 1000, Fixed: 80 * time.Microsecond}
	out := E2ETail(p)
	if !out.Stable || out.P50 != p.Fixed || out.P999 != p.Fixed {
		t.Fatalf("fixed-only tandem: %+v", out)
	}
}

// TestNaiveByteTail: exact empirical quantiles of the per-request
// serialization time plus RTT, with clamped and degenerate edges.
func TestNaiveByteTail(t *testing.T) {
	rtt := 100 * time.Microsecond
	bw := 8e9 // 8 Gbit/s → 1 ns per byte
	req := []float64{1000, 2000, 3000, 4000}
	resp := []float64{0, 0, 0, 96000} // one heavy response dominates the tail
	// Serialization times: 1, 2, 3, 100 µs.
	if got := NaiveByteTail(req, resp, bw, rtt, 0.5); got != rtt+2*time.Microsecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := NaiveByteTail(req, resp, bw, rtt, 0.99); got != rtt+100*time.Microsecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := NaiveByteTail(req, resp, bw, rtt, 0); got != rtt+1*time.Microsecond {
		t.Fatalf("q=0 = %v, want min", got)
	}
	if got := NaiveByteTail(req, resp, bw, rtt, 1); got != rtt+100*time.Microsecond {
		t.Fatalf("q=1 = %v, want max", got)
	}
	if got := NaiveByteTail(req, resp, bw, rtt, math.NaN()); got != rtt+1*time.Microsecond {
		t.Fatalf("q=NaN = %v, want min", got)
	}
	// Mismatched lengths pad with zeros; empty inputs fall back to RTT.
	if got := NaiveByteTail(req[:1], nil, bw, rtt, 1); got != rtt+1*time.Microsecond {
		t.Fatalf("req-only = %v", got)
	}
	if got := NaiveByteTail(nil, nil, bw, rtt, 0.99); got != rtt {
		t.Fatalf("empty = %v, want rtt", got)
	}
	if got := NaiveByteTail(req, resp, 0, rtt, 0.99); got != rtt {
		t.Fatalf("zero bandwidth = %v, want rtt", got)
	}
}
