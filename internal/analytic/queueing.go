package analytic

import (
	"fmt"
	"time"
)

// Queueing-theory helpers used to sanity-check the discrete-event
// simulator: the Figure 4a server is, to first order, an M/D/1 queue
// (Poisson arrivals from the open-loop generator, near-deterministic
// service), so its waiting time should follow Pollaczek–Khinchine. The
// validation tests compare the simulator's measured latency against these
// closed forms at loads where the single-queue abstraction holds.

// MM1Wait returns the expected time in system (wait + service) of an M/M/1
// queue with the given arrival rate (per second) and mean service time.
// It panics if the queue is unstable (ρ >= 1).
func MM1Wait(arrivalPerSec float64, service time.Duration) time.Duration {
	rho := arrivalPerSec * service.Seconds()
	if rho >= 1 {
		panic(fmt.Sprintf("analytic: unstable M/M/1 (rho=%.3f)", rho))
	}
	return time.Duration(float64(service) / (1 - rho))
}

// MD1Wait returns the expected time in system of an M/D/1 queue
// (deterministic service) via Pollaczek–Khinchine:
// W = S + ρS / (2(1−ρ)).
func MD1Wait(arrivalPerSec float64, service time.Duration) time.Duration {
	rho := arrivalPerSec * service.Seconds()
	if rho >= 1 {
		panic(fmt.Sprintf("analytic: unstable M/D/1 (rho=%.3f)", rho))
	}
	wq := float64(service) * rho / (2 * (1 - rho))
	return service + time.Duration(wq)
}

// MG1Wait returns the expected time in system of an M/G/1 queue with the
// given service-time coefficient of variation squared (cv2 = Var/Mean²):
// W = S + ρS(1+cv²) / (2(1−ρ)). cv²=0 reduces to M/D/1, cv²=1 to M/M/1.
func MG1Wait(arrivalPerSec float64, service time.Duration, cv2 float64) time.Duration {
	if cv2 < 0 {
		panic("analytic: negative squared coefficient of variation")
	}
	rho := arrivalPerSec * service.Seconds()
	if rho >= 1 {
		panic(fmt.Sprintf("analytic: unstable M/G/1 (rho=%.3f)", rho))
	}
	wq := float64(service) * rho * (1 + cv2) / (2 * (1 - rho))
	return service + time.Duration(wq)
}

// Utilization returns ρ = λ·S.
func Utilization(arrivalPerSec float64, service time.Duration) float64 {
	return arrivalPerSec * service.Seconds()
}

// SaturationRate returns the arrival rate at which a queue with the given
// service time saturates (ρ = 1).
func SaturationRate(service time.Duration) float64 {
	return 1 / service.Seconds()
}
