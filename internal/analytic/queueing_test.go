package analytic

import (
	"math"
	"testing"
	"time"

	"e2ebatch/internal/cpumodel"
	"e2ebatch/internal/sim"
)

func TestMM1KnownValues(t *testing.T) {
	// ρ=0.5 with S=10ms ⇒ W = 10/(1-0.5) = 20ms.
	if got := MM1Wait(50, 10*time.Millisecond); got != 20*time.Millisecond {
		t.Fatalf("MM1 = %v, want 20ms", got)
	}
}

func TestMD1KnownValues(t *testing.T) {
	// ρ=0.5, S=10ms ⇒ W = 10 + 0.5·10/(2·0.5) = 15ms.
	if got := MD1Wait(50, 10*time.Millisecond); got != 15*time.Millisecond {
		t.Fatalf("MD1 = %v, want 15ms", got)
	}
}

func TestMG1Reductions(t *testing.T) {
	lam, s := 70.0, 10*time.Millisecond
	if MG1Wait(lam, s, 0) != MD1Wait(lam, s) {
		t.Fatal("MG1(cv2=0) != MD1")
	}
	if MG1Wait(lam, s, 1) != MM1Wait(lam, s) {
		t.Fatal("MG1(cv2=1) != MM1")
	}
}

func TestUnstableQueuesPanic(t *testing.T) {
	for i, f := range []func(){
		func() { MM1Wait(100, 10*time.Millisecond) },
		func() { MD1Wait(100, 10*time.Millisecond) },
		func() { MG1Wait(200, 10*time.Millisecond, 0.5) },
		func() { MG1Wait(10, 10*time.Millisecond, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestUtilizationAndSaturation(t *testing.T) {
	if got := Utilization(50, 10*time.Millisecond); got != 0.5 {
		t.Fatalf("Utilization = %v", got)
	}
	if got := SaturationRate(10 * time.Millisecond); got != 100 {
		t.Fatalf("SaturationRate = %v", got)
	}
}

// TestMD1MatchesDES drives an M/D/1 queue through the discrete-event CPU
// model and checks the measured mean system time against
// Pollaczek–Khinchine — the simulator's queueing core is exact, so this
// must match within sampling noise.
func TestMD1MatchesDES(t *testing.T) {
	for _, rho := range []float64{0.3, 0.6, 0.85} {
		service := 20 * time.Microsecond
		lambda := rho / service.Seconds()
		s := sim.New(99)
		cpu := cpumodel.New(s, "srv")

		var total time.Duration
		n := 0
		const jobs = 60000
		var arrive func()
		arrive = func() {
			start := s.Now()
			cpu.Exec(service, func() {
				total += s.Now().Sub(start)
				n++
			})
			gap := time.Duration(s.Rand().ExpFloat64() * float64(time.Second) / lambda)
			if n < jobs {
				s.After(gap, arrive)
			}
		}
		s.At(0, arrive)
		s.Run()

		got := total / time.Duration(n)
		want := MD1Wait(lambda, service)
		relErr := math.Abs(float64(got-want)) / float64(want)
		if relErr > 0.05 {
			t.Errorf("rho=%.2f: DES %v vs M/D/1 %v (%.1f%% error)", rho, got, want, 100*relErr)
		}
	}
}
