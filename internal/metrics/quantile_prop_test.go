package metrics

// Property tests pinning Histogram.Quantile's contract at the boundaries
// and over random inputs. The audit they encode:
//
//   - empty histogram: every quantile is 0 (no panic, no NaN rank math);
//   - q <= 0 is Min, q >= 1 is Max, out-of-range q clamps;
//   - a single sample is returned exactly for every q — the bucket lower
//     bound alone would under-report coarse-bucket values, and the
//     min/max clamp is what repairs it;
//   - Quantile is monotone nondecreasing in q (rank and bucket lower
//     bounds are both nondecreasing, and the clamp preserves order);
//   - the returned value brackets the exact rank-quantile from below
//     within one bucket width: exact is in [got, got + got>>6 + 1].

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// randomSamples draws n durations spanning every bucket regime: exact
// sub-64ns buckets, mid-range log-uniform values, and occasional huge
// outliers in the coarsest buckets.
func randomSamples(rng *rand.Rand, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		switch rng.Intn(10) {
		case 0: // exact buckets: [0, 64) ns
			out[i] = time.Duration(rng.Intn(64))
		case 1: // coarse buckets: up to ~3 years
			out[i] = time.Duration(rng.Int63n(int64(26000 * time.Hour)))
		default: // log-uniform over [1us, 10s]
			out[i] = time.Duration(math.Exp(rng.Float64()*math.Log(1e7)) * 1e3)
		}
	}
	return out
}

func TestHistogramQuantileMonotonicProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		for _, d := range randomSamples(rng, 1+rng.Intn(5000)) {
			h.Record(d)
		}
		// A dense fixed grid plus random interior points, in order.
		qs := []float64{-1, 0, 1e-9}
		for q := 0.01; q < 1; q += 0.01 {
			qs = append(qs, q)
		}
		qs = append(qs, 1-1e-12, 1, 2)
		for i := 1; i < len(qs); i++ {
			lo, hi := h.Quantile(qs[i-1]), h.Quantile(qs[i])
			if hi < lo {
				t.Fatalf("seed %d: Quantile(%v)=%v > Quantile(%v)=%v",
					seed, qs[i-1], lo, qs[i], hi)
			}
			if lo < h.Min() || hi > h.Max() {
				t.Fatalf("seed %d: quantiles escaped [Min,Max]: %v %v not in [%v,%v]",
					seed, lo, hi, h.Min(), h.Max())
			}
		}
	}
}

func TestHistogramQuantileBracketsExactProperty(t *testing.T) {
	for seed := int64(11); seed <= 14; seed++ {
		rng := rand.New(rand.NewSource(seed))
		samples := randomSamples(rng, 2000)
		var h Histogram
		for _, d := range samples {
			h.Record(d)
		}
		sortDurations(samples)
		for q := 0.005; q < 1; q += 0.005 {
			rank := int(math.Ceil(q * float64(len(samples))))
			if rank < 1 {
				rank = 1
			}
			exact, got := samples[rank-1], h.Quantile(q)
			// One bucket width: exact buckets below 64ns are width 1 (the
			// +1), wider buckets have width <= lower-bound/64 (the >>6).
			if got > exact || exact > got+got>>6+1 {
				t.Fatalf("seed %d q=%v: Quantile=%v does not bracket exact %v within one bucket",
					seed, q, got, exact)
			}
		}
	}
}

func TestHistogramQuantileSingleSampleExact(t *testing.T) {
	// Across magnitudes, including values deep inside coarse buckets where
	// the raw bucket lower bound would round 999999h down: one sample must
	// be every quantile, exactly.
	for _, d := range []time.Duration{
		0, 1, 63, 64, 100, 12345,
		123 * time.Microsecond, 7 * time.Millisecond, 999 * time.Millisecond,
		3*time.Hour + 7*time.Nanosecond,
	} {
		var h Histogram
		h.Record(d)
		for _, q := range []float64{-1, 0, 0.001, 0.25, 0.5, 0.75, 0.999, 1, 5} {
			if got := h.Quantile(q); got != d {
				t.Fatalf("single sample %v: Quantile(%v) = %v", d, q, got)
			}
		}
	}
}

func TestHistogramQuantileTwoSamplesSplit(t *testing.T) {
	// With two samples the rank math splits exactly at q=0.5: ranks 1 and
	// 2, i.e. min for q in (0,0.5] and (approximately) max above.
	var h Histogram
	lo, hi := 100*time.Microsecond, 80*time.Millisecond
	h.Record(lo)
	h.Record(hi)
	if got := h.Quantile(0.5); got != lo {
		t.Fatalf("Quantile(0.5) = %v, want min %v", got, lo)
	}
	got := h.Quantile(0.500001)
	if got <= lo || got > hi || hi > got+got>>6+1 {
		t.Fatalf("Quantile(0.5+) = %v, want max %v within one bucket", got, hi)
	}
	if h.Quantile(1) != hi {
		t.Fatalf("Quantile(1) = %v, want %v", h.Quantile(1), hi)
	}
}
