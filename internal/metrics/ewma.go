package metrics

import (
	"math"
	"time"
)

// EWMA is an exponentially weighted moving average with a fixed smoothing
// factor alpha in (0, 1]. The paper (§5) proposes EWMAs to smooth noisy
// per-tick end-to-end estimates before toggling decisions; this is that
// smoother. The zero value is unusable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	set   bool
}

// NewEWMA returns an EWMA with the given smoothing factor. It panics unless
// 0 < alpha <= 1.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		panic("metrics: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Update folds a new observation in and returns the new average. The first
// observation seeds the average directly. NaN observations are ignored so a
// single undefined estimate (e.g. 0/0 from an idle interval) cannot poison
// the smoother.
func (e *EWMA) Update(x float64) float64 {
	if math.IsNaN(x) {
		return e.value
	}
	if !e.set {
		e.value = x
		e.set = true
		return x
	}
	e.value += e.alpha * (x - e.value)
	return e.value
}

// Value returns the current average (0 before any update).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation has been folded in.
func (e *EWMA) Initialized() bool { return e.set }

// Reset discards all state, keeping alpha.
func (e *EWMA) Reset() { e.value, e.set = 0, false }

// Alpha returns the smoothing factor.
func (e *EWMA) Alpha() float64 { return e.alpha }

// DurationEWMA adapts EWMA to time.Duration observations.
type DurationEWMA struct{ e EWMA }

// NewDurationEWMA returns a duration-valued EWMA. Same alpha constraints as
// NewEWMA.
func NewDurationEWMA(alpha float64) *DurationEWMA {
	return &DurationEWMA{e: *NewEWMA(alpha)}
}

// Update folds in an observation and returns the new average.
func (d *DurationEWMA) Update(x time.Duration) time.Duration {
	return time.Duration(d.e.Update(float64(x)))
}

// Value returns the current average.
func (d *DurationEWMA) Value() time.Duration { return time.Duration(d.e.Value()) }

// Initialized reports whether at least one observation has been folded in.
func (d *DurationEWMA) Initialized() bool { return d.e.Initialized() }

// Reset discards state.
func (d *DurationEWMA) Reset() { d.e.Reset() }

// Welford computes running mean and variance in one pass (Welford's online
// algorithm, numerically stable). The zero value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds in one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (0 with fewer than two samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Merge combines another Welford accumulator into w (Chan et al. parallel
// variant).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}
