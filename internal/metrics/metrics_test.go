package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(123 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 123*time.Microsecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != h.Max() || h.Min() != 123*time.Microsecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramExactMeanSum(t *testing.T) {
	var h Histogram
	var want int64
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
		want += int64(i) * 1000
	}
	if int64(h.Sum()) != want {
		t.Fatalf("Sum = %v, want %v", h.Sum(), time.Duration(want))
	}
	if h.Mean() != time.Duration(want/1000) {
		t.Fatalf("Mean = %v", h.Mean())
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatal("negative sample should be recorded as zero")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	samples := make([]time.Duration, 0, 20000)
	for i := 0; i < 20000; i++ {
		// log-uniform over [1us, 100ms]
		v := time.Duration(math.Exp(rng.Float64()*math.Log(1e5)) * 1e3)
		samples = append(samples, v)
		h.Record(v)
	}
	sortDurations(samples)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got-exact)) / float64(exact)
		if relErr > 0.05 {
			t.Errorf("q=%v: got %v exact %v (rel err %.3f)", q, got, exact, relErr)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i))
	}
	if h.Quantile(0) != h.Min() {
		t.Fatal("Quantile(0) != Min")
	}
	if h.Quantile(1) != h.Max() {
		t.Fatal("Quantile(1) != Max")
	}
	if h.Quantile(-3) != h.Min() || h.Quantile(7) != h.Max() {
		t.Fatal("out-of-range q not clamped")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		v := time.Duration(rng.Int63n(1e9))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() {
		t.Fatalf("merge mismatch: count %d vs %d, sum %v vs %v", a.Count(), both.Count(), a.Sum(), both.Sum())
	}
	if a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatal("merge min/max mismatch")
	}
	if a.Quantile(0.9) != both.Quantile(0.9) {
		t.Fatal("merge quantile mismatch")
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var a, b Histogram
	a.Record(5)
	a.Merge(&b) // empty other: no-op
	if a.Count() != 1 {
		t.Fatal("merging empty changed count")
	}
	b.Merge(&a)
	if b.Count() != 1 || b.Min() != 5 {
		t.Fatal("merging into empty lost state")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestBucketIndexMonotonic(t *testing.T) {
	check := func(a, b int64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > b {
			a, b = b, a
		}
		return bucketIndex(a) <= bucketIndex(b)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketLowInvertsIndex(t *testing.T) {
	check := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		i := bucketIndex(v)
		lo := bucketLow(i)
		if lo > v {
			return false
		}
		// relative error of bucket floor bounded by 1/64
		return float64(v-lo) <= float64(v)/float64(subBuckets)+1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentilesHelper(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	ps := h.Percentiles(50, 99)
	if len(ps) != 2 || ps[0] > ps[1] {
		t.Fatalf("Percentiles = %v", ps)
	}
}

func TestEWMASeedsWithFirstValue(t *testing.T) {
	e := NewEWMA(0.2)
	if e.Initialized() {
		t.Fatal("fresh EWMA reports initialized")
	}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first update = %v, want 10", got)
	}
	if !e.Initialized() {
		t.Fatal("EWMA not initialized after update")
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.3)
	e.Update(0)
	for i := 0; i < 100; i++ {
		e.Update(42)
	}
	if math.Abs(e.Value()-42) > 1e-6 {
		t.Fatalf("Value = %v, want ~42", e.Value())
	}
}

func TestEWMAFormula(t *testing.T) {
	e := NewEWMA(0.5)
	e.Update(10)
	if got := e.Update(20); got != 15 {
		t.Fatalf("got %v, want 15", got)
	}
	if got := e.Update(5); got != 10 {
		t.Fatalf("got %v, want 10", got)
	}
}

func TestEWMAIgnoresNaN(t *testing.T) {
	e := NewEWMA(0.5)
	e.Update(10)
	e.Update(math.NaN())
	if e.Value() != 10 {
		t.Fatalf("NaN polluted EWMA: %v", e.Value())
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.9)
	e.Update(100)
	e.Reset()
	if e.Initialized() || e.Value() != 0 {
		t.Fatal("reset incomplete")
	}
	if e.Alpha() != 0.9 {
		t.Fatal("reset dropped alpha")
	}
}

func TestDurationEWMA(t *testing.T) {
	d := NewDurationEWMA(0.5)
	d.Update(100 * time.Microsecond)
	got := d.Update(200 * time.Microsecond)
	if got != 150*time.Microsecond {
		t.Fatalf("got %v, want 150µs", got)
	}
	if !d.Initialized() {
		t.Fatal("not initialized")
	}
	d.Reset()
	if d.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWelfordMeanVariance(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// sample variance of this set is 32/7
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
}

func TestWelfordFewSamples(t *testing.T) {
	var w Welford
	if w.Variance() != 0 {
		t.Fatal("variance of empty should be 0")
	}
	w.Add(3)
	if w.Variance() != 0 || w.Stddev() != 0 {
		t.Fatal("variance of single sample should be 0")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var all, a, b Welford
	for i := 0; i < 10000; i++ {
		x := rng.NormFloat64()*5 + 100
		all.Add(x)
		if i%3 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatal("merge count mismatch")
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merge mean %v vs %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-6 {
		t.Fatalf("merge variance %v vs %v", a.Variance(), all.Variance())
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Merge(b) // both empty
	if a.Count() != 0 {
		t.Fatal("empty merge changed state")
	}
	b.Add(7)
	a.Merge(b)
	if a.Count() != 1 || a.Mean() != 7 {
		t.Fatal("merge into empty failed")
	}
}

func TestRateMeterFirstWindow(t *testing.T) {
	var r RateMeter
	r.Add(100)
	got := r.Rate(time.Second)
	if got != 100 {
		t.Fatalf("rate = %v, want 100", got)
	}
}

func TestRateMeterSubsequentWindows(t *testing.T) {
	var r RateMeter
	r.Add(100)
	r.Rate(time.Second)
	r.Add(50)
	got := r.Rate(2 * time.Second) // 50 events in 1s
	if got != 50 {
		t.Fatalf("rate = %v, want 50", got)
	}
	if r.Total() != 150 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRateMeterZeroInterval(t *testing.T) {
	var r RateMeter
	r.Add(10)
	r.Rate(time.Second)
	if got := r.Rate(time.Second); got != 0 {
		t.Fatalf("zero-interval rate = %v, want 0", got)
	}
}

func TestRateMeterReset(t *testing.T) {
	var r RateMeter
	r.Add(5)
	r.Rate(time.Second)
	r.Reset()
	if r.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCounterInc(t *testing.T) {
	c := Counter{Name: "x"}
	c.Inc(3)
	c.Inc(4)
	if c.Value != 7 {
		t.Fatalf("Value = %d", c.Value)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
}

func BenchmarkEWMAUpdate(b *testing.B) {
	e := NewEWMA(0.2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Update(float64(i))
	}
}
