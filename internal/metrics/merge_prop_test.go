package metrics

// Property tests for Histogram.Merge: merging is commutative and
// associative, and merging any partition of a sample stream is
// indistinguishable from recording the whole stream into one histogram —
// the property the per-shard aggregation and composed-tail code rely on.
// All randomness is splitmix64-seeded and deterministic.

import (
	"math"
	"testing"
	"time"
)

// splitmix64 is the same keyed PRF the workload zoo uses for deterministic
// randomness; re-derived here so metrics stays dependency-free.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mixSamples derives n deterministic durations spanning the bucket regimes.
func mixSamples(seed uint64, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		r := splitmix64(seed + uint64(i))
		switch r % 8 {
		case 0:
			out[i] = time.Duration(r % 64)
		case 1:
			out[i] = time.Duration(r % uint64(24*time.Hour))
		default:
			// Log-uniform over [1µs, ~10s].
			u := float64(splitmix64(r)%1e9) / 1e9
			out[i] = time.Duration(math.Exp(u*math.Log(1e7)) * 1e3)
		}
	}
	return out
}

func recordAll(ds []time.Duration) *Histogram {
	var h Histogram
	for _, d := range ds {
		h.Record(d)
	}
	return &h
}

func TestHistogramMergeCommutative(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		ds := mixSamples(seed, 2000)
		cut := int(splitmix64(seed*77) % uint64(len(ds)))
		a1, b1 := recordAll(ds[:cut]), recordAll(ds[cut:])
		a2, b2 := recordAll(ds[:cut]), recordAll(ds[cut:])
		a1.Merge(b1) // a ⊕ b
		b2.Merge(a2) // b ⊕ a
		if *a1 != *b2 {
			t.Fatalf("seed %d cut %d: merge is not commutative", seed, cut)
		}
	}
}

func TestHistogramMergeAssociative(t *testing.T) {
	for seed := uint64(11); seed <= 20; seed++ {
		ds := mixSamples(seed, 3000)
		c1 := int(splitmix64(seed*31) % uint64(len(ds)/2))
		c2 := c1 + int(splitmix64(seed*37)%uint64(len(ds)-c1))
		// (a ⊕ b) ⊕ c
		left := recordAll(ds[:c1])
		left.Merge(recordAll(ds[c1:c2]))
		left.Merge(recordAll(ds[c2:]))
		// a ⊕ (b ⊕ c)
		rightBC := recordAll(ds[c1:c2])
		rightBC.Merge(recordAll(ds[c2:]))
		right := recordAll(ds[:c1])
		right.Merge(rightBC)
		if *left != *right {
			t.Fatalf("seed %d cuts %d/%d: merge is not associative", seed, c1, c2)
		}
	}
}

func TestHistogramMergePartitionEqualsWhole(t *testing.T) {
	for seed := uint64(21); seed <= 26; seed++ {
		ds := mixSamples(seed, 2500)
		whole := recordAll(ds)
		parts := 1 + int(splitmix64(seed)%7)
		merged := &Histogram{}
		for p := 0; p < parts; p++ {
			var part Histogram
			for i, d := range ds {
				if i%parts == p {
					part.Record(d)
				}
			}
			merged.Merge(&part)
		}
		if *merged != *whole {
			t.Fatalf("seed %d parts %d: partition merge differs from whole", seed, parts)
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
			if merged.Quantile(q) != whole.Quantile(q) {
				t.Fatalf("seed %d: Quantile(%v) differs after partition merge", seed, q)
			}
		}
	}
}

func TestHistogramMergeEmptyIdentity(t *testing.T) {
	ds := mixSamples(99, 500)
	h := recordAll(ds)
	want := *h
	h.Merge(&Histogram{})
	if *h != want {
		t.Fatal("merging an empty histogram changed the receiver")
	}
	var empty Histogram
	empty.Merge(h)
	if empty != want {
		t.Fatal("merging into an empty histogram is not a copy")
	}
}

func TestHistogramQuantileNaNClampsToMin(t *testing.T) {
	var h Histogram
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Fatalf("empty Quantile(NaN) = %v, want 0", got)
	}
	h.Record(5 * time.Millisecond)
	h.Record(9 * time.Millisecond)
	if got := h.Quantile(math.NaN()); got != h.Min() {
		t.Fatalf("Quantile(NaN) = %v, want Min %v", got, h.Min())
	}
}
