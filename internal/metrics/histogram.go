// Package metrics provides the measurement primitives the experiments rely
// on: a log-bucketed latency histogram (HDR-style, like the one inside the
// Lancet load generator the paper uses), exponentially weighted moving
// averages for the toggling policy (§5 "Toggling Granularity"), Welford
// online mean/variance, and event-rate meters.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// histogram layout: values are bucketed with ~1.5% relative error using
// 64 sub-buckets per power of two, covering [1ns, ~292 years]. This mirrors
// the resolution/footprint tradeoff HDR histograms make.
const (
	subBucketBits  = 6
	subBuckets     = 1 << subBucketBits // 64
	histMaxBuckets = (64 - subBucketBits) * subBuckets
)

// Histogram records time.Duration samples with bounded relative error and
// supports exact count/sum plus quantile queries. The zero value is ready to
// use.
type Histogram struct {
	counts [histMaxBuckets]uint64
	count  uint64
	sum    int64 // nanoseconds; may overflow only after ~292 years of samples
	min    int64
	max    int64
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// Largest exp such that v>>exp lands in [subBuckets, 2*subBuckets).
	exp := 63 - subBucketBits
	for exp > 0 && v>>(uint(exp)+subBucketBits) == 0 {
		exp--
	}
	sub := int(v >> uint(exp)) // in [subBuckets, 2*subBuckets)
	return subBuckets + exp*subBuckets + (sub - subBuckets)
}

// bucketLow returns the smallest value mapping to bucket i; used to
// reconstruct quantiles.
func bucketLow(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	exp := (i - subBuckets) / subBuckets
	sub := (i-subBuckets)%subBuckets + subBuckets
	return int64(sub) << uint(exp)
}

// Record adds one sample. Negative durations count as zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the exact sum of all samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum) }

// Mean returns the exact average of recorded samples, 0 if empty.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Min returns the smallest recorded sample, 0 if empty.
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded sample, 0 if empty.
func (h *Histogram) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Quantile returns the approximate q-quantile (q in [0,1]) with the
// histogram's bucket resolution.
//
// Edge behavior is total and consistent: an empty histogram returns 0 for
// every q; q <= 0 returns Min exactly; q >= 1 returns Max exactly; NaN is
// treated like q <= 0 (clamped to Min) rather than poisoning the rank
// computation. Composition and scoring code may therefore call Quantile
// unconditionally.
//
// Accuracy for interior q: the result is the lower bound of the bucket
// holding the ceil(q·n)-th smallest sample, clamped into [Min, Max]. With 64
// sub-buckets per power of two, bucket width is at most 1/64 of the bucket's
// lower bound, so the returned value v satisfies v <= true quantile <
// v·(1 + 1/64) — a bounded relative error of under 1.5625% (values below
// 64 ns are exact, one bucket per nanosecond).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 || math.IsNaN(q) {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			lo := bucketLow(i)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return time.Duration(lo)
		}
	}
	return h.Max()
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() { *h = Histogram{} }

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
}

// Percentiles returns the given percentiles (0-100) in one pass-friendly
// call, sorted by the order given.
func (h *Histogram) Percentiles(ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	for i, p := range ps {
		out[i] = h.Quantile(p / 100)
	}
	return out
}

// sortDurations is a tiny helper used by tests and the exact-quantile
// cross-check in the figures harness.
func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}
