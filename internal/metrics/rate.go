package metrics

import "time"

// RateMeter counts events against a virtual-time axis and reports rates over
// the interval since the last Rate call, matching how the experiments sample
// throughput per measurement window.
type RateMeter struct {
	count     uint64
	lastCount uint64
	lastAt    time.Duration // virtual timestamp of last sample
	started   bool
}

// Add records n events.
func (r *RateMeter) Add(n uint64) { r.count += n }

// Total returns the cumulative event count.
func (r *RateMeter) Total() uint64 { return r.count }

// Rate returns events/second over (lastSample, now] and advances the sample
// point. now is virtual time since the epoch. The first call establishes the
// baseline measured from zero.
func (r *RateMeter) Rate(now time.Duration) float64 {
	defer func() {
		r.lastCount = r.count
		r.lastAt = now
		r.started = true
	}()
	var since time.Duration
	var events uint64
	if r.started {
		since = now - r.lastAt
		events = r.count - r.lastCount
	} else {
		since = now
		events = r.count
	}
	if since <= 0 {
		return 0
	}
	return float64(events) / since.Seconds()
}

// Reset clears all state.
func (r *RateMeter) Reset() { *r = RateMeter{} }

// Counter is a simple monotonically increasing counter with a name, used by
// the ethtool-style trace exporter.
type Counter struct {
	Name  string
	Value uint64
}

// Inc increments the counter by n.
func (c *Counter) Inc(n uint64) { c.Value += n }
