package policy

import (
	"testing"
	"time"
)

func feedUCB(u *UCBToggler, goodMode Mode, n int) int {
	res := 0
	for i := 0; i < n; i++ {
		if u.Mode() == goodMode {
			u.Observe(150*time.Microsecond, 60000, true)
		} else {
			u.Observe(900*time.Microsecond, 30000, true)
		}
		if u.Mode() == goodMode {
			res++
		}
	}
	return res
}

func TestUCBConvergesToBetterMode(t *testing.T) {
	u := NewUCBToggler(ThroughputUnderSLO{SLO: 500 * time.Microsecond}, BatchOff)
	feedUCB(u, BatchOn, 300)
	res := feedUCB(u, BatchOn, 300)
	if res < 240 {
		t.Fatalf("residency in better mode = %d/300", res)
	}
}

func TestUCBProbesLosingModeLogarithmically(t *testing.T) {
	u := NewUCBToggler(ThroughputUnderSLO{SLO: 500 * time.Microsecond}, BatchOff)
	feedUCB(u, BatchOn, 2000)
	st := u.Stats()
	// The losing mode gets revisited, but far less than half the time.
	if u.plays[BatchOff] == 0 {
		t.Fatal("losing mode never probed — UCB must keep exploring")
	}
	if u.plays[BatchOff] > u.plays[BatchOn]/4 {
		t.Fatalf("losing mode played %v vs %v: not decaying", u.plays[BatchOff], u.plays[BatchOn])
	}
	if st.Switches == 0 {
		t.Fatal("no switches at all")
	}
}

func TestUCBTracksRegimeChange(t *testing.T) {
	u := NewUCBToggler(ThroughputUnderSLO{SLO: 500 * time.Microsecond}, BatchOff)
	feedUCB(u, BatchOn, 400)
	res := feedUCB(u, BatchOff, 800)
	if res < 400 {
		t.Fatalf("post-flip residency = %d/800", res)
	}
}

func TestUCBTriesUnplayedModeFirst(t *testing.T) {
	u := NewUCBToggler(PreferLatency{}, BatchOff)
	u.Observe(100*time.Microsecond, 1, true) // plays batch-off once
	if u.Mode() != BatchOn {
		t.Fatalf("mode = %v, want immediate probe of the unplayed mode", u.Mode())
	}
}

func TestUCBInvalidEstimatesDoNotPlay(t *testing.T) {
	u := NewUCBToggler(PreferLatency{}, BatchOff)
	for i := 0; i < 10; i++ {
		u.Observe(0, 0, false)
	}
	if u.plays[BatchOff] != 0 || u.plays[BatchOn] != 0 {
		t.Fatal("invalid estimates were scored")
	}
	if u.Stats().Invalid != 10 {
		t.Fatalf("invalid = %d", u.Stats().Invalid)
	}
}

func TestUCBNilObjectivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil objective accepted")
		}
	}()
	NewUCBToggler(nil, BatchOff)
}

// TestUCBObserveDegraded mirrors the ε-greedy fallback contract: no plays
// spent on unmeasurable arms, retreat to batch-off after the tolerance.
func TestUCBObserveDegraded(t *testing.T) {
	u := NewUCBToggler(PreferThroughput{}, BatchOn)
	for i := 0; i < 3; i++ {
		if m := u.ObserveDegraded(); m != BatchOn {
			t.Fatalf("degraded tick %d switched early to %v", i, m)
		}
	}
	if m := u.ObserveDegraded(); m != BatchOff {
		t.Fatalf("tolerance exceeded but mode = %v", m)
	}
	st := u.Stats()
	if st.Degraded != 4 || st.SafeFallbacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if u.plays[BatchOn] != 0 || u.plays[BatchOff] != 0 {
		t.Fatalf("degraded ticks consumed bandit plays: %v", u.plays)
	}
	// A healthy observation resets the run.
	u2 := NewUCBToggler(PreferThroughput{}, BatchOn)
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			u2.ObserveDegraded()
		}
		u2.Observe(time.Millisecond, 1000, true)
	}
	if st := u2.Stats(); st.SafeFallbacks != 0 {
		t.Fatalf("scattered degraded ticks forced fallback: %+v", st)
	}
}
