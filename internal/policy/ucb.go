package policy

import (
	"math"
	"sync"
	"time"

	"e2ebatch/internal/metrics"
)

// UCBToggler is an upper-confidence-bound alternative to the ε-greedy
// Toggler: the paper frames mode selection as a classic
// exploration-exploitation problem and cites the multi-armed-bandit
// literature (§5 [5, 28]); UCB1 is the textbook answer. Each decision picks
// the mode maximizing
//
//	score(mode) + C · sqrt(ln(totalPlays) / plays(mode))
//
// so the losing mode is re-probed at a logarithmically decaying rate — no
// tuning of an exploration probability needed. Scores are normalized EWMA
// objective values; the same Hold/Skip transient guards as the ε-greedy
// toggler apply.
//
// Like Toggler, all methods are safe for concurrent use: decisions
// serialize on an internal mutex so one controller can serve estimates from
// many connections' goroutines.
type UCBToggler struct {
	mu   sync.Mutex
	obj  Objective
	mode Mode

	// C scales the confidence bonus (√2 is the classical choice).
	c float64

	score [2]*metrics.EWMA
	plays [2]float64
	// lo/hi track the observed score range for normalization, since UCB1
	// assumes rewards in [0, 1].
	lo, hi float64
	seen   bool

	holdTicks, skipAfter int
	holdLeft, skipLeft   int

	safeMode      Mode
	degradedAfter int
	degradedRun   int

	stats TogglerStats
}

// NewUCBToggler returns a UCB1 controller starting in initial mode. The
// degraded-input policy matches DefaultTogglerConfig: retreat to BatchOff
// after more than three consecutive degraded ticks.
func NewUCBToggler(obj Objective, initial Mode) *UCBToggler {
	if obj == nil {
		panic("policy: nil objective")
	}
	return &UCBToggler{
		obj:           obj,
		mode:          initial,
		c:             math.Sqrt2,
		score:         [2]*metrics.EWMA{metrics.NewEWMA(0.3), metrics.NewEWMA(0.3)},
		holdTicks:     5,
		skipAfter:     2,
		safeMode:      BatchOff,
		degradedAfter: 3,
	}
}

// Mode returns the current batching mode.
func (u *UCBToggler) Mode() Mode {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.mode
}

// Stats returns a copy of the decision counters.
func (u *UCBToggler) Stats() TogglerStats {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.stats
}

// Observe feeds the estimate for the current mode and returns the mode for
// the next interval.
func (u *UCBToggler) Observe(latency time.Duration, throughput float64, valid bool) Mode {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.stats.Decisions++
	u.degradedRun = 0
	switch {
	case u.skipLeft > 0:
		u.skipLeft--
	case valid:
		s := u.obj.Score(latency, throughput)
		if !u.seen || s < u.lo {
			u.lo = s
		}
		if !u.seen || s > u.hi {
			u.hi = s
		}
		u.seen = true
		u.score[u.mode].Update(s)
		u.plays[u.mode]++
	default:
		u.stats.Invalid++
	}

	if u.holdLeft > 0 {
		u.holdLeft--
		return u.mode
	}

	// A mode never played has infinite confidence bonus: try it.
	next := u.mode
	switch {
	case u.plays[u.mode.Other()] == 0:
		if u.plays[u.mode] > 0 {
			next = u.mode.Other()
			u.stats.Explorations++
		}
	default:
		total := u.plays[0] + u.plays[1]
		cur := u.ucb(u.mode, total)
		other := u.ucb(u.mode.Other(), total)
		if other > cur {
			next = u.mode.Other()
		}
	}
	if next != u.mode {
		u.stats.Switches++
		u.mode = next
		u.holdLeft = u.holdTicks
		u.skipLeft = u.skipAfter
	}
	return u.mode
}

// ObserveDegraded is the decision tick for degraded-estimate intervals,
// mirroring Toggler.ObserveDegraded: no score updates, no UCB probing (the
// bandit must not spend plays on unmeasurable arms), and a retreat to the
// safe mode once the degraded run exceeds the tolerance.
func (u *UCBToggler) ObserveDegraded() Mode {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.stats.Decisions++
	u.stats.Degraded++
	u.degradedRun++
	if u.degradedRun > u.degradedAfter && u.mode != u.safeMode {
		u.stats.SafeFallbacks++
		u.stats.Switches++
		u.mode = u.safeMode
		u.holdLeft = u.holdTicks
		u.skipLeft = u.skipAfter
	}
	return u.mode
}

// ucb computes the normalized UCB1 index for mode m.
func (u *UCBToggler) ucb(m Mode, total float64) float64 {
	norm := 0.5
	if u.hi > u.lo {
		norm = (u.score[m].Value() - u.lo) / (u.hi - u.lo)
	}
	return norm + u.c*math.Sqrt(math.Log(total)/u.plays[m])
}
