package policy

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// toggleController is the Observe/Mode/Stats surface shared by the two
// bandit controllers, mirroring the one the experiment runner uses.
type toggleController interface {
	Observe(latency time.Duration, throughput float64, valid bool) Mode
	Mode() Mode
	Stats() TogglerStats
}

// stressController hammers a controller from many goroutines — estimates
// from "many connections" feeding one batching decision — and checks no
// decision was lost. The mutex itself is proven by running under -race.
func stressController(t *testing.T, tc toggleController) {
	t.Helper()
	const (
		workers   = 8
		decisions = 3000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < decisions; i++ {
				lat := time.Duration(100+rng.Intn(900)) * time.Microsecond
				m := tc.Observe(lat, float64(1000+rng.Intn(9000)), rng.Intn(10) != 0)
				if m != BatchOff && m != BatchOn {
					panic("controller returned an invalid mode")
				}
				// Interleave the read-only surface with decisions.
				_ = tc.Mode()
				_ = tc.Stats()
			}
		}(w)
	}
	wg.Wait()
	st := tc.Stats()
	if want := uint64(workers * decisions); st.Decisions != want {
		t.Fatalf("decisions = %d, want %d (lost updates)", st.Decisions, want)
	}
	if st.Switches > st.Decisions {
		t.Fatalf("switches %d exceed decisions %d", st.Switches, st.Decisions)
	}
}

// TestTogglerConcurrentObserve: the ε-greedy controller under concurrent
// Observe/Mode/Stats. The rng is owned by the toggler, per its contract.
func TestTogglerConcurrentObserve(t *testing.T) {
	tg := NewToggler(ThroughputUnderSLO{SLO: 500 * time.Microsecond},
		DefaultTogglerConfig(), BatchOff, rand.New(rand.NewSource(7)))
	stressController(t, tg)
}

// TestUCBTogglerConcurrentObserve: same stress on the UCB1 controller.
func TestUCBTogglerConcurrentObserve(t *testing.T) {
	stressController(t, NewUCBToggler(ThroughputUnderSLO{SLO: 500 * time.Microsecond}, BatchOff))
}

// TestAIMDConcurrentObserve: concurrent grow/decay decisions must keep the
// limit inside [Min, Max] at every observable instant.
func TestAIMDConcurrentObserve(t *testing.T) {
	a := NewAIMD(1448, 64<<10, 8<<10, 0.9)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 5000; i++ {
				l := a.Observe(rng.Intn(2) == 0)
				if l < a.Min || l > a.Max {
					panic("limit escaped its bounds")
				}
				if got := a.Limit(); got < a.Min || got > a.Max {
					panic("Limit() escaped its bounds")
				}
				_ = a.AtFloor()
			}
		}(w)
	}
	wg.Wait()
	if got := a.Limit(); got < a.Min || got > a.Max {
		t.Fatalf("final limit %d outside [%d, %d]", got, a.Min, a.Max)
	}
}
