// Package policy turns end-to-end performance estimates into batching
// decisions — the "dynamic toggling" the paper sketches in §5: an ε-greedy
// explore/exploit loop over the two batching modes, EWMA smoothing of noisy
// per-tick estimates, pluggable objectives that trade off throughput and
// latency (e.g. "maximize throughput as long as latency remains below a
// specified threshold", §2), and an AIMD batch-limit controller for the
// "better batching heuristics" direction.
package policy

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"e2ebatch/internal/metrics"
)

// Objective scores an observed (latency, throughput) pair; higher is better.
type Objective interface {
	Score(latency time.Duration, throughput float64) float64
	Name() string
}

// PreferLatency optimizes average latency alone.
type PreferLatency struct{}

// Score returns the negated latency, so lower latency scores higher.
func (PreferLatency) Score(l time.Duration, _ float64) float64 { return -float64(l) }

// Name identifies the objective.
func (PreferLatency) Name() string { return "prefer-latency" }

// PreferThroughput optimizes throughput alone.
type PreferThroughput struct{}

// Score returns the throughput.
func (PreferThroughput) Score(_ time.Duration, tput float64) float64 { return tput }

// Name identifies the objective.
func (PreferThroughput) Name() string { return "prefer-throughput" }

// ThroughputUnderSLO maximizes throughput subject to a latency SLO: any
// observation meeting the SLO beats any observation violating it; within
// each class, more throughput / less violation is better. This is the
// paper's example policy (§2, §5) with the 500 µs SLO of §4.
type ThroughputUnderSLO struct {
	SLO time.Duration
}

// Score implements the lexicographic SLO-then-throughput ordering as a
// single scalar: SLO-meeting scores are positive and grow with throughput,
// violating scores are negative and shrink with the violation.
func (o ThroughputUnderSLO) Score(l time.Duration, tput float64) float64 {
	if o.SLO <= 0 {
		return tput
	}
	if l <= o.SLO {
		return 1 + tput
	}
	return -float64(l-o.SLO) / float64(o.SLO)
}

// Name identifies the objective.
func (o ThroughputUnderSLO) Name() string { return fmt.Sprintf("tput-under-%v", o.SLO) }

// QuantileUnderSLO maximizes throughput subject to a *tail* latency SLO:
// "p99 ≤ D_max" rather than "mean ≤ D_max". The scoring shape is identical
// to ThroughputUnderSLO's lexicographic ordering — the difference is purely
// which latency the caller feeds it: the engine, configured with a
// TailQuantile, passes the composed tail estimate's quantile instead of the
// mean, and routes ticks whose tail estimate abstained down the degraded
// path (ObserveDegraded), so a policy driven by this objective retreats to
// SafeMode whenever the tail it is supposed to bound becomes unobservable.
type QuantileUnderSLO struct {
	// Quantile is the targeted quantile, e.g. 0.99. It is carried here for
	// naming and for engine wiring validation; Score itself is agnostic —
	// the caller measures the quantile.
	Quantile float64
	// SLO is D_max: the bound the quantile must stay under.
	SLO time.Duration
}

// Score implements the same lexicographic SLO-then-throughput scalar as
// ThroughputUnderSLO, applied to a tail quantile observation.
func (o QuantileUnderSLO) Score(l time.Duration, tput float64) float64 {
	return ThroughputUnderSLO{SLO: o.SLO}.Score(l, tput)
}

// Name identifies the objective, e.g. "p99-under-500µs".
func (o QuantileUnderSLO) Name() string {
	return fmt.Sprintf("p%s-under-%v", quantileLabel(o.Quantile), o.SLO)
}

// quantileLabel renders 0.99 → "99", 0.999 → "999", 0.5 → "50".
func quantileLabel(q float64) string {
	switch {
	case q >= 0.999:
		return "999"
	case q >= 0.99:
		return "99"
	case q >= 0.9:
		return "90"
	default:
		return "50"
	}
}

// Mode is a batching mode.
type Mode int

const (
	// BatchOff means batching disabled (TCP_NODELAY set).
	BatchOff Mode = iota
	// BatchOn means batching enabled (Nagle active).
	BatchOn
)

// Other returns the opposite mode.
func (m Mode) Other() Mode { return 1 - m }

// String names the mode.
func (m Mode) String() string {
	if m == BatchOn {
		return "batch-on"
	}
	return "batch-off"
}

// TogglerConfig parameterizes the ε-greedy toggler.
type TogglerConfig struct {
	// Epsilon is the per-decision exploration probability.
	Epsilon float64
	// EpsilonDecay shrinks the effective exploration rate over time:
	// ε_t = Epsilon / (1 + EpsilonDecay·decisions). Exploring the losing
	// mode has a real cost (§5: "an overly heavy approach might nullify
	// the benefit of batching"), so once the scores are settled the
	// toggler probes less often. Zero keeps ε constant.
	EpsilonDecay float64
	// Alpha is the EWMA smoothing factor applied to per-mode scores
	// (§5 Toggling Granularity).
	Alpha float64
	// MinSamples is how many smoothed observations a mode needs before
	// its score is trusted for exploitation.
	MinSamples int
	// Hysteresis is the relative score margin the other mode must win by
	// before a non-exploratory switch, suppressing flapping on noise.
	Hysteresis float64
	// HoldTicks keeps the mode fixed for this many decisions after any
	// switch, so an explored mode is observed long enough to matter.
	HoldTicks int
	// SkipAfterSwitch discards this many post-switch observations: right
	// after a switch the estimate still reflects the previous mode's
	// backlog and would poison the new mode's score.
	SkipAfterSwitch int
	// SafeMode is the mode the toggler retreats to while the estimator is
	// degraded (see ObserveDegraded). The zero value, BatchOff, is the
	// conservative choice: without trustworthy latency estimates the
	// toggler cannot tell whether batching's hold delay is violating the
	// SLO, so it stops holding messages.
	SafeMode Mode
	// DegradedAfter is how many consecutive degraded observations the
	// toggler tolerates before retreating to SafeMode. A short run of
	// degraded ticks is normal (one dropped metadata exchange); a long run
	// means the peer's view is gone. Zero retreats on the first one.
	DegradedAfter int
}

// DefaultTogglerConfig returns the parameters used by the experiments.
func DefaultTogglerConfig() TogglerConfig {
	return TogglerConfig{
		Epsilon: 0.05, EpsilonDecay: 0.01, Alpha: 0.3, MinSamples: 3, Hysteresis: 0.05,
		HoldTicks: 5, SkipAfterSwitch: 2,
		SafeMode: BatchOff, DegradedAfter: 3,
	}
}

// Toggler is the ε-greedy on/off batching controller. Feed it one estimate
// per decision tick via Observe; it returns the mode to run next tick.
//
// All methods are safe for concurrent use — decisions serialize on an
// internal mutex, so one controller can serve estimates arriving from many
// connections' goroutines. The rng passed to NewToggler is only ever used
// while that mutex is held; if it is shared with other code (e.g. the
// simulator's source), those other uses must run on the same goroutine as
// the Observe calls or be synchronized externally.
type Toggler struct {
	mu   sync.Mutex
	cfg  TogglerConfig
	obj  Objective
	rng  *rand.Rand
	mode Mode

	score   [2]*metrics.EWMA
	samples [2]int

	holdLeft    int
	skipLeft    int
	degradedRun int

	stats TogglerStats
}

// TogglerStats counts toggler activity.
type TogglerStats struct {
	Decisions    uint64
	Switches     uint64
	Explorations uint64
	Invalid      uint64
	// Degraded counts ObserveDegraded calls; SafeFallbacks counts the
	// times a degraded run actually forced a retreat to SafeMode.
	Degraded      uint64
	SafeFallbacks uint64
}

// NewToggler returns a toggler starting in initial mode. rng must be
// non-nil (pass the simulation's deterministic source).
func NewToggler(obj Objective, cfg TogglerConfig, initial Mode, rng *rand.Rand) *Toggler {
	if obj == nil {
		panic("policy: nil objective")
	}
	if rng == nil {
		panic("policy: nil rng")
	}
	if cfg.Epsilon < 0 || cfg.Epsilon > 1 {
		panic("policy: epsilon must be in [0,1]")
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		panic("policy: alpha must be in (0,1]")
	}
	return &Toggler{
		cfg:  cfg,
		obj:  obj,
		rng:  rng,
		mode: initial,
		score: [2]*metrics.EWMA{
			metrics.NewEWMA(cfg.Alpha),
			metrics.NewEWMA(cfg.Alpha),
		},
	}
}

// Mode returns the currently selected batching mode.
func (t *Toggler) Mode() Mode {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.mode
}

// Stats returns a copy of the toggler's counters.
func (t *Toggler) Stats() TogglerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Score returns the smoothed score for mode m and whether it has enough
// samples to be trusted.
func (t *Toggler) Score(m Mode) (float64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.score[m].Value(), t.samples[m] >= t.cfg.MinSamples
}

// Observe feeds the estimate measured while running the current mode and
// decides the mode for the next interval. Invalid estimates (idle interval)
// leave the scores untouched but still allow exploration. Observations in
// the SkipAfterSwitch window after a switch are discarded, and the mode is
// pinned for HoldTicks decisions following a switch.
func (t *Toggler) Observe(latency time.Duration, throughput float64, valid bool) Mode {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Decisions++
	t.degradedRun = 0
	switch {
	case t.skipLeft > 0:
		t.skipLeft--
	case valid:
		t.score[t.mode].Update(t.obj.Score(latency, throughput))
		t.samples[t.mode]++
	default:
		t.stats.Invalid++
	}

	if t.holdLeft > 0 {
		t.holdLeft--
		return t.mode
	}

	eps := t.cfg.Epsilon
	if t.cfg.EpsilonDecay > 0 {
		eps /= 1 + t.cfg.EpsilonDecay*float64(t.stats.Decisions)
	}
	next := t.mode
	switch {
	case t.rng.Float64() < eps:
		next = t.mode.Other()
		t.stats.Explorations++
	case t.samples[t.mode.Other()] >= t.cfg.MinSamples && t.samples[t.mode] >= t.cfg.MinSamples:
		cur, other := t.score[t.mode].Value(), t.score[t.mode.Other()].Value()
		if other > cur+t.cfg.Hysteresis*math.Abs(cur) {
			next = t.mode.Other()
		}
	}
	if next != t.mode {
		t.stats.Switches++
		t.mode = next
		t.holdLeft = t.cfg.HoldTicks
		t.skipLeft = t.cfg.SkipAfterSwitch
	}
	return t.mode
}

// ObserveDegraded is the decision tick for intervals where the estimate was
// degraded (peer metadata missing or stale, Estimate.Degraded). A degraded
// estimate reflects only the local half of the paper's §3.2 formula, so it
// must not train the per-mode scores, and exploring on top of it would mean
// switching modes while blind. Instead the toggler freezes: scores and
// exploration are untouched, and after DegradedAfter consecutive degraded
// ticks it retreats to SafeMode and holds there until trustworthy estimates
// return via Observe (which resets the run).
func (t *Toggler) ObserveDegraded() Mode {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Decisions++
	t.stats.Degraded++
	t.degradedRun++
	if t.degradedRun > t.cfg.DegradedAfter && t.mode != t.cfg.SafeMode {
		t.stats.SafeFallbacks++
		t.stats.Switches++
		t.mode = t.cfg.SafeMode
		t.holdLeft = t.cfg.HoldTicks
		t.skipLeft = t.cfg.SkipAfterSwitch
	}
	return t.mode
}

// AIMD is the additive-increase/multiplicative-decrease batch-limit
// controller the paper proposes as a more principled replacement for on/off
// toggling (§5 "Better Batching Heuristics"). The controlled value is an
// abstract batch limit (e.g. a cork-size limit in bytes).
//
// Observe, Limit and AtFloor are safe for concurrent use; the exported
// parameter fields must not be mutated after NewAIMD.
type AIMD struct {
	// Min and Max bound the limit; Step is the additive increase;
	// Backoff in (0,1) is the multiplicative decrease factor.
	Min, Max, Step int
	Backoff        float64

	mu    sync.Mutex
	limit int
}

// NewAIMD returns a controller starting at min. It panics on nonsensical
// parameters.
func NewAIMD(min, max, step int, backoff float64) *AIMD {
	if min <= 0 || max < min || step <= 0 || backoff <= 0 || backoff >= 1 {
		panic(fmt.Sprintf("policy: invalid AIMD params min=%d max=%d step=%d backoff=%v", min, max, step, backoff))
	}
	return &AIMD{Min: min, Max: max, Step: step, Backoff: backoff, limit: min}
}

// Limit returns the current batch limit.
func (a *AIMD) Limit() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit
}

// AtFloor reports whether the limit sits at Min — callers typically disable
// batching entirely there.
func (a *AIMD) AtFloor() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit <= a.Min
}

// Observe adapts the limit: grow increases it additively, otherwise it
// decays multiplicatively. Which condition maps to "grow" is the caller's
// policy — the experiments grow the batch limit while the latency SLO is
// violated (more batching recovers capacity) and decay it while healthy
// (less batching trims hold delays). It returns the new limit.
func (a *AIMD) Observe(grow bool) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if grow {
		a.limit += a.Step
		if a.limit > a.Max {
			a.limit = a.Max
		}
	} else {
		a.limit = int(float64(a.limit) * a.Backoff)
		if a.limit < a.Min {
			a.limit = a.Min
		}
	}
	return a.limit
}
