package policy

import (
	"math/rand"
	"testing"
	"time"
)

func TestPreferLatencyOrdering(t *testing.T) {
	o := PreferLatency{}
	if o.Score(100*time.Microsecond, 1) <= o.Score(200*time.Microsecond, 1e9) {
		t.Fatal("lower latency must beat higher regardless of throughput")
	}
	if o.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestPreferThroughputOrdering(t *testing.T) {
	o := PreferThroughput{}
	if o.Score(time.Second, 100) <= o.Score(time.Nanosecond, 50) {
		t.Fatal("higher throughput must win regardless of latency")
	}
}

func TestSLOObjectiveLexicographic(t *testing.T) {
	o := ThroughputUnderSLO{SLO: 500 * time.Microsecond}
	meets := o.Score(400*time.Microsecond, 10)
	meetsMore := o.Score(499*time.Microsecond, 20)
	violates := o.Score(600*time.Microsecond, 1e9)
	if meets <= violates || meetsMore <= violates {
		t.Fatal("SLO-meeting must beat SLO-violating")
	}
	if meetsMore <= meets {
		t.Fatal("within SLO, throughput must decide")
	}
	worse := o.Score(2*time.Millisecond, 1e9)
	if violates <= worse {
		t.Fatal("smaller violation must beat larger violation")
	}
}

func TestSLOObjectiveZeroSLO(t *testing.T) {
	o := ThroughputUnderSLO{}
	if o.Score(time.Second, 5) != 5 {
		t.Fatal("zero SLO should degrade to throughput")
	}
}

func TestModeOther(t *testing.T) {
	if BatchOn.Other() != BatchOff || BatchOff.Other() != BatchOn {
		t.Fatal("Other() broken")
	}
	if BatchOn.String() == BatchOff.String() {
		t.Fatal("mode strings identical")
	}
}

func newTestToggler(eps float64, initial Mode) *Toggler {
	cfg := DefaultTogglerConfig()
	cfg.Epsilon = eps
	return NewToggler(ThroughputUnderSLO{SLO: 500 * time.Microsecond}, cfg, initial, rand.New(rand.NewSource(7)))
}

func TestTogglerConvergesToBetterMode(t *testing.T) {
	// batch-on: 200µs @ 50k; batch-off: 800µs @ 40k (violates SLO).
	tg := newTestToggler(0.1, BatchOff)
	for i := 0; i < 500; i++ {
		if tg.Mode() == BatchOn {
			tg.Observe(200*time.Microsecond, 50000, true)
		} else {
			tg.Observe(800*time.Microsecond, 40000, true)
		}
	}
	// Count residency over a further window.
	onTicks := 0
	for i := 0; i < 200; i++ {
		var m Mode
		if tg.Mode() == BatchOn {
			m = tg.Observe(200*time.Microsecond, 50000, true)
		} else {
			m = tg.Observe(800*time.Microsecond, 40000, true)
		}
		if m == BatchOn {
			onTicks++
		}
	}
	if onTicks < 160 {
		t.Fatalf("batch-on residency %d/200, want >= 160", onTicks)
	}
}

func TestTogglerTracksRegimeChange(t *testing.T) {
	tg := newTestToggler(0.1, BatchOn)
	feed := func(goodMode Mode, n int) int {
		res := 0
		for i := 0; i < n; i++ {
			if tg.Mode() == goodMode {
				tg.Observe(100*time.Microsecond, 60000, true)
			} else {
				tg.Observe(900*time.Microsecond, 30000, true)
			}
			if tg.Mode() == goodMode {
				res++
			}
		}
		return res
	}
	feed(BatchOn, 300)
	// Regime flips: batching now hurts.
	res := feed(BatchOff, 300)
	if res < 180 {
		t.Fatalf("post-flip residency in new best mode = %d/300", res)
	}
}

func TestTogglerZeroEpsilonNeverExplores(t *testing.T) {
	tg := newTestToggler(0, BatchOff)
	for i := 0; i < 1000; i++ {
		tg.Observe(100*time.Microsecond, 1000, true)
	}
	st := tg.Stats()
	if st.Explorations != 0 {
		t.Fatalf("explorations = %d with ε=0", st.Explorations)
	}
	// The other mode never gets samples, so no switches either.
	if st.Switches != 0 {
		t.Fatalf("switches = %d", st.Switches)
	}
}

func TestTogglerExplorationRate(t *testing.T) {
	cfg := DefaultTogglerConfig()
	cfg.Epsilon = 0.2
	cfg.EpsilonDecay = 0 // constant ε for this test
	cfg.HoldTicks = 0    // measure the raw ε rate without post-switch pinning
	cfg.SkipAfterSwitch = 0
	tg := NewToggler(PreferLatency{}, cfg, BatchOff, rand.New(rand.NewSource(7)))
	const n = 5000
	for i := 0; i < n; i++ {
		tg.Observe(100*time.Microsecond, 1000, true)
	}
	got := float64(tg.Stats().Explorations) / n
	if got < 0.15 || got > 0.25 {
		t.Fatalf("exploration rate = %v, want ~0.2", got)
	}
}

func TestTogglerHoldPinsModeAfterSwitch(t *testing.T) {
	cfg := DefaultTogglerConfig()
	cfg.Epsilon = 1 // always explore when allowed
	cfg.EpsilonDecay = 0
	cfg.HoldTicks = 5
	tg := NewToggler(PreferLatency{}, cfg, BatchOff, rand.New(rand.NewSource(1)))
	m0 := tg.Observe(time.Microsecond, 1, true) // switches, then holds
	if m0 != BatchOn {
		t.Fatalf("first decision = %v, want exploratory switch", m0)
	}
	for i := 0; i < 5; i++ {
		if m := tg.Observe(time.Microsecond, 1, true); m != BatchOn {
			t.Fatalf("hold tick %d: mode = %v, want pinned batch-on", i, m)
		}
	}
	if m := tg.Observe(time.Microsecond, 1, true); m != BatchOff {
		t.Fatalf("post-hold decision = %v, want exploratory switch back", m)
	}
}

func TestTogglerSkipDiscardsPostSwitchSamples(t *testing.T) {
	cfg := DefaultTogglerConfig()
	cfg.Epsilon = 1
	cfg.EpsilonDecay = 0
	cfg.HoldTicks = 0
	cfg.SkipAfterSwitch = 2
	tg := NewToggler(PreferLatency{}, cfg, BatchOff, rand.New(rand.NewSource(1)))
	tg.Observe(time.Microsecond, 1, true) // scores batch-off, switches
	// The next two observations (in batch-on) must be discarded... but
	// each decision also switches (ε=1), rearming the skip window; so
	// no mode ever accumulates further samples.
	for i := 0; i < 10; i++ {
		tg.Observe(time.Microsecond, 1, true)
	}
	if tg.samples[BatchOn] != 0 {
		t.Fatalf("batch-on samples = %d, want 0 (all in skip windows)", tg.samples[BatchOn])
	}
}

func TestTogglerInvalidEstimatesDoNotScore(t *testing.T) {
	tg := newTestToggler(0, BatchOff)
	for i := 0; i < 10; i++ {
		tg.Observe(0, 0, false)
	}
	st := tg.Stats()
	if st.Invalid != 10 {
		t.Fatalf("invalid = %d", st.Invalid)
	}
	if _, trusted := tg.Score(BatchOff); trusted {
		t.Fatal("mode trusted with zero valid samples")
	}
}

func TestTogglerHysteresisSuppressesFlapping(t *testing.T) {
	cfg := DefaultTogglerConfig()
	cfg.Epsilon = 0.3 // explore a lot to gather both modes' samples
	cfg.Hysteresis = 0.5
	tg := NewToggler(PreferLatency{}, cfg, BatchOff, rand.New(rand.NewSource(3)))
	// Two nearly identical modes (1% apart) — exploitation switches
	// should be rare relative to decisions; exploration accounts for
	// nearly all switching.
	for i := 0; i < 2000; i++ {
		if tg.Mode() == BatchOn {
			tg.Observe(100*time.Microsecond, 1000, true)
		} else {
			tg.Observe(101*time.Microsecond, 1000, true)
		}
	}
	st := tg.Stats()
	// Every switch beyond exploration is an exploitation flap. With 50%
	// hysteresis on a 1% gap there should be almost none: each
	// exploration causes at most 2 switches (out and back).
	if st.Switches > 2*st.Explorations+5 {
		t.Fatalf("switches = %d vs explorations = %d: hysteresis failed", st.Switches, st.Explorations)
	}
}

func TestTogglerPanicsOnBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []func(){
		func() { NewToggler(nil, DefaultTogglerConfig(), BatchOff, rng) },
		func() { NewToggler(PreferLatency{}, DefaultTogglerConfig(), BatchOff, nil) },
		func() {
			cfg := DefaultTogglerConfig()
			cfg.Epsilon = 1.5
			NewToggler(PreferLatency{}, cfg, BatchOff, rng)
		},
		func() {
			cfg := DefaultTogglerConfig()
			cfg.Alpha = 0
			NewToggler(PreferLatency{}, cfg, BatchOff, rng)
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAIMDIncreasesAdditively(t *testing.T) {
	a := NewAIMD(1000, 64000, 1000, 0.5)
	if a.Limit() != 1000 {
		t.Fatalf("initial = %d", a.Limit())
	}
	a.Observe(true)
	a.Observe(true)
	if a.Limit() != 3000 {
		t.Fatalf("limit = %d, want 3000", a.Limit())
	}
}

func TestAIMDBacksOffMultiplicatively(t *testing.T) {
	a := NewAIMD(1000, 64000, 1000, 0.5)
	for i := 0; i < 15; i++ {
		a.Observe(true)
	}
	if a.Limit() != 16000 {
		t.Fatalf("limit = %d, want 16000", a.Limit())
	}
	a.Observe(false)
	if a.Limit() != 8000 {
		t.Fatalf("limit = %d after backoff, want 8000", a.Limit())
	}
}

func TestAIMDRespectsBounds(t *testing.T) {
	a := NewAIMD(1000, 4000, 1000, 0.5)
	for i := 0; i < 10; i++ {
		a.Observe(true)
	}
	if a.Limit() != 4000 {
		t.Fatalf("limit = %d, want capped 4000", a.Limit())
	}
	for i := 0; i < 10; i++ {
		a.Observe(false)
	}
	if a.Limit() != 1000 {
		t.Fatalf("limit = %d, want floored 1000", a.Limit())
	}
}

func TestAIMDPanicsOnBadParams(t *testing.T) {
	for i, f := range []func(){
		func() { NewAIMD(0, 10, 1, 0.5) },
		func() { NewAIMD(10, 5, 1, 0.5) },
		func() { NewAIMD(1, 10, 0, 0.5) },
		func() { NewAIMD(1, 10, 1, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// TestTogglerDegradedFallback: degraded ticks freeze learning, and after
// more than DegradedAfter consecutive ones the toggler retreats to SafeMode
// and stays there until trustworthy estimates resume.
func TestTogglerDegradedFallback(t *testing.T) {
	cfg := TogglerConfig{
		Epsilon: 0, Alpha: 0.3, MinSamples: 3,
		SafeMode: BatchOff, DegradedAfter: 3,
	}
	tog := NewToggler(PreferThroughput{}, cfg, BatchOn, rand.New(rand.NewSource(3)))
	_, trustedBefore := tog.Score(BatchOn)
	for i := 0; i < 3; i++ {
		if m := tog.ObserveDegraded(); m != BatchOn {
			t.Fatalf("degraded tick %d switched early to %v", i, m)
		}
	}
	if m := tog.ObserveDegraded(); m != BatchOff {
		t.Fatalf("tolerance exceeded but mode = %v, want safe BatchOff", m)
	}
	st := tog.Stats()
	if st.Degraded != 4 || st.SafeFallbacks != 1 {
		t.Fatalf("stats = %+v, want Degraded 4, SafeFallbacks 1", st)
	}
	if _, trusted := tog.Score(BatchOn); trusted != trustedBefore {
		t.Fatal("degraded ticks trained the mode scores")
	}
	// Further degraded ticks hold the safe mode without new fallbacks.
	for i := 0; i < 5; i++ {
		if m := tog.ObserveDegraded(); m != BatchOff {
			t.Fatalf("safe mode not held: %v", m)
		}
	}
	if st := tog.Stats(); st.SafeFallbacks != 1 {
		t.Fatalf("SafeFallbacks = %d after holding, want 1", st.SafeFallbacks)
	}
}

// TestTogglerDegradedRunResets: a healthy Observe between degraded ticks
// restarts the tolerance window, so scattered single drops never force the
// safe fallback.
func TestTogglerDegradedRunResets(t *testing.T) {
	cfg := TogglerConfig{
		Epsilon: 0, Alpha: 0.3, MinSamples: 100, // MinSamples high: no score-driven switch
		SafeMode: BatchOff, DegradedAfter: 3,
	}
	tog := NewToggler(PreferThroughput{}, cfg, BatchOn, rand.New(rand.NewSource(4)))
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			tog.ObserveDegraded()
		}
		tog.Observe(time.Millisecond, 1000, true)
	}
	if m := tog.Mode(); m != BatchOn {
		t.Fatalf("scattered degraded ticks forced fallback to %v", m)
	}
	if st := tog.Stats(); st.SafeFallbacks != 0 {
		t.Fatalf("SafeFallbacks = %d, want 0", st.SafeFallbacks)
	}
}

// TestTogglerDegradedAfterZero: zero tolerance retreats on the first
// degraded tick.
func TestTogglerDegradedAfterZero(t *testing.T) {
	cfg := TogglerConfig{Epsilon: 0, Alpha: 0.3, SafeMode: BatchOff}
	tog := NewToggler(PreferThroughput{}, cfg, BatchOn, rand.New(rand.NewSource(5)))
	if m := tog.ObserveDegraded(); m != BatchOff {
		t.Fatalf("mode = %v, want immediate safe fallback", m)
	}
}
