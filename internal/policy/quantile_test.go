package policy

import (
	"math/rand"
	"testing"
	"time"
)

// TestQuantileUnderSLOScore: identical lexicographic ordering to
// ThroughputUnderSLO — meeting the tail SLO always beats violating it,
// throughput breaks ties among the compliant, violation depth orders the
// rest — applied to whatever quantile the caller measured.
func TestQuantileUnderSLOScore(t *testing.T) {
	o := QuantileUnderSLO{Quantile: 0.99, SLO: 500 * time.Microsecond}
	meetsLow := o.Score(100*time.Microsecond, 1000)
	meetsHigh := o.Score(499*time.Microsecond, 2000)
	violates := o.Score(600*time.Microsecond, 1e9)
	violatesWorse := o.Score(2*time.Millisecond, 1e9)
	if !(meetsHigh > meetsLow) {
		t.Fatalf("more throughput under SLO must score higher: %v vs %v", meetsHigh, meetsLow)
	}
	if !(meetsLow > violates) {
		t.Fatalf("any SLO-meeting observation must beat any violation: %v vs %v", meetsLow, violates)
	}
	if !(violates > violatesWorse) {
		t.Fatalf("deeper violation must score lower: %v vs %v", violates, violatesWorse)
	}
	// Exact parity with the mean-SLO objective's scalar.
	ref := ThroughputUnderSLO{SLO: o.SLO}
	for _, l := range []time.Duration{0, 250 * time.Microsecond, 500 * time.Microsecond, time.Millisecond} {
		if o.Score(l, 42) != ref.Score(l, 42) {
			t.Fatalf("score diverges from ThroughputUnderSLO at %v", l)
		}
	}
	// SLO <= 0 degrades to pure throughput, like the mean objective.
	if free := (QuantileUnderSLO{Quantile: 0.99}); free.Score(time.Hour, 7) != 7 {
		t.Fatal("zero SLO must score pure throughput")
	}
}

func TestQuantileUnderSLOName(t *testing.T) {
	cases := []struct {
		q    float64
		want string
	}{
		{0.5, "p50-under-500µs"},
		{0.9, "p90-under-500µs"},
		{0.99, "p99-under-500µs"},
		{0.999, "p999-under-500µs"},
	}
	for _, c := range cases {
		o := QuantileUnderSLO{Quantile: c.q, SLO: 500 * time.Microsecond}
		if got := o.Name(); got != c.want {
			t.Fatalf("Name(%v) = %q, want %q", c.q, got, c.want)
		}
	}
}

// TestQuantileUnderSLOTogglerRetreat: a toggler driven by the tail objective
// retreats to SafeMode after DegradedAfter consecutive abstaining ticks —
// the unit-level half of the "abstaining tail behaves exactly like
// ObserveDegraded" contract (the engine routing half is covered by the
// chaos test in figures).
func TestQuantileUnderSLOTogglerRetreat(t *testing.T) {
	cfg := DefaultTogglerConfig()
	cfg.Epsilon = 0 // deterministic: no exploration
	tg := NewToggler(QuantileUnderSLO{Quantile: 0.99, SLO: 500 * time.Microsecond},
		cfg, BatchOn, rand.New(rand.NewSource(1)))
	// Healthy tail observations keep the mode.
	for i := 0; i < 5; i++ {
		if m := tg.Observe(300*time.Microsecond, 1000, true); m != BatchOn {
			t.Fatalf("healthy tick %d switched to %v", i, m)
		}
	}
	// Abstaining tail ticks route to ObserveDegraded; past DegradedAfter the
	// toggler must be in SafeMode.
	var m Mode
	for i := 0; i <= cfg.DegradedAfter+1; i++ {
		m = tg.ObserveDegraded()
	}
	if m != cfg.SafeMode {
		t.Fatalf("after %d abstaining ticks mode = %v, want SafeMode %v", cfg.DegradedAfter+1, m, cfg.SafeMode)
	}
	st := tg.Stats()
	if st.SafeFallbacks != 1 {
		t.Fatalf("SafeFallbacks = %d, want 1", st.SafeFallbacks)
	}
	// Trustworthy tails returning resets the degraded run.
	tg.Observe(300*time.Microsecond, 1000, true)
	if tg.Stats().SafeFallbacks != 1 {
		t.Fatal("recovery must not add fallbacks")
	}
}
