package tcpsim

import (
	"e2ebatch/internal/core"
	"e2ebatch/internal/engine"
	"e2ebatch/internal/qstate"
)

// EnginePort adapts one simulated connection pair to the shared control
// engine: samples come from the local end's kernel queue snapshots plus the
// peer's last metadata exchange, and decisions are applied to both ends —
// what a kernel running the paper's policy on each side would do.
type EnginePort struct {
	local *Conn
	peer  *Conn
	unit  Unit
}

// NewEnginePort returns a port sampling local in unit and applying
// decisions to both local and peer.
func NewEnginePort(local, peer *Conn, unit Unit) *EnginePort {
	return &EnginePort{local: local, peer: peer, unit: unit}
}

// Snapshot captures the local queue state and the freshest peer exchange.
func (p *EnginePort) Snapshot(now qstate.Time) core.Sample {
	ua, ur, ad := p.local.Snapshots(p.unit)
	s := core.Sample{
		Local: core.Queues{Unacked: ua, Unread: ur, AckDelay: ad},
		At:    now,
	}
	if ws, at, ok := p.local.PeerWireState(); ok {
		s.Remote, s.RemoteOK = ws, true
		s.RemoteAt = qstate.Time(at)
	}
	// Delay tracking is always on locally; the remote histograms exist only
	// once the peer has sent a v2 (tails-carrying) exchange. Against a v1
	// peer RemoteTailsOK stays false and the estimator's tail abstains while
	// the mean proceeds.
	s.LocalTails = p.local.LocalTails(p.unit)
	s.LocalTailsOK = true
	if ts, ok := p.local.PeerTails(); ok {
		s.RemoteTails, s.RemoteTailsOK = ts, true
	}
	return s
}

// Apply sets NODELAY on both ends and, when requested, the cork threshold.
func (p *EnginePort) Apply(d engine.Decision) error {
	p.local.SetNoDelay(!d.Batch)
	p.peer.SetNoDelay(!d.Batch)
	if d.CorkBytes > 0 {
		p.local.SetCorkBytes(d.CorkBytes)
		p.peer.SetCorkBytes(d.CorkBytes)
	}
	return nil
}

// SelfContained reports false: these samples are the kernel-queue kind that
// need the peer's metadata for the full §3.2 picture.
func (p *EnginePort) SelfContained() bool { return false }
