package tcpsim

import (
	"testing"
	"time"

	"e2ebatch/internal/sim"
)

func TestCorkBytesDefaultsToMSS(t *testing.T) {
	_, ca, _ := testNet(t, fastCfg())
	if ca.CorkBytes() != fastCfg().MSS {
		t.Fatalf("default cork = %d, want MSS", ca.CorkBytes())
	}
}

func TestCorkBytesAboveMSSHoldsFullSegments(t *testing.T) {
	cfg := fastCfg()
	cfg.CorkBytes = 8 * cfg.MSS
	cfg.CorkTimeout = time.Second
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(100)) // nothing in flight: goes out
	s.RunFor(200 * time.Nanosecond)
	// 3 MSS of data: below the 8·MSS threshold, held even though it
	// contains full segments.
	ca.Send(payload(3 * cfg.MSS))
	s.RunFor(500 * time.Nanosecond)
	if ca.InFlight() != 100 {
		t.Fatalf("in flight = %d, want only the first 100 bytes", ca.InFlight())
	}
	// The ack releases it.
	s.RunUntil(sim.Time(5 * time.Millisecond))
	if cb.Readable() != 100+3*cfg.MSS {
		t.Fatalf("readable = %d", cb.Readable())
	}
}

func TestSetCorkBytesLoweringReleases(t *testing.T) {
	cfg := fastCfg()
	cfg.CorkBytes = 32 * cfg.MSS
	cfg.CorkTimeout = time.Hour
	cfg.DelAckTimeout = time.Hour
	cfg.DelAckSegs = 1000
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(100))
	s.RunFor(time.Microsecond)
	ca.Send(payload(4 * cfg.MSS)) // held: below 32·MSS, acks disabled
	s.RunFor(10 * time.Microsecond)
	if cb.Readable() != 100 {
		t.Fatalf("readable = %d, want 100 (rest held)", cb.Readable())
	}
	ca.SetCorkBytes(cfg.MSS) // classic Nagle: 4 full MSS qualify now
	s.RunFor(10 * time.Microsecond)
	if cb.Readable() != 100+4*cfg.MSS {
		t.Fatalf("readable = %d after lowering cork", cb.Readable())
	}
}

func TestSetCorkBytesClampsToMSS(t *testing.T) {
	_, ca, _ := testNet(t, fastCfg())
	ca.SetCorkBytes(1)
	if ca.CorkBytes() != fastCfg().MSS {
		t.Fatalf("cork = %d, want clamped to MSS", ca.CorkBytes())
	}
}

func TestNoDelayOverridesCorkBytes(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	cfg.CorkBytes = 64 << 10
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(100))
	ca.Send(payload(100))
	s.RunUntil(sim.Time(100 * time.Microsecond))
	if cb.Readable() != 200 {
		t.Fatalf("readable = %d: NODELAY must bypass corking", cb.Readable())
	}
}
