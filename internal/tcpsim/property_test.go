package tcpsim

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"e2ebatch/internal/netem"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
)

// TestPropertyStreamIntegrity drives random send sizes, random mode
// toggles, random cork thresholds and random read patterns through the
// connection and asserts the byte stream arrives intact and in order, and
// the queue accounting ends balanced — the core contracts everything else
// rests on.
func TestPropertyStreamIntegrity(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		s := sim.New(int64(trial) * 17)
		a := NewStack(s, "a")
		b := NewStack(s, "b")
		link := netem.NewLink(s, "lnk", netem.Config{
			BitsPerSec:  10_000_000_000,
			Propagation: time.Duration(1+rng.Intn(20)) * time.Microsecond,
			Jitter:      time.Duration(rng.Intn(5)) * time.Microsecond,
		})
		cfg := DefaultConfig()
		cfg.Nagle = rng.Intn(2) == 0
		cfg.DelAckTimeout = time.Duration(50+rng.Intn(500)) * time.Microsecond
		cfg.RecvBuf = int64(64<<10 + rng.Intn(1<<20))
		ca, cb := Connect(a, b, link, cfg)

		var sent, received bytes.Buffer
		cb.OnReadable(func() {
			// Random partial reads.
			for cb.Readable() > 0 && rng.Intn(4) != 0 {
				received.Write(cb.Read(1 + rng.Intn(8000)))
			}
		})

		next := byte(0)
		for op := 0; op < 200; op++ {
			switch rng.Intn(6) {
			case 0, 1, 2: // send a random chunk
				n := 1 + rng.Intn(20000)
				chunk := make([]byte, n)
				for i := range chunk {
					chunk[i] = next
					next++
				}
				sent.Write(chunk)
				ca.Send(chunk)
			case 3: // toggle mode
				ca.SetNoDelay(rng.Intn(2) == 0)
			case 4: // adjust cork
				ca.SetCorkBytes(rng.Intn(128 << 10))
			case 5: // let time pass
			}
			s.RunFor(time.Duration(rng.Intn(300)) * time.Microsecond)
		}
		ca.SetNoDelay(true) // flush any held tail
		s.RunFor(500 * time.Millisecond)
		for cb.Readable() > 0 {
			received.Write(cb.Read(0))
			s.RunFor(10 * time.Millisecond)
		}

		if !bytes.Equal(sent.Bytes(), received.Bytes()) {
			t.Fatalf("trial %d: stream corrupted: sent %d bytes, received %d",
				trial, sent.Len(), received.Len())
		}

		// Queue accounting must balance: everything sent was acked and
		// read, so every tracked queue is empty in every unit.
		for u := 0; u < NumUnits; u++ {
			if ua, _, _ := ca.Instr().Sizes(Unit(u)); ua != 0 {
				t.Fatalf("trial %d: unacked[%v] = %d after quiesce", trial, Unit(u), ua)
			}
			if _, ur, _ := cb.Instr().Sizes(Unit(u)); ur != 0 {
				t.Fatalf("trial %d: unread[%v] = %d after quiesce", trial, Unit(u), ur)
			}
			if _, _, ad := cb.Instr().Sizes(Unit(u)); ad != 0 {
				t.Fatalf("trial %d: ackdelay[%v] = %d after quiesce", trial, Unit(u), ad)
			}
		}

		// Byte-unit totals: departures from unacked == bytes sent; from
		// unread == bytes read.
		ua, _, _ := ca.Snapshots(UnitBytes)
		if ua.Total != int64(sent.Len()) {
			t.Fatalf("trial %d: unacked departures %d != sent %d", trial, ua.Total, sent.Len())
		}
		_, urB, _ := cb.Snapshots(UnitBytes)
		if urB.Total != int64(received.Len()) {
			t.Fatalf("trial %d: unread departures %d != received %d", trial, urB.Total, received.Len())
		}
	}
}

// TestPropertyUnackedLatencyNonNegative checks GetAvgs over random windows
// of a live connection never yields negative latency or throughput.
func TestPropertyUnackedLatencyNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := sim.New(123)
	a := NewStack(s, "a")
	b := NewStack(s, "b")
	link := netem.NewLink(s, "lnk", netem.Config{BitsPerSec: 100_000_000_000, Propagation: 2 * time.Microsecond})
	ca, cb := Connect(a, b, link, DefaultConfig())
	cb.OnReadable(func() { cb.Read(0) })

	var prev [NumUnits][3]qstate.Snapshot
	snap := func(u Unit) [3]qstate.Snapshot {
		x, y, z := ca.Snapshots(u)
		return [3]qstate.Snapshot{x, y, z}
	}
	for u := 0; u < NumUnits; u++ {
		prev[u] = snap(Unit(u))
	}
	for i := 0; i < 300; i++ {
		ca.Send(make([]byte, 1+rng.Intn(30000)))
		s.RunFor(time.Duration(1+rng.Intn(200)) * time.Microsecond)
		for u := 0; u < NumUnits; u++ {
			cur := snap(Unit(u))
			for qi := 0; qi < 3; qi++ {
				avgs := qstate.GetAvgs(prev[u][qi], cur[qi])
				if avgs.Latency < 0 || avgs.Throughput < 0 || avgs.Q < 0 {
					t.Fatalf("negative averages: %+v (unit %v queue %d)", avgs, Unit(u), qi)
				}
			}
			prev[u] = cur
		}
	}
}
