package tcpsim

import (
	"testing"
	"time"

	"e2ebatch/internal/netem"
	"e2ebatch/internal/sim"
)

// TestFNV1aKnownVectors pins the digest primitive against the published
// FNV-1a 64 test vectors, so the replay seam can never silently become a
// different hash.
func TestFNV1aKnownVectors(t *testing.T) {
	if fnvOffset != 14695981039346656037 {
		t.Fatalf("offset basis = %d", uint64(fnvOffset))
	}
	cases := []struct {
		in   string
		want uint64
	}{
		{"", fnvOffset},
		{"a", 0xaf63dc4c8601ec8c},
		{"foobar", 0x85944171f73967e8},
	}
	for _, c := range cases {
		if got := fnv1a(fnvOffset, []byte(c.in)); got != c.want {
			t.Errorf("fnv1a(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
	// Incremental hashing over split inputs equals one-shot hashing —
	// the property Send/Read rely on.
	split := fnv1a(fnv1a(fnvOffset, []byte("foo")), []byte("bar"))
	if split != 0x85944171f73967e8 {
		t.Errorf("split digest = %#x", split)
	}
}

// TestStreamDigestsTrackBytes drives a small echo exchange and checks the
// digest invariants: initialized to the offset basis, updated by traffic,
// and — since TCP delivers the sent stream intact — each side's ReadDigest
// equal to the peer's SentDigest once everything is consumed.
func TestStreamDigestsTrackBytes(t *testing.T) {
	s := sim.New(5)
	cs, ss := NewStack(s, "client"), NewStack(s, "server")
	link := netem.NewLink(s, "lnk", netem.Config{BitsPerSec: 100_000_000_000, Propagation: time.Microsecond})
	cc, sc := Connect(cs, ss, link, DefaultConfig())

	if st := cc.Stats(); st.SentDigest != fnvOffset || st.ReadDigest != fnvOffset {
		t.Fatalf("fresh conn digests not at offset basis: %+v", st)
	}

	var serverRead []byte
	sc.OnReadable(func() {
		for {
			chunk := sc.Read(4096)
			if len(chunk) == 0 {
				return
			}
			serverRead = append(serverRead, chunk...)
		}
	})
	payloads := [][]byte{[]byte("hello "), []byte("stream"), make([]byte, 3000)}
	var want uint64 = fnvOffset
	for _, p := range payloads {
		cc.Send(p)
		want = fnv1a(want, p)
	}
	s.RunFor(10 * time.Millisecond)

	ccSt, scSt := cc.Stats(), sc.Stats()
	if ccSt.SentDigest != want {
		t.Fatalf("client SentDigest = %#x, want %#x", ccSt.SentDigest, want)
	}
	if scSt.ReadDigest != want {
		t.Fatalf("server ReadDigest = %#x, want sender's %#x", scSt.ReadDigest, want)
	}
	if len(serverRead) != 6+6+3000 {
		t.Fatalf("server read %d bytes", len(serverRead))
	}
	// The server sent nothing: its sent digest is untouched, as is the
	// client's read digest.
	if scSt.SentDigest != fnvOffset || ccSt.ReadDigest != fnvOffset {
		t.Fatalf("idle direction digests moved: %#x %#x", scSt.SentDigest, ccSt.ReadDigest)
	}
	// Different payload bytes produce a different digest even at equal
	// lengths — the property a byte counter lacks.
	s2 := sim.New(5)
	cs2, ss2 := NewStack(s2, "client"), NewStack(s2, "server")
	link2 := netem.NewLink(s2, "lnk", netem.Config{BitsPerSec: 100_000_000_000, Propagation: time.Microsecond})
	cc2, _ := Connect(cs2, ss2, link2, DefaultConfig())
	cc2.Send([]byte("hellp "))
	cc2.Send([]byte("stream"))
	cc2.Send(make([]byte, 3000))
	s2.RunFor(10 * time.Millisecond)
	if cc2.Stats().SentDigest == want {
		t.Fatal("digest insensitive to payload bytes")
	}
}
