package tcpsim

import (
	"testing"
	"time"

	"e2ebatch/internal/engine"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
)

// pingPong drives n request/response exchanges of size bytes each way,
// spaced period apart, with both ends reading eagerly.
func pingPong(s *sim.Sim, ca, cb *Conn, n, size int, period time.Duration) {
	cb.OnReadable(func() {
		if got := cb.Read(0); got != nil {
			cb.Send(payload(size))
		}
	})
	ca.OnReadable(func() { ca.Read(0) })
	for i := 0; i < n; i++ {
		s.At(sim.Time(i)*sim.Time(period), func() { ca.Send(payload(size)) })
	}
	s.RunUntil(sim.Time(n)*sim.Time(period) + sim.Time(10*time.Millisecond))
}

// TestExchangeTailsDeliversPeerHistograms: with ExchangeTails on both ends,
// each endpoint ends up holding the peer's cumulative delay histograms, and
// the local unacked histogram accounts for exactly the bytes that were
// acknowledged — the FIFO attribution loses and invents nothing.
func TestExchangeTailsDeliversPeerHistograms(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	cfg.ExchangeTails = true
	s, ca, cb := testNet(t, cfg)
	pingPong(s, ca, cb, 200, 512, 20*time.Microsecond)

	for _, c := range []*Conn{ca, cb} {
		lt := c.LocalTails(UnitBytes)
		sent := int64(c.Stats().BytesSent)
		acked := sent - c.InFlight()
		if got := int64(lt.Unacked.Count()); got != acked {
			t.Fatalf("%s: unacked histogram holds %d byte departures, want %d acked", c.Name(), got, acked)
		}
		pt, ok := c.PeerTails()
		if !ok {
			t.Fatalf("%s: no peer tails after %d exchanges", c.Name(), c.Stats().StatesExchanged)
		}
		if pt.Unacked.Count() == 0 || pt.Unread.Count() == 0 {
			t.Fatalf("%s: peer tails empty: unacked=%d unread=%d", c.Name(), pt.Unacked.Count(), pt.Unread.Count())
		}
		// Every unacked byte spent at least the one-way propagation plus the
		// ack's return in the queue: nothing may sit below the 2µs bucket.
		for i := 0; i < qstate.DelayBucket(2*time.Microsecond); i++ {
			if lt.Unacked.Counts[i] != 0 {
				t.Fatalf("%s: %d unacked bytes report residency below 2µs (bucket %d)", c.Name(), lt.Unacked.Counts[i], i)
			}
		}
	}
}

// TestExchangeTailsOffStaysV1: the default config is a v1 peer — histograms
// are still tracked locally (passively) but never ride the exchange, so the
// other end sees none.
func TestExchangeTailsOffStaysV1(t *testing.T) {
	s, ca, cb := testNet(t, fastCfg())
	pingPong(s, ca, cb, 50, 512, 20*time.Microsecond)
	if ca.Stats().StatesExchanged == 0 {
		t.Fatal("no exchanges at all — test drives nothing")
	}
	if _, ok := ca.PeerTails(); ok {
		t.Fatal("v1 peer delivered tails")
	}
	if _, ok := cb.PeerTails(); ok {
		t.Fatal("v1 peer delivered tails")
	}
	lt := ca.LocalTails(UnitBytes)
	if lt.Unacked.Count() == 0 {
		t.Fatal("local delay tracking must stay on even without the exchange")
	}
}

// TestEnginePortComposesTailInSim: the full loop — simulated traffic, v2
// exchanges, EnginePort samples, core.Estimator — yields a valid composed
// tail with ordered quantiles; flipping only ExchangeTails off makes the
// tail abstain on the same workload while the mean estimate survives.
func TestEnginePortComposesTailInSim(t *testing.T) {
	run := func(tails bool) engine.TickResult {
		cfg := fastCfg()
		cfg.Nagle = false
		cfg.ExchangeTails = tails
		s, ca, cb := testNet(t, cfg)
		ep := engine.New(engine.Config{}, NewEnginePort(ca, cb, UnitBytes))
		var last engine.TickResult
		tick := sim.Time(500 * time.Microsecond)
		for i := 1; i <= 20; i++ {
			s.At(sim.Time(i)*tick, func() { last = ep.Tick(qstate.Time(s.Now())) })
		}
		pingPong(s, ca, cb, 400, 512, 25*time.Microsecond)
		return last
	}

	r := run(true)
	if !r.Estimate.Valid {
		t.Fatalf("mean estimate invalid: %+v", r.Estimate)
	}
	tl := r.Estimate.Tail
	if !tl.Valid {
		t.Fatalf("tail abstained with v2 exchanges on: %+v", r.Estimate)
	}
	if !(tl.P50 <= tl.P90 && tl.P90 <= tl.P99 && tl.P99 <= tl.P999) {
		t.Fatalf("tail quantiles unordered: %+v", tl)
	}
	if tl.P50 <= 0 {
		t.Fatalf("composed p50 = %v, want positive residency", tl.P50)
	}
	// The composed p99 can never sit below the one-way propagation delay the
	// unacked queue alone imposes.
	if tl.P99 < time.Microsecond {
		t.Fatalf("composed p99 = %v, below the link propagation", tl.P99)
	}

	r = run(false)
	if !r.Estimate.Valid {
		t.Fatalf("v1 mean estimate invalid: %+v", r.Estimate)
	}
	if r.Estimate.Tail.Valid {
		t.Fatalf("tail composed against a v1 peer: %+v", r.Estimate.Tail)
	}
}
