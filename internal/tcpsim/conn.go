package tcpsim

import (
	"fmt"
	"time"

	"e2ebatch/internal/netem"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
)

// segment is what travels on the wire: a (possibly empty) payload flush plus
// the piggybacked cumulative ACK, advertised window, sender message
// boundaries, and — when due — the 36-byte queue-state metadata exchange.
type segment struct {
	payload []byte
	start   int64 // absolute stream offset of payload[0]
	nsegs   int   // number of MSS wire segments in this flush
	bounds  []int64

	ack int64
	wnd int64

	hasState bool
	state    qstate.WireState
	// tails is the v2 frame extension (Config.ExchangeTails): the sender's
	// cumulative per-queue delay histograms, nil on v1 exchanges. A pointer
	// so v1 segments stay as small as before the extension existed.
	tails *qstate.WireTails
}

// Stats counts connection-level events; all fields are cumulative.
type Stats struct {
	Flushes        uint64 // transmit flushes (skbs)
	Segments       uint64 // MSS wire segments
	BytesSent      uint64 // payload bytes transmitted
	Sends          uint64 // application Send calls
	PureAcks       uint64 // standalone ACK segments sent
	AcksSuppressed uint64 // scheduled ACKs that became redundant
	GROBatches     uint64 // receive-side processing batches (GRO on)
	GROMerged      uint64 // extra flushes merged into a batch beyond the first
	Retransmits    uint64 // go-back-N retransmission rounds (RTO fired)
	DupPayloads    uint64 // received payloads discarded as duplicate/out-of-order
	NagleHolds     uint64 // times a sub-MSS tail was held
	CorkTimeouts   uint64 // held data released by the cork timer

	DelAckTimeouts  uint64 // ACKs released by the delayed-ACK timer
	WindowStalls    uint64 // pump() stopped by a closed receive window
	StatesExchanged uint64 // metadata exchanges attached to segments
	StatesDropped   uint64 // inbound exchanges discarded by the fault hook
	StatesDelayed   uint64 // inbound exchanges deferred by the fault hook
	StatesDuped     uint64 // inbound exchanges replayed by the fault hook

	// SentDigest and ReadDigest are not counts but running FNV-1a digests
	// of every byte the application has written to (Send) and read from
	// (Read) this endpoint — the replay seam the model-fidelity harness
	// uses: two runs of a deterministic workload produced byte-identical
	// streams iff their digests match, with nothing retained. They start
	// at the FNV-1a offset basis.
	SentDigest uint64
	ReadDigest uint64
}

// Conn is one endpoint of an emulated TCP connection. All methods must be
// called from within the owning simulator's event loop (the usual
// discrete-event discipline); Conn is not safe for concurrent use.
type Conn struct {
	stack *Stack
	cfg   Config
	tx    *netem.Pipe
	peer  *Conn
	name  string

	// ---- sender state ----
	sndUna   int64 // oldest unacknowledged offset
	sndNxt   int64 // next offset to transmit
	sndLimit int64 // highest offset the peer's window permits
	wq       []byte
	// msgEndsUntx are send-call boundaries not yet transmitted (carried
	// to the peer in flushes); msgEndsUnacked are boundaries not yet
	// ACKed (for UnitSends unacked accounting). Both ascending.
	msgEndsUntx    []int64
	msgEndsUnacked []int64
	segEnds        []int64 // ends of in-flight wire segments, ascending
	nodelay        bool
	corkBytes      int64 // Nagle hold threshold (MSS = classic Nagle)
	corkEv         *sim.Event
	// rtxBuf holds the unACKed byte range [sndUna, sndNxt) for go-back-N
	// retransmission on lossy links (Config.RTO > 0).
	rtxBuf     []byte
	rtoEv      *sim.Event
	rtoBackoff int

	// ---- receiver state ----
	rcvNxt         int64
	rcvWup         int64 // last offset acknowledged to the peer
	rq             []byte
	rqStart        int64
	rcvSegEnds     []int64
	rcvMsgEnds     []int64
	ackPendingSegs int64
	ackPendingMsgs int64
	delackEv       *sim.Event
	ackScheduled   bool
	lastAdvWnd     int64
	rxQueue        []*segment // GRO accumulation
	rxScheduled    bool
	needDupAck     bool // force the next scheduled ACK out (loss resync)

	// ---- instrumentation & exchange ----
	instr           Instrumentation
	lastExchange    sim.Time
	exchangedOnce   bool
	exchangeForced  bool
	peerState       qstate.WireState
	peerStateAt     sim.Time
	peerStateValid  bool
	peerTails       qstate.WireTails
	peerTailsValid  bool
	onPeerState     func(qstate.WireState)
	stateFault      func(qstate.WireState) StateFaultAction
	onReadable      func()
	readablePending bool

	stats Stats
}

// Connect establishes a connection between two host stacks over link,
// returning the endpoint on a (transmitting via link.AtoB) and the endpoint
// on b. Both endpoints share cfg; Nagle can be toggled per endpoint at
// runtime.
func Connect(a, b *Stack, link *netem.Link, cfg Config) (*Conn, *Conn) {
	if a.Sim != b.Sim {
		panic("tcpsim: endpoints must share a simulator")
	}
	if cfg.MSS <= 0 || cfg.TSOMaxBytes < cfg.MSS || cfg.RecvBuf <= 0 || cfg.DelAckSegs <= 0 {
		panic(fmt.Sprintf("tcpsim: invalid config %+v", cfg))
	}
	now := a.Sim.Now()
	cork := int64(cfg.CorkBytes)
	if cork <= 0 {
		cork = int64(cfg.MSS)
	}
	ca := &Conn{stack: a, cfg: cfg, tx: link.AtoB, name: a.Name, nodelay: !cfg.Nagle,
		corkBytes: cork, sndLimit: cfg.RecvBuf, lastAdvWnd: cfg.RecvBuf, lastExchange: now}
	cb := &Conn{stack: b, cfg: cfg, tx: link.BtoA, name: b.Name, nodelay: !cfg.Nagle,
		corkBytes: cork, sndLimit: cfg.RecvBuf, lastAdvWnd: cfg.RecvBuf, lastExchange: now}
	ca.stats.SentDigest, ca.stats.ReadDigest = fnvOffset, fnvOffset
	cb.stats.SentDigest, cb.stats.ReadDigest = fnvOffset, fnvOffset
	ca.peer, cb.peer = cb, ca
	ca.instr.init(now)
	cb.instr.init(now)
	return ca, cb
}

// Name returns the host name of this endpoint.
func (c *Conn) Name() string { return c.name }

// Stack returns the host stack this endpoint runs on.
func (c *Conn) Stack() *Stack { return c.stack }

// Peer returns the other endpoint.
func (c *Conn) Peer() *Conn { return c.peer }

// Stats returns a copy of the endpoint's counters.
func (c *Conn) Stats() Stats { return c.stats }

// Instr exposes the endpoint's queue instrumentation.
func (c *Conn) Instr() *Instrumentation { return &c.instr }

// SetNoDelay enables (true) or disables (false) TCP_NODELAY — i.e. disables
// or enables Nagle batching. Disabling Nagle releases any held data
// immediately; this is the hook the dynamic toggling policy drives.
func (c *Conn) SetNoDelay(v bool) {
	if c.nodelay == v {
		return
	}
	c.nodelay = v
	if v {
		c.flushHeld()
	}
}

// NoDelay reports whether Nagle batching is currently disabled.
func (c *Conn) NoDelay() bool { return c.nodelay }

// SetCorkBytes adjusts the hold threshold at runtime: while data is in
// flight, available data below n bytes is held. Values below one MSS clamp
// to the MSS (classic Nagle); this is the knob an AIMD batch-limit
// controller drives. Lowering the threshold releases data that no longer
// qualifies for holding.
func (c *Conn) SetCorkBytes(n int) {
	v := int64(n)
	if v < int64(c.cfg.MSS) {
		v = int64(c.cfg.MSS)
	}
	if v < c.corkBytes {
		c.corkBytes = v
		c.pump()
		return
	}
	c.corkBytes = v
}

// CorkBytes returns the current hold threshold.
func (c *Conn) CorkBytes() int { return int(c.corkBytes) }

// OnReadable registers fn to be invoked (at most once per quiescent period)
// when newly delivered data becomes readable. The app must drain with Read
// and re-check Readable after processing, as with edge-triggered epoll.
func (c *Conn) OnReadable(fn func()) { c.onReadable = fn }

// OnPeerState registers fn to be invoked whenever a metadata exchange
// arrives from the peer.
func (c *Conn) OnPeerState(fn func(qstate.WireState)) { c.onPeerState = fn }

// StateFaultAction directs the fate of one arriving metadata exchange — the
// fault-injection surface for the 36-byte queue-state sharing (§3.2): real
// networks drop, delay, and duplicate the packets carrying it, and the
// estimator must degrade gracefully rather than consume garbage.
type StateFaultAction struct {
	// Drop discards the exchange entirely; PeerWireState keeps reporting
	// the previous one.
	Drop bool
	// Delay defers applying the exchange by this long. A delayed exchange
	// can land after a newer one — the reordering case the wire codec's
	// modular deltas must reject.
	Delay time.Duration
	// Duplicate applies the exchange a second time, DupDelay after the
	// first application. The replay carries the old counters but a fresh
	// arrival timestamp — the false-freshness signal metadata-age
	// tracking has to tolerate.
	Duplicate bool
	DupDelay  time.Duration
}

// SetStateFault installs fn as the arbiter of arriving metadata exchanges;
// nil (the default) applies every exchange immediately. The hook runs inside
// the receive path, on the simulator goroutine.
func (c *Conn) SetStateFault(fn func(qstate.WireState) StateFaultAction) { c.stateFault = fn }

// Send writes data to the connection, as one send(2) invocation. The caller
// is responsible for charging its own application CPU cost before calling.
func (c *Conn) Send(data []byte) {
	if len(data) == 0 {
		return
	}
	now := c.stack.Sim.Now()
	c.wq = append(c.wq, data...)
	end := c.sndNxt + int64(len(c.wq))
	c.msgEndsUntx = append(c.msgEndsUntx, end)
	c.msgEndsUnacked = append(c.msgEndsUnacked, end)
	c.instr.unacked.track(now, int64(len(data)), 0, 1)
	c.stats.Sends++
	c.stats.SentDigest = fnv1a(c.stats.SentDigest, data)
	c.pump()
}

// Readable returns the number of delivered, unread bytes.
func (c *Conn) Readable() int { return len(c.rq) }

// Read consumes up to max bytes from the receive buffer (all of it if max
// <= 0), returning nil when nothing is readable. As with Send, the caller
// charges its own app CPU cost.
func (c *Conn) Read(max int) []byte {
	n := len(c.rq)
	if n == 0 {
		return nil
	}
	if max > 0 && max < n {
		n = max
	}
	data := make([]byte, n)
	copy(data, c.rq[:n])
	c.rq = c.rq[n:]
	c.rqStart += int64(n)
	c.stats.ReadDigest = fnv1a(c.stats.ReadDigest, data)

	segs := popLE(&c.rcvSegEnds, c.rqStart)
	msgs := popLE(&c.rcvMsgEnds, c.rqStart)
	c.instr.unread.track(c.stack.Sim.Now(), -int64(n), -segs, -msgs)

	// Window-update ACK: if reading reopened at least half the receive
	// buffer relative to the last advertisement, tell the peer.
	if c.advertiseWnd()-c.lastAdvWnd >= c.cfg.RecvBuf/2 {
		c.scheduleAck()
	}
	return data
}

// InFlight returns transmitted-but-unACKed bytes.
func (c *Conn) InFlight() int64 { return c.sndNxt - c.sndUna }

// Unsent returns bytes written but not yet transmitted.
func (c *Conn) Unsent() int64 { return int64(len(c.wq)) }

// Snapshots captures the three local queue snapshots in the given unit.
func (c *Conn) Snapshots(u Unit) (unacked, unread, ackdelay qstate.Snapshot) {
	return c.instr.Snapshots(c.stack.Sim.Now(), u)
}

// LocalWireState encodes the local queue states for exchange in unit u.
func (c *Conn) LocalWireState(u Unit) qstate.WireState {
	return c.instr.WireState(c.stack.Sim.Now(), u)
}

// PeerWireState returns the most recently received peer metadata, its
// arrival time, and whether any has arrived.
func (c *Conn) PeerWireState() (qstate.WireState, sim.Time, bool) {
	return c.peerState, c.peerStateAt, c.peerStateValid
}

// LocalTails returns the local queues' cumulative delay histograms in unit
// u. Tracking is always on (it is passive); whether the histograms also ride
// the exchange is Config.ExchangeTails.
func (c *Conn) LocalTails(u Unit) qstate.WireTails {
	return c.instr.WireTails(u)
}

// PeerTails returns the peer's delay histograms from its most recent
// tails-carrying (v2) exchange. ok is false until one arrives — in
// particular, forever, against a v1 peer that never sends them.
func (c *Conn) PeerTails() (qstate.WireTails, bool) {
	return c.peerTails, c.peerTailsValid
}

// RequestExchange forces queue-state metadata onto the next outgoing
// segment, sending a pure ACK if nothing else is pending — the "on-demand"
// exchange of §5.
func (c *Conn) RequestExchange() {
	c.exchangeForced = true
	c.scheduleAck()
}

// Close cancels the endpoint's timers. Data in flight is abandoned.
func (c *Conn) Close() {
	c.cancelCork()
	c.cancelDelack()
	c.onReadable = nil
	c.onPeerState = nil
}

// ---- transmit path ----

func (c *Conn) pump() {
	for {
		avail := int64(len(c.wq))
		if avail == 0 {
			c.cancelCork()
			return
		}
		mss := int64(c.cfg.MSS)

		// Generalized Nagle (§5 "Better Batching Heuristics"): hold all
		// available data while peers still owe ACKs and the pile is
		// below the cork threshold (threshold == MSS is classic Nagle).
		if !c.nodelay && avail < c.corkBytes && c.InFlight() > 0 {
			c.stats.NagleHolds++
			c.armCork()
			return
		}
		// Auto-corking: hold a sub-MSS dribble while the NIC queue has
		// not drained, even with NODELAY set.
		if c.cfg.AutoCork && avail < mss && c.tx.QueueDelay() > 0 {
			c.stats.NagleHolds++
			c.armCork()
			return
		}

		wnd := c.sndLimit - c.sndNxt
		if wnd <= 0 {
			c.stats.WindowStalls++
			return
		}
		n := avail
		if n > wnd {
			n = wnd
		}
		if m := int64(c.cfg.TSOMaxBytes); n > m {
			n = m
		}
		if n < mss && n < avail {
			// Window-limited below one MSS: wait for a window
			// update rather than dribbling.
			c.stats.WindowStalls++
			return
		}
		if n >= mss {
			n -= n % mss // full segments only; tail handled next loop
		}
		c.cancelCork()
		c.transmit(n)
	}
}

// flushHeld transmits everything the window allows, bypassing Nagle and
// auto-corking — used by the cork timer and by SetNoDelay(true).
func (c *Conn) flushHeld() {
	c.cancelCork()
	for {
		avail := int64(len(c.wq))
		if avail == 0 {
			return
		}
		wnd := c.sndLimit - c.sndNxt
		if wnd <= 0 {
			c.stats.WindowStalls++
			return
		}
		n := avail
		if n > wnd {
			n = wnd
		}
		if m := int64(c.cfg.TSOMaxBytes); n > m {
			n = m
		}
		c.transmit(n)
	}
}

func (c *Conn) transmit(n int64) {
	now := c.stack.Sim.Now()
	payload := make([]byte, n)
	copy(payload, c.wq[:n])
	c.wq = c.wq[n:]
	start := c.sndNxt
	c.sndNxt += n
	end := start + n

	mss := int64(c.cfg.MSS)
	nsegs := int((n + mss - 1) / mss)
	for k := int64(1); k <= int64(nsegs); k++ {
		segEnd := start + k*mss
		if segEnd > end {
			segEnd = end
		}
		c.segEnds = append(c.segEnds, segEnd)
	}

	var bounds []int64
	for len(c.msgEndsUntx) > 0 && c.msgEndsUntx[0] <= end {
		bounds = append(bounds, c.msgEndsUntx[0])
		c.msgEndsUntx = c.msgEndsUntx[1:]
	}

	c.instr.unacked.track(now, 0, int64(nsegs), 0)
	c.stats.Flushes++
	c.stats.Segments += uint64(nsegs)
	c.stats.BytesSent += uint64(n)
	if c.cfg.RTO > 0 {
		c.rtxBuf = append(c.rtxBuf, payload...)
		c.armRTO()
	}

	cost := c.stack.TxCosts.Batch(nsegs, int(n))
	c.stack.SoftirqCPU.Exec(cost, func() {
		seg := &segment{payload: payload, start: start, nsegs: nsegs, bounds: bounds}
		c.finishSegment(seg)
		wire := len(payload) + nsegs*c.cfg.HeaderBytes
		c.tx.Send(wire, func() { c.peer.receive(seg) })
	})
}

// finishSegment stamps the outgoing segment with the piggybacked ACK,
// advertised window and (when due) the metadata exchange, and accounts the
// ACK as sent.
func (c *Conn) finishSegment(seg *segment) {
	seg.ack = c.rcvNxt
	seg.wnd = c.advertiseWnd()
	c.noteAckSent()
	if c.exchangeDue() {
		seg.hasState = true
		seg.state = c.instr.WireState(c.stack.Sim.Now(), c.cfg.ExchangeUnit)
		if c.cfg.ExchangeTails {
			tails := c.instr.WireTails(c.cfg.ExchangeUnit)
			seg.tails = &tails
		}
		c.lastExchange = c.stack.Sim.Now()
		c.exchangedOnce = true
		c.exchangeForced = false
		c.stats.StatesExchanged++
	}
}

func (c *Conn) exchangeDue() bool {
	if !c.cfg.Exchange {
		return false
	}
	if c.exchangeForced || !c.exchangedOnce {
		return true
	}
	if c.cfg.ExchangeInterval == 0 {
		return true
	}
	return c.stack.Sim.Now().Sub(c.lastExchange) >= c.cfg.ExchangeInterval
}

func (c *Conn) advertiseWnd() int64 {
	w := c.cfg.RecvBuf - int64(len(c.rq))
	if w < 0 {
		w = 0
	}
	return w
}

// noteAckSent records that an acknowledgment covering everything received
// so far has just gone out (standalone or piggybacked): the ackdelay queue
// drains, and the delayed-ACK timer disarms.
func (c *Conn) noteAckSent() {
	now := c.stack.Sim.Now()
	pending := c.rcvNxt - c.rcvWup
	if pending > 0 || c.ackPendingSegs > 0 || c.ackPendingMsgs > 0 {
		c.instr.ackdelay.track(now, -pending, -c.ackPendingSegs, -c.ackPendingMsgs)
	}
	c.rcvWup = c.rcvNxt
	c.ackPendingSegs = 0
	c.ackPendingMsgs = 0
	c.lastAdvWnd = c.advertiseWnd()
	c.cancelDelack()
}

// ---- receive path ----

func (c *Conn) receive(seg *segment) {
	if len(seg.payload) == 0 {
		c.stack.SoftirqCPU.Exec(c.stack.AckRxCost, func() { c.deliver(seg) })
		return
	}
	if !c.cfg.GRO {
		cost := c.stack.RxCosts.Batch(seg.nsegs, len(seg.payload))
		c.stack.SoftirqCPU.Exec(cost, func() { c.deliver(seg) })
		return
	}
	// GRO: park the flush; one poll task drains everything that
	// accumulated while the softirq context was busy, charging the
	// per-delivery cost once for the whole batch.
	c.rxQueue = append(c.rxQueue, seg)
	if c.rxScheduled {
		return
	}
	c.rxScheduled = true
	c.stack.SoftirqCPU.Exec(0, c.groPoll)
}

// groPoll runs when the softirq context reaches the parked work: it takes
// the entire accumulated batch, charges one merged receive cost, and then
// delivers the flushes in order.
func (c *Conn) groPoll() {
	c.rxScheduled = false
	batch := c.rxQueue
	c.rxQueue = nil
	if len(batch) == 0 {
		return
	}
	segs, bytes := 0, 0
	for _, seg := range batch {
		segs += seg.nsegs
		bytes += len(seg.payload)
	}
	c.stats.GROBatches++
	c.stats.GROMerged += uint64(len(batch) - 1)
	cost := c.stack.RxCosts.Batch(segs, bytes)
	c.stack.SoftirqCPU.Exec(cost, func() {
		for _, seg := range batch {
			c.deliver(seg)
		}
	})
}

func (c *Conn) deliver(seg *segment) {
	now := c.stack.Sim.Now()
	if seg.hasState {
		c.acceptPeerState(seg.state, seg.tails)
	}
	c.processAck(seg.ack, seg.wnd)

	if len(seg.payload) == 0 {
		return
	}
	if seg.start != c.rcvNxt {
		switch {
		case c.cfg.RTO <= 0:
			// Without recovery machinery a sequence hole is a model
			// bug, not a recoverable condition.
			panic(fmt.Sprintf("tcpsim: out-of-order delivery at %d, expected %d (lossy pipe without Config.RTO?)", seg.start, c.rcvNxt))
		case seg.start+int64(len(seg.payload)) <= c.rcvNxt:
			// Pure duplicate (a retransmission raced the ack):
			// discard, but re-ack so the sender resyncs.
			c.stats.DupPayloads++
			c.needDupAck = true
			c.scheduleAck()
			return
		case seg.start < c.rcvNxt:
			// Overlapping retransmission: accept only the new tail.
			cut := c.rcvNxt - seg.start
			seg.payload = seg.payload[cut:]
			seg.start = c.rcvNxt
			seg.nsegs = int((int64(len(seg.payload)) + int64(c.cfg.MSS) - 1) / int64(c.cfg.MSS))
			var kept []int64
			for _, b := range seg.bounds {
				if b > c.rcvNxt {
					kept = append(kept, b)
				}
			}
			seg.bounds = kept
			c.stats.DupPayloads++
		default:
			// Gap: an earlier segment was lost. Go-back-N drops
			// everything until the retransmission fills the hole.
			c.stats.DupPayloads++
			c.needDupAck = true
			c.scheduleAck()
			return
		}
	}
	n := int64(len(seg.payload))
	c.rq = append(c.rq, seg.payload...)
	c.rcvNxt += n

	mss := int64(c.cfg.MSS)
	end := seg.start + n
	for k := int64(1); k <= int64(seg.nsegs); k++ {
		segEnd := seg.start + k*mss
		if segEnd > end {
			segEnd = end
		}
		c.rcvSegEnds = append(c.rcvSegEnds, segEnd)
	}
	c.rcvMsgEnds = append(c.rcvMsgEnds, seg.bounds...)

	c.instr.unread.track(now, n, int64(seg.nsegs), int64(len(seg.bounds)))
	c.instr.ackdelay.track(now, n, int64(seg.nsegs), int64(len(seg.bounds)))
	c.ackPendingSegs += int64(seg.nsegs)
	c.ackPendingMsgs += int64(len(seg.bounds))

	if int(c.ackPendingSegs) >= c.cfg.DelAckSegs {
		c.scheduleAck()
	} else {
		c.armDelack()
	}
	c.notifyReadable()
}

// acceptPeerState routes an arriving metadata exchange through the fault
// hook (if any) before applying it. The tails ride the same frame as the
// counters, so a dropped, delayed or duplicated exchange drops, delays or
// duplicates both together.
func (c *Conn) acceptPeerState(ws qstate.WireState, tails *qstate.WireTails) {
	if c.stateFault == nil {
		c.applyPeerState(ws, tails)
		return
	}
	act := c.stateFault(ws)
	if act.Drop {
		c.stats.StatesDropped++
		return
	}
	if act.Delay > 0 {
		c.stats.StatesDelayed++
		c.stack.Sim.After(act.Delay, func() { c.applyPeerState(ws, tails) })
	} else {
		c.applyPeerState(ws, tails)
	}
	if act.Duplicate {
		c.stats.StatesDuped++
		c.stack.Sim.After(act.Delay+act.DupDelay, func() { c.applyPeerState(ws, tails) })
	}
}

// applyPeerState records ws as the peer's latest exchange, stamped with the
// application time (which, under a Delay fault, is later than the wire
// arrival — exactly what a delayed packet looks like). A v1 exchange (nil
// tails) leaves any previously received histograms in place: the estimator
// then sees zero bucket deltas and abstains on its own.
func (c *Conn) applyPeerState(ws qstate.WireState, tails *qstate.WireTails) {
	c.peerState = ws
	c.peerStateAt = c.stack.Sim.Now()
	c.peerStateValid = true
	if tails != nil {
		c.peerTails = *tails
		c.peerTailsValid = true
	}
	if c.onPeerState != nil {
		c.onPeerState(ws)
	}
}

func (c *Conn) processAck(ack, wnd int64) {
	if ack > c.sndUna {
		now := c.stack.Sim.Now()
		delta := ack - c.sndUna
		segs := popLE(&c.segEnds, ack)
		msgs := popLE(&c.msgEndsUnacked, ack)
		c.instr.unacked.track(now, -delta, -segs, -msgs)
		c.sndUna = ack
		if c.cfg.RTO > 0 {
			c.rtxBuf = c.rtxBuf[delta:]
			c.rtoBackoff = 0
			c.cancelRTO()
			if c.InFlight() > 0 {
				c.armRTO()
			}
		}
	}
	if limit := ack + wnd; limit > c.sndLimit {
		c.sndLimit = limit
	}
	c.pump()
}

// ---- loss recovery (go-back-N) ----

func (c *Conn) armRTO() {
	if c.rtoEv != nil || c.cfg.RTO <= 0 {
		return
	}
	timeout := c.cfg.RTO << uint(c.rtoBackoff)
	c.rtoEv = c.stack.Sim.After(timeout, c.rtoFire)
}

func (c *Conn) cancelRTO() {
	if c.rtoEv != nil {
		c.stack.Sim.Cancel(c.rtoEv)
		c.rtoEv = nil
	}
}

// rtoFire retransmits everything unACKed in TSO-sized flushes. Counters are
// not re-tracked: the bytes never left the unacked queue, so their measured
// residency naturally includes the recovery delay.
func (c *Conn) rtoFire() {
	c.rtoEv = nil
	if c.InFlight() == 0 {
		return
	}
	c.stats.Retransmits++
	if c.rtoBackoff < 6 {
		c.rtoBackoff++
	}
	mss := int64(c.cfg.MSS)
	for off := int64(0); off < int64(len(c.rtxBuf)); {
		n := int64(len(c.rtxBuf)) - off
		if m := int64(c.cfg.TSOMaxBytes); n > m {
			n = m
		}
		start := c.sndUna + off
		end := start + n
		payload := make([]byte, n)
		copy(payload, c.rtxBuf[off:off+n])
		nsegs := int((n + mss - 1) / mss)
		var bounds []int64
		for _, b := range c.msgEndsUnacked {
			if b > start && b <= end {
				bounds = append(bounds, b)
			}
		}
		c.stack.SoftirqCPU.Exec(c.stack.TxCosts.Batch(nsegs, int(n)), func() {
			seg := &segment{payload: payload, start: start, nsegs: nsegs, bounds: bounds}
			c.finishSegment(seg)
			c.tx.Send(len(payload)+nsegs*c.cfg.HeaderBytes, func() { c.peer.receive(seg) })
		})
		off += n
	}
	c.armRTO()
}

// scheduleAck queues a standalone ACK through the softirq CPU. Multiple
// requests coalesce: while one is scheduled, further requests are no-ops,
// and the ACK captures the final receive state when it actually goes out.
func (c *Conn) scheduleAck() {
	if c.ackScheduled {
		return
	}
	c.ackScheduled = true
	c.stack.SoftirqCPU.Exec(c.stack.AckTxCost, func() {
		c.ackScheduled = false
		needWnd := c.advertiseWnd()-c.lastAdvWnd >= c.cfg.RecvBuf/2
		if c.rcvNxt == c.rcvWup && !needWnd && !c.exchangeForced && !c.needDupAck {
			c.stats.AcksSuppressed++
			return
		}
		c.needDupAck = false
		seg := &segment{}
		c.finishSegment(seg)
		c.stats.PureAcks++
		c.tx.Send(c.cfg.HeaderBytes, func() { c.peer.receive(seg) })
	})
}

// ---- timers ----

func (c *Conn) armCork() {
	if c.corkEv != nil || c.cfg.CorkTimeout <= 0 {
		return
	}
	c.corkEv = c.stack.Sim.After(c.cfg.CorkTimeout, func() {
		c.corkEv = nil
		c.stats.CorkTimeouts++
		c.flushHeld()
	})
}

func (c *Conn) cancelCork() {
	if c.corkEv != nil {
		c.stack.Sim.Cancel(c.corkEv)
		c.corkEv = nil
	}
}

func (c *Conn) armDelack() {
	if c.delackEv != nil || c.cfg.DelAckTimeout <= 0 {
		return
	}
	c.delackEv = c.stack.Sim.After(c.cfg.DelAckTimeout, func() {
		c.delackEv = nil
		c.stats.DelAckTimeouts++
		c.scheduleAck()
	})
}

func (c *Conn) cancelDelack() {
	if c.delackEv != nil {
		c.stack.Sim.Cancel(c.delackEv)
		c.delackEv = nil
	}
}

func (c *Conn) notifyReadable() {
	if c.onReadable == nil || c.readablePending {
		return
	}
	c.readablePending = true
	c.stack.Sim.After(0, func() {
		c.readablePending = false
		if c.onReadable != nil {
			c.onReadable()
		}
	})
}

// popLE removes leading elements of *s that are <= limit and returns how
// many were removed. The slice must be ascending.
func popLE(s *[]int64, limit int64) int64 {
	i := 0
	for i < len(*s) && (*s)[i] <= limit {
		i++
	}
	*s = (*s)[i:]
	return int64(i)
}

// fnv1a folds data into a running 64-bit FNV-1a digest (h starts at
// fnvOffset). Hand-rolled rather than hash/fnv to stay allocation-free on
// the per-Read/Send path.
func fnv1a(h uint64, data []byte) uint64 {
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// fnvOffset is the FNV-1a 64-bit offset basis.
const fnvOffset = 14695981039346656037
