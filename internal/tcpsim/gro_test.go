package tcpsim

import (
	"bytes"
	"testing"
	"time"

	"e2ebatch/internal/cpumodel"
	"e2ebatch/internal/netem"
	"e2ebatch/internal/sim"
)

// groNet builds a topology with a nonzero receive cost so GRO has backlog
// to batch against.
func groNet(t *testing.T, gro bool) (*sim.Sim, *Conn, *Conn) {
	t.Helper()
	s := sim.New(4)
	a := NewStack(s, "a")
	b := NewStack(s, "b")
	a.TxCosts, a.RxCosts = cpumodel.Costs{}, cpumodel.Costs{}
	b.TxCosts = cpumodel.Costs{}
	b.RxCosts = cpumodel.Costs{PerBatch: 20 * time.Microsecond}
	b.AckTxCost, b.AckRxCost = 0, 0
	a.AckTxCost, a.AckRxCost = 0, 0
	link := netem.NewLink(s, "lnk", netem.Config{Propagation: time.Microsecond})
	cfg := DefaultConfig()
	cfg.Nagle = false
	cfg.GRO = gro
	ca, cb := Connect(a, b, link, cfg)
	return s, ca, cb
}

func TestGROMergesBackloggedDeliveries(t *testing.T) {
	s, ca, cb := groNet(t, true)
	// Ten sends arrive while the receiver is busy with the first 20µs
	// batch cost; they must merge.
	for i := 0; i < 10; i++ {
		ca.Send(payload(1000))
	}
	s.RunUntil(sim.Time(10 * time.Millisecond))
	if cb.Readable() != 10000 {
		t.Fatalf("readable = %d", cb.Readable())
	}
	st := cb.Stats()
	if st.GROBatches == 0 {
		t.Fatal("no GRO batches recorded")
	}
	if st.GROMerged == 0 {
		t.Fatal("nothing merged despite backlog")
	}
	if st.GROBatches >= 10 {
		t.Fatalf("batches = %d for 10 flushes; no amortization", st.GROBatches)
	}
}

func TestGROPreservesStreamOrder(t *testing.T) {
	s, ca, cb := groNet(t, true)
	var want bytes.Buffer
	for i := 0; i < 50; i++ {
		chunk := payload(100 + i*37)
		want.Write(chunk)
		ca.Send(chunk)
		s.RunFor(5 * time.Microsecond)
	}
	s.RunUntil(sim.Time(100 * time.Millisecond))
	got := cb.Read(0)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("stream corrupted under GRO: %d vs %d bytes", len(got), want.Len())
	}
}

func TestGROReducesSoftirqBusyTime(t *testing.T) {
	run := func(gro bool) time.Duration {
		s, ca, cb := groNet(t, gro)
		cb.OnReadable(func() { cb.Read(0) })
		for i := 0; i < 100; i++ {
			ca.Send(payload(2000))
			s.RunFor(2 * time.Microsecond) // faster than the 20µs rx cost
		}
		s.RunUntil(sim.Time(100 * time.Millisecond))
		return cb.Stack().SoftirqCPU.BusyTime()
	}
	with, without := run(true), run(false)
	if with >= without/2 {
		t.Fatalf("GRO busy %v vs non-GRO %v: expected >=2x amortization", with, without)
	}
}

func TestGROOffIsExactLegacyPath(t *testing.T) {
	s, ca, cb := groNet(t, false)
	for i := 0; i < 5; i++ {
		ca.Send(payload(500))
	}
	s.RunUntil(sim.Time(10 * time.Millisecond))
	st := cb.Stats()
	if st.GROBatches != 0 || st.GROMerged != 0 {
		t.Fatalf("GRO counters active while disabled: %+v", st)
	}
	if cb.Readable() != 2500 {
		t.Fatalf("readable = %d", cb.Readable())
	}
}

func TestGROQueueAccountingBalanced(t *testing.T) {
	s, ca, cb := groNet(t, true)
	cb.OnReadable(func() { cb.Read(0) })
	for i := 0; i < 60; i++ {
		ca.Send(payload(3000))
		s.RunFor(3 * time.Microsecond)
	}
	s.RunUntil(sim.Time(200 * time.Millisecond))
	for u := 0; u < NumUnits; u++ {
		if ua, _, _ := ca.Instr().Sizes(Unit(u)); ua != 0 {
			t.Fatalf("unacked[%v] = %d", Unit(u), ua)
		}
		if _, ur, _ := cb.Instr().Sizes(Unit(u)); ur != 0 {
			t.Fatalf("unread[%v] = %d", Unit(u), ur)
		}
		if _, _, ad := cb.Instr().Sizes(Unit(u)); ad != 0 {
			t.Fatalf("ackdelay[%v] = %d", Unit(u), ad)
		}
	}
}
