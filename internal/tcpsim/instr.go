package tcpsim

import (
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
)

// queueInstr tracks one logical queue simultaneously in every unit mode.
// Alongside the paper's four counters it runs a DelayTracker per unit,
// fed from the very same track() calls: the FIFO cohort attribution turns
// the arrival/departure stream into the cumulative per-queue delay
// histograms the tail-estimation plane exchanges. Recording is passive —
// it never alters protocol behaviour or the mean-path counters.
type queueInstr struct {
	states [NumUnits]qstate.State
	delays [NumUnits]qstate.DelayTracker
}

func (q *queueInstr) init(now sim.Time) {
	for i := range q.states {
		q.states[i].Init(qstate.Time(now))
	}
}

// track records a population change: delta bytes, packets and sends at once.
func (q *queueInstr) track(now sim.Time, bytes, packets, sends int64) {
	t := qstate.Time(now)
	q.states[UnitBytes].Track(t, bytes)
	q.states[UnitPackets].Track(t, packets)
	q.states[UnitSends].Track(t, sends)
	q.delays[UnitBytes].Track(t, bytes)
	q.delays[UnitPackets].Track(t, packets)
	q.delays[UnitSends].Track(t, sends)
}

func (q *queueInstr) snapshot(now sim.Time, u Unit) qstate.Snapshot {
	return q.states[u].Snapshot(qstate.Time(now))
}

func (q *queueInstr) size(u Unit) int64 { return q.states[u].Size }

// Instrumentation bundles the three monitored queues of one connection
// endpoint.
type Instrumentation struct {
	unacked  queueInstr
	unread   queueInstr
	ackdelay queueInstr
}

func (in *Instrumentation) init(now sim.Time) {
	in.unacked.init(now)
	in.unread.init(now)
	in.ackdelay.init(now)
}

// Snapshots captures consistent snapshots of the three queues in the given
// unit at virtual time now.
func (in *Instrumentation) Snapshots(now sim.Time, u Unit) (unacked, unread, ackdelay qstate.Snapshot) {
	return in.unacked.snapshot(now, u), in.unread.snapshot(now, u), in.ackdelay.snapshot(now, u)
}

// WireState encodes the three queues' states in the given unit for a
// metadata exchange.
func (in *Instrumentation) WireState(now sim.Time, u Unit) qstate.WireState {
	ua, ur, ad := in.Snapshots(now, u)
	return qstate.WireState{
		Unacked:  qstate.ToWire(ua),
		Unread:   qstate.ToWire(ur),
		AckDelay: qstate.ToWire(ad),
	}
}

// WireTails bundles the three queues' cumulative delay histograms in the
// given unit — the payload of a v2 metadata exchange (qstate.EncodeFrame).
func (in *Instrumentation) WireTails(u Unit) qstate.WireTails {
	return qstate.WireTails{
		Unacked:  in.unacked.delays[u].Hist(),
		Unread:   in.unread.delays[u].Hist(),
		AckDelay: in.ackdelay.delays[u].Hist(),
	}
}

// Sizes returns the instantaneous sizes of the three queues in the given
// unit — the raw sk_wmem_queued/sk_rmem_alloc/(rcv_nxt−rcv_wup) analogues.
func (in *Instrumentation) Sizes(u Unit) (unacked, unread, ackdelay int64) {
	return in.unacked.size(u), in.unread.size(u), in.ackdelay.size(u)
}
