package tcpsim

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"e2ebatch/internal/cpumodel"
	"e2ebatch/internal/netem"
	"e2ebatch/internal/sim"
)

// lossyNet builds a topology with packet loss and RTO-based recovery.
func lossyNet(t *testing.T, seed int64, loss float64) (*sim.Sim, *Conn, *Conn) {
	t.Helper()
	s := sim.New(seed)
	a := NewStack(s, "a")
	b := NewStack(s, "b")
	for _, st := range []*Stack{a, b} {
		st.TxCosts, st.RxCosts = cpumodel.Costs{}, cpumodel.Costs{}
		st.AckTxCost, st.AckRxCost = 0, 0
	}
	link := netem.NewLink(s, "lossy", netem.Config{
		BitsPerSec:  10_000_000_000,
		Propagation: 5 * time.Microsecond,
		LossProb:    loss,
	})
	cfg := DefaultConfig()
	cfg.Nagle = false
	cfg.RTO = 2 * time.Millisecond
	ca, cb := Connect(a, b, link, cfg)
	return s, ca, cb
}

func TestLossRecoverySingleTransfer(t *testing.T) {
	s, ca, cb := lossyNet(t, 3, 0.2)
	var want bytes.Buffer
	var got bytes.Buffer
	cb.OnReadable(func() { got.Write(cb.Read(0)) })
	for i := 0; i < 100; i++ {
		chunk := payload(5000)
		want.Write(chunk)
		ca.Send(chunk)
		s.RunFor(200 * time.Microsecond)
	}
	s.RunUntil(s.Now().Add(30 * time.Second))
	got.Write(cb.Read(0))
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("lossy transfer corrupted: got %d bytes, want %d", got.Len(), want.Len())
	}
	if ca.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions despite 20% loss over ~400 packets")
	}
	if ca.InFlight() != 0 {
		t.Fatalf("in flight = %d after completion", ca.InFlight())
	}
}

func TestLossRecoveryBidirectionalStream(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s, ca, cb := lossyNet(t, 8, 0.1)
	var sentA, gotB, sentB, gotA bytes.Buffer
	cb.OnReadable(func() { gotB.Write(cb.Read(0)) })
	ca.OnReadable(func() { gotA.Write(ca.Read(0)) })
	for i := 0; i < 60; i++ {
		ax := payload(1 + rng.Intn(8000))
		sentA.Write(ax)
		ca.Send(ax)
		bx := payload(1 + rng.Intn(3000))
		sentB.Write(bx)
		cb.Send(bx)
		s.RunFor(time.Duration(rng.Intn(500)) * time.Microsecond)
	}
	s.RunUntil(s.Now().Add(10 * time.Second))
	gotB.Write(cb.Read(0))
	gotA.Write(ca.Read(0))
	if !bytes.Equal(sentA.Bytes(), gotB.Bytes()) {
		t.Fatalf("a->b corrupted: %d vs %d bytes", sentA.Len(), gotB.Len())
	}
	if !bytes.Equal(sentB.Bytes(), gotA.Bytes()) {
		t.Fatalf("b->a corrupted: %d vs %d bytes", sentB.Len(), gotA.Len())
	}
}

func TestLossQueueAccountingBalanced(t *testing.T) {
	s, ca, cb := lossyNet(t, 5, 0.15)
	cb.OnReadable(func() { cb.Read(0) })
	total := 0
	for i := 0; i < 40; i++ {
		n := 500 + i*113
		total += n
		ca.Send(payload(n))
		s.RunFor(200 * time.Microsecond)
	}
	s.RunUntil(s.Now().Add(10 * time.Second))
	ua, _, _ := ca.Snapshots(UnitBytes)
	if ua.Total != int64(total) {
		t.Fatalf("unacked departures %d != sent %d (loss corrupted the counters)", ua.Total, total)
	}
	for u := 0; u < NumUnits; u++ {
		if sz, _, _ := ca.Instr().Sizes(Unit(u)); sz != 0 {
			t.Fatalf("unacked[%v] = %d after recovery", Unit(u), sz)
		}
		if _, ur, _ := cb.Instr().Sizes(Unit(u)); ur != 0 {
			t.Fatalf("unread[%v] = %d after recovery", Unit(u), ur)
		}
	}
}

// TestLossInflatesMeasuredResidency: retransmission delay must show up in
// the unacked queue's Little's-law latency — loss makes the estimate grow,
// it must not silently corrupt it.
func TestLossInflatesMeasuredResidency(t *testing.T) {
	run := func(loss float64) time.Duration {
		s, ca, cb := lossyNet(t, 11, loss)
		cb.OnReadable(func() { cb.Read(0) })
		start, _, _ := ca.Snapshots(UnitBytes)
		for i := 0; i < 50; i++ {
			ca.Send(payload(2000))
			s.RunFor(300 * time.Microsecond)
		}
		s.RunUntil(s.Now().Add(10 * time.Second))
		end, _, _ := ca.Snapshots(UnitBytes)
		a := end.Sub(start)
		if !a.Valid {
			t.Fatal("invalid interval")
		}
		return a.Latency
	}
	clean := run(0)
	lossy := run(0.25)
	if lossy < 3*clean {
		t.Fatalf("unacked latency clean=%v lossy=%v: recovery delay not reflected", clean, lossy)
	}
}

func TestNoRTOOnLosslessStaysQuiet(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	cfg.RTO = 2 * time.Millisecond
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(20000))
	s.RunUntil(sim.Time(time.Second))
	if ca.Stats().Retransmits != 0 {
		t.Fatalf("retransmits = %d on a lossless link", ca.Stats().Retransmits)
	}
	if cb.Readable() != 20000 {
		t.Fatalf("readable = %d", cb.Readable())
	}
}

func TestLosslessWithoutRTOStillPanicsOnGap(t *testing.T) {
	// The no-recovery contract remains: a lossy pipe without RTO is a
	// configuration error surfaced loudly.
	s := sim.New(2)
	a := NewStack(s, "a")
	b := NewStack(s, "b")
	link := netem.NewLink(s, "l", netem.Config{Propagation: time.Microsecond, LossProb: 0.5})
	cfg := DefaultConfig()
	cfg.Nagle = false
	ca, _ := Connect(a, b, link, cfg)
	defer func() {
		if recover() == nil {
			t.Skip("no gap materialized under this seed")
		}
	}()
	for i := 0; i < 50; i++ {
		ca.Send(payload(5000))
		s.RunFor(100 * time.Microsecond)
	}
	s.RunUntil(sim.Time(time.Second))
}
