// Package tcpsim emulates, in userspace and in virtual time, the slice of
// the kernel TCP/IP stack the paper instruments: socket send/receive
// buffers, MSS segmentation with TSO-style coalescing, Nagle's algorithm,
// auto-corking, delayed acknowledgments, receive-window flow control, and —
// crucially — TRACK instrumentation (Algorithm 1) of the three queues the
// estimator consumes:
//
//   - unacked:  bytes/packets/sends written by the app, not yet ACKed
//     (the sk_wmem_queued analogue),
//   - unread:   data delivered by the stack, not yet read by the app
//     (the sk_rmem_alloc analogue),
//   - ackdelay: data received but not yet acknowledged to the peer
//     (the rcv_nxt − rcv_wup analogue).
//
// Each queue is tracked simultaneously in the three "message unit" modes the
// paper discusses (§3.3): bytes, packets and send-calls. Queue-state
// metadata (36-byte wire form, §3.2) can be piggybacked on outgoing
// segments, emulating the TCP-option exchange of §5.
//
// The emulation is deliberately lossless and in-order (back-to-back LAN like
// the paper's testbed); it has no retransmission machinery.
package tcpsim

import (
	"time"

	"e2ebatch/internal/cpumodel"
	"e2ebatch/internal/sim"
)

// Unit selects the "message" granularity used when interpreting a queue, per
// the paper's semantic-gap discussion (§3.3).
type Unit int

const (
	// UnitBytes treats each byte as a message — what the paper's kernel
	// prototype does (§3.4).
	UnitBytes Unit = iota
	// UnitPackets treats each wire segment as a message — the paper's
	// second prototype, "similarly limited".
	UnitPackets
	// UnitSends treats each send(2) invocation as a message — the
	// paper's proposed next step (§3.3).
	UnitSends

	// NumUnits is the number of tracked unit modes.
	NumUnits = 3
)

// String names the unit.
func (u Unit) String() string {
	switch u {
	case UnitBytes:
		return "bytes"
	case UnitPackets:
		return "packets"
	case UnitSends:
		return "sends"
	}
	return "unknown"
}

// Config holds the per-connection protocol parameters. DefaultConfig
// provides kernel-flavoured values; the delayed-ACK timeout is scaled from
// Linux's 40 ms minimum down to the microsecond regime of the simulated
// testbed (see DESIGN.md).
type Config struct {
	// MSS is the maximum segment size (payload bytes per wire segment).
	MSS int
	// TSOMaxBytes caps how many bytes one transmit flush may carry as a
	// single super-packet (the TSO/GSO limit).
	TSOMaxBytes int
	// RecvBuf is the receive socket buffer size in bytes; it bounds the
	// advertised window.
	RecvBuf int64
	// Nagle enables Nagle's algorithm initially; toggle at runtime with
	// SetNoDelay (Redis's TCP_NODELAY corresponds to Nagle == false).
	Nagle bool
	// CorkBytes generalizes Nagle's hold threshold: while data is in
	// flight, available data below this many bytes is held (until an ACK,
	// the threshold filling, or CorkTimeout). Zero means MSS — classic
	// Nagle. Larger values batch more aggressively; an AIMD controller
	// can adjust it at runtime via SetCorkBytes (§5 of the paper).
	CorkBytes int
	// AutoCork, if set, additionally holds sub-MSS data while earlier
	// flushes are still queued on the NIC (the tcp_autocorking analogue).
	AutoCork bool
	// GRO enables receive-side coalescing: data arriving while the
	// receiver's softirq context is backlogged is merged into one
	// processing batch, amortizing the per-delivery cost (the NAPI/GRO
	// analogue). Receive-side batching needs no sender cooperation and
	// composes with — or substitutes for — sender-side corking.
	GRO bool
	// DelAckSegs is the number of received segments that forces an
	// immediate ACK (2 in the kernel).
	DelAckSegs int
	// DelAckTimeout bounds how long an ACK may be delayed.
	DelAckTimeout time.Duration
	// CorkTimeout bounds how long Nagle/auto-corking may hold data
	// (the "200 ms elapse" escape hatch in §2).
	CorkTimeout time.Duration
	// HeaderBytes is the per-wire-segment header overhead (Ethernet +
	// IP + TCP).
	HeaderBytes int
	// RTO is the retransmission timeout: with a lossy link, unACKed data
	// is retransmitted (go-back-N) after this long without progress.
	// Zero disables retransmission — acceptable only on lossless links,
	// where the emulation then has no recovery machinery to pay for.
	RTO time.Duration
	// Exchange enables piggybacking local queue-state metadata on
	// outgoing segments.
	Exchange bool
	// ExchangeUnit selects which unit's counters are exchanged.
	ExchangeUnit Unit
	// ExchangeInterval rate-limits the exchange; zero attaches state to
	// every outgoing segment ("on-demand" per §5 is the caller invoking
	// RequestExchange).
	ExchangeInterval time.Duration
	// ExchangeTails upgrades the exchange to the v2 frame: the cumulative
	// per-queue delay histograms (qstate.WireTails) ride along with the
	// 36-byte counters, enabling end-to-end tail estimation. Off (the
	// default — and in every pre-existing experiment) the endpoint behaves
	// exactly like a v1 peer: the mean estimate is unaffected and the
	// receiving estimator's tail abstains.
	ExchangeTails bool
}

// DefaultConfig returns kernel-like defaults (Nagle on, like the kernel —
// Redis turns it off explicitly).
func DefaultConfig() Config {
	return Config{
		MSS:           1448,
		TSOMaxBytes:   64 << 10,
		RecvBuf:       4 << 20,
		Nagle:         true,
		DelAckSegs:    2,
		DelAckTimeout: 500 * time.Microsecond,
		CorkTimeout:   200 * time.Millisecond,
		HeaderBytes:   66,
		Exchange:      true,
		ExchangeUnit:  UnitBytes,
	}
}

// Stack is one host's network stack context: the two pinned execution
// contexts from the paper's methodology (application thread and
// IRQ/softIRQ), plus the host's processing-cost profile.
type Stack struct {
	Sim  *sim.Sim
	Name string

	// AppCPU runs application work (request parsing, handling); the
	// kv server and load generator charge it explicitly.
	AppCPU *cpumodel.CPU
	// SoftirqCPU runs stack work: transmit flushes, receive processing,
	// ACK generation.
	SoftirqCPU *cpumodel.CPU

	// TxCosts prices a transmit flush: PerBatch per flush (skb alloc,
	// doorbell), PerItem per MSS segment (checksum, descriptor), PerByte
	// for copies.
	TxCosts cpumodel.Costs
	// RxCosts prices receive processing of one arriving super-packet.
	RxCosts cpumodel.Costs
	// AckTxCost and AckRxCost price pure-ACK generation and processing.
	AckTxCost time.Duration
	AckRxCost time.Duration
}

// NewStack returns a host stack with its own app and softirq CPUs and
// modest default costs; callers calibrate the cost fields for experiments.
func NewStack(s *sim.Sim, name string) *Stack {
	return &Stack{
		Sim:        s,
		Name:       name,
		AppCPU:     cpumodel.New(s, name+"/app"),
		SoftirqCPU: cpumodel.New(s, name+"/softirq"),
		TxCosts:    cpumodel.Costs{PerBatch: 600 * time.Nanosecond, PerItem: 150 * time.Nanosecond, PerByteNS: 0.25},
		RxCosts:    cpumodel.Costs{PerBatch: 800 * time.Nanosecond, PerItem: 200 * time.Nanosecond, PerByteNS: 0.25},
		AckTxCost:  300 * time.Nanosecond,
		AckRxCost:  300 * time.Nanosecond,
	}
}
