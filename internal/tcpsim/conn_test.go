package tcpsim

import (
	"bytes"
	"testing"
	"time"

	"e2ebatch/internal/cpumodel"
	"e2ebatch/internal/netem"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
)

// testNet builds a two-host topology with zero processing costs and a fast,
// low-latency link so protocol behaviour can be asserted in isolation.
func testNet(t testing.TB, cfg Config) (*sim.Sim, *Conn, *Conn) {
	t.Helper()
	s := sim.New(1)
	a := NewStack(s, "client")
	b := NewStack(s, "server")
	for _, st := range []*Stack{a, b} {
		st.TxCosts = cpumodel.Costs{}
		st.RxCosts = cpumodel.Costs{}
		st.AckTxCost = 0
		st.AckRxCost = 0
	}
	link := netem.NewLink(s, "lnk", netem.Config{Propagation: time.Microsecond})
	ca, cb := Connect(a, b, link, cfg)
	return s, ca, cb
}

func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.Nagle = true
	return cfg
}

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + i%26)
	}
	return b
}

func TestSmallSendNothingInFlightGoesImmediately(t *testing.T) {
	s, ca, cb := testNet(t, fastCfg())
	ca.Send(payload(100)) // Nagle enabled, but nothing in flight
	s.RunUntil(sim.Time(10 * time.Microsecond))
	if cb.Readable() != 100 {
		t.Fatalf("server readable = %d, want 100", cb.Readable())
	}
	if ca.Stats().NagleHolds != 0 {
		t.Fatal("Nagle held a send with nothing in flight")
	}
}

func TestNagleHoldsTailUntilAck(t *testing.T) {
	cfg := fastCfg()
	s, ca, cb := testNet(t, cfg)
	// 16 KiB: 11 full MSS go out, 456-byte tail is held.
	ca.Send(payload(16384))
	s.RunUntil(sim.Time(1500 * time.Nanosecond)) // before the ack returns at 2µs
	full := int64(16384/cfg.MSS) * int64(cfg.MSS)
	if got := ca.InFlight(); got != full {
		t.Fatalf("in flight = %d, want %d (full segments only)", got, full)
	}
	if ca.Unsent() != 16384-full {
		t.Fatalf("unsent = %d, want tail %d", ca.Unsent(), 16384-full)
	}
	if ca.Stats().NagleHolds == 0 {
		t.Fatal("expected a Nagle hold")
	}
	// After the ack round trip the tail must flow.
	s.RunUntil(sim.Time(50 * time.Microsecond))
	if cb.Readable() != 16384 {
		t.Fatalf("server readable = %d, want 16384 after ack releases tail", cb.Readable())
	}
	if ca.Stats().CorkTimeouts != 0 {
		t.Fatal("tail released by cork timeout, want ack release")
	}
}

func TestNoDelaySendsTailImmediately(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(16384))
	s.RunUntil(sim.Time(10 * time.Microsecond))
	if cb.Readable() != 16384 {
		t.Fatalf("server readable = %d, want 16384 without ack wait", cb.Readable())
	}
	if ca.Stats().NagleHolds != 0 {
		t.Fatal("NODELAY endpoint recorded a Nagle hold")
	}
}

func TestSetNoDelayFlushesHeldTail(t *testing.T) {
	s, ca, cb := testNet(t, fastCfg())
	ca.Send(payload(16384))
	s.RunUntil(sim.Time(1500 * time.Nanosecond))
	if ca.Unsent() == 0 {
		t.Fatal("precondition: tail should be held")
	}
	ca.SetNoDelay(true)
	if !ca.NoDelay() {
		t.Fatal("NoDelay() = false after SetNoDelay(true)")
	}
	s.RunUntil(sim.Time(10 * time.Microsecond))
	if cb.Readable() != 16384 {
		t.Fatalf("server readable = %d after SetNoDelay flush", cb.Readable())
	}
}

func TestCorkTimeoutReleasesTail(t *testing.T) {
	cfg := fastCfg()
	cfg.CorkTimeout = 30 * time.Microsecond
	cfg.DelAckTimeout = time.Hour // never ack via timer
	cfg.DelAckSegs = 1000         // never ack via count
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(100)) // goes out (nothing in flight), never acked
	ca.Send(payload(50))  // held: in-flight data
	s.RunUntil(sim.Time(20 * time.Microsecond))
	if cb.Readable() != 100 {
		t.Fatalf("readable = %d, want first send only", cb.Readable())
	}
	s.RunUntil(sim.Time(100 * time.Microsecond))
	if cb.Readable() != 150 {
		t.Fatalf("readable = %d, want 150 after cork timeout", cb.Readable())
	}
	if ca.Stats().CorkTimeouts != 1 {
		t.Fatalf("cork timeouts = %d, want 1", ca.Stats().CorkTimeouts)
	}
}

func TestDataArrivesIntact(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	s, ca, cb := testNet(t, cfg)
	want := payload(40000) // several TSO flushes
	ca.Send(want)
	s.RunUntil(sim.Time(time.Millisecond))
	got := cb.Read(0)
	if !bytes.Equal(got, want) {
		t.Fatalf("payload corrupted: got %d bytes, want %d", len(got), len(want))
	}
	if cb.Readable() != 0 {
		t.Fatal("leftover readable after full read")
	}
}

func TestReadPartial(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(1000))
	s.RunUntil(sim.Time(100 * time.Microsecond))
	first := cb.Read(300)
	if len(first) != 300 {
		t.Fatalf("partial read = %d, want 300", len(first))
	}
	rest := cb.Read(0)
	if len(rest) != 700 {
		t.Fatalf("rest = %d, want 700", len(rest))
	}
	if cb.Read(10) != nil {
		t.Fatal("read from empty buffer returned data")
	}
}

func TestDelayedAckSecondSegmentForcesAck(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	cfg.DelAckTimeout = time.Hour
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(cfg.MSS)) // one full segment: ack delayed
	s.RunUntil(sim.Time(20 * time.Microsecond))
	if ca.InFlight() == 0 {
		t.Fatal("single segment was acked without timer or second segment")
	}
	ca.Send(payload(cfg.MSS)) // second segment forces the ack
	s.RunUntil(sim.Time(60 * time.Microsecond))
	if ca.InFlight() != 0 {
		t.Fatalf("in flight = %d after second segment, want 0", ca.InFlight())
	}
	_, _, ackdelay := cb.Snapshots(UnitBytes)
	_ = ackdelay
	if cb.Stats().DelAckTimeouts != 0 {
		t.Fatal("delack fired by timer, want count trigger")
	}
}

func TestDelayedAckTimerFires(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	cfg.DelAckTimeout = 40 * time.Microsecond
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(cfg.MSS))
	s.RunUntil(sim.Time(20 * time.Microsecond))
	if ca.InFlight() == 0 {
		t.Fatal("acked too early")
	}
	s.RunUntil(sim.Time(200 * time.Microsecond))
	if ca.InFlight() != 0 {
		t.Fatal("delack timer never fired")
	}
	if cb.Stats().DelAckTimeouts != 1 {
		t.Fatalf("delack timeouts = %d, want 1", cb.Stats().DelAckTimeouts)
	}
}

func TestBigSuperPacketAcksImmediately(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	cfg.DelAckTimeout = time.Hour
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(10 * cfg.MSS)) // one flush, 10 segments >= DelAckSegs
	s.RunUntil(sim.Time(100 * time.Microsecond))
	if ca.InFlight() != 0 {
		t.Fatalf("in flight = %d, want 0 (multi-segment flush acks immediately)", ca.InFlight())
	}
	if cb.Stats().PureAcks == 0 {
		t.Fatal("no pure ack was sent")
	}
}

func TestOnReadableFiresOncePerDeliveryBurst(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	s, ca, cb := testNet(t, cfg)
	fires := 0
	cb.OnReadable(func() { fires++ })
	ca.Send(payload(100))
	s.RunUntil(sim.Time(50 * time.Microsecond))
	if fires != 1 {
		t.Fatalf("OnReadable fired %d times, want 1", fires)
	}
	ca.Send(payload(100))
	s.RunUntil(sim.Time(100 * time.Microsecond))
	if fires != 2 {
		t.Fatalf("OnReadable fired %d times, want 2", fires)
	}
}

func TestFlowControlStallsAndRecovers(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	cfg.RecvBuf = 8192
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(100000))
	s.RunUntil(sim.Time(time.Millisecond))
	if cb.Readable() > int(cfg.RecvBuf) {
		t.Fatalf("receive buffer overfilled: %d > %d", cb.Readable(), cfg.RecvBuf)
	}
	if ca.Stats().WindowStalls == 0 {
		t.Fatal("expected window stalls")
	}
	// Drain in pieces; everything must eventually arrive.
	total := 0
	for i := 0; i < 1000 && total < 100000; i++ {
		total += len(cb.Read(0))
		s.RunFor(100 * time.Microsecond)
	}
	if total != 100000 {
		t.Fatalf("total received = %d, want 100000", total)
	}
}

func TestUnackedQueueTracking(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	s, ca, _ := testNet(t, cfg)
	ua0, _, _ := ca.Snapshots(UnitBytes)
	ca.Send(payload(2000))
	un, _, _ := ca.Instr().Sizes(UnitBytes)
	if un != 2000 {
		t.Fatalf("unacked bytes = %d, want 2000", un)
	}
	unS, _, _ := ca.Instr().Sizes(UnitSends)
	if unS != 1 {
		t.Fatalf("unacked sends = %d, want 1", unS)
	}
	s.RunUntil(sim.Time(time.Millisecond))
	un, _, _ = ca.Instr().Sizes(UnitBytes)
	if un != 0 {
		t.Fatalf("unacked bytes = %d after ack, want 0", un)
	}
	unP, _, _ := ca.Instr().Sizes(UnitPackets)
	if unP != 0 {
		t.Fatalf("unacked packets = %d after ack, want 0", unP)
	}
	ua1, _, _ := ca.Snapshots(UnitBytes)
	avgs := ua1.Sub(ua0)
	if !avgs.Valid || avgs.Departures != 2000 {
		t.Fatalf("unacked avgs = %+v, want 2000 departures", avgs)
	}
	if avgs.Latency <= 0 || avgs.Latency > time.Millisecond {
		t.Fatalf("unacked latency = %v, implausible", avgs.Latency)
	}
}

func TestUnreadQueueTracksReads(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(3000))
	s.RunUntil(sim.Time(100 * time.Microsecond))
	_, ur, _ := cb.Instr().Sizes(UnitBytes)
	if ur != 3000 {
		t.Fatalf("unread bytes = %d, want 3000", ur)
	}
	_, urM, _ := cb.Instr().Sizes(UnitSends)
	if urM != 1 {
		t.Fatalf("unread sends = %d, want 1", urM)
	}
	cb.Read(1000)
	_, ur, _ = cb.Instr().Sizes(UnitBytes)
	if ur != 2000 {
		t.Fatalf("unread bytes = %d after partial read, want 2000", ur)
	}
	_, urM, _ = cb.Instr().Sizes(UnitSends)
	if urM != 1 {
		t.Fatalf("unread sends = %d, want 1 (message not fully consumed)", urM)
	}
	cb.Read(0)
	_, ur, _ = cb.Instr().Sizes(UnitBytes)
	_, urM, _ = cb.Instr().Sizes(UnitSends)
	if ur != 0 || urM != 0 {
		t.Fatalf("unread after full read: bytes=%d sends=%d", ur, urM)
	}
}

func TestAckDelayQueueDrainsOnAck(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	cfg.DelAckTimeout = 40 * time.Microsecond
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(500))
	s.RunUntil(sim.Time(10 * time.Microsecond))
	_, _, ad := cb.Instr().Sizes(UnitBytes)
	if ad != 500 {
		t.Fatalf("ackdelay = %d before ack, want 500", ad)
	}
	s.RunUntil(sim.Time(200 * time.Microsecond))
	_, _, ad = cb.Instr().Sizes(UnitBytes)
	if ad != 0 {
		t.Fatalf("ackdelay = %d after ack, want 0", ad)
	}
}

func TestMetadataExchangeArrives(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	s, ca, cb := testNet(t, cfg)
	exchanges := 0
	cb.OnPeerState(func(ws qstate.WireState) { exchanges++ })
	ca.Send(payload(1000))
	s.RunUntil(sim.Time(100 * time.Microsecond))
	if exchanges == 0 {
		t.Fatal("no metadata exchange arrived with a data segment")
	}
	if _, at, ok := cb.PeerWireState(); !ok || at < 0 {
		t.Fatalf("PeerWireState = %v, %v", at, ok)
	}
	// After the (delayed) ack returns, a forced exchange must carry the
	// client's 1000 departed unacked-bytes.
	s.RunUntil(sim.Time(2 * time.Millisecond))
	ca.RequestExchange()
	s.RunFor(100 * time.Microsecond)
	ws, _, _ := cb.PeerWireState()
	if ws.Unacked.Total != 1000 {
		t.Fatalf("peer-visible unacked total = %d, want 1000", ws.Unacked.Total)
	}
}

func TestExchangeIntervalRateLimits(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	cfg.ExchangeInterval = time.Second // effectively once
	s, ca, cb := testNet(t, cfg)
	for i := 0; i < 10; i++ {
		ca.Send(payload(100))
		s.RunFor(50 * time.Microsecond)
	}
	cb.Read(0)
	if got := ca.Stats().StatesExchanged; got != 1 {
		t.Fatalf("exchanges = %d, want 1 (rate limited)", got)
	}
}

func TestRequestExchangeForcesState(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	cfg.ExchangeInterval = time.Hour
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(100))
	s.RunUntil(sim.Time(100 * time.Microsecond))
	before := ca.Stats().StatesExchanged
	ca.RequestExchange()
	s.RunFor(100 * time.Microsecond)
	if got := ca.Stats().StatesExchanged; got != before+1 {
		t.Fatalf("exchanges = %d, want %d after RequestExchange", got, before+1)
	}
	if _, _, ok := cb.PeerWireState(); !ok {
		t.Fatal("peer never saw the forced exchange")
	}
}

func TestExchangeDisabled(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	cfg.Exchange = false
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(5000))
	s.RunUntil(sim.Time(time.Millisecond))
	if ca.Stats().StatesExchanged != 0 {
		t.Fatal("exchange occurred despite being disabled")
	}
	if _, _, ok := cb.PeerWireState(); ok {
		t.Fatal("peer state present despite disabled exchange")
	}
}

func TestPingPongLatencySanity(t *testing.T) {
	// A full request/response round trip over an otherwise idle network
	// should take roughly 2×propagation plus processing epsilon.
	cfg := fastCfg()
	cfg.Nagle = false
	s, ca, cb := testNet(t, cfg)
	var done sim.Time
	cb.OnReadable(func() {
		cb.Read(0)
		cb.Send(payload(5)) // tiny response
	})
	ca.OnReadable(func() {
		ca.Read(0)
		done = s.Now()
	})
	ca.Send(payload(100))
	s.RunUntil(sim.Time(time.Millisecond))
	if done == 0 {
		t.Fatal("response never arrived")
	}
	rtt := done.Duration()
	if rtt < 2*time.Microsecond || rtt > 20*time.Microsecond {
		t.Fatalf("round trip = %v, want ~2µs-20µs", rtt)
	}
}

func TestPipelinedRequestsCoalesceUnderNagle(t *testing.T) {
	// Many small sends while data is in flight must coalesce into fewer,
	// larger flushes — the amortization mechanism of the paper.
	cfg := fastCfg()
	s, ca, _ := testNet(t, cfg)
	const sends, size = 64, 200
	for i := 0; i < sends; i++ {
		ca.Send(payload(size))
	}
	s.RunUntil(sim.Time(time.Millisecond))
	st := ca.Stats()
	if st.Sends != sends {
		t.Fatalf("sends = %d", st.Sends)
	}
	if st.Flushes >= sends/2 {
		t.Fatalf("flushes = %d for %d sends; Nagle did not coalesce", st.Flushes, sends)
	}
}

func TestNoDelayDoesNotCoalesceIdleSends(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	s, ca, _ := testNet(t, cfg)
	for i := 0; i < 10; i++ {
		ca.Send(payload(100))
		s.RunFor(100 * time.Microsecond) // idle between sends
	}
	if got := ca.Stats().Flushes; got != 10 {
		t.Fatalf("flushes = %d, want 10 (one per send)", got)
	}
}

func TestAutoCorkHoldsWhileNICBusy(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	cfg.AutoCork = true
	cfg.CorkTimeout = 50 * time.Microsecond
	s := sim.New(1)
	a := NewStack(s, "a")
	b := NewStack(s, "b")
	a.TxCosts, a.RxCosts = cpumodel.Costs{}, cpumodel.Costs{}
	b.TxCosts, b.RxCosts = cpumodel.Costs{}, cpumodel.Costs{}
	// Slow link: the first packet occupies the NIC for a long time.
	link := netem.NewLink(s, "slow", netem.Config{BitsPerSec: 10_000_000, Propagation: time.Microsecond})
	ca, _ := Connect(a, b, link, cfg)
	ca.Send(payload(1000)) // ~850µs serialization with headers
	s.RunFor(time.Microsecond)
	ca.Send(payload(50)) // NODELAY, but autocork holds: NIC busy
	s.RunFor(10 * time.Microsecond)
	if ca.Unsent() != 50 {
		t.Fatalf("unsent = %d, want 50 held by autocork", ca.Unsent())
	}
	if ca.Stats().NagleHolds == 0 {
		t.Fatal("no hold recorded")
	}
}

func TestSegmentCountsMatchMSS(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	s, ca, _ := testNet(t, cfg)
	n := 5*cfg.MSS + 7
	ca.Send(payload(n))
	s.RunUntil(sim.Time(time.Millisecond))
	if got := ca.Stats().Segments; got != 6 {
		t.Fatalf("segments = %d, want 6", got)
	}
}

func TestTSOMaxBytesLimitsFlushSize(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	cfg.TSOMaxBytes = 4 * cfg.MSS
	s, ca, _ := testNet(t, cfg)
	ca.Send(payload(16 * cfg.MSS))
	s.RunUntil(sim.Time(time.Millisecond))
	if got := ca.Stats().Flushes; got != 4 {
		t.Fatalf("flushes = %d, want 4 with TSO cap", got)
	}
}

func TestZeroLengthSendIsNoOp(t *testing.T) {
	s, ca, _ := testNet(t, fastCfg())
	ca.Send(nil)
	ca.Send([]byte{})
	s.RunUntil(sim.Time(100 * time.Microsecond))
	if ca.Stats().Sends != 0 || ca.Stats().Flushes != 0 {
		t.Fatalf("zero-length send had effects: %+v", ca.Stats())
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	s := sim.New(1)
	a, b := NewStack(s, "a"), NewStack(s, "b")
	link := netem.NewLink(s, "l", netem.Config{})
	bad := DefaultConfig()
	bad.MSS = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Connect(a, b, link, bad)
}

func TestMismatchedSimulatorsPanics(t *testing.T) {
	s1, s2 := sim.New(1), sim.New(2)
	a, b := NewStack(s1, "a"), NewStack(s2, "b")
	link := netem.NewLink(s1, "l", netem.Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched sims did not panic")
		}
	}()
	Connect(a, b, link, DefaultConfig())
}

func TestCloseCancelsTimers(t *testing.T) {
	cfg := fastCfg()
	cfg.CorkTimeout = 10 * time.Microsecond
	s, ca, _ := testNet(t, cfg)
	ca.Send(payload(16384)) // tail held, cork armed
	ca.Close()
	s.RunUntil(sim.Time(time.Millisecond))
	if ca.Stats().CorkTimeouts != 0 {
		t.Fatal("cork timer fired after Close")
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	cfg := fastCfg()
	cfg.Nagle = false
	s, ca, cb := testNet(t, cfg)
	ca.Send(payload(10000))
	cb.Send(payload(20000))
	s.RunUntil(sim.Time(5 * time.Millisecond))
	if cb.Readable() != 10000 {
		t.Fatalf("server readable = %d", cb.Readable())
	}
	if ca.Readable() != 20000 {
		t.Fatalf("client readable = %d", ca.Readable())
	}
}

func TestPopLE(t *testing.T) {
	s := []int64{10, 20, 30, 40}
	if n := popLE(&s, 25); n != 2 || len(s) != 2 || s[0] != 30 {
		t.Fatalf("popLE: n=%d s=%v", n, s)
	}
	if n := popLE(&s, 5); n != 0 {
		t.Fatalf("popLE below min: n=%d", n)
	}
	if n := popLE(&s, 100); n != 2 || len(s) != 0 {
		t.Fatalf("popLE all: n=%d s=%v", n, s)
	}
	empty := []int64{}
	if n := popLE(&empty, 1); n != 0 {
		t.Fatal("popLE on empty")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (Stats, Stats) {
		cfg := fastCfg()
		s, ca, cb := testNet(t, cfg)
		cb.OnReadable(func() {
			if cb.Readable() >= 100 {
				cb.Read(0)
				cb.Send(payload(10))
			}
		})
		for i := 0; i < 50; i++ {
			ca.Send(payload(100))
			s.RunFor(7 * time.Microsecond)
		}
		s.RunUntil(sim.Time(10 * time.Millisecond))
		return ca.Stats(), cb.Stats()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("nondeterministic: %+v vs %+v / %+v vs %+v", a1, a2, b1, b2)
	}
}
