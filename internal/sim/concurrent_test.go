package sim

import (
	"sync"
	"testing"
	"time"
)

// runTrace drives one simulator through a self-rescheduling workload with
// random intervals and returns the exact sequence of (fire time, rng draw)
// pairs it produced.
func runTrace(seed int64, events int) []int64 {
	s := New(seed)
	trace := make([]int64, 0, 2*events)
	n := 0
	var tick func()
	tick = func() {
		trace = append(trace, int64(s.Now()), s.Rand().Int63n(1<<30))
		n++
		if n < events {
			s.After(time.Duration(1+s.Rand().Intn(5000))*time.Microsecond, tick)
		}
	}
	s.After(time.Microsecond, tick)
	s.Run()
	return trace
}

// TestConcurrentSimsIndependent runs many same-seeded simulators on
// separate goroutines and requires every trace to be identical to the
// serial one: distinct Sim instances share nothing (no package-level RNG,
// no global clock), which is the property the parallel experiment runner in
// internal/figures is built on. Run under -race this also proves the
// engine's state is properly confined.
func TestConcurrentSimsIndependent(t *testing.T) {
	const workers = 8
	const events = 2000
	want := runTrace(42, events)

	traces := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			traces[w] = runTrace(42, events)
		}(w)
	}
	wg.Wait()

	for w, got := range traces {
		if len(got) != len(want) {
			t.Fatalf("worker %d: trace length %d, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("worker %d: trace diverges at %d: got %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

// TestConcurrentSimsDistinctSeeds checks the complementary property: two
// simulators seeded differently do not accidentally share a random stream.
func TestConcurrentSimsDistinctSeeds(t *testing.T) {
	a := runTrace(1, 200)
	b := runTrace(2, 200)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical traces")
	}
}
