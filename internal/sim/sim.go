// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives all userspace emulation in this repository: a virtual
// clock measured in nanoseconds, an event heap ordered by (time, insertion
// sequence), cancellable timers, and a seeded random source. Determinism is
// a design goal — running the same scenario twice produces byte-identical
// results, which is what makes the estimator-accuracy experiments
// reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It intentionally mirrors time.Duration's representation so the
// two convert trivially.
type Time int64

// Duration converts a virtual instant into the elapsed time.Duration since
// the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier.
func (t Time) Sub(earlier Time) time.Duration { return time.Duration(t - earlier) }

// String formats the instant as a duration since the epoch.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Events are managed by the engine; user code
// holds *Event only to cancel it.
type Event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among simultaneous events
	index  int    // heap index, -1 when not queued
	fn     func()
	cancel bool
}

// Cancelled reports whether the event was cancelled before it fired.
func (e *Event) Cancelled() bool { return e.cancel }

// eventHeap implements container/heap ordered by (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. The zero value is not ready for use;
// construct with New.
//
// A Sim (clock, event heap and random source) is confined to a single
// goroutine: all scheduling and Run/Step calls must come from the same
// goroutine, and the *rand.Rand returned by Rand must never be shared with
// another simulator. Distinct Sim instances are fully independent — running
// many of them on separate goroutines is safe and is how the figures
// package parallelizes experiment sweeps.
type Sim struct {
	now     Time
	seq     uint64
	heap    eventHeap
	rng     *rand.Rand
	stopped bool

	// Stats
	fired uint64
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Pending returns the number of scheduled, uncancelled events.
func (s *Sim) Pending() int {
	n := 0
	for _, e := range s.heap {
		if !e.cancel {
			n++
		}
	}
	return n
}

// Fired returns the total number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it indicates a logic error in the model, and silently clamping would warp
// measured delays.
func (s *Sim) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event func")
	}
	e := &Event{at: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.heap, e)
	return e
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Sim) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.cancel || e.index < 0 {
		if e != nil {
			e.cancel = true
		}
		return
	}
	e.cancel = true
	heap.Remove(&s.heap, e.index)
}

// Step executes the next event, advancing the clock to its scheduled time.
// It reports whether an event was executed.
func (s *Sim) Step() bool {
	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (s *Sim) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil executes events with scheduled time <= t, then advances the clock
// to exactly t (even if the queue drained earlier). Events scheduled at
// exactly t do run.
func (s *Sim) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.heap) == 0 {
			break
		}
		next := s.peek()
		if next == nil || next.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor is shorthand for RunUntil(Now()+d).
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// Stop makes the currently executing Run/RunUntil return after the current
// event completes.
func (s *Sim) Stop() { s.stopped = true }

func (s *Sim) peek() *Event {
	for len(s.heap) > 0 {
		if s.heap[0].cancel {
			heap.Pop(&s.heap)
			continue
		}
		return s.heap[0]
	}
	return nil
}

// NextAt returns the scheduled time of the next pending event and whether
// one exists.
func (s *Sim) NextAt() (Time, bool) {
	e := s.peek()
	if e == nil {
		return 0, false
	}
	return e.at, true
}
