package sim

import "time"

// Ticker invokes a callback at a fixed virtual-time period, emulating the
// kernel tick granularity the paper suggests for batching-toggle decisions
// (§5 "Toggling Granularity"). Stop it to cease firing.
type Ticker struct {
	sim    *Sim
	period time.Duration
	fn     func(now Time)
	ev     *Event
	stop   bool
}

// NewTicker starts a ticker firing every period, first at now+period.
// It panics if period is not positive.
func NewTicker(s *Sim, period time.Duration, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{sim: s, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.sim.After(t.period, func() {
		if t.stop {
			return
		}
		t.fn(t.sim.Now())
		if !t.stop {
			t.arm()
		}
	})
}

// Stop cancels future ticks. Safe to call multiple times and from within the
// tick callback.
func (t *Ticker) Stop() {
	t.stop = true
	if t.ev != nil {
		t.sim.Cancel(t.ev)
	}
}

// Period returns the tick period.
func (t *Ticker) Period() time.Duration { return t.period }
