package sim

import (
	"testing"
	"time"
)

func TestNowStartsAtZero(t *testing.T) {
	s := New(1)
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestAtRunsInOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO among ties)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New(1)
	var at Time
	s.At(50, func() {
		s.After(25*time.Nanosecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 75 {
		t.Fatalf("fired at %v, want 75", at)
	}
}

func TestAfterNegativeClampsToNow(t *testing.T) {
	s := New(1)
	fired := false
	s.At(10, func() {
		s.After(-time.Second, func() { fired = s.Now() == 10 })
	})
	s.Run()
	if !fired {
		t.Fatal("negative After did not fire at current time")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestNilFuncPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("nil event func did not panic")
		}
	}()
	s.At(1, nil)
}

func TestCancelPreventsExecution(t *testing.T) {
	s := New(1)
	fired := false
	e := s.At(10, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	s := New(1)
	e := s.At(10, func() {})
	s.Cancel(e)
	s.Cancel(e) // must not panic
	s.Cancel(nil)
	s.Run()
}

func TestCancelFromWithinEarlierEvent(t *testing.T) {
	s := New(1)
	fired := false
	var e *Event
	e = s.At(20, func() { fired = true })
	s.At(10, func() { s.Cancel(e) })
	s.Run()
	if fired {
		t.Fatal("event cancelled at t=10 still fired at t=20")
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	s := New(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if s.Now() != 25 {
		t.Fatalf("Now() = %v, want 25", s.Now())
	}
	s.RunUntil(40) // inclusive boundary
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all four after RunUntil(40)", fired)
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	s := New(1)
	s.RunUntil(1000)
	if s.Now() != 1000 {
		t.Fatalf("Now() = %v, want 1000", s.Now())
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	s := New(1)
	s.RunUntil(100)
	s.RunFor(50 * time.Nanosecond)
	if s.Now() != 150 {
		t.Fatalf("Now() = %v, want 150", s.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Run should stop mid-way)", count)
	}
	s.Run() // resumes
	if count != 10 {
		t.Fatalf("count = %d, want 10 after resuming", count)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New(1)
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	s := New(1)
	e1 := s.At(1, func() {})
	s.At(2, func() {})
	s.Cancel(e1)
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1", got)
	}
}

func TestNextAt(t *testing.T) {
	s := New(1)
	if _, ok := s.NextAt(); ok {
		t.Fatal("NextAt on empty queue reported an event")
	}
	e := s.At(42, func() {})
	if at, ok := s.NextAt(); !ok || at != 42 {
		t.Fatalf("NextAt = %v,%v want 42,true", at, ok)
	}
	s.Cancel(e)
	if _, ok := s.NextAt(); ok {
		t.Fatal("NextAt reported a cancelled event")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var out []int64
		var rec func()
		n := 0
		rec = func() {
			out = append(out, int64(s.Now()), s.rng.Int63n(1000))
			n++
			if n < 100 {
				s.After(time.Duration(1+s.rng.Intn(50))*time.Nanosecond, rec)
			}
		}
		s.At(0, rec)
		s.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestFiredCounts(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.Fired() != 5 {
		t.Fatalf("Fired() = %d, want 5", s.Fired())
	}
}

func TestTimeArithmetic(t *testing.T) {
	var a Time = 1500
	if a.Add(500*time.Nanosecond) != 2000 {
		t.Fatal("Add wrong")
	}
	if a.Sub(500) != time.Microsecond {
		t.Fatal("Sub wrong")
	}
	if a.Duration() != 1500*time.Nanosecond {
		t.Fatal("Duration wrong")
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	s := New(1)
	var fires []Time
	tk := NewTicker(s, 10*time.Nanosecond, func(now Time) { fires = append(fires, now) })
	s.RunUntil(35)
	tk.Stop()
	s.RunUntil(100)
	want := []Time{10, 20, 30}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	s := New(1)
	count := 0
	var tk *Ticker
	tk = NewTicker(s, 5*time.Nanosecond, func(Time) {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	s.RunUntil(1000)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	NewTicker(s, 0, func(Time) {})
}

func BenchmarkScheduleAndFire(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Nanosecond, func() {})
		s.Step()
	}
}
