package shard

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"e2ebatch/internal/qstate"
)

const tick = time.Millisecond

func at(n int64) qstate.Time { return qstate.Time(n * int64(tick)) }

func TestWheelFiresAtDueTick(t *testing.T) {
	w := NewWheel(0, tick)
	var fires []qstate.Time
	tm := &Timer{Fn: func(now qstate.Time) { fires = append(fires, now) }}
	w.Arm(tm, 5*tick)
	w.Advance(at(4))
	if len(fires) != 0 {
		t.Fatalf("fired early: %v", fires)
	}
	if !tm.Armed() {
		t.Fatal("timer should still be armed")
	}
	w.Advance(at(5))
	if len(fires) != 1 || fires[0] != at(5) {
		t.Fatalf("fires = %v, want one at %v", fires, at(5))
	}
	if tm.Armed() || w.Armed() != 0 {
		t.Fatalf("one-shot still armed after fire (Armed=%v wheel=%d)", tm.Armed(), w.Armed())
	}
}

func TestWheelSubTickDelayRoundsUpToOneTick(t *testing.T) {
	w := NewWheel(0, tick)
	fired := 0
	tm := &Timer{Fn: func(qstate.Time) { fired++ }}
	w.Arm(tm, 0)
	w.Arm(tm, time.Nanosecond) // re-arm replaces the schedule
	if w.Armed() != 1 {
		t.Fatalf("re-arm duplicated the timer: Armed=%d", w.Armed())
	}
	w.Advance(at(1))
	if fired != 1 {
		t.Fatalf("fired %d times, want 1 (min one-tick delay)", fired)
	}
}

func TestWheelPeriodicFiresEveryPeriodAndCancels(t *testing.T) {
	w := NewWheel(0, tick)
	var fires []qstate.Time
	tm := &Timer{}
	tm.Fn = func(now qstate.Time) {
		fires = append(fires, now)
		if len(fires) == 4 {
			w.Cancel(tm)
		}
	}
	w.ArmPeriodic(tm, 3*tick, 2*tick)
	w.Advance(at(20))
	want := []qstate.Time{at(3), at(5), at(7), at(9)}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
	if w.Armed() != 0 {
		t.Fatalf("canceled periodic timer still armed: %d", w.Armed())
	}
}

func TestWheelCancelBeforeFire(t *testing.T) {
	w := NewWheel(0, tick)
	fired := false
	tm := &Timer{Fn: func(qstate.Time) { fired = true }}
	w.Arm(tm, 3*tick)
	w.Cancel(tm)
	w.Cancel(tm) // idempotent
	w.Advance(at(10))
	if fired || w.Armed() != 0 {
		t.Fatalf("canceled timer fired=%v armed=%d", fired, w.Armed())
	}
}

func TestWheelCallbackCancelsSiblingInSameSlot(t *testing.T) {
	w := NewWheel(0, tick)
	var a, b Timer
	bFired := false
	a.Fn = func(qstate.Time) { w.Cancel(&b) }
	b.Fn = func(qstate.Time) { bFired = true }
	w.Arm(&a, 2*tick)
	w.Arm(&b, 2*tick)
	w.Advance(at(2))
	if bFired {
		t.Fatal("b fired although a canceled it from the same slot")
	}
}

func TestWheelCallbackArmsNewTimer(t *testing.T) {
	w := NewWheel(0, tick)
	var chain []qstate.Time
	var next Timer
	next.Fn = func(now qstate.Time) { chain = append(chain, now) }
	first := &Timer{Fn: func(now qstate.Time) {
		chain = append(chain, now)
		w.Arm(&next, 3*tick)
	}}
	w.Arm(first, 2*tick)
	w.Advance(at(10))
	if len(chain) != 2 || chain[0] != at(2) || chain[1] != at(5) {
		t.Fatalf("chain = %v, want [%v %v]", chain, at(2), at(5))
	}
}

func TestWheelCascadeAcrossLevels(t *testing.T) {
	// Delays that land on level 1, 2 and 3 must all fire at their exact
	// due tick after cascading back down.
	w := NewWheel(0, tick)
	delays := []int64{
		1, wheelSlots - 1, wheelSlots, wheelSlots + 1, // level 0/1 boundary
		wheelSlots * wheelSlots, wheelSlots*wheelSlots + 7, // level 2
		wheelSlots * wheelSlots * wheelSlots, // level 3
		wheelSlots*wheelSlots*wheelSlots + 12345,
	}
	got := map[int64]qstate.Time{}
	for _, d := range delays {
		d := d
		w.Arm(&Timer{Fn: func(now qstate.Time) { got[d] = now }}, time.Duration(d)*tick)
	}
	max := delays[len(delays)-1]
	// Advance in uneven chunks so cascades happen mid-stride.
	for n := int64(0); n <= max; n += 977 {
		w.Advance(at(n))
	}
	w.Advance(at(max))
	for _, d := range delays {
		if got[d] != at(d) {
			t.Errorf("delay %d fired at %v, want %v", d, got[d], at(d))
		}
	}
}

func TestWheelBeyondSpanParksAndStillFires(t *testing.T) {
	// A delay past the wheel's direct span re-cascades until due. Use a
	// coarse tick so the test advances few ticks in absolute time.
	w := NewWheel(0, tick)
	var fires []qstate.Time
	d := int64(wheelSpan) + 5000
	w.Arm(&Timer{Fn: func(now qstate.Time) { fires = append(fires, now) }}, time.Duration(d)*tick)
	w.Advance(at(wheelSpan - 1))
	if len(fires) != 0 {
		t.Fatalf("parked timer fired early at %v", fires)
	}
	w.Advance(at(d))
	if len(fires) != 1 || fires[0] != at(d) {
		t.Fatalf("fires = %v, want one at %v", fires, at(d))
	}
}

func TestWheelTicksUntil(t *testing.T) {
	w := NewWheel(0, tick)
	if n := w.TicksUntil(at(7)); n != 7 {
		t.Fatalf("TicksUntil = %d, want 7", n)
	}
	w.Advance(at(7))
	if n := w.TicksUntil(at(7)); n != 0 {
		t.Fatalf("TicksUntil after advance = %d, want 0", n)
	}
	if n := w.TicksUntil(at(3)); n != 0 {
		t.Fatalf("TicksUntil of a past time = %d, want 0", n)
	}
	if w.Pos() != at(7) {
		t.Fatalf("Pos = %v, want %v", w.Pos(), at(7))
	}
}

// wheelModel is the property-test oracle: a sorted list of (due, id)
// pairs, fired in (due, insertion) order.
type modelEntry struct {
	due    int64
	seq    int
	period int64
}

// TestWheelPropertyAgainstModel drives random insert / cancel / advance
// sequences against a naive sorted-list model and requires identical fire
// sequences: no lost fires, no duplicates, monotone fire order. The
// generator is seeded, so failures replay exactly (satellite: wheel
// property tests).
func TestWheelPropertyAgainstModel(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			w := NewWheel(0, tick)
			timers := map[int]*Timer{}
			model := map[int]*modelEntry{}
			var wheelFires, modelFires []int64 // interleaved (tick, id) pairs
			cur := int64(0)
			seq := 0
			for step := 0; step < 4000; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // arm a new timer
					id := seq
					seq++
					delay := int64(1 + rng.Intn(3*wheelSlots))
					if rng.Intn(8) == 0 {
						delay = int64(1 + rng.Intn(3*wheelSlots*wheelSlots))
					}
					var period int64
					if rng.Intn(4) == 0 {
						period = int64(1 + rng.Intn(2*wheelSlots))
					}
					tm := &Timer{Fn: func(now qstate.Time) {
						wheelFires = append(wheelFires, int64(now)/int64(tick), int64(id))
					}}
					timers[id] = tm
					model[id] = &modelEntry{due: cur + delay, seq: id, period: period}
					w.ArmPeriodic(tm, time.Duration(delay)*tick, time.Duration(period)*tick)
				case op < 7: // cancel the oldest live timer (deterministic pick)
					min := -1
					for id := range model {
						if min < 0 || id < min {
							min = id
						}
					}
					if min >= 0 {
						w.Cancel(timers[min])
						delete(model, min)
						delete(timers, min)
					}
				default: // advance by a random stride
					stride := int64(1 + rng.Intn(2*wheelSlots))
					target := cur + stride
					for tk := cur + 1; tk <= target; tk++ {
						// Fire the model for tick tk in (due, seq) order.
						var due []*modelEntry
						for _, e := range model {
							if e.due == tk {
								due = append(due, e)
							}
						}
						sort.Slice(due, func(i, j int) bool { return due[i].seq < due[j].seq })
						for _, e := range due {
							modelFires = append(modelFires, tk, int64(e.seq))
							if e.period > 0 {
								e.due = tk + e.period
							} else {
								delete(model, e.seq)
								delete(timers, e.seq)
							}
						}
					}
					cur = target
					w.Advance(at(cur))
				}
			}
			if len(wheelFires) != len(modelFires) {
				t.Fatalf("seed %d: wheel fired %d events, model %d", seed, len(wheelFires)/2, len(modelFires)/2)
			}
			// Fire order within one tick is an implementation detail (a
			// cascaded timer may land behind a directly-armed one), so
			// compare the per-tick fire multisets: sort ids within runs of
			// equal tick on both sides, then require identical streams —
			// which still catches lost, duplicated, or mis-timed fires.
			normalizeFires(wheelFires)
			normalizeFires(modelFires)
			for i := range wheelFires {
				if wheelFires[i] != modelFires[i] {
					t.Fatalf("seed %d: fire stream diverges at %d: wheel %v model %v",
						seed, i/2, wheelFires[i-i%2:i-i%2+2], modelFires[i-i%2:i-i%2+2])
				}
			}
			// Fire ticks must be monotone non-decreasing.
			for i := 2; i < len(wheelFires); i += 2 {
				if wheelFires[i] < wheelFires[i-2] {
					t.Fatalf("seed %d: fire order not monotone: %d after %d", seed, wheelFires[i], wheelFires[i-2])
				}
			}
			if w.Armed() != len(model) {
				t.Fatalf("seed %d: wheel Armed=%d, model has %d live", seed, w.Armed(), len(model))
			}
		})
	}
}

// normalizeFires sorts the ids within each run of equal fire ticks in an
// interleaved (tick, id) stream, canonicalizing within-tick order.
func normalizeFires(fires []int64) {
	for i := 0; i < len(fires); {
		j := i
		for j < len(fires) && fires[j] == fires[i] {
			j += 2
		}
		ids := make([]int64, 0, (j-i)/2)
		for k := i + 1; k < j; k += 2 {
			ids = append(ids, fires[k])
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for k, id := range ids {
			fires[i+1+2*k] = id
		}
		i = j
	}
}

// TestWheelDeterministicUnderSeededClock replays the same seeded operation
// sequence twice and requires byte-identical fire logs — the sim-clock
// determinism contract the shard layer inherits.
func TestWheelDeterministicUnderSeededClock(t *testing.T) {
	runSeq := func() []int64 {
		rng := rand.New(rand.NewSource(42))
		w := NewWheel(0, tick)
		var log []int64
		var live []*Timer
		cur := int64(0)
		for step := 0; step < 2000; step++ {
			id := int64(step)
			switch rng.Intn(4) {
			case 0, 1:
				tm := &Timer{Fn: func(now qstate.Time) { log = append(log, int64(now), id) }}
				w.ArmPeriodic(tm, time.Duration(1+rng.Intn(100))*tick,
					time.Duration(rng.Intn(8))*tick)
				live = append(live, tm)
			case 2:
				if len(live) > 0 {
					w.Cancel(live[rng.Intn(len(live))])
				}
			default:
				cur += int64(1 + rng.Intn(50))
				w.Advance(at(cur))
			}
		}
		return log
	}
	a, b := runSeq(), runSeq()
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d fire events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("degenerate sequence: nothing fired")
	}
}
