// Package shard is the shared-nothing scaling layer for the real-socket
// path: a Group of N shards, each owning a batch of connections assigned by
// FNV hash, a hierarchical timer wheel driving every endpoint control tick
// on that shard, and a run queue through which other goroutines hand work
// to the shard's event loop. One wall-clock ticker per *shard* replaces one
// ticker goroutine per *connection* — the per-connection control cost is a
// wheel slot (48 bytes and O(1) arm/fire), not a goroutine plus a runtime
// timer, which is what lets a single kvserver hold 50k+ controlled
// connections (ROADMAP item 1; Hill's bottleneck framing: the control
// plane, not the NIC, must not be the bottleneck).
//
// Everything on a shard is single-goroutine by construction: wheel state,
// timers, and any connection state the timers touch are owned by the
// shard's event loop and must only be accessed on it (or before Start /
// after Stop, which establish the happens-before edges). There are no locks
// on the tick path and no allocations (//e2e:hotpath + allocgate), and the
// wheel advances on explicit timestamps, so under a simulated clock the
// whole shard layer is deterministic and unit-testable without sockets.
package shard

import (
	"time"

	"e2ebatch/internal/qstate"
)

// Wheel geometry: wheelLevels levels of wheelSlots slots each. Level 0
// slots are one tick wide; level l slots are wheelSlots^l ticks wide.
// With the default 1 ms tick the wheel directly addresses ~4.6 hours
// (64^4 ticks); anything further parks at the top level and re-cascades.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	// wheelSpan is the horizon, in ticks, the wheel addresses directly.
	wheelSpan = 1 << (wheelBits * wheelLevels)
)

// A Timer is one schedulable callback, embedded intrusively in the wheel's
// slot lists so arming and firing never allocate. The zero value is an
// unarmed timer; set Fn before arming. A Timer belongs to exactly one
// wheel at a time and, like everything on a shard, must only be touched on
// the shard goroutine that owns that wheel.
type Timer struct {
	// Fn is the callback, invoked from Wheel.Advance with the advance's
	// target time. It may freely Arm, ArmPeriodic and Cancel timers on the
	// same wheel, including itself.
	Fn func(now qstate.Time)

	when   int64 // absolute due tick
	period int64 // ticks between fires; 0 = one-shot
	next   *Timer
	prev   *Timer
	list   *timerList
}

// Armed reports whether the timer is currently scheduled.
func (t *Timer) Armed() bool { return t.list != nil }

// timerList is an intrusive doubly-linked list of timers — one per wheel
// slot. Intrusive links keep arm/cancel pointer-swaps with no container
// allocations, the same zero-alloc discipline as the engine's scratch
// buffers (DESIGN.md §13).
type timerList struct {
	head *Timer
	tail *Timer
}

//e2e:hotpath
func (l *timerList) push(t *Timer) {
	t.list = l
	t.prev = l.tail
	t.next = nil
	if l.tail != nil {
		l.tail.next = t
	} else {
		l.head = t
	}
	l.tail = t
}

//e2e:hotpath
func (l *timerList) remove(t *Timer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		l.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		l.tail = t.prev
	}
	t.next, t.prev, t.list = nil, nil, nil
}

// Wheel is a hierarchical timer wheel: O(1) arm and cancel, amortized-O(1)
// advance, zero allocations on all three. It is driven by explicit
// timestamps (Advance), so the same wheel runs identically under a
// wall-clock shard loop and a simulated clock in tests. Not safe for
// concurrent use — it is shard-owned state.
type Wheel struct {
	tick  int64 // granularity, ns per tick
	cur   int64 // current absolute tick (= time / tick, monotone)
	armed int
	fired uint64
	slots [wheelLevels][wheelSlots]timerList
}

// NewWheel returns a wheel positioned at start with the given granularity.
// Delays round up to whole ticks (minimum one), so tick bounds how precise
// any schedule on this wheel can be.
func NewWheel(start qstate.Time, tick time.Duration) *Wheel {
	if tick <= 0 {
		panic("shard: wheel tick must be positive")
	}
	return &Wheel{tick: int64(tick), cur: int64(start) / int64(tick)}
}

// Armed returns the number of currently scheduled timers.
func (w *Wheel) Armed() int { return w.armed }

// Fired returns the total number of timer callbacks dispatched.
func (w *Wheel) Fired() uint64 { return w.fired }

// Pos returns the wheel's current position, rounded down to its tick.
func (w *Wheel) Pos() qstate.Time { return qstate.Time(w.cur * w.tick) }

// TicksUntil returns how many whole ticks lie between the wheel's position
// and now — the backlog an Advance(now) would work through. Negative times
// behind the wheel report zero.
func (w *Wheel) TicksUntil(now qstate.Time) int64 {
	n := int64(now)/w.tick - w.cur
	if n < 0 {
		return 0
	}
	return n
}

// ticksFor converts a duration to a whole number of ticks, rounding up,
// minimum one: a timer armed "now" still fires strictly in the future.
//
//e2e:hotpath
func (w *Wheel) ticksFor(d time.Duration) int64 {
	n := (int64(d) + w.tick - 1) / w.tick
	if n < 1 {
		n = 1
	}
	return n
}

// Arm schedules t to fire once after delay (rounded up to ticks, minimum
// one). An already-armed timer is rescheduled.
//
//e2e:hotpath
func (w *Wheel) Arm(t *Timer, delay time.Duration) {
	w.ArmPeriodic(t, delay, 0)
}

// ArmPeriodic schedules t to fire after initial and then every period.
// Zero period means one-shot; a positive period also rounds up to ticks
// (minimum one). An already-armed timer is rescheduled.
//
//e2e:hotpath
func (w *Wheel) ArmPeriodic(t *Timer, initial, period time.Duration) {
	if t.list != nil {
		t.list.remove(t)
		w.armed--
	}
	t.when = w.cur + w.ticksFor(initial)
	if period > 0 {
		t.period = w.ticksFor(period)
	} else {
		t.period = 0
	}
	w.place(t)
	w.armed++
}

// Cancel unschedules t. Canceling an unarmed timer is a no-op, so the call
// is safe from any fire callback regardless of interleaving.
//
//e2e:hotpath
func (w *Wheel) Cancel(t *Timer) {
	if t.list == nil {
		return
	}
	t.list.remove(t)
	w.armed--
}

// place files t into the slot covering its due tick: level 0 for the next
// wheelSlots ticks, each higher level for the next power-of-64 band.
// Timers beyond the wheel's span park in the furthest top-level slot and
// re-place at each cascade until their true due tick comes into range.
//
//e2e:hotpath
func (w *Wheel) place(t *Timer) {
	eff := t.when
	d := eff - w.cur
	if d < 0 {
		// Already due (cascade of an overdue timer): fire on the tick in
		// progress.
		eff, d = w.cur, 0
	} else if d >= wheelSpan {
		eff = w.cur + wheelSpan - 1
		d = wheelSpan - 1
	}
	level := 0
	for d >= wheelSlots {
		d >>= wheelBits
		level++
	}
	w.slots[level][(eff>>(wheelBits*level))&wheelMask].push(t)
}

// Advance moves the wheel forward to now, cascading and firing every tick
// boundary crossed, in order. Callbacks receive the boundary's own
// timestamp (tick-quantized), not now — so a late Advance that works
// through a backlog replays the schedule deterministically, and a sim-clock
// test sees the exact same fire times as a wall-clock shard would.
//
//e2e:hotpath
func (w *Wheel) Advance(now qstate.Time) {
	target := int64(now) / w.tick
	for w.cur < target {
		w.cur++
		w.step()
	}
}

// step processes one tick boundary: cascade any higher-level slot whose
// window opens at this tick (top-down, so entries resettle through every
// intermediate level in one pass), then fire the level-0 slot.
//
//e2e:hotpath
func (w *Wheel) step() {
	for level := wheelLevels - 1; level >= 1; level-- {
		span := int64(1) << (wheelBits * level)
		if w.cur&(span-1) == 0 {
			w.cascade(level, int((w.cur>>(wheelBits*level))&wheelMask))
		}
	}
	w.fire(qstate.Time(w.cur * w.tick))
}

// cascade re-places every timer in the given higher-level slot by its true
// due tick. Entries land at most at the level below (their distance is now
// under the slot's span), so no timer is ever lost or fired early.
//
//e2e:hotpath
func (w *Wheel) cascade(level, idx int) {
	l := &w.slots[level][idx]
	for t := l.head; t != nil; t = l.head {
		l.remove(t)
		w.place(t)
	}
}

// fire dispatches the level-0 slot for the current tick. Timers pop one at
// a time so a callback may cancel any timer still pending — including
// later entries of this same slot. Periodic timers re-arm before their
// callback runs, so the callback may Cancel to stop the series.
//
//e2e:hotpath
func (w *Wheel) fire(now qstate.Time) {
	slot := &w.slots[0][int(w.cur&wheelMask)]
	for t := slot.head; t != nil; t = slot.head {
		slot.remove(t)
		w.armed--
		if t.period > 0 {
			t.when = w.cur + t.period
			w.place(t)
			w.armed++
		}
		w.fired++
		t.Fn(now)
	}
}
