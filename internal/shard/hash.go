package shard

// Shard assignment hashes: inline FNV-1a over the connection key (remote
// address on the server, connection index in the fleet). hash/fnv would
// allocate a hash.Hash64 per call; the accept path runs this per
// connection, so the loop is written out.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashString returns the 64-bit FNV-1a hash of s.
//
//e2e:hotpath
func HashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// HashUint64 returns the 64-bit FNV-1a hash of x's little-endian bytes —
// the index-keyed form the fleet uses so connection→shard assignment is
// independent of ephemeral port numbers.
//
//e2e:hotpath
func HashUint64(x uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}
