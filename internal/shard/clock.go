package shard

import (
	"time"

	"e2ebatch/internal/engine"
	"e2ebatch/internal/qstate"
)

// Clock adapts a shard's timer wheel to engine.Clock — the wheel-backed
// implementation that replaces realtcp's per-connection ticker goroutines.
// Ticks arm one periodic wheel Timer; Stop cancels it. Like the wheel, a
// Clock schedules and cancels only on the shard goroutine (or before
// Start / after Stop of the group).
type Clock struct {
	S *Shard
	// Phase staggers the first fire: it lands between one and two periods
	// out, offset by Phase modulo the period. A fleet assigns each
	// connection a distinct phase so ticks spread across wheel slots
	// instead of thundering on the same boundary.
	Phase time.Duration
}

// Tick schedules fn every period on the shard's wheel and returns its
// cancel handle.
func (c Clock) Tick(period time.Duration, fn func(now qstate.Time)) engine.Ticker {
	t := &Timer{Fn: fn}
	initial := period
	if c.Phase > 0 {
		initial += c.Phase % period
	}
	c.S.Wheel().ArmPeriodic(t, initial, period)
	s := c.S
	return engine.TickerFunc(func() { s.Wheel().Cancel(t) })
}
