package shard

import (
	"sync/atomic"
	"testing"
	"time"

	"e2ebatch/internal/engine"
	"e2ebatch/internal/qstate"
)

// Manual mode: a never-started group is a deterministic single-goroutine
// harness — Submit queues, Service drains and advances on explicit
// simulated timestamps.
func TestShardManualModeDeterministic(t *testing.T) {
	var now qstate.Time
	g := NewGroup(Config{Shards: 2, Tick: tick, Now: func() qstate.Time { return now }})
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	s := g.Shard(0)
	var order []string
	if !s.Submit(func() { order = append(order, "submitted") }) {
		t.Fatal("Submit refused on a live shard")
	}
	s.Wheel().Arm(&Timer{Fn: func(qstate.Time) { order = append(order, "fired") }}, 2*tick)
	now = at(1)
	s.Service(now)
	now = at(2)
	s.Service(now)
	if len(order) != 2 || order[0] != "submitted" || order[1] != "fired" {
		t.Fatalf("order = %v, want [submitted fired]", order)
	}
	st := s.Stats()
	if st.Services != 2 || st.Fired != 1 || st.Armed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	g.Stop()
	if s.Submit(func() {}) {
		t.Fatal("Submit accepted after Stop")
	}
}

func TestShardServiceBehindAccounting(t *testing.T) {
	var now qstate.Time
	g := NewGroup(Config{Shards: 1, Tick: tick, Now: func() qstate.Time { return now }})
	s := g.Shard(0)
	now = at(5) // 5 ticks due, 4 beyond the nominal one
	s.Service(now)
	st := s.Stats()
	if st.Behind != 4 || st.MaxBehind != 4 {
		t.Fatalf("behind = %d max = %d, want 4/4", st.Behind, st.MaxBehind)
	}
	now = at(6)
	s.Service(now)
	st = s.Stats()
	if st.Behind != 0 || st.MaxBehind != 4 {
		t.Fatalf("after catch-up: behind = %d max = %d, want 0/4", st.Behind, st.MaxBehind)
	}
}

func TestGroupOfHashesStably(t *testing.T) {
	g := NewGroup(Config{Shards: 4, Tick: tick, Now: func() qstate.Time { return 0 }})
	seen := map[int]bool{}
	for i := uint64(0); i < 256; i++ {
		a, b := g.Of(HashUint64(i)), g.Of(HashUint64(i))
		if a != b {
			t.Fatalf("Of not stable for key %d", i)
		}
		seen[a.ID()] = true
	}
	if len(seen) != 4 {
		t.Fatalf("256 keys landed on %d of 4 shards — hash is degenerate", len(seen))
	}
	if HashString("127.0.0.1:6380") == HashString("127.0.0.1:6381") {
		t.Fatal("distinct addresses hash equal")
	}
}

// Started mode: the shard loop's driver ticker fires wheel timers with
// wall-clock timestamps; Stop drains and establishes happens-before for
// direct reads.
func TestGroupStartedLoopFiresTimers(t *testing.T) {
	g := NewGroup(Config{Shards: 2, Tick: time.Millisecond})
	var fires atomic.Int64
	for i := 0; i < g.Len(); i++ {
		s := g.Shard(i)
		tm := &Timer{Fn: func(qstate.Time) { fires.Add(1) }}
		s.Submit(func() { s.Wheel().ArmPeriodic(tm, time.Millisecond, 2*time.Millisecond) })
	}
	g.Start()
	deadline := time.Now().Add(2 * time.Second)
	for fires.Load() < 6 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	g.Stop()
	g.Stop() // idempotent
	if fires.Load() < 6 {
		t.Fatalf("only %d fires before deadline", fires.Load())
	}
	// Post-Stop the wheel is safe to read directly.
	for i := 0; i < g.Len(); i++ {
		if g.Shard(i).Wheel().Fired() == 0 {
			t.Errorf("shard %d wheel fired nothing", i)
		}
	}
}

func TestGroupStopRunsQueuedWork(t *testing.T) {
	g := NewGroup(Config{Shards: 1})
	g.Start()
	ran := make(chan struct{})
	g.Shard(0).Submit(func() { close(ran) })
	g.Stop()
	select {
	case <-ran:
	default:
		t.Fatal("work submitted before Stop never ran")
	}
}

// The wheel-backed engine.Clock: Endpoint.Start arms a periodic wheel
// timer; Stop cancels it; phases stagger first fires.
func TestClockDrivesEndpointTicks(t *testing.T) {
	var now qstate.Time
	g := NewGroup(Config{Shards: 1, Tick: tick, Now: func() qstate.Time { return now }})
	s := g.Shard(0)
	var ticks []qstate.Time
	tkr := Clock{S: s, Phase: 3 * tick}.Tick(5*tick, func(n qstate.Time) {
		ticks = append(ticks, n)
	})
	for n := int64(1); n <= 20; n++ {
		now = at(n)
		s.Service(now)
	}
	// First fire at period + phase%period = 5+3 = 8, then every 5.
	want := []qstate.Time{at(8), at(13), at(18)}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
	tkr.Stop()
	tkr.Stop() // idempotent
	for n := int64(21); n <= 30; n++ {
		now = at(n)
		s.Service(now)
	}
	if len(ticks) != len(want) {
		t.Fatalf("ticks after Stop = %v, want unchanged %v", ticks, want)
	}
	if s.Wheel().Armed() != 0 {
		t.Fatalf("stopped clock left %d timers armed", s.Wheel().Armed())
	}
	_ = engine.Ticker(tkr) // the handle satisfies engine.Ticker
}
