//go:build !race

// Allocation gate for the shard layer's //e2e:hotpath functions
// (DESIGN.md §13): wheel arm/cancel/advance and the shard's Service
// dispatch must not allocate — at 50k connections the wheel fires tens of
// thousands of callbacks per second, and any per-fire allocation would put
// the GC back on the control path the wheel exists to take it off of.
// Excluded under -race because the race runtime's shadow allocations would
// be charged to the tracked code.

package shard

import (
	"testing"
	"time"

	"e2ebatch/internal/qstate"
)

// gateFires is bumped by a package-level fire function so the gated loop
// carries no capturing closure of its own.
var gateFires int

func gateFire(qstate.Time) { gateFires++ }

func TestAllocGateWheelArmCancel(t *testing.T) {
	w := NewWheel(0, time.Millisecond)
	tm := &Timer{Fn: gateFire}
	if n := testing.AllocsPerRun(200, func() {
		w.Arm(tm, 5*time.Millisecond)
		w.Cancel(tm)
	}); n != 0 {
		t.Errorf("Wheel.Arm/Cancel allocates %v per op, want 0 (//e2e:hotpath)", n)
	}
}

func TestAllocGateWheelAdvance(t *testing.T) {
	// Periodic timers across several levels keep every Advance busy:
	// cascades, fires, and re-arms all run inside the measured region.
	w := NewWheel(0, time.Millisecond)
	timers := make([]Timer, 64)
	for i := range timers {
		timers[i].Fn = gateFire
		w.ArmPeriodic(&timers[i], time.Duration(i+1)*time.Millisecond,
			time.Duration(1+i%70)*time.Millisecond)
	}
	now := qstate.Time(0)
	if n := testing.AllocsPerRun(200, func() {
		now += qstate.Time(17 * time.Millisecond)
		w.Advance(now)
	}); n != 0 {
		t.Errorf("Wheel.Advance allocates %v per op, want 0 (//e2e:hotpath)", n)
	}
	if w.Fired() == 0 {
		t.Fatal("gate measured an idle wheel")
	}
}

func TestAllocGateShardService(t *testing.T) {
	var now qstate.Time
	g := NewGroup(Config{Shards: 1, Tick: time.Millisecond, Now: func() qstate.Time { return now }})
	s := g.Shard(0)
	timers := make([]Timer, 32)
	for i := range timers {
		timers[i].Fn = gateFire
		s.Wheel().ArmPeriodic(&timers[i], time.Millisecond, time.Duration(1+i%8)*time.Millisecond)
	}
	if n := testing.AllocsPerRun(200, func() {
		now += qstate.Time(3 * time.Millisecond)
		s.Service(now)
	}); n != 0 {
		t.Errorf("Shard.Service allocates %v per op, want 0 (//e2e:hotpath)", n)
	}
	if s.Stats().Fired == 0 {
		t.Fatal("gate measured an idle shard")
	}
}
