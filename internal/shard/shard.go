package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"e2ebatch/internal/qstate"
)

// Config parameterizes a Group. The zero value is usable: GOMAXPROCS
// shards, 1 ms wheel tick, a monotonic clock epoch'd at NewGroup, and a
// 1024-entry run queue per shard.
type Config struct {
	// Shards is the number of shards (default runtime.GOMAXPROCS(0)).
	Shards int
	// Tick is the wheel granularity and the period of each shard's driver
	// ticker (default 1 ms). Every timer delay on the shard rounds up to
	// this, so it bounds control-tick precision fleet-wide.
	Tick time.Duration
	// Now supplies timestamps to the shard loops and wheels. The default
	// reads a monotonic clock epoch'd at NewGroup. Tests substitute a
	// simulated clock here and drive shards manually via Service, which
	// makes shard logic deterministic without sockets.
	Now func() qstate.Time
	// RunQueue is the per-shard run-queue capacity (default 1024). Submit
	// blocks when it fills, which backpressures bulk producers (the fleet
	// dialer) instead of growing unbounded.
	RunQueue int
}

// Group is a set of shared-nothing shards. Connections (or any keyed work)
// map to shards by hash — Of — and everything a shard owns is touched only
// on that shard's goroutine, so shards never contend with each other.
type Group struct {
	shards []*Shard

	mu      sync.Mutex
	started bool
	stopped bool
}

// NewGroup builds the shards without starting their loops. Between NewGroup
// and Start the group is in manual mode: Submit queues work and
// Shard.Service runs it deterministically on the caller's goroutine — the
// unit-test harness for shard-owned logic.
func NewGroup(cfg Config) *Group {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.Now == nil {
		epoch := time.Now()
		cfg.Now = func() qstate.Time { return qstate.Time(time.Since(epoch)) }
	}
	if cfg.RunQueue <= 0 {
		cfg.RunQueue = 1024
	}
	g := &Group{shards: make([]*Shard, cfg.Shards)}
	for i := range g.shards {
		g.shards[i] = &Shard{
			id:    i,
			tick:  cfg.Tick,
			now:   cfg.Now,
			wheel: NewWheel(cfg.Now(), cfg.Tick),
			runq:  make(chan func(), cfg.RunQueue),
			stopc: make(chan struct{}),
			done:  make(chan struct{}),
		}
	}
	return g
}

// Len returns the number of shards.
func (g *Group) Len() int { return len(g.shards) }

// Shard returns shard i.
func (g *Group) Shard(i int) *Shard { return g.shards[i] }

// Of maps a hash to its owning shard (see HashString / HashUint64).
func (g *Group) Of(hash uint64) *Shard {
	return g.shards[hash%uint64(len(g.shards))]
}

// Start launches one event-loop goroutine per shard. Work already queued
// via Submit drains on the new loops.
func (g *Group) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		return
	}
	g.started = true
	for _, s := range g.shards {
		go s.loop()
	}
}

// Stop halts every shard loop and waits for them to exit, so everything
// the shards wrote happens-before Stop's return — after Stop the caller
// may read shard-owned state (endpoint stats, wheel counters) directly.
// Each loop performs a final Service on the way out, so work Submitted
// before Stop is not lost. Stop on a never-started group just marks it
// stopped; Stop is idempotent.
func (g *Group) Stop() {
	g.mu.Lock()
	if g.stopped {
		started := g.started
		g.mu.Unlock()
		if started {
			for _, s := range g.shards {
				<-s.done
			}
		}
		return
	}
	g.stopped = true
	started := g.started
	g.mu.Unlock()
	for _, s := range g.shards {
		s.stopOnce.Do(func() { close(s.stopc) })
	}
	if started {
		for _, s := range g.shards {
			<-s.done
		}
	}
}

// Stats returns a snapshot of every shard's counters (safe during a run:
// the fields are atomic mirrors).
func (g *Group) Stats() []Stats {
	out := make([]Stats, len(g.shards))
	for i, s := range g.shards {
		out[i] = s.Stats()
	}
	return out
}

// Stats is one shard's activity snapshot, readable lock-free at any time
// (scrape-time rollup reads these mirrors; the shard goroutine is the only
// writer, the padded-atomics idiom of core.SharedEstimator).
type Stats struct {
	// Services counts Service passes (driver ticks plus run-queue wakes);
	// Fired counts timer callbacks dispatched; Armed is the number of
	// currently scheduled timers.
	Services uint64
	Fired    uint64
	Armed    int64
	// Behind is the tick backlog observed at the last Service entry beyond
	// the single tick that is nominally due; MaxBehind is its worst value
	// over the run. A loaded-but-keeping-up shard holds both near zero.
	Behind    int64
	MaxBehind int64
	// RunQueue is the current run-queue depth.
	RunQueue int
}

// Shard is one shared-nothing event loop: a timer wheel, a run queue, and
// the connections hashed to it. All shard-owned state — the wheel, every
// Timer on it, whatever the callbacks touch — is confined to the shard
// goroutine (or, in manual mode, to whichever single goroutine calls
// Service). Cross-shard communication goes through Submit.
type Shard struct {
	id    int
	tick  time.Duration
	now   func() qstate.Time
	wheel *Wheel
	runq  chan func()

	stopc    chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	// Atomic mirrors of shard-goroutine-owned counters, padded so two
	// shards' hot stores never share a cache line even if the runtime
	// co-locates the structs.
	services  atomic.Uint64
	_         [56]byte
	fired     atomic.Uint64
	_         [56]byte
	armed     atomic.Int64
	_         [56]byte
	behind    atomic.Int64
	maxBehind atomic.Int64
	_         [48]byte
}

// ID returns the shard's index within its group.
func (s *Shard) ID() int { return s.id }

// Wheel exposes the shard's timer wheel. It is shard-owned: call only from
// the shard goroutine (inside a Submitted func or a timer callback), or
// before Start / after Stop.
func (s *Shard) Wheel() *Wheel { return s.wheel }

// Now reads the group clock.
func (s *Shard) Now() qstate.Time { return s.now() }

// Submit queues fn for execution on the shard goroutine and returns true,
// or false if the shard has stopped. It blocks while the run queue is full
// — backpressure, not unbounded growth — and must therefore not be called
// from the shard's own goroutine (shard-local code reaches the wheel
// directly instead).
func (s *Shard) Submit(fn func()) bool {
	select {
	case <-s.stopc:
		// Checked first: a buffered queue would otherwise win the select
		// against an already-closed stop channel at random.
		return false
	default:
	}
	select {
	case s.runq <- fn:
		return true
	case <-s.stopc:
		return false
	}
}

// Service runs one event-loop pass at time now: drain the run queue, then
// advance the wheel, firing due timers. The shard loop calls it every
// driver tick; manual-mode tests call it directly with simulated
// timestamps for deterministic shard-logic tests.
//
//e2e:hotpath
func (s *Shard) Service(now qstate.Time) {
	for {
		select {
		case fn := <-s.runq:
			fn()
			continue
		default:
		}
		break
	}
	behind := s.wheel.TicksUntil(now) - 1
	if behind < 0 {
		behind = 0
	}
	s.behind.Store(behind)
	if behind > s.maxBehind.Load() {
		s.maxBehind.Store(behind)
	}
	s.wheel.Advance(now)
	s.services.Add(1)
	s.fired.Store(s.wheel.fired)
	s.armed.Store(int64(s.wheel.armed))
}

// Stats returns the shard's counters from their atomic mirrors.
func (s *Shard) Stats() Stats {
	return Stats{
		Services:  s.services.Load(),
		Fired:     s.fired.Load(),
		Armed:     s.armed.Load(),
		Behind:    s.behind.Load(),
		MaxBehind: s.maxBehind.Load(),
		RunQueue:  len(s.runq),
	}
}

// loop is the shard's event loop: one driver ticker multiplexing every
// timer on the shard through the wheel, plus run-queue wakes. On stop it
// services once more so queued work lands before Stop returns.
func (s *Shard) loop() {
	defer close(s.done)
	//lint:ignore e2elint/pertickerconn one driver ticker per shard is the design: the wheel multiplexes every per-connection schedule onto it
	tk := time.NewTicker(s.tick)
	defer tk.Stop()
	for {
		select {
		case <-s.stopc:
			s.Service(s.now())
			return
		case fn := <-s.runq:
			fn()
			s.Service(s.now())
		case <-tk.C:
			s.Service(s.now())
		}
	}
}
