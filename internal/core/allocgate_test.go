//go:build !race

// Allocation gate for this package's //e2e:hotpath functions (DESIGN.md
// §13): SharedEstimator.Update must not feed the GC — it runs once per tick
// on every connection. Excluded under -race because the race runtime's
// shadow allocations would be charged to the tracked code.

package core

import (
	"testing"
	"time"

	"e2ebatch/internal/qstate"
)

func TestAllocGateSharedEstimatorUpdate(t *testing.T) {
	var e SharedEstimator
	e.SetMaxRemoteAge(time.Second)
	var st qstate.State
	st.Init(0)
	now := qstate.Time(0)
	update := func() {
		now += qstate.Time(time.Millisecond)
		st.Track(now, 1)
		now += qstate.Time(time.Millisecond)
		st.Track(now, -1)
		_ = e.Update(Sample{Local: Queues{Unacked: st.Snapshot(now)}, At: now})
	}
	update() // prime, so measured runs produce real interval estimates
	if n := testing.AllocsPerRun(200, update); n != 0 {
		t.Errorf("SharedEstimator.Update allocates %v per op, want 0 (//e2e:hotpath)", n)
	}
}
