//go:build !race

// Allocation gate for this package's //e2e:hotpath functions (DESIGN.md
// §13): SharedEstimator.Update must not feed the GC — it runs once per tick
// on every connection. Excluded under -race because the race runtime's
// shadow allocations would be charged to the tracked code.

package core

import (
	"testing"
	"time"

	"e2ebatch/internal/qstate"
)

func TestAllocGateSharedEstimatorUpdate(t *testing.T) {
	var e SharedEstimator
	e.SetMaxRemoteAge(time.Second)
	var st qstate.State
	st.Init(0)
	now := qstate.Time(0)
	update := func() {
		now += qstate.Time(time.Millisecond)
		st.Track(now, 1)
		now += qstate.Time(time.Millisecond)
		st.Track(now, -1)
		_ = e.Update(Sample{Local: Queues{Unacked: st.Snapshot(now)}, At: now})
	}
	update() // prime, so measured runs produce real interval estimates
	if n := testing.AllocsPerRun(200, update); n != 0 {
		t.Errorf("SharedEstimator.Update allocates %v per op, want 0 (//e2e:hotpath)", n)
	}
}

// TestAllocGateTailComposition pins the tail hot path at zero allocations:
// the full Estimator.Update with tail histograms on both sides (delta →
// normalize → 3-way convolution → quantiles, twice for the two views), plus
// the composition pieces in isolation.
func TestAllocGateTailComposition(t *testing.T) {
	var e Estimator
	now := qstate.Time(0)
	n := uint32(0)
	update := func() {
		now += qstate.Time(100 * time.Millisecond)
		n += 25
		_ = e.Update(tailSample(now, 400*time.Microsecond, 900*time.Microsecond, n))
	}
	update() // prime
	if a := testing.AllocsPerRun(200, update); a != 0 {
		t.Errorf("Estimator.Update with tails allocates %v per op, want 0 (//e2e:hotpath)", a)
	}

	local := TailDists{
		Unacked: randDist(1, 6),
		Unread:  randDist(2, 4),
	}
	remote := TailDists{
		Unacked: randDist(3, 5),
		Unread:  randDist(4, 3),
	}
	if a := testing.AllocsPerRun(200, func() {
		_ = ComposeTail(&local, &remote, Delays{}, Delays{})
	}); a != 0 {
		t.Errorf("ComposeTail allocates %v per op, want 0 (//e2e:hotpath)", a)
	}
	var prev, cur qstate.WireTails
	cur.Unacked.RecordN(time.Millisecond, 40)
	cur.Unread.RecordN(100*time.Microsecond, 40)
	if a := testing.AllocsPerRun(200, func() {
		_, _ = TailDistsBetween(&prev, &cur)
	}); a != 0 {
		t.Errorf("TailDistsBetween allocates %v per op, want 0 (//e2e:hotpath)", a)
	}
}
