// Package core implements the paper's primary contribution: end-to-end
// latency and throughput estimation from the three monitored TCP queues
// (§3.2) and their peer-exchanged metadata.
//
// The estimate combines per-queue Little's-law delays (package qstate) as
// derived in the paper's Figure 3:
//
//	L ≈ L_unacked^local − L_ackdelay^remote + L_unread^local + L_unread^remote
//
// Both parties can evaluate this formula — each treating itself as "local" —
// because each shares its three queue states with the other. The estimator
// computes both views and uses the maximum "to account for possible
// underestimations" (§3.2).
package core

import (
	"time"

	"e2ebatch/internal/qstate"
)

// Queues bundles one consistent snapshot of an endpoint's three monitored
// queues.
type Queues struct {
	Unacked  qstate.Snapshot
	Unread   qstate.Snapshot
	AckDelay qstate.Snapshot
}

// Delays holds the three per-queue Little's-law averages over an interval.
type Delays struct {
	Unacked  qstate.Avgs
	Unread   qstate.Avgs
	AckDelay qstate.Avgs
}

// DelaysBetween computes per-queue averages between two local snapshots.
func DelaysBetween(prev, now Queues) Delays {
	return Delays{
		Unacked:  qstate.GetAvgs(prev.Unacked, now.Unacked),
		Unread:   qstate.GetAvgs(prev.Unread, now.Unread),
		AckDelay: qstate.GetAvgs(prev.AckDelay, now.AckDelay),
	}
}

// WireDelays computes per-queue averages between two successive metadata
// exchanges received from the peer, using wrap-aware 32-bit deltas.
func WireDelays(prev, now qstate.WireState) Delays {
	return Delays{
		Unacked:  qstate.WireAvgs(prev.Unacked, now.Unacked),
		Unread:   qstate.WireAvgs(prev.Unread, now.Unread),
		AckDelay: qstate.WireAvgs(prev.AckDelay, now.AckDelay),
	}
}

// Estimate is an end-to-end performance estimate over one interval.
type Estimate struct {
	// Latency is max(LocalView, RemoteView) over the valid views.
	Latency time.Duration
	// LocalView and RemoteView are the two evaluations of the §3.2
	// formula; each is meaningful only if the matching *Valid flag is
	// set.
	LocalView       time.Duration
	RemoteView      time.Duration
	LocalViewValid  bool
	RemoteViewValid bool
	// Throughput is the local unacked queue's departure rate — message
	// units leaving the sender per second, i.e. the connection's
	// application-level send throughput in the chosen unit.
	Throughput float64
	// Valid reports whether at least one view could be computed.
	Valid bool
	// Degraded reports that the peer's metadata was missing or stale, so
	// the estimate (if Valid) is the local-only fallback: the remote
	// unread and ack-delay terms of the §3.2 formula are absent.
	// Consumers that act on estimates (toggling policies) should treat a
	// degraded estimate as untrusted input rather than ground truth.
	Degraded bool
	// RemoteStale distinguishes why a degraded estimate lacks peer data:
	// true means an exchange exists but aged past MaxRemoteAge, false
	// means none has arrived over the interval at all.
	RemoteStale bool
	// Tail is the composed end-to-end quantile estimate (tail.go). It
	// abstains (Valid=false) independently of the mean: a v1 peer without
	// tail histograms, a reordered delta, or a degraded interval all leave
	// the mean estimate usable while the tail stays invalid.
	Tail TailEstimate
}

// viewLatency evaluates L_unacked^local − L_ackdelay^remote +
// L_unread^local + L_unread^remote from the perspective where a is "local"
// and b is "remote". The unacked term must be valid (it carries the
// network round trip); idle unread/ackdelay queues contribute zero delay.
func viewLatency(local, remote Delays) (time.Duration, bool) {
	if !local.Unacked.Valid {
		return 0, false
	}
	l := local.Unacked.Latency
	if remote.AckDelay.Valid {
		l -= remote.AckDelay.Latency
	}
	if local.Unread.Valid {
		l += local.Unread.Latency
	}
	if remote.Unread.Valid {
		l += remote.Unread.Latency
	}
	if l < 0 {
		// The ack-delay correction slightly overshot; clamp rather
		// than report a negative latency.
		l = 0
	}
	return l, true
}

// EstimateE2E combines the two endpoints' per-queue delays into an
// end-to-end estimate, taking the max of the two perspective evaluations.
func EstimateE2E(local, remote Delays) Estimate {
	var e Estimate
	e.LocalView, e.LocalViewValid = viewLatency(local, remote)
	e.RemoteView, e.RemoteViewValid = viewLatency(remote, local)
	e.Throughput = local.Unacked.Throughput
	switch {
	case e.LocalViewValid && e.RemoteViewValid:
		e.Latency = e.LocalView
		if e.RemoteView > e.Latency {
			e.Latency = e.RemoteView
		}
		e.Valid = true
	case e.LocalViewValid:
		e.Latency = e.LocalView
		e.Valid = true
	case e.RemoteViewValid:
		e.Latency = e.RemoteView
		e.Valid = true
	}
	return e
}

// Sample is one observation an Estimator consumes: the local queues' exact
// snapshots plus the peer's most recent wire-format exchange (ok reports
// whether any exchange has arrived yet). At and RemoteAt carry the sample
// time and the exchange's arrival time on the same clock; they matter only
// when the estimator enforces MaxRemoteAge and may otherwise stay zero.
type Sample struct {
	Local    Queues
	Remote   qstate.WireState
	RemoteOK bool
	At       qstate.Time
	RemoteAt qstate.Time

	// Tail histograms (tail.go): the local endpoint's cumulative per-queue
	// delay histograms and the peer's, from its last v2 frame. The OK flags
	// gate tail composition only — a v1 peer leaves RemoteTailsOK false and
	// the mean estimate untouched.
	LocalTails    qstate.WireTails
	LocalTailsOK  bool
	RemoteTails   qstate.WireTails
	RemoteTailsOK bool
}

// Estimator turns a stream of samples into per-interval end-to-end
// estimates for one connection. It keeps the "previous and current" states
// the paper describes (§5 Metadata Exchange). The zero value is ready to
// use; the first Update only primes it.
type Estimator struct {
	// MaxRemoteAge bounds how old the peer's last exchange may be, on the
	// Sample.At clock, before the estimator stops trusting it and falls
	// back to the local-only view with Estimate.Degraded set. Zero (the
	// default) disables the staleness check — appropriate only when the
	// exchange transport cannot stall, e.g. offline trace replay.
	MaxRemoteAge time.Duration

	prev      Sample
	primed    bool
	estimates uint64
	degraded  uint64
}

// Update folds in a new sample and returns the estimate for the interval
// since the previous one. The returned estimate is invalid while priming or
// when the interval carried no departures, and flagged Degraded when the
// peer's metadata was missing or older than MaxRemoteAge — real networks
// delay and drop the exchange packets, and a stale tuple silently skews the
// remote terms, so it is excluded rather than consumed.
func (e *Estimator) Update(s Sample) Estimate {
	if !e.primed {
		e.prev = s
		e.primed = true
		return Estimate{}
	}
	local := DelaysBetween(e.prev.Local, s.Local)
	remoteOK := e.prev.RemoteOK && s.RemoteOK
	stale := false
	if remoteOK && e.MaxRemoteAge > 0 && time.Duration(s.At-s.RemoteAt) > e.MaxRemoteAge {
		remoteOK, stale = false, true
	}
	var remote Delays
	if remoteOK {
		remote = WireDelays(e.prev.Remote, s.Remote)
	}
	var tail TailEstimate
	if remoteOK && e.prev.LocalTailsOK && s.LocalTailsOK && e.prev.RemoteTailsOK && s.RemoteTailsOK {
		lt, lok := TailDistsBetween(&e.prev.LocalTails, &s.LocalTails)
		rt, rok := TailDistsBetween(&e.prev.RemoteTails, &s.RemoteTails)
		if lok && rok {
			tail = ComposeTail(&lt, &rt, local, remote)
		}
	}
	e.prev = s
	est := EstimateE2E(local, remote)
	est.Tail = tail
	est.Degraded = !remoteOK
	est.RemoteStale = stale
	if est.Degraded {
		e.degraded++
	}
	if est.Valid {
		e.estimates++
	}
	return est
}

// Reset discards the priming state, e.g. after an idle period long enough
// to make the previous sample stale, or after a connection reset invalidated
// the peer's counters. Configuration (MaxRemoteAge) survives the reset.
func (e *Estimator) Reset() {
	maxAge := e.MaxRemoteAge
	*e = Estimator{MaxRemoteAge: maxAge}
}

// Estimates returns how many valid estimates have been produced.
func (e *Estimator) Estimates() uint64 { return e.estimates }

// DegradedCount returns how many post-priming updates ran without usable
// peer metadata.
func (e *Estimator) DegradedCount() uint64 { return e.degraded }

// Aggregate combines per-connection estimates into one, weighting each
// connection's latency by its throughput — the per-connection averaging the
// paper mentions for batching policies that affect multiple connections
// (§3.2). Invalid estimates are skipped; the result is invalid if none were
// valid.
func Aggregate(ests []Estimate) Estimate {
	var out Estimate
	var wsum float64
	var lsum float64
	for _, e := range ests {
		if !e.Valid {
			continue
		}
		w := e.Throughput
		if w <= 0 {
			w = 1
		}
		wsum += w
		lsum += w * float64(e.Latency)
		out.Throughput += e.Throughput
		out.Valid = true
		// Tails combine as the per-quantile max: an SLO over several
		// connections binds on the slowest one, so the conservative
		// aggregate is the envelope, not a weighted mean. Valid when at
		// least one connection composed a tail.
		if e.Tail.Valid {
			if !out.Tail.Valid {
				out.Tail = e.Tail
			} else {
				out.Tail.P50 = maxDur(out.Tail.P50, e.Tail.P50)
				out.Tail.P90 = maxDur(out.Tail.P90, e.Tail.P90)
				out.Tail.P99 = maxDur(out.Tail.P99, e.Tail.P99)
				out.Tail.P999 = maxDur(out.Tail.P999, e.Tail.P999)
			}
		}
	}
	if out.Valid && wsum > 0 {
		out.Latency = time.Duration(lsum / wsum)
	}
	return out
}
