package core

import (
	"sync"
	"testing"

	"e2ebatch/internal/qstate"
)

// sampleAt builds a sample whose unacked queue departed one item per µs up
// to time t (µs), so successive samples always yield valid estimates.
func sampleAt(tUS int64) Sample {
	return Sample{Local: Queues{
		Unacked: qstate.Snapshot{Time: qstate.Time(tUS * 1000), Total: tUS, Integral: tUS * 500},
	}}
}

// TestSharedEstimatorMatchesPlain: fed the same sample stream from one
// goroutine, the shared and plain estimators are indistinguishable.
func TestSharedEstimatorMatchesPlain(t *testing.T) {
	var plain Estimator
	var shared SharedEstimator
	for i := int64(1); i <= 50; i++ {
		a := plain.Update(sampleAt(i * 100))
		b := shared.Update(sampleAt(i * 100))
		if a != b {
			t.Fatalf("step %d: %+v vs %+v", i, a, b)
		}
	}
	if plain.Estimates() != shared.Estimates() {
		t.Fatalf("estimate counts diverge: %d vs %d", plain.Estimates(), shared.Estimates())
	}
	shared.Reset()
	if got := shared.Update(sampleAt(10_000)); got.Valid {
		t.Fatal("first post-Reset update should prime, not estimate")
	}
}

// TestSharedEstimatorConcurrentUpdate is the race-stress test: concurrent
// updaters must never corrupt the (prev, current) pair — every valid
// estimate corresponds to a well-formed interval, and the valid-estimate
// counter accounts for at most one estimate per non-priming call.
func TestSharedEstimatorConcurrentUpdate(t *testing.T) {
	const (
		workers = 8
		updates = 2000
	)
	var shared SharedEstimator
	var mu sync.Mutex
	tick := int64(0)
	nextSample := func() Sample {
		mu.Lock()
		defer mu.Unlock()
		tick++
		return sampleAt(tick * 100)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < updates; i++ {
				e := shared.Update(nextSample())
				if e.Valid && (e.Latency < 0 || e.Throughput < 0) {
					panic("negative estimate from a valid interval")
				}
			}
		}()
	}
	wg.Wait()
	total := uint64(workers * updates)
	got := shared.Estimates()
	if got == 0 || got >= total {
		t.Fatalf("valid estimates = %d of %d updates, want within (0, total)", got, total)
	}
}
