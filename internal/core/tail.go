// Tail estimation: composing per-queue delay distributions into end-to-end
// quantiles.
//
// The mean formula (estimator.go) composes per-queue Little's-law *averages*.
// For tail SLOs the same decomposition applies to distributions: under the
// Kleinrock independence assumption — each queue's delay is independent of
// the others', standard for end-to-end delay approximation in queueing
// networks — the end-to-end delay is the sum of independent per-queue delays,
// so its distribution is the convolution
//
//	L ~ L_unacked^local ⊛ L_unread^local ⊛ L_unread^remote  (− ack-delay shift)
//
// evaluated on the fixed qstate.DelayHist bucket grid. The remote ack-delay
// term is a *subtraction* in the mean formula; a distributional deconvolution
// is ill-posed, so the composition shifts the composed quantiles down by the
// remote ack-delay's mean — with a point-mass ack-delay distribution this is
// exact, and the mean formula is recovered exactly when every queue's
// distribution is a point mass (the degenerate case, pinned by tests).
//
// Both endpoint perspectives are composed and the per-quantile maximum taken,
// mirroring EstimateE2E's "account for possible underestimations". When
// either side's histograms are absent (a v1 peer) or reordered, the tail
// estimate *abstains* (Valid=false) while the mean estimate proceeds — SLO
// policies treat an abstaining tail like a degraded tick.

package core

import (
	"time"

	"e2ebatch/internal/qstate"
)

// TailQuantiles lists the canonical quantiles a TailEstimate carries, in
// field order P50, P90, P99, P999.
var TailQuantiles = [4]float64{0.50, 0.90, 0.99, 0.999}

// TailEstimate is the composed end-to-end delay quantile estimate over one
// interval. Quantized to the qstate.DelayHist bucket grid: each value is a
// bucket midpoint (within 12.5% of the true bucket value).
type TailEstimate struct {
	P50, P90, P99, P999 time.Duration
	// Valid reports whether at least one perspective could be composed.
	// False means the estimator abstained: no tail histograms were
	// exchanged (v1 peer), the deltas were reordered, or the interval saw
	// no departures.
	Valid bool
}

// Quantile maps q onto the nearest canonical tail field: q ≤ 0.5 → P50,
// ≤ 0.9 → P90, ≤ 0.99 → P99, above → P999.
//
//e2e:hotpath
func (t TailEstimate) Quantile(q float64) time.Duration {
	switch {
	case q <= 0.50:
		return t.P50
	case q <= 0.90:
		return t.P90
	case q <= 0.99:
		return t.P99
	default:
		return t.P999
	}
}

// DelayDist is one queue's delay distribution over an interval: normalized
// probability mass per qstate delay bucket. N is the number of departures
// the mass was estimated from; N == 0 is the empty distribution (an idle
// queue composes as zero added delay).
type DelayDist struct {
	P [qstate.DelayBuckets]float64
	N uint64
}

// DistBetween subtracts two successive cumulative delay histograms of one
// queue into the interval's normalized distribution. ok=false flags
// reordered snapshots (a bucket moved backwards), mirroring WireAvgs.
//
//e2e:hotpath
func DistBetween(prev, now *qstate.DelayHist) (DelayDist, bool) {
	var d DelayDist
	delta, total, ok := qstate.DelayDeltas(prev, now)
	if !ok {
		return DelayDist{}, false
	}
	d.N = total
	if total == 0 {
		return d, true
	}
	inv := 1 / float64(total)
	for i := range d.P {
		if delta.Counts[i] != 0 {
			d.P[i] = float64(delta.Counts[i]) * inv
		}
	}
	return d, true
}

// TailDists bundles one endpoint's three per-queue interval distributions.
type TailDists struct {
	Unacked  DelayDist
	Unread   DelayDist
	AckDelay DelayDist
}

// TailDistsBetween computes all three queue distributions between two
// successive tail snapshots of the same endpoint.
//
//e2e:hotpath
func TailDistsBetween(prev, now *qstate.WireTails) (TailDists, bool) {
	var t TailDists
	var ok bool
	if t.Unacked, ok = DistBetween(&prev.Unacked, &now.Unacked); !ok {
		return TailDists{}, false
	}
	if t.Unread, ok = DistBetween(&prev.Unread, &now.Unread); !ok {
		return TailDists{}, false
	}
	if t.AckDelay, ok = DistBetween(&prev.AckDelay, &now.AckDelay); !ok {
		return TailDists{}, false
	}
	return t, true
}

// sumBucket[i][j] is the bucket of DelayBucketMid(i) + DelayBucketMid(j):
// the convolution's re-bucketing rule, precomputed once. Because midpoints
// are positive and buckets tile monotonically, sumBucket[i][j] >= max(i, j)
// — which is what makes composed quantiles dominate per-stage quantiles.
var sumBucket [qstate.DelayBuckets][qstate.DelayBuckets]uint8

func init() {
	for i := 0; i < qstate.DelayBuckets; i++ {
		for j := 0; j < qstate.DelayBuckets; j++ {
			sumBucket[i][j] = uint8(qstate.DelayBucket(qstate.DelayBucketMid(i) + qstate.DelayBucketMid(j)))
		}
	}
}

// convolveInto replaces acc with acc ⊛ b on the bucket grid. An empty b is
// the identity (no added delay).
//
//e2e:hotpath
func convolveInto(acc *DelayDist, b *DelayDist) {
	if b.N == 0 {
		return
	}
	var out [qstate.DelayBuckets]float64
	for i := range acc.P {
		pi := acc.P[i]
		if pi == 0 {
			continue
		}
		row := &sumBucket[i]
		for j := range b.P {
			if pj := b.P[j]; pj != 0 {
				out[row[j]] += pi * pj
			}
		}
	}
	acc.P = out
}

// distQuantile returns the q-quantile of d as a bucket midpoint: the first
// bucket whose cumulative mass reaches q. Mass sums to 1 up to float error;
// the last populated bucket backstops q ≈ 1.
//
//e2e:hotpath
func distQuantile(d *DelayDist, q float64) time.Duration {
	var cum float64
	last := 0
	for i := range d.P {
		if d.P[i] == 0 {
			continue
		}
		cum += d.P[i]
		last = i
		if cum >= q {
			return qstate.DelayBucketMid(i)
		}
	}
	return qstate.DelayBucketMid(last)
}

// composeView convolves one perspective's three queue distributions
// (local unacked ⊛ local unread ⊛ remote unread) and reads off the canonical
// quantiles, shifted down by the remote ack-delay mean and clamped at zero.
// Like viewLatency, the unacked distribution must be populated — it carries
// the network round trip; empty unread distributions contribute zero delay.
//
//e2e:hotpath
func composeView(ua, urLocal, urRemote *DelayDist, ackMean time.Duration) (TailEstimate, bool) {
	if ua.N == 0 {
		return TailEstimate{}, false
	}
	acc := *ua
	convolveInto(&acc, urLocal)
	convolveInto(&acc, urRemote)
	var t TailEstimate
	t.P50 = shiftClamp(distQuantile(&acc, TailQuantiles[0]), ackMean)
	t.P90 = shiftClamp(distQuantile(&acc, TailQuantiles[1]), ackMean)
	t.P99 = shiftClamp(distQuantile(&acc, TailQuantiles[2]), ackMean)
	t.P999 = shiftClamp(distQuantile(&acc, TailQuantiles[3]), ackMean)
	t.Valid = true
	return t, true
}

//e2e:hotpath
func shiftClamp(v, shift time.Duration) time.Duration {
	v -= shift
	if v < 0 {
		return 0
	}
	return v
}

// ComposeTail combines both endpoints' interval distributions into the
// end-to-end tail estimate: each perspective composes its own view, and the
// result takes the per-quantile maximum over the valid views, mirroring
// EstimateE2E. localD/remoteD supply the ack-delay means for the shift (an
// invalid ack-delay average shifts by zero, exactly like viewLatency skips
// the term).
//
//e2e:hotpath
func ComposeTail(local, remote *TailDists, localD, remoteD Delays) TailEstimate {
	var lAck, rAck time.Duration
	if remoteD.AckDelay.Valid {
		rAck = remoteD.AckDelay.Latency
	}
	if localD.AckDelay.Valid {
		lAck = localD.AckDelay.Latency
	}
	lv, lok := composeView(&local.Unacked, &local.Unread, &remote.Unread, rAck)
	rv, rok := composeView(&remote.Unacked, &remote.Unread, &local.Unread, lAck)
	switch {
	case lok && rok:
		return TailEstimate{
			P50:   maxDur(lv.P50, rv.P50),
			P90:   maxDur(lv.P90, rv.P90),
			P99:   maxDur(lv.P99, rv.P99),
			P999:  maxDur(lv.P999, rv.P999),
			Valid: true,
		}
	case lok:
		return lv
	case rok:
		return rv
	default:
		return TailEstimate{}
	}
}

//e2e:hotpath
func maxDur(a, b time.Duration) time.Duration {
	if b > a {
		return b
	}
	return a
}
