package core

import (
	"sync"
	"time"
)

// SharedEstimator is the concurrency-safe variant of Estimator: the same
// previous/current sample path behind a mutex, for deployments where the
// samples arrive from a different goroutine than the one reading estimates —
// e.g. one estimator per connection updated by a per-connection reader while
// a central controller polls. The plain Estimator stays lock-free for
// single-goroutine tick loops such as the simulator's.
//
// The zero value is ready to use.
type SharedEstimator struct {
	mu  sync.Mutex
	est Estimator
}

// Update folds in a new sample and returns the estimate for the interval
// since the previous one, exactly like Estimator.Update. Concurrent callers
// serialize: each sees a consistent (prev, current) pair, so every returned
// interval is well-formed even under contention.
func (e *SharedEstimator) Update(s Sample) Estimate {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.est.Update(s)
}

// Reset discards the priming state.
func (e *SharedEstimator) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.est.Reset()
}

// Estimates returns how many valid estimates have been produced.
func (e *SharedEstimator) Estimates() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.est.Estimates()
}

// SetMaxRemoteAge configures the staleness bound on the peer's metadata,
// like setting Estimator.MaxRemoteAge. Safe to call concurrently with
// Update; the new bound applies from the next update on.
func (e *SharedEstimator) SetMaxRemoteAge(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.est.MaxRemoteAge = d
}

// DegradedCount returns how many post-priming updates ran without usable
// peer metadata.
func (e *SharedEstimator) DegradedCount() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.est.DegradedCount()
}
