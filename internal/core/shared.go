package core

import (
	"runtime"
	"sync/atomic"
	"time"
)

// SharedEstimator is the concurrency-safe variant of Estimator: the same
// previous/current sample path, for deployments where the samples arrive
// from a different goroutine than the one reading estimates — e.g. one
// estimator per connection updated by a per-connection reader while a
// central controller polls. The plain Estimator stays lock-free for
// single-goroutine tick loops such as the simulator's.
//
// Update is //e2e:hotpath: it runs once per tick on every connection, so
// with 100k connections a mutex-and-defer body is measurable GC and
// scheduler pressure. Instead the writer side spins on a single CAS word —
// updates for one estimator are near-uniform in cost and ticks are sparse
// relative to their duration, so the spin is shorter than a futex round
// trip — while the read-side accessors (Estimates, DegradedCount) serve
// from atomic mirrors refreshed at the end of each update and never touch
// the writer's cache line: a poller sweeping thousands of estimators
// contends with none of them. The padding keeps the spin word, the
// estimator state and the mirrors on separate cache lines so the poller's
// reads do not false-share with the writer.
//
// The zero value is ready to use.
type SharedEstimator struct {
	// writing is the writer spinlock: 0 free, 1 held. Update and Reset are
	// the only writers; both are expected to be rare relative to reads.
	writing atomic.Uint32
	_       [60]byte // keep the spin word off the state's cache line

	est Estimator
	_   [64]byte // keep the read mirrors off the writer's cache lines

	// Read-side mirrors, refreshed under the spinlock at the end of every
	// update and read without any lock.
	estimates atomic.Uint64
	degraded  atomic.Uint64
	// maxRemoteAge carries SetMaxRemoteAge's bound (as nanoseconds) to the
	// next update without making configuration writers spin.
	maxRemoteAge atomic.Int64
}

func (e *SharedEstimator) lock() {
	for !e.writing.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

func (e *SharedEstimator) unlock() { e.writing.Store(0) }

// Update folds in a new sample and returns the estimate for the interval
// since the previous one, exactly like Estimator.Update. Concurrent callers
// serialize: each sees a consistent (prev, current) pair, so every returned
// interval is well-formed even under contention.
//
//e2e:hotpath
func (e *SharedEstimator) Update(s Sample) Estimate {
	e.lock()
	e.est.MaxRemoteAge = time.Duration(e.maxRemoteAge.Load())
	est := e.est.Update(s)
	e.estimates.Store(e.est.Estimates())
	e.degraded.Store(e.est.DegradedCount())
	e.unlock()
	return est
}

// Reset discards the priming state.
func (e *SharedEstimator) Reset() {
	e.lock()
	e.est.Reset()
	e.unlock()
}

// Estimates returns how many valid estimates have been produced. It reads
// an atomic mirror and never contends with Update.
func (e *SharedEstimator) Estimates() uint64 {
	return e.estimates.Load()
}

// SetMaxRemoteAge configures the staleness bound on the peer's metadata,
// like setting Estimator.MaxRemoteAge. Safe to call concurrently with
// Update; the new bound applies from the next update on.
func (e *SharedEstimator) SetMaxRemoteAge(d time.Duration) {
	e.maxRemoteAge.Store(int64(d))
}

// DegradedCount returns how many post-priming updates ran without usable
// peer metadata. Like Estimates, it reads an atomic mirror.
func (e *SharedEstimator) DegradedCount() uint64 {
	return e.degraded.Load()
}
