package core

import (
	"testing"
	"time"

	"e2ebatch/internal/qstate"
)

// mkAvgs builds a valid Avgs with the given latency and throughput.
func mkDelay(lat time.Duration, tput float64) qstate.Avgs {
	return qstate.Avgs{Latency: lat, Throughput: tput, Valid: true, Departures: 1}
}

func TestViewLatencyFormula(t *testing.T) {
	local := Delays{
		Unacked: mkDelay(100*time.Microsecond, 1000),
		Unread:  mkDelay(20*time.Microsecond, 1000),
	}
	remote := Delays{
		Unread:   mkDelay(30*time.Microsecond, 1000),
		AckDelay: mkDelay(10*time.Microsecond, 1000),
	}
	// L = 100 - 10 + 20 + 30 = 140µs
	got, ok := viewLatency(local, remote)
	if !ok {
		t.Fatal("view invalid")
	}
	if got != 140*time.Microsecond {
		t.Fatalf("L = %v, want 140µs", got)
	}
}

func TestViewLatencyRequiresUnacked(t *testing.T) {
	local := Delays{Unread: mkDelay(time.Microsecond, 1)}
	if _, ok := viewLatency(local, Delays{}); ok {
		t.Fatal("view valid without unacked delay")
	}
}

func TestViewLatencyIdleQueuesContributeZero(t *testing.T) {
	local := Delays{Unacked: mkDelay(50*time.Microsecond, 1)}
	got, ok := viewLatency(local, Delays{})
	if !ok || got != 50*time.Microsecond {
		t.Fatalf("L = %v,%v want 50µs,true", got, ok)
	}
}

func TestViewLatencyClampsNegative(t *testing.T) {
	local := Delays{Unacked: mkDelay(5*time.Microsecond, 1)}
	remote := Delays{AckDelay: mkDelay(50*time.Microsecond, 1)}
	got, ok := viewLatency(local, remote)
	if !ok || got != 0 {
		t.Fatalf("L = %v,%v want 0,true (clamped)", got, ok)
	}
}

func TestEstimateE2ETakesMaxOfViews(t *testing.T) {
	local := Delays{Unacked: mkDelay(100*time.Microsecond, 500)}
	remote := Delays{Unacked: mkDelay(150*time.Microsecond, 700)}
	e := EstimateE2E(local, remote)
	if !e.Valid || !e.LocalViewValid || !e.RemoteViewValid {
		t.Fatalf("validity: %+v", e)
	}
	if e.Latency != 150*time.Microsecond {
		t.Fatalf("latency = %v, want max view 150µs", e.Latency)
	}
	if e.Throughput != 500 {
		t.Fatalf("throughput = %v, want local λ 500", e.Throughput)
	}
}

func TestEstimateE2ESingleView(t *testing.T) {
	local := Delays{Unacked: mkDelay(80*time.Microsecond, 100)}
	e := EstimateE2E(local, Delays{})
	if !e.Valid || e.RemoteViewValid {
		t.Fatalf("validity: %+v", e)
	}
	if e.Latency != 80*time.Microsecond {
		t.Fatalf("latency = %v", e.Latency)
	}

	e = EstimateE2E(Delays{}, local)
	if !e.Valid || e.LocalViewValid {
		t.Fatalf("remote-only validity: %+v", e)
	}
	if e.Latency != 80*time.Microsecond {
		t.Fatalf("remote-only latency = %v", e.Latency)
	}
}

func TestEstimateE2EInvalidWhenIdle(t *testing.T) {
	if e := EstimateE2E(Delays{}, Delays{}); e.Valid {
		t.Fatal("idle estimate reported valid")
	}
}

// buildQueues drives a synthetic schedule through real qstate.States: each
// request is resident in unacked for ua, in remote unread for ur; the remote
// ackdelay queue holds it for ad.
func buildQueues(t *testing.T, n int, period, ua, ur, ad time.Duration) (l0, l1 Queues, r0, r1 qstate.WireState) {
	t.Helper()
	var lu, lr, la qstate.State // local unacked/unread/ackdelay
	var ru, rr, ra qstate.State // remote
	snapL := func(at time.Duration) Queues {
		ts := qstate.Time(at)
		return Queues{Unacked: lu.Snapshot(ts), Unread: lr.Snapshot(ts), AckDelay: la.Snapshot(ts)}
	}
	snapR := func(at time.Duration) qstate.WireState {
		ts := qstate.Time(at)
		return qstate.WireState{
			Unacked:  qstate.ToWire(ru.Snapshot(ts)),
			Unread:   qstate.ToWire(rr.Snapshot(ts)),
			AckDelay: qstate.ToWire(ra.Snapshot(ts)),
		}
	}
	l0, r0 = snapL(0), snapR(0)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * period
		lu.Track(qstate.Time(at), 1)
		lu.Track(qstate.Time(at+ua), -1)
		rr.Track(qstate.Time(at+ua), 1)
		rr.Track(qstate.Time(at+ua+ur), -1)
		ra.Track(qstate.Time(at+ua), 1)
		ra.Track(qstate.Time(at+ua+ad), -1)
	}
	end := time.Duration(n)*period + ua + ur + ad
	l1, r1 = snapL(end), snapR(end)
	return
}

func TestEstimatorEndToEnd(t *testing.T) {
	// 1000 requests, 100µs apart; unacked 50µs, remote unread 20µs,
	// remote ackdelay 10µs. Local view: 50 − 10 + 0 + 20 = 60µs.
	l0, l1, r0, r1 := buildQueues(t, 1000, 100*time.Microsecond,
		50*time.Microsecond, 20*time.Microsecond, 10*time.Microsecond)
	var e Estimator
	if got := e.Update(Sample{Local: l0, Remote: r0, RemoteOK: true}); got.Valid {
		t.Fatal("priming update returned a valid estimate")
	}
	got := e.Update(Sample{Local: l1, Remote: r1, RemoteOK: true})
	if !got.Valid {
		t.Fatal("estimate invalid")
	}
	want := 60 * time.Microsecond
	diff := got.LocalView - want
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Microsecond {
		t.Fatalf("local view = %v, want ~%v", got.LocalView, want)
	}
	// Throughput ≈ 10k requests/sec.
	if got.Throughput < 9000 || got.Throughput > 11000 {
		t.Fatalf("throughput = %v, want ~10000", got.Throughput)
	}
	if e.Estimates() != 1 {
		t.Fatalf("Estimates() = %d", e.Estimates())
	}
}

func TestEstimatorWithoutRemote(t *testing.T) {
	l0, l1, _, _ := buildQueues(t, 100, 100*time.Microsecond,
		50*time.Microsecond, 0, 0)
	var e Estimator
	e.Update(Sample{Local: l0})
	got := e.Update(Sample{Local: l1})
	if !got.Valid || got.RemoteViewValid {
		t.Fatalf("estimate = %+v", got)
	}
	if got.LocalView < 49*time.Microsecond || got.LocalView > 51*time.Microsecond {
		t.Fatalf("local view = %v, want ~50µs", got.LocalView)
	}
}

func TestEstimatorReset(t *testing.T) {
	var e Estimator
	e.Update(Sample{})
	e.Reset()
	if got := e.Update(Sample{}); got.Valid {
		t.Fatal("post-reset first update must prime, not estimate")
	}
}

func TestAggregateWeightsByThroughput(t *testing.T) {
	ests := []Estimate{
		{Latency: 100 * time.Microsecond, Throughput: 1000, Valid: true},
		{Latency: 300 * time.Microsecond, Throughput: 3000, Valid: true},
		{Latency: time.Second, Valid: false}, // skipped
	}
	got := Aggregate(ests)
	if !got.Valid {
		t.Fatal("aggregate invalid")
	}
	// (100·1000 + 300·3000) / 4000 = 250µs
	if got.Latency != 250*time.Microsecond {
		t.Fatalf("latency = %v, want 250µs", got.Latency)
	}
	if got.Throughput != 4000 {
		t.Fatalf("throughput = %v, want 4000", got.Throughput)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if got := Aggregate(nil); got.Valid {
		t.Fatal("empty aggregate valid")
	}
	if got := Aggregate([]Estimate{{Valid: false}}); got.Valid {
		t.Fatal("all-invalid aggregate valid")
	}
}

func TestAggregateZeroThroughputWeight(t *testing.T) {
	ests := []Estimate{
		{Latency: 100 * time.Microsecond, Throughput: 0, Valid: true},
		{Latency: 200 * time.Microsecond, Throughput: 0, Valid: true},
	}
	got := Aggregate(ests)
	if !got.Valid || got.Latency != 150*time.Microsecond {
		t.Fatalf("aggregate = %+v, want equal-weight 150µs", got)
	}
}

func BenchmarkEstimatorUpdate(b *testing.B) {
	l0, l1, r0, r1 := buildQueues(&testing.T{}, 10, 100*time.Microsecond,
		50*time.Microsecond, 20*time.Microsecond, 10*time.Microsecond)
	var e Estimator
	e.Update(Sample{Local: l0, Remote: r0, RemoteOK: true})
	samples := [2]Sample{
		{Local: l1, Remote: r1, RemoteOK: true},
		{Local: l0, Remote: r0, RemoteOK: true},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.prev = samples[1]
		_ = e.Update(samples[0])
	}
}

// TestEstimatorDegradedWithoutRemote: post-priming updates lacking peer
// metadata flag Degraded (with RemoteStale false — nothing ever arrived)
// while the local-only estimate stays valid and sane.
func TestEstimatorDegradedWithoutRemote(t *testing.T) {
	l0, l1, _, _ := buildQueues(t, 100, 100*time.Microsecond,
		50*time.Microsecond, 0, 0)
	var e Estimator
	e.Update(Sample{Local: l0})
	got := e.Update(Sample{Local: l1})
	if !got.Degraded || got.RemoteStale {
		t.Fatalf("estimate = %+v, want Degraded without RemoteStale", got)
	}
	if !got.Valid || got.Latency <= 0 {
		t.Fatalf("degraded estimate lost the local fallback: %+v", got)
	}
	if e.DegradedCount() != 1 {
		t.Fatalf("DegradedCount() = %d, want 1", e.DegradedCount())
	}
}

// TestEstimatorStaleRemoteDegrades: with MaxRemoteAge set, an exchange older
// than the bound is excluded — Degraded and RemoteStale both set, the remote
// terms dropped from the formula — while a fresh exchange keeps the full
// estimate. With the buildQueues workload the remote terms are worth
// −10 + 20 = +10µs on top of the 50µs local unacked delay.
func TestEstimatorStaleRemoteDegrades(t *testing.T) {
	l0, l1, r0, r1 := buildQueues(t, 1000, 100*time.Microsecond,
		50*time.Microsecond, 20*time.Microsecond, 10*time.Microsecond)
	at0, at1 := qstate.Time(0), qstate.Time(200*time.Millisecond)
	near := func(got, want time.Duration) bool {
		d := got - want
		return d > -time.Microsecond && d < time.Microsecond
	}

	fresh := Estimator{MaxRemoteAge: 5 * time.Millisecond}
	fresh.Update(Sample{Local: l0, Remote: r0, RemoteOK: true, At: at0, RemoteAt: at0})
	got := fresh.Update(Sample{Local: l1, Remote: r1, RemoteOK: true, At: at1, RemoteAt: at1 - qstate.Time(time.Millisecond)})
	if got.Degraded || !near(got.LocalView, 60*time.Microsecond) {
		t.Fatalf("fresh exchange: %+v, want non-degraded ~60µs", got)
	}

	stale := Estimator{MaxRemoteAge: 5 * time.Millisecond}
	stale.Update(Sample{Local: l0, Remote: r0, RemoteOK: true, At: at0, RemoteAt: at0})
	got = stale.Update(Sample{Local: l1, Remote: r1, RemoteOK: true, At: at1, RemoteAt: at1 - qstate.Time(50*time.Millisecond)})
	if !got.Degraded || !got.RemoteStale {
		t.Fatalf("stale exchange not flagged: %+v", got)
	}
	if !got.Valid || !near(got.LocalView, 50*time.Microsecond) {
		t.Fatalf("stale exchange fallback wrong: %+v, want valid local-only ~50µs", got)
	}
	if stale.DegradedCount() != 1 {
		t.Fatalf("DegradedCount() = %d, want 1", stale.DegradedCount())
	}

	// Zero MaxRemoteAge disables the check entirely.
	lax := Estimator{}
	lax.Update(Sample{Local: l0, Remote: r0, RemoteOK: true, At: at0, RemoteAt: at0})
	got = lax.Update(Sample{Local: l1, Remote: r1, RemoteOK: true, At: at1, RemoteAt: 0})
	if got.Degraded {
		t.Fatalf("staleness check ran with MaxRemoteAge zero: %+v", got)
	}
}

// TestEstimatorResetKeepsConfig: a mid-run Reset (connection reset fault)
// re-primes but must not wipe MaxRemoteAge — the next connection faces the
// same network.
func TestEstimatorResetKeepsConfig(t *testing.T) {
	e := Estimator{MaxRemoteAge: 7 * time.Millisecond}
	e.Update(Sample{})
	e.Reset()
	if e.MaxRemoteAge != 7*time.Millisecond {
		t.Fatalf("Reset wiped MaxRemoteAge: %v", e.MaxRemoteAge)
	}
	if got := e.Update(Sample{}); got.Valid || got.Degraded {
		t.Fatalf("first post-reset update not a priming update: %+v", got)
	}
}
