package core

import (
	"testing"
	"time"

	"e2ebatch/internal/qstate"
)

// splitmix64: the zoo's keyed PRF, re-derived so the tail property tests are
// deterministic without importing loadgen.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// randDist builds a normalized interval distribution with mass in up to k
// random buckets.
func randDist(seed uint64, k int) DelayDist {
	var h qstate.DelayHist
	for i := 0; i < k; i++ {
		r := splitmix64(seed + uint64(i))
		h.Counts[r%qstate.DelayBuckets] += uint32(1 + (r>>32)%97)
	}
	var zero qstate.DelayHist
	d, ok := DistBetween(&zero, &h)
	if !ok {
		panic("randDist: delta rejected")
	}
	return d
}

// pointHist returns a cumulative histogram with n observations of exactly d.
func pointHist(d time.Duration, n uint32) qstate.DelayHist {
	var h qstate.DelayHist
	h.RecordN(d, n)
	return h
}

func pointDist(d time.Duration, n uint32) DelayDist {
	var zero qstate.DelayHist
	h := pointHist(d, n)
	out, ok := DistBetween(&zero, &h)
	if !ok {
		panic("pointDist: delta rejected")
	}
	return out
}

// TestComposeTailDegenerateMatchesMean: with point-mass distributions the
// composition collapses to the mean formula — all four quantiles are equal
// and match L_unacked + L_unread^l + L_unread^r − L_ackdelay^r up to bucket
// quantization (each of the three summed stages contributes ≤12.5% midpoint
// error, composed through one extra re-bucketing).
func TestComposeTailDegenerateMatchesMean(t *testing.T) {
	cases := []struct{ ua, url, urr, ack time.Duration }{
		{200 * time.Microsecond, 40 * time.Microsecond, 70 * time.Microsecond, 0},
		{1 * time.Millisecond, 0, 0, 0},
		{500 * time.Microsecond, 100 * time.Microsecond, 0, 50 * time.Microsecond},
		{3 * time.Millisecond, 800 * time.Microsecond, 1200 * time.Microsecond, 300 * time.Microsecond},
	}
	for _, c := range cases {
		local := TailDists{Unacked: pointDist(c.ua, 10), Unread: pointDist(c.url, 10)}
		remote := TailDists{Unacked: pointDist(c.ua, 10), Unread: pointDist(c.urr, 10)}
		var localD, remoteD Delays
		remoteD.AckDelay = qstate.Avgs{Latency: c.ack, Valid: c.ack > 0}
		localD.AckDelay = remoteD.AckDelay
		got := ComposeTail(&local, &remote, localD, remoteD)
		if !got.Valid {
			t.Fatalf("%+v: composition abstained", c)
		}
		if got.P50 != got.P90 || got.P90 != got.P99 || got.P99 != got.P999 {
			t.Fatalf("%+v: point masses produced spread quantiles %+v", c, got)
		}
		mean := c.ua + c.url + c.urr - c.ack
		rel := float64(got.P99-mean) / float64(mean)
		if rel < -0.35 || rel > 0.35 {
			t.Fatalf("%+v: composed %v vs mean-formula %v (%.1f%% off)", c, got.P99, mean, 100*rel)
		}
	}
}

// TestComposeTailQuantilesMonotone: for random distributions the four
// canonical quantiles are nondecreasing, and Quantile(q) maps onto them
// monotonically.
func TestComposeTailQuantilesMonotone(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		local := TailDists{
			Unacked: randDist(seed*1000, 1+int(seed%7)),
			Unread:  randDist(seed*2000, int(seed%5)),
		}
		remote := TailDists{
			Unacked: randDist(seed*3000, 1+int(seed%4)),
			Unread:  randDist(seed*4000, int(seed%6)),
		}
		got := ComposeTail(&local, &remote, Delays{}, Delays{})
		if !got.Valid {
			t.Fatalf("seed %d: abstained with populated unacked dists", seed)
		}
		if got.P50 > got.P90 || got.P90 > got.P99 || got.P99 > got.P999 {
			t.Fatalf("seed %d: quantiles not monotone: %+v", seed, got)
		}
		qs := []float64{0, 0.3, 0.5, 0.8, 0.9, 0.95, 0.99, 0.995, 0.999, 1}
		for i := 1; i < len(qs); i++ {
			if got.Quantile(qs[i]) < got.Quantile(qs[i-1]) {
				t.Fatalf("seed %d: Quantile(%v) < Quantile(%v)", seed, qs[i], qs[i-1])
			}
		}
	}
}

// TestComposedP99DominatesStages: without the ack-delay shift, the composed
// p99 is bounded below by the max single-stage p99 — summing independent
// non-negative delays can only push quantiles up, and the midpoint
// re-bucketing rule preserves that (sumBucket[i][j] >= max(i,j)).
func TestComposedP99DominatesStages(t *testing.T) {
	for seed := uint64(31); seed <= 230; seed++ {
		ua := randDist(seed*11, 1+int(seed%9))
		url := randDist(seed*13, 1+int(seed%8))
		urr := randDist(seed*17, 1+int(seed%6))
		est, ok := composeView(&ua, &url, &urr, 0)
		if !ok {
			t.Fatalf("seed %d: compose failed", seed)
		}
		stageMax := distQuantile(&ua, 0.99)
		if q := distQuantile(&url, 0.99); q > stageMax {
			stageMax = q
		}
		if q := distQuantile(&urr, 0.99); q > stageMax {
			stageMax = q
		}
		if est.P99 < stageMax {
			t.Fatalf("seed %d: composed p99 %v below max stage p99 %v", seed, est.P99, stageMax)
		}
	}
}

// TestSumBucketDominates pins the re-bucketing property the bound above
// rests on, over the whole table.
func TestSumBucketDominates(t *testing.T) {
	for i := 0; i < qstate.DelayBuckets; i++ {
		for j := 0; j < qstate.DelayBuckets; j++ {
			if int(sumBucket[i][j]) < i || int(sumBucket[i][j]) < j {
				t.Fatalf("sumBucket[%d][%d] = %d below its arguments", i, j, sumBucket[i][j])
			}
			if sumBucket[i][j] != sumBucket[j][i] {
				t.Fatalf("sumBucket not symmetric at %d,%d", i, j)
			}
		}
	}
}

// TestComposeTailAbstention: empty unacked distributions, v1 peers and
// reordered histogram deltas all abstain rather than fabricate a tail.
func TestComposeTailAbstention(t *testing.T) {
	empty := TailDists{}
	if got := ComposeTail(&empty, &empty, Delays{}, Delays{}); got.Valid {
		t.Fatal("composed a tail from empty distributions")
	}
	// One valid view is enough.
	local := TailDists{Unacked: pointDist(time.Millisecond, 5)}
	got := ComposeTail(&local, &empty, Delays{}, Delays{})
	if !got.Valid {
		t.Fatal("single valid view abstained")
	}

	// Reordered cumulative histograms are rejected by TailDistsBetween.
	var a, b qstate.WireTails
	a.Unacked.RecordN(time.Millisecond, 10)
	if _, ok := TailDistsBetween(&a, &b); ok {
		t.Fatal("TailDistsBetween accepted a backwards pair")
	}
	if _, ok := TailDistsBetween(&b, &a); !ok {
		t.Fatal("TailDistsBetween rejected a forward pair")
	}
}

// tailSample builds an estimator sample at time now whose local and remote
// cumulative tails have recorded n departures of the given delays.
func tailSample(now qstate.Time, lua, rua time.Duration, n uint32) Sample {
	s := Sample{At: now, RemoteOK: true, LocalTailsOK: true, RemoteTailsOK: true}
	s.Local.Unacked = qstate.Snapshot{Time: now, Total: int64(n), Integral: int64(n) * int64(lua)}
	s.Local.Unread = qstate.Snapshot{Time: now}
	s.Local.AckDelay = qstate.Snapshot{Time: now}
	s.Remote.Unacked = qstate.WireQueue{TimeUS: uint32(uint64(now) / 1000), Total: n, IntegralUS: uint32(uint64(n) * uint64(rua) / 1000)}
	s.Remote.Unread = qstate.WireQueue{TimeUS: uint32(uint64(now) / 1000)}
	s.Remote.AckDelay = qstate.WireQueue{TimeUS: uint32(uint64(now) / 1000)}
	if n > 0 {
		s.LocalTails.Unacked.RecordN(lua, n)
		s.RemoteTails.Unacked.RecordN(rua, n)
	}
	return s
}

// TestEstimatorUpdateComputesTail: a primed estimator fed samples carrying
// tail histograms produces a valid Tail whose p99 reflects the slower side
// (per-quantile max of views), and abstains when either side lacks tails.
func TestEstimatorUpdateComputesTail(t *testing.T) {
	var e Estimator
	e.Update(tailSample(0, 0, 0, 0))
	est := e.Update(tailSample(qstate.Time(100*time.Millisecond), 400*time.Microsecond, 900*time.Microsecond, 50))
	if !est.Valid || !est.Tail.Valid {
		t.Fatalf("estimate %+v: tail abstained with tails on both sides", est)
	}
	// The remote view (900µs unacked) dominates; allow bucket quantization.
	if est.Tail.P99 < 700*time.Microsecond || est.Tail.P99 > 1200*time.Microsecond {
		t.Fatalf("tail p99 = %v, want ≈900µs", est.Tail.P99)
	}
	if est.Tail.P50 > est.Tail.P999 {
		t.Fatalf("tail quantiles inverted: %+v", est.Tail)
	}

	// A v1 peer: same stream without remote tails → mean valid, tail abstains.
	var e2 Estimator
	s0 := tailSample(0, 0, 0, 0)
	s0.RemoteTailsOK = false
	e2.Update(s0)
	s1 := tailSample(qstate.Time(100*time.Millisecond), 400*time.Microsecond, 900*time.Microsecond, 50)
	s1.RemoteTailsOK = false
	est2 := e2.Update(s1)
	if !est2.Valid {
		t.Fatalf("mean estimate must survive a v1 peer: %+v", est2)
	}
	if est2.Tail.Valid {
		t.Fatal("tail did not abstain for a v1 peer")
	}

	// Degraded interval (no remote exchange at all) → tail abstains too.
	var e3 Estimator
	s0 = tailSample(0, 0, 0, 0)
	s0.RemoteOK = false
	e3.Update(s0)
	s1 = tailSample(qstate.Time(100*time.Millisecond), 400*time.Microsecond, 900*time.Microsecond, 50)
	s1.RemoteOK = false
	est3 := e3.Update(s1)
	if !est3.Degraded || est3.Tail.Valid {
		t.Fatalf("degraded estimate %+v must not carry a tail", est3)
	}
}
