// Package trace reproduces the paper's prototype measurement workflow
// (§3.4): queue-state counters are exported ethtool-style at a fixed
// sampling interval from both communicating machines, and end-to-end
// estimates are derived by offline analysis of the collected log — no
// online peer exchange required.
//
// A Collector samples both endpoints of a simulated connection in every
// unit mode; Analyze replays a log into per-interval core estimates. Logs
// serialize to a plain text format so the offline analysis can genuinely be
// run out of process (see cmd/e2efig -trace).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"e2ebatch/internal/core"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
	"e2ebatch/internal/tcpsim"
)

// Record is one sampling instant: both sides' three queues in every unit.
type Record struct {
	At     sim.Time
	Client [tcpsim.NumUnits]core.Queues
	Server [tcpsim.NumUnits]core.Queues
}

// Event is an out-of-band annotation in the log — fault injections,
// mode switches, anything the offline analysis wants to correlate with the
// sampled counters. Kind is a short token (no spaces); Detail is free text
// and may be empty.
type Event struct {
	At     sim.Time
	Kind   string
	Detail string
}

// Log is an in-order series of records, plus any annotation events.
type Log struct {
	Records []Record
	Events  []Event
}

// AddEvent appends an annotation. Events must be added in time order (they
// are, when fed from a simulation's event loop).
func (l *Log) AddEvent(at sim.Time, kind, detail string) {
	l.Events = append(l.Events, Event{At: at, Kind: kind, Detail: detail})
}

// EventsBetween returns the events with From <= At < To.
func (l *Log) EventsBetween(from, to sim.Time) []Event {
	var out []Event
	for _, e := range l.Events {
		if e.At >= from && e.At < to {
			out = append(out, e)
		}
	}
	return out
}

// Collector samples two connection endpoints on a ticker — the ethtool
// poller of the paper's prototype.
type Collector struct {
	log    Log
	ticker *sim.Ticker
}

// NewCollector starts sampling client and server every interval.
func NewCollector(s *sim.Sim, client, server *tcpsim.Conn, interval time.Duration) *Collector {
	c := &Collector{}
	c.ticker = sim.NewTicker(s, interval, func(now sim.Time) {
		var r Record
		r.At = now
		for u := 0; u < tcpsim.NumUnits; u++ {
			ua, ur, ad := client.Snapshots(tcpsim.Unit(u))
			r.Client[u] = core.Queues{Unacked: ua, Unread: ur, AckDelay: ad}
			ua, ur, ad = server.Snapshots(tcpsim.Unit(u))
			r.Server[u] = core.Queues{Unacked: ua, Unread: ur, AckDelay: ad}
		}
		c.log.Records = append(c.log.Records, r)
	})
	return c
}

// Stop ceases sampling.
func (c *Collector) Stop() { c.ticker.Stop() }

// Log returns the collected log.
func (c *Collector) Log() *Log { return &c.log }

// Point is one analyzed interval.
type Point struct {
	From, To sim.Time
	Estimate core.Estimate
}

// Analyze derives per-interval end-to-end estimates for the given unit,
// treating the client as "local" (its unacked queue carries the requests).
func (l *Log) Analyze(unit tcpsim.Unit) []Point {
	if len(l.Records) < 2 {
		return nil
	}
	pts := make([]Point, 0, len(l.Records)-1)
	for i := 1; i < len(l.Records); i++ {
		prev, now := l.Records[i-1], l.Records[i]
		local := core.DelaysBetween(prev.Client[unit], now.Client[unit])
		remote := core.DelaysBetween(prev.Server[unit], now.Server[unit])
		pts = append(pts, Point{
			From:     prev.At,
			To:       now.At,
			Estimate: core.EstimateE2E(local, remote),
		})
	}
	return pts
}

// Overall analyzes the whole log as a single interval (first record to
// last) — the steady-state estimate used for the Figure 4 curves.
func (l *Log) Overall(unit tcpsim.Unit) core.Estimate {
	n := len(l.Records)
	if n < 2 {
		return core.Estimate{}
	}
	first, last := l.Records[0], l.Records[n-1]
	local := core.DelaysBetween(first.Client[unit], last.Client[unit])
	remote := core.DelaysBetween(first.Server[unit], last.Server[unit])
	return core.EstimateE2E(local, remote)
}

// WriteTo serializes the log in a line-oriented text format:
//
//	rec <at>
//	<side> <unit> <queue> <time> <total> <integral>
//	...
//	fault <at> <kind> <detail...>
//
// Annotation events follow the records; their detail runs to end of line
// and may be empty.
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	for _, r := range l.Records {
		if err := count(fmt.Fprintf(bw, "rec %d\n", int64(r.At))); err != nil {
			return n, err
		}
		for u := 0; u < tcpsim.NumUnits; u++ {
			sides := [2]struct {
				name string
				qs   core.Queues
			}{{"client", r.Client[u]}, {"server", r.Server[u]}}
			for _, side := range sides {
				queues := [3]struct {
					name string
					s    qstate.Snapshot
				}{
					{"unacked", side.qs.Unacked},
					{"unread", side.qs.Unread},
					{"ackdelay", side.qs.AckDelay},
				}
				for _, q := range queues {
					if err := count(fmt.Fprintf(bw, "%s %d %s %d %d %d\n",
						side.name, u, q.name, int64(q.s.Time), q.s.Total, q.s.Integral)); err != nil {
						return n, err
					}
				}
			}
		}
	}
	for _, e := range l.Events {
		if strings.ContainsAny(e.Kind, " \n") || strings.Contains(e.Detail, "\n") {
			return n, fmt.Errorf("trace: event %q at %d not serializable", e.Kind, int64(e.At))
		}
		line := fmt.Sprintf("fault %d %s %s", int64(e.At), e.Kind, e.Detail)
		if err := count(fmt.Fprintf(bw, "%s\n", strings.TrimRight(line, " "))); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadLog parses a log produced by WriteTo.
func ReadLog(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var log Log
	var cur *Record
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		var at int64
		if n, _ := fmt.Sscanf(text, "rec %d", &at); n == 1 {
			log.Records = append(log.Records, Record{At: sim.Time(at)})
			cur = &log.Records[len(log.Records)-1]
			continue
		}
		if strings.HasPrefix(text, "fault ") {
			parts := strings.SplitN(text, " ", 4)
			if len(parts) < 3 {
				return nil, fmt.Errorf("trace: line %d: malformed fault %q", line, text)
			}
			if _, err := fmt.Sscanf(parts[1], "%d", &at); err != nil {
				return nil, fmt.Errorf("trace: line %d: bad fault time %q", line, parts[1])
			}
			detail := ""
			if len(parts) == 4 {
				detail = parts[3]
			}
			log.AddEvent(sim.Time(at), parts[2], detail)
			continue
		}
		var side, name string
		var unit int
		var ts, total, integral int64
		if n, err := fmt.Sscanf(text, "%s %d %s %d %d %d", &side, &unit, &name, &ts, &total, &integral); n != 6 || err != nil {
			return nil, fmt.Errorf("trace: line %d: malformed %q", line, text)
		}
		if cur == nil {
			return nil, fmt.Errorf("trace: line %d: sample before any rec header", line)
		}
		if unit < 0 || unit >= tcpsim.NumUnits {
			return nil, fmt.Errorf("trace: line %d: bad unit %d", line, unit)
		}
		var qs *core.Queues
		switch side {
		case "client":
			qs = &cur.Client[unit]
		case "server":
			qs = &cur.Server[unit]
		default:
			return nil, fmt.Errorf("trace: line %d: bad side %q", line, side)
		}
		snap := qstate.Snapshot{Time: qstate.Time(ts), Total: total, Integral: integral}
		switch name {
		case "unacked":
			qs.Unacked = snap
		case "unread":
			qs.Unread = snap
		case "ackdelay":
			qs.AckDelay = snap
		default:
			return nil, fmt.Errorf("trace: line %d: bad queue %q", line, name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &log, nil
}
