package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"e2ebatch/internal/kv"
	"e2ebatch/internal/loadgen"
	"e2ebatch/internal/netem"
	"e2ebatch/internal/sim"
	"e2ebatch/internal/tcpsim"
)

// runTraced runs a short SET workload with a collector attached.
func runTraced(t testing.TB, rate float64) (*Log, *loadgen.Result) {
	t.Helper()
	s := sim.New(9)
	cs := tcpsim.NewStack(s, "client")
	ss := tcpsim.NewStack(s, "server")
	link := netem.NewLink(s, "lnk", netem.Config{BitsPerSec: 100_000_000_000, Propagation: 2 * time.Microsecond})
	cfg := tcpsim.DefaultConfig()
	cfg.Nagle = false
	cc, sc := tcpsim.Connect(cs, ss, link, cfg)
	store := kv.NewStore(func() time.Duration { return s.Now().Duration() })
	kv.NewSimServer(kv.NewEngine(store), sc, kv.DefaultSimServerConfig())

	col := NewCollector(s, cc, sc, time.Millisecond)
	g := loadgen.New(s, cc, loadgen.DefaultConfig(rate, 100*time.Millisecond), loadgen.SetWorkload(16, 4096))
	res := g.Run()
	col.Stop()
	return col.Log(), res
}

func TestCollectorSamplesAtInterval(t *testing.T) {
	log, _ := runTraced(t, 10000)
	// ~100ms run at 1ms sampling plus drain time.
	if len(log.Records) < 90 {
		t.Fatalf("records = %d, want ~100", len(log.Records))
	}
	for i := 1; i < len(log.Records); i++ {
		if log.Records[i].At <= log.Records[i-1].At {
			t.Fatal("records not strictly ordered")
		}
	}
}

func TestOverallEstimateTracksMeasured(t *testing.T) {
	log, res := runTraced(t, 10000)
	est := log.Overall(tcpsim.UnitBytes)
	if !est.Valid {
		t.Fatal("overall estimate invalid")
	}
	meas := float64(res.Latency.Mean())
	got := float64(est.Latency)
	// The homogeneous fixed-size workload is exactly the case the paper
	// says byte-based estimates handle well; demand factor-of-2 band here
	// (tight accuracy asserted in the figures harness with warmup
	// trimming).
	if got < meas*0.4 || got > meas*2.5 {
		t.Fatalf("estimate %v vs measured %v", est.Latency, res.Latency.Mean())
	}
}

func TestAnalyzeProducesIntervals(t *testing.T) {
	log, _ := runTraced(t, 10000)
	pts := log.Analyze(tcpsim.UnitBytes)
	if len(pts) != len(log.Records)-1 {
		t.Fatalf("points = %d, want %d", len(pts), len(log.Records)-1)
	}
	valid := 0
	for _, p := range pts {
		if p.To <= p.From {
			t.Fatal("interval not ordered")
		}
		if p.Estimate.Valid {
			valid++
		}
	}
	if valid < len(pts)/2 {
		t.Fatalf("only %d/%d intervals valid", valid, len(pts))
	}
}

func TestAnalyzeEmptyLogs(t *testing.T) {
	var l Log
	if pts := l.Analyze(tcpsim.UnitBytes); pts != nil {
		t.Fatal("empty log produced points")
	}
	if est := l.Overall(tcpsim.UnitBytes); est.Valid {
		t.Fatal("empty log produced estimate")
	}
}

func TestLogSerializationRoundTrip(t *testing.T) {
	log, _ := runTraced(t, 5000)
	var buf bytes.Buffer
	if _, err := log.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(log.Records) {
		t.Fatalf("records %d vs %d", len(got.Records), len(log.Records))
	}
	for i := range got.Records {
		if got.Records[i] != log.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	// Analysis of the reread log matches exactly.
	a := log.Overall(tcpsim.UnitBytes)
	b := got.Overall(tcpsim.UnitBytes)
	if a != b {
		t.Fatalf("analysis differs after round trip: %+v vs %+v", a, b)
	}
}

func TestReadLogRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"client 0 unacked 1 2 3\n",          // sample before rec
		"rec 5\nclient 9 unacked 1 2 3\n",   // bad unit
		"rec 5\nmartian 0 unacked 1 2 3\n",  // bad side
		"rec 5\nclient 0 mystery 1 2 3\n",   // bad queue
		"rec 5\nclient 0 unacked not num\n", // malformed numbers
	} {
		if _, err := ReadLog(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestReadLogEmptyAndBlankLines(t *testing.T) {
	got, err := ReadLog(strings.NewReader("\n\n"))
	if err != nil || len(got.Records) != 0 {
		t.Fatalf("blank log: %v, %d records", err, len(got.Records))
	}
}

// TestEventRoundTrip: fault annotations survive serialization — including
// details with spaces and an empty detail — and EventsBetween windows them.
func TestEventRoundTrip(t *testing.T) {
	log, _ := runTraced(t, 10000)
	log.AddEvent(sim.Time(5*time.Millisecond), "loss-burst", "on prob=0.05 dur=40ms")
	log.AddEvent(sim.Time(45*time.Millisecond), "loss-burst", "off")
	log.AddEvent(sim.Time(60*time.Millisecond), "reset", "")

	var buf bytes.Buffer
	if _, err := log.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(log.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(log.Records))
	}
	if len(got.Events) != 3 {
		t.Fatalf("events = %+v, want 3", got.Events)
	}
	for i, e := range got.Events {
		if e != log.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, e, log.Events[i])
		}
	}
	mid := got.EventsBetween(sim.Time(40*time.Millisecond), sim.Time(61*time.Millisecond))
	if len(mid) != 2 || mid[0].Detail != "off" || mid[1].Kind != "reset" {
		t.Fatalf("EventsBetween = %+v", mid)
	}
	if n := len(got.EventsBetween(sim.Time(time.Second), sim.Time(2*time.Second))); n != 0 {
		t.Fatalf("empty window returned %d events", n)
	}
}

func TestReadLogRejectsMalformedFault(t *testing.T) {
	for _, in := range []string{"fault ", "fault x kind", "fault 5"} {
		if _, err := ReadLog(strings.NewReader(in + "\n")); err == nil {
			t.Fatalf("malformed %q accepted", in)
		}
	}
	// Minimal valid fault line without records.
	log, err := ReadLog(strings.NewReader("fault 5 reset\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) != 1 || log.Events[0].Kind != "reset" || log.Events[0].Detail != "" {
		t.Fatalf("events = %+v", log.Events)
	}
}

// damageCheck asserts the offline analysis of a damaged log never produces
// numeric garbage: every valid interval has non-negative latency and
// throughput, and invalid intervals stay zeroed.
func damageCheck(t *testing.T, name string, log *Log) int {
	t.Helper()
	valid := 0
	for _, p := range log.Analyze(tcpsim.UnitBytes) {
		e := p.Estimate
		if e.Latency < 0 || e.Throughput < 0 || e.Throughput != e.Throughput {
			t.Fatalf("%s: garbage interval %+v", name, e)
		}
		if !e.Valid && e.Latency != 0 {
			t.Fatalf("%s: invalid interval carries latency %v", name, e.Latency)
		}
		if e.Valid {
			valid++
		}
	}
	ov := log.Overall(tcpsim.UnitBytes)
	if ov.Latency < 0 || ov.Throughput < 0 {
		t.Fatalf("%s: garbage overall %+v", name, ov)
	}
	return valid
}

// TestAnalyzeDamagedLogs feeds the offline analysis the three transport
// pathologies an unreliable collection channel produces — dropped samples,
// duplicated samples, and out-of-order samples — and requires graceful
// results: fewer valid intervals, never NaN or negative estimates.
func TestAnalyzeDamagedLogs(t *testing.T) {
	base, _ := runTraced(t, 10000)
	if len(base.Records) < 20 {
		t.Fatalf("base log too short: %d records", len(base.Records))
	}

	dropped := &Log{}
	for i, r := range base.Records {
		if i%3 == 1 {
			continue
		}
		dropped.Records = append(dropped.Records, r)
	}
	if v := damageCheck(t, "dropped", dropped); v == 0 {
		t.Fatal("dropped-sample log produced no valid intervals at all")
	}

	duplicated := &Log{}
	for _, r := range base.Records {
		duplicated.Records = append(duplicated.Records, r, r)
	}
	// Every other interval is a zero-dt duplicate: those must be invalid,
	// the rest unharmed.
	v := damageCheck(t, "duplicated", duplicated)
	if want := len(base.Records) - 1; v > want {
		t.Fatalf("duplicated log has %d valid intervals, more than the %d real ones", v, want)
	}
	if v == 0 {
		t.Fatal("duplicated-sample log produced no valid intervals at all")
	}

	reordered := &Log{Records: append([]Record(nil), base.Records...)}
	for i := 5; i+1 < len(reordered.Records); i += 7 {
		reordered.Records[i], reordered.Records[i+1] = reordered.Records[i+1], reordered.Records[i]
	}
	if v := damageCheck(t, "reordered", reordered); v == 0 {
		t.Fatal("reordered log produced no valid intervals at all")
	}
}
