// Package benchfmt parses the text `go test -bench` emits and renders it
// as stable JSON, so `make bench` can archive one machine-readable
// BENCH_<date>.json per run and the perf trajectory is diffable across
// PRs instead of living in scrollback.
//
// The format parsed is the benchmark result line defined by the testing
// package (and consumed by benchstat):
//
//	BenchmarkFigure4a-8   3   401310074 ns/op   1.93 slo-extension-x   2048 B/op   12 allocs/op
//
// Everything else — the printed tables, PASS/ok trailers, goos/goarch
// headers — passes through untouched.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// A Result is one benchmark line. The three canonical -benchmem columns
// get dedicated fields; every other `<value> <unit>` pair (the
// b.ReportMetric outputs: slo-extension-x, latency-gain-x, ...) lands in
// Metrics keyed by unit.
type Result struct {
	Name        string             `json:"name"`              // "BenchmarkFigure4a" (GOMAXPROCS suffix stripped)
	Procs       int                `json:"procs"`             // from the -N name suffix; 1 when absent
	Iterations  int64              `json:"iterations"`        // b.N of the measured run
	NsPerOp     float64            `json:"ns_per_op"`         // wall time per iteration
	BytesPerOp  float64            `json:"bytes_per_op"`      // -benchmem B/op
	AllocsPerOp float64            `json:"allocs_per_op"`     // -benchmem allocs/op
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom b.ReportMetric units
}

// ParseLine parses one line of `go test -bench` output. ok is false for
// lines that are not benchmark results (headers, tables, PASS).
func ParseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	// Name must be "Benchmark" followed by an uppercase rune or a
	// GOMAXPROCS suffix — the same rule the testing package applies —
	// so prose starting with the word "Benchmark" can't alias a result.
	if rest := fields[0][len("Benchmark"):]; rest != "" &&
		!strings.HasPrefix(rest, "-") && (rest[0] < 'A' || rest[0] > 'Z') {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters <= 0 {
		return Result{}, false
	}
	r := Result{Name: fields[0], Procs: 1, Iterations: iters}
	if i := strings.LastIndex(r.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil && p > 0 {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	// The remainder is `<value> <unit>` pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Result{}, false
	}
	sawNs := false
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			r.NsPerOp, sawNs = v, true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	if !sawNs {
		return Result{}, false
	}
	return r, true
}

// Parse reads a full `go test -bench` transcript and returns the results
// in input order.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if res, ok := ParseLine(sc.Text()); ok {
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return out, nil
}

// WriteJSON renders results as an indented JSON array, sorted by name so
// two runs of the same suite diff cleanly even if -shuffle reorders them.
func WriteJSON(w io.Writer, results []Result) error {
	sorted := append([]Result(nil), results...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sorted)
}
