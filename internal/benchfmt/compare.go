package benchfmt

import (
	"fmt"
	"io"
	"sort"
)

// Comparison of two archived benchmark runs — the `make bench-diff` gate.
// Matching is by benchmark name; the scored axis is ns/op, the one column
// every result line has. Custom metrics and allocation counts are shown in
// the rendering but never gate: figure metrics (crossover points, gain
// ratios) move for legitimate modeling reasons, while a wall-time
// regression on the same machine is almost always a real slowdown.

// Delta is one benchmark present in both runs.
type Delta struct {
	Name      string
	OldNs     float64
	NewNs     float64
	Pct       float64 // (new-old)/old·100; positive is slower
	Regressed bool
}

// CompareOut is the full comparison.
type CompareOut struct {
	Deltas []Delta
	// MaxRegressPct is the gate used to flag Deltas as Regressed.
	MaxRegressPct float64
	// OnlyOld and OnlyNew list benchmarks present in one run only —
	// renamed or deleted benchmarks are surfaced, not silently dropped.
	OnlyOld, OnlyNew []string
}

// Regressions returns the deltas beyond the gate, worst first.
func (c CompareOut) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pct > out[j].Pct })
	return out
}

// Compare matches two runs by benchmark name and flags every ns/op
// increase beyond maxRegressPct percent. Duplicate names within one run
// keep the first occurrence (the testing package never emits duplicates;
// a hand-edited archive should not reward the edit).
func Compare(old, new []Result, maxRegressPct float64) CompareOut {
	out := CompareOut{MaxRegressPct: maxRegressPct}
	oldBy := make(map[string]Result, len(old))
	for _, r := range old {
		if _, dup := oldBy[r.Name]; !dup {
			oldBy[r.Name] = r
		}
	}
	seenNew := make(map[string]bool, len(new))
	for _, r := range new {
		if seenNew[r.Name] {
			continue
		}
		seenNew[r.Name] = true
		o, ok := oldBy[r.Name]
		if !ok {
			out.OnlyNew = append(out.OnlyNew, r.Name)
			continue
		}
		d := Delta{Name: r.Name, OldNs: o.NsPerOp, NewNs: r.NsPerOp}
		if o.NsPerOp > 0 {
			d.Pct = (r.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
			d.Regressed = d.Pct > maxRegressPct
		}
		out.Deltas = append(out.Deltas, d)
	}
	for _, r := range old {
		if !seenNew[r.Name] {
			out.OnlyOld = append(out.OnlyOld, r.Name)
		}
	}
	sort.SliceStable(out.Deltas, func(i, j int) bool { return out.Deltas[i].Name < out.Deltas[j].Name })
	sort.Strings(out.OnlyOld)
	sort.Strings(out.OnlyNew)
	return out
}

// WriteCompare renders the comparison as a table plus a verdict line and
// reports whether any benchmark regressed beyond the gate.
func WriteCompare(w io.Writer, c CompareOut) bool {
	fmt.Fprintf(w, "%-40s %15s %15s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, d := range c.Deltas {
		mark := ""
		if d.Regressed {
			mark = "  << REGRESSION"
		}
		fmt.Fprintf(w, "%-40s %15.0f %15.0f %+7.1f%%%s\n", d.Name, d.OldNs, d.NewNs, d.Pct, mark)
	}
	for _, n := range c.OnlyOld {
		fmt.Fprintf(w, "%-40s only in old run (deleted or renamed)\n", n)
	}
	for _, n := range c.OnlyNew {
		fmt.Fprintf(w, "%-40s only in new run (no baseline)\n", n)
	}
	regs := c.Regressions()
	if len(regs) > 0 {
		fmt.Fprintf(w, "FAIL: %d benchmark(s) regressed more than %.0f%% on ns/op (worst: %s %+.1f%%)\n",
			len(regs), c.MaxRegressPct, regs[0].Name, regs[0].Pct)
		return false
	}
	fmt.Fprintf(w, "ok: %d benchmark(s) within the %.0f%% ns/op gate\n", len(c.Deltas), c.MaxRegressPct)
	return true
}
