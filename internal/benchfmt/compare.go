package benchfmt

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Comparison of two archived benchmark runs — the `make bench-diff` gate.
// Matching is by benchmark name; three axes are scored. ns/op gates on
// relative growth (a wall-time regression on the same machine is almost
// always a real slowdown). B/op and allocs/op gate on relative growth too,
// plus one absolute rule: a benchmark whose baseline was zero and now
// allocates fails regardless of percentage — a zero-alloc pin (the
// //e2e:hotpath discipline, DESIGN.md §13) has no percentage to grow by,
// and losing it is exactly what the gate exists to catch. Custom figure
// metrics (crossover points, gain ratios) are shown but never gate: they
// move for legitimate modeling reasons.

// Delta is one benchmark present in both runs, with per-axis verdicts.
type Delta struct {
	Name      string
	OldNs     float64
	NewNs     float64
	Pct       float64 // (new-old)/old·100; positive is slower
	Regressed bool    // ns/op growth beyond the gate

	OldBytes       float64
	NewBytes       float64
	BytesPct       float64 // meaningful only when OldBytes > 0
	BytesRegressed bool

	OldAllocs       float64
	NewAllocs       float64
	AllocsPct       float64 // meaningful only when OldAllocs > 0
	AllocsRegressed bool
}

// AnyRegressed reports whether any of the three axes failed the gate.
func (d Delta) AnyRegressed() bool {
	return d.Regressed || d.BytesRegressed || d.AllocsRegressed
}

// severity orders regressions for the verdict line: a lost zero-alloc pin
// outranks any percentage, then worse relative growth ranks higher.
func (d Delta) severity() float64 {
	s := math.Inf(-1)
	if d.Regressed {
		s = d.Pct
	}
	if d.BytesRegressed {
		if d.OldBytes == 0 {
			return math.Inf(1)
		}
		s = math.Max(s, d.BytesPct)
	}
	if d.AllocsRegressed {
		if d.OldAllocs == 0 {
			return math.Inf(1)
		}
		s = math.Max(s, d.AllocsPct)
	}
	return s
}

// CompareOut is the full comparison.
type CompareOut struct {
	Deltas []Delta
	// MaxRegressPct is the gate used to flag Deltas as Regressed.
	MaxRegressPct float64
	// OnlyOld and OnlyNew list benchmarks present in one run only —
	// renamed or deleted benchmarks are surfaced, not silently dropped.
	OnlyOld, OnlyNew []string
}

// Regressions returns the deltas failing on any axis, worst first.
func (c CompareOut) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.AnyRegressed() {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].severity() > out[j].severity() })
	return out
}

// allocAxis gates one allocation column: relative growth beyond maxPct when
// a baseline exists, any growth at all from a zero baseline.
func allocAxis(old, new, maxPct float64) (pct float64, regressed bool) {
	if old > 0 {
		pct = (new - old) / old * 100
		return pct, pct > maxPct
	}
	return 0, new > 0
}

// Compare matches two runs by benchmark name and flags growth beyond
// maxRegressPct percent on ns/op, B/op and allocs/op (the allocation axes
// also fail on any growth from a zero baseline). Duplicate names within one
// run keep the first occurrence (the testing package never emits
// duplicates; a hand-edited archive should not reward the edit).
func Compare(old, new []Result, maxRegressPct float64) CompareOut {
	out := CompareOut{MaxRegressPct: maxRegressPct}
	oldBy := make(map[string]Result, len(old))
	for _, r := range old {
		if _, dup := oldBy[r.Name]; !dup {
			oldBy[r.Name] = r
		}
	}
	seenNew := make(map[string]bool, len(new))
	for _, r := range new {
		if seenNew[r.Name] {
			continue
		}
		seenNew[r.Name] = true
		o, ok := oldBy[r.Name]
		if !ok {
			out.OnlyNew = append(out.OnlyNew, r.Name)
			continue
		}
		d := Delta{
			Name:  r.Name,
			OldNs: o.NsPerOp, NewNs: r.NsPerOp,
			OldBytes: o.BytesPerOp, NewBytes: r.BytesPerOp,
			OldAllocs: o.AllocsPerOp, NewAllocs: r.AllocsPerOp,
		}
		if o.NsPerOp > 0 {
			d.Pct = (r.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
			d.Regressed = d.Pct > maxRegressPct
		}
		d.BytesPct, d.BytesRegressed = allocAxis(o.BytesPerOp, r.BytesPerOp, maxRegressPct)
		d.AllocsPct, d.AllocsRegressed = allocAxis(o.AllocsPerOp, r.AllocsPerOp, maxRegressPct)
		out.Deltas = append(out.Deltas, d)
	}
	for _, r := range old {
		if !seenNew[r.Name] {
			out.OnlyOld = append(out.OnlyOld, r.Name)
		}
	}
	sort.SliceStable(out.Deltas, func(i, j int) bool { return out.Deltas[i].Name < out.Deltas[j].Name })
	sort.Strings(out.OnlyOld)
	sort.Strings(out.OnlyNew)
	return out
}

// WriteCompare renders the comparison as a table plus a verdict line and
// reports whether any benchmark regressed beyond the gate. The table is the
// ns/op trajectory; allocation axes stay silent while they hold, and print
// a detail line under the benchmark's row when they regress.
func WriteCompare(w io.Writer, c CompareOut) bool {
	fmt.Fprintf(w, "%-40s %15s %15s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, d := range c.Deltas {
		mark := ""
		if d.Regressed {
			mark = "  << REGRESSION"
		}
		fmt.Fprintf(w, "%-40s %15.0f %15.0f %+7.1f%%%s\n", d.Name, d.OldNs, d.NewNs, d.Pct, mark)
		writeAllocAxis(w, "B/op", d.OldBytes, d.NewBytes, d.BytesPct, d.BytesRegressed)
		writeAllocAxis(w, "allocs/op", d.OldAllocs, d.NewAllocs, d.AllocsPct, d.AllocsRegressed)
	}
	for _, n := range c.OnlyOld {
		fmt.Fprintf(w, "%-40s only in old run (deleted or renamed)\n", n)
	}
	for _, n := range c.OnlyNew {
		fmt.Fprintf(w, "%-40s only in new run (no baseline)\n", n)
	}
	regs := c.Regressions()
	if len(regs) > 0 {
		fmt.Fprintf(w, "FAIL: %d benchmark(s) regressed beyond the %.0f%% gate on ns/op, B/op or allocs/op (worst: %s)\n",
			len(regs), c.MaxRegressPct, regs[0].Name)
		return false
	}
	fmt.Fprintf(w, "ok: %d benchmark(s) within the %.0f%% gate on ns/op, B/op and allocs/op\n", len(c.Deltas), c.MaxRegressPct)
	return true
}

// writeAllocAxis prints one allocation-axis regression detail line.
func writeAllocAxis(w io.Writer, unit string, old, new, pct float64, regressed bool) {
	if !regressed {
		return
	}
	if old > 0 {
		fmt.Fprintf(w, "%40s %15.0f %s -> %.0f (%+.1f%%)  << REGRESSION\n", "", old, unit, new, pct)
	} else {
		fmt.Fprintf(w, "%40s %15.0f %s -> %.0f (was a zero-alloc pin)  << REGRESSION\n", "", old, unit, new)
	}
}
