package benchfmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLineCanonical(t *testing.T) {
	r, ok := ParseLine("BenchmarkFigure4a-8   \t       3\t 401310074 ns/op\t     1.93 slo-extension-x\t    2048 B/op\t      12 allocs/op")
	if !ok {
		t.Fatal("canonical line did not parse")
	}
	if r.Name != "BenchmarkFigure4a" || r.Procs != 8 || r.Iterations != 3 {
		t.Errorf("name/procs/iters = %q/%d/%d", r.Name, r.Procs, r.Iterations)
	}
	if r.NsPerOp != 401310074 || r.BytesPerOp != 2048 || r.AllocsPerOp != 12 {
		t.Errorf("ns/B/allocs = %v/%v/%v", r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	if r.Metrics["slo-extension-x"] != 1.93 {
		t.Errorf("custom metric = %v", r.Metrics)
	}
}

func TestParseLineNoSuffixNoBenchmem(t *testing.T) {
	r, ok := ParseLine("BenchmarkTiny 1000000 512 ns/op")
	if !ok {
		t.Fatal("minimal line did not parse")
	}
	if r.Name != "BenchmarkTiny" || r.Procs != 1 || r.NsPerOp != 512 {
		t.Errorf("got %+v", r)
	}
	if r.BytesPerOp != 0 || r.AllocsPerOp != 0 || r.Metrics != nil {
		t.Errorf("absent columns must stay zero: %+v", r)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \te2ebatch\t92.1s",
		"Benchmark results follow in the table below, as always",
		"BenchmarkBroken notanumber 512 ns/op",
		"BenchmarkOdd 10 512 ns/op trailing",
		"BenchmarkNoNs 10 512 B/op",
		"",
	} {
		if r, ok := ParseLine(line); ok {
			t.Errorf("line %q parsed as %+v", line, r)
		}
	}
}

func TestParseTranscriptAndWriteJSON(t *testing.T) {
	transcript := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"",
		"| figure table | passes through |",
		"BenchmarkZeta-4 10 100 ns/op 8 B/op 1 allocs/op",
		"BenchmarkAlpha-4 20 200 ns/op 3.5 gain-x",
		"PASS",
	}, "\n")
	results, err := Parse(strings.NewReader(transcript))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Name != "BenchmarkZeta" {
		t.Fatalf("parse kept input order, want 2 results Zeta-first: %+v", results)
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	var decoded []Result
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(decoded) != 2 || decoded[0].Name != "BenchmarkAlpha" || decoded[1].Name != "BenchmarkZeta" {
		t.Errorf("JSON must be name-sorted: %+v", decoded)
	}
	if decoded[1].AllocsPerOp != 1 || decoded[0].Metrics["gain-x"] != 3.5 {
		t.Errorf("round-trip lost fields: %+v", decoded)
	}
	// The source slice must not be reordered by rendering.
	if results[0].Name != "BenchmarkZeta" {
		t.Error("WriteJSON mutated its input slice order")
	}
}
