package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

func res(name string, ns float64) Result {
	return Result{Name: name, Procs: 8, Iterations: 3, NsPerOp: ns}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := []Result{res("BenchmarkA", 100), res("BenchmarkB", 200), res("BenchmarkGone", 50)}
	neu := []Result{res("BenchmarkA", 110), res("BenchmarkB", 231), res("BenchmarkNew", 70)}
	c := Compare(old, neu, 15)
	if len(c.Deltas) != 2 {
		t.Fatalf("deltas = %+v", c.Deltas)
	}
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkB" {
		t.Fatalf("regressions = %+v", regs)
	}
	if regs[0].Pct < 15.4 || regs[0].Pct > 15.6 {
		t.Fatalf("pct = %v", regs[0].Pct)
	}
	// A +10% move stays under the 15% gate.
	for _, d := range c.Deltas {
		if d.Name == "BenchmarkA" && d.Regressed {
			t.Fatal("10% flagged at a 15% gate")
		}
	}
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "BenchmarkGone" {
		t.Fatalf("OnlyOld = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "BenchmarkNew" {
		t.Fatalf("OnlyNew = %v", c.OnlyNew)
	}
}

func TestCompareImprovementNeverFlags(t *testing.T) {
	c := Compare([]Result{res("BenchmarkA", 100)}, []Result{res("BenchmarkA", 10)}, 15)
	if len(c.Regressions()) != 0 {
		t.Fatalf("a 90%% speedup was flagged: %+v", c.Regressions())
	}
}

func TestCompareExactGateBoundary(t *testing.T) {
	// Exactly +15.0% is allowed; the gate is strictly greater-than.
	c := Compare([]Result{res("BenchmarkA", 1000)}, []Result{res("BenchmarkA", 1150)}, 15)
	if len(c.Regressions()) != 0 {
		t.Fatalf("boundary flagged: %+v", c.Regressions())
	}
}

func TestCompareZeroOldNs(t *testing.T) {
	c := Compare([]Result{res("BenchmarkA", 0)}, []Result{res("BenchmarkA", 50)}, 15)
	if len(c.Regressions()) != 0 {
		t.Fatal("zero baseline produced a regression verdict")
	}
}

func TestWriteCompareVerdicts(t *testing.T) {
	var buf bytes.Buffer
	ok := WriteCompare(&buf, Compare(
		[]Result{res("BenchmarkA", 100)}, []Result{res("BenchmarkA", 200)}, 15))
	if ok {
		t.Fatal("regression reported ok")
	}
	if !strings.Contains(buf.String(), "REGRESSION") || !strings.Contains(buf.String(), "FAIL") {
		t.Fatalf("rendering lacks verdict:\n%s", buf.String())
	}
	buf.Reset()
	ok = WriteCompare(&buf, Compare(
		[]Result{res("BenchmarkA", 100)}, []Result{res("BenchmarkA", 100)}, 15))
	if !ok || !strings.Contains(buf.String(), "ok:") {
		t.Fatalf("clean compare not ok:\n%s", buf.String())
	}
}
