package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

func res(name string, ns float64) Result {
	return Result{Name: name, Procs: 8, Iterations: 3, NsPerOp: ns}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := []Result{res("BenchmarkA", 100), res("BenchmarkB", 200), res("BenchmarkGone", 50)}
	neu := []Result{res("BenchmarkA", 110), res("BenchmarkB", 231), res("BenchmarkNew", 70)}
	c := Compare(old, neu, 15)
	if len(c.Deltas) != 2 {
		t.Fatalf("deltas = %+v", c.Deltas)
	}
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Name != "BenchmarkB" {
		t.Fatalf("regressions = %+v", regs)
	}
	if regs[0].Pct < 15.4 || regs[0].Pct > 15.6 {
		t.Fatalf("pct = %v", regs[0].Pct)
	}
	// A +10% move stays under the 15% gate.
	for _, d := range c.Deltas {
		if d.Name == "BenchmarkA" && d.Regressed {
			t.Fatal("10% flagged at a 15% gate")
		}
	}
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != "BenchmarkGone" {
		t.Fatalf("OnlyOld = %v", c.OnlyOld)
	}
	if len(c.OnlyNew) != 1 || c.OnlyNew[0] != "BenchmarkNew" {
		t.Fatalf("OnlyNew = %v", c.OnlyNew)
	}
}

func TestCompareImprovementNeverFlags(t *testing.T) {
	c := Compare([]Result{res("BenchmarkA", 100)}, []Result{res("BenchmarkA", 10)}, 15)
	if len(c.Regressions()) != 0 {
		t.Fatalf("a 90%% speedup was flagged: %+v", c.Regressions())
	}
}

func TestCompareExactGateBoundary(t *testing.T) {
	// Exactly +15.0% is allowed; the gate is strictly greater-than.
	c := Compare([]Result{res("BenchmarkA", 1000)}, []Result{res("BenchmarkA", 1150)}, 15)
	if len(c.Regressions()) != 0 {
		t.Fatalf("boundary flagged: %+v", c.Regressions())
	}
}

func TestCompareZeroOldNs(t *testing.T) {
	c := Compare([]Result{res("BenchmarkA", 0)}, []Result{res("BenchmarkA", 50)}, 15)
	if len(c.Regressions()) != 0 {
		t.Fatal("zero baseline produced a regression verdict")
	}
}

func resMem(name string, ns, bytes, allocs float64) Result {
	return Result{Name: name, Procs: 8, Iterations: 3, NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
}

func TestCompareAllocAxesGateRelativeGrowth(t *testing.T) {
	old := []Result{resMem("BenchmarkA", 100, 100, 10)}
	// +10% on either allocation axis stays under a 15% gate.
	if regs := Compare(old, []Result{resMem("BenchmarkA", 100, 110, 11)}, 15).Regressions(); len(regs) != 0 {
		t.Fatalf("10%% alloc growth flagged at a 15%% gate: %+v", regs)
	}
	// +20% B/op fails, and only on that axis.
	regs := Compare(old, []Result{resMem("BenchmarkA", 100, 120, 10)}, 15).Regressions()
	if len(regs) != 1 || !regs[0].BytesRegressed || regs[0].AllocsRegressed || regs[0].Regressed {
		t.Fatalf("B/op regression verdicts = %+v", regs)
	}
	// +20% allocs/op fails too.
	regs = Compare(old, []Result{resMem("BenchmarkA", 100, 100, 12)}, 15).Regressions()
	if len(regs) != 1 || !regs[0].AllocsRegressed || regs[0].BytesRegressed {
		t.Fatalf("allocs/op regression verdicts = %+v", regs)
	}
}

func TestCompareZeroAllocPinIsAbsolute(t *testing.T) {
	// A benchmark pinned at 0 B/op, 0 allocs/op that starts allocating
	// fails regardless of percentage — there is no percentage.
	old := []Result{resMem("BenchmarkHot", 100, 0, 0)}
	c := Compare(old, []Result{resMem("BenchmarkHot", 100, 16, 1)}, 15)
	regs := c.Regressions()
	if len(regs) != 1 || !regs[0].BytesRegressed || !regs[0].AllocsRegressed {
		t.Fatalf("lost zero-alloc pin not flagged: %+v", regs)
	}
	var buf bytes.Buffer
	if WriteCompare(&buf, c) {
		t.Fatal("lost pin reported ok")
	}
	if !strings.Contains(buf.String(), "zero-alloc pin") {
		t.Fatalf("rendering lacks the pin detail:\n%s", buf.String())
	}
	// Dropping back to zero is an improvement, never a flag.
	c = Compare([]Result{resMem("BenchmarkHot", 100, 16, 1)}, []Result{resMem("BenchmarkHot", 100, 0, 0)}, 15)
	if len(c.Regressions()) != 0 {
		t.Fatalf("regaining the pin was flagged: %+v", c.Regressions())
	}
}

func TestCompareSeverityRanksLostPinWorst(t *testing.T) {
	old := []Result{resMem("BenchmarkPin", 100, 0, 0), res("BenchmarkSlow", 100)}
	neu := []Result{resMem("BenchmarkPin", 100, 0, 1), res("BenchmarkSlow", 300)}
	regs := Compare(old, neu, 15).Regressions()
	if len(regs) != 2 || regs[0].Name != "BenchmarkPin" {
		t.Fatalf("lost pin should outrank a +200%% slowdown: %+v", regs)
	}
}

func TestWriteCompareVerdicts(t *testing.T) {
	var buf bytes.Buffer
	ok := WriteCompare(&buf, Compare(
		[]Result{res("BenchmarkA", 100)}, []Result{res("BenchmarkA", 200)}, 15))
	if ok {
		t.Fatal("regression reported ok")
	}
	if !strings.Contains(buf.String(), "REGRESSION") || !strings.Contains(buf.String(), "FAIL") {
		t.Fatalf("rendering lacks verdict:\n%s", buf.String())
	}
	buf.Reset()
	ok = WriteCompare(&buf, Compare(
		[]Result{res("BenchmarkA", 100)}, []Result{res("BenchmarkA", 100)}, 15))
	if !ok || !strings.Contains(buf.String(), "ok:") {
		t.Fatalf("clean compare not ok:\n%s", buf.String())
	}
}
