package engine_test

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"e2ebatch/internal/core"
	"e2ebatch/internal/engine"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
)

// fakePort scripts the engine's inputs and records its outputs: Snapshot
// serves queue states generated from a live qstate.State so the estimates
// are real, and Apply logs every decision (optionally failing).
type fakePort struct {
	st       qstate.State
	remote   bool // attach peer metadata to samples
	self     bool
	applyErr error

	applied []engine.Decision
	errs    int
}

func newFakePort() *fakePort {
	p := &fakePort{}
	p.st.Init(0)
	return p
}

// busy keeps one item in flight from t to t+dt, so the interval ending at
// the next Snapshot has departures and yields a valid estimate.
func (p *fakePort) busy(t qstate.Time, dt qstate.Time) {
	p.st.Track(t, 1)
	p.st.Track(t+dt, -1)
}

func (p *fakePort) Snapshot(now qstate.Time) core.Sample {
	s := core.Sample{
		Local: core.Queues{Unacked: p.st.Snapshot(now)},
		At:    now,
	}
	if p.remote {
		s.RemoteOK = true
		s.RemoteAt = now
	}
	return s
}

func (p *fakePort) Apply(d engine.Decision) error {
	p.applied = append(p.applied, d)
	if p.applyErr != nil {
		p.errs++
		return p.applyErr
	}
	return nil
}

func (p *fakePort) SelfContained() bool { return p.self }

// fakeController scripts the decision and records the routing.
type fakeController struct {
	mode     policy.Mode
	observes int
	degraded int
}

func (c *fakeController) Observe(time.Duration, float64, bool) policy.Mode {
	c.observes++
	return c.mode
}

func (c *fakeController) ObserveDegraded() policy.Mode {
	c.degraded++
	return c.mode
}

func (c *fakeController) Mode() policy.Mode          { return c.mode }
func (c *fakeController) Stats() policy.TogglerStats { return policy.TogglerStats{} }

const ms = qstate.Time(time.Millisecond)

func TestTickAccountingAndModeApplication(t *testing.T) {
	p := newFakePort()
	p.self = true
	ctl := &fakeController{mode: policy.BatchOn}
	ep := engine.New(engine.Config{Controller: ctl, Initial: policy.BatchOff, CorkOnBytes: 4096}, p)

	if len(p.applied) != 1 || p.applied[0].Batch || p.applied[0].CorkBytes != 0 {
		t.Fatalf("initial application = %+v, want batch-off with no cork", p.applied)
	}

	// Priming tick (invalid estimate), then two busy intervals.
	ep.Tick(0)
	p.busy(1*ms, ms)
	ep.Tick(3 * ms)
	p.busy(4*ms, ms)
	r := ep.Tick(6 * ms)

	if !r.Estimate.Valid || !r.Applied || r.Mode != policy.BatchOn {
		t.Fatalf("tick result = %+v, want valid estimate applied in batch-on", r)
	}
	st := ep.Stats()
	if st.TotalTicks != 3 || st.OnTicks != 3 || st.ValidEstimates != 2 || st.DegradedTicks != 0 {
		t.Fatalf("stats = %+v, want 3 ticks, 3 on, 2 valid, 0 degraded", st)
	}
	if ctl.observes != 3 || ctl.degraded != 0 {
		t.Fatalf("controller saw %d observes / %d degraded, want 3 / 0", ctl.observes, ctl.degraded)
	}
	last := p.applied[len(p.applied)-1]
	if !last.Batch || last.CorkBytes != 4096 {
		t.Fatalf("batch-on application = %+v, want cork 4096", last)
	}
}

func TestDegradedTicksRouteToObserveDegraded(t *testing.T) {
	p := newFakePort() // no peer metadata, not self-contained → degraded
	ctl := &fakeController{mode: policy.BatchOff}
	ep := engine.New(engine.Config{Controller: ctl}, p)

	ep.Tick(0) // priming: zero estimate, not yet degraded
	p.busy(1*ms, ms)
	ep.Tick(3 * ms)
	p.busy(4*ms, ms)
	ep.Tick(6 * ms)

	if ctl.degraded != 2 || ctl.observes != 1 {
		t.Fatalf("controller saw %d degraded / %d observes, want 2 / 1", ctl.degraded, ctl.observes)
	}
	if st := ep.Stats(); st.DegradedTicks != 2 {
		t.Fatalf("DegradedTicks = %d, want 2", st.DegradedTicks)
	}
}

func TestSelfContainedMasksMissingPeer(t *testing.T) {
	p := newFakePort()
	p.self = true // hints-style port: no peer metadata by design
	ctl := &fakeController{}
	ep := engine.New(engine.Config{Controller: ctl}, p)

	ep.Tick(0)
	ep.Tick(1 * ms)

	if ctl.degraded != 0 || ctl.observes != 2 {
		t.Fatalf("controller saw %d degraded / %d observes, want 0 / 2", ctl.degraded, ctl.observes)
	}
}

// TestDegradedRunEntersSafeMode is the PR-3 contract over a real toggler: a
// long degraded run must retreat the endpoint to the toggler's safe mode and
// apply it to the port.
func TestDegradedRunEntersSafeMode(t *testing.T) {
	p := newFakePort()
	cfg := policy.DefaultTogglerConfig()
	tog := policy.NewToggler(policy.PreferLatency{}, cfg, policy.BatchOn, rand.New(rand.NewSource(1)))
	ep := engine.New(engine.Config{Controller: tog, Initial: policy.BatchOn, CorkOnBytes: 4096}, p)

	now := qstate.Time(0)
	for i := 0; i < cfg.DegradedAfter+2; i++ {
		ep.Tick(now)
		now += ms
	}

	if tog.Mode() != cfg.SafeMode {
		t.Fatalf("toggler mode = %v after degraded run, want safe mode %v", tog.Mode(), cfg.SafeMode)
	}
	if tog.Stats().SafeFallbacks != 1 {
		t.Fatalf("SafeFallbacks = %d, want 1", tog.Stats().SafeFallbacks)
	}
	last := p.applied[len(p.applied)-1]
	if last.Batch != (cfg.SafeMode == policy.BatchOn) {
		t.Fatalf("port left in batch=%v, want safe mode %v applied", last.Batch, cfg.SafeMode)
	}
}

func TestModeErrorsDegradeAfterLimit(t *testing.T) {
	p := newFakePort()
	p.self = true
	p.applyErr = errors.New("setsockopt: bad file descriptor")
	ctl := &fakeController{mode: policy.BatchOn}
	ep := engine.New(engine.Config{Controller: ctl, ModeErrorLimit: 2}, p)

	// New applies the initial mode (fails once: run=1); two more failing
	// ticks reach the limit, so the fourth tick routes degraded.
	for i := 0; i < 4; i++ {
		ep.Tick(qstate.Time(i) * ms)
	}

	st := ep.Stats()
	if st.ModeErrors != 5 { // initial + 4 ticks
		t.Fatalf("ModeErrors = %d, want 5", st.ModeErrors)
	}
	if ctl.degraded == 0 {
		t.Fatalf("controller never routed degraded despite %d consecutive apply failures", p.errs)
	}
	if st.DegradedTicks == 0 {
		t.Fatalf("stats = %+v, want degraded ticks after repeated mode errors", st)
	}
}

func TestAIMDTicks(t *testing.T) {
	p := newFakePort()
	p.self = true
	aimd := policy.NewAIMD(1000, 8000, 1000, 0.5)
	ep := engine.New(engine.Config{AIMD: &engine.AIMDPolicy{Ctl: aimd, SLO: time.Microsecond}}, p)

	// Invalid (priming) tick: nothing applied — the old hand-wired loop
	// skipped entirely on invalid estimates.
	ep.Tick(0)
	if len(p.applied) != 0 {
		t.Fatalf("AIMD applied %v on an invalid estimate", p.applied)
	}

	// A busy interval violating the 1µs SLO: the limit grows and both the
	// mode and the new limit reach the port.
	p.busy(1*ms, ms)
	r := ep.Tick(3 * ms)
	if !r.Applied {
		t.Fatalf("AIMD tick on a valid estimate did not apply: %+v", r)
	}
	if got := aimd.Limit(); got != 2000 {
		t.Fatalf("limit = %d after one SLO violation, want 2000", got)
	}
	last := p.applied[len(p.applied)-1]
	if !last.Batch || last.CorkBytes != 2000 {
		t.Fatalf("applied %+v, want batch with cork 2000", last)
	}
}

func TestMultiPortAggregation(t *testing.T) {
	a, b := newFakePort(), newFakePort()
	a.remote, b.remote = true, false // b degraded, a not
	ctl := &fakeController{}
	ep := engine.New(engine.Config{Controller: ctl}, a, b)

	ep.Tick(0)
	a.busy(1*ms, ms)
	b.busy(1*ms, ms)
	r := ep.Tick(3 * ms)

	if len(r.PerPort) != 2 {
		t.Fatalf("PerPort has %d entries, want 2", len(r.PerPort))
	}
	if r.Estimate.Degraded {
		t.Fatalf("aggregate degraded with one healthy port: %+v", r)
	}
	if want := r.PerPort[0].Throughput + r.PerPort[1].Throughput; r.Estimate.Throughput != want {
		t.Fatalf("aggregate throughput = %v, want sum of per-port %v", r.Estimate.Throughput, want)
	}
	// Decisions fan out to every port.
	if len(a.applied) != len(b.applied) || len(a.applied) == 0 {
		t.Fatalf("apply fan-out mismatch: %d vs %d", len(a.applied), len(b.applied))
	}

	// Once the last healthy port loses peer data too, the aggregate
	// degrades.
	a.remote = false
	ep.Tick(4 * ms)
	r = ep.Tick(5 * ms)
	if !r.Degraded {
		t.Fatalf("aggregate not degraded with every port degraded: %+v", r)
	}
}

func TestResetReprimes(t *testing.T) {
	p := newFakePort()
	p.self = true
	ep := engine.New(engine.Config{}, p)

	ep.Tick(0)
	p.busy(1*ms, ms)
	if r := ep.Tick(3 * ms); !r.Estimate.Valid {
		t.Fatalf("estimate invalid before reset: %+v", r)
	}
	ep.Reset()
	p.busy(4*ms, ms)
	if r := ep.Tick(6 * ms); r.Estimate.Valid {
		t.Fatalf("estimate valid on the re-priming tick after Reset: %+v", r)
	}
	if r := ep.Tick(7 * ms); r.Applied {
		t.Fatalf("passive endpoint applied a decision: %+v", r)
	}
}

func TestSimClockDrivesTicks(t *testing.T) {
	s := sim.New(1)
	p := newFakePort()
	p.self = true
	var ticks int
	ep := engine.New(engine.Config{
		OnTick: func(now qstate.Time, r engine.TickResult) { ticks++ },
	}, p)
	ep.Start(engine.SimClock{Sim: s}, time.Millisecond)
	s.RunUntil(sim.Time(5*time.Millisecond + time.Microsecond))
	ep.Stop()
	end := s.Now()
	s.RunUntil(end + sim.Time(5*time.Millisecond))
	if ticks != 5 {
		t.Fatalf("ticker fired %d times in 5ms (plus none after Stop), want 5", ticks)
	}
	if st := ep.Stats(); st.TotalTicks != ticks {
		t.Fatalf("TotalTicks = %d, want %d", st.TotalTicks, ticks)
	}
}

func TestNewValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero ports", func() { engine.New(engine.Config{}) })
	mustPanic("both policies", func() {
		engine.New(engine.Config{
			Controller: &fakeController{},
			AIMD:       &engine.AIMDPolicy{Ctl: policy.NewAIMD(1, 2, 1, 0.5), SLO: time.Second},
		}, newFakePort())
	})
}
