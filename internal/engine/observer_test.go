package engine_test

// Observer-seam coverage: the hook must see exactly the ticks the endpoint
// accounts for, carry per-port snapshots only when attached, and never
// change what Tick returns. (Byte-identity of golden figure output with a
// nil observer is pinned separately by the figures golden tests, which run
// the full simulated pipeline with no observer configured.)

import (
	"errors"
	"reflect"
	"testing"

	"e2ebatch/internal/core"
	"e2ebatch/internal/engine"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/qstate"
)

// recordingObserver retains every ObserveTick delivery. TickResult.PerPort
// and .Samples are views into the endpoint's scratch buffers, valid only
// during the callback (the zero-alloc tick contract), so an observer that
// retains results across ticks — like this one — must copy them out.
type recordingObserver struct {
	at []qstate.Time
	rs []engine.TickResult
}

func (o *recordingObserver) ObserveTick(now qstate.Time, r engine.TickResult) {
	r = copyTickResult(r)
	o.at = append(o.at, now)
	o.rs = append(o.rs, r)
}

// copyTickResult detaches a tick result from the endpoint's scratch buffers.
func copyTickResult(r engine.TickResult) engine.TickResult {
	r.PerPort = append([]core.Estimate(nil), r.PerPort...)
	if r.Samples != nil {
		r.Samples = append([]core.Sample(nil), r.Samples...)
	}
	return r
}

func TestObserverReceivesEveryTickExactly(t *testing.T) {
	p1, p2 := newFakePort(), newFakePort()
	p1.remote = true
	p2.remote = true
	ctl := &fakeController{mode: policy.BatchOn}
	ob := &recordingObserver{}
	ep := engine.New(engine.Config{Controller: ctl, Observer: ob}, p1, p2)

	ticks := []qstate.Time{0, 3 * ms, 6 * ms, 9 * ms}
	var returned []engine.TickResult
	for i, now := range ticks {
		if i > 0 {
			p1.busy(now-2*ms, ms)
			p2.busy(now-2*ms, ms)
		}
		// The caller is under the same view contract as the observer: copy
		// before the next Tick reuses the scratch buffers.
		returned = append(returned, copyTickResult(ep.Tick(now)))
	}

	if len(ob.rs) != len(ticks) {
		t.Fatalf("observer saw %d ticks, engine ran %d", len(ob.rs), len(ticks))
	}
	st := ep.Stats()
	if len(ob.rs) != st.TotalTicks {
		t.Fatalf("observer ticks %d != Stats().TotalTicks %d", len(ob.rs), st.TotalTicks)
	}
	var valid int
	for i := range ob.rs {
		if ob.at[i] != ticks[i] {
			t.Errorf("tick %d delivered at %v, want %v", i, ob.at[i], ticks[i])
		}
		if ob.rs[i].Estimate.Valid {
			valid++
		}
		// The observer's copy and the caller's return value are the same
		// accounting — Samples included.
		if !reflect.DeepEqual(ob.rs[i], returned[i]) {
			t.Errorf("tick %d: observer got %+v, caller got %+v", i, ob.rs[i], returned[i])
		}
		if len(ob.rs[i].Samples) != 2 {
			t.Fatalf("tick %d: %d samples, want one per port", i, len(ob.rs[i].Samples))
		}
		for _, s := range ob.rs[i].Samples {
			if s.At != ticks[i] || !s.RemoteOK {
				t.Errorf("tick %d: sample %+v not snapshotted at tick time", i, s)
			}
		}
	}
	if valid != st.ValidEstimates {
		t.Errorf("observer counted %d valid estimates, Stats says %d", valid, st.ValidEstimates)
	}
}

func TestNilObserverCarriesNoSamples(t *testing.T) {
	mk := func(o engine.Observer) engine.TickResult {
		p := newFakePort()
		p.self = true
		ep := engine.New(engine.Config{Controller: &fakeController{}, Observer: o}, p)
		ep.Tick(0)
		p.busy(1*ms, ms)
		return ep.Tick(3 * ms)
	}
	if r := mk(nil); r.Samples != nil {
		t.Fatalf("nil observer: Samples = %v, want nil (hot path must not allocate them)", r.Samples)
	}
	if r := mk(&recordingObserver{}); len(r.Samples) != 1 {
		t.Fatalf("attached observer: Samples = %v, want the port snapshot", r.Samples)
	}
}

func TestObserverSeesApplyErrors(t *testing.T) {
	good, bad := newFakePort(), newFakePort()
	good.self, bad.self = true, true
	bad.applyErr = errors.New("setsockopt: boom")
	ctl := &fakeController{mode: policy.BatchOn} // differs from Initial → re-apply every tick
	ob := &recordingObserver{}
	ep := engine.New(engine.Config{
		Controller: ctl,
		Initial:    policy.BatchOff,
		Observer:   ob,
	}, good, bad)
	// New() applies Initial synchronously, before any tick exists for an
	// observer to see; only tick-time failures can flow through the hook.
	initialErrs := ep.Stats().ModeErrors

	ep.Tick(0)
	good.busy(1*ms, ms)
	bad.busy(1*ms, ms)
	ep.Tick(3 * ms)

	last := ob.rs[len(ob.rs)-1]
	if !last.Applied || last.ApplyErrors != 1 {
		t.Fatalf("tick result = %+v, want applied with exactly the bad port's error counted", last)
	}
	if ep.Stats().ModeErrors == 0 {
		t.Fatal("endpoint stats should account the same failure")
	}
	var total int
	for _, r := range ob.rs {
		total += r.ApplyErrors
	}
	if got := ep.Stats().ModeErrors - initialErrs; total != got {
		t.Fatalf("observer apply errors %d != tick-time ModeErrors %d", total, got)
	}
}

func TestObserverDeliveryOrderIsPostApply(t *testing.T) {
	// The record delivered for tick N must already include tick N's apply
	// outcome (not lag one tick): flip the controller mode mid-run and
	// check the observer sees the flip on the same tick the port does.
	p := newFakePort()
	p.self = true
	ctl := &fakeController{mode: policy.BatchOff}
	ob := &recordingObserver{}
	ep := engine.New(engine.Config{Controller: ctl, Observer: ob}, p)

	ep.Tick(0)
	p.busy(1*ms, ms)
	ctl.mode = policy.BatchOn
	ep.Tick(3 * ms)

	last := ob.rs[len(ob.rs)-1]
	if last.Mode != policy.BatchOn || !last.Applied {
		t.Fatalf("observer record = %+v, want the batch-on apply visible on its own tick", last)
	}
	if applied := p.applied[len(p.applied)-1]; !applied.Batch {
		t.Fatalf("port last apply = %+v, want batch-on", applied)
	}
}
