package engine

import (
	"time"

	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
)

// Ticker is a handle to a scheduled periodic tick. Stop cancels future
// ticks; wall-clock implementations additionally wait for their tick
// goroutine to exit so stopping establishes a happens-before with the
// stopper.
type Ticker interface {
	Stop()
}

// Clock schedules the decision tick. The engine itself never reads a clock
// — virtual or wall time only ever enters through the `now` passed to each
// tick, which keeps the loop byte-for-byte deterministic under the sim and
// lets the real-TCP harness supply its own epoch.
type Clock interface {
	Tick(period time.Duration, fn func(now qstate.Time)) Ticker
}

// TickerFunc adapts a cancel function to Ticker — the handle shape for
// clocks whose schedules live on an external multiplexer (the shard timer
// wheel), where stopping is an unschedule call rather than a goroutine
// shutdown. The function must be idempotent.
type TickerFunc func()

// Stop cancels the schedule.
func (f TickerFunc) Stop() { f() }

// SimClock schedules ticks on the discrete-event simulator's virtual time.
type SimClock struct {
	Sim *sim.Sim
}

// Tick fires fn every period of virtual time, first at now+period.
func (c SimClock) Tick(period time.Duration, fn func(now qstate.Time)) Ticker {
	return sim.NewTicker(c.Sim, period, func(now sim.Time) {
		fn(qstate.Time(now))
	})
}
