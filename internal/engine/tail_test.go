package engine_test

import (
	"testing"
	"time"

	"e2ebatch/internal/core"
	"e2ebatch/internal/engine"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/qstate"
)

// tailPort scripts samples with controllable mean and tail shapes: the mean
// counters report meanLat while the tail histograms (when enabled) record
// departures at tailLat — so a test can tell which of the two the policy
// actually observed.
type tailPort struct {
	meanLat time.Duration
	tailLat time.Duration
	tails   bool

	n       uint32
	lhist   qstate.DelayHist
	rhist   qstate.DelayHist
	applied []engine.Decision
}

func (p *tailPort) Snapshot(now qstate.Time) core.Sample {
	p.n += 10
	n := p.n
	s := core.Sample{At: now, RemoteOK: true, RemoteAt: now}
	s.Local.Unacked = qstate.Snapshot{Time: now, Total: int64(n), Integral: int64(n) * int64(p.meanLat)}
	s.Local.Unread = qstate.Snapshot{Time: now}
	s.Local.AckDelay = qstate.Snapshot{Time: now}
	us := uint32(uint64(now) / 1000)
	s.Remote.Unacked = qstate.WireQueue{TimeUS: us, Total: n, IntegralUS: uint32(uint64(n) * uint64(p.meanLat) / 1000)}
	s.Remote.Unread = qstate.WireQueue{TimeUS: us}
	s.Remote.AckDelay = qstate.WireQueue{TimeUS: us}
	if p.tails {
		p.lhist.RecordN(p.tailLat, 10)
		p.rhist.RecordN(p.tailLat, 10)
		s.LocalTailsOK, s.RemoteTailsOK = true, true
		s.LocalTails.Unacked = p.lhist
		s.RemoteTails.Unacked = p.rhist
	}
	return s
}

func (p *tailPort) Apply(d engine.Decision) error {
	p.applied = append(p.applied, d)
	return nil
}

func (p *tailPort) SelfContained() bool { return false }

// recController records what it was asked to observe.
type recController struct {
	mode     policy.Mode
	lastLat  time.Duration
	observes int
	degraded int
}

func (c *recController) Observe(l time.Duration, _ float64, valid bool) policy.Mode {
	c.observes++
	if valid {
		c.lastLat = l
	}
	return c.mode
}
func (c *recController) ObserveDegraded() policy.Mode { c.degraded++; return c.mode }
func (c *recController) Mode() policy.Mode            { return c.mode }
func (c *recController) Stats() policy.TogglerStats   { return policy.TogglerStats{} }

// TestTailQuantileDrivesController: with TailQuantile set the controller
// observes the composed tail quantile; without it, the mean — on the very
// same sample stream.
func TestTailQuantileDrivesController(t *testing.T) {
	mean, tail := 200*time.Microsecond, 2*time.Millisecond
	run := func(q float64) (time.Duration, *recController) {
		p := &tailPort{meanLat: mean, tailLat: tail, tails: true}
		ctl := &recController{mode: policy.BatchOn}
		ep := engine.New(engine.Config{Controller: ctl, TailQuantile: q}, p)
		ep.Tick(0)
		r := engine.TickResult{}
		for i := 1; i <= 3; i++ {
			r = ep.Tick(qstate.Time(i) * qstate.Time(100*time.Millisecond))
		}
		if !r.Estimate.Valid || !r.Estimate.Tail.Valid {
			t.Fatalf("q=%v: estimate %+v lost validity", q, r.Estimate)
		}
		return ctl.lastLat, ctl
	}

	gotTail, ctl := run(0.99)
	if ctl.degraded != 0 {
		t.Fatalf("tail ticks with tails present routed degraded %d times", ctl.degraded)
	}
	// Bucket quantization: the composed point mass sits within 12.5% of tail.
	if gotTail < tail*7/8 || gotTail > tail*9/8 {
		t.Fatalf("controller observed %v, want ≈ tail %v", gotTail, tail)
	}
	gotMean, _ := run(0)
	if gotMean != mean {
		t.Fatalf("mean mode observed %v, want %v", gotMean, mean)
	}
}

// TestTailAbstentionRoutesDegraded: a v1 peer (no tail histograms) under a
// tail-targeting config turns every post-priming tick into a degraded tick
// with TailAbstained set — while the identical stream without TailQuantile
// runs the normal Observe path.
func TestTailAbstentionRoutesDegraded(t *testing.T) {
	p := &tailPort{meanLat: 300 * time.Microsecond, tails: false}
	ctl := &recController{mode: policy.BatchOn}
	ep := engine.New(engine.Config{Controller: ctl, TailQuantile: 0.99}, p)
	ep.Tick(0)
	var r engine.TickResult
	for i := 1; i <= 4; i++ {
		r = ep.Tick(qstate.Time(i) * qstate.Time(100*time.Millisecond))
	}
	if !r.Estimate.Valid {
		t.Fatalf("mean estimate should stay valid for a v1 peer: %+v", r.Estimate)
	}
	if !r.TailAbstained || !r.Degraded {
		t.Fatalf("tick = %+v, want TailAbstained and Degraded", r)
	}
	if ctl.degraded != 4 {
		t.Fatalf("controller degraded calls = %d, want 4 (every post-priming tick)", ctl.degraded)
	}
	if ep.Stats().DegradedTicks != 4 {
		t.Fatalf("DegradedTicks = %d, want 4", ep.Stats().DegradedTicks)
	}

	// Control: same stream, mean targeting — no degradation at all.
	p2 := &tailPort{meanLat: 300 * time.Microsecond, tails: false}
	ctl2 := &recController{mode: policy.BatchOn}
	ep2 := engine.New(engine.Config{Controller: ctl2}, p2)
	ep2.Tick(0)
	for i := 1; i <= 4; i++ {
		r = ep2.Tick(qstate.Time(i) * qstate.Time(100*time.Millisecond))
	}
	if r.TailAbstained || r.Degraded || ctl2.degraded != 0 {
		t.Fatalf("mean-targeting control run degraded: %+v (%d degraded calls)", r, ctl2.degraded)
	}
}

// TestAIMDTailTargeting: AIMD driven by the tail quantile grows the limit
// while the tail violates the SLO, and freezes (skips the tick entirely)
// when the tail abstains.
func TestAIMDTailTargeting(t *testing.T) {
	// Tail 2ms violates the 1ms SLO even though the mean 200µs meets it:
	// only a tail-driven AIMD grows.
	p := &tailPort{meanLat: 200 * time.Microsecond, tailLat: 2 * time.Millisecond, tails: true}
	aimd := engine.AIMDPolicy{Ctl: policy.NewAIMD(512, 65536, 1024, 0.5), SLO: time.Millisecond}
	ep := engine.New(engine.Config{AIMD: &aimd, TailQuantile: 0.99}, p)
	ep.Tick(0)
	for i := 1; i <= 3; i++ {
		ep.Tick(qstate.Time(i) * qstate.Time(100*time.Millisecond))
	}
	if got := aimd.Ctl.Limit(); got != 512+3*1024 {
		t.Fatalf("limit = %d, want 3 grows from 512", got)
	}

	// Same but the peer stops sending tails: AIMD must freeze, not decay.
	p2 := &tailPort{meanLat: 200 * time.Microsecond, tails: false}
	aimd2 := engine.AIMDPolicy{Ctl: policy.NewAIMD(512, 65536, 1024, 0.5), SLO: time.Millisecond}
	ep2 := engine.New(engine.Config{AIMD: &aimd2, TailQuantile: 0.99}, p2)
	ep2.Tick(0)
	var r engine.TickResult
	for i := 1; i <= 3; i++ {
		r = ep2.Tick(qstate.Time(i) * qstate.Time(100*time.Millisecond))
	}
	if got := aimd2.Ctl.Limit(); got != 512 {
		t.Fatalf("abstaining tail moved the limit to %d", got)
	}
	if r.Applied || !r.TailAbstained {
		t.Fatalf("abstained AIMD tick = %+v, want skipped with TailAbstained", r)
	}
}

func TestNewPanicsOnBadTailQuantile(t *testing.T) {
	for _, q := range []float64{-0.5, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("TailQuantile=%v accepted", q)
				}
			}()
			engine.New(engine.Config{TailQuantile: q}, &tailPort{})
		}()
	}
}
