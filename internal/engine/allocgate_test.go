//go:build !race

// Allocation gate for the engine's //e2e:hotpath tick (DESIGN.md §13): a
// steady-state Endpoint.Tick — snapshot, estimate, decide, apply — must not
// allocate, in every configuration (passive, controller-driven, and with an
// Observer attached, where Samples are views into endpoint scratch).
// Excluded under -race because the race runtime's shadow allocations would
// be charged to the tracked code.

package engine_test

import (
	"testing"

	"e2ebatch/internal/core"
	"e2ebatch/internal/engine"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/qstate"
)

// gatePort scripts samples like fakePort but records only the last applied
// decision — fakePort.Apply appends to a log, which would charge the gate
// for test bookkeeping rather than engine work.
type gatePort struct {
	st   qstate.State
	last engine.Decision
}

func (p *gatePort) Snapshot(now qstate.Time) core.Sample {
	return core.Sample{Local: core.Queues{Unacked: p.st.Snapshot(now)}, At: now}
}

func (p *gatePort) Apply(d engine.Decision) error { p.last = d; return nil }
func (p *gatePort) SelfContained() bool           { return true }

// gateObserver consumes tick results without retaining the scratch views.
type gateObserver struct{ ticks int }

func (o *gateObserver) ObserveTick(now qstate.Time, r engine.TickResult) {
	o.ticks += len(r.PerPort)
}

func TestAllocGateEndpointTick(t *testing.T) {
	run := func(t *testing.T, cfg engine.Config) {
		t.Helper()
		p := &gatePort{}
		p.st.Init(0)
		ep := engine.New(cfg, p)
		now := qstate.Time(0)
		tick := func() {
			now += ms
			p.st.Track(now, 1)
			now += ms
			p.st.Track(now, -1)
			ep.Tick(now)
		}
		tick() // prime the estimator outside the measured runs
		if n := testing.AllocsPerRun(200, tick); n != 0 {
			t.Errorf("Endpoint.Tick allocates %v per op, want 0 (//e2e:hotpath)", n)
		}
	}
	t.Run("passive", func(t *testing.T) {
		run(t, engine.Config{})
	})
	t.Run("controller", func(t *testing.T) {
		run(t, engine.Config{Controller: &fakeController{mode: policy.BatchOn}, CorkOnBytes: 16 << 10})
	})
	t.Run("observer", func(t *testing.T) {
		run(t, engine.Config{Controller: &fakeController{mode: policy.BatchOn}, Observer: &gateObserver{}})
	})
}
