// Package engine is the one implementation of the paper's per-endpoint
// control loop: queue snapshot → core.Sample assembly → end-to-end estimate
// → batching decision → mode application, with degraded-tick routing and
// tick accounting (§3.2 estimation, §5 toggling, PR-3 graceful
// degradation).
//
// Every backend — the simulated stack (tcpsim), the multi-connection
// aggregation runs, real kernel TCP (realtcp) and the RPC runtime (rpclib)
// — drives the same Endpoint; they differ only in the two small interfaces
// they plug in:
//
//	Port   where samples come from and decisions go (snapshot source +
//	       mode sink), implemented by each backend's connection type;
//	Clock  who schedules the decision tick (the virtual sim clock or a
//	       wall-clock ticker goroutine).
//
// Closed-loop estimators are only comparable across backends when the
// measurement/control loop is held fixed (PAPERS.md: Hill on Little's law,
// Lübben & Fidler's closed-loop TCP benchmarks); concentrating the loop
// here is what makes the sim-vs-real comparisons legitimate, and means a
// policy change lands on all backends at once. The enginewiring analyzer
// (DESIGN.md §8) keeps the loop from being re-inlined elsewhere.
//
// The Endpoint itself is single-goroutine: all Ticks must come from one
// goroutine (the sim event loop, or one ticker goroutine whose Stop
// establishes a happens-before with readers of Stats).
package engine

import (
	"time"

	"e2ebatch/internal/core"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/qstate"
)

// Decision is one batching decision as applied to a connection: the on/off
// mode plus, when positive, the cork threshold to install. Zero CorkBytes
// leaves the port's threshold unchanged (the on/off toggler corks only when
// batching; the AIMD controller re-corks every tick).
type Decision struct {
	Batch     bool
	CorkBytes int
}

// Port adapts one backend connection to the engine: it produces the per-tick
// sample and absorbs the per-tick decision. Implementations live with the
// backends (tcpsim.EnginePort, realtcp.Client.EnginePort, rpclib
// Client.Port).
type Port interface {
	// Snapshot captures the connection's queue state as a core.Sample at
	// time now (At and, when peer metadata exists, Remote/RemoteAt set).
	Snapshot(now qstate.Time) core.Sample
	// Apply installs a decision. Errors are counted by the endpoint and,
	// past Config.ModeErrorLimit consecutive failing ticks, degrade the
	// run (the real-TCP safe-mode fallback).
	Apply(d Decision) error
	// SelfContained reports that the port's samples carry the full
	// end-to-end picture on their own — true for hints-based ports
	// (create/complete spans the whole round trip, §3.3), where a missing
	// peer exchange is the design rather than a degradation.
	SelfContained() bool
}

// Controller is the mode-deciding policy surface the endpoint drives — the
// ε-greedy policy.Toggler and the UCB1 policy.UCBToggler both satisfy it.
type Controller interface {
	Observe(latency time.Duration, throughput float64, valid bool) policy.Mode
	ObserveDegraded() policy.Mode
	Mode() policy.Mode
	Stats() policy.TogglerStats
}

// AIMDPolicy is the alternative decision policy: AIMD control of the cork
// threshold against an SLO (§5 "Better Batching Heuristics").
type AIMDPolicy struct {
	Ctl *policy.AIMD
	SLO time.Duration
}

// Observer receives every tick's full result for telemetry. It is the
// engine's export seam to the observability plane (internal/obs): the
// engine never imports obs, and a nil observer costs nothing — no extra
// allocations, no extra calls — so golden-pinned simulation runs are
// byte-identical with and without the plane compiled in. ObserveTick runs
// on the tick goroutine; implementations must not block it.
type Observer interface {
	ObserveTick(now qstate.Time, r TickResult)
}

// AuditStats is the online estimator-audit summary the engine consumes
// each tick: how sampled per-request delays compared against the estimates
// that were current when they completed. It is produced by the span
// tracer's auditor (internal/obs/span) but defined here — like Observer —
// so the engine never imports the observability plane.
type AuditStats struct {
	// Audited counts sampled spans scored against a valid mean estimate;
	// TailAudited the subset that also carried a valid tail stamp; Covered
	// the TailAudited spans whose measured delay fell at or under the
	// predicted p99; BlindTail the Audited spans whose stamp had a valid
	// mean but no tail.
	Audited     uint64
	TailAudited uint64
	Covered     uint64
	BlindTail   uint64
	// Coverage is Covered/TailAudited (1 before any tail-audited span): the
	// live analogue of the fidelity harness's p99-coverage score. A healthy
	// p99 estimate keeps it near 0.99.
	Coverage float64
	// ResidualEWMA is the exponentially weighted mean of (measured −
	// estimated) delay over audited spans — the estimator's signed bias.
	ResidualEWMA time.Duration
	// Drifting reports the audit tripped: coverage fell below the
	// configured floor with enough samples, or a tail was expected and
	// never stamped. Drifting ticks are routed down the degraded path.
	Drifting bool
}

// AuditSource supplies the per-tick audit summary — implemented by
// span.Auditor. AuditStats runs on the tick goroutine (//e2e:hotpath) and
// must not block or allocate.
type AuditSource interface {
	AuditStats() AuditStats
}

// Config parameterizes an Endpoint. At most one of Controller and AIMD may
// be set; with neither, the endpoint is a passive estimator (Tick updates
// estimates and accounting but applies nothing) — the probe mode the
// steady-state and ablation measurements use.
type Config struct {
	Controller Controller
	AIMD       *AIMDPolicy

	// Initial is the mode applied at construction when Controller is set.
	Initial policy.Mode
	// CorkOnBytes is the cork threshold installed whenever the controller
	// selects batch-on.
	CorkOnBytes int
	// MaxRemoteAge bounds peer-metadata staleness (core.Estimator).
	MaxRemoteAge time.Duration
	// TailQuantile, when nonzero, drives the policy with the composed tail
	// estimate's quantile (e.g. 0.99 for "p99 ≤ D_max" with a
	// policy.QuantileUnderSLO objective) instead of the mean latency. Ticks
	// whose mean estimate is valid but whose tail estimate abstained — a v1
	// peer without delay histograms, reordered deltas — are routed down the
	// degraded path exactly like missing peer metadata: a tail SLO cannot
	// be enforced on a tail nobody can see, so the controller retreats to
	// its safe mode rather than deciding blind. Must lie in (0, 1); the
	// canonical points are core.TailQuantiles.
	TailQuantile float64
	// ModeErrorLimit, when positive, is how many consecutive ticks with a
	// failing Apply the endpoint tolerates before treating ticks as
	// degraded — routing the controller to ObserveDegraded and thus, per
	// its config, into safe mode. Zero disables the check.
	ModeErrorLimit int
	// OnTick, when non-nil, observes every tick's result after the
	// decision is applied (e.g. to accumulate an online-estimate series).
	OnTick func(now qstate.Time, r TickResult)
	// Observer, when non-nil, additionally receives every tick's result
	// with the raw port samples attached (TickResult.Samples) — the
	// telemetry hook. Unlike OnTick it is an interface so backends can
	// thread it through their option structs without importing the
	// observability plane.
	Observer Observer
	// Audit, when non-nil, is polled every tick for the online
	// estimator-audit summary; a drifting audit routes the tick down the
	// degraded path (the same safe-mode retreat a missing peer or an
	// abstaining tail triggers) — the estimator is measurably wrong about
	// the delays requests actually experience, so decisions built on it
	// are no longer trustworthy.
	Audit AuditSource
}

// TickResult is what one decision tick produced.
type TickResult struct {
	// Estimate is the per-interval end-to-end estimate (the aggregate,
	// for multi-port endpoints); PerPort holds the individual estimates.
	Estimate core.Estimate
	PerPort  []core.Estimate
	// Degraded reports the tick was routed down the degraded path
	// (untrusted estimate, repeated mode-application failures, or — in
	// tail-targeting mode — an abstaining tail estimate).
	Degraded bool
	// TailAbstained reports that Config.TailQuantile demanded a tail but
	// the estimate carried none despite a valid mean — the tick was then
	// routed degraded. Surfaced separately so telemetry can distinguish
	// "peer gone" from "peer speaks v1 / tail unobservable".
	TailAbstained bool
	// Audit is the tick's estimator-audit summary and AuditChecked whether
	// one was taken (Config.Audit set); AuditDrift reports the audit
	// tripped on this tick, which also routed it degraded.
	Audit        AuditStats
	AuditChecked bool
	AuditDrift   bool
	// Mode and Applied describe the decision: Applied is false for
	// passive endpoints and for AIMD ticks skipped on invalid estimates.
	Mode    policy.Mode
	Applied bool
	// ApplyErrors counts the ports whose Apply failed on this tick.
	ApplyErrors int
	// Samples holds the raw per-port samples the tick consumed. It is
	// populated only when Config.Observer is set, so observer-less runs
	// stay allocation-identical to pre-telemetry builds.
	Samples []core.Sample
}

// PerPort and Samples are views into the endpoint's scratch buffers: they
// are valid only until the next Tick on the same endpoint. OnTick and
// Observer callbacks that retain tick data across ticks must copy the
// slices' contents; the engine reuses the backing arrays so a steady-state
// tick allocates nothing (//e2e:hotpath, DESIGN.md §13).

// Stats counts an endpoint's activity.
type Stats struct {
	// TotalTicks counts every Tick; OnTicks those where a controller
	// chose batch-on; DegradedTicks those routed degraded.
	TotalTicks    int
	OnTicks       int
	DegradedTicks int
	// TailAbstainedTicks counts the DegradedTicks subset caused by a
	// tail-targeting config meeting a valid mean but no composed tail.
	TailAbstainedTicks int
	// AuditDriftTicks counts the DegradedTicks subset caused by a
	// drifting estimator audit (Config.Audit).
	AuditDriftTicks int
	// ValidEstimates counts ticks whose estimate was valid.
	ValidEstimates int
	// ModeErrors counts individual Apply failures.
	ModeErrors int
}

// Endpoint owns the control loop over one or more ports. Multi-port
// endpoints estimate per port and decide on the throughput-weighted
// aggregate — the multi-connection policy scope of §3.2.
type Endpoint struct {
	cfg   Config
	ports []Port
	ests  []core.Estimator

	// perPort and samples are the tick's scratch buffers, allocated once at
	// construction and re-filled every tick (TickResult hands out views).
	// samples stays nil unless an Observer is configured.
	perPort []core.Estimate
	samples []core.Sample

	modeErrRun int
	stats      Stats
	tickers    []Ticker
}

// New builds an endpoint over ports. When a Controller is configured, the
// initial mode is applied immediately (the tick loop then re-applies each
// decision). It panics on zero ports or on both policies at once.
func New(cfg Config, ports ...Port) *Endpoint {
	if len(ports) == 0 {
		panic("engine: endpoint needs at least one port")
	}
	if cfg.Controller != nil && cfg.AIMD != nil {
		panic("engine: Controller and AIMD are mutually exclusive")
	}
	if cfg.TailQuantile != 0 && (cfg.TailQuantile <= 0 || cfg.TailQuantile >= 1) {
		panic("engine: TailQuantile must lie in (0, 1)")
	}
	ep := &Endpoint{
		cfg:     cfg,
		ports:   ports,
		ests:    make([]core.Estimator, len(ports)),
		perPort: make([]core.Estimate, len(ports)),
	}
	if cfg.Observer != nil {
		ep.samples = make([]core.Sample, len(ports))
	}
	for i := range ep.ests {
		ep.ests[i].MaxRemoteAge = cfg.MaxRemoteAge
	}
	if cfg.Controller != nil {
		ep.apply(ep.decisionFor(cfg.Initial))
	}
	return ep
}

// Tick runs one iteration of the control loop at time now: snapshot every
// port, update the estimators, route the estimate to the configured policy,
// and apply the decision back to every port. The returned result's PerPort
// and Samples slices are views into the endpoint's scratch buffers (see
// TickResult); a steady-state tick performs zero heap allocations.
//
//e2e:hotpath
func (ep *Endpoint) Tick(now qstate.Time) TickResult {
	var r TickResult
	r.PerPort = ep.perPort
	r.Samples = ep.samples // nil unless an Observer is configured
	for i, p := range ep.ports {
		s := p.Snapshot(now)
		if r.Samples != nil {
			r.Samples[i] = s
		}
		e := ep.ests[i].Update(s)
		if p.SelfContained() {
			// A hints sample spans the full round trip by itself;
			// absent peer metadata is not a degradation there.
			e.Degraded, e.RemoteStale = false, false
		}
		r.PerPort[i] = e
	}
	if len(ep.ports) == 1 {
		r.Estimate = r.PerPort[0]
	} else {
		r.Estimate = core.Aggregate(r.PerPort)
		r.Estimate.Degraded = allDegraded(r.PerPort)
	}
	if r.Estimate.Valid {
		ep.stats.ValidEstimates++
	}
	r.Degraded = r.Estimate.Degraded ||
		(ep.cfg.ModeErrorLimit > 0 && ep.modeErrRun >= ep.cfg.ModeErrorLimit)
	tailMode := ep.cfg.TailQuantile > 0
	if tailMode && r.Estimate.Valid && !r.Estimate.Tail.Valid {
		// A tail SLO with no tail to check: treat exactly like degraded
		// peer metadata (the controller's ObserveDegraded path).
		r.TailAbstained = true
		r.Degraded = true
		ep.stats.TailAbstainedTicks++
	}
	if ep.cfg.Audit != nil {
		r.Audit = ep.cfg.Audit.AuditStats()
		r.AuditChecked = true
		if r.Audit.Drifting {
			// The live audit says measured delays no longer match the
			// estimate driving decisions: route degraded, same retreat as
			// an untrusted estimate.
			r.AuditDrift = true
			r.Degraded = true
			ep.stats.AuditDriftTicks++
		}
	}
	// lat is what the policy observes: the mean estimate, or — in
	// tail-targeting mode — the configured quantile of the composed tail.
	lat := r.Estimate.Latency
	if tailMode && r.Estimate.Tail.Valid {
		lat = r.Estimate.Tail.Quantile(ep.cfg.TailQuantile)
	}

	switch {
	case ep.cfg.Controller != nil:
		var m policy.Mode
		if r.Degraded {
			ep.stats.DegradedTicks++
			m = ep.cfg.Controller.ObserveDegraded()
		} else {
			m = ep.cfg.Controller.Observe(lat, r.Estimate.Throughput, r.Estimate.Valid)
		}
		r.ApplyErrors = ep.apply(ep.decisionFor(m))
		r.Mode, r.Applied = m, true
		if m == policy.BatchOn {
			ep.stats.OnTicks++
		}
	case ep.cfg.AIMD != nil:
		ok := r.Estimate.Valid
		if tailMode {
			// AIMD must not grow or decay on a tail it cannot see.
			ok = ok && r.Estimate.Tail.Valid
		}
		if ok {
			a := ep.cfg.AIMD
			limit := a.Ctl.Observe(lat > a.SLO)
			batch := !a.Ctl.AtFloor()
			r.ApplyErrors = ep.apply(Decision{Batch: batch, CorkBytes: limit})
			r.Applied = true
			if batch {
				r.Mode = policy.BatchOn
			}
		}
		if r.Degraded {
			ep.stats.DegradedTicks++
		}
	default:
		if r.Degraded {
			ep.stats.DegradedTicks++
		}
	}
	ep.stats.TotalTicks++
	if ep.cfg.OnTick != nil {
		ep.cfg.OnTick(now, r)
	}
	if ep.cfg.Observer != nil {
		ep.cfg.Observer.ObserveTick(now, r)
	}
	return r
}

// decisionFor maps a controller mode to the decision the loop applies: cork
// at CorkOnBytes while batching, leave the threshold alone otherwise.
func (ep *Endpoint) decisionFor(m policy.Mode) Decision {
	d := Decision{Batch: m == policy.BatchOn}
	if d.Batch {
		d.CorkBytes = ep.cfg.CorkOnBytes
	}
	return d
}

// apply installs d on every port, in port order, tracking failures. It
// returns how many ports failed, for the tick result.
func (ep *Endpoint) apply(d Decision) int {
	failed := 0
	for _, p := range ep.ports {
		if err := p.Apply(d); err != nil {
			ep.stats.ModeErrors++
			failed++
		}
	}
	if failed > 0 {
		ep.modeErrRun++
	} else {
		ep.modeErrRun = 0
	}
	return failed
}

// allDegraded reports whether every estimate in es is degraded — the
// aggregate is only untrusted once no connection retains a usable peer view.
func allDegraded(es []core.Estimate) bool {
	for _, e := range es {
		if !e.Degraded {
			return false
		}
	}
	return len(es) > 0
}

// Start schedules Tick every period on clock. It may be called several
// times (e.g. distinct sample and decision cadences share accounting only
// if that is what the caller wants — the experiments use one).
func (ep *Endpoint) Start(clock Clock, period time.Duration) {
	ep.tickers = append(ep.tickers, clock.Tick(period, func(now qstate.Time) {
		ep.Tick(now)
	}))
}

// Stop halts every ticker started via Start. For wall-clock tickers, Stop
// returns only after the tick goroutine exits, so a subsequent Stats read
// is race-free.
func (ep *Endpoint) Stop() {
	for _, t := range ep.tickers {
		t.Stop()
	}
	ep.tickers = nil
}

// Reset discards the estimators' priming state — the counter history is
// invalid after a connection reset, so the next sample re-primes rather
// than differencing across the discontinuity (configuration survives).
func (ep *Endpoint) Reset() {
	for i := range ep.ests {
		ep.ests[i].Reset()
	}
}

// Stats returns a copy of the endpoint's counters.
func (ep *Endpoint) Stats() Stats { return ep.stats }

// Controller returns the configured controller (nil for passive or AIMD
// endpoints).
func (ep *Endpoint) Controller() Controller { return ep.cfg.Controller }
