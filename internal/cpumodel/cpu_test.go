package cpumodel

import (
	"testing"
	"time"

	"e2ebatch/internal/sim"
)

func TestExecRunsAfterCost(t *testing.T) {
	s := sim.New(1)
	c := New(s, "app")
	var doneAt sim.Time
	c.Exec(10*time.Nanosecond, func() { doneAt = s.Now() })
	s.Run()
	if doneAt != 10 {
		t.Fatalf("done at %v, want 10", doneAt)
	}
}

func TestExecFIFOQueueing(t *testing.T) {
	s := sim.New(1)
	c := New(s, "app")
	var finishes []sim.Time
	rec := func() { finishes = append(finishes, s.Now()) }
	c.Exec(10*time.Nanosecond, rec)
	c.Exec(5*time.Nanosecond, rec)
	c.Exec(1*time.Nanosecond, rec)
	s.Run()
	want := []sim.Time{10, 15, 16}
	for i := range want {
		if finishes[i] != want[i] {
			t.Fatalf("finishes = %v, want %v", finishes, want)
		}
	}
}

func TestExecAfterIdleStartsNow(t *testing.T) {
	s := sim.New(1)
	c := New(s, "app")
	c.Exec(10*time.Nanosecond, nil)
	s.RunUntil(100)
	var doneAt sim.Time
	c.Exec(5*time.Nanosecond, func() { doneAt = s.Now() })
	s.Run()
	if doneAt != 105 {
		t.Fatalf("done at %v, want 105 (no stale backlog)", doneAt)
	}
}

func TestExecZeroAndNegativeCost(t *testing.T) {
	s := sim.New(1)
	c := New(s, "app")
	ran := 0
	c.Exec(0, func() { ran++ })
	c.Exec(-time.Second, func() { ran++ })
	s.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if c.BusyTime() != 0 {
		t.Fatalf("busy = %v, want 0", c.BusyTime())
	}
}

func TestExecNilDone(t *testing.T) {
	s := sim.New(1)
	c := New(s, "app")
	finish := c.Exec(7*time.Nanosecond, nil)
	if finish != 7 {
		t.Fatalf("finish = %v, want 7", finish)
	}
	s.Run()
}

func TestBacklog(t *testing.T) {
	s := sim.New(1)
	c := New(s, "app")
	if c.Backlog() != 0 {
		t.Fatal("fresh CPU has backlog")
	}
	c.Exec(100*time.Nanosecond, nil)
	c.Exec(50*time.Nanosecond, nil)
	if c.Backlog() != 150*time.Nanosecond {
		t.Fatalf("backlog = %v, want 150ns", c.Backlog())
	}
	s.RunUntil(120)
	if c.Backlog() != 30*time.Nanosecond {
		t.Fatalf("backlog = %v, want 30ns", c.Backlog())
	}
}

func TestUtilizationWindows(t *testing.T) {
	s := sim.New(1)
	c := New(s, "app")
	c.Exec(50*time.Nanosecond, nil)
	s.RunUntil(100)
	if got := c.Utilization(); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	// Second window: idle.
	s.RunUntil(200)
	if got := c.Utilization(); got != 0 {
		t.Fatalf("idle utilization = %v, want 0", got)
	}
}

func TestUtilizationZeroWindow(t *testing.T) {
	s := sim.New(1)
	c := New(s, "app")
	if got := c.Utilization(); got != 0 {
		t.Fatalf("zero-window utilization = %v", got)
	}
}

func TestJobsAndBusyTime(t *testing.T) {
	s := sim.New(1)
	c := New(s, "x")
	c.Exec(3*time.Nanosecond, nil)
	c.Exec(4*time.Nanosecond, nil)
	s.Run()
	if c.Jobs() != 2 {
		t.Fatalf("jobs = %d", c.Jobs())
	}
	if c.BusyTime() != 7*time.Nanosecond {
		t.Fatalf("busy = %v", c.BusyTime())
	}
	if c.Name() != "x" {
		t.Fatalf("name = %q", c.Name())
	}
}

func TestCostsBatchFormula(t *testing.T) {
	c := Costs{PerItem: 2 * time.Microsecond, PerBatch: 4 * time.Microsecond, PerByteNS: 1}
	// Figure 1's model: batch of n=3 costs n·α + β (+ bytes).
	got := c.Batch(3, 100)
	want := 4*time.Microsecond + 3*2*time.Microsecond + 100*time.Nanosecond
	if got != want {
		t.Fatalf("Batch = %v, want %v", got, want)
	}
	if c.Item(100) != c.Batch(1, 100) {
		t.Fatal("Item != Batch(1, ...)")
	}
	if c.Batch(0, 0) != 0 {
		t.Fatal("empty batch should cost 0")
	}
}

func TestCostsSubNanosecondPerByte(t *testing.T) {
	c := Costs{PerByteNS: 0.25}
	if got := c.Batch(0, 16384); got != 4096*time.Nanosecond {
		t.Fatalf("Batch = %v, want 4096ns", got)
	}
}

func TestCostsNegativeInputsClamped(t *testing.T) {
	c := Costs{PerItem: 10, PerBatch: 20, PerByteNS: 1}
	if got := c.Batch(-5, -100); got != 0 {
		t.Fatalf("Batch(-5,-100) = %v, want 0", got)
	}
	if got := c.Batch(1, -100); got != 30 {
		t.Fatalf("Batch(1,-100) = %v, want 30ns", got)
	}
}

func TestCostsScale(t *testing.T) {
	c := Costs{PerItem: 10, PerBatch: 20, PerByteNS: 2}
	g := c.Scale(2.5)
	if g.PerItem != 25 || g.PerBatch != 50 || g.PerByteNS != 5 {
		t.Fatalf("Scale = %+v", g)
	}
}
