// Package cpumodel models execution contexts as FIFO service-time resources
// inside the discrete-event simulation.
//
// The paper's testbed pins two execution contexts per machine — the
// application thread (Redis or Lancet) and the network-stack softirq context
// — to dedicated cores (§4 Methodology). Each such context is one CPU here:
// work items queue behind each other, which is precisely the congestion that
// makes batching decisions matter (Figure 1 of the paper is three jobs
// queued on one server CPU).
package cpumodel

import (
	"fmt"
	"time"

	"e2ebatch/internal/sim"
)

// CPU is a single FIFO execution context. Work submitted with Exec runs for
// its cost after all previously submitted work completes. The zero value is
// unusable; construct with New.
type CPU struct {
	sim  *sim.Sim
	name string

	nextFree sim.Time
	busy     time.Duration // cumulative busy time
	jobs     uint64

	// window accounting for utilization sampling
	winBusyAt time.Duration
	winAt     sim.Time
}

// New returns a CPU attached to the simulator. The name appears in
// diagnostics and utilization reports.
func New(s *sim.Sim, name string) *CPU {
	return &CPU{sim: s, name: name}
}

// Name returns the CPU's diagnostic name.
func (c *CPU) Name() string { return c.name }

// Exec queues a work item costing cost and schedules done (which may be nil)
// at its completion time, which is returned. Zero or negative cost completes
// immediately after the queue drains.
func (c *CPU) Exec(cost time.Duration, done func()) sim.Time {
	if cost < 0 {
		cost = 0
	}
	now := c.sim.Now()
	start := now
	if c.nextFree > start {
		start = c.nextFree
	}
	finish := start.Add(cost)
	c.nextFree = finish
	c.busy += cost
	c.jobs++
	if done != nil {
		c.sim.At(finish, done)
	}
	return finish
}

// Backlog returns how long newly submitted work would wait before starting.
func (c *CPU) Backlog() time.Duration {
	now := c.sim.Now()
	if c.nextFree <= now {
		return 0
	}
	return c.nextFree.Sub(now)
}

// BusyTime returns the cumulative busy time scheduled so far (including work
// not yet finished in virtual time).
func (c *CPU) BusyTime() time.Duration { return c.busy }

// Jobs returns the number of work items executed.
func (c *CPU) Jobs() uint64 { return c.jobs }

// Utilization returns the fraction of time the CPU was busy during the
// window since the previous Utilization call (or since the start, for the
// first call), then resets the window. The result can marginally exceed 1
// when work scheduled inside the window completes after it.
func (c *CPU) Utilization() float64 {
	now := c.sim.Now()
	elapsed := now.Sub(c.winAt)
	busy := c.busy - c.winBusyAt
	c.winAt = now
	c.winBusyAt = c.busy
	if elapsed <= 0 {
		return 0
	}
	return float64(busy) / float64(elapsed)
}

// String summarizes the CPU state.
func (c *CPU) String() string {
	return fmt.Sprintf("cpu(%s): jobs=%d busy=%v backlog=%v", c.name, c.jobs, c.busy, c.Backlog())
}
