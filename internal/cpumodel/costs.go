package cpumodel

import "time"

// Costs describes a processing-cost profile in the paper's α/β vocabulary
// (§2): PerItem is the per-request cost α, PerBatch the amortizable
// per-batch cost β, and PerByteNS the data-dependent component (copies,
// checksums) in nanoseconds per byte — a float because realistic copy costs
// are fractions of a nanosecond per byte. A batch of n items of total size
// bytes costs PerBatch + n·PerItem + bytes·PerByteNS.
type Costs struct {
	PerItem   time.Duration
	PerBatch  time.Duration
	PerByteNS float64
}

// Batch returns the cost of processing n items totalling bytes in one batch.
func (c Costs) Batch(n int, bytes int) time.Duration {
	if n <= 0 && bytes <= 0 {
		return 0
	}
	if n < 0 {
		n = 0
	}
	if bytes < 0 {
		bytes = 0
	}
	return c.PerBatch + time.Duration(n)*c.PerItem + time.Duration(float64(bytes)*c.PerByteNS)
}

// Item returns the cost of processing a single item of the given size
// without batching (α + β + size·PerByteNS).
func (c Costs) Item(bytes int) time.Duration { return c.Batch(1, bytes) }

// Scale returns the profile with every component multiplied by f — used to
// derive the "inside a VM" client of Figure 2 from the bare-metal profile.
func (c Costs) Scale(f float64) Costs {
	return Costs{
		PerItem:   time.Duration(float64(c.PerItem) * f),
		PerBatch:  time.Duration(float64(c.PerBatch) * f),
		PerByteNS: c.PerByteNS * f,
	}
}
