// Package rpclib is a minimal request-response RPC runtime with the paper's
// create/complete hint API built in — the integration §3.3 envisions for
// frameworks "like gRPC and Thrift": applications get accurate end-to-end
// performance estimation for free, with no per-call instrumentation of
// their own, because the runtime invokes create(n) when calls are issued
// and complete(n) when their responses are consumed.
//
// The wire format is a simple length-prefixed frame:
//
//	uint32 big-endian: payload length
//	uint64 big-endian: call id (responses echo the request's id)
//	uint8:             kind (0 = request, 1 = response, 2 = error)
//	payload bytes
//
// The runtime runs both over the simulated stack (event-driven) and over
// any io.ReadWriter; only the simulated flavour is wired here because that
// is where the experiments live.
package rpclib

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"e2ebatch/internal/hints"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
	"e2ebatch/internal/tcpsim"
)

// Frame kinds.
const (
	KindRequest  = 0
	KindResponse = 1
	KindError    = 2
)

const headerSize = 4 + 8 + 1

// maxFrame bounds a frame's payload to keep a corrupt length prefix from
// swallowing the stream.
const maxFrame = 64 << 20

// AppendFrame appends the wire form of one frame.
func AppendFrame(buf []byte, id uint64, kind byte, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint64(hdr[4:], id)
	hdr[12] = kind
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Frame is one decoded frame.
type Frame struct {
	ID      uint64
	Kind    byte
	Payload []byte
}

// ErrFrame is wrapped by framing errors.
var ErrFrame = errors.New("rpclib: framing error")

// Decoder incrementally decodes frames from a byte stream. The zero value
// is ready to use.
type Decoder struct {
	buf []byte
	off int
}

// Feed appends stream bytes.
func (d *Decoder) Feed(b []byte) {
	if d.off > 0 && d.off >= len(d.buf)/2 {
		d.buf = append(d.buf[:0], d.buf[d.off:]...)
		d.off = 0
	}
	d.buf = append(d.buf, b...)
}

// Next pops one complete frame; ok is false when more bytes are needed.
func (d *Decoder) Next() (f Frame, ok bool, err error) {
	b := d.buf[d.off:]
	if len(b) < headerSize {
		return Frame{}, false, nil
	}
	n := int(binary.BigEndian.Uint32(b[0:]))
	if n > maxFrame {
		return Frame{}, false, fmt.Errorf("%w: frame length %d", ErrFrame, n)
	}
	if len(b) < headerSize+n {
		return Frame{}, false, nil
	}
	f = Frame{
		ID:      binary.BigEndian.Uint64(b[4:]),
		Kind:    b[12],
		Payload: append([]byte(nil), b[headerSize:headerSize+n]...),
	}
	d.off += headerSize + n
	return f, true, nil
}

// Handler processes one request payload and returns the response payload or
// an error (sent as a KindError frame).
type Handler func(method uint64, payload []byte) ([]byte, error)

// Server serves RPC frames on a simulated connection, charging the host's
// app CPU per the given cost profile.
type Server struct {
	conn    *tcpsim.Conn
	handler Handler
	dec     Decoder
	busy    bool
	pending []Frame

	// PerCall and PerByteNS price handler execution on the app CPU.
	PerCall   time.Duration
	PerByteNS float64

	served uint64
}

// NewServer attaches a server to conn.
func NewServer(conn *tcpsim.Conn, h Handler) *Server {
	if h == nil {
		panic("rpclib: nil handler")
	}
	s := &Server{conn: conn, handler: h}
	conn.OnReadable(s.wake)
	return s
}

// Served returns how many calls completed.
func (s *Server) Served() uint64 { return s.served }

func (s *Server) wake() {
	if s.busy {
		return
	}
	s.busy = true
	s.cycle()
}

func (s *Server) cycle() {
	data := s.conn.Read(0)
	if len(data) > 0 {
		s.dec.Feed(data)
	}
	for {
		f, ok, err := s.dec.Next()
		if err != nil {
			s.conn.OnReadable(nil)
			s.busy = false
			return
		}
		if !ok {
			break
		}
		s.pending = append(s.pending, f)
	}
	s.next()
}

func (s *Server) next() {
	if len(s.pending) == 0 {
		s.busy = false
		if s.conn.Readable() > 0 {
			s.wake()
		}
		return
	}
	f := s.pending[0]
	s.pending = s.pending[1:]
	cost := s.PerCall + time.Duration(float64(len(f.Payload))*s.PerByteNS)
	s.conn.Stack().AppCPU.Exec(cost, func() {
		out, err := s.handler(f.ID, f.Payload)
		kind := byte(KindResponse)
		if err != nil {
			kind = KindError
			out = []byte(err.Error())
		}
		s.conn.Send(AppendFrame(nil, f.ID, kind, out))
		s.served++
		s.next()
	})
}

// Client issues RPC calls over a simulated connection. The runtime owns a
// hints.Tracker: Call invokes create(1), and the response handler invokes
// complete(1) — exactly the library-level integration §3.3 proposes.
type Client struct {
	conn *tcpsim.Conn
	s    *sim.Sim
	dec  Decoder

	tracker *hints.Tracker
	est     *hints.Estimator

	nextID  uint64
	pending map[uint64]func(Frame)

	// PerCall prices call issue on the client app CPU.
	PerCall time.Duration

	completed uint64
	failed    uint64
}

// NewClient attaches a client runtime to conn.
func NewClient(s *sim.Sim, conn *tcpsim.Conn) *Client {
	c := &Client{
		conn:    conn,
		s:       s,
		pending: make(map[uint64]func(Frame)),
	}
	c.tracker = hints.NewTracker(func() qstate.Time { return qstate.Time(s.Now()) })
	c.est = hints.NewEstimator(c.tracker)
	c.est.Sample() // prime
	conn.OnReadable(c.onReadable)
	return c
}

// Tracker exposes the runtime-maintained queue state (what the kernel would
// receive via ancillary data).
func (c *Client) Tracker() *hints.Tracker { return c.tracker }

// Estimate returns app-perceived averages since the previous call.
func (c *Client) Estimate() qstate.Avgs { return c.est.Sample() }

// Completed and Failed report call outcomes.
func (c *Client) Completed() uint64 { return c.completed }

// Failed reports calls answered with KindError.
func (c *Client) Failed() uint64 { return c.failed }

// Outstanding returns issued-but-unanswered calls.
func (c *Client) Outstanding() int64 { return c.tracker.Outstanding() }

// Call issues a request; done (may be nil) runs when the response arrives.
// The hint bookkeeping is entirely the runtime's.
func (c *Client) Call(payload []byte, done func(resp Frame)) uint64 {
	id := c.nextID
	c.nextID++
	c.pending[id] = done
	c.tracker.Create(1)
	wire := AppendFrame(nil, id, KindRequest, payload)
	c.conn.Stack().AppCPU.Exec(c.PerCall, func() {
		c.conn.Send(wire)
	})
	return id
}

func (c *Client) onReadable() {
	data := c.conn.Read(0)
	if len(data) == 0 {
		return
	}
	c.dec.Feed(data)
	for {
		f, ok, err := c.dec.Next()
		if err != nil {
			panic(fmt.Sprintf("rpclib: corrupt response stream: %v", err))
		}
		if !ok {
			return
		}
		done, exists := c.pending[f.ID]
		if !exists {
			panic(fmt.Sprintf("rpclib: response for unknown call %d", f.ID))
		}
		delete(c.pending, f.ID)
		c.tracker.Complete(1)
		if f.Kind == KindError {
			c.failed++
		} else {
			c.completed++
		}
		if done != nil {
			done(f)
		}
	}
}
