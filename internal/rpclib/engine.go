package rpclib

import (
	"time"

	"e2ebatch/internal/core"
	"e2ebatch/internal/engine"
	"e2ebatch/internal/qstate"
)

// Port adapts the client runtime to the shared control engine: samples come
// from the runtime-owned create/complete tracker (§3.3) and decisions apply
// to both ends of the simulated connection.
func (c *Client) Port() engine.Port { return clientPort{c} }

type clientPort struct{ c *Client }

// Snapshot captures the runtime's single end-to-end hint queue as the
// sample's unacked queue — Little's law over it is the app-perceived
// latency and throughput.
func (p clientPort) Snapshot(now qstate.Time) core.Sample {
	return core.Sample{
		Local: core.Queues{Unacked: p.c.tracker.Snapshot()},
		At:    now,
	}
}

// Apply installs the batching decision on both connection ends.
func (p clientPort) Apply(d engine.Decision) error {
	local, peer := p.c.conn, p.c.conn.Peer()
	local.SetNoDelay(!d.Batch)
	if peer != nil {
		peer.SetNoDelay(!d.Batch)
	}
	if d.CorkBytes > 0 {
		local.SetCorkBytes(d.CorkBytes)
		if peer != nil {
			peer.SetCorkBytes(d.CorkBytes)
		}
	}
	return nil
}

// SelfContained reports true: the runtime's hints span issue-to-response,
// so samples are trustworthy without peer metadata.
func (p clientPort) SelfContained() bool { return true }

// StartControl attaches the shared engine loop to the client: every
// interval it derives the runtime's own end-to-end estimate from the hint
// tracker and drives the connection's batching mode — §3.3's promise that
// applications on a hint-integrated framework get estimate-driven batching
// for free, now with the same degraded-tick routing every other backend
// runs. corkBytes is the threshold installed while batching. Stop the
// returned endpoint to halt the loop.
func (c *Client) StartControl(ctl engine.Controller, interval time.Duration, corkBytes int) *engine.Endpoint {
	return c.StartControlObserved(ctl, interval, corkBytes, nil)
}

// StartControlObserved is StartControl with a telemetry observer attached
// to the endpoint (nil behaves exactly like StartControl). The observer
// runs on the simulation's event goroutine; it must not block, and — per
// the determinism contract — must not feed anything back into the run.
func (c *Client) StartControlObserved(ctl engine.Controller, interval time.Duration, corkBytes int, o engine.Observer) *engine.Endpoint {
	ep := engine.New(engine.Config{
		Controller:  ctl,
		Initial:     ctl.Mode(),
		CorkOnBytes: corkBytes,
		Observer:    o,
	}, c.Port())
	ep.Start(engine.SimClock{Sim: c.s}, interval)
	return ep
}
