package rpclib

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"e2ebatch/internal/netem"
	"e2ebatch/internal/sim"
	"e2ebatch/internal/tcpsim"
)

func rig(t testing.TB, handler Handler) (*sim.Sim, *Client, *Server) {
	t.Helper()
	s := sim.New(13)
	a := tcpsim.NewStack(s, "client")
	b := tcpsim.NewStack(s, "server")
	link := netem.NewLink(s, "lnk", netem.Config{BitsPerSec: 100_000_000_000, Propagation: 2 * time.Microsecond})
	cfg := tcpsim.DefaultConfig()
	cfg.Nagle = false
	cc, sc := tcpsim.Connect(a, b, link, cfg)
	srv := NewServer(sc, handler)
	cli := NewClient(s, cc)
	return s, cli, srv
}

func echo(_ uint64, payload []byte) ([]byte, error) {
	return payload, nil
}

func TestFrameRoundTrip(t *testing.T) {
	wire := AppendFrame(nil, 42, KindResponse, []byte("hello"))
	var d Decoder
	d.Feed(wire)
	f, ok, err := d.Next()
	if err != nil || !ok {
		t.Fatalf("decode: %v %v", ok, err)
	}
	if f.ID != 42 || f.Kind != KindResponse || string(f.Payload) != "hello" {
		t.Fatalf("frame = %+v", f)
	}
	if _, ok, _ := d.Next(); ok {
		t.Fatal("phantom frame")
	}
}

func TestDecoderIncremental(t *testing.T) {
	wire := AppendFrame(nil, 7, KindRequest, bytes.Repeat([]byte("x"), 1000))
	var d Decoder
	for i := 0; i < len(wire); i += 13 {
		end := i + 13
		if end > len(wire) {
			end = len(wire)
		}
		d.Feed(wire[i:end])
		if end < len(wire) {
			if _, ok, err := d.Next(); ok || err != nil {
				t.Fatalf("premature frame at %d: %v %v", end, ok, err)
			}
		}
	}
	f, ok, err := d.Next()
	if err != nil || !ok || len(f.Payload) != 1000 {
		t.Fatalf("final decode: %+v %v %v", f, ok, err)
	}
}

func TestDecoderRejectsHugeFrame(t *testing.T) {
	var hdr [headerSize]byte
	hdr[0] = 0xFF // length ~4 GiB
	hdr[1] = 0xFF
	hdr[2] = 0xFF
	hdr[3] = 0xFF
	var d Decoder
	d.Feed(hdr[:])
	if _, _, err := d.Next(); err == nil {
		t.Fatal("huge frame accepted")
	}
}

func TestDecoderCompaction(t *testing.T) {
	var d Decoder
	wire := AppendFrame(nil, 1, KindRequest, []byte("p"))
	for i := 0; i < 10000; i++ {
		d.Feed(wire)
		if _, ok, err := d.Next(); !ok || err != nil {
			t.Fatalf("iter %d", i)
		}
	}
	if cap(d.buf) > 4096 {
		t.Fatalf("decoder buffer grew to %d", cap(d.buf))
	}
}

func TestEchoCall(t *testing.T) {
	s, cli, srv := rig(t, echo)
	var got []byte
	cli.Call([]byte("ping!"), func(f Frame) { got = f.Payload })
	s.RunUntil(sim.Time(10 * time.Millisecond))
	if string(got) != "ping!" {
		t.Fatalf("echo = %q", got)
	}
	if cli.Completed() != 1 || cli.Failed() != 0 || srv.Served() != 1 {
		t.Fatalf("counters: %d/%d/%d", cli.Completed(), cli.Failed(), srv.Served())
	}
	if cli.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", cli.Outstanding())
	}
}

func TestErrorCall(t *testing.T) {
	s, cli, _ := rig(t, func(_ uint64, _ []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	var kind byte
	var msg string
	cli.Call([]byte("x"), func(f Frame) { kind, msg = f.Kind, string(f.Payload) })
	s.RunUntil(sim.Time(10 * time.Millisecond))
	if kind != KindError || msg != "boom" {
		t.Fatalf("error frame = %d %q", kind, msg)
	}
	if cli.Failed() != 1 || cli.Completed() != 0 {
		t.Fatalf("counters: completed=%d failed=%d", cli.Completed(), cli.Failed())
	}
}

func TestPipelinedCallsCompleteOutOfNothing(t *testing.T) {
	s, cli, srv := rig(t, echo)
	const n = 200
	done := 0
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("call-%d", i))
		want := string(payload)
		cli.Call(payload, func(f Frame) {
			if string(f.Payload) != want {
				t.Errorf("mismatched response: %q != %q", f.Payload, want)
			}
			done++
		})
	}
	s.RunUntil(sim.Time(time.Second))
	if done != n || srv.Served() != n {
		t.Fatalf("done=%d served=%d", done, srv.Served())
	}
}

// TestRuntimeHintsMeasureEndToEnd: the runtime's built-in tracker must
// yield the true call latency with zero app-side instrumentation — the
// §3.3 framework-integration claim.
func TestRuntimeHintsMeasureEndToEnd(t *testing.T) {
	s, cli, srv := rig(t, echo)
	srv.PerCall = 50 * time.Microsecond // dominate the round trip
	rng := rand.New(rand.NewSource(2))

	var issue func(i int)
	const n = 300
	issue = func(i int) {
		if i >= n {
			return
		}
		cli.Call(make([]byte, 100), nil)
		s.After(time.Duration(rng.Intn(200))*time.Microsecond, func() { issue(i + 1) })
	}
	issue(0)
	s.RunUntil(sim.Time(time.Second))
	if cli.Completed() != n {
		t.Fatalf("completed = %d", cli.Completed())
	}
	a := cli.Estimate()
	if !a.Valid || a.Departures != n {
		t.Fatalf("estimate: %+v", a)
	}
	// Every call costs at least the 50µs handler; with queueing the mean
	// must sit above that but stay bounded.
	if a.Latency < 50*time.Microsecond || a.Latency > 5*time.Millisecond {
		t.Fatalf("estimated call latency %v implausible", a.Latency)
	}
}

// TestHintsSeeClientSideQueueing: calls stuck behind a slow handler are
// outstanding end-to-end; the runtime tracker must count that waiting,
// unlike any stack-level view.
func TestHintsSeeClientSideQueueing(t *testing.T) {
	s, cli, srv := rig(t, echo)
	srv.PerCall = time.Millisecond
	for i := 0; i < 10; i++ {
		cli.Call([]byte("x"), nil)
	}
	s.RunUntil(sim.Time(100 * time.Millisecond))
	a := cli.Estimate()
	if !a.Valid {
		t.Fatal("invalid estimate")
	}
	// FIFO service at 1ms each: mean residence ≈ 5.5ms.
	if a.Latency < 3*time.Millisecond || a.Latency > 8*time.Millisecond {
		t.Fatalf("estimate %v, want ~5.5ms of head-of-line waiting", a.Latency)
	}
}

func TestServerStopsOnCorruptStream(t *testing.T) {
	s, cli, srv := rig(t, echo)
	// Bypass the client runtime and write garbage with a huge length.
	bad := make([]byte, headerSize)
	for i := 0; i < 4; i++ {
		bad[i] = 0xFF
	}
	cli.conn.Send(bad)
	s.RunUntil(sim.Time(10 * time.Millisecond))
	if srv.Served() != 0 {
		t.Fatal("server served garbage")
	}
	// Server detached; further (valid) calls go unanswered.
	cli.Call([]byte("x"), nil)
	s.RunUntil(sim.Time(20 * time.Millisecond))
	if cli.Completed() != 0 {
		t.Fatal("server answered after corrupt stream")
	}
}

func TestNilHandlerPanics(t *testing.T) {
	s := sim.New(1)
	a := tcpsim.NewStack(s, "a")
	b := tcpsim.NewStack(s, "b")
	link := netem.NewLink(s, "l", netem.Config{})
	_, sc := tcpsim.Connect(a, b, link, tcpsim.DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler accepted")
		}
	}()
	NewServer(sc, nil)
}
