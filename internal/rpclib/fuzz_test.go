package rpclib

import "testing"

// FuzzDecoder: arbitrary bytes must never panic the frame decoder, and any
// decoded frame must re-encode to the bytes just consumed.
func FuzzDecoder(f *testing.F) {
	f.Add(AppendFrame(nil, 1, KindRequest, []byte("payload")))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Decoder
		d.Feed(data)
		for i := 0; i < 100; i++ {
			fr, ok, err := d.Next()
			if err != nil || !ok {
				return
			}
			wire := AppendFrame(nil, fr.ID, fr.Kind, fr.Payload)
			var d2 Decoder
			d2.Feed(wire)
			fr2, ok2, err2 := d2.Next()
			if err2 != nil || !ok2 || fr2.ID != fr.ID || fr2.Kind != fr.Kind || len(fr2.Payload) != len(fr.Payload) {
				t.Fatalf("frame round trip failed: %+v vs %+v", fr, fr2)
			}
		}
	})
}
