package qstate

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestDelayHistQuantileEmptyAndEdges(t *testing.T) {
	var h DelayHist
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty Quantile = %v, want 0", q)
	}
	h.Record(3 * time.Microsecond)
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != DelayBucketMid(DelayBucket(3*time.Microsecond)) {
			t.Fatalf("single-sample Quantile(%v) = %v", q, got)
		}
	}
}

func TestDelayHistQuantileWithinBucketResolution(t *testing.T) {
	// Against a sorted sample oracle: the reported quantile's bucket must
	// hold the oracle's order statistic, i.e. quantiles are exact up to the
	// histogram's documented bucket resolution.
	rng := rand.New(rand.NewSource(7))
	var h DelayHist
	samples := make([]time.Duration, 5000)
	for i := range samples {
		d := time.Duration(rng.Int63n(int64(20 * time.Millisecond)))
		samples[i] = d
		h.Record(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		// The histogram's rank convention: smallest k with CDF(k) ≥ q.
		rank := int(math.Ceil(q*float64(len(samples)))) - 1
		if rank < 0 {
			rank = 0
		}
		exact := samples[rank]
		if got, want := h.Quantile(q), DelayBucketMid(DelayBucket(exact)); got != want {
			t.Errorf("Quantile(%v) = %v, want midpoint %v of the bucket holding exact %v", q, got, want, exact)
		}
	}
}

func TestDelayHistQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var h DelayHist
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(rng.Int63n(int64(time.Second))))
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: Quantile(%v)=%v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestDelayHistMerge(t *testing.T) {
	var a, b, both DelayHist
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		d := time.Duration(rng.Int63n(int64(5 * time.Millisecond)))
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		both.Record(d)
	}
	merged := a
	merged.Merge(&b)
	if merged != both {
		t.Fatal("Merge(a,b) differs from recording the union directly")
	}
	if merged.Count() != a.Count()+b.Count() {
		t.Fatalf("merged count %d != %d + %d", merged.Count(), a.Count(), b.Count())
	}
	// Merge is commutative.
	merged2 := b
	merged2.Merge(&a)
	if merged2 != merged {
		t.Fatal("Merge is not commutative")
	}
}
