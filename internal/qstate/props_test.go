package qstate

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// randomSchedule drives n randomized Track steps (µs-aligned so wire
// rounding is exact) starting at startNS, and returns the state.
func randomSchedule(rng *rand.Rand, startNS Time, n int) *State {
	var s State
	s.Init(startNS)
	now := startNS
	for i := 0; i < n; i++ {
		now += Time(1000 * (1 + rng.Int63n(200)))
		if s.Size > 0 && rng.Intn(2) == 0 {
			s.Track(now, -(1 + rng.Int63n(s.Size)))
		} else {
			s.Track(now, 1+rng.Int63n(4))
		}
	}
	return &s
}

// TestPropertyStateInvariants: across randomized Track sequences, time,
// total, and integral are all monotonically non-decreasing, and snapshots
// subtracted over any sub-interval report exactly the departures that
// happened in it.
func TestPropertyStateInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		var s State
		s.Init(0)
		now := Time(0)
		prev := s.Peek()
		var departed int64
		for i := 0; i < 300; i++ {
			now += Time(1 + rng.Int63n(5000))
			var d int64
			if s.Size > 0 && rng.Intn(2) == 0 {
				d = -(1 + rng.Int63n(s.Size))
				departed += -d
			} else {
				d = rng.Int63n(3) // includes 0-item integral advances
			}
			s.Track(now, d)
			cur := s.Peek()
			if cur.Time < prev.Time || cur.Total < prev.Total || cur.Integral < prev.Integral {
				t.Fatalf("trial %d step %d: non-monotonic state %+v after %+v", trial, i, cur, prev)
			}
			prev = cur
		}
		if prev.Total != departed {
			t.Fatalf("trial %d: total %d, want %d", trial, prev.Total, departed)
		}
	}
}

// TestPropertyWireMatchesExact: for randomized schedules, averages computed
// from the 32-bit wire form agree with the exact 64-bit form — including
// schedules that start just below the 2^32 µs time boundary so the wire
// counters wrap mid-interval.
func TestPropertyWireMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	starts := []Time{
		0,
		Time((int64(1)<<32 - 50_000) * 1000), // ~50 ms below the TimeUS wrap
	}
	for _, start := range starts {
		for trial := 0; trial < 50; trial++ {
			s := randomSchedule(rng, start, 100)
			mid := s.Peek()
			// Continue past the snapshot so [mid, end] is a second interval.
			now := mid.Time
			for i := 0; i < 100; i++ {
				now += Time(1000 * (1 + rng.Int63n(1000)))
				if s.Size > 0 && rng.Intn(2) == 0 {
					s.Track(now, -1)
				} else {
					s.Track(now, 1)
				}
			}
			end := s.Snapshot(now)
			exact := GetAvgs(mid, end)
			wire := WireAvgs(ToWire(mid), ToWire(end))
			if exact.Valid != wire.Valid {
				t.Fatalf("start %v trial %d: validity diverged (exact %v, wire %v)", start, trial, exact.Valid, wire.Valid)
			}
			if !exact.Valid {
				continue
			}
			if wire.Departures != exact.Departures {
				t.Fatalf("start %v trial %d: departures %d vs %d", start, trial, wire.Departures, exact.Departures)
			}
			if relDiff(float64(wire.Latency), float64(exact.Latency)) > 0.01 {
				t.Fatalf("start %v trial %d: latency %v vs %v", start, trial, wire.Latency, exact.Latency)
			}
			if relDiff(wire.Throughput, exact.Throughput) > 0.01 {
				t.Fatalf("start %v trial %d: throughput %v vs %v", start, trial, wire.Throughput, exact.Throughput)
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestWireAvgsAllCountersWrap: every one of the three counters wraps in the
// same interval and the modular deltas still reconstruct the exact result.
func TestWireAvgsAllCountersWrap(t *testing.T) {
	prev := WireQueue{
		TimeUS:     math.MaxUint32 - 999,
		Total:      math.MaxUint32 - 9,
		IntegralUS: math.MaxUint32 - 19_999,
	}
	now := WireQueue{TimeUS: 1000, Total: 10, IntegralUS: 20_000}
	a := WireAvgs(prev, now)
	if !a.Valid {
		t.Fatal("triple-wrap interval reported invalid")
	}
	// dt = 2000 µs, dTotal = 20, dIntegral = 40000 item·µs.
	if a.Elapsed != 2000*time.Microsecond {
		t.Fatalf("elapsed = %v, want 2ms", a.Elapsed)
	}
	if a.Departures != 20 {
		t.Fatalf("departures = %d, want 20", a.Departures)
	}
	if a.Latency != 2*time.Millisecond {
		t.Fatalf("latency = %v, want 2ms", a.Latency)
	}
	if math.Abs(a.Q-20) > 1e-9 {
		t.Fatalf("Q = %v, want 20", a.Q)
	}
}

// TestWireAvgsZeroIntervalSnapshots: a duplicated wire snapshot (identical
// timestamps) must be rejected whatever the counter values say, exactly as
// GetAvgs rejects dt == 0.
func TestWireAvgsZeroIntervalSnapshots(t *testing.T) {
	cases := []WireQueue{
		{TimeUS: 0, Total: 0, IntegralUS: 0},
		{TimeUS: 77, Total: 5, IntegralUS: 1234},
		{TimeUS: math.MaxUint32, Total: math.MaxUint32, IntegralUS: math.MaxUint32},
	}
	for _, q := range cases {
		if a := WireAvgs(q, q); a.Valid || a.Q != 0 || a.Throughput != 0 || a.Latency != 0 {
			t.Fatalf("zero-interval %+v produced %+v", q, a)
		}
	}
	// The exact-form counterpart, plus a genuinely time-frozen pair whose
	// other counters differ (reordered duplicate): both invalid.
	s := Snapshot{Time: 500, Total: 3, Integral: 99}
	if a := GetAvgs(s, s); a.Valid {
		t.Fatal("exact zero-interval reported valid")
	}
	if a := WireAvgs(WireQueue{TimeUS: 9, Total: 1, IntegralUS: 1}, WireQueue{TimeUS: 9, Total: 2, IntegralUS: 5}); a.Valid {
		t.Fatal("time-frozen pair with moving counters reported valid")
	}
}

// checkAvgsSane rejects the garbage classes a fault can smuggle into an
// Avgs: NaN/Inf ratios, negative latencies or rates, and invalid results
// that nonetheless carry a latency.
func checkAvgsSane(t *testing.T, ctx string, a Avgs) {
	t.Helper()
	if math.IsNaN(a.Q) || math.IsInf(a.Q, 0) || math.IsNaN(a.Throughput) || math.IsInf(a.Throughput, 0) {
		t.Fatalf("%s: non-finite averages %+v", ctx, a)
	}
	if a.Q < 0 || a.Throughput < 0 || a.Latency < 0 || a.Elapsed < 0 || a.Departures < 0 {
		t.Fatalf("%s: negative averages %+v", ctx, a)
	}
	if !a.Valid && a.Latency != 0 {
		t.Fatalf("%s: invalid result carries latency %v", ctx, a.Latency)
	}
}

// TestPropertyAvgsNeverGarbage: over arbitrary ordered snapshot pairs drawn
// from randomized schedules — zero-departure intervals, identical pairs,
// and wire pairs whose 32-bit counters wrap mid-interval — neither GetAvgs
// nor WireAvgs ever yields NaN, a negative latency, or a negative rate.
// This is the estimator's last line of defense under fault injection: a
// dropped, delayed, or replayed exchange may make an interval *invalid*,
// but never numerically toxic.
func TestPropertyAvgsNeverGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	starts := []Time{
		0,
		Time((int64(1)<<32 - 20_000) * 1000), // wire counters wrap mid-run
	}
	for _, start := range starts {
		for trial := 0; trial < 40; trial++ {
			var s State
			s.Init(start)
			now := start
			snaps := []Snapshot{s.Peek()}
			for i := 0; i < 150; i++ {
				now += Time(1000 * (1 + rng.Int63n(500)))
				switch {
				case s.Size > 0 && rng.Intn(3) == 0:
					s.Track(now, -(1 + rng.Int63n(s.Size)))
				case rng.Intn(4) == 0:
					s.Track(now, 0) // integral advance only: zero-departure interval
				default:
					s.Track(now, 1+rng.Int63n(4))
				}
				snaps = append(snaps, s.Peek())
			}
			for k := 0; k < 300; k++ {
				i := rng.Intn(len(snaps))
				j := i + rng.Intn(len(snaps)-i)
				ctx := fmt.Sprintf("start %v trial %d pair (%d,%d)", start, trial, i, j)
				checkAvgsSane(t, "exact "+ctx, GetAvgs(snaps[i], snaps[j]))
				checkAvgsSane(t, "wire "+ctx, WireAvgs(ToWire(snaps[i]), ToWire(snaps[j])))
				// Reversed order models a reordered exchange: the wire
				// form must reject it, never mint a negative interval.
				checkAvgsSane(t, "wire-rev "+ctx, WireAvgs(ToWire(snaps[j]), ToWire(snaps[i])))
			}
		}
	}
	// Fully arbitrary wire pairs — the counters need not come from any
	// consistent schedule at all (corrupted or mismatched exchange).
	for k := 0; k < 5000; k++ {
		prev := WireQueue{TimeUS: uint32(rng.Uint32()), Total: uint32(rng.Uint32()), IntegralUS: uint32(rng.Uint32())}
		now := WireQueue{TimeUS: uint32(rng.Uint32()), Total: uint32(rng.Uint32()), IntegralUS: uint32(rng.Uint32())}
		checkAvgsSane(t, fmt.Sprintf("arbitrary pair %d", k), WireAvgs(prev, now))
	}
}
