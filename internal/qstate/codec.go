package qstate

import (
	"encoding/binary"
	"errors"
	"time"
)

// Wire format (§3.2): "Each party thus shares 36 bytes with its peer per
// exchange (three 4-byte counters per queue)" for its three queues. The
// counters are 32-bit and wrap; deltas between two successive exchanges are
// computed with modular arithmetic, so estimates stay correct across a
// single wrap of each counter — exactly the property that lets the exchange
// frequency be reduced "as needed" (§5) without loss of accuracy.
//
// Units on the wire: time in microseconds, total in items, integral in
// item·microseconds. At microsecond granularity the time counter wraps every
// ~71.6 minutes; any sane exchange interval is far below that.

// WireQueue is one queue's 3-tuple as carried on the wire.
type WireQueue struct {
	TimeUS     uint32 // snapshot time, µs, wrapping
	Total      uint32 // cumulative departures, items, wrapping
	IntegralUS uint32 // ∫ size dt, item·µs, wrapping
}

// WireState is one endpoint's full exchange payload: its three queues in the
// fixed order unacked, unread, ackdelay.
type WireState struct {
	Unacked  WireQueue
	Unread   WireQueue
	AckDelay WireQueue
}

// WireSize is the encoded size of a WireState in bytes.
const WireSize = 36

// ErrShortBuffer is returned by DecodeWire when fewer than WireSize bytes
// are available.
var ErrShortBuffer = errors.New("qstate: buffer shorter than 36-byte wire state")

// ErrSizeMismatch is returned by DecodeWireExact when the buffer is not
// exactly WireSize bytes.
var ErrSizeMismatch = errors.New("qstate: wire state payload must be exactly 36 bytes")

// ToWire converts a snapshot to wire units (ns → µs, wrapping to 32 bits).
func ToWire(s Snapshot) WireQueue {
	return WireQueue{
		TimeUS:     uint32(uint64(s.Time) / 1000),
		Total:      uint32(uint64(s.Total)),
		IntegralUS: uint32(uint64(s.Integral) / 1000),
	}
}

// EncodeWire serializes w into buf, which must hold at least WireSize bytes,
// and returns the number of bytes written.
func EncodeWire(buf []byte, w WireState) (int, error) {
	if len(buf) < WireSize {
		return 0, ErrShortBuffer
	}
	off := 0
	for _, q := range [3]WireQueue{w.Unacked, w.Unread, w.AckDelay} {
		binary.BigEndian.PutUint32(buf[off:], q.TimeUS)
		binary.BigEndian.PutUint32(buf[off+4:], q.Total)
		binary.BigEndian.PutUint32(buf[off+8:], q.IntegralUS)
		off += 12
	}
	return WireSize, nil
}

// AppendWire appends the encoded form of w to buf.
func AppendWire(buf []byte, w WireState) []byte {
	var tmp [WireSize]byte
	_, _ = EncodeWire(tmp[:], w)
	return append(buf, tmp[:]...)
}

// DecodeWire parses a WireState from buf.
func DecodeWire(buf []byte) (WireState, error) {
	if len(buf) < WireSize {
		return WireState{}, ErrShortBuffer
	}
	var qs [3]WireQueue
	off := 0
	for i := range qs {
		qs[i] = WireQueue{
			TimeUS:     binary.BigEndian.Uint32(buf[off:]),
			Total:      binary.BigEndian.Uint32(buf[off+4:]),
			IntegralUS: binary.BigEndian.Uint32(buf[off+8:]),
		}
		off += 12
	}
	return WireState{Unacked: qs[0], Unread: qs[1], AckDelay: qs[2]}, nil
}

// DecodeWireExact parses a WireState from a buffer that must be exactly one
// encoded state — the validation a framed transport (where the payload length
// is known) should apply, rejecting both truncated and oversized payloads
// instead of silently ignoring trailing bytes.
func DecodeWireExact(buf []byte) (WireState, error) {
	if len(buf) < WireSize {
		return WireState{}, ErrShortBuffer
	}
	if len(buf) != WireSize {
		return WireState{}, ErrSizeMismatch
	}
	return DecodeWire(buf)
}

// WireAvgs is GetAvgs over two successive wire-format snapshots of the same
// queue, using wrap-aware 32-bit deltas. It is the receiver-side companion
// of ToWire: accuracy is preserved as long as each counter wrapped at most
// once between the exchanges.
func WireAvgs(prev, now WireQueue) Avgs {
	dtUS := now.TimeUS - prev.TimeUS // modular
	if dtUS == 0 || dtUS > 1<<31 {
		// Zero elapsed time, or "negative" (reordered/duplicate exchange).
		return Avgs{}
	}
	dTotal := now.Total - prev.Total
	dIntegral := now.IntegralUS - prev.IntegralUS
	if dTotal > 1<<31 || dIntegral > 1<<31 {
		// A backwards counter is possible only on reordering; discard.
		return Avgs{}
	}
	dt := time.Duration(dtUS) * time.Microsecond
	a := Avgs{
		Q:          float64(dIntegral) / float64(dtUS),
		Elapsed:    dt,
		Departures: int64(dTotal),
	}
	a.Throughput = float64(dTotal) / dt.Seconds()
	if dTotal == 0 {
		return a
	}
	a.Latency = time.Duration(float64(dIntegral) / float64(dTotal) * 1000) // µs → ns
	a.Valid = true
	return a
}
