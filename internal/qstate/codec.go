package qstate

import (
	"encoding/binary"
	"errors"
	"time"
)

// Wire format (§3.2): "Each party thus shares 36 bytes with its peer per
// exchange (three 4-byte counters per queue)" for its three queues. The
// counters are 32-bit and wrap; deltas between two successive exchanges are
// computed with modular arithmetic, so estimates stay correct across a
// single wrap of each counter — exactly the property that lets the exchange
// frequency be reduced "as needed" (§5) without loss of accuracy.
//
// Units on the wire: time in microseconds, total in items, integral in
// item·microseconds. At microsecond granularity the time counter wraps every
// ~71.6 minutes; any sane exchange interval is far below that.

// WireQueue is one queue's 3-tuple as carried on the wire.
type WireQueue struct {
	TimeUS     uint32 // snapshot time, µs, wrapping
	Total      uint32 // cumulative departures, items, wrapping
	IntegralUS uint32 // ∫ size dt, item·µs, wrapping
}

// WireState is one endpoint's full exchange payload: its three queues in the
// fixed order unacked, unread, ackdelay.
type WireState struct {
	Unacked  WireQueue
	Unread   WireQueue
	AckDelay WireQueue
}

// WireSize is the encoded size of a WireState in bytes.
const WireSize = 36

// ErrShortBuffer is returned by DecodeWire when fewer than WireSize bytes
// are available.
var ErrShortBuffer = errors.New("qstate: buffer shorter than 36-byte wire state")

// ErrSizeMismatch is returned by DecodeWireExact when the buffer is not
// exactly WireSize bytes.
var ErrSizeMismatch = errors.New("qstate: wire state payload must be exactly 36 bytes")

// ToWire converts a snapshot to wire units (ns → µs, wrapping to 32 bits).
func ToWire(s Snapshot) WireQueue {
	return WireQueue{
		TimeUS:     uint32(uint64(s.Time) / 1000),
		Total:      uint32(uint64(s.Total)),
		IntegralUS: uint32(uint64(s.Integral) / 1000),
	}
}

// EncodeWire serializes w into buf, which must hold at least WireSize bytes,
// and returns the number of bytes written.
func EncodeWire(buf []byte, w WireState) (int, error) {
	if len(buf) < WireSize {
		return 0, ErrShortBuffer
	}
	off := 0
	for _, q := range [3]WireQueue{w.Unacked, w.Unread, w.AckDelay} {
		binary.BigEndian.PutUint32(buf[off:], q.TimeUS)
		binary.BigEndian.PutUint32(buf[off+4:], q.Total)
		binary.BigEndian.PutUint32(buf[off+8:], q.IntegralUS)
		off += 12
	}
	return WireSize, nil
}

// AppendWire appends the encoded form of w to buf.
func AppendWire(buf []byte, w WireState) []byte {
	var tmp [WireSize]byte
	_, _ = EncodeWire(tmp[:], w)
	return append(buf, tmp[:]...)
}

// DecodeWire parses a WireState from buf.
func DecodeWire(buf []byte) (WireState, error) {
	if len(buf) < WireSize {
		return WireState{}, ErrShortBuffer
	}
	var qs [3]WireQueue
	off := 0
	for i := range qs {
		qs[i] = WireQueue{
			TimeUS:     binary.BigEndian.Uint32(buf[off:]),
			Total:      binary.BigEndian.Uint32(buf[off+4:]),
			IntegralUS: binary.BigEndian.Uint32(buf[off+8:]),
		}
		off += 12
	}
	return WireState{Unacked: qs[0], Unread: qs[1], AckDelay: qs[2]}, nil
}

// DecodeWireExact parses a WireState from a buffer that must be exactly one
// encoded state — the validation a framed transport (where the payload length
// is known) should apply, rejecting both truncated and oversized payloads
// instead of silently ignoring trailing bytes.
func DecodeWireExact(buf []byte) (WireState, error) {
	if len(buf) < WireSize {
		return WireState{}, ErrShortBuffer
	}
	if len(buf) != WireSize {
		return WireState{}, ErrSizeMismatch
	}
	return DecodeWire(buf)
}

// Versioned frame (tail-estimation extension). The original exchange is the
// bare 36-byte WireState with no header; extending it without breaking old
// peers therefore keys on *length*, not a magic byte (a v1 frame's first byte
// is the high byte of TimeUS and can take any value):
//
//	v1: exactly WireSize (36) bytes — the bare WireState. No tails.
//	v2: FrameV2Size bytes — [1-byte version = 2][36-byte WireState]
//	    [3 × DelayBuckets × uint32 BE cumulative bucket counts, in the
//	    order unacked, unread, ackdelay].
//
// A v2-capable receiver accepts both; a v1-only receiver given a v2 frame
// fails its exact-length check rather than misparsing. Within the v2 length
// the version byte is still validated so a future v3 of the same size cannot
// be confused for v2.

// FrameVersion2 is the version byte of the extended frame.
const FrameVersion2 = 2

// FrameV2Size is the encoded size of a v2 frame: version byte + WireState +
// three bucket vectors.
const FrameV2Size = 1 + WireSize + 3*DelayBuckets*4

// ErrFrameVersion is returned when a buffer has a v2 frame's length but an
// unknown version byte.
var ErrFrameVersion = errors.New("qstate: unknown wire frame version")

// ErrFrameSize is returned by DecodeFrameExact when the buffer length is
// neither a v1 nor a v2 frame.
var ErrFrameSize = errors.New("qstate: wire frame must be exactly 36 (v1) or versioned v2 size")

// WireFrame is a decoded exchange frame: the mean-counters state every
// version carries, plus the per-queue delay histograms when the peer spoke
// v2. HasTails false means the peer is a v1 (36-byte) endpoint — tail
// composition must abstain, mean estimation proceeds unchanged.
type WireFrame struct {
	State    WireState
	Tails    WireTails
	HasTails bool
}

// FrameSize returns the encoded size of f: WireSize without tails,
// FrameV2Size with.
func (f WireFrame) FrameSize() int {
	if f.HasTails {
		return FrameV2Size
	}
	return WireSize
}

// EncodeFrame serializes f into buf and returns the number of bytes written:
// a bare v1 WireState when f.HasTails is false, a v2 frame otherwise.
func EncodeFrame(buf []byte, f WireFrame) (int, error) {
	if !f.HasTails {
		return EncodeWire(buf, f.State)
	}
	if len(buf) < FrameV2Size {
		return 0, ErrShortBuffer
	}
	buf[0] = FrameVersion2
	if _, err := EncodeWire(buf[1:], f.State); err != nil {
		return 0, err
	}
	off := 1 + WireSize
	for _, h := range [3]*DelayHist{&f.Tails.Unacked, &f.Tails.Unread, &f.Tails.AckDelay} {
		for _, c := range h.Counts {
			binary.BigEndian.PutUint32(buf[off:], c)
			off += 4
		}
	}
	return FrameV2Size, nil
}

// AppendFrame appends the encoded form of f to buf.
func AppendFrame(buf []byte, f WireFrame) []byte {
	var tmp [FrameV2Size]byte
	n, _ := EncodeFrame(tmp[:], f)
	return append(buf, tmp[:n]...)
}

// DecodeFrame parses a frame from buf, accepting both versions: a buffer
// holding at least a v2 frame with a valid version byte decodes as v2;
// anything else with at least 36 bytes decodes its prefix as a bare v1
// WireState (old peers keep working). Framed transports that know the exact
// payload length must use DecodeFrameExact instead (enforced by the wiresize
// analyzer).
func DecodeFrame(buf []byte) (WireFrame, error) {
	if len(buf) >= FrameV2Size && buf[0] == FrameVersion2 {
		return decodeFrameV2(buf)
	}
	s, err := DecodeWire(buf)
	if err != nil {
		return WireFrame{}, err
	}
	return WireFrame{State: s}, nil
}

// DecodeFrameExact parses a frame from a buffer that must be exactly one
// encoded frame: exactly 36 bytes decodes as v1, exactly FrameV2Size bytes
// with the v2 version byte decodes as v2; any other length is ErrFrameSize
// and a v2-length buffer with an unknown version byte is ErrFrameVersion.
func DecodeFrameExact(buf []byte) (WireFrame, error) {
	switch len(buf) {
	case WireSize:
		s, err := DecodeWireExact(buf)
		if err != nil {
			return WireFrame{}, err
		}
		return WireFrame{State: s}, nil
	case FrameV2Size:
		if buf[0] != FrameVersion2 {
			return WireFrame{}, ErrFrameVersion
		}
		return decodeFrameV2(buf)
	default:
		return WireFrame{}, ErrFrameSize
	}
}

func decodeFrameV2(buf []byte) (WireFrame, error) {
	if buf[0] != FrameVersion2 {
		return WireFrame{}, ErrFrameVersion
	}
	s, err := DecodeWire(buf[1:])
	if err != nil {
		return WireFrame{}, err
	}
	f := WireFrame{State: s, HasTails: true}
	off := 1 + WireSize
	for _, h := range [3]*DelayHist{&f.Tails.Unacked, &f.Tails.Unread, &f.Tails.AckDelay} {
		for i := range h.Counts {
			h.Counts[i] = binary.BigEndian.Uint32(buf[off:])
			off += 4
		}
	}
	return f, nil
}

// WireAvgs is GetAvgs over two successive wire-format snapshots of the same
// queue, using wrap-aware 32-bit deltas. It is the receiver-side companion
// of ToWire: accuracy is preserved as long as each counter wrapped at most
// once between the exchanges.
func WireAvgs(prev, now WireQueue) Avgs {
	dtUS := now.TimeUS - prev.TimeUS // modular
	if dtUS == 0 || dtUS > 1<<31 {
		// Zero elapsed time, or "negative" (reordered/duplicate exchange).
		return Avgs{}
	}
	dTotal := now.Total - prev.Total
	dIntegral := now.IntegralUS - prev.IntegralUS
	if dTotal > 1<<31 || dIntegral > 1<<31 {
		// A backwards counter is possible only on reordering; discard.
		return Avgs{}
	}
	dt := time.Duration(dtUS) * time.Microsecond
	a := Avgs{
		Q:          float64(dIntegral) / float64(dtUS),
		Elapsed:    dt,
		Departures: int64(dTotal),
	}
	a.Throughput = float64(dTotal) / dt.Seconds()
	if dTotal == 0 {
		return a
	}
	a.Latency = time.Duration(float64(dIntegral) / float64(dTotal) * 1000) // µs → ns
	a.Valid = true
	return a
}
