//go:build !race

// Allocation gates are the runtime layer of the hot-path allocation
// discipline (DESIGN.md §13): the hotpath analyzer rejects allocation-forcing
// syntax, `e2elint -escapes` asks the compiler's escape analysis, and these
// tests pin the *observed* allocation count of every //e2e:hotpath function
// in this package at zero. Excluded under -race because the race runtime
// allocates shadow state that AllocsPerRun would charge to the tracked code.

package qstate

import (
	"testing"
	"time"
)

func allocGate(t *testing.T, name string, f func()) {
	t.Helper()
	if n := testing.AllocsPerRun(200, f); n != 0 {
		t.Errorf("%s allocates %v per op, want 0 (//e2e:hotpath)", name, n)
	}
}

func TestAllocGateTracker(t *testing.T) {
	tr := NewTracker(0)
	now := Time(0)
	allocGate(t, "Tracker.Track", func() {
		now++
		tr.Track(now, 1)
		now++
		tr.Track(now, -1)
	})
	allocGate(t, "Tracker.Snapshot", func() {
		now++
		_ = tr.Snapshot(now)
	})
	allocGate(t, "Tracker.Peek", func() { _ = tr.Peek() })
	allocGate(t, "Tracker.Size", func() { _ = tr.Size() })
}

func TestAllocGateDelayHist(t *testing.T) {
	var h DelayHist
	d := time.Duration(0)
	allocGate(t, "DelayHist.Record", func() {
		d += 977 * time.Nanosecond
		h.Record(d)
	})
	allocGate(t, "DelayHist.RecordN", func() { h.RecordN(d, 3) })
	allocGate(t, "DelayBucket", func() { _ = DelayBucket(d) })
	var prev DelayHist
	allocGate(t, "DelayDeltas", func() { _, _, _ = DelayDeltas(&prev, &h) })
}

func TestAllocGateDelayTracker(t *testing.T) {
	var dt DelayTracker
	now := Time(0)
	allocGate(t, "DelayTracker.Track", func() {
		now += 1000
		dt.Track(now, 2)
		now += 1000
		dt.Track(now, -2)
	})
}
