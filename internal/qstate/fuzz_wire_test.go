// Fuzz targets need the native fuzzing engine of Go 1.18+; the build guard
// keeps the package testable with older toolchains (and lets the target be
// excluded the same way the corpus-driven CI jobs do).
//go:build go1.18

package qstate

import (
	"errors"
	"testing"
)

// FuzzWireStateRoundTrip is the struct→bytes→struct direction: every
// WireState must encode to exactly 36 bytes and decode back to itself —
// DecodeWire(EncodeWire(s)) == s for the full 9-counter domain.
func FuzzWireStateRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0), uint32(0), uint32(0), uint32(0), uint32(0), uint32(0), uint32(0))
	f.Add(uint32(1), uint32(2), uint32(3), uint32(4), uint32(5), uint32(6), uint32(7), uint32(8), uint32(9))
	f.Add(^uint32(0), ^uint32(0), ^uint32(0), uint32(1<<31), uint32(1<<31-1), ^uint32(0), uint32(0), ^uint32(0), uint32(42))
	f.Fuzz(func(t *testing.T, a, b, c, d, e, g, h, i, j uint32) {
		w := WireState{
			Unacked:  WireQueue{TimeUS: a, Total: b, IntegralUS: c},
			Unread:   WireQueue{TimeUS: d, Total: e, IntegralUS: g},
			AckDelay: WireQueue{TimeUS: h, Total: i, IntegralUS: j},
		}
		var buf [WireSize]byte
		n, err := EncodeWire(buf[:], w)
		if err != nil || n != WireSize {
			t.Fatalf("EncodeWire = %d, %v", n, err)
		}
		got, err := DecodeWire(buf[:])
		if err != nil {
			t.Fatalf("DecodeWire: %v", err)
		}
		if got != w {
			t.Fatalf("round trip: got %+v, want %+v", got, w)
		}
		if app := AppendWire(nil, w); len(app) != WireSize || string(app) != string(buf[:]) {
			t.Fatalf("AppendWire diverged from EncodeWire")
		}
	})
}

// FuzzWireBufferSizes: truncated buffers must be rejected by every decode
// path, oversized buffers by the exact-length one, and a well-sized prefix
// must always decode without panicking.
func FuzzWireBufferSizes(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, WireSize-1))
	f.Add(make([]byte, WireSize))
	f.Add(make([]byte, WireSize+7))
	f.Fuzz(func(t *testing.T, data []byte) {
		switch {
		case len(data) < WireSize:
			if _, err := DecodeWire(data); !errors.Is(err, ErrShortBuffer) {
				t.Fatalf("DecodeWire accepted %d bytes: %v", len(data), err)
			}
			if _, err := DecodeWireExact(data); !errors.Is(err, ErrShortBuffer) {
				t.Fatalf("DecodeWireExact accepted %d bytes: %v", len(data), err)
			}
			if n, err := EncodeWire(data, WireState{}); !errors.Is(err, ErrShortBuffer) || n != 0 {
				t.Fatalf("EncodeWire wrote %d into %d bytes: %v", n, len(data), err)
			}
		case len(data) > WireSize:
			if _, err := DecodeWireExact(data); !errors.Is(err, ErrSizeMismatch) {
				t.Fatalf("DecodeWireExact accepted %d bytes: %v", len(data), err)
			}
			// The prefix decoder ignores the trailing bytes by contract.
			ws, err := DecodeWire(data)
			if err != nil {
				t.Fatalf("DecodeWire of %d bytes: %v", len(data), err)
			}
			if out := AppendWire(nil, ws); string(out) != string(data[:WireSize]) {
				t.Fatal("prefix decode lost information")
			}
		default:
			a, errA := DecodeWire(data)
			b, errB := DecodeWireExact(data)
			if errA != nil || errB != nil || a != b {
				t.Fatalf("exact-size decode disagreement: %+v/%v vs %+v/%v", a, errA, b, errB)
			}
		}
	})
}
