package qstate

import (
	"math"
	"math/bits"
	"time"
)

// Per-queue delay histograms (tail-estimation extension).
//
// GetAvgs yields the *mean* queuing delay over an interval; composing tails
// (p99, p999) additionally needs each queue's delay *distribution*. DelayHist
// is the fixed-bucket, zero-allocation histogram recorded next to the State
// counters: like Total and Integral it is cumulative and wrapping, so two
// successive snapshots subtract (bucket-wise, modulo 2^32) into the interval
// distribution, and reducing the exchange frequency loses resolution but not
// correctness — the same property the 36-byte counters have.
//
// Bucket layout: bucket 0 is the underflow bucket [0, 1µs); buckets 1..64 are
// 16 octaves × 4 sub-buckets spanning [1µs, 65.536ms) with boundaries at
// 2^o·(1+j/4) µs; bucket 65 is the overflow bucket [65.536ms, ∞). The
// sub-octave split bounds the quantization: a value reported at its bucket
// midpoint is within 12.5% of the true value (underflow and overflow buckets
// excepted), which is what the composition rule in internal/core inherits as
// its per-stage resolution floor.

// DelayBuckets is the number of histogram buckets: underflow + 16 octaves ×
// 4 sub-buckets + overflow.
const DelayBuckets = 66

// delayOctaves is the number of power-of-two octaves between the underflow
// and overflow buckets.
const delayOctaves = 16

// DelayHist is a cumulative, wrapping per-queue delay histogram. The zero
// value is empty and ready to use. Counts wrap at 2^32 like the wire
// counters; use DelayDeltas for wrap-aware interval differences.
type DelayHist struct {
	Counts [DelayBuckets]uint32
}

// DelayBucket returns the bucket index for one observed delay. Negative
// delays (clock clamping upstream) land in the underflow bucket.
//
//e2e:hotpath
func DelayBucket(d time.Duration) int {
	if d < 1000 {
		return 0
	}
	o := bits.Len64(uint64(d)/1000) - 1
	if o >= delayOctaves {
		return DelayBuckets - 1
	}
	base := int64(1000) << o
	quarter := int64(250) << o
	sub := (int64(d) - base) / quarter
	if sub > 3 {
		sub = 3
	}
	return 1 + 4*o + int(sub)
}

// DelayBucketLow returns the inclusive lower bound of bucket i.
func DelayBucketLow(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	if i >= DelayBuckets-1 {
		return time.Duration(1000) << delayOctaves
	}
	o := (i - 1) / 4
	j := int64(i-1) % 4
	return time.Duration((int64(1000) << o) + j*(int64(250)<<o))
}

// DelayBucketHigh returns the exclusive upper bound of bucket i. The
// overflow bucket is unbounded; its reported "high" is twice its lower bound
// so midpoints stay finite.
func DelayBucketHigh(i int) time.Duration {
	if i >= DelayBuckets-1 {
		return 2 * DelayBucketLow(DelayBuckets-1)
	}
	return DelayBucketLow(i + 1)
}

// DelayBucketMid returns the representative value of bucket i: the midpoint
// of its bounds. Composition sums midpoints, quantile lookups report them.
//
//e2e:hotpath
func DelayBucketMid(i int) time.Duration {
	if i <= 0 {
		return 500 * time.Nanosecond
	}
	if i >= DelayBuckets-1 {
		lo := time.Duration(1000) << delayOctaves
		return lo + lo/2
	}
	o := (i - 1) / 4
	j := int64(i-1) % 4
	lo := (int64(1000) << o) + j*(int64(250)<<o)
	return time.Duration(lo + (int64(125) << o))
}

// Record adds one observation of delay d.
//
//e2e:hotpath
func (h *DelayHist) Record(d time.Duration) {
	h.Counts[DelayBucket(d)]++
}

// RecordN adds n observations of delay d — the batch form used when several
// queued items depart at once with the same residence time.
//
//e2e:hotpath
func (h *DelayHist) RecordN(d time.Duration, n uint32) {
	h.Counts[DelayBucket(d)] += n
}

// Merge adds other's counts into h bucket-wise (wrapping, like every other
// accumulation on the wire counters) — the fleet rollup: per-connection
// histograms recorded independently on their read loops merge into one
// group distribution at report time.
func (h *DelayHist) Merge(other *DelayHist) {
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
	}
}

// Quantile returns the q-quantile of the recorded distribution as the
// holding bucket's midpoint (within 12.5% of the true value away from the
// under/overflow buckets, like every DelayHist read). q at or below 0
// reports the first populated bucket, q at or above 1 the last; an empty
// histogram reports 0.
func (h *DelayHist) Quantile(q float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	last := 0
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		last = i
		cum += uint64(c)
		if cum >= rank {
			return DelayBucketMid(i)
		}
	}
	return DelayBucketMid(last)
}

// FractionBelow returns the fraction of recorded observations whose bucket
// lies entirely at or under d — i.e. the mass in buckets whose exclusive
// upper bound is ≤ d, a conservative CDF read at the histogram's 12.5%
// resolution. An empty histogram reports 1 (nothing recorded exceeds any
// bound), matching the audit plane's convention that coverage starts
// perfect and degrades as evidence arrives. Because the numerator is a
// prefix sum over fixed bucket boundaries, the value is monotone
// non-decreasing in d and, for a fixed d, merging two histograms yields a
// fraction between the two inputs' fractions — the properties the
// p99-coverage gauge's tests pin.
func (h *DelayHist) FractionBelow(d time.Duration) float64 {
	total := h.Count()
	if total == 0 {
		return 1
	}
	var below uint64
	for i, c := range h.Counts {
		// The overflow bucket is unbounded above: its mass never counts as
		// below any threshold, keeping the read conservative.
		if i == DelayBuckets-1 || DelayBucketHigh(i) > d {
			break
		}
		below += uint64(c)
	}
	return float64(below) / float64(total)
}

// Count returns the (wrapped) total number of recorded observations.
func (h *DelayHist) Count() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += uint64(c)
	}
	return t
}

// DelayDeltas subtracts two successive cumulative histograms of the same
// queue into the interval histogram, wrap-aware per bucket. It returns the
// per-bucket deltas, their sum, and ok=false when any bucket moved backwards
// (mod 2^32) — the signature of reordered or duplicated exchanges, mirroring
// WireAvgs' rejection rule.
//
//e2e:hotpath
func DelayDeltas(prev, now *DelayHist) (DelayHist, uint64, bool) {
	var d DelayHist
	var total uint64
	for i := range d.Counts {
		c := now.Counts[i] - prev.Counts[i] // modular
		if c > 1<<31 {
			return DelayHist{}, 0, false
		}
		d.Counts[i] = c
		total += uint64(c)
	}
	return d, total, true
}

// WireTails bundles the three per-queue delay histograms an endpoint shares
// with its peer, in the same fixed order as WireState.
type WireTails struct {
	Unacked  DelayHist
	Unread   DelayHist
	AckDelay DelayHist
}

// delayTrackerEvents bounds DelayTracker's memory: at most this many
// distinct-arrival-time cohorts are outstanding; beyond that the two oldest
// cohorts merge (keeping the older timestamp, so reported delays only ever
// round up — conservative for tail SLOs).
const delayTrackerEvents = 256

// delayEvent is one arrival cohort: every item with arrival index ≤ upto
// (and > the previous event's upto) arrived at time at.
type delayEvent struct {
	upto int64 // cumulative arrivals covered through this cohort
	at   Time
}

// DelayTracker attributes exact per-item residence times in a FIFO queue
// using fixed memory. Arrivals append (or extend) a cohort in a ring of
// delayTrackerEvents entries; departures consume cohorts front-to-back,
// recording now−arrival into a DelayHist. For a FIFO queue the attribution
// is exact until the ring saturates; past that the oldest cohorts merge and
// delays are overestimated, never under.
//
// Like State, a DelayTracker is not safe for concurrent use; wrap it the way
// Tracker wraps State when sharing across goroutines.
type DelayTracker struct {
	hist     DelayHist
	ring     [delayTrackerEvents]delayEvent
	head, n  int
	arrived  int64
	departed int64
}

// Track mirrors State.Track's sign convention: nitems > 0 records an arrival
// cohort at time now, nitems < 0 records -nitems departures at time now,
// and 0 is a no-op (snapshot forcing does not touch delay state).
//
//e2e:hotpath
func (t *DelayTracker) Track(now Time, nitems int64) {
	if nitems > 0 {
		t.arrive(now, nitems)
	} else if nitems < 0 {
		t.depart(now, -nitems)
	}
}

//e2e:hotpath
func (t *DelayTracker) arrive(now Time, n int64) {
	t.arrived += n
	if t.n > 0 {
		last := &t.ring[(t.head+t.n-1)%delayTrackerEvents]
		if last.at == now {
			last.upto = t.arrived
			return
		}
	}
	if t.n == delayTrackerEvents {
		// Ring full: merge the two oldest cohorts. The merged cohort keeps
		// the older timestamp, so every item in it reports a delay at least
		// as large as its true one.
		first := t.ring[t.head].at
		t.head = (t.head + 1) % delayTrackerEvents
		t.ring[t.head].at = first
		t.n--
	}
	t.ring[(t.head+t.n)%delayTrackerEvents] = delayEvent{upto: t.arrived, at: now}
	t.n++
}

//e2e:hotpath
func (t *DelayTracker) depart(now Time, n int64) {
	for n > 0 {
		if t.n == 0 {
			// Departures beyond recorded arrivals: instrumentation drift
			// (State.Track would have panicked first in the paired use).
			// Record them with zero residence rather than corrupting state.
			t.hist.RecordN(0, clampCount(n))
			t.departed += n
			return
		}
		ev := &t.ring[t.head]
		avail := ev.upto - t.departed
		if avail <= 0 {
			t.head = (t.head + 1) % delayTrackerEvents
			t.n--
			continue
		}
		take := n
		if take > avail {
			take = avail
		}
		d := time.Duration(now - ev.at)
		if d < 0 {
			d = 0
		}
		t.hist.RecordN(d, clampCount(take))
		t.departed += take
		n -= take
		if t.departed >= ev.upto {
			t.head = (t.head + 1) % delayTrackerEvents
			t.n--
		}
	}
}

//e2e:hotpath
func clampCount(n int64) uint32 {
	if n > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(n)
}

// Hist returns the cumulative delay histogram recorded so far.
func (t *DelayTracker) Hist() DelayHist { return t.hist }

// Outstanding returns the number of items currently tracked as queued.
func (t *DelayTracker) Outstanding() int64 { return t.arrived - t.departed }
