package qstate

import (
	"math/rand"
	"testing"
	"time"
)

// TestDelayBucketBounds: every bucket's [low, high) bounds tile the axis with
// no gaps or overlaps, and DelayBucket maps low, high-1 and the midpoint of
// each bucket back to that bucket.
func TestDelayBucketBounds(t *testing.T) {
	if DelayBucketLow(0) != 0 {
		t.Fatalf("bucket 0 low = %v, want 0", DelayBucketLow(0))
	}
	for i := 0; i < DelayBuckets; i++ {
		lo, hi, mid := DelayBucketLow(i), DelayBucketHigh(i), DelayBucketMid(i)
		if i < DelayBuckets-1 && hi != DelayBucketLow(i+1) {
			t.Fatalf("bucket %d: high %v != next low %v", i, hi, DelayBucketLow(i+1))
		}
		if !(lo <= mid && mid < hi) {
			t.Fatalf("bucket %d: mid %v outside [%v, %v)", i, mid, lo, hi)
		}
		if got := DelayBucket(lo); got != i {
			t.Fatalf("DelayBucket(low %v) = %d, want %d", lo, got, i)
		}
		if got := DelayBucket(mid); got != i {
			t.Fatalf("DelayBucket(mid %v) = %d, want %d", mid, got, i)
		}
		if i < DelayBuckets-1 {
			if got := DelayBucket(hi - 1); got != i {
				t.Fatalf("DelayBucket(high-1 %v) = %d, want %d", hi-1, got, i)
			}
		}
	}
	// Overflow and underflow extremes.
	if got := DelayBucket(-time.Second); got != 0 {
		t.Fatalf("negative delay bucket = %d, want 0", got)
	}
	if got := DelayBucket(time.Hour); got != DelayBuckets-1 {
		t.Fatalf("huge delay bucket = %d, want %d", got, DelayBuckets-1)
	}
}

// TestDelayBucketRelativeError: for every delay in the covered range, the
// bucket midpoint is within 12.5% of the true value — the quantization
// guarantee the composition rule documents.
func TestDelayBucketRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lo, hi := int64(DelayBucketLow(1)), int64(DelayBucketLow(DelayBuckets-1))
	for i := 0; i < 20000; i++ {
		d := lo + rng.Int63n(hi-lo)
		mid := float64(DelayBucketMid(DelayBucket(time.Duration(d))))
		if rel := (mid - float64(d)) / float64(d); rel > 0.125 || rel < -0.125 {
			t.Fatalf("delay %d: midpoint %v off by %.1f%%", d, mid, 100*rel)
		}
	}
}

// TestDelayHistRecord: Record/RecordN land in the right buckets, Count sums
// them, and DelayDeltas subtracts cumulative snapshots wrap-aware.
func TestDelayHistRecord(t *testing.T) {
	var h DelayHist
	h.Record(0)
	h.Record(999)                  // underflow bucket with 0
	h.RecordN(time.Millisecond, 3) // some interior bucket
	h.Record(time.Minute)          // overflow
	if h.Counts[0] != 2 {
		t.Fatalf("underflow count = %d, want 2", h.Counts[0])
	}
	if b := DelayBucket(time.Millisecond); h.Counts[b] != 3 {
		t.Fatalf("1ms bucket count = %d, want 3", h.Counts[b])
	}
	if h.Counts[DelayBuckets-1] != 1 {
		t.Fatalf("overflow count = %d, want 1", h.Counts[DelayBuckets-1])
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}

	prev := h
	h.RecordN(2*time.Millisecond, 5)
	d, total, ok := DelayDeltas(&prev, &h)
	if !ok || total != 5 {
		t.Fatalf("DelayDeltas = total %d ok %v, want 5 true", total, ok)
	}
	if b := DelayBucket(2 * time.Millisecond); d.Counts[b] != 5 {
		t.Fatalf("delta bucket = %d, want 5", d.Counts[b])
	}
	// Reordered (backwards) snapshots are rejected.
	if _, _, ok := DelayDeltas(&h, &prev); ok {
		t.Fatal("DelayDeltas accepted a backwards snapshot pair")
	}
}

// TestDelayDeltasWrap: cumulative counts that wrap 2^32 between snapshots
// still subtract correctly — the same modular-arithmetic property the wire
// counters have.
func TestDelayDeltasWrap(t *testing.T) {
	var prev, now DelayHist
	prev.Counts[3] = ^uint32(0) - 1 // two below wrap
	now.Counts[3] = 2               // four recorded, wrapped
	d, total, ok := DelayDeltas(&prev, &now)
	if !ok || total != 4 || d.Counts[3] != 4 {
		t.Fatalf("wrap delta = %d (total %d, ok %v), want 4", d.Counts[3], total, ok)
	}
}

// TestDelayTrackerFIFOExact: against a brute-force FIFO queue of explicit
// (arrival time) items, DelayTracker reproduces the exact per-item delay
// histogram for randomized schedules that stay under the ring capacity.
func TestDelayTrackerFIFOExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var dt DelayTracker
		var want DelayHist
		var fifo []Time // arrival time per queued item
		now := Time(0)
		for step := 0; step < 400; step++ {
			now += Time(1 + rng.Int63n(500_000))
			if len(fifo) > 0 && rng.Intn(2) == 0 {
				n := 1 + rng.Intn(len(fifo))
				for _, at := range fifo[:n] {
					want.Record(time.Duration(now - at))
				}
				fifo = fifo[n:]
				dt.Track(now, -int64(n))
			} else {
				n := 1 + rng.Intn(4)
				for i := 0; i < n; i++ {
					fifo = append(fifo, now)
				}
				dt.Track(now, int64(n))
			}
		}
		if got := dt.Hist(); got != want {
			t.Fatalf("trial %d: tracker histogram diverged from brute force", trial)
		}
		if dt.Outstanding() != int64(len(fifo)) {
			t.Fatalf("trial %d: outstanding %d, want %d", trial, dt.Outstanding(), len(fifo))
		}
	}
}

// TestDelayTrackerSameTimestampCoalesce: arrivals at the same instant share
// one cohort, so bursts do not consume ring capacity.
func TestDelayTrackerSameTimestampCoalesce(t *testing.T) {
	var dt DelayTracker
	for i := 0; i < 10*delayTrackerEvents; i++ {
		dt.Track(100, 1)
	}
	if dt.n != 1 {
		t.Fatalf("cohorts = %d, want 1", dt.n)
	}
	dt.Track(100+Time(time.Millisecond), -10*delayTrackerEvents)
	h := dt.Hist()
	if b := DelayBucket(time.Millisecond); h.Counts[b] != 10*delayTrackerEvents {
		t.Fatalf("coalesced departures = %d, want %d", h.Counts[b], 10*delayTrackerEvents)
	}
}

// TestDelayTrackerOverflowConservative: when more distinct arrival cohorts
// are outstanding than the ring holds, recorded delays are clamped *upward*
// (older timestamps win in the merge) and no departures are lost.
func TestDelayTrackerOverflowConservative(t *testing.T) {
	var dt DelayTracker
	n := delayTrackerEvents + 100
	for i := 0; i < n; i++ {
		dt.Track(Time(i)*Time(time.Microsecond), 1)
	}
	end := Time(n) * Time(time.Microsecond)
	dt.Track(end, -int64(n))
	h := dt.Hist()
	if got := h.Count(); got != uint64(n) {
		t.Fatalf("recorded %d departures, want %d", got, n)
	}
	// Exact delays run from ~100µs (newest) to ~356µs (oldest). The merged
	// cohorts must never report below the exact minimum delay.
	minExact := time.Duration(end - Time(n-1)*Time(time.Microsecond))
	for i := 0; i < DelayBucket(minExact); i++ {
		if h.Counts[i] != 0 {
			t.Fatalf("bucket %d below exact minimum %v has %d entries", i, minExact, h.Counts[i])
		}
	}
}

// TestDelayTrackerDefensiveUnderflow: departures with no recorded arrivals
// (standalone misuse) record zero-delay items instead of corrupting state.
func TestDelayTrackerDefensiveUnderflow(t *testing.T) {
	var dt DelayTracker
	dt.Track(1000, -3)
	h := dt.Hist()
	if h.Counts[0] != 3 || h.Count() != 3 {
		t.Fatalf("underflow departures = %+v, want 3 zero-delay items", h.Counts[0])
	}
}

// TestDelayTrackerBackwardsClockClamp: a departure timestamped before its
// cohort's arrival (clamped clocks upstream) records zero, not negative.
func TestDelayTrackerBackwardsClockClamp(t *testing.T) {
	var dt DelayTracker
	dt.Track(5000, 1)
	dt.Track(4000, -1) // State.Track would panic; DelayTracker clamps
	if h := dt.Hist(); h.Counts[0] != 1 {
		t.Fatalf("clamped delay bucket = %+v, want underflow", h.Counts)
	}
}
