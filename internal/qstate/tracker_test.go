package qstate

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTrackerMatchesState: driven from one goroutine, Tracker is
// observationally identical to the plain State.
func TestTrackerMatchesState(t *testing.T) {
	var s State
	s.Init(100)
	tr := NewTracker(100)
	schedule := []struct {
		at Time
		n  int64
	}{{100, 2}, {250, 1}, {400, -2}, {400, 0}, {900, -1}, {1300, 5}, {2000, -5}}
	for _, step := range schedule {
		s.Track(step.at, step.n)
		tr.Track(step.at, step.n)
	}
	if got, want := tr.State(), s; got != want {
		t.Fatalf("tracker state %v, state %v", got.String(), want.String())
	}
	if got, want := tr.Peek(), s.Peek(); got != want {
		t.Fatalf("Peek: %+v vs %+v", got, want)
	}
	if got, want := tr.Snapshot(2500), s.Snapshot(2500); got != want {
		t.Fatalf("Snapshot: %+v vs %+v", got, want)
	}
}

// TestTrackerClampsBackwardsTime: a stale timestamp must be folded in as a
// zero-length interval instead of panicking like State.Track does.
func TestTrackerClampsBackwardsTime(t *testing.T) {
	tr := NewTracker(0)
	tr.Track(1000, 3)
	tr.Track(500, 1) // stale: clamped to t=1000
	snap := tr.Peek()
	if snap.Time != 1000 {
		t.Fatalf("time = %d, want clamp at 1000", snap.Time)
	}
	if tr.Size() != 4 {
		t.Fatalf("size = %d, want 4", tr.Size())
	}
	// The clamped update contributed no integral (dt = 0).
	if snap.Integral != 0 {
		t.Fatalf("integral = %d, want 0", snap.Integral)
	}
}

// TestTrackerNegativeSizeStillPanics: clamping covers clock skew, not
// bookkeeping bugs.
func TestTrackerNegativeSizeStillPanics(t *testing.T) {
	tr := NewTracker(0)
	defer func() {
		if recover() == nil {
			t.Fatal("removing from an empty tracked queue did not panic")
		}
	}()
	tr.Track(10, -1)
}

// TestTrackerConcurrentTrackSnapshot is the race-stress test: many
// goroutines Track arrivals and departures under a shared monotonic clock
// while readers take Snapshots. Run under -race this proves the locking;
// the final counters prove no update was lost.
func TestTrackerConcurrentTrackSnapshot(t *testing.T) {
	const (
		workers = 8
		pairs   = 2000
	)
	var clock atomic.Int64
	now := func() Time { return Time(clock.Add(1)) }

	tr := NewTracker(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < pairs; i++ {
				tr.Track(now(), 1)
				tr.Track(now(), -1)
			}
		}()
	}
	// Concurrent readers: snapshots must always be internally consistent
	// (monotonic time, total, integral).
	done := make(chan struct{})
	var readerErr atomic.Value
	for r := 0; r < 2; r++ {
		go func() {
			var prev Snapshot
			for {
				select {
				case <-done:
					return
				default:
				}
				s := tr.Snapshot(now())
				if s.Time < prev.Time || s.Total < prev.Total || s.Integral < prev.Integral {
					readerErr.Store(true)
					return
				}
				prev = s
			}
		}()
	}
	wg.Wait()
	close(done)
	if readerErr.Load() != nil {
		t.Fatal("reader observed a non-monotonic snapshot")
	}
	final := tr.State()
	if final.Size != 0 {
		t.Fatalf("final size = %d, want 0 (balanced arrivals/departures)", final.Size)
	}
	if want := int64(workers * pairs); final.Total != want {
		t.Fatalf("total departures = %d, want %d (lost updates)", final.Total, want)
	}
}

// TestTrackerConcurrentWallClock stresses the clamp path with the real
// clock: goroutines read time.Now before contending on the lock, so
// inversions genuinely occur, and none may panic or corrupt counters.
func TestTrackerConcurrentWallClock(t *testing.T) {
	start := time.Now()
	now := func() Time { return Time(time.Since(start)) }
	tr := NewTracker(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Track(now(), 1)
				tr.Track(now(), -1)
			}
		}()
	}
	wg.Wait()
	if got := tr.Size(); got != 0 {
		t.Fatalf("final size = %d, want 0", got)
	}
	if got := tr.State().Total; got != 8000 {
		t.Fatalf("total = %d, want 8000", got)
	}
}
