package qstate

import "testing"

// FuzzWireRoundTrip: any 36 bytes decode to a state that re-encodes to the
// same bytes (the codec is a bijection on the wire domain).
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(make([]byte, WireSize))
	seed := make([]byte, WireSize)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < WireSize {
			if _, err := DecodeWire(data); err == nil {
				t.Fatal("short buffer accepted")
			}
			return
		}
		ws, err := DecodeWire(data)
		if err != nil {
			t.Fatalf("decode of full buffer failed: %v", err)
		}
		out := AppendWire(nil, ws)
		for i := 0; i < WireSize; i++ {
			if out[i] != data[i] {
				t.Fatalf("byte %d: %x != %x", i, out[i], data[i])
			}
		}
	})
}

// FuzzWireAvgs: arbitrary snapshot pairs must never produce negative or
// NaN-bearing averages, and never panic.
func FuzzWireAvgs(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0), uint32(1000), uint32(5), uint32(900))
	f.Fuzz(func(t *testing.T, t0, n0, i0, t1, n1, i1 uint32) {
		a := WireAvgs(WireQueue{t0, n0, i0}, WireQueue{t1, n1, i1})
		if a.Valid {
			if a.Latency < 0 || a.Throughput < 0 || a.Q < 0 {
				t.Fatalf("negative averages from valid interval: %+v", a)
			}
		}
	})
}
