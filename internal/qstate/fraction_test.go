package qstate

import (
	"math/rand"
	"testing"
	"time"
)

func randomDelayHist(rng *rand.Rand, n int) *DelayHist {
	var h DelayHist
	for i := 0; i < n; i++ {
		// Span the full bucket range, overflow included.
		d := time.Duration(1+rng.Int63n(int64(2*DelayBucketHigh(DelayBuckets-2)))) * time.Nanosecond
		h.Record(d)
	}
	return &h
}

// TestFractionBelowBasics pins the edge cases: empty histogram reads 1
// (coverage starts perfect), overflow mass never counts as below any
// threshold, and a threshold past the last bounded bucket captures all
// non-overflow mass.
func TestFractionBelowBasics(t *testing.T) {
	var empty DelayHist
	if f := empty.FractionBelow(time.Second); f != 1 {
		t.Errorf("empty histogram FractionBelow = %v, want 1", f)
	}

	var h DelayHist
	h.Record(DelayBucketLow(0) + 1)                // first bucket
	h.Record(10 * DelayBucketHigh(DelayBuckets-2)) // overflow
	top := 2 * DelayBucketHigh(DelayBuckets-2)     // beyond every bounded bucket
	if f := h.FractionBelow(top); f != 0.5 {
		t.Errorf("FractionBelow(top) = %v, want 0.5 (overflow mass must stay above)", f)
	}
	if f := h.FractionBelow(0); f != 0 {
		t.Errorf("FractionBelow(0) = %v, want 0", f)
	}
}

// TestFractionBelowMonotone: across random histograms, FractionBelow is
// monotone non-decreasing in d and conservative against the exact sample
// CDF — it never reports more mass below d than a per-bucket lower bound
// admits.
func TestFractionBelowMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		h := randomDelayHist(rng, 200+rng.Intn(800))
		prev := -1.0
		for d := time.Duration(0); d < 3*DelayBucketHigh(DelayBuckets-2); d += d/7 + time.Microsecond {
			f := h.FractionBelow(d)
			if f < prev {
				t.Fatalf("trial %d: FractionBelow not monotone: %v at d=%v after %v", trial, f, d, prev)
			}
			if f < 0 || f > 1 {
				t.Fatalf("trial %d: FractionBelow(%v) = %v outside [0,1]", trial, d, f)
			}
			prev = f
		}
	}
}

// TestFractionBelowMergeBetween: for any threshold, the merge of two
// histograms reports a fraction between the inputs' fractions (it is their
// count-weighted average) — so merging per-shard audit histograms can never
// push the coverage read outside the range its shards span.
func TestFractionBelowMergeBetween(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		a := randomDelayHist(rng, 100+rng.Intn(400))
		b := randomDelayHist(rng, 100+rng.Intn(400))
		m := *a
		m.Merge(b)
		for probe := 0; probe < 32; probe++ {
			d := time.Duration(rng.Int63n(int64(3 * DelayBucketHigh(DelayBuckets-2))))
			fa, fb, fm := a.FractionBelow(d), b.FractionBelow(d), m.FractionBelow(d)
			lo, hi := fa, fb
			if lo > hi {
				lo, hi = hi, lo
			}
			if fm < lo-1e-12 || fm > hi+1e-12 {
				t.Fatalf("trial %d d=%v: merged fraction %v outside [%v, %v]", trial, d, fm, lo, hi)
			}
			// Exact weighted-average identity on the same bucket boundaries.
			ca, cb := float64(a.Count()), float64(b.Count())
			want := (fa*ca + fb*cb) / (ca + cb)
			if diff := fm - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d d=%v: merged fraction %v != weighted average %v", trial, d, fm, want)
			}
		}
	}
}
