//go:build go1.18

package qstate

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func randomFrame(rng *rand.Rand, tails bool) WireFrame {
	f := WireFrame{HasTails: tails}
	qs := [3]*WireQueue{&f.State.Unacked, &f.State.Unread, &f.State.AckDelay}
	for _, q := range qs {
		*q = WireQueue{TimeUS: rng.Uint32(), Total: rng.Uint32(), IntegralUS: rng.Uint32()}
	}
	if tails {
		hs := [3]*DelayHist{&f.Tails.Unacked, &f.Tails.Unread, &f.Tails.AckDelay}
		for _, h := range hs {
			for i := range h.Counts {
				h.Counts[i] = rng.Uint32()
			}
		}
	}
	return f
}

// TestFrameRoundTrip: both frame versions encode to their declared size and
// decode back to themselves via both the loose and the exact decoder.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		f := randomFrame(rng, trial%2 == 0)
		var buf [FrameV2Size]byte
		n, err := EncodeFrame(buf[:], f)
		if err != nil || n != f.FrameSize() {
			t.Fatalf("EncodeFrame = %d, %v (want %d)", n, err, f.FrameSize())
		}
		got, err := DecodeFrameExact(buf[:n])
		if err != nil || got != f {
			t.Fatalf("exact round trip: %+v, %v", got, err)
		}
		loose, err := DecodeFrame(buf[:n])
		if err != nil || loose != f {
			t.Fatalf("loose round trip: %+v, %v", loose, err)
		}
		if app := AppendFrame(nil, f); !bytes.Equal(app, buf[:n]) {
			t.Fatal("AppendFrame diverged from EncodeFrame")
		}
	}
}

// TestFrameVersionGate: a v1-only 36-byte payload decodes cleanly with
// HasTails false; a v2-sized payload with a wrong version byte is rejected
// by the exact decoder; lengths that are neither are ErrFrameSize.
func TestFrameVersionGate(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	v1 := randomFrame(rng, false)
	var buf [FrameV2Size]byte
	n, _ := EncodeFrame(buf[:], v1)
	if n != WireSize {
		t.Fatalf("v1 frame size = %d, want %d", n, WireSize)
	}
	got, err := DecodeFrameExact(buf[:n])
	if err != nil || got.HasTails || got.State != v1.State {
		t.Fatalf("v1 decode = %+v, %v", got, err)
	}

	v2 := randomFrame(rng, true)
	n, _ = EncodeFrame(buf[:], v2)
	if buf[0] != FrameVersion2 {
		t.Fatalf("v2 version byte = %d", buf[0])
	}
	buf[0] = 9 // a future version we do not speak
	if _, err := DecodeFrameExact(buf[:n]); !errors.Is(err, ErrFrameVersion) {
		t.Fatalf("unknown version accepted: %v", err)
	}
	if _, err := DecodeFrameExact(buf[:WireSize+1]); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("odd length accepted: %v", err)
	}
	if _, err := DecodeFrameExact(nil); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("empty buffer accepted: %v", err)
	}
	if n, err := EncodeFrame(buf[:FrameV2Size-1], v2); !errors.Is(err, ErrShortBuffer) || n != 0 {
		t.Fatalf("short encode buffer accepted: %d, %v", n, err)
	}
}

// TestFrameV1InteropWithWireState: the frame encoder emits byte-identical
// output to the original 36-byte codec for tail-less frames, so a v2 sender
// talking to a v1 peer is indistinguishable from a v1 sender.
func TestFrameV1InteropWithWireState(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		f := randomFrame(rng, false)
		if !bytes.Equal(AppendFrame(nil, f), AppendWire(nil, f.State)) {
			t.Fatal("v1 frame bytes differ from bare WireState bytes")
		}
		ws, err := DecodeWireExact(AppendFrame(nil, f))
		if err != nil || ws != f.State {
			t.Fatalf("v1 peer decode: %+v, %v", ws, err)
		}
	}
}

// FuzzFrameDecode: DecodeFrame/DecodeFrameExact must never panic, must agree
// on exact-length inputs, and whatever DecodeFrame accepts must re-encode to
// a prefix-compatible frame.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, WireSize))
	f.Add(make([]byte, FrameV2Size))
	seeded := AppendFrame(nil, WireFrame{HasTails: true})
	f.Add(seeded)
	f.Add(seeded[:len(seeded)-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		loose, looseErr := DecodeFrame(data)
		exact, exactErr := DecodeFrameExact(data)
		switch {
		case len(data) == WireSize,
			len(data) == FrameV2Size && data[0] == FrameVersion2:
			if (looseErr == nil) != (exactErr == nil) {
				t.Fatalf("decoder disagreement at len %d: %v vs %v", len(data), looseErr, exactErr)
			}
			if looseErr == nil && loose != exact {
				t.Fatal("decoders returned different frames for the same exact buffer")
			}
		case len(data) == FrameV2Size:
			// v2 length, unknown version: exact rejects, loose falls back
			// to a v1 prefix decode by design.
			if !errors.Is(exactErr, ErrFrameVersion) {
				t.Fatalf("v2-length unknown version: %v", exactErr)
			}
		default:
			if exactErr == nil {
				t.Fatalf("DecodeFrameExact accepted %d bytes", len(data))
			}
		}
		if looseErr != nil {
			if len(data) >= WireSize {
				t.Fatalf("DecodeFrame rejected %d bytes: %v", len(data), looseErr)
			}
			return
		}
		out := AppendFrame(nil, loose)
		if !bytes.Equal(out, data[:len(out)]) {
			t.Fatal("re-encode diverged from accepted input prefix")
		}
	})
}

// FuzzDelayBucket: bucket lookup must be total, in range, and monotone in d.
func FuzzDelayBucket(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(999))
	f.Add(int64(time.Millisecond))
	f.Add(int64(time.Hour))
	f.Add(int64(-1))
	f.Fuzz(func(t *testing.T, d int64) {
		b := DelayBucket(time.Duration(d))
		if b < 0 || b >= DelayBuckets {
			t.Fatalf("bucket %d out of range for %d", b, d)
		}
		if d >= 0 && d < int64(time.Hour) {
			if b2 := DelayBucket(time.Duration(d) + time.Nanosecond); b2 < b {
				t.Fatalf("bucket not monotone at %d: %d then %d", d, b, b2)
			}
		}
	})
}
