package qstate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestWireRoundTrip(t *testing.T) {
	w := WireState{
		Unacked:  WireQueue{TimeUS: 1, Total: 2, IntegralUS: 3},
		Unread:   WireQueue{TimeUS: 4, Total: 5, IntegralUS: 6},
		AckDelay: WireQueue{TimeUS: math.MaxUint32, Total: 0, IntegralUS: 7},
	}
	var buf [WireSize]byte
	n, err := EncodeWire(buf[:], w)
	if err != nil || n != WireSize {
		t.Fatalf("EncodeWire = %d, %v", n, err)
	}
	got, err := DecodeWire(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Fatalf("round trip: got %+v, want %+v", got, w)
	}
}

func TestWireRoundTripProperty(t *testing.T) {
	check := func(a, b, c, d, e, f, g, h, i uint32) bool {
		w := WireState{
			Unacked:  WireQueue{a, b, c},
			Unread:   WireQueue{d, e, f},
			AckDelay: WireQueue{g, h, i},
		}
		buf := AppendWire(nil, w)
		got, err := DecodeWire(buf)
		return err == nil && got == w
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestWireSizeIs36(t *testing.T) {
	// §3.2: "Each party thus shares 36 bytes with its peer per exchange."
	if WireSize != 36 {
		t.Fatalf("WireSize = %d, want 36", WireSize)
	}
	if got := len(AppendWire(nil, WireState{})); got != 36 {
		t.Fatalf("encoded size = %d, want 36", got)
	}
}

func TestEncodeDecodeShortBuffer(t *testing.T) {
	if _, err := EncodeWire(make([]byte, 35), WireState{}); err != ErrShortBuffer {
		t.Fatalf("EncodeWire short: %v", err)
	}
	if _, err := DecodeWire(make([]byte, 35)); err != ErrShortBuffer {
		t.Fatalf("DecodeWire short: %v", err)
	}
}

func TestToWireScalesUnits(t *testing.T) {
	s := Snapshot{Time: 5_000_000, Total: 42, Integral: 9_000_000}
	w := ToWire(s)
	if w.TimeUS != 5000 || w.Total != 42 || w.IntegralUS != 9000 {
		t.Fatalf("ToWire = %+v", w)
	}
}

func TestWireAvgsMatchesGetAvgs(t *testing.T) {
	// Build a schedule, compute avgs both in full precision and via the
	// 32-bit wire format; they should agree to µs resolution.
	var s State
	s.Init(0)
	start := s.Snapshot(0)
	now := Time(0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		now += Time(1000 * (1 + rng.Int63n(50))) // µs-aligned steps
		if s.Size > 0 && rng.Intn(2) == 0 {
			s.Track(now, -1)
		} else {
			s.Track(now, 1)
		}
	}
	end := s.Snapshot(now)
	exact := GetAvgs(start, end)
	wire := WireAvgs(ToWire(start), ToWire(end))
	if !exact.Valid || !wire.Valid {
		t.Fatal("expected valid intervals")
	}
	if wire.Departures != exact.Departures {
		t.Fatalf("departures %d vs %d", wire.Departures, exact.Departures)
	}
	relErr := math.Abs(float64(wire.Latency-exact.Latency)) / float64(exact.Latency)
	if relErr > 0.01 {
		t.Fatalf("wire latency %v vs exact %v", wire.Latency, exact.Latency)
	}
	if math.Abs(wire.Throughput-exact.Throughput)/exact.Throughput > 0.01 {
		t.Fatalf("wire throughput %v vs exact %v", wire.Throughput, exact.Throughput)
	}
}

// TestWireAvgsSurvivesWrap: deltas remain correct when the 32-bit counters
// wrap once between exchanges — the property that makes 4-byte counters
// sufficient.
func TestWireAvgsSurvivesWrap(t *testing.T) {
	prev := WireQueue{TimeUS: math.MaxUint32 - 100, Total: math.MaxUint32 - 5, IntegralUS: math.MaxUint32 - 1000}
	now := WireQueue{TimeUS: 900, Total: 5, IntegralUS: 9000}
	a := WireAvgs(prev, now)
	if !a.Valid {
		t.Fatal("wrapped interval reported invalid")
	}
	if a.Departures != 11 { // (maxuint32-5 .. wrap .. 5) = 11 departures
		t.Fatalf("departures = %d, want 11", a.Departures)
	}
	wantElapsed := time.Duration(1001) * time.Microsecond
	if a.Elapsed != wantElapsed {
		t.Fatalf("elapsed = %v, want %v", a.Elapsed, wantElapsed)
	}
	// dIntegral = 10001 µs·items over 11 departures
	dIntegral, dTotal := 10001.0, 11.0
	wantLatency := time.Duration(dIntegral / dTotal * 1000)
	if a.Latency != wantLatency {
		t.Fatalf("latency = %v, want %v", a.Latency, wantLatency)
	}
}

func TestWireAvgsRejectsReordered(t *testing.T) {
	prev := WireQueue{TimeUS: 1000, Total: 10, IntegralUS: 100}
	now := WireQueue{TimeUS: 500, Total: 8, IntegralUS: 50} // older exchange
	if a := WireAvgs(prev, now); a.Valid {
		t.Fatal("reordered exchange produced a valid estimate")
	}
	// Same timestamps: duplicate.
	if a := WireAvgs(prev, prev); a.Valid {
		t.Fatal("duplicate exchange produced a valid estimate")
	}
}

func TestWireAvgsIdle(t *testing.T) {
	prev := WireQueue{TimeUS: 0, Total: 0, IntegralUS: 0}
	now := WireQueue{TimeUS: 1000, Total: 0, IntegralUS: 500}
	a := WireAvgs(prev, now)
	if a.Valid {
		t.Fatal("no departures should be invalid")
	}
	if a.Q != 0.5 {
		t.Fatalf("Q = %v, want 0.5", a.Q)
	}
}

func BenchmarkTrack(b *testing.B) {
	var s State
	s.Init(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Track(Time(i)*2, 1)
		s.Track(Time(i)*2+1, -1)
	}
}

func BenchmarkGetAvgs(b *testing.B) {
	prev := Snapshot{Time: 0, Total: 0, Integral: 0}
	now := Snapshot{Time: 1 << 30, Total: 1 << 20, Integral: 1 << 40}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = GetAvgs(prev, now)
	}
}

func BenchmarkCodecEncodeDecode(b *testing.B) {
	w := WireState{
		Unacked:  WireQueue{1, 2, 3},
		Unread:   WireQueue{4, 5, 6},
		AckDelay: WireQueue{7, 8, 9},
	}
	var buf [WireSize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = EncodeWire(buf[:], w)
		_, _ = DecodeWire(buf[:])
	}
}
