// Package qstate implements the paper's queue-state counters: Algorithm 1
// (TRACK) and Algorithm 2 (GETAVGS).
//
// A State is the 4-tuple (time, size, total, integral) the paper maintains
// per monitored queue. Whenever the queue's population changes, Track is
// called with the (signed) number of items added or removed. Subtracting two
// snapshots yields — via Little's law — the queue's average occupancy Q,
// departure rate λ (which, for a lossless queue, is also its throughput),
// and queuing delay D = Q/λ over the interval between the snapshots.
//
// GETAVGS never reads the instantaneous size, so a (time, total, integral)
// 3-tuple snapshot contains everything a remote peer needs; Snapshot and the
// wire codec in codec.go implement the 36-byte-per-exchange metadata sharing
// of §3.2.
package qstate

import (
	"fmt"
	"time"
)

// Time is a virtual or real timestamp in nanoseconds. It matches sim.Time's
// representation; the package deliberately depends on neither the simulator
// nor the wall clock so the same counters run inside the simulation, inside
// the real-socket harness, and inside userspace hint libraries.
type Time int64

// State is Algorithm 1's queue state. The zero value is a valid initial
// state for a queue that is empty at time 0; use Init for a different start
// time.
//
// Fields are exported so the trace package can log them ethtool-style, but
// they must only be mutated through Track.
type State struct {
	Time     Time  // timestamp of the last update
	Size     int64 // current queue occupancy, in items
	Total    int64 // cumulative departures (items that left the queue)
	Integral int64 // time-weighted occupancy accumulator: ∫ size dt, item·ns
}

// Init resets the state to an empty queue observed at time now
// (Algorithm 1, line 1).
func (s *State) Init(now Time) {
	*s = State{Time: now}
}

// Track is Algorithm 1's TRACK procedure: record that nitems were added
// (positive) or removed (negative) at time now. Calling with nitems == 0 is
// allowed and simply advances the integral — the experiments use that to
// force a consistent snapshot point.
//
// Track panics if it would drive the queue size negative or if time moves
// backwards; both indicate instrumentation bugs that would silently corrupt
// every estimate derived later.
func (s *State) Track(now Time, nitems int64) {
	dt := now - s.Time
	if dt < 0 {
		panic(fmt.Sprintf("qstate: time moved backwards: %d -> %d", s.Time, now))
	}
	s.Time = now
	s.Integral += s.Size * int64(dt)
	s.Size += nitems
	if s.Size < 0 {
		panic(fmt.Sprintf("qstate: queue size went negative (%d) after delta %d", s.Size, nitems))
	}
	if nitems < 0 {
		s.Total += -nitems
	}
}

// Snapshot is the 3-tuple (time, total, integral) shared with the peer.
// Two successive snapshots are what GETAVGS consumes.
type Snapshot struct {
	Time     Time
	Total    int64
	Integral int64
}

// Snapshot captures the 3-tuple at time now, first advancing the integral so
// the snapshot is consistent at exactly now.
func (s *State) Snapshot(now Time) Snapshot {
	s.Track(now, 0)
	return Snapshot{Time: s.Time, Total: s.Total, Integral: s.Integral}
}

// Peek returns the 3-tuple as of the last Track call without advancing time.
// Useful when the caller cannot know "now" (e.g. decoding a peer's state).
func (s *State) Peek() Snapshot {
	return Snapshot{Time: s.Time, Total: s.Total, Integral: s.Integral}
}

// Avgs is the result of Algorithm 2's GETAVGS: averages over the interval
// between two snapshots.
type Avgs struct {
	Q          float64       // average queue occupancy, items
	Throughput float64       // λ: departures per second
	Latency    time.Duration // D = Q/λ: average queuing delay
	Elapsed    time.Duration // interval length, for confidence checks
	Departures int64         // raw departures in the interval
	Valid      bool          // false if the interval is empty or idle
}

// GetAvgs is Algorithm 2: given two successive snapshots of the same queue,
// compute average occupancy, throughput and — via Little's law — queuing
// delay over the interval between them.
//
// If no time elapsed, or nothing departed during the interval (λ = 0, delay
// undefined), the result has Valid == false with zeroed estimates; callers
// such as the EWMA-smoothed toggling policy skip invalid intervals rather
// than folding in a 0/0.
func GetAvgs(prev, now Snapshot) Avgs {
	dt := int64(now.Time - prev.Time)
	if dt <= 0 {
		return Avgs{}
	}
	dTotal := now.Total - prev.Total
	dIntegral := now.Integral - prev.Integral
	a := Avgs{
		Q:          float64(dIntegral) / float64(dt),
		Elapsed:    time.Duration(dt),
		Departures: dTotal,
	}
	a.Throughput = float64(dTotal) / (float64(dt) / float64(time.Second))
	if dTotal <= 0 {
		// Idle interval: Q may still be meaningful (items parked in the
		// queue) but D = Q/λ is undefined.
		return a
	}
	// D = Q/λ = (dIntegral/dt) / (dTotal/dt) = dIntegral/dTotal.
	a.Latency = time.Duration(float64(dIntegral) / float64(dTotal))
	a.Valid = true
	return a
}

// Sub returns GetAvgs(prev, s) — a convenience mirroring the paper's
// "subtracting successive state instances".
func (now Snapshot) Sub(prev Snapshot) Avgs { return GetAvgs(prev, now) }

// String renders the state for counter dumps.
func (s *State) String() string {
	return fmt.Sprintf("t=%d size=%d total=%d integral=%d", s.Time, s.Size, s.Total, s.Integral)
}
