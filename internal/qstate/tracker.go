package qstate

import "sync"

// Tracker is the concurrency-safe variant of State: the same Algorithm 1/2
// counters behind a mutex, for queues whose producers and consumers live on
// different goroutines (a server handling many connections, the userspace
// hint library, the real-socket harness). The plain State stays lock-free
// for single-goroutine hot paths such as the simulator.
//
// Concurrent callers race to read their clock before entering the tracker,
// so timestamps can arrive slightly out of order even when the clock itself
// is monotonic. Unlike State.Track — which panics on backwards time because
// in a single-goroutine setting it means the instrumentation is broken —
// Tracker clamps a stale timestamp to the last recorded one (a zero-length
// interval). The few-nanosecond inversions this absorbs are far below the
// microsecond wire resolution and do not bias the integral.
//
// The zero value is a valid tracker for a queue empty at time 0.
type Tracker struct {
	mu sync.Mutex
	st State
}

// NewTracker returns a tracker for a queue that is empty at time now.
func NewTracker(now Time) *Tracker {
	t := &Tracker{}
	t.st.Init(now)
	return t
}

// Track records that nitems were added (positive) or removed (negative) at
// time now, clamping backwards timestamps as described on Tracker. Driving
// the queue size negative still panics: that is a bookkeeping bug no amount
// of scheduling jitter explains.
func (t *Tracker) Track(now Time, nitems int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if now < t.st.Time {
		now = t.st.Time
	}
	t.st.Track(now, nitems)
}

// Snapshot captures the 3-tuple at time now, first advancing the integral so
// the snapshot is consistent at exactly now (clamped like Track).
func (t *Tracker) Snapshot(now Time) Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	if now < t.st.Time {
		now = t.st.Time
	}
	return t.st.Snapshot(now)
}

// Peek returns the 3-tuple as of the last update without advancing time.
func (t *Tracker) Peek() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.st.Peek()
}

// Size returns the current queue occupancy.
func (t *Tracker) Size() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.st.Size
}

// State returns a copy of the full 4-tuple, for counter dumps.
func (t *Tracker) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.st
}
