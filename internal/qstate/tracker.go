package qstate

import "sync"

// Tracker is the concurrency-safe variant of State: the same Algorithm 1/2
// counters behind a mutex, for queues whose producers and consumers live on
// different goroutines (a server handling many connections, the userspace
// hint library, the real-socket harness). The plain State stays lock-free
// for single-goroutine hot paths such as the simulator.
//
// Concurrent callers race to read their clock before entering the tracker,
// so timestamps can arrive slightly out of order even when the clock itself
// is monotonic. Unlike State.Track — which panics on backwards time because
// in a single-goroutine setting it means the instrumentation is broken —
// Tracker clamps a stale timestamp to the last recorded one (a zero-length
// interval). The few-nanosecond inversions this absorbs are far below the
// microsecond wire resolution and do not bias the integral.
//
// Track and Snapshot sit on the per-request hot path (every enqueue,
// dequeue and tick crosses them), so they are //e2e:hotpath: zero
// allocations, and explicit unlocks instead of defer. The one panic State
// can raise (negative queue size) leaves the mutex held — that panic is a
// fatal bookkeeping bug, not a recoverable condition.
//
// The zero value is a valid tracker for a queue empty at time 0.
type Tracker struct {
	mu sync.Mutex
	st State
}

// NewTracker returns a tracker for a queue that is empty at time now.
func NewTracker(now Time) *Tracker {
	t := &Tracker{}
	t.st.Init(now)
	return t
}

// Track records that nitems were added (positive) or removed (negative) at
// time now, clamping backwards timestamps as described on Tracker. Driving
// the queue size negative still panics: that is a bookkeeping bug no amount
// of scheduling jitter explains.
//
//e2e:hotpath
func (t *Tracker) Track(now Time, nitems int64) {
	t.mu.Lock()
	if now < t.st.Time {
		now = t.st.Time
	}
	t.st.Track(now, nitems)
	t.mu.Unlock()
}

// Snapshot captures the 3-tuple at time now, first advancing the integral so
// the snapshot is consistent at exactly now (clamped like Track).
//
//e2e:hotpath
func (t *Tracker) Snapshot(now Time) Snapshot {
	t.mu.Lock()
	if now < t.st.Time {
		now = t.st.Time
	}
	s := t.st.Snapshot(now)
	t.mu.Unlock()
	return s
}

// Peek returns the 3-tuple as of the last update without advancing time.
//
//e2e:hotpath
func (t *Tracker) Peek() Snapshot {
	t.mu.Lock()
	s := t.st.Peek()
	t.mu.Unlock()
	return s
}

// Size returns the current queue occupancy.
//
//e2e:hotpath
func (t *Tracker) Size() int64 {
	t.mu.Lock()
	n := t.st.Size
	t.mu.Unlock()
	return n
}

// State returns a copy of the full 4-tuple, for counter dumps.
func (t *Tracker) State() State {
	t.mu.Lock()
	st := t.st
	t.mu.Unlock()
	return st
}
